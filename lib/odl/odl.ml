module D = Ode_odb.Database
module Value = Ode_base.Value
module L = Ode_lang.Lexer
module P = Ode_lang.Parser
module Mask = Ode_event.Mask
module Expr = Ode_event.Expr

exception Odl_error of string * int

let error_position = L.position

(* ------------------------------------------------------------------ *)
(* Statement AST                                                       *)
(* ------------------------------------------------------------------ *)

type lvalue =
  | L_self of string  (* field of self *)
  | L_of of string * string  (* field of the object held in a variable *)

type stmt =
  | S_assign of lvalue * Mask.t
  | S_call of string option * string * Mask.t list  (* receiver, name, args *)
  | S_tabort
  | S_activate of string * Mask.t list
  | S_deactivate of string
  | S_return of Mask.t
  | S_if of Mask.t * stmt list * stmt list

type meth_decl = {
  md_kind : D.method_kind;
  md_name : string;
  md_formals : string list;
  md_body : stmt list;
}

type trigger_decl = {
  td_name : string;
  td_formals : string list;  (* activation parameters *)
  td_perpetual : bool;
  td_committed : bool;
  td_event : Expr.t;
  td_body : stmt list;
}

type class_decl = {
  cd_name : string;
  cd_fields : (string * Value.t) list;
  cd_ctor : (string list * stmt list) option;
  cd_methods : meth_decl list;
  cd_triggers : trigger_decl list;
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let wrap_parse src f =
  try f () with
  | P.Parse_error (msg, pos) -> raise (Odl_error (msg, pos))
  | L.Lex_error (msg, pos) ->
    ignore src;
    raise (Odl_error (msg, pos))

let default_of_type st = function
  | "int" -> Value.Int 0
  | "float" -> Value.Float 0.0
  | "bool" -> Value.Bool false
  | "string" -> Value.String ""
  | "void" -> P.stream_fail st "void is not a field type"
  | _ (* a class: object reference *) -> Value.Oid 0

let literal st : Value.t =
  match P.stream_next st with
  | L.INT n -> Value.Int n
  | L.FLOAT f -> Value.Float f
  | L.STRING s -> Value.String s
  | L.IDENT "true" -> Value.Bool true
  | L.IDENT "false" -> Value.Bool false
  | L.MINUS -> (
    match P.stream_next st with
    | L.INT n -> Value.Int (-n)
    | L.FLOAT f -> Value.Float (-.f)
    | t -> P.stream_fail st ("expected a number after '-', found " ^ L.describe t))
  | t -> P.stream_fail st ("expected a literal, found " ^ L.describe t)

let parse_arg_list st =
  P.stream_expect st L.LPAREN;
  let args = ref [] in
  if P.stream_peek st <> L.RPAREN then begin
    args := [ P.mask_prefix st ];
    while P.stream_peek st = L.COMMA do
      ignore (P.stream_next st);
      args := P.mask_prefix st :: !args
    done
  end;
  P.stream_expect st L.RPAREN;
  List.rev !args

(* formal parameters: [type] name pairs, types optional *)
let parse_formal_names st =
  P.stream_expect st L.LPAREN;
  let names = ref [] in
  if P.stream_peek st <> L.RPAREN then begin
    let one () =
      let first = P.stream_ident st in
      match P.stream_peek st with
      | L.IDENT second ->
        ignore (P.stream_next st);
        names := second :: !names
      | _ -> names := first :: !names
    in
    one ();
    while P.stream_peek st = L.COMMA do
      ignore (P.stream_next st);
      one ()
    done
  end;
  P.stream_expect st L.RPAREN;
  List.rev !names

let rec parse_stmt st : stmt =
  match P.stream_peek st with
  | L.IDENT "tabort" ->
    ignore (P.stream_next st);
    P.stream_expect st L.SEMI;
    S_tabort
  | L.IDENT "activate" ->
    ignore (P.stream_next st);
    let name = P.stream_ident st in
    let args = if P.stream_peek st = L.LPAREN then parse_arg_list st else [] in
    P.stream_expect st L.SEMI;
    S_activate (name, args)
  | L.IDENT "deactivate" ->
    ignore (P.stream_next st);
    let name = P.stream_ident st in
    P.stream_expect st L.SEMI;
    S_deactivate name
  | L.IDENT "return" ->
    ignore (P.stream_next st);
    let e = P.mask_prefix st in
    P.stream_expect st L.SEMI;
    S_return e
  | L.IDENT "if" ->
    ignore (P.stream_next st);
    P.stream_expect st L.LPAREN;
    let cond = P.mask_prefix st in
    P.stream_expect st L.RPAREN;
    let then_branch = parse_block st in
    let else_branch =
      if P.stream_peek st = L.IDENT "else" then begin
        ignore (P.stream_next st);
        parse_block st
      end
      else []
    in
    S_if (cond, then_branch, else_branch)
  | L.IDENT x -> (
    match P.stream_peek2 st with
    | L.EQ ->
      ignore (P.stream_next st);
      ignore (P.stream_next st);
      let e = P.mask_prefix st in
      P.stream_expect st L.SEMI;
      S_assign (L_self x, e)
    | L.LPAREN ->
      ignore (P.stream_next st);
      let args = parse_arg_list st in
      P.stream_expect st L.SEMI;
      S_call (None, x, args)
    | L.DOT -> (
      ignore (P.stream_next st);
      ignore (P.stream_next st);
      let field_or_meth = P.stream_ident st in
      match P.stream_peek st with
      | L.LPAREN ->
        let args = parse_arg_list st in
        P.stream_expect st L.SEMI;
        S_call (Some x, field_or_meth, args)
      | L.EQ ->
        ignore (P.stream_next st);
        let e = P.mask_prefix st in
        P.stream_expect st L.SEMI;
        S_assign (L_of (x, field_or_meth), e)
      | t -> P.stream_fail st ("expected '(' or '=' after '.', found " ^ L.describe t))
    | t -> P.stream_fail st ("unexpected " ^ L.describe t ^ " in statement"))
  | t -> P.stream_fail st ("expected a statement, found " ^ L.describe t)

and parse_block st : stmt list =
  P.stream_expect st L.LBRACE;
  let stmts = ref [] in
  while P.stream_peek st <> L.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  P.stream_expect st L.RBRACE;
  List.rev !stmts

(* a trigger body is either a block or a single statement *)
let parse_body st =
  if P.stream_peek st = L.LBRACE then parse_block st else [ parse_stmt st ]

let parse_trigger st : trigger_decl =
  let name = P.stream_ident st in
  let formals = parse_formal_names st in
  P.stream_expect st L.COLON;
  let perpetual = ref false and committed = ref false in
  let rec flags () =
    match P.stream_peek st with
    | L.IDENT "perpetual" ->
      ignore (P.stream_next st);
      perpetual := true;
      flags ()
    | L.IDENT "committed" ->
      ignore (P.stream_next st);
      committed := true;
      flags ()
    | _ -> ()
  in
  flags ();
  let event = P.event_prefix st in
  P.stream_expect st L.ARROW;
  let body = parse_body st in
  {
    td_name = name;
    td_formals = formals;
    td_perpetual = !perpetual;
    td_committed = !committed;
    td_event = event;
    td_body = body;
  }

let parse_class st : class_decl =
  P.stream_expect st (L.IDENT "class");
  let cname = P.stream_ident st in
  P.stream_expect st L.LBRACE;
  let fields = ref [] in
  let methods = ref [] in
  let triggers = ref [] in
  let ctor = ref None in
  let in_trigger_section = ref false in
  while P.stream_peek st <> L.RBRACE do
    match P.stream_peek st, P.stream_peek2 st with
    | L.IDENT ("public" | "private"), L.COLON ->
      ignore (P.stream_next st);
      ignore (P.stream_next st);
      in_trigger_section := false
    | L.IDENT "trigger", L.COLON ->
      ignore (P.stream_next st);
      ignore (P.stream_next st);
      in_trigger_section := true
    | _ when !in_trigger_section -> triggers := parse_trigger st :: !triggers
    | L.IDENT ("update" | "read"), _ ->
      let kind =
        match P.stream_next st with
        | L.IDENT "update" -> D.Updating
        | _ -> D.Read_only
      in
      let _return_type = P.stream_ident st in
      let name = P.stream_ident st in
      let formals = parse_formal_names st in
      let body = parse_block st in
      methods :=
        { md_kind = kind; md_name = name; md_formals = formals; md_body = body }
        :: !methods
    | L.IDENT name, L.LPAREN when name = cname ->
      (* constructor *)
      ignore (P.stream_next st);
      let formals = parse_formal_names st in
      let body = parse_block st in
      if !ctor <> None then P.stream_fail st "duplicate constructor";
      ctor := Some (formals, body)
    | L.IDENT ty, L.IDENT _ ->
      (* field declaration *)
      ignore (P.stream_next st);
      let name = P.stream_ident st in
      let default =
        if P.stream_peek st = L.EQ then begin
          ignore (P.stream_next st);
          literal st
        end
        else default_of_type st ty
      in
      P.stream_expect st L.SEMI;
      fields := (name, default) :: !fields
    | t, _ -> P.stream_fail st ("unexpected " ^ L.describe t ^ " in class body")
  done;
  P.stream_expect st L.RBRACE;
  if P.stream_peek st = L.SEMI then ignore (P.stream_next st);
  {
    cd_name = cname;
    cd_fields = List.rev !fields;
    cd_ctor = !ctor;
    cd_methods = List.rev !methods;
    cd_triggers = List.rev !triggers;
  }

let parse_schema src : class_decl list =
  wrap_parse src (fun () ->
      let st = P.stream_of_tokens (L.tokenize src) in
      let classes = ref [] in
      while P.stream_peek st <> L.EOF do
        classes := parse_class st :: !classes
      done;
      List.rev !classes)

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)
(* ------------------------------------------------------------------ *)

exception Return_value of Value.t

let env_for db self bindings : Mask.env =
  {
    var =
      (fun name ->
        match List.assoc_opt name bindings with
        | Some v -> Some v
        | None -> (
          match D.get_field db self name with
          | v -> Some v
          | exception D.Ode_error _ -> None));
    deref =
      (fun oid field ->
        match D.get_field db oid field with
        | v -> Some v
        | exception D.Ode_error _ -> None);
    call = (fun name args -> D.apply_fun db name args);
  }

let rec exec db self bindings stmts =
  let env = env_for db self bindings in
  let eval e = Mask.eval env e in
  let lookup_oid x =
    let v =
      match List.assoc_opt x bindings with
      | Some v -> v
      | None -> D.get_field db self x
    in
    match v with
    | Value.Oid o -> o
    | v ->
      raise (D.Ode_error (Printf.sprintf "%s is not an object (%s)" x (Value.to_string v)))
  in
  List.iter
    (fun stmt ->
      match stmt with
      | S_assign (L_self f, e) -> D.set_field db self f (eval e)
      | S_assign (L_of (x, f), e) -> D.set_field db (lookup_oid x) f (eval e)
      | S_call (None, name, args) ->
        let vals = List.map eval args in
        if D.has_method db self name then ignore (D.call db self name vals)
        else ignore (D.apply_fun db name vals)
      | S_call (Some x, name, args) ->
        ignore (D.call db (lookup_oid x) name (List.map eval args))
      | S_tabort -> raise D.Tabort
      | S_activate (name, args) -> D.activate db self name (List.map eval args)
      | S_deactivate name -> D.deactivate db self name
      | S_return e -> raise (Return_value (eval e))
      | S_if (cond, then_branch, else_branch) ->
        if Mask.eval_bool env cond then exec db self bindings then_branch
        else exec db self bindings else_branch)
    stmts

let bind_positional names args =
  let rec go names args acc =
    match names, args with
    | [], _ -> List.rev acc
    | n :: names, v :: args -> go names args ((n, v) :: acc)
    | n :: names, [] -> go names [] ((n, Value.Unit) :: acc)
  in
  go names args []

let builder_of_class (cd : class_decl) : D.class_builder =
  let b =
    D.define_class cd.cd_name
      ?constructor:
        (Option.map
           (fun (formals, body) db oid args ->
             let bindings = bind_positional formals args in
             try exec db oid bindings body with Return_value _ -> ())
           cd.cd_ctor)
  in
  let b = List.fold_left (fun b (name, v) -> D.field b name v) b cd.cd_fields in
  let b =
    List.fold_left
      (fun b md ->
        D.method_ b ~arity:(List.length md.md_formals) ~kind:md.md_kind md.md_name
          (fun db oid args ->
            let bindings = bind_positional md.md_formals args in
            try
              exec db oid bindings md.md_body;
              Value.Unit
            with Return_value v -> v))
      b cd.cd_methods
  in
  List.fold_left
    (fun b td ->
      let mode =
        if td.td_committed then Ode_event.Detector.Committed
        else Ode_event.Detector.Full_history
      in
      D.trigger b ~perpetual:td.td_perpetual ~mode td.td_name ~event:td.td_event
        ~action:(fun db (ctx : D.fire_context) ->
          (* §9 collected event parameters shadow activation parameters *)
          let bindings =
            ctx.D.fc_collected @ bind_positional td.td_formals ctx.D.fc_params
          in
          try exec db ctx.D.fc_oid bindings td.td_body with Return_value _ -> ()))
    b cd.cd_triggers

let load_schema db src =
  let classes = parse_schema src in
  List.map
    (fun cd ->
      D.register_class db (builder_of_class cd);
      cd.cd_name)
    classes

let load_schema_file db path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  load_schema db src

(* ------------------------------------------------------------------ *)
(* Scripts                                                             *)
(* ------------------------------------------------------------------ *)

type script_state = {
  db : D.t;
  out : Format.formatter;
  vars : (string, Value.t) Hashtbl.t;
  mutable open_txn : D.txn option;
  mutable pending_firings : D.firing list;
      (* newest first; the session's own subscription feeds it — the
         script-level [firings] statement is a drain surface by design,
         scripts have no way to hold a callback *)
}

let script_value ss st : Value.t =
  match P.stream_peek st with
  | L.IDENT name
    when name <> "true" && name <> "false" && Hashtbl.mem ss.vars name ->
    ignore (P.stream_next st);
    Hashtbl.find ss.vars name
  | _ -> literal st

let script_args ss st =
  P.stream_expect st L.LPAREN;
  let args = ref [] in
  if P.stream_peek st <> L.RPAREN then begin
    args := [ script_value ss st ];
    while P.stream_peek st = L.COMMA do
      ignore (P.stream_next st);
      args := script_value ss st :: !args
    done
  end;
  P.stream_expect st L.RPAREN;
  List.rev !args

(* run [f] in the open transaction if any, else in a fresh one *)
let transactionally ss f =
  match ss.open_txn with
  | Some _ -> (
    match f () with
    | () -> ()
    | exception D.Tabort ->
      (match ss.open_txn with
      | Some tx ->
        D.abort ss.db tx;
        ss.open_txn <- None
      | None -> ());
      Fmt.pf ss.out "(transaction aborted)@.")
  | None -> (
    match D.with_txn ss.db (fun _ -> f ()) with
    | Ok () -> ()
    | Error `Aborted -> Fmt.pf ss.out "(transaction aborted)@.")

let exec_script_stmt ss st =
  match P.stream_next st with
  | L.IDENT "new" ->
    let var = P.stream_ident st in
    P.stream_expect st L.EQ;
    let cls = P.stream_ident st in
    let args = script_args ss st in
    P.stream_expect st L.SEMI;
    transactionally ss (fun () ->
        Hashtbl.replace ss.vars var (Value.Oid (D.create ss.db cls args)))
  | L.IDENT "begin" ->
    P.stream_expect st L.SEMI;
    if ss.open_txn <> None then P.stream_fail st "a transaction is already open";
    ss.open_txn <- Some (D.begin_txn ss.db)
  | L.IDENT "commit" -> (
    P.stream_expect st L.SEMI;
    match ss.open_txn with
    | None -> P.stream_fail st "no open transaction to commit"
    | Some tx ->
      ss.open_txn <- None;
      (match D.commit ss.db tx with
      | Ok () -> ()
      | Error `Aborted -> Fmt.pf ss.out "(transaction aborted at commit)@."))
  | L.IDENT "abort" -> (
    P.stream_expect st L.SEMI;
    match ss.open_txn with
    | None -> P.stream_fail st "no open transaction to abort"
    | Some tx ->
      ss.open_txn <- None;
      D.abort ss.db tx)
  | L.IDENT "call" -> (
    let var = P.stream_ident st in
    P.stream_expect st L.DOT;
    let meth = P.stream_ident st in
    let args = script_args ss st in
    P.stream_expect st L.SEMI;
    match Hashtbl.find_opt ss.vars var with
    | Some (Value.Oid oid) ->
      transactionally ss (fun () -> ignore (D.call ss.db oid meth args))
    | _ -> P.stream_fail st (var ^ " is not a known object"))
  | L.IDENT "set" -> (
    let var = P.stream_ident st in
    P.stream_expect st L.DOT;
    let field = P.stream_ident st in
    P.stream_expect st L.EQ;
    let v = script_value ss st in
    P.stream_expect st L.SEMI;
    match Hashtbl.find_opt ss.vars var with
    | Some (Value.Oid oid) -> transactionally ss (fun () -> D.set_field ss.db oid field v)
    | _ -> P.stream_fail st (var ^ " is not a known object"))
  | L.IDENT "activate" -> (
    let var = P.stream_ident st in
    P.stream_expect st L.DOT;
    let name = P.stream_ident st in
    let args = if P.stream_peek st = L.LPAREN then script_args ss st else [] in
    P.stream_expect st L.SEMI;
    match Hashtbl.find_opt ss.vars var with
    | Some (Value.Oid oid) -> transactionally ss (fun () -> D.activate ss.db oid name args)
    | _ -> P.stream_fail st (var ^ " is not a known object"))
  | L.IDENT "advance" -> (
    match P.stream_next st with
    | L.INT ms ->
      P.stream_expect st L.SEMI;
      D.advance_clock ss.db (Int64.of_int ms)
    | t -> P.stream_fail st ("expected a millisecond count, found " ^ L.describe t))
  | L.IDENT "show" -> (
    let var = P.stream_ident st in
    match P.stream_peek st with
    | L.DOT -> (
      ignore (P.stream_next st);
      let field = P.stream_ident st in
      P.stream_expect st L.SEMI;
      match Hashtbl.find_opt ss.vars var with
      | Some (Value.Oid oid) ->
        Fmt.pf ss.out "%s.%s = %a@." var field Value.pp (D.get_field ss.db oid field)
      | _ -> P.stream_fail st (var ^ " is not a known object"))
    | _ -> (
      P.stream_expect st L.SEMI;
      match Hashtbl.find_opt ss.vars var with
      | Some v -> Fmt.pf ss.out "%s = %a@." var Value.pp v
      | None -> P.stream_fail st (var ^ " is not bound")))
  | L.IDENT "firings" ->
    P.stream_expect st L.SEMI;
    let fs = List.rev ss.pending_firings in
    ss.pending_firings <- [];
    List.iter
      (fun (f : D.firing) ->
        Fmt.pf ss.out "fired %s.%s on @%d@." f.D.f_class f.D.f_trigger f.D.f_oid)
      fs
  | t -> P.stream_fail st ("unexpected " ^ L.describe t ^ " in script")

let run_script ?(out = Fmt.stdout) db src =
  wrap_parse src (fun () ->
      let st = P.stream_of_tokens (L.tokenize src) in
      let ss =
        { db; out; vars = Hashtbl.create 16; open_txn = None;
          pending_firings = [] }
      in
      let sub =
        D.subscribe_firings db (fun f ->
            ss.pending_firings <- f :: ss.pending_firings)
      in
      Fun.protect
        ~finally:(fun () -> D.unsubscribe db sub)
        (fun () ->
          while P.stream_peek st <> L.EOF do
            exec_script_stmt ss st
          done;
          match ss.open_txn with
          | Some tx ->
            ss.open_txn <- None;
            ignore (D.commit db tx)
          | None -> ()))

let run_script_file ?out db path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  run_script ?out db src

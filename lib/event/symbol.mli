(** Basic events — the alphabet of happenings an Ode object can observe
    (paper §3.1).

    A basic event names a kind of happening; an {e occurrence} is one
    concrete happening posted to an object, carrying the method arguments
    and the simulated timestamp. *)

type qualifier = Before | After

type time_pattern = {
  year : int option;
  mon : int option;  (** 1..12 *)
  day : int option;  (** 1..31 *)
  hr : int option;  (** 0..23 *)
  min : int option;
  sec : int option;
  ms : int option;
}
(** O++'s [time(YR=…, MON=…, …)] with omitted fields acting as wildcards;
    an [at] event with wildcards recurs at every matching instant. *)

type time_spec =
  | At of time_pattern
  | Every of int64  (** period in milliseconds *)
  | After_period of int64  (** delay from trigger activation, ms *)

type basic =
  | Create  (** immediately after an object is created *)
  | Delete  (** immediately before an object is deleted *)
  | Update of qualifier
  | Read of qualifier
  | Access of qualifier
  | Method of qualifier * string
  | Tbegin  (** immediately after a transaction begins *)
  | Tcomplete  (** immediately before a transaction attempts to commit *)
  | Tcommit  (** immediately after a transaction commits *)
  | Tabort of qualifier
  | Time of time_spec

type occurrence = {
  basic : basic;
  args : Ode_base.Value.t list;  (** actual method arguments, else [] *)
  at : int64;  (** simulated timestamp, ms *)
}

type basic_key =
  | Key of basic  (** never [Time _] — see {!basic_key} *)
  | Key_time
(** Hashable dispatch key of a basic event, used by the database's
    per-class event index. All [Time] events collapse into {!Key_time}
    (the payload is erased) so key hashing never traverses a time spec
    and a single index bucket covers every clock-driven trigger; the
    classifier still discriminates full specs. *)

val basic_key : basic -> basic_key
val equal_basic_key : basic_key -> basic_key -> bool
val pp_basic_key : Format.formatter -> basic_key -> unit

val wildcard_pattern : time_pattern
val pattern :
  ?year:int -> ?mon:int -> ?day:int -> ?hr:int -> ?min:int -> ?sec:int ->
  ?ms:int -> unit -> time_pattern

val equal_basic : basic -> basic -> bool
val compare_basic : basic -> basic -> int

val is_transactional : basic -> bool
(** The five transaction events of §3.1(4). *)

val pp_qualifier : Format.formatter -> qualifier -> unit
val pp_time_spec : Format.formatter -> time_spec -> unit
val pp_basic : Format.formatter -> basic -> unit
val pp_occurrence : Format.formatter -> occurrence -> unit

(** Runtime event detection for one trigger definition (paper §5).

    A detector is compiled once per trigger {e definition} — in an
    object-oriented system all objects of a class share it, exactly as the
    paper stores one transition table per class. Each activated trigger on
    each object then carries only the automaton state: a single integer
    per automaton level (one, for mask-free-composite triggers). *)

type mode =
  | Full_history
      (** aborted transactions' events remain in the history; the
          detection state is {e not} rolled back on abort *)
  | Committed
      (** the history contains only committed work; the database layer
          restores the detection state from its undo log on abort (§6's
          "state is part of the object" option) *)

type t = {
  uid : int;
      (** process-unique detector identity, assigned at compilation;
          shared detectors share it — the database keys its
          structure-of-arrays state blocks on this *)
  expr : Expr.t;
  alphabet : Rewrite.t;
  masks : Mask.t array;  (** composite-mask table *)
  compiled : Compile.t;
  mode : mode;
  has_formals : bool;
      (** precomputed: does any logical event declare formals? When
          false, {!collect} can never bind anything and is skipped. *)
}

type state = int array

val make : ?mode:mode -> ?share:bool -> Expr.t -> t
(** Compile a trigger event specification. Raises [Invalid_argument] on
    invalid expressions (see {!Expr.validate}) or §5 atom blowup beyond
    {!Rewrite.max_atoms}. Default mode is [Full_history].

    With [~share:true], structurally identical [(mode, expr)] pairs
    return one physically shared (immutable) detector, so the database's
    per-occurrence classification cache classifies once for all triggers
    declaring the same event. Sharing memoizes across the process: only
    opt in when the compilation knobs ([Compile.minimization],
    [Rewrite.max_atoms]) are at their defaults. *)

val initial : t -> state
val n_state_words : t -> int

val post : t -> state -> env:Mask.env -> Symbol.occurrence -> bool
(** Classify the occurrence against the trigger's logical events (basic
    event kind, arity, masks — evaluated in [env] with the occurrence's
    arguments bound), advance the automaton stack, and report whether the
    trigger event occurred at this point. Composite masks are evaluated
    against [env] "now". [state] is updated in place.

    Per §5, a trigger's history contains only its {e own} logical events:
    an occurrence that matches none of them leaves the state untouched
    (it does not break [sequence] adjacency and is invisible to [!]).
    This is what makes the paper's T8 — "a deposit immediately followed
    by a withdrawal" — detectable even though every method call also
    posts access/update events. *)

val copy_state : state -> state

val top_state : state -> int
(** The top-level automaton word — the last entry of the state vector
    (levels below it belong to masked subexpressions). This is the
    paper's "one integer of state per activation" for mask-free
    triggers; the database's observability layer reports it in
    [Advanced] trace spans. *)

(** {2 Dispatch relevance and split classification}

    The database's hot path posts each occurrence to many triggers. These
    entry points let it (a) index triggers by the basic events they can
    react to, and (b) classify an occurrence once and reuse the result
    for the automaton step, the §9 parameter collection, and the
    undo-logging decision. *)

val concerns : t -> Symbol.basic -> bool
(** Can an occurrence of this basic event ever advance this detector?
    O(1); false means {!post} is guaranteed to return [false] and leave
    the state untouched. *)

val relevant_basics : t -> Symbol.basic_key list
(** Dispatch keys of the detector's alphabet — see
    {!Rewrite.relevant_basics}. *)

type classified = {
  c_sym : int;  (** the alphabet symbol ({!Rewrite.classify} result) *)
  c_key : int;  (** alphabet key index, [-1] if the basic is foreign *)
  c_bits : int;  (** guard truth-assignment bits (0 if none matched) *)
}

val classify : t -> env:Mask.env -> Symbol.occurrence -> classified
(** Evaluate the occurrence against the detector's guards once. Mask
    evaluation errors propagate as {!Mask.Eval_error}. *)

val is_relevant : classified -> bool
(** Did the occurrence match at least one of the detector's logical
    events? When false, stepping is a no-op and collection binds
    nothing — callers may skip undo logging (state provably unchanged). *)

val post_classified : t -> state -> env:Mask.env -> classified -> bool
(** The automaton-stepping half of {!post}, given a prior
    {!classify} result (composite masks are still evaluated in [env]
    "now"). Allocation-free: masks are evaluated through
    {!Compile.step_masks}, not a per-step closure. *)

(** {2 Packed-code entry points (the posting kernel)}

    Identical semantics to {!classify} / {!post_classified} /
    {!collect_classified}, but the classification result is one int
    ({!Rewrite.classify_code}) so the database's kernel can classify a
    batch into a scratch int buffer with zero allocation. *)

val classify_code : t -> env:Mask.env -> Symbol.occurrence -> int
val code_relevant : int -> bool
val post_code : t -> state -> env:Mask.env -> int -> bool

val collect_code :
  t -> int -> Symbol.occurrence -> (string * Ode_base.Value.t) list

val has_flat : t -> bool
(** Every level of the compiled automaton carries a packed flat table
    ({!Compile.all_flat}) — its whole detection state is a fixed vector
    of [n_state_words t] integers, eligible for the database's
    structure-of-arrays packing. Mask-free expressions have one level
    and one word; composite-mask and counting expressions a few. *)

val initial_word : t -> int
(** The start state of the top automaton — the initial value of the
    {e last} state word (the only word, for mask-free detectors). *)

val write_initial : t -> int array -> int -> unit
(** [write_initial t cells off] writes the detector's initial
    [n_state_words t]-word state vector into [cells] at [off]. *)

val post_code_slot : t -> int array -> int -> env:Mask.env -> int -> bool
(** [post_code_slot t cells off ~env code] steps the
    [n_state_words t]-word state vector stored at [cells.(off ..)] in
    place through the flat tables; composite masks are evaluated in
    [env] "now" when their level accepts ({!has_flat} detectors only;
    raises [Invalid_argument] otherwise). *)

val post_classified_slot : t -> int array -> int -> env:Mask.env -> classified -> bool
(** As {!post_code_slot}, from a {!classify} record. *)

val collect_classified :
  t -> classified -> Symbol.occurrence -> (string * Ode_base.Value.t) list
(** The collection half of {!collect}, given a prior {!classify} result:
    no guard mask is re-evaluated; formals and arguments are walked in
    lockstep. *)

val collect :
  t -> env:Mask.env -> Symbol.occurrence -> (string * Ode_base.Value.t) list
(** Parameter collection — the paper's §9 future-work item "incorporation
    of arguments into composite event specification". For each of this
    trigger's logical events that the occurrence matches and that declares
    formals, bind the formal names to the occurrence's arguments. The
    database layer accumulates these bindings per activation
    (latest-occurrence-wins) and hands them to the action when the
    composite event fires. *)

val encode_state : t -> state -> string
val decode_state : t -> string -> state
(** Persistence of per-object trigger state. [decode_state] raises
    [Ode_base.Codec.Corrupt] on malformed input or state/automaton size
    mismatch. *)

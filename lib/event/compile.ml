type level = {
  l_mask : int;
  l_deps : int array;
  l_dfa : Dfa.t;
  l_flat : int array option;
}

type t = {
  base_m : int;
  levels : level array;
  top_deps : int array;
  top_dfa : Dfa.t;
  flat : int array option;
  all_flat : bool;
}

(* ------------------------------------------------------------------ *)
(* Specialised DFA constructions                                      *)
(* ------------------------------------------------------------------ *)

let minimization = ref true

let minimize d = if !minimization then Dfa.minimize d else Dfa.reachable d

let counting (base : Dfa.t) cond =
  let accepts_count, bump =
    match cond with
    | `Exact n ->
      if n < 1 then invalid_arg "Compile.counting: n >= 1";
      ((fun c -> c = n), fun c -> min (c + 1) (n + 1))
    | `At_least n ->
      if n < 1 then invalid_arg "Compile.counting: n >= 1";
      ((fun c -> c >= n), fun c -> min (c + 1) n)
    | `Mod n ->
      if n < 1 then invalid_arg "Compile.counting: n >= 1";
      ((fun c -> c = 0), fun c -> (c + 1) mod n)
  in
  let m = base.Dfa.m in
  let index : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let rows = ref [] in
  let count = ref 0 in
  let rec visit (q, c) =
    match Hashtbl.find_opt index (q, c) with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.add index (q, c) i;
      let row = Array.make m 0 in
      rows := (i, (q, c), row) :: !rows;
      for s = 0 to m - 1 do
        let q' = base.delta.(q).(s) in
        let c' = if base.accept.(q') then bump c else c in
        row.(s) <- visit (q', c')
      done;
      i
  in
  let start = visit (base.start, 0) in
  let n = !count in
  let accept = Array.make n false in
  let delta = Array.make n [||] in
  List.iter
    (fun (i, (q, c), row) ->
      accept.(i) <- base.accept.(q) && accepts_count c;
      delta.(i) <- row)
    !rows;
  minimize { Dfa.m; start; accept; delta }

let first_match (f : Dfa.t) (g : Dfa.t) =
  if f.Dfa.m <> g.Dfa.m then invalid_arg "Compile.first_match: alphabet mismatch";
  let m = f.Dfa.m in
  let nf = Array.length f.accept in
  let ng = Array.length g.accept in
  (* State encoding: (qf, qg) live states, plus one dead sink. *)
  let dead = nf * ng in
  let n = dead + 1 in
  let accept = Array.make n false in
  let delta = Array.make n [||] in
  for qf = 0 to nf - 1 do
    for qg = 0 to ng - 1 do
      let id = (qf * ng) + qg in
      accept.(id) <- f.accept.(qf);
      delta.(id) <-
        (if f.accept.(qf) || g.accept.(qg) then Array.make m dead
         else Array.init m (fun s -> (f.delta.(qf).(s) * ng) + g.delta.(qg).(s)))
    done
  done;
  delta.(dead) <- Array.make m dead;
  minimize { Dfa.m; start = (f.start * ng) + g.start; accept; delta }

(* faAbs(a, b, g): nondeterministically guess the point where [a] occurs;
   from there run [b] on the suffix while [g] keeps running on the whole
   history; block once a stale phase-2 state accepts [b] or [g]. *)
let fa_abs_nfa (a : Dfa.t) (b : Dfa.t) (g : Dfa.t) : Nfa.t =
  let m = a.Dfa.m in
  if b.Dfa.m <> m || g.Dfa.m <> m then invalid_arg "Compile.fa_abs: alphabet mismatch";
  let na = Array.length a.accept in
  let nb = Array.length b.accept in
  let ng = Array.length g.accept in
  let id1 qa qg = (qa * ng) + qg in
  let id2 qb qg fresh =
    (na * ng) + (if fresh then 0 else nb * ng) + (qb * ng) + qg
  in
  let n = (na * ng) + (2 * nb * ng) in
  let accept = Array.make n false in
  let delta = Array.init n (fun _ -> Array.make m []) in
  let eps = Array.make n [] in
  for qa = 0 to na - 1 do
    for qg = 0 to ng - 1 do
      let id = id1 qa qg in
      for s = 0 to m - 1 do
        delta.(id).(s) <- [ id1 a.delta.(qa).(s) g.delta.(qg).(s) ]
      done;
      if a.accept.(qa) then eps.(id) <- [ id2 b.start qg true ]
    done
  done;
  for qb = 0 to nb - 1 do
    for qg = 0 to ng - 1 do
      let fresh_id = id2 qb qg true in
      let stale_id = id2 qb qg false in
      for s = 0 to m - 1 do
        let succ = [ id2 b.delta.(qb).(s) g.delta.(qg).(s) false ] in
        delta.(fresh_id).(s) <- succ;
        if not (b.accept.(qb) || g.accept.(qg)) then delta.(stale_id).(s) <- succ
      done;
      accept.(stale_id) <- b.accept.(qb)
    done
  done;
  { Nfa.m; start = [ id1 a.start g.start ]; accept; delta; eps }

(* ------------------------------------------------------------------ *)
(* Core compiler over an internal mask-free AST                        *)
(* ------------------------------------------------------------------ *)

type flat =
  | F_false
  | F_sel of bool array
  | F_or of flat * flat
  | F_and of flat * flat
  | F_not of flat
  | F_relative of flat * flat
  | F_relative_plus of flat
  | F_relative_n of int * flat
  | F_prior of flat * flat
  | F_prior_n of int * flat
  | F_sequence of flat * flat
  | F_sequence_n of int * flat
  | F_choose of int * flat
  | F_every of int * flat
  | F_fa of flat * flat * flat
  | F_fa_abs of flat * flat * flat

let rec compile_flat ~m (e : flat) : Dfa.t =
  let dfa = function e -> compile_flat ~m e in
  let nfa e = Nfa.of_dfa (dfa e) in
  let det x = minimize (Nfa.determinize x) in
  match e with
  | F_false -> Dfa.empty ~m
  | F_sel sel ->
    if Array.length sel <> m then invalid_arg "Compile: selector length mismatch";
    Dfa.leaf ~m (fun c -> sel.(c))
  | F_or (a, b) -> minimize (Dfa.union (dfa a) (dfa b))
  | F_and (a, b) -> minimize (Dfa.inter (dfa a) (dfa b))
  | F_not a -> minimize (Dfa.complement (dfa a))
  | F_relative (a, b) -> det (Nfa.concat (nfa a) (nfa b))
  | F_relative_plus a -> det (Nfa.plus (nfa a))
  | F_relative_n (n, a) ->
    let na = nfa a in
    if n = 1 then det (Nfa.plus na)
    else det (Nfa.concat (Nfa.power na (n - 1)) (Nfa.plus na))
  | F_prior (a, b) ->
    let before = det (Nfa.concat (nfa a) (Nfa.any_plus ~m)) in
    minimize (Dfa.inter before (dfa b))
  | F_prior_n (n, a) -> counting (dfa a) (`At_least n)
  | F_sequence (a, b) ->
    let shifted = det (Nfa.concat (nfa a) (Nfa.any_word ~m 1)) in
    minimize (Dfa.inter shifted (dfa b))
  | F_sequence_n (n, a) ->
    let da = dfa a in
    let shift d = det (Nfa.concat (Nfa.of_dfa d) (Nfa.any_word ~m 1)) in
    let acc = ref da in
    let cur = ref da in
    for _i = 1 to n - 1 do
      cur := shift !cur;
      acc := minimize (Dfa.inter !acc !cur)
    done;
    !acc
  | F_choose (n, a) -> counting (dfa a) (`Exact n)
  | F_every (n, a) -> counting (dfa a) (`Mod n)
  | F_fa (a, b, g) -> det (Nfa.concat (nfa a) (Nfa.of_dfa (first_match (dfa b) (dfa g))))
  | F_fa_abs (a, b, g) -> det (fa_abs_nfa (dfa a) (dfa b) (dfa g))

(* ------------------------------------------------------------------ *)
(* Hierarchical flattening of Masked nodes                             *)
(* ------------------------------------------------------------------ *)

let max_deps = 16

(* Extract levels innermost-first. Returns the list of
   (mask_id, expression-with-derived-leaves) plus the top expression. *)
let flatten (e : Lowered.t) =
  let levels = ref [] in
  let n_levels = ref 0 in
  (* Rebuild the expression with Masked nodes replaced by a fresh
     selector-style leaf. We represent a derived reference as a negative
     pseudo-symbol via a custom flat leaf later, so here we produce a
     hybrid tree directly in terms of [flat] once the extended alphabet is
     known. Instead we first collect per-level Lowered-like trees where a
     special encoding marks derived leaves. *)
  let rec strip (e : Lowered.t) : Lowered.t =
    match e with
    | False | Atom _ -> e
    | Or (a, b) -> Or (strip a, strip b)
    | And (a, b) -> And (strip a, strip b)
    | Not a -> Not (strip a)
    | Relative (a, b) -> Relative (strip a, strip b)
    | Relative_plus a -> Relative_plus (strip a)
    | Relative_n (n, a) -> Relative_n (n, strip a)
    | Prior (a, b) -> Prior (strip a, strip b)
    | Prior_n (n, a) -> Prior_n (n, strip a)
    | Sequence (a, b) -> Sequence (strip a, strip b)
    | Sequence_n (n, a) -> Sequence_n (n, strip a)
    | Choose (n, a) -> Choose (n, strip a)
    | Every (n, a) -> Every (n, strip a)
    | Fa (a, b, g) -> Fa (strip a, strip b, strip g)
    | Fa_abs (a, b, g) -> Fa_abs (strip a, strip b, strip g)
    | Masked (a, mask_id) ->
      let body = strip a in
      let idx = !n_levels in
      incr n_levels;
      levels := (mask_id, body) :: !levels;
      (* Re-use Masked as the derived marker: mask_id field now holds the
         level index, and the body is [False] to mark it as a leaf. *)
      Masked (False, idx)
  in
  let top = strip e in
  (List.rev !levels, top)

let derived_refs (e : Lowered.t) =
  let refs =
    Lowered.fold
      (fun acc n -> match n with Lowered.Masked (False, idx) -> idx :: acc | _ -> acc)
      [] e
  in
  List.sort_uniq compare refs

(* Translate a stripped tree into [flat] over the extended alphabet
   [m * 2^|deps|]. *)
let to_flat ~m ~deps (e : Lowered.t) : flat =
  let d = Array.length deps in
  let width = 1 lsl d in
  let m_ext = m * width in
  let local_of_idx idx =
    let rec find i = if deps.(i) = idx then i else find (i + 1) in
    find 0
  in
  let rec go (e : Lowered.t) : flat =
    match e with
    | False -> F_false
    | Atom sel -> F_sel (Array.init m_ext (fun s -> sel.(s / width)))
    | Masked (False, idx) ->
      let j = local_of_idx idx in
      F_sel (Array.init m_ext (fun s -> s land (1 lsl j) <> 0))
    | Masked (_, _) -> assert false (* flatten removed real Masked nodes *)
    | Or (a, b) -> F_or (go a, go b)
    | And (a, b) -> F_and (go a, go b)
    | Not a -> F_not (go a)
    | Relative (a, b) -> F_relative (go a, go b)
    | Relative_plus a -> F_relative_plus (go a)
    | Relative_n (n, a) -> F_relative_n (n, go a)
    | Prior (a, b) -> F_prior (go a, go b)
    | Prior_n (n, a) -> F_prior_n (n, go a)
    | Sequence (a, b) -> F_sequence (go a, go b)
    | Sequence_n (n, a) -> F_sequence_n (n, go a)
    | Choose (n, a) -> F_choose (n, go a)
    | Every (n, a) -> F_every (n, go a)
    | Fa (a, b, g) -> F_fa (go a, go b, go g)
    | Fa_abs (a, b, g) -> F_fa_abs (go a, go b, go g)
  in
  go e

(* Every automaton level additionally gets a row-major packed transition
   table over its own (extended) alphabet: cell [q * m_ext + sym] holds
   [(q' lsl 1) lor accept q'], so the hot-path step is one load, one
   shift and one bit test per level — the paper's "one transition-table
   lookup per posted event", generalized to the hierarchical stack.
   Capped so a pathological automaton cannot pin megabytes per
   detector; the cap is one shared budget across the whole stack. *)
let flat_cells_limit = 1 lsl 22

let flatten_dfa (d : Dfa.t) =
  let n = Array.length d.accept in
  if n * d.m > flat_cells_limit then None
  else begin
    let f = Array.make (n * d.m) 0 in
    for q = 0 to n - 1 do
      let row = d.delta.(q) in
      for s = 0 to d.m - 1 do
        let q' = row.(s) in
        f.((q * d.m) + s) <- (q' lsl 1) lor Bool.to_int d.accept.(q')
      done
    done;
    Some f
  end

let compile ~m (e : Lowered.t) : t =
  if m < 1 then invalid_arg "Compile.compile: alphabet must be non-empty";
  let level_specs, top = flatten e in
  let build_level body =
    let deps = Array.of_list (derived_refs body) in
    if Array.length deps > max_deps then
      invalid_arg "Compile.compile: too many nested composite masks";
    let dfa = compile_flat ~m:(m * (1 lsl Array.length deps)) (to_flat ~m ~deps body) in
    (deps, dfa)
  in
  (* one flat-cell budget per detector, shared by the whole level stack *)
  let budget = ref flat_cells_limit in
  let flatten_within (d : Dfa.t) =
    let cells = Array.length d.accept * d.m in
    if cells > !budget then None
    else begin
      budget := !budget - cells;
      flatten_dfa d
    end
  in
  let levels =
    List.map
      (fun (mask_id, body) ->
        let deps, dfa = build_level body in
        { l_mask = mask_id; l_deps = deps; l_dfa = dfa;
          l_flat = flatten_within dfa })
      level_specs
  in
  let top_deps, top_dfa = build_level top in
  let flat = flatten_within top_dfa in
  let levels = Array.of_list levels in
  (* [step_flat]/[step_cells] carry derived bits in one int, so stacks
     beyond 62 levels keep the boxed path even if every table fit *)
  let all_flat =
    flat <> None
    && Array.length levels <= 62
    && Array.for_all (fun l -> l.l_flat <> None) levels
  in
  { base_m = m; levels; top_deps; top_dfa; flat; all_flat }

let compile_pure ~m (e : Lowered.t) : Dfa.t =
  let c = compile ~m e in
  if Array.length c.levels > 0 then
    invalid_arg "Compile.compile_pure: expression has composite masks";
  c.top_dfa

let n_state_words t = Array.length t.levels + 1

let total_dfa_states t =
  Array.fold_left
    (fun acc l -> acc + Dfa.n_states l.l_dfa)
    (Dfa.n_states t.top_dfa) t.levels

type state = int array

let initial t =
  Array.init (n_state_words t) (fun i ->
      if i < Array.length t.levels then t.levels.(i).l_dfa.start else t.top_dfa.start)

let ext_symbol base_sym deps fired =
  let bits = ref 0 in
  Array.iteri (fun j idx -> if fired.(idx) then bits := !bits lor (1 lsl j)) deps;
  (base_sym * (1 lsl Array.length deps)) + !bits

(* Derived-event bits carried as one int: levels are capped well below the
   word size in practice ([max_deps] bounds the fan-in, and expressions
   with > 62 Masked nodes fall back to the boxed path below). *)
let rec ext_bits deps fired_bits j acc =
  if j >= Array.length deps then acc
  else
    let acc =
      if fired_bits land (1 lsl deps.(j)) <> 0 then acc lor (1 lsl j) else acc
    in
    ext_bits deps fired_bits (j + 1) acc

let[@inline] ext_symbol_bits base_sym deps fired_bits =
  (base_sym * (1 lsl Array.length deps)) + ext_bits deps fired_bits 0 0

let step_boxed t state base_sym ~mask =
  let n_levels = Array.length t.levels in
  let fired = Array.make n_levels false in
  for i = 0 to n_levels - 1 do
    let level = t.levels.(i) in
    let sym = ext_symbol base_sym level.l_deps fired in
    let q = Dfa.step level.l_dfa state.(i) sym in
    state.(i) <- q;
    fired.(i) <- Dfa.accepts_state level.l_dfa q && mask level.l_mask
  done;
  let sym = ext_symbol base_sym t.top_deps fired in
  let q = Dfa.step t.top_dfa state.(n_levels) sym in
  state.(n_levels) <- q;
  Dfa.accepts_state t.top_dfa q

let rec step_levels t state base_sym ~mask i fired_bits =
  let n_levels = Array.length t.levels in
  if i < n_levels then begin
    let level = t.levels.(i) in
    let sym = ext_symbol_bits base_sym level.l_deps fired_bits in
    let q = Dfa.step level.l_dfa state.(i) sym in
    state.(i) <- q;
    let fired_bits =
      if Dfa.accepts_state level.l_dfa q && mask level.l_mask then
        fired_bits lor (1 lsl i)
      else fired_bits
    in
    step_levels t state base_sym ~mask (i + 1) fired_bits
  end
  else begin
    let sym = ext_symbol_bits base_sym t.top_deps fired_bits in
    let q = Dfa.step t.top_dfa state.(n_levels) sym in
    state.(n_levels) <- q;
    Dfa.accepts_state t.top_dfa q
  end

(* Fully-flat hierarchical stepping: one packed-table load per level
   (extended symbol = base symbol shifted past the level's derived
   bits), mask filters consulted only on acceptance. [cells]/[off] is
   the structure-of-arrays form — the word-vector paths pass the state
   array with offset 0. The two variants differ only in how masks are
   evaluated (caller closure vs inline mask table). *)
let rec step_flat t cells off base_sym ~mask i fired_bits =
  let n_levels = Array.length t.levels in
  if i < n_levels then begin
    let level = t.levels.(i) in
    let d = Array.length level.l_deps in
    let sym = (base_sym lsl d) lor ext_bits level.l_deps fired_bits 0 0 in
    let f = match level.l_flat with Some f -> f | None -> assert false in
    let cell = f.((cells.(off + i) * (t.base_m lsl d)) + sym) in
    cells.(off + i) <- cell lsr 1;
    let fired_bits =
      if cell land 1 = 1 && mask level.l_mask then fired_bits lor (1 lsl i)
      else fired_bits
    in
    step_flat t cells off base_sym ~mask (i + 1) fired_bits
  end
  else begin
    let d = Array.length t.top_deps in
    let sym = (base_sym lsl d) lor ext_bits t.top_deps fired_bits 0 0 in
    let f = match t.flat with Some f -> f | None -> assert false in
    let cell = f.((cells.(off + i) * (t.base_m lsl d)) + sym) in
    cells.(off + i) <- cell lsr 1;
    cell land 1 = 1
  end

let step t state base_sym ~mask =
  if base_sym < 0 || base_sym >= t.base_m then invalid_arg "Compile.step: bad symbol";
  if Array.length t.levels = 0 then
    match t.flat with
    | Some f ->
      let cell = f.((state.(0) * t.base_m) + base_sym) in
      state.(0) <- cell lsr 1;
      cell land 1 = 1
    | None -> step_levels t state base_sym ~mask 0 0
  else if t.all_flat then step_flat t state 0 base_sym ~mask 0 0
  else if Array.length t.levels > 62 then step_boxed t state base_sym ~mask
  else step_levels t state base_sym ~mask 0 0

(* Same stepping, but mask filters are evaluated inline from the mask
   table — no per-step closure, which is what keeps the database's
   posting kernel allocation-free on the automaton side. *)
let rec step_levels_masks t state base_sym ~masks ~env i fired_bits =
  let n_levels = Array.length t.levels in
  if i < n_levels then begin
    let level = t.levels.(i) in
    let sym = ext_symbol_bits base_sym level.l_deps fired_bits in
    let q = Dfa.step level.l_dfa state.(i) sym in
    state.(i) <- q;
    let fired_bits =
      if Dfa.accepts_state level.l_dfa q && Mask.eval_bool env masks.(level.l_mask)
      then fired_bits lor (1 lsl i)
      else fired_bits
    in
    step_levels_masks t state base_sym ~masks ~env (i + 1) fired_bits
  end
  else begin
    let sym = ext_symbol_bits base_sym t.top_deps fired_bits in
    let q = Dfa.step t.top_dfa state.(n_levels) sym in
    state.(n_levels) <- q;
    Dfa.accepts_state t.top_dfa q
  end

(* [step_flat] with masks evaluated inline from the mask table — no
   per-step closure; the kernel's allocation-free form. *)
let rec step_flat_masks t cells off base_sym ~masks ~env i fired_bits =
  let n_levels = Array.length t.levels in
  if i < n_levels then begin
    let level = t.levels.(i) in
    let d = Array.length level.l_deps in
    let sym = (base_sym lsl d) lor ext_bits level.l_deps fired_bits 0 0 in
    let f = match level.l_flat with Some f -> f | None -> assert false in
    let cell = f.((cells.(off + i) * (t.base_m lsl d)) + sym) in
    cells.(off + i) <- cell lsr 1;
    let fired_bits =
      if cell land 1 = 1 && Mask.eval_bool env masks.(level.l_mask) then
        fired_bits lor (1 lsl i)
      else fired_bits
    in
    step_flat_masks t cells off base_sym ~masks ~env (i + 1) fired_bits
  end
  else begin
    let d = Array.length t.top_deps in
    let sym = (base_sym lsl d) lor ext_bits t.top_deps fired_bits 0 0 in
    let f = match t.flat with Some f -> f | None -> assert false in
    let cell = f.((cells.(off + i) * (t.base_m lsl d)) + sym) in
    cells.(off + i) <- cell lsr 1;
    cell land 1 = 1
  end

let step_masks t state base_sym ~masks ~env =
  if base_sym < 0 || base_sym >= t.base_m then invalid_arg "Compile.step: bad symbol";
  if Array.length t.levels = 0 then
    match t.flat with
    | Some f ->
      let cell = f.((state.(0) * t.base_m) + base_sym) in
      state.(0) <- cell lsr 1;
      cell land 1 = 1
    | None -> step_levels_masks t state base_sym ~masks ~env 0 0
  else if t.all_flat then step_flat_masks t state 0 base_sym ~masks ~env 0 0
  else if Array.length t.levels > 62 then
    step_boxed t state base_sym ~mask:(fun id -> Mask.eval_bool env masks.(id))
  else step_levels_masks t state base_sym ~masks ~env 0 0

let has_flat t = t.all_flat

let write_initial t cells off =
  let n = Array.length t.levels in
  for i = 0 to n - 1 do
    cells.(off + i) <- t.levels.(i).l_dfa.start
  done;
  cells.(off + n) <- t.top_dfa.start

let step_cells t cells off sym ~masks ~env =
  if Array.length t.levels = 0 then
    match t.flat with
    | Some f ->
      let cell = f.((cells.(off) * t.base_m) + sym) in
      cells.(off) <- cell lsr 1;
      cell land 1 = 1
    | None -> invalid_arg "Compile.step_cells: automaton has no flat tables"
  else if t.all_flat then step_flat_masks t cells off sym ~masks ~env 0 0
  else invalid_arg "Compile.step_cells: automaton has no flat tables"

let run t ~mask history =
  let state = initial t in
  Array.mapi (fun p sym -> step t state sym ~mask:(fun id -> mask id p)) history

(** Disjoint-alphabet construction (paper §5).

    Finite-automaton detection needs the logical events of a trigger to be
    pairwise disjoint. When several logical events share a basic event but
    carry different (possibly overlapping) masks, the paper rewrites them
    into Boolean combinations that {e are} disjoint. This module performs
    that rewriting: for each basic-event kind with guards [g1..gk] it
    creates one {e atom} per satisfiable truth assignment with at least
    one true guard (up to [2^k - 1] atoms — the combinatorial explosion
    the paper accepts), and each original logical event becomes the union
    of the atoms in which its guard is true. *)

type guard = {
  g_formals : Expr.formal list;
  g_mask : Mask.t option;
}
(** What distinguishes logical events over the same basic event. A guard
    with formals also constrains the occurrence's arity (overload
    disambiguation). *)

type t = {
  keys : Symbol.basic array;  (** distinct basic-event kinds *)
  guards : guard array array;  (** guards, per key *)
  atoms : (int * int) array;
      (** symbol -> (key index, guard truth-assignment bits) *)
  atom_of : (int, int) Hashtbl.t;  (** (key, bits) encoded -> symbol *)
  key_of : (Symbol.basic, int) Hashtbl.t;
      (** basic event -> key index; makes classification O(guards of the
          posted basic) rather than O(whole alphabet) *)
  sym_tables : int array array;
      (** per key: dense (guard-truth-assignment bits -> symbol) table
          when the key has few guards, [[||]] otherwise (fall back to
          [atom_of]); impossible assignments map to {!other} *)
}

val n_symbols : t -> int
(** Atoms plus one trailing "other" symbol; this is the DFA alphabet size. *)

val other : t -> int
(** The symbol fed to automata when an occurrence matches no logical event
    of this trigger. *)

val build : Expr.t -> t * Lowered.t * Mask.t array
(** [build expr] computes the disjoint alphabet of [expr], the lowered
    expression over it, and the table of composite masks referenced by
    [Lowered.Masked] indices. Raises [Invalid_argument] if [expr] fails
    {!Expr.validate} or would need more than {!max_atoms} atoms. *)

val max_atoms : int ref
(** Safety cap on the §5 blowup (default 4096). *)

val classify :
  t -> env:Mask.env -> Symbol.occurrence -> int
(** Map an occurrence to its alphabet symbol by evaluating each guard of
    the occurrence's basic-event kind. [env] supplies object-field,
    dereference and function bindings; event parameters are bound from the
    occurrence's arguments by position using each guard's own formals.
    Mask evaluation errors propagate as {!Mask.Eval_error}. *)

val concerns : t -> Symbol.basic -> bool
(** Is this basic-event kind one of the alphabet's keys? O(1). An
    occurrence whose basic is not in the alphabet always classifies to
    {!other} — the database's dispatch index uses this to skip whole
    triggers without classifying. *)

val relevant_basics : t -> Symbol.basic_key list
(** The distinct dispatch keys ({!Symbol.basic_key}) guarded on by this
    alphabet, in key order. The set is an over-approximation only for
    time events (all [Time _] collapse to one key); for every other
    basic it is exact: [concerns t b] implies
    [List.mem (Symbol.basic_key b) (relevant_basics t)]. *)

val classify_guards :
  t -> env:Mask.env -> Symbol.occurrence -> (int * int) option
(** The raw classification of an occurrence: [None] when its basic is not
    in the alphabet, otherwise [Some (key, bits)] where bit [i] of [bits]
    is set iff guard [i] of [key] matches. [classify] is this plus the
    {!atom_lookup}; exposing the pair lets callers reuse one guard
    evaluation for both automaton stepping and §9 parameter collection. *)

val guard_matches : env:Mask.env -> Symbol.occurrence -> guard -> bool
(** Does the occurrence satisfy this guard (arity and mask, with the
    guard's formals bound to the occurrence's arguments)? *)

(** {2 Packed classification}

    The posting kernel's allocation-free form of {!classify_guards}: the
    (key, bits) pair is packed into one int, so classification results
    can live in a scratch int buffer instead of option/record cells. *)

val classify_code : t -> env:Mask.env -> Symbol.occurrence -> int
(** [-1] when the occurrence's basic is not in the alphabet, otherwise
    [(key lsl 20) lor bits] (guard counts per key are < 20, enforced by
    {!build}). Mask evaluation errors propagate as {!Mask.Eval_error}. *)

val code_key : int -> int
val code_bits : int -> int
(** Unpack a non-negative {!classify_code} result. *)

val sym_of_code : t -> int -> int
(** The alphabet symbol of a packed code — {!other} for [-1], zero bits
    or impossible assignments; a dense table load for small keys. *)

val atom_lookup : t -> key:int -> bits:int -> int option
(** The symbol for a (key, guard-truth-assignment) pair, if that
    assignment is possible. *)

val guard_selector : t -> key:int -> guard_bit:int -> bool array
(** The atom-set selector (length {!n_symbols}) of one logical event:
    true at every atom of [key] whose assignment has bit [guard_bit]
    set. *)

val pp : Format.formatter -> t -> unit

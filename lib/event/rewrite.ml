module Value = Ode_base.Value

type guard = {
  g_formals : Expr.formal list;
  g_mask : Mask.t option;
}

type t = {
  keys : Symbol.basic array;
  guards : guard array array;
  atoms : (int * int) array;
  atom_of : (int, int) Hashtbl.t;
  key_of : (Symbol.basic, int) Hashtbl.t;
  sym_tables : int array array;
}

let max_atoms = ref 4096

let n_symbols t = Array.length t.atoms + 1
let other t = Array.length t.atoms

(* (key, bits) -> table key. Bits are bounded by max_atoms so this cannot
   collide. *)
let encode key bits = (key * (!max_atoms * 2)) + bits

let guard_arity g = match g.g_formals with [] -> None | fs -> Some (List.length fs)

(* A truth assignment is statically impossible if two true guards pin the
   occurrence to different arities. *)
let assignment_possible guards bits =
  let arity = ref None in
  let ok = ref true in
  Array.iteri
    (fun i g ->
      if bits land (1 lsl i) <> 0 then
        match guard_arity g with
        | None -> ()
        | Some a -> (
          match !arity with
          | None -> arity := Some a
          | Some a' -> if a <> a' then ok := false))
    guards;
  !ok

let build expr =
  (match Expr.validate expr with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Rewrite.build: " ^ msg));
  (* Collect distinct (basic, guard) pairs. *)
  let keys = ref [] in
  let n_keys = ref 0 in
  let key_index : (Symbol.basic, int) Hashtbl.t = Hashtbl.create 16 in
  let guards_of_key : (int, guard list ref) Hashtbl.t = Hashtbl.create 16 in
  let guard_index : (Symbol.basic * guard, int * int) Hashtbl.t = Hashtbl.create 16 in
  let intern_leaf (l : Expr.leaf) =
    let g = { g_formals = l.formals; g_mask = l.mask } in
    match Hashtbl.find_opt guard_index (l.basic, g) with
    | Some (k, gi) -> (k, gi)
    | None ->
      let k =
        match Hashtbl.find_opt key_index l.basic with
        | Some k -> k
        | None ->
          let k = !n_keys in
          incr n_keys;
          Hashtbl.add key_index l.basic k;
          keys := l.basic :: !keys;
          Hashtbl.add guards_of_key k (ref []);
          k
      in
      let gs = Hashtbl.find guards_of_key k in
      let gi = List.length !gs in
      gs := !gs @ [ g ];
      Hashtbl.add guard_index (l.basic, g) (k, gi);
      (k, gi)
  and guard_index_of (l : Expr.leaf) =
    Hashtbl.find guard_index (l.basic, { g_formals = l.formals; g_mask = l.mask })
  in
  List.iter (fun l -> ignore (intern_leaf l)) (Expr.leaves expr);
  let keys = Array.of_list (List.rev !keys) in
  let guards =
    Array.init (Array.length keys) (fun k ->
        Array.of_list !(Hashtbl.find guards_of_key k))
  in
  (* Enumerate atoms. *)
  let atoms = ref [] in
  let n_atoms = ref 0 in
  let atom_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun k gs ->
      let kg = Array.length gs in
      if kg >= 20 then invalid_arg "Rewrite.build: too many guards on one basic event";
      for bits = 1 to (1 lsl kg) - 1 do
        if assignment_possible gs bits then begin
          if !n_atoms >= !max_atoms then
            invalid_arg "Rewrite.build: atom blowup exceeds max_atoms";
          Hashtbl.add atom_of (encode k bits) !n_atoms;
          atoms := (k, bits) :: !atoms;
          incr n_atoms
        end
      done)
    guards;
  let atoms = Array.of_list (List.rev !atoms) in
  (* Dense (guard-truth-assignment -> symbol) tables, one per key with a
     small guard count: the posting kernel's classification is then a
     guard sweep plus one array load, no hashing. Keys with many guards
     keep the [atom_of] hash fallback ([[||]] sentinel). *)
  let other_sym = Array.length atoms in
  let sym_tables =
    Array.map
      (fun gs ->
        let kg = Array.length gs in
        if kg > 12 then [||] else Array.make (1 lsl kg) other_sym)
      guards
  in
  Array.iteri
    (fun sym (k, bits) ->
      let tbl = sym_tables.(k) in
      if Array.length tbl > 0 then tbl.(bits) <- sym)
    atoms;
  let alphabet =
    { keys; guards; atoms; atom_of; key_of = key_index; sym_tables }
  in
  let m = n_symbols alphabet in
  (* Lower the expression. *)
  let masks = ref [] in
  let n_masks = ref 0 in
  let selector k gi =
    let sel = Array.make m false in
    Array.iteri
      (fun sym (k', bits) -> if k' = k && bits land (1 lsl gi) <> 0 then sel.(sym) <- true)
      alphabet.atoms;
    sel
  in
  let fold_binary op es =
    match es with
    | [] -> assert false (* validate rejects empty curried operators *)
    | e :: rest -> List.fold_left op e rest
  in
  let rec lower (e : Expr.t) : Lowered.t =
    match e with
    | Leaf l ->
      let k, gi = guard_index_of l in
      Atom (selector k gi)
    | Or (e1, e2) -> Or (lower e1, lower e2)
    | And (e1, e2) -> And (lower e1, lower e2)
    | Not e -> Not (lower e)
    | Relative es ->
      fold_binary (fun a b -> Lowered.Relative (a, b)) (List.map lower es)
    | Relative_plus e -> Relative_plus (lower e)
    | Relative_n (n, e) -> Relative_n (n, lower e)
    | Prior es -> fold_binary (fun a b -> Lowered.Prior (a, b)) (List.map lower es)
    | Prior_n (n, e) -> Prior_n (n, lower e)
    | Sequence es ->
      fold_binary (fun a b -> Lowered.Sequence (a, b)) (List.map lower es)
    | Sequence_n (n, e) -> Sequence_n (n, lower e)
    | Choose (n, e) -> Choose (n, lower e)
    | Every (n, e) -> Every (n, lower e)
    | Fa (e, f, g) -> Fa (lower e, lower f, lower g)
    | Fa_abs (e, f, g) -> Fa_abs (lower e, lower f, lower g)
    | Masked (e, mask) ->
      let id = !n_masks in
      incr n_masks;
      masks := mask :: !masks;
      Masked (lower e, id)
  in
  let lowered = lower expr in
  (alphabet, lowered, Array.of_list (List.rev !masks))

let bind_formals (formals : Expr.formal list) args (base : Mask.env) : Mask.env =
  let bound =
    List.map2 (fun (f : Expr.formal) v -> (f.f_name, v)) formals args
  in
  {
    base with
    var =
      (fun name ->
        match List.assoc_opt name bound with
        | Some v -> Some v
        | None -> base.var name);
  }

let guard_matches ~env (o : Symbol.occurrence) g =
  let arity_ok =
    match guard_arity g with None -> true | Some a -> a = List.length o.args
  in
  arity_ok
  &&
  match g.g_mask with
  | None -> true
  | Some mask ->
    let env =
      if g.g_formals = [] then env else bind_formals g.g_formals o.args env
    in
    Mask.eval_bool env mask

let concerns t (b : Symbol.basic) = Hashtbl.mem t.key_of b

let relevant_basics t =
  Array.fold_left
    (fun acc b ->
      let key = Symbol.basic_key b in
      if List.exists (Symbol.equal_basic_key key) acc then acc else key :: acc)
    [] t.keys
  |> List.rev

let classify_guards t ~env (o : Symbol.occurrence) =
  match Hashtbl.find_opt t.key_of o.basic with
  | None -> None
  | Some key ->
    let gs = t.guards.(key) in
    let bits = ref 0 in
    Array.iteri (fun i g -> if guard_matches ~env o g then bits := !bits lor (1 lsl i)) gs;
    Some (key, !bits)

let classify t ~env (o : Symbol.occurrence) =
  match classify_guards t ~env o with
  | None -> other t
  | Some (_, 0) -> other t
  | Some (key, bits) -> (
    match Hashtbl.find_opt t.atom_of (encode key bits) with
    | Some sym -> sym
    | None -> other t (* statically impossible assignment: defensive *))

(* Packed classification for the posting kernel: the result is one int,
   [-1] when the occurrence's basic is not in the alphabet, otherwise
   [(key lsl 20) lor bits]. [build] rejects >= 20 guards per key so the
   bits always fit. Written with explicit recursion so the steady-state
   path allocates nothing. *)
let code_key_shift = 20
let[@inline] code_key code = code lsr code_key_shift
let[@inline] code_bits code = code land ((1 lsl code_key_shift) - 1)

let rec guard_bits_from ~env o (gs : guard array) i acc =
  if i >= Array.length gs then acc
  else
    let acc =
      if guard_matches ~env o gs.(i) then acc lor (1 lsl i) else acc
    in
    guard_bits_from ~env o gs (i + 1) acc

let classify_code t ~env (o : Symbol.occurrence) =
  match Hashtbl.find t.key_of o.basic with
  | exception Not_found -> -1
  | key ->
    (key lsl code_key_shift) lor guard_bits_from ~env o t.guards.(key) 0 0

let sym_of_code t code =
  if code < 0 then other t
  else begin
    let bits = code_bits code in
    if bits = 0 then other t
    else begin
      let key = code_key code in
      let tbl = t.sym_tables.(key) in
      if Array.length tbl > 0 then tbl.(bits)
      else
        match Hashtbl.find_opt t.atom_of (encode key bits) with
        | Some sym -> sym
        | None -> other t (* statically impossible assignment: defensive *)
    end
  end

let atom_lookup t ~key ~bits = Hashtbl.find_opt t.atom_of (encode key bits)

let guard_selector t ~key ~guard_bit =
  let sel = Array.make (n_symbols t) false in
  Array.iteri
    (fun sym (k, bits) ->
      if k = key && bits land (1 lsl guard_bit) <> 0 then sel.(sym) <- true)
    t.atoms;
  sel

let pp ppf t =
  Fmt.pf ppf "@[<v>alphabet: %d atoms + other@," (Array.length t.atoms);
  Array.iteri
    (fun sym (k, bits) ->
      Fmt.pf ppf "  %d: %a bits=%d@," sym Symbol.pp_basic t.keys.(k) bits)
    t.atoms;
  Fmt.pf ppf "@]"

(** Compilation of event expressions to finite automata (paper §5).

    A mask-free expression compiles to a single minimized DFA over the
    disjoint-atom alphabet; the detection state is then exactly one
    integer — the paper's "one word per active trigger per object".

    Expressions with composite masks ([Lowered.Masked]) compile to a small
    stack of {e hierarchical} automata: each masked subexpression gets its
    own DFA, and its mask-filtered acceptance becomes a {e derived symbol}
    in the alphabet of the automata above it (base atoms × derived-bit
    subsets). Detection state is one integer per level. *)

type level = {
  l_mask : int;  (** mask-table index filtering this level's acceptance *)
  l_deps : int array;
      (** derived events this level's expression references (indices of
          lower levels), ascending *)
  l_dfa : Dfa.t;  (** over the extended alphabet [m * 2^|l_deps|] *)
  l_flat : int array option;
      (** this level's row-major packed transition table over its
          extended alphabet; [None] only when the stack blew the shared
          cell budget *)
}

type t = {
  base_m : int;  (** atom alphabet size, including "other" *)
  levels : level array;  (** innermost first; one per [Masked] node *)
  top_deps : int array;
  top_dfa : Dfa.t;
  flat : int array option;
      (** the top automaton's row-major packed transition table over
          its extended alphabet [base_m * 2^|top_deps|]. Cell
          [q * m_ext + sym] holds [(q' lsl 1) lor accept(q')], so a
          step is one array load per level. [None] when the table would
          exceed the internal cell cap. *)
  all_flat : bool;
      (** every level and the top carry a packed table (and the stack
          is at most 62 levels): the whole automaton steps through
          {!step_cells} — one load per level, masks evaluated only on
          acceptance. *)
}

val minimization : bool ref
(** Minimize intermediate automata during compilation (default [true]).
    Exposed for the E10 ablation benchmark; leave on in production. *)

val compile : m:int -> Lowered.t -> t
(** [m] must match the selectors' length in the expression's [Atom]s. *)

val compile_pure : m:int -> Lowered.t -> Dfa.t
(** Single-automaton compilation; raises [Invalid_argument] if the
    expression contains [Masked] nodes. *)

val n_state_words : t -> int
(** Integers of per-object detection state (levels + 1). *)

val total_dfa_states : t -> int

type state = int array

val initial : t -> state

val step : t -> state -> int -> mask:(int -> bool) -> bool
(** [step t state symbol ~mask] advances every level on the base [symbol]
    (extended with derived bits computed level by level), consulting
    [mask mask_id] whenever a level's DFA accepts, and returns whether the
    top-level event occurs at this point. [state] is updated in place.
    {!all_flat} automata step through the packed tables — one table
    load per level, no allocation. *)

val step_masks : t -> state -> int -> masks:Mask.t array -> env:Mask.env -> bool
(** {!step} with the mask filter evaluated inline from a mask table
    instead of through a caller-built closure — the allocation-free form
    the posting kernel uses ([masks] is the detector's composite-mask
    table, evaluated in [env] "now"). *)

val has_flat : t -> bool
(** The automaton is fully packed ({!all_flat}): every level steps
    through a flat table, so the whole [n_state_words t]-word state
    vector is eligible for the database's structure-of-arrays packing. *)

val write_initial : t -> int array -> int -> unit
(** [write_initial t cells off] writes the initial state vector
    ([n_state_words t] words — level starts, then the top start) into
    [cells] at [off]. *)

val step_cells : t -> int array -> int -> int -> masks:Mask.t array -> env:Mask.env -> bool
(** [step_cells t cells off sym ~masks ~env] steps the
    [n_state_words t]-word state vector held at [cells.(off ..)] in
    place through the per-level {!flat} tables and returns top-level
    acceptance — the structure-of-arrays entry point: the database
    packs the state vectors of all activations sharing a detector into
    one int array per shard and sweeps it linearly. Composite masks are
    evaluated inline against [env] when a level accepts (mask-free
    automata never consult them). Raises [Invalid_argument] unless
    {!has_flat}. *)

val run : t -> mask:(int -> int -> bool) -> int array -> bool array
(** Run over a whole history; [mask mask_id position]. Fresh state. *)

(** Building blocks, exposed for tests and for {!Committed}: *)

val counting :
  Dfa.t -> [ `Exact of int | `At_least of int | `Mod of int ] -> Dfa.t
(** Counting construction: occurrences of the argument language are
    numbered 1, 2, …; accept those whose index matches the condition. *)

val first_match : Dfa.t -> Dfa.t -> Dfa.t
(** [first_match f g] accepts the words of [L(f)] none of whose proper
    nonempty prefixes lie in [L(f) ∪ L(g)] — the core of [fa]. *)

type qualifier = Before | After

type time_pattern = {
  year : int option;
  mon : int option;
  day : int option;
  hr : int option;
  min : int option;
  sec : int option;
  ms : int option;
}

type time_spec =
  | At of time_pattern
  | Every of int64
  | After_period of int64

type basic =
  | Create
  | Delete
  | Update of qualifier
  | Read of qualifier
  | Access of qualifier
  | Method of qualifier * string
  | Tbegin
  | Tcomplete
  | Tcommit
  | Tabort of qualifier
  | Time of time_spec

type occurrence = {
  basic : basic;
  args : Ode_base.Value.t list;
  at : int64;
}

(* Dispatch keys: [Time] payloads collapse to one bucket so hashing a key
   never walks a time pattern, and all time events share one index slot
   (classification still compares full specs). *)
type basic_key =
  | Key of basic
  | Key_time

let basic_key = function Time _ -> Key_time | b -> Key b
let equal_basic_key (a : basic_key) (b : basic_key) = a = b

let wildcard_pattern =
  { year = None; mon = None; day = None; hr = None; min = None; sec = None; ms = None }

let pattern ?year ?mon ?day ?hr ?min ?sec ?ms () =
  { year; mon; day; hr; min; sec; ms }

let equal_basic (b1 : basic) (b2 : basic) = b1 = b2
let compare_basic (b1 : basic) (b2 : basic) = Stdlib.compare b1 b2

let is_transactional = function
  | Tbegin | Tcomplete | Tcommit | Tabort _ -> true
  | Create | Delete | Update _ | Read _ | Access _ | Method _ | Time _ -> false

let pp_qualifier ppf = function
  | Before -> Fmt.string ppf "before"
  | After -> Fmt.string ppf "after"

let pp_pattern ppf p =
  let fields =
    [ "YR", p.year; "MON", p.mon; "DAY", p.day; "HR", p.hr; "M", p.min;
      "SEC", p.sec; "MS", p.ms ]
  in
  let present = List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) fields in
  Fmt.pf ppf "time(%a)"
    Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
    present

let pp_time_spec ppf = function
  | At p -> Fmt.pf ppf "at %a" pp_pattern p
  | Every ms -> Fmt.pf ppf "every time(MS=%Ld)" ms
  | After_period ms -> Fmt.pf ppf "after time(MS=%Ld)" ms

let pp_basic ppf = function
  | Create -> Fmt.string ppf "after create"
  | Delete -> Fmt.string ppf "before delete"
  | Update q -> Fmt.pf ppf "%a update" pp_qualifier q
  | Read q -> Fmt.pf ppf "%a read" pp_qualifier q
  | Access q -> Fmt.pf ppf "%a access" pp_qualifier q
  | Method (q, name) -> Fmt.pf ppf "%a %s" pp_qualifier q name
  | Tbegin -> Fmt.string ppf "after tbegin"
  | Tcomplete -> Fmt.string ppf "before tcomplete"
  | Tcommit -> Fmt.string ppf "after tcommit"
  | Tabort q -> Fmt.pf ppf "%a tabort" pp_qualifier q
  | Time spec -> pp_time_spec ppf spec

let pp_basic_key ppf = function
  | Key b -> pp_basic ppf b
  | Key_time -> Fmt.string ppf "time(*)"

let pp_occurrence ppf o =
  Fmt.pf ppf "%a(%a)@%Ld" pp_basic o.basic
    Fmt.(list ~sep:(any ", ") Ode_base.Value.pp)
    o.args o.at

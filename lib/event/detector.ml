module Codec = Ode_base.Codec

type mode = Full_history | Committed

type t = {
  uid : int;
  expr : Expr.t;
  alphabet : Rewrite.t;
  masks : Mask.t array;
  compiled : Compile.t;
  mode : mode;
  has_formals : bool;
}

type state = int array

let next_uid = ref 0

let build ~mode expr =
  let alphabet, lowered, masks = Rewrite.build expr in
  let compiled = Compile.compile ~m:(Rewrite.n_symbols alphabet) lowered in
  let has_formals =
    Array.exists
      (Array.exists (fun (g : Rewrite.guard) -> g.g_formals <> []))
      alphabet.Rewrite.guards
  in
  let uid = !next_uid in
  incr next_uid;
  { uid; expr; alphabet; masks; compiled; mode; has_formals }

(* Triggers with identical specifications can share one compiled detector
   (the paper compiles per class; sharing extends that across declarations).
   Opt-in because the result must not depend on the mutable compilation
   knobs ([Compile.minimization], [Rewrite.max_atoms]); the database layer,
   which never touches them, opts in. *)
let shared : (mode * Expr.t, t) Hashtbl.t = Hashtbl.create 32

let make ?(mode = Full_history) ?(share = false) expr =
  if not share then build ~mode expr
  else
    match Hashtbl.find_opt shared (mode, expr) with
    | Some t -> t
    | None ->
      let t = build ~mode expr in
      Hashtbl.add shared (mode, expr) t;
      t

let initial t = Compile.initial t.compiled
let n_state_words t = Compile.n_state_words t.compiled

let concerns t basic = Rewrite.concerns t.alphabet basic
let relevant_basics t = Rewrite.relevant_basics t.alphabet

type classified = {
  c_sym : int;
  c_key : int;
  c_bits : int;
}

let is_relevant c = c.c_key >= 0 && c.c_bits <> 0

let classify t ~env occurrence =
  match Rewrite.classify_guards t.alphabet ~env occurrence with
  | None -> { c_sym = Rewrite.other t.alphabet; c_key = -1; c_bits = 0 }
  | Some (key, bits) ->
    let sym =
      if bits = 0 then Rewrite.other t.alphabet
      else
        match Rewrite.atom_lookup t.alphabet ~key ~bits with
        | Some sym -> sym
        | None -> Rewrite.other t.alphabet (* statically impossible: defensive *)
    in
    { c_sym = sym; c_key = key; c_bits = bits }

let post_classified t state ~env c =
  (* §5: the automaton is advanced only "for each active trigger for which
     a logical event has occurred". An occurrence matching none of this
     trigger's logical events is not part of its history at all — it must
     not break adjacency (sequence) or feed negations. *)
  if c.c_sym = Rewrite.other t.alphabet then false
  else Compile.step_masks t.compiled state c.c_sym ~masks:t.masks ~env

let post t state ~env occurrence =
  post_classified t state ~env (classify t ~env occurrence)

let classify_code t ~env occurrence =
  Rewrite.classify_code t.alphabet ~env occurrence

let[@inline] code_relevant code = code >= 0 && Rewrite.code_bits code <> 0

let post_code t state ~env code =
  let sym = Rewrite.sym_of_code t.alphabet code in
  if sym = Rewrite.other t.alphabet then false
  else Compile.step_masks t.compiled state sym ~masks:t.masks ~env

let has_flat t = Compile.has_flat t.compiled

let initial_word t = t.compiled.Compile.top_dfa.Dfa.start

let write_initial t cells off = Compile.write_initial t.compiled cells off

let post_code_slot t cells off ~env code =
  let sym = Rewrite.sym_of_code t.alphabet code in
  if sym = Rewrite.other t.alphabet then false
  else Compile.step_cells t.compiled cells off sym ~masks:t.masks ~env

let post_classified_slot t cells off ~env c =
  if c.c_sym = Rewrite.other t.alphabet then false
  else Compile.step_cells t.compiled cells off c.c_sym ~masks:t.masks ~env

let copy_state = Array.copy

let[@inline] top_state (state : state) = state.(Array.length state - 1)

let collect_key_bits t key bits (occurrence : Symbol.occurrence) =
  let gs = t.alphabet.Rewrite.guards.(key) in
  let bindings = ref [] in
  Array.iteri
    (fun i (g : Rewrite.guard) ->
      if bits land (1 lsl i) <> 0 && g.g_formals <> [] then
        (* formals and args in lockstep; a matched guard with formals
           pins the arity, so the two lists have equal length *)
        let rec bind formals args =
          match formals, args with
          | (f : Expr.formal) :: fs, v :: vs ->
            bindings := (f.f_name, v) :: !bindings;
            bind fs vs
          | _, _ -> ()
        in
        bind g.g_formals occurrence.args)
    gs;
  List.rev !bindings

let collect_classified t c (occurrence : Symbol.occurrence) =
  if (not t.has_formals) || not (is_relevant c) then []
  else collect_key_bits t c.c_key c.c_bits occurrence

let collect_code t code (occurrence : Symbol.occurrence) =
  if (not t.has_formals) || not (code_relevant code) then []
  else
    collect_key_bits t (Rewrite.code_key code) (Rewrite.code_bits code)
      occurrence

let collect t ~env occurrence =
  collect_classified t (classify t ~env occurrence) occurrence

let encode_state t state =
  if Array.length state <> n_state_words t then
    invalid_arg "Detector.encode_state: size mismatch";
  let w = Codec.writer () in
  Codec.write_array w Codec.write_int state;
  Codec.contents w

let decode_state t s =
  let r = Codec.reader s in
  let state = Codec.read_array r Codec.read_int in
  if Array.length state <> n_state_words t then
    raise (Codec.Corrupt "Detector.decode_state: size mismatch");
  state

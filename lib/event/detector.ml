module Codec = Ode_base.Codec

type mode = Full_history | Committed

type t = {
  expr : Expr.t;
  alphabet : Rewrite.t;
  masks : Mask.t array;
  compiled : Compile.t;
  mode : mode;
  has_formals : bool;
}

type state = int array

let build ~mode expr =
  let alphabet, lowered, masks = Rewrite.build expr in
  let compiled = Compile.compile ~m:(Rewrite.n_symbols alphabet) lowered in
  let has_formals =
    Array.exists
      (Array.exists (fun (g : Rewrite.guard) -> g.g_formals <> []))
      alphabet.Rewrite.guards
  in
  { expr; alphabet; masks; compiled; mode; has_formals }

(* Triggers with identical specifications can share one compiled detector
   (the paper compiles per class; sharing extends that across declarations).
   Opt-in because the result must not depend on the mutable compilation
   knobs ([Compile.minimization], [Rewrite.max_atoms]); the database layer,
   which never touches them, opts in. *)
let shared : (mode * Expr.t, t) Hashtbl.t = Hashtbl.create 32

let make ?(mode = Full_history) ?(share = false) expr =
  if not share then build ~mode expr
  else
    match Hashtbl.find_opt shared (mode, expr) with
    | Some t -> t
    | None ->
      let t = build ~mode expr in
      Hashtbl.add shared (mode, expr) t;
      t

let initial t = Compile.initial t.compiled
let n_state_words t = Compile.n_state_words t.compiled

let concerns t basic = Rewrite.concerns t.alphabet basic
let relevant_basics t = Rewrite.relevant_basics t.alphabet

type classified = {
  c_sym : int;
  c_key : int;
  c_bits : int;
}

let is_relevant c = c.c_key >= 0 && c.c_bits <> 0

let classify t ~env occurrence =
  match Rewrite.classify_guards t.alphabet ~env occurrence with
  | None -> { c_sym = Rewrite.other t.alphabet; c_key = -1; c_bits = 0 }
  | Some (key, bits) ->
    let sym =
      if bits = 0 then Rewrite.other t.alphabet
      else
        match Rewrite.atom_lookup t.alphabet ~key ~bits with
        | Some sym -> sym
        | None -> Rewrite.other t.alphabet (* statically impossible: defensive *)
    in
    { c_sym = sym; c_key = key; c_bits = bits }

let post_classified t state ~env c =
  (* §5: the automaton is advanced only "for each active trigger for which
     a logical event has occurred". An occurrence matching none of this
     trigger's logical events is not part of its history at all — it must
     not break adjacency (sequence) or feed negations. *)
  if c.c_sym = Rewrite.other t.alphabet then false
  else
    let mask id = Mask.eval_bool env t.masks.(id) in
    Compile.step t.compiled state c.c_sym ~mask

let post t state ~env occurrence =
  post_classified t state ~env (classify t ~env occurrence)

let copy_state = Array.copy

let[@inline] top_state (state : state) = state.(Array.length state - 1)

let collect_classified t c (occurrence : Symbol.occurrence) =
  if (not t.has_formals) || not (is_relevant c) then []
  else begin
    let gs = t.alphabet.Rewrite.guards.(c.c_key) in
    let bindings = ref [] in
    Array.iteri
      (fun i (g : Rewrite.guard) ->
        if c.c_bits land (1 lsl i) <> 0 && g.g_formals <> [] then
          (* formals and args in lockstep; a matched guard with formals
             pins the arity, so the two lists have equal length *)
          let rec bind formals args =
            match formals, args with
            | (f : Expr.formal) :: fs, v :: vs ->
              bindings := (f.f_name, v) :: !bindings;
              bind fs vs
            | _, _ -> ()
          in
          bind g.g_formals occurrence.args)
      gs;
    List.rev !bindings
  end

let collect t ~env occurrence =
  collect_classified t (classify t ~env occurrence) occurrence

let encode_state t state =
  if Array.length state <> n_state_words t then
    invalid_arg "Detector.encode_state: size mismatch";
  let w = Codec.writer () in
  Codec.write_array w Codec.write_int state;
  Codec.contents w

let decode_state t s =
  let r = Codec.reader s in
  let state = Codec.read_array r Codec.read_int in
  if Array.length state <> n_state_words t then
    raise (Codec.Corrupt "Detector.decode_state: size mismatch");
  state

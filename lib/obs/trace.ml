(* Structured pipeline spans in a bounded ring buffer, with pluggable
   sinks. The database layers emit spans only when the registry is
   enabled, so this module never sits on the hot path of a production
   run with observability off. *)

type scope = Obj of int | Db

type span =
  | Txn_begin of { txn : int; system : bool }
  | Txn_commit of { txn : int; rounds : int }
  | Txn_abort of { txn : int }
  | Posted of { scope : scope; basic : string; txn : int; at_ms : int64 }
  | Advanced of { scope : scope; trigger : string; old_state : int; new_state : int }
  | Fired of { scope : scope; trigger : string; txn : int; at_ms : int64 }
  | Action_ran of { scope : scope; trigger : string; ns : int }
  | Timer_delivered of { oid : int; at_ms : int64 }
  | Wal_flushed of { batches : int; bytes : int }
  | Wal_recovered of { gen : int; batches : int; damaged : bool }

module type SINK = sig
  val emit : span -> unit
end

type sink = { sk_id : int; sk_fn : span -> unit }

type t = {
  buf : span option array;  (* ring; [head] is the next write slot *)
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
  mutable sinks : sink list;  (* attachment order *)
  mutable next_sink : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { buf = Array.make capacity None; head = 0; len = 0; dropped = 0;
    sinks = []; next_sink = 0 }

let capacity t = Array.length t.buf

let emit t span =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.head) <- Some span;
  t.head <- (t.head + 1) mod cap;
  List.iter (fun sk -> sk.sk_fn span) t.sinks

let spans t =
  let cap = Array.length t.buf in
  let first = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.buf.((first + i) mod cap) with
      | Some s -> s
      | None -> assert false (* slots below [len] are always filled *))

let dropped t = t.dropped

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let add_sink t fn =
  let sk = { sk_id = t.next_sink; sk_fn = fn } in
  t.next_sink <- t.next_sink + 1;
  t.sinks <- t.sinks @ [ sk ];
  sk

let attach t (module S : SINK) = add_sink t S.emit

let remove_sink t sk =
  t.sinks <- List.filter (fun s -> s.sk_id <> sk.sk_id) t.sinks

let[@inline] has_sinks t = t.sinks <> []

let pp_scope ppf = function
  | Obj oid -> Format.fprintf ppf "@%d" oid
  | Db -> Format.fprintf ppf "<database>"

let pp_span ppf = function
  | Txn_begin { txn; system } ->
    Format.fprintf ppf "txn %d begin%s" txn (if system then " (system)" else "")
  | Txn_commit { txn; rounds } ->
    Format.fprintf ppf "txn %d commit (%d tcomplete round%s)" txn rounds
      (if rounds = 1 then "" else "s")
  | Txn_abort { txn } -> Format.fprintf ppf "txn %d abort" txn
  | Posted { scope; basic; txn; at_ms } ->
    Format.fprintf ppf "post %s -> %a (txn %d, t=%Ld)" basic pp_scope scope txn at_ms
  | Advanced { scope; trigger; old_state; new_state } ->
    Format.fprintf ppf "advance %s%a: %d -> %d" trigger pp_scope scope old_state
      new_state
  | Fired { scope; trigger; txn; at_ms } ->
    Format.fprintf ppf "fire %s%a (txn %d, t=%Ld)" trigger pp_scope scope txn at_ms
  | Action_ran { scope; trigger; ns } ->
    Format.fprintf ppf "action %s%a ran in %dns" trigger pp_scope scope ns
  | Timer_delivered { oid; at_ms } ->
    Format.fprintf ppf "timer -> @%d at t=%Ld" oid at_ms
  | Wal_flushed { batches; bytes } ->
    Format.fprintf ppf "wal flush: %d batch%s, %d bytes" batches
      (if batches = 1 then "" else "es")
      bytes
  | Wal_recovered { gen; batches; damaged } ->
    Format.fprintf ppf "wal recover: gen %d, %d batch%s replayed%s" gen batches
      (if batches = 1 then "" else "es")
      (if damaged then " (damaged tail)" else "")

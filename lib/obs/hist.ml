(* Log2-bucketed latency histogram. Bucket i holds samples whose value
   in nanoseconds lies in [2^i, 2^(i+1)); recording is one array
   increment plus three field updates, cheap enough for the posting hot
   path when observability is on. *)

let n_buckets = 63

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum_ns : int;
  mutable max_ns : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum_ns = 0; max_ns = 0 }

let bucket_of ns =
  if ns <= 0 then 0
  else begin
    (* floor (log2 ns), capped *)
    let rec go i v = if v <= 1 || i >= n_buckets - 1 then i else go (i + 1) (v lsr 1) in
    go 0 ns
  end

let record t ns =
  let ns = if ns < 0 then 0 else ns in
  t.buckets.(bucket_of ns) <- t.buckets.(bucket_of ns) + 1;
  t.count <- t.count + 1;
  t.sum_ns <- t.sum_ns + ns;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.count
let sum_ns t = t.sum_ns
let max_ns t = t.max_ns
let mean_ns t = if t.count = 0 then 0. else float_of_int t.sum_ns /. float_of_int t.count

(* Upper bound of the bucket containing the q-th quantile (0 <= q <= 1).
   Exact values are not retained; the bound is within 2x of the true
   quantile, which is enough to spot a regressed tail. *)
let quantile_ns t q =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let rec go i seen =
      if i >= n_buckets then max_int
      else
        let seen = seen + t.buckets.(i) in
        if seen >= rank then 1 lsl (i + 1) else go (i + 1) seen
    in
    go 0 0
  end

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum_ns <- 0;
  t.max_ns <- 0

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.0fns p50<=%dns p99<=%dns max=%dns" t.count
      (mean_ns t) (quantile_ns t 0.5) (quantile_ns t 0.99) t.max_ns

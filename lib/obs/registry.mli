(** The observability registry of one database instance: counters over
    the post → classify → advance → fire → commit pipeline, nanosecond
    latency histograms for its entry points, and the structured
    {!Trace} ring.

    A registry is created {e disabled}. Every instrumentation point in
    the database layers is guarded by an inlinable [enabled] check, so a
    disabled registry costs one boolean load per probe and nothing else
    (measured: EXPERIMENTS.md, E10-obs-overhead). Enable with
    {!set_enabled} on the registry returned by [Database.observe].

    {b Thread safety.} Counters are atomic and the kind table and trace
    ring are mutex-guarded, because the engine's parallel step phase
    ([Engine.post_many]) emits from worker domains — counts stay exact
    under a multi-domain run. Trace sinks run while the registry mutex
    is held: keep them quick and never re-enter the registry from one.
    Histograms ({!record_ns}) are {e not} synchronised — every latency
    probe sits in a sequential pipeline phase. *)

(** What is counted where (emitting layer in brackets):

    - [Posts] — occurrences entering the object-scope pipeline [Engine]
    - [Db_posts] — occurrences posted to the database scope [Engine]
    - [Classified] — candidate triggers the dispatch stage handed to the
      classifier [Engine]
    - [Index_skipped] — active triggers the dispatch index pruned
      without touching (0 on the brute-force path) [Engine]
    - [Transitions] — automaton advances on relevant occurrences
      [Engine], around {!Ode_event.Detector.post_classified}
    - [Slot_transitions] / [Word_transitions] — the same advances split
      by state representation: flat-table structure-of-arrays slots vs
      boxed word vectors [Engine]. The kernel-coverage check: with
      every object-scope detector flat-eligible, [Word_transitions]
      counts only database-scope advances
    - [Firings] — trigger firings, both scopes [Engine]
    - [Tcomplete_rounds] — §6 [before tcomplete] fixpoint rounds [Txn]
    - [Undo_entries] — undo-log entries accumulated by finished (either
      way) user and system transactions [Txn]
    - [Timer_deliveries] — due timers delivered as time events
      [Timewheel]
    - [Lock_conflicts] — incompatible lock requests [Txn]
    - [Classes_registered], [Triggers_indexed] — schema registrations
      and trigger definitions added to a dispatch index [Schema]
    - [Wal_batches] — redo batches framed by the WAL durability backend
      [Wal]
    - [Wal_flushes] — physical log writes (a group commit retires many
      batches per flush; [Wal_batches - Wal_flushes] is the work the
      window saved) [Wal]
    - [Wal_snapshots] — checkpoints (snapshot written + log truncated)
      [Wal]
    - [Wal_replayed] — batches replayed by recovery [Wal]
    - [Net_connections] — client connections accepted by the network
      front door [Ode_net.Server]
    - [Net_requests] — wire requests decoded and handled
      [Ode_net.Server]
    - [Net_outbox_dropped] — firing notifications discarded by a full
      [drop]-policy subscriber outbox [Ode_net.Server] *)
type counter =
  | Posts
  | Db_posts
  | Classified
  | Index_skipped
  | Transitions
  | Slot_transitions
  | Word_transitions
  | Firings
  | Tcomplete_rounds
  | Undo_entries
  | Timer_deliveries
  | Lock_conflicts
  | Classes_registered
  | Triggers_indexed
  | Wal_batches
  | Wal_flushes
  | Wal_snapshots
  | Wal_replayed
  | Net_connections
  | Net_requests
  | Net_outbox_dropped

val all_counters : counter list
val counter_name : counter -> string

(** Latency probes: [Post] one occurrence through the pipeline, [Call] a
    public member-function call, [Commit] a commit including its
    tcomplete rounds, [Action] one fired trigger action. *)
type probe = Post | Call | Commit | Action

val all_probes : probe list
val probe_name : probe -> string

type t

val create : ?trace_capacity:int -> unit -> t
(** Disabled, all zeros; the trace ring holds [trace_capacity] spans
    (default 1024). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val timing : t -> bool
(** Should the pipeline take latency timestamps? True when the registry
    is enabled {e and} timing data has a consumer — a trace sink is
    attached ({!Trace.has_sinks}) or {!set_timing} forced it on. Clock
    reads dominate the enabled-registry overhead on short operations,
    so histograms are only fed when this holds; counters, the kind
    table and the span ring stay exact regardless. *)

val set_timing : t -> bool -> unit
(** Force latency histograms on (or back to sink-gated) independently of
    sink attachment. *)

val incr : t -> counter -> unit
val add : t -> counter -> int -> unit
val get : t -> counter -> int

val incr_kind : t -> string -> unit
(** Bump the per-basic-kind post table (the printed
    {!Ode_event.Symbol.basic_key}). *)

val posts_by_kind : t -> (string * int) list
(** Sorted by kind name. *)

val hist : t -> probe -> Hist.t
val record_ns : t -> probe -> int -> unit

val trace : t -> Trace.t
val span : t -> Trace.span -> unit

val reset : t -> unit
(** Zero the counters, histograms, kind table and trace ring; the
    enabled flag and attached sinks are untouched. *)

val now_ns : unit -> int
(** Wall clock in nanoseconds (µs resolution), for latency deltas. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary of every non-zero counter and histogram. *)

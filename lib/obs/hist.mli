(** Log2-bucketed nanosecond latency histogram.

    Fixed memory ([n_buckets] ints), O(1) recording. Quantiles are
    bucket upper bounds — within 2x of the true value, which is what a
    serving stack needs to watch a tail, at none of the cost of keeping
    samples. *)

type t

val n_buckets : int

val create : unit -> t

val record : t -> int -> unit
(** Record one sample in nanoseconds. Negative samples clamp to 0. *)

val count : t -> int
val sum_ns : t -> int
val max_ns : t -> int
val mean_ns : t -> float

val quantile_ns : t -> float -> int
(** [quantile_ns t q] is an upper bound of the q-th quantile (e.g.
    [quantile_ns t 0.99]); 0 when empty. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

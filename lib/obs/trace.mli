(** Structured trace of the posting pipeline: a bounded ring buffer of
    spans plus pluggable sinks.

    One span is emitted per pipeline step the database layers consider
    observable — transaction begin/commit/abort, an occurrence entering
    the pipeline, a trigger automaton advancing, a trigger firing, its
    action running, a timer delivering. The ring keeps the most recent
    [capacity] spans (older ones are counted in {!dropped}); sinks see
    {e every} span as it is emitted, so a test, the bench harness or a
    CLI can attach live consumers without unbounded memory in the
    database itself. *)

type scope =
  | Obj of int  (** an object, by oid *)
  | Db  (** the database scope (§3) *)

type span =
  | Txn_begin of { txn : int; system : bool }
  | Txn_commit of { txn : int; rounds : int }
      (** [rounds]: §6 [before tcomplete] rounds the commit ran *)
  | Txn_abort of { txn : int }
  | Posted of { scope : scope; basic : string; txn : int; at_ms : int64 }
      (** an occurrence entered the pipeline; [basic] is the printed
          basic-event kind *)
  | Advanced of { scope : scope; trigger : string; old_state : int; new_state : int }
      (** a relevant occurrence stepped a trigger automaton; states are
          the top-level automaton word ({!Ode_event.Detector.top_state}) *)
  | Fired of { scope : scope; trigger : string; txn : int; at_ms : int64 }
  | Action_ran of { scope : scope; trigger : string; ns : int }
  | Timer_delivered of { oid : int; at_ms : int64 }
  | Wal_flushed of { batches : int; bytes : int }
      (** the WAL backend wrote a group of framed batches to disk *)
  | Wal_recovered of { gen : int; batches : int; damaged : bool }
      (** recovery replayed [batches] complete frames from generation
          [gen]; [damaged] reports a truncated or CRC-bad tail *)

(** A consumer of every emitted span. *)
module type SINK = sig
  val emit : span -> unit
end

type sink
(** Handle for detaching. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : t -> int

val emit : t -> span -> unit
(** Append to the ring (overwriting the oldest span when full) and fan
    out to every attached sink, in attachment order. *)

val spans : t -> span list
(** Retained spans, oldest first; at most [capacity t] of them. *)

val dropped : t -> int
(** Spans overwritten since creation (or the last {!clear}). *)

val clear : t -> unit
(** Empty the ring and reset {!dropped}. Sinks stay attached. *)

val add_sink : t -> (span -> unit) -> sink
val attach : t -> (module SINK) -> sink
val remove_sink : t -> sink -> unit

val has_sinks : t -> bool
(** Any sink currently attached — the registry's timing gate: latency
    timestamps are only taken when someone consumes them. *)

val pp_scope : Format.formatter -> scope -> unit
val pp_span : Format.formatter -> span -> unit

(* The per-database observability registry: named counters, per-probe
   latency histograms, a posts-by-kind table and the trace ring.

   Disabled by default. Every instrumentation point in the database
   layers guards on [enabled], so a disabled registry costs one
   inlinable boolean load per probe — verified against the E9-dispatch
   bench (EXPERIMENTS.md, E10-obs-overhead). *)

type counter =
  | Posts
  | Db_posts
  | Classified
  | Index_skipped
  | Transitions
  | Slot_transitions
  | Word_transitions
  | Firings
  | Tcomplete_rounds
  | Undo_entries
  | Timer_deliveries
  | Lock_conflicts
  | Classes_registered
  | Triggers_indexed
  | Wal_batches
  | Wal_flushes
  | Wal_snapshots
  | Wal_replayed
  | Net_connections
  | Net_requests
  | Net_outbox_dropped

let counter_index = function
  | Posts -> 0
  | Db_posts -> 1
  | Classified -> 2
  | Index_skipped -> 3
  | Transitions -> 4
  | Slot_transitions -> 5
  | Word_transitions -> 6
  | Firings -> 7
  | Tcomplete_rounds -> 8
  | Undo_entries -> 9
  | Timer_deliveries -> 10
  | Lock_conflicts -> 11
  | Classes_registered -> 12
  | Triggers_indexed -> 13
  | Wal_batches -> 14
  | Wal_flushes -> 15
  | Wal_snapshots -> 16
  | Wal_replayed -> 17
  | Net_connections -> 18
  | Net_requests -> 19
  | Net_outbox_dropped -> 20

let n_counters = 21

let all_counters =
  [
    Posts; Db_posts; Classified; Index_skipped; Transitions;
    Slot_transitions; Word_transitions; Firings; Tcomplete_rounds;
    Undo_entries; Timer_deliveries; Lock_conflicts; Classes_registered;
    Triggers_indexed; Wal_batches; Wal_flushes; Wal_snapshots;
    Wal_replayed; Net_connections; Net_requests; Net_outbox_dropped;
  ]

let counter_name = function
  | Posts -> "posts"
  | Db_posts -> "db_posts"
  | Classified -> "classified"
  | Index_skipped -> "index_skipped"
  | Transitions -> "transitions"
  | Slot_transitions -> "slot_transitions"
  | Word_transitions -> "word_transitions"
  | Firings -> "firings"
  | Tcomplete_rounds -> "tcomplete_rounds"
  | Undo_entries -> "undo_entries"
  | Timer_deliveries -> "timer_deliveries"
  | Lock_conflicts -> "lock_conflicts"
  | Classes_registered -> "classes_registered"
  | Triggers_indexed -> "triggers_indexed"
  | Wal_batches -> "wal_batches"
  | Wal_flushes -> "wal_flushes"
  | Wal_snapshots -> "wal_snapshots"
  | Wal_replayed -> "wal_replayed"
  | Net_connections -> "net_connections"
  | Net_requests -> "net_requests"
  | Net_outbox_dropped -> "net_outbox_dropped"

type probe = Post | Call | Commit | Action

let probe_index = function Post -> 0 | Call -> 1 | Commit -> 2 | Action -> 3
let n_probes = 4
let all_probes = [ Post; Call; Commit; Action ]

let probe_name = function
  | Post -> "post"
  | Call -> "call"
  | Commit -> "commit"
  | Action -> "action"

(* Counters are [Atomic] and the kind table and trace ring are guarded
   by [mu] because the engine's parallel step phase ([Engine.post_many])
   emits [Transitions]/[Classified]/[Index_skipped] bumps and [Advanced]
   spans from worker domains — counts must stay exact, not approximate,
   under a multi-domain run. Histograms stay plain: every [record_ns]
   site runs in a sequential pipeline phase. *)
type t = {
  mutable on : bool;
  mutable force_timing : bool;
  counters : int Atomic.t array;
  mu : Mutex.t;
  by_kind : (string, int) Hashtbl.t;
  hists : Hist.t array;
  trace : Trace.t;
}

let create ?(trace_capacity = 1024) () =
  {
    on = false;
    force_timing = false;
    counters = Array.init n_counters (fun _ -> Atomic.make 0);
    mu = Mutex.create ();
    by_kind = Hashtbl.create 16;
    hists = Array.init n_probes (fun _ -> Hist.create ());
    trace = Trace.create ~capacity:trace_capacity;
  }

let[@inline] enabled t = t.on
let set_enabled t flag = t.on <- flag

(* Reading the clock twice per pipeline entry point dominates the cost
   of an enabled registry on short operations, so latency histograms are
   recorded only when someone is actually consuming timing data: a trace
   sink is attached, or timing was forced on explicitly. Counters, the
   kind table and the span ring are exact either way. *)
let[@inline] timing t = t.on && (t.force_timing || Trace.has_sinks t.trace)
let set_timing t flag = t.force_timing <- flag
let[@inline] incr t c = Atomic.incr t.counters.(counter_index c)

let[@inline] add t c n =
  ignore (Atomic.fetch_and_add t.counters.(counter_index c) n)

let get t c = Atomic.get t.counters.(counter_index c)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Hand-inlined lock/unlock: this runs once per enabled post, and the
   [locked] wrapper's closure + [Fun.protect] allocation is measurable
   there. [Hashtbl] operations on a well-formed table do not raise. *)
let incr_kind t kind =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.by_kind kind with
  | Some n -> Hashtbl.replace t.by_kind kind (n + 1)
  | None -> Hashtbl.add t.by_kind kind 1);
  Mutex.unlock t.mu

let posts_by_kind t =
  locked t (fun () -> Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.by_kind [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist t p = t.hists.(probe_index p)
let[@inline] record_ns t p ns = Hist.record t.hists.(probe_index p) ns
let trace t = t.trace

(* Sinks attached to the trace run under [mu]: they must be quick and
   must not call back into the registry. Lock/unlock is hand-inlined as
   in [incr_kind] — one span per enabled post — but kept exception-safe
   because sinks are user code. *)
let span t s =
  Mutex.lock t.mu;
  match Trace.emit t.trace s with
  | () -> Mutex.unlock t.mu
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counters;
  locked t (fun () -> Hashtbl.reset t.by_kind);
  Array.iter Hist.reset t.hists;
  Trace.clear t.trace

(* Monotonic enough for latency deltas within one process; µs-resolution
   wall clock scaled to ns. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let pp ppf t =
  Format.fprintf ppf "@[<v>observability %s@," (if t.on then "on" else "off");
  List.iter
    (fun c ->
      let n = get t c in
      if n > 0 then Format.fprintf ppf "  %-20s %d@," (counter_name c) n)
    all_counters;
  let kinds = posts_by_kind t in
  if kinds <> [] then begin
    Format.fprintf ppf "  posts by kind:@,";
    List.iter (fun (k, n) -> Format.fprintf ppf "    %-24s %d@," k n) kinds
  end;
  List.iter
    (fun p ->
      let h = hist t p in
      if Hist.count h > 0 then
        Format.fprintf ppf "  %-8s %a@," (probe_name p) Hist.pp h)
    all_probes;
  Format.fprintf ppf "  trace: %d span(s) retained, %d dropped@]"
    (List.length (Trace.spans t.trace))
    (Trace.dropped t.trace)

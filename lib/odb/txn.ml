module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Registry = Ode_obs.Registry
module Trace = Ode_obs.Trace
open Types

(* ------------------------------------------------------------------ *)
(* Engine hooks                                                        *)
(* ------------------------------------------------------------------ *)

(* Commit and abort post events ([before tcomplete], [before tabort],
   [after tcommit]/[after tabort]) — an upward call into the posting
   pipeline. The compile-time dependency stays Engine -> Txn; [Engine]
   fills these at load time. *)

let post_hook : (db -> txn -> obj -> Symbol.basic -> Value.t list -> bool) ref =
  ref (fun _ _ _ _ _ -> false)

let system_post_hook : (db -> oid list -> Symbol.basic -> unit) ref =
  ref (fun _ _ _ -> ())

let set_post_hook f = post_hook := f
let set_system_post_hook f = system_post_hook := f

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let require_txn db =
  match db.txns.current with
  | Some tx when tx.tx_status = Active -> tx
  | Some _ | None -> ode_error "this operation requires an active transaction"

let fresh_txn db ~system =
  let tx =
    {
      tx_id = db.txns.next_txn_id;
      tx_system = system;
      tx_status = Active;
      tx_accessed = [];
      tx_seen = Hashtbl.create 16;
      tx_undo = [];
      tx_dirty = [];
    }
  in
  db.txns.next_txn_id <- db.txns.next_txn_id + 1;
  db.txns.open_txns <- tx :: db.txns.open_txns;
  if Registry.enabled db.obs then
    Registry.span db.obs (Trace.Txn_begin { txn = tx.tx_id; system });
  tx

let begin_txn db =
  let tx = fresh_txn db ~system:false in
  db.txns.current <- Some tx;
  tx

let begin_system db = fresh_txn db ~system:true

let switch_txn db tx =
  if tx.tx_status <> Active then ode_error "cannot switch to a finished transaction";
  if not (List.memq tx db.txns.open_txns) then ode_error "transaction is not open here";
  db.txns.current <- Some tx

let current_txn db = db.txns.current
let txn_id tx = tx.tx_id

(* ------------------------------------------------------------------ *)
(* Locks and undo                                                      *)
(* ------------------------------------------------------------------ *)

let acquire db tx obj request =
  match Lock.acquire obj.o_lock ~holder:tx.tx_id request with
  | Some l -> obj.o_lock <- l
  | None ->
    if Registry.enabled db.obs then
      Registry.incr db.obs Registry.Lock_conflicts;
    raise (Lock_conflict obj.o_id)

let release_locks db tx =
  List.iter
    (fun oid ->
      match Store.find_obj db oid with
      | Some obj -> obj.o_lock <- Lock.release obj.o_lock ~holder:tx.tx_id
      | None -> ())
    tx.tx_accessed

let detach db tx =
  db.txns.open_txns <- List.filter (fun t -> not (t == tx)) db.txns.open_txns;
  match db.txns.current with
  | Some cur when cur == tx ->
    db.txns.current <- (match db.txns.open_txns with t :: _ -> Some t | [] -> None)
  | Some _ | None -> ()

let apply_undo db entry =
  match entry with
  | U_field (obj, name, prev) -> Hashtbl.replace obj.o_fields name prev
  | U_create obj ->
    Store.remove_obj db obj.o_id;
    (* the object never existed: drop any timer it armed *)
    ignore (Timewheel.cancel_object db obj.o_id)
  | U_delete obj -> Store.unmark_deleted db obj
  | U_timers_cancelled tms ->
    (* re-insert with their original seqs: the queue (and so its
       serialized bytes) comes back exactly as before the cancel *)
    List.iter (Timewheel.insert_timer db) tms
  | U_timers_armed tms -> List.iter (Timewheel.cancel_timer db) tms
  | U_trigger_state (at, prev) -> at_state_restore at prev
  | U_trigger_collected (at, prev) -> at.at_collected <- prev
  | U_trigger_active (obj, at, prev) -> set_trigger_active obj at prev
  | U_trigger_added (obj, name) -> (
    match Hashtbl.find_opt obj.o_triggers name with
    | None -> ()
    | Some at ->
      set_trigger_active (Some obj) at false;
      let idx = at.at_def.t_index in
      if idx >= 0 && idx < Array.length obj.o_acts then obj.o_acts.(idx) <- None;
      Store.free_at_state at;
      Hashtbl.remove obj.o_triggers name)

(* Fold the per-shard undo segments a parallel classify/step phase
   produced into the transaction's log. Entries within one segment are
   newest-first already; segments touch disjoint objects (the pipeline
   partitions by shard), so their relative order is semantically free —
   we fix it to ascending shard index for determinism across domain
   counts. Runs on the orchestrating thread, after the phase joins. *)
let merge_undo_segments tx segments =
  tx.tx_undo <- List.concat segments @ tx.tx_undo

(* ------------------------------------------------------------------ *)
(* Abort and commit                                                    *)
(* ------------------------------------------------------------------ *)

let abort db tx =
  if tx.tx_status <> Active then ode_error "transaction already finished";
  (* Post [before tabort] while the transaction's effects are still
     visible; actions fired here are undone along with everything else. *)
  if (not tx.tx_system) && not db.txns.in_abort then begin
    db.txns.in_abort <- true;
    (try
       List.iter
         (fun oid ->
           match Store.live_obj_opt db oid with
           | Some obj -> ignore (!post_hook db tx obj (Symbol.Tabort Before) [])
           | None -> ())
         (List.rev tx.tx_accessed)
     with Tabort -> () (* already aborting *));
    db.txns.in_abort <- false
  end;
  if Registry.enabled db.obs then begin
    (* count undo work as it is retired, so committed and aborted
       transactions report comparable volumes *)
    Registry.add db.obs Registry.Undo_entries (List.length tx.tx_undo);
    Registry.span db.obs (Trace.Txn_abort { txn = tx.tx_id })
  end;
  List.iter (apply_undo db) tx.tx_undo;
  tx.tx_undo <- [];
  tx.tx_status <- Aborted;
  release_locks db tx;
  detach db tx;
  (* Aborts mutate durable state too: full-history automaton advances
     (including those of the [before tabort] posts above) survive the
     undo by design, and the txn-id counter moved — so an abort emits a
     redo batch like a commit does. *)
  db.durability.dur_commit db (List.rev tx.tx_accessed @ List.rev tx.tx_dirty);
  if not tx.tx_system then
    !system_post_hook db (List.rev tx.tx_accessed) (Symbol.Tabort After)

let commit db tx =
  if tx.tx_status <> Active then ode_error "transaction already finished";
  let obs = db.obs in
  let on = Registry.enabled obs in
  let timed = Registry.timing obs in
  let t0 = if timed then Registry.now_ns () else 0 in
  let saved_current = db.txns.current in
  db.txns.current <- Some tx;
  let restore () =
    match saved_current with
    | Some cur when cur.tx_status = Active && not (cur == tx) ->
      db.txns.current <- Some cur
    | _ -> ()
  in
  let n_rounds = ref 0 in
  match
    if not tx.tx_system then begin
      (* §6: keep posting [before tcomplete] until a round fires nothing. *)
      let rec rounds n =
        if n > db.txns.max_tcomplete_rounds then
          ode_error
            "commit livelock: before tcomplete still firing triggers after %d \
             rounds"
            db.txns.max_tcomplete_rounds;
        n_rounds := n;
        if on then Registry.incr obs Registry.Tcomplete_rounds;
        let fired = ref false in
        List.iter
          (fun oid ->
            match Store.live_obj_opt db oid with
            | Some obj ->
              if !post_hook db tx obj Symbol.Tcomplete [] then fired := true
            | None -> ())
          (List.rev tx.tx_accessed);
        if !fired then rounds (n + 1)
      in
      rounds 1
    end
  with
  | () ->
    if on then begin
      Registry.add obs Registry.Undo_entries (List.length tx.tx_undo);
      Registry.span obs (Trace.Txn_commit { txn = tx.tx_id; rounds = !n_rounds })
    end;
    tx.tx_status <- Committed;
    tx.tx_undo <- [];
    release_locks db tx;
    detach db tx;
    restore ();
    (* commit is the durability boundary: emit one redo batch covering
       everything this transaction touched (the tcomplete rounds above
       already extended [tx_accessed] and [tx_dirty] holds the
       (de)activation targets that carry no access semantics); the
       [after tcommit] system transaction below emits its own batch *)
    db.durability.dur_commit db
      (List.rev tx.tx_accessed @ List.rev tx.tx_dirty);
    if not tx.tx_system then
      !system_post_hook db (List.rev tx.tx_accessed) Symbol.Tcommit;
    if timed then Registry.record_ns obs Registry.Commit (Registry.now_ns () - t0);
    Ok ()
  | exception Tabort ->
    abort db tx;
    restore ();
    Error `Aborted

let with_txn db f =
  let tx = begin_txn db in
  match f tx with
  | v -> (
    match commit db tx with Ok () -> Ok v | Error `Aborted -> Error `Aborted)
  | exception Tabort ->
    abort db tx;
    Error `Aborted
  | exception e ->
    if tx.tx_status = Active then abort db tx;
    raise e

(* Thin facade over the layered subsystems. All behaviour lives below:

     Schema    — class builders, trigger definitions, detector
                 compilation, dispatch-index construction
     Store     — the object heap (STORE backend signature, oid
                 allocation, field access, histories, stats)
     Txn       — begin/commit/abort, undo log, locks, the §6
                 [before tcomplete] fixpoint
     Engine    — the §5 posting pipeline, candidate selection,
                 classification cache, firing, system transactions
     Timewheel — timers and simulated-time advancement
     Persist   — the ODE1 full-image codec and the image durability
                 backend
     Wal       — the write-ahead-log durability backend (redo batches,
                 group commit, snapshots, crash recovery)

   This module only re-exports (plus the composition-root choice of
   store and durability backends in [create_db]); keep it free of logic
   so the public API stays a stable surface over the layers. *)

module Value = Ode_base.Value

type t = Types.db
type txn = Types.txn
type oid = int
type method_kind = Types.method_kind = Read_only | Updating

exception Tabort = Types.Tabort
exception Lock_conflict = Types.Lock_conflict
exception Ode_error = Types.Ode_error

type fire_context = Types.fire_context = {
  fc_oid : oid;
  fc_params : Value.t list;
  fc_occurrence : Ode_event.Symbol.occurrence;
  fc_collected : (string * Value.t) list;
  fc_witnesses : (string * Value.t) list list option;
}

type firing = Types.firing = {
  f_trigger : string;
  f_class : string;
  f_oid : oid;
  f_at : int64;
  f_txn : int;
}

(* Schema definition *)

type class_builder = Schema.class_builder

let define_class = Schema.define_class
let field = Schema.field
let method_ = Schema.method_
let trigger = Schema.trigger
let trigger_str = Schema.trigger_str
let register_class = Engine.register_class
let register_fun = Schema.register_fun

(* Dispatch-index configuration *)

let set_dispatch_index = Engine.set_dispatch_index
let dispatch_index_enabled = Engine.dispatch_index_enabled
let set_posting_kernel = Engine.set_posting_kernel
let posting_kernel_enabled = Engine.posting_kernel_enabled

(* Observability *)

let observe (db : t) = db.Types.obs

let set_observability (db : t) flag =
  Ode_obs.Registry.set_enabled db.Types.obs flag

(* Lifecycle *)

type backend_spec = Store.spec
type durability_spec = [ `Image | `Wal of Wal.config ]

(* A fresh unique directory for an env-selected WAL — each database
   must own its log (a shared one would interleave generations). *)
let fresh_wal_dir () =
  let f = Filename.temp_file "ode-wal" "" in
  Sys.remove f;
  f

module Config = struct
  type backpressure = Block | Drop

  type serve = {
    host : string;
    port : int;
    batch_window_ms : int;
    max_batch : int;
    outbox_bound : int;
    backpressure : backpressure;
    max_frame_bytes : int;
  }

  type t = {
    start_time : int64;
    max_tcomplete_rounds : int;
    trace_capacity : int;
    backend : backend_spec;
    durability : durability_spec;
    partitions : int;
    post_domains : int;
    domain_clamp : bool;
    parallel_threshold : int;
    dispatch_index : bool;
    posting_kernel : bool;
    timer_wheel : bool;
    timing : bool;
    serve : serve;
  }

  let default_serve =
    {
      host = "127.0.0.1";
      port = 7912;
      batch_window_ms = 2;
      max_batch = 8192;
      outbox_bound = 1024;
      backpressure = Block;
      max_frame_bytes = 16 * 1024 * 1024;
    }

  (* These mirror [Types.make_db] and the engine-state initializers —
     a bare [create_db ()] and a [create_db ~config:Config.default ()]
     are the same database. *)
  let default =
    {
      start_time = 0L;
      max_tcomplete_rounds = 1000;
      trace_capacity = 1024;
      backend = `Heap;
      durability = `Image;
      partitions = 1;
      post_domains = 1;
      domain_clamp = true;
      parallel_threshold = 32;
      dispatch_index = true;
      posting_kernel = true;
      timer_wheel = true;
      timing = false;
      serve = default_serve;
    }

  (* CI runs the whole suite against the WAL backend with
     ODE_DURABILITY=wal (optionally wal:<flush_ms>), mirroring the
     ODE_STORE_BACKEND escape hatch. *)
  let durability_of_env () : durability_spec =
    match Sys.getenv_opt "ODE_DURABILITY" with
    | None | Some "" | Some "image" -> `Image
    | Some "wal" -> `Wal (Wal.config (fresh_wal_dir ()))
    | Some s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "wal" -> (
        match
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some ms when ms >= 0 ->
          `Wal (Wal.config ~flush_ms:ms (fresh_wal_dir ()))
        | Some _ | None ->
          Types.ode_error "ODE_DURABILITY: bad flush window in %S" s)
      | Some _ | None -> Types.ode_error "ODE_DURABILITY: unknown backend %S" s)

  let of_env () =
    let c =
      {
        default with
        backend = Store.default_spec ();
        durability = durability_of_env ();
      }
    in
    (* CI also runs the suite partitioned: ODE_PARTITIONS=n slices
       every database created through the env path into an n-member
       engine group *)
    let c =
      match Sys.getenv_opt "ODE_PARTITIONS" with
      | None | Some "" -> c
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> { c with partitions = n }
        | Some n ->
          Types.ode_error "ODE_PARTITIONS: partition count must be >= 1 (got %d)"
            n
        | None -> Types.ode_error "ODE_PARTITIONS: bad partition count %S" s)
    in
    (* the timer-queue ablation switch: CI runs one leg with
       ODE_TIMER_QUEUE=list to exercise the reference sorted queue the
       wheel is pinned against *)
    let c =
      match Sys.getenv_opt "ODE_TIMER_QUEUE" with
      | None | Some "" | Some "wheel" -> c
      | Some "list" -> { c with timer_wheel = false }
      | Some s -> Types.ode_error "ODE_TIMER_QUEUE: unknown queue %S" s
    in
    (* the test/CI override that forces the parallel machinery on even
       for small batches and past the core-count clamp *)
    match Sys.getenv_opt "ODE_POST_DOMAINS" with
    | None | Some "" -> c
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 ->
        { c with post_domains = n; domain_clamp = false; parallel_threshold = 0 }
      | Some n ->
        Types.ode_error "ODE_POST_DOMAINS: domain count must be >= 1 (got %d)" n
      | None -> Types.ode_error "ODE_POST_DOMAINS: bad domain count %S" s)
end

let create_db ?config ?start_time ?max_tcomplete_rounds ?trace_capacity
    ?backend ?durability () =
  (* composition root: resolve one [Config.t], then instantiate the
     store and durability backends from it — [Types] holds both
     abstractly and cannot depend on [Store], [Persist] or [Wal]. The
     old optionals override their [Config] field when given. *)
  let c = match config with Some c -> c | None -> Config.of_env () in
  let override v field = match v with Some v -> v | None -> field in
  let c =
    {
      c with
      Config.start_time = override start_time c.Config.start_time;
      max_tcomplete_rounds =
        override max_tcomplete_rounds c.Config.max_tcomplete_rounds;
      trace_capacity = override trace_capacity c.Config.trace_capacity;
      backend = override backend c.Config.backend;
      durability = override durability c.Config.durability;
    }
  in
  let partitions = c.Config.partitions in
  if partitions < 1 then
    Types.ode_error "partition count must be >= 1 (got %d)" partitions;
  let db =
    if partitions = 1 then
      let dur =
        match c.Config.durability with
        | `Image -> Persist.image_backend ()
        | `Wal cfg -> Wal.backend cfg
      in
      Types.make_db
        ~backend:(Store.backend_of c.Config.backend)
        ~start_time:c.Config.start_time
        ~max_tcomplete_rounds:c.Config.max_tcomplete_rounds
        ~trace_capacity:c.Config.trace_capacity ~durability:dur ()
    else begin
      (* a fresh backend instance per member — never shared *)
      let db =
        Engine_group.make
          ~backend_of:(fun _ -> Store.backend_of c.Config.backend)
          ~partitions ~start_time:c.Config.start_time
          ~max_tcomplete_rounds:c.Config.max_tcomplete_rounds
          ~trace_capacity:c.Config.trace_capacity ()
      in
      db.Types.durability <-
        (match c.Config.durability with
        | `Image -> Engine_group.image_backend ()
        | `Wal cfg -> Engine_group.wal_backend ~partitions cfg);
      db
    end
  in
  Engine.set_post_domains db c.Config.post_domains;
  Engine.set_domain_clamp db c.Config.domain_clamp;
  Engine.set_parallel_threshold db c.Config.parallel_threshold;
  Engine.set_dispatch_index db c.Config.dispatch_index;
  Engine.set_posting_kernel db c.Config.posting_kernel;
  Timewheel.set_wheel db c.Config.timer_wheel;
  if c.Config.timing then Ode_obs.Registry.set_timing db.Types.obs true;
  db.Types.durability.Types.dur_attach db;
  db

let backend_name = Store.backend_name

let durability_name (db : t) = db.Types.durability.Types.dur_name
let partitions (db : t) = Types.n_partitions db

let config_summary (db : t) =
  let onoff b = if b then "on" else "off" in
  Printf.sprintf
    "backend=%s durability=%s partitions=%d post_domains=%d domain_clamp=%s \
     parallel_threshold=%d dispatch_index=%s posting_kernel=%s timer_queue=%s \
     obs=%s timing=%s clock=%Ldms"
    (backend_name db) (durability_name db) (partitions db)
    (Engine.post_domains db)
    (onoff (Engine.domain_clamp db))
    (Engine.parallel_threshold db)
    (onoff (Engine.dispatch_index_enabled db))
    (onoff (Engine.posting_kernel_enabled db))
    (if Timewheel.use_wheel db then "wheel" else "list")
    (onoff (Ode_obs.Registry.enabled db.Types.obs))
    (onoff (Ode_obs.Registry.timing db.Types.obs))
    db.Types.wheel.Types.clock_ms

let now = Timewheel.now
let advance_clock = Timewheel.advance_clock
let advance_to = Timewheel.advance_to
let set_timer_wheel = Timewheel.set_wheel
let timer_wheel_enabled = Timewheel.use_wheel
let image_bytes = Persist.group_image_bytes
let save (db : t) path = db.Types.durability.Types.dur_save db path
let load (db : t) path = db.Types.durability.Types.dur_load db path
let recover (db : t) = db.Types.durability.Types.dur_recover db
let sync_durability (db : t) = db.Types.durability.Types.dur_sync db
let close_durability (db : t) = db.Types.durability.Types.dur_close db

(* Transactions *)

let begin_txn = Txn.begin_txn
let switch_txn = Txn.switch_txn
let current_txn = Txn.current_txn
let txn_id = Txn.txn_id
let commit = Txn.commit
let abort = Txn.abort
let with_txn = Txn.with_txn

(* Objects *)

let create = Engine.create
let delete = Engine.delete
let exists = Store.exists
let class_of = Store.class_of
let objects = Store.objects
let objects_of_class = Store.objects_of_class
let call = Engine.call
let has_method = Engine.has_method
let apply_fun = Engine.apply_fun
let post_many = Engine.post_many
let set_post_domains = Engine.set_post_domains
let post_domains = Engine.post_domains
let set_parallel_threshold = Engine.set_parallel_threshold
let parallel_threshold = Engine.parallel_threshold
let set_domain_clamp = Engine.set_domain_clamp
let domain_clamp = Engine.domain_clamp
let shutdown_pool = Engine.shutdown_pool
let get_field = Store.get_field
let set_field = Engine.set_field

(* Triggers *)

let activate = Engine.activate
let deactivate = Engine.deactivate
let is_active = Engine.is_active
let trigger_state_words = Engine.trigger_state_words
let trigger_state = Engine.trigger_state

(* Firing notification *)

type subscription = Types.subscription

let subscribe_firings = Engine.subscribe_firings
let unsubscribe = Engine.unsubscribe

let subscriber_count (db : t) =
  List.length db.Types.engine.Types.subscribers

(* Database-scope triggers (§3) *)

let db_trigger = Schema.db_trigger
let db_trigger_str = Schema.db_trigger_str
let activate_db_trigger = Engine.activate_db_trigger
let deactivate_db_trigger = Engine.deactivate_db_trigger

(* Event histories (§9) *)

let enable_history = Store.enable_history
let object_history = Store.object_history

(* Statistics *)

type stats = Store.stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
}

let stats = Store.stats

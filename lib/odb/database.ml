module Value = Ode_base.Value
module Codec = Ode_base.Codec
module Symbol = Ode_event.Symbol
module Mask = Ode_event.Mask
module Expr = Ode_event.Expr
module Detector = Ode_event.Detector
open Types

type t = db
type nonrec txn = txn
type oid = int
type method_kind = Types.method_kind = Read_only | Updating

exception Tabort = Types.Tabort
exception Lock_conflict = Types.Lock_conflict
exception Ode_error = Types.Ode_error

type fire_context = Types.fire_context = {
  fc_oid : oid;
  fc_params : Value.t list;
  fc_occurrence : Ode_event.Symbol.occurrence;
  fc_collected : (string * Value.t) list;
  fc_witnesses : (string * Value.t) list list option;
}

type firing = Types.firing = {
  f_trigger : string;
  f_class : string;
  f_oid : oid;
  f_at : int64;
  f_txn : int;
}

(* ------------------------------------------------------------------ *)
(* Schema definition                                                   *)
(* ------------------------------------------------------------------ *)

type class_builder = {
  b_name : string;
  b_constructor : (db -> oid -> Value.t list -> unit) option;
  b_fields : (string * Value.t) list;  (* reversed *)
  b_methods : meth list;
  b_triggers : trigger_def list;
}

let define_class ?constructor name =
  {
    b_name = name;
    b_constructor = constructor;
    b_fields = [];
    b_methods = [];
    b_triggers = [];
  }

let field b name default =
  if List.mem_assoc name b.b_fields then
    ode_error "class %s: duplicate field %s" b.b_name name;
  { b with b_fields = (name, default) :: b.b_fields }

let method_ b ?arity ~kind name impl =
  { b with b_methods = { m_name = name; m_kind = kind; m_arity = arity; m_impl = impl } :: b.b_methods }

let trigger b ?(perpetual = false) ?(mode = Detector.Full_history)
    ?(witnesses = false) name ~event ~action =
  let detector =
    (* ~share: triggers declaring the same event reuse one compiled
       detector, so the per-occurrence classification cache in [post]
       classifies once for all of them *)
    try Detector.make ~mode ~share:true event
    with Invalid_argument msg -> ode_error "trigger %s.%s: %s" b.b_name name msg
  in
  let def =
    {
      t_name = name;
      t_class = b.b_name;
      t_event = event;
      t_detector = detector;
      t_perpetual = perpetual;
      t_witnesses = witnesses;
      t_action = action;
    }
  in
  { b with b_triggers = def :: b.b_triggers }

let trigger_str b ?perpetual ?mode ?witnesses name ~event ~action =
  match Ode_lang.Parser.event_of_string event with
  | Error msg -> ode_error "trigger %s.%s: %s" b.b_name name msg
  | Ok expr -> trigger b ?perpetual ?mode ?witnesses name ~event:expr ~action

(* Append [d] to the dispatch bucket of every basic-event key its
   detector's alphabet guards on. Buckets keep declaration order. *)
let index_trigger_def dispatch (d : trigger_def) =
  List.iter
    (fun key ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt dispatch key) in
      Hashtbl.replace dispatch key (prev @ [ d ]))
    (Detector.relevant_basics d.t_detector)

let register_class_schema db b =
  if Hashtbl.mem db.classes b.b_name then ode_error "class %s already defined" b.b_name;
  let k =
    {
      k_name = b.b_name;
      k_fields = List.rev b.b_fields;
      k_methods = Hashtbl.create 8;
      k_triggers = Hashtbl.create 8;
      k_dispatch = Hashtbl.create 16;
      k_constructor = b.b_constructor;
    }
  in
  List.iter
    (fun m ->
      if Hashtbl.mem k.k_methods m.m_name then
        ode_error "class %s: duplicate method %s" b.b_name m.m_name;
      Hashtbl.add k.k_methods m.m_name m)
    b.b_methods;
  List.iter
    (fun (d : trigger_def) ->
      if Hashtbl.mem k.k_triggers d.t_name then
        ode_error "class %s: duplicate trigger %s" b.b_name d.t_name;
      Hashtbl.add k.k_triggers d.t_name d)
    b.b_triggers;
  (* b_triggers is accumulated in reverse; index in declaration order so
     dispatch (and therefore action execution on a shared occurrence) is
     deterministic *)
  List.iter (index_trigger_def k.k_dispatch) (List.rev b.b_triggers);
  Hashtbl.add db.classes b.b_name k

let register_fun db name f =
  Hashtbl.replace db.functions name f

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create_db ?(start_time = 0L) () =
  {
    objects = Hashtbl.create 64;
    classes = Hashtbl.create 8;
    functions = Hashtbl.create 8;
    next_oid = 1;
    next_txn_id = 1;
    clock_ms = start_time;
    timers = [];
    current = None;
    open_txns = [];
    firings = [];
    in_abort = false;
    history_limit = 0;
    db_trigger_defs = Hashtbl.create 4;
    db_triggers = Hashtbl.create 4;
    db_dispatch = Hashtbl.create 8;
  }

let now db = db.clock_ms

let enable_history db ~limit =
  if limit < 0 then ode_error "history limit must be >= 0";
  db.history_limit <- limit

(* [object_history] is defined after [live_obj] below. *)

(* ------------------------------------------------------------------ *)
(* Internal helpers                                                    *)
(* ------------------------------------------------------------------ *)

let require_txn db =
  match db.current with
  | Some tx when tx.tx_status = Active -> tx
  | Some _ | None -> ode_error "this operation requires an active transaction"

let live_obj db oid =
  match Hashtbl.find_opt db.objects oid with
  | Some o when not o.o_deleted -> o
  | Some _ -> ode_error "object @%d has been deleted" oid
  | None -> ode_error "no such object @%d" oid

let object_history db oid =
  let obj = live_obj db oid in
  List.rev (History.truncate db.history_limit obj.o_history)

let mask_env db obj : Mask.env =
  {
    var = (fun name -> Hashtbl.find_opt obj.o_fields name);
    deref =
      (fun oid fieldname ->
        match Hashtbl.find_opt db.objects oid with
        | Some o when not o.o_deleted -> Hashtbl.find_opt o.o_fields fieldname
        | Some _ | None -> None);
    call =
      (fun name args ->
        match Hashtbl.find_opt db.functions name with
        | Some f -> f db args
        | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
  }

let log_firing db tx (at : active_trigger) obj =
  db.firings <-
    {
      f_trigger = at.at_def.t_name;
      f_class = at.at_def.t_class;
      f_oid = obj.o_id;
      f_at = db.clock_ms;
      f_txn = tx.tx_id;
    }
    :: db.firings

let record_history db tx obj occurrence =
  if db.history_limit > 0 then begin
    obj.o_history <-
      { History.h_occurrence = occurrence; h_txn = tx.tx_id } :: obj.o_history;
    obj.o_history_len <- obj.o_history_len + 1;
    if obj.o_history_len > 2 * db.history_limit then begin
      obj.o_history <- History.truncate db.history_limit obj.o_history;
      obj.o_history_len <- db.history_limit
    end
  end

(* When true (the default), [post]/[post_db] consult the per-class /
   per-database dispatch index and touch only the triggers whose alphabet
   can contain the posted basic event. When false they fall back to the
   pre-index reference path — a snapshot of every activation — kept for
   the equivalence property test and the E9 dispatch benchmark. *)
let dispatch_index = ref true

(* Classify the occurrence at most once per distinct compiled detector:
   triggers declaring the same event share a detector (Detector.make
   ~share) and reuse the cached result. The cache is per occurrence; a
   short assoc list on physical identity beats hashing for the handful of
   candidates a post touches. It is capped so that a post touching many
   {e distinct} detectors (only possible on the brute-force reference
   path) stays linear instead of walking an ever-longer list. *)
let classify_cache_cap = 16

let classify_cached cache detector ~env occurrence =
  let rec find n = function
    | [] -> Error n
    | (d, c) :: rest -> if d == detector then Ok c else find (n + 1) rest
  in
  match find 0 !cache with
  | Ok c -> c
  | Error n ->
    let c = Detector.classify detector ~env occurrence in
    if n < classify_cache_cap then cache := (detector, c) :: !cache;
    c

let candidate_triggers obj (basic : Symbol.basic) =
  if !dispatch_index then
    match Hashtbl.find_opt obj.o_class.k_dispatch (Symbol.basic_key basic) with
    | None -> []
    | Some defs ->
      List.filter_map
        (fun (d : trigger_def) ->
          match Hashtbl.find_opt obj.o_triggers d.t_name with
          | Some at when at.at_active -> Some at
          | Some _ | None -> None)
        defs
  else
    Hashtbl.fold
      (fun _ at acc -> if at.at_active then at :: acc else acc)
      obj.o_triggers []

(* Phase 2 of the pipeline: deactivate one-shot triggers, log and run the
   actions of the set that fired. *)
let post_fired db tx obj occurrence fired =
  List.iter
    (fun at ->
      if not at.at_def.t_perpetual then begin
        if at.at_def.t_detector.Detector.mode = Detector.Committed then
          tx.tx_undo <- U_trigger_active (at, at.at_active) :: tx.tx_undo;
        at.at_active <- false
      end;
      log_firing db tx at obj;
      at.at_def.t_action db
        {
          fc_oid = obj.o_id;
          fc_params = at.at_params;
          fc_occurrence = occurrence;
          fc_collected = at.at_collected;
          fc_witnesses =
            (if at.at_def.t_witnesses then Some at.at_last_witnesses else None);
        })
    fired;
  fired <> []

(* The §5 monitoring pipeline: advance the automaton of every active
   trigger the occurrence can concern (per the dispatch index), collect
   the set that fired, then execute their actions (order unspecified in
   the paper; we use declaration order). Returns whether anything
   fired. *)
let post db tx obj (basic : Symbol.basic) args =
  let occurrence = { Symbol.basic; args; at = db.clock_ms } in
  record_history db tx obj occurrence;
  match candidate_triggers obj basic with
  | [] -> false
  | candidates ->
    let env = mask_env db obj in
    let cache = ref [] in
    let fired = ref [] in
    List.iter
      (fun at ->
        let detector = at.at_def.t_detector in
        let occurred =
          try
            let c = classify_cached cache detector ~env occurrence in
            let relevant = Detector.is_relevant c in
            if relevant && detector.Detector.mode = Detector.Committed then begin
              (* an irrelevant occurrence provably changes neither the
                 automaton state nor the collected bindings, so the undo
                 copies are only taken here *)
              tx.tx_undo <-
                U_trigger_state (at, Detector.copy_state at.at_state) :: tx.tx_undo;
              tx.tx_undo <- U_trigger_collected (at, at.at_collected) :: tx.tx_undo
            end;
            if relevant then
              List.iter
                (fun (name, v) ->
                  at.at_collected <- (name, v) :: List.remove_assoc name at.at_collected)
                (Detector.collect_classified detector c occurrence);
            (match at.at_provenance with
            | Some prov ->
              at.at_last_witnesses <- Ode_event.Provenance.post prov ~env occurrence
            | None -> ());
            Detector.post_classified detector at.at_state ~env c
          with Mask.Eval_error msg ->
            ode_error "trigger %s.%s: mask evaluation failed: %s"
              at.at_def.t_class at.at_def.t_name msg
        in
        if occurred then fired := at :: !fired)
      candidates;
    post_fired db tx obj occurrence (List.rev !fired)

(* ------------------------------------------------------------------ *)
(* Database-scope triggers (§3)                                        *)
(* ------------------------------------------------------------------ *)

let db_mask_env db : Mask.env =
  {
    var = (fun _ -> None);
    deref =
      (fun oid fieldname ->
        match Hashtbl.find_opt db.objects oid with
        | Some o when not o.o_deleted -> Hashtbl.find_opt o.o_fields fieldname
        | Some _ | None -> None);
    call =
      (fun name args ->
        match Hashtbl.find_opt db.functions name with
        | Some f -> f db args
        | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
  }

let db_candidate_triggers db (basic : Symbol.basic) =
  if !dispatch_index then
    match Hashtbl.find_opt db.db_dispatch (Symbol.basic_key basic) with
    | None -> []
    | Some defs ->
      List.filter_map
        (fun (d : trigger_def) ->
          match Hashtbl.find_opt db.db_triggers d.t_name with
          | Some at when at.at_active -> Some at
          | Some _ | None -> None)
        defs
  else
    Hashtbl.fold
      (fun _ at acc -> if at.at_active then at :: acc else acc)
      db.db_triggers []

let post_db db (basic : Symbol.basic) args =
  match db_candidate_triggers db basic with
  | [] -> ()
  | candidates ->
    let occurrence = { Symbol.basic; args; at = db.clock_ms } in
    let env = db_mask_env db in
    let cache = ref [] in
    let fired = ref [] in
    List.iter
      (fun at ->
        let detector = at.at_def.t_detector in
        let occurred =
          try
            let c = classify_cached cache detector ~env occurrence in
            if Detector.is_relevant c then
              List.iter
                (fun (name, v) ->
                  at.at_collected <- (name, v) :: List.remove_assoc name at.at_collected)
                (Detector.collect_classified detector c occurrence);
            Detector.post_classified detector at.at_state ~env c
          with Mask.Eval_error msg ->
            ode_error "database trigger %s: mask evaluation failed: %s"
              at.at_def.t_name msg
        in
        if occurred then fired := at :: !fired)
      candidates;
    let affected = match args with Value.Oid o :: _ -> o | _ -> 0 in
    let txn_id = match db.current with Some tx -> tx.tx_id | None -> 0 in
    List.iter
      (fun at ->
        if not at.at_def.t_perpetual then at.at_active <- false;
        db.firings <-
          {
            f_trigger = at.at_def.t_name;
            f_class = "<database>";
            f_oid = affected;
            f_at = db.clock_ms;
            f_txn = txn_id;
          }
          :: db.firings;
        at.at_def.t_action db
          {
            fc_oid = affected;
            fc_params = at.at_params;
            fc_occurrence = occurrence;
            fc_collected = at.at_collected;
            fc_witnesses = None;
          })
      (List.rev !fired)

let db_trigger db ?(perpetual = false) name ~event ~action =
  if Hashtbl.mem db.db_trigger_defs name then
    ode_error "database trigger %s already defined" name;
  let detector =
    try Detector.make ~mode:Detector.Full_history ~share:true event
    with Invalid_argument msg -> ode_error "database trigger %s: %s" name msg
  in
  let def =
    {
      t_name = name;
      t_class = "<database>";
      t_event = event;
      t_detector = detector;
      t_perpetual = perpetual;
      t_witnesses = false;
      t_action = action;
    }
  in
  Hashtbl.add db.db_trigger_defs name def;
  index_trigger_def db.db_dispatch def

let db_trigger_str db ?perpetual name ~event ~action =
  match Ode_lang.Parser.event_of_string event with
  | Error msg -> ode_error "database trigger %s: %s" name msg
  | Ok expr -> db_trigger db ?perpetual name ~event:expr ~action

let activate_db_trigger db name params =
  match Hashtbl.find_opt db.db_trigger_defs name with
  | None -> ode_error "no database trigger %s" name
  | Some def -> (
    match Hashtbl.find_opt db.db_triggers name with
    | Some at ->
      at.at_state <- Detector.initial def.t_detector;
      at.at_collected <- [];
      at.at_active <- true;
      at.at_epoch <- at.at_epoch + 1;
      at.at_params <- params
    | None ->
      Hashtbl.add db.db_triggers name
        {
          at_def = def;
          at_params = params;
          at_state = Detector.initial def.t_detector;
          at_collected = [];
          at_provenance =
            (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
             else None);
          at_last_witnesses = [];
          at_active = true;
          at_epoch = 0;
        })

let deactivate_db_trigger db name =
  match Hashtbl.find_opt db.db_triggers name with
  | Some at -> at.at_active <- false
  | None -> ()

(* schema registration, now that [post_db] exists to announce it *)
let register_class db b =
  register_class_schema db b;
  post_db db (Symbol.Method (After, "defclass")) [ Value.String b.b_name ]

(* Lazy [after tbegin]: posted to an object immediately before the
   transaction's first access to it (§3.1(4)). *)
let touch db tx obj =
  if not (List.mem obj.o_id tx.tx_accessed) then begin
    tx.tx_accessed <- obj.o_id :: tx.tx_accessed;
    if not tx.tx_system then ignore (post db tx obj Symbol.Tbegin [])
  end

let acquire db tx obj request =
  ignore db;
  match Lock.acquire obj.o_lock ~holder:tx.tx_id request with
  | Some l -> obj.o_lock <- l
  | None -> raise (Lock_conflict obj.o_id)

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let insert_timer db tm =
  let rec ins = function
    | [] -> [ tm ]
    | t :: rest when t.tm_due <= tm.tm_due -> t :: ins rest
    | rest -> tm :: rest
  in
  db.timers <- ins db.timers

let first_due (spec : Symbol.time_spec) ~after =
  match spec with
  | Every p | After_period p ->
    if p <= 0L then None else Some (Int64.add after p)
  | At pattern -> Clock.next_match pattern ~after

let schedule_trigger_timers db obj (at : active_trigger) =
  let specs =
    List.filter_map
      (fun (l : Expr.leaf) ->
        match l.basic with Symbol.Time spec -> Some spec | _ -> None)
      (Expr.logical_events at.at_def.t_event)
  in
  List.iter
    (fun spec ->
      match first_due spec ~after:db.clock_ms with
      | None -> ()
      | Some due ->
        insert_timer db
          {
            tm_due = due;
            tm_oid = obj.o_id;
            tm_trigger = at.at_def.t_name;
            tm_epoch = at.at_epoch;
            tm_spec = spec;
            tm_anchor = db.clock_ms;
          })
    specs

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let begin_txn db =
  let tx =
    {
      tx_id = db.next_txn_id;
      tx_system = false;
      tx_status = Active;
      tx_accessed = [];
      tx_undo = [];
    }
  in
  db.next_txn_id <- db.next_txn_id + 1;
  db.open_txns <- tx :: db.open_txns;
  db.current <- Some tx;
  tx

let switch_txn db tx =
  if tx.tx_status <> Active then ode_error "cannot switch to a finished transaction";
  if not (List.memq tx db.open_txns) then ode_error "transaction is not open here";
  db.current <- Some tx

let current_txn db = db.current
let txn_id tx = tx.tx_id

let release_locks db tx =
  List.iter
    (fun oid ->
      match Hashtbl.find_opt db.objects oid with
      | Some obj -> obj.o_lock <- Lock.release obj.o_lock ~holder:tx.tx_id
      | None -> ())
    tx.tx_accessed

let detach db tx =
  db.open_txns <- List.filter (fun t -> not (t == tx)) db.open_txns;
  (match db.current with
  | Some cur when cur == tx ->
    db.current <- (match db.open_txns with t :: _ -> Some t | [] -> None)
  | Some _ | None -> ())

let apply_undo db entry =
  match entry with
  | U_field (obj, name, prev) -> Hashtbl.replace obj.o_fields name prev
  | U_create obj ->
    Hashtbl.remove db.objects obj.o_id;
    db.timers <- List.filter (fun tm -> tm.tm_oid <> obj.o_id) db.timers
  | U_delete obj -> obj.o_deleted <- false
  | U_trigger_state (at, prev) -> at.at_state <- prev
  | U_trigger_collected (at, prev) -> at.at_collected <- prev
  | U_trigger_active (at, prev) -> at.at_active <- prev
  | U_trigger_added (obj, name) -> Hashtbl.remove obj.o_triggers name

(* Post a transaction event to every object the finished transaction
   accessed, inside a fresh system transaction (§5: commit/abort events
   belong to no user transaction). A [Tabort] raised by an action there
   aborts only the system transaction. *)
let rec system_post db oids basic =
  let sys =
    {
      tx_id = db.next_txn_id;
      tx_system = true;
      tx_status = Active;
      tx_accessed = [];
      tx_undo = [];
    }
  in
  db.next_txn_id <- db.next_txn_id + 1;
  db.open_txns <- sys :: db.open_txns;
  let saved_current = db.current in
  db.current <- Some sys;
  let finish () =
    db.current <- saved_current;
    (* [detach] would reset current; restore by hand afterwards *)
    db.open_txns <- List.filter (fun t -> not (t == sys)) db.open_txns
  in
  (try
     List.iter
       (fun oid ->
         match Hashtbl.find_opt db.objects oid with
         | Some obj when not obj.o_deleted -> ignore (post db sys obj basic [])
         | Some _ | None -> ())
       oids;
     sys.tx_status <- Committed;
     release_locks db sys;
     finish ()
   with
  | Tabort ->
    abort_txn db sys;
    finish ()
  | e ->
    abort_txn db sys;
    finish ();
    raise e);
  ()

and abort_txn db tx =
  if tx.tx_status <> Active then ode_error "transaction already finished";
  (* Post [before tabort] while the transaction's effects are still
     visible; actions fired here are undone along with everything else. *)
  if (not tx.tx_system) && not db.in_abort then begin
    db.in_abort <- true;
    (try
       List.iter
         (fun oid ->
           match Hashtbl.find_opt db.objects oid with
           | Some obj when not obj.o_deleted ->
             ignore (post db tx obj (Symbol.Tabort Before) [])
           | Some _ | None -> ())
         (List.rev tx.tx_accessed)
     with Tabort -> () (* already aborting *));
    db.in_abort <- false
  end;
  List.iter (apply_undo db) tx.tx_undo;
  tx.tx_undo <- [];
  tx.tx_status <- Aborted;
  release_locks db tx;
  detach db tx;
  if not tx.tx_system then system_post db (List.rev tx.tx_accessed) (Symbol.Tabort After)

let abort = abort_txn

let max_tcomplete_rounds = 1000

let commit db tx =
  if tx.tx_status <> Active then ode_error "transaction already finished";
  let saved_current = db.current in
  db.current <- Some tx;
  let restore () =
    match saved_current with
    | Some cur when cur.tx_status = Active && not (cur == tx) -> db.current <- Some cur
    | _ -> ()
  in
  match
    if not tx.tx_system then begin
      (* §6: keep posting [before tcomplete] until a round fires nothing. *)
      let rec rounds n =
        if n > max_tcomplete_rounds then
          ode_error "commit livelock: before tcomplete keeps firing triggers";
        let fired = ref false in
        List.iter
          (fun oid ->
            match Hashtbl.find_opt db.objects oid with
            | Some obj when not obj.o_deleted ->
              if post db tx obj Symbol.Tcomplete [] then fired := true
            | Some _ | None -> ())
          (List.rev tx.tx_accessed);
        if !fired then rounds (n + 1)
      in
      rounds 1
    end
  with
  | () ->
    tx.tx_status <- Committed;
    tx.tx_undo <- [];
    release_locks db tx;
    detach db tx;
    restore ();
    if not tx.tx_system then system_post db (List.rev tx.tx_accessed) Symbol.Tcommit;
    Ok ()
  | exception Tabort ->
    abort_txn db tx;
    restore ();
    Error `Aborted

let with_txn db f =
  let tx = begin_txn db in
  match f tx with
  | v -> (
    match commit db tx with Ok () -> Ok v | Error `Aborted -> Error `Aborted)
  | exception Tabort ->
    abort_txn db tx;
    Error `Aborted
  | exception e ->
    if tx.tx_status = Active then abort_txn db tx;
    raise e

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

let create db cname args =
  let tx = require_txn db in
  let k =
    match Hashtbl.find_opt db.classes cname with
    | Some k -> k
    | None -> ode_error "no such class %s" cname
  in
  let oid = db.next_oid in
  db.next_oid <- db.next_oid + 1;
  let obj =
    {
      o_id = oid;
      o_class = k;
      o_fields = Hashtbl.create 8;
      o_triggers = Hashtbl.create 4;
      o_deleted = false;
      o_lock = Lock.Free;
      o_history = [];
      o_history_len = 0;
    }
  in
  List.iter (fun (name, v) -> Hashtbl.replace obj.o_fields name v) k.k_fields;
  Hashtbl.add db.objects oid obj;
  tx.tx_undo <- U_create obj :: tx.tx_undo;
  touch db tx obj;
  acquire db tx obj Lock.Write;
  (match k.k_constructor with None -> () | Some body -> body db oid args);
  ignore (post db tx obj Symbol.Create args);
  post_db db Symbol.Create [ Value.Oid oid; Value.String cname ];
  oid

let delete db oid =
  let tx = require_txn db in
  let obj = live_obj db oid in
  touch db tx obj;
  acquire db tx obj Lock.Write;
  ignore (post db tx obj Symbol.Delete []);
  post_db db Symbol.Delete [ Value.Oid oid; Value.String obj.o_class.k_name ];
  obj.o_deleted <- true;
  tx.tx_undo <- U_delete obj :: tx.tx_undo

let exists db oid =
  match Hashtbl.find_opt db.objects oid with
  | Some o -> not o.o_deleted
  | None -> false

let class_of db oid = (live_obj db oid).o_class.k_name

let objects db =
  Hashtbl.fold (fun oid o acc -> if o.o_deleted then acc else oid :: acc) db.objects []
  |> List.sort compare

let objects_of_class db cname =
  Hashtbl.fold
    (fun oid o acc ->
      if (not o.o_deleted) && o.o_class.k_name = cname then oid :: acc else acc)
    db.objects []
  |> List.sort compare

let get_field db oid name =
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_fields name with
  | Some v -> v
  | None -> ode_error "class %s has no field %s" obj.o_class.k_name name

let set_field db oid name v =
  let tx = require_txn db in
  let obj = live_obj db oid in
  touch db tx obj;
  acquire db tx obj Lock.Write;
  match Hashtbl.find_opt obj.o_fields name with
  | None -> ode_error "class %s has no field %s" obj.o_class.k_name name
  | Some prev ->
    tx.tx_undo <- U_field (obj, name, prev) :: tx.tx_undo;
    Hashtbl.replace obj.o_fields name v

let call db oid mname args =
  let tx = require_txn db in
  let obj = live_obj db oid in
  let meth =
    match Hashtbl.find_opt obj.o_class.k_methods mname with
    | Some m -> m
    | None -> ode_error "class %s has no method %s" obj.o_class.k_name mname
  in
  (match meth.m_arity with
  | Some a when a <> List.length args ->
    ode_error "%s.%s expects %d arguments, got %d" obj.o_class.k_name mname a
      (List.length args)
  | Some _ | None -> ());
  touch db tx obj;
  let request, rw_event =
    match meth.m_kind with
    | Read_only -> (Lock.Read, fun q -> Symbol.Read q)
    | Updating -> (Lock.Write, fun q -> Symbol.Update q)
  in
  acquire db tx obj request;
  ignore (post db tx obj (Symbol.Access Before) []);
  ignore (post db tx obj (rw_event Symbol.Before) []);
  ignore (post db tx obj (Symbol.Method (Before, mname)) args);
  let result = meth.m_impl db oid args in
  ignore (post db tx obj (Symbol.Method (After, mname)) args);
  ignore (post db tx obj (rw_event Symbol.After) []);
  ignore (post db tx obj (Symbol.Access After) []);
  result

let has_method db oid mname =
  let obj = live_obj db oid in
  Hashtbl.mem obj.o_class.k_methods mname

let apply_fun db name args =
  match Hashtbl.find_opt db.functions name with
  | Some f -> f db args
  | None -> ode_error "unknown database function %s" name

(* ------------------------------------------------------------------ *)
(* Triggers                                                            *)
(* ------------------------------------------------------------------ *)

let activate db oid tname params =
  let tx = require_txn db in
  let obj = live_obj db oid in
  let def =
    match Hashtbl.find_opt obj.o_class.k_triggers tname with
    | Some d -> d
    | None -> ode_error "class %s has no trigger %s" obj.o_class.k_name tname
  in
  (match Hashtbl.find_opt obj.o_triggers tname with
  | Some at ->
    (* Re-activation re-arms the trigger: fresh automaton state. *)
    tx.tx_undo <-
      U_trigger_state (at, Detector.copy_state at.at_state)
      :: U_trigger_active (at, at.at_active)
      :: tx.tx_undo;
    at.at_state <- Detector.initial def.t_detector;
    at.at_collected <- [];
    at.at_provenance <-
      (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event) else None);
    at.at_last_witnesses <- [];
    at.at_active <- true;
    at.at_epoch <- at.at_epoch + 1;
    at.at_params <- params;
    schedule_trigger_timers db obj at
  | None ->
    let at =
      {
        at_def = def;
        at_params = params;
        at_state = Detector.initial def.t_detector;
        at_collected = [];
        at_provenance =
          (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
           else None);
        at_last_witnesses = [];
        at_active = true;
        at_epoch = 0;
      }
    in
    Hashtbl.add obj.o_triggers tname at;
    tx.tx_undo <- U_trigger_added (obj, tname) :: tx.tx_undo;
    schedule_trigger_timers db obj at);
  ()

let deactivate db oid tname =
  let tx = require_txn db in
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | None -> ()
  | Some at ->
    tx.tx_undo <- U_trigger_active (at, at.at_active) :: tx.tx_undo;
    at.at_active <- false

let is_active db oid tname =
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | Some at -> at.at_active
  | None -> false

let trigger_state_words db oid tname =
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | Some at -> Array.length at.at_state
  | None -> ode_error "trigger %s not activated on @%d" tname oid

let trigger_state db oid tname =
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | Some at -> Array.copy at.at_state
  | None -> ode_error "trigger %s not activated on @%d" tname oid

let take_firings db =
  let fs = List.rev db.firings in
  db.firings <- [];
  fs

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let reschedule (tm : timer) ~fired_at =
  match tm.tm_spec with
  | Symbol.Every p -> Some { tm with tm_due = Int64.add fired_at p }
  | Symbol.After_period _ -> None
  | Symbol.At pattern ->
    Option.map (fun due -> { tm with tm_due = due }) (Clock.next_match pattern ~after:fired_at)

let timer_alive db (tm : timer) =
  match Hashtbl.find_opt db.objects tm.tm_oid with
  | Some obj when not obj.o_deleted -> (
    match Hashtbl.find_opt obj.o_triggers tm.tm_trigger with
    | Some at -> at.at_active && at.at_epoch = tm.tm_epoch
    | None -> false)
  | Some _ | None -> false

(* Deliver one time-event occurrence to an object, inside a system
   transaction so fired actions can mutate objects transactionally. *)
let deliver_time_event db oid spec =
  match Hashtbl.find_opt db.objects oid with
  | Some obj when not obj.o_deleted ->
    let sys =
      {
        tx_id = db.next_txn_id;
        tx_system = true;
        tx_status = Active;
        tx_accessed = [];
        tx_undo = [];
      }
    in
    db.next_txn_id <- db.next_txn_id + 1;
    db.open_txns <- sys :: db.open_txns;
    let saved = db.current in
    db.current <- Some sys;
    (try
       ignore (post db sys obj (Symbol.Time spec) []);
       sys.tx_status <- Committed;
       release_locks db sys
     with Tabort -> abort_txn db sys);
    db.open_txns <- List.filter (fun t -> not (t == sys)) db.open_txns;
    db.current <- saved
  | Some _ | None -> ()

let advance_to db target =
  if target < db.clock_ms then ode_error "clock cannot go backwards";
  let rec loop () =
    match db.timers with
    | tm :: rest when tm.tm_due <= target ->
      (* Several triggers may watch the same time event on the same
         object; pull every timer for this (object, spec, instant) and
         deliver a single occurrence — logical events are points, and a
         doubled delivery would wrongly feed expressions like
         [!prior(dayBegin, ...)] twice. *)
      let same t =
        t.tm_due = tm.tm_due && t.tm_oid = tm.tm_oid && t.tm_spec = tm.tm_spec
      in
      let dups, rest = List.partition same rest in
      db.timers <- rest;
      let group = tm :: dups in
      db.clock_ms <- max db.clock_ms tm.tm_due;
      if List.exists (timer_alive db) group then
        deliver_time_event db tm.tm_oid tm.tm_spec;
      List.iter
        (fun t ->
          if timer_alive db t then
            match reschedule t ~fired_at:t.tm_due with
            | Some t' -> insert_timer db t'
            | None -> ())
        group;
      loop ()
    | _ -> ()
  in
  loop ();
  db.clock_ms <- target

let advance_clock db span =
  if span < 0L then ode_error "clock cannot go backwards";
  advance_to db (Int64.add db.clock_ms span)

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let magic = "ODE1"

let write_time_spec w (spec : Symbol.time_spec) =
  let write_pattern (p : Symbol.time_pattern) =
    let opt v = Codec.write_option w Codec.write_int v in
    opt p.year; opt p.mon; opt p.day; opt p.hr; opt p.min; opt p.sec; opt p.ms
  in
  match spec with
  | At p ->
    Codec.write_int w 0;
    write_pattern p
  | Every ms ->
    Codec.write_int w 1;
    Codec.write_int w (Int64.to_int ms)
  | After_period ms ->
    Codec.write_int w 2;
    Codec.write_int w (Int64.to_int ms)

let read_time_spec r : Symbol.time_spec =
  let read_pattern () : Symbol.time_pattern =
    let opt () = Codec.read_option r Codec.read_int in
    let year = opt () in
    let mon = opt () in
    let day = opt () in
    let hr = opt () in
    let min = opt () in
    let sec = opt () in
    let ms = opt () in
    { year; mon; day; hr; min; sec; ms }
  in
  match Codec.read_int r with
  | 0 -> At (read_pattern ())
  | 1 -> Every (Int64.of_int (Codec.read_int r))
  | 2 -> After_period (Int64.of_int (Codec.read_int r))
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad time spec tag %d" t))

let save db path =
  if db.open_txns <> [] then ode_error "cannot save with open transactions";
  let w = Codec.writer () in
  Codec.write_string w magic;
  Codec.write_int w db.next_oid;
  Codec.write_int w db.next_txn_id;
  Codec.write_int w (Int64.to_int db.clock_ms);
  let live =
    Hashtbl.fold (fun _ o acc -> if o.o_deleted then acc else o :: acc) db.objects []
    |> List.sort (fun a b -> compare a.o_id b.o_id)
  in
  Codec.write_list w
    (fun w obj ->
      Codec.write_int w obj.o_id;
      Codec.write_string w obj.o_class.k_name;
      Codec.write_list w
        (fun w (name, v) ->
          Codec.write_string w name;
          Codec.write_value w v)
        (Hashtbl.fold (fun name v acc -> (name, v) :: acc) obj.o_fields []
        |> List.sort compare);
      Codec.write_list w
        (fun w (name, (at : active_trigger)) ->
          Codec.write_string w name;
          Codec.write_list w Codec.write_value at.at_params;
          Codec.write_array w Codec.write_int at.at_state;
          Codec.write_list w
            (fun w (name, v) ->
              Codec.write_string w name;
              Codec.write_value w v)
            at.at_collected;
          Codec.write_bool w at.at_active;
          Codec.write_int w at.at_epoch)
        (Hashtbl.fold (fun name at acc -> (name, at) :: acc) obj.o_triggers []
        |> List.sort (fun (a, _) (b, _) -> compare a b)))
    live;
  Codec.write_list w
    (fun w (tm : timer) ->
      Codec.write_int w (Int64.to_int tm.tm_due);
      Codec.write_int w tm.tm_oid;
      Codec.write_string w tm.tm_trigger;
      Codec.write_int w tm.tm_epoch;
      write_time_spec w tm.tm_spec;
      Codec.write_int w (Int64.to_int tm.tm_anchor))
    db.timers;
  Codec.to_file path (Codec.contents w)

let load db path =
  if db.open_txns <> [] then ode_error "cannot load with open transactions";
  let r = Codec.reader (Codec.of_file path) in
  if Codec.read_string r <> magic then raise (Codec.Corrupt "not an Ode image");
  let next_oid = Codec.read_int r in
  let next_txn_id = Codec.read_int r in
  let clock_ms = Int64.of_int (Codec.read_int r) in
  Hashtbl.reset db.objects;
  db.timers <- [];
  db.firings <- [];
  db.next_oid <- next_oid;
  db.next_txn_id <- next_txn_id;
  db.clock_ms <- clock_ms;
  let objs =
    Codec.read_list r (fun r ->
        let oid = Codec.read_int r in
        let cname = Codec.read_string r in
        let fields =
          Codec.read_list r (fun r ->
              let name = Codec.read_string r in
              let v = Codec.read_value r in
              (name, v))
        in
        let triggers =
          Codec.read_list r (fun r ->
              let name = Codec.read_string r in
              let params = Codec.read_list r Codec.read_value in
              let state = Codec.read_array r Codec.read_int in
              let collected =
                Codec.read_list r (fun r ->
                    let name = Codec.read_string r in
                    let v = Codec.read_value r in
                    (name, v))
              in
              let active = Codec.read_bool r in
              let epoch = Codec.read_int r in
              (name, params, state, collected, active, epoch))
        in
        (oid, cname, fields, triggers))
  in
  List.iter
    (fun (oid, cname, fields, triggers) ->
      let k =
        match Hashtbl.find_opt db.classes cname with
        | Some k -> k
        | None -> raise (Codec.Corrupt ("image references unregistered class " ^ cname))
      in
      let obj =
        {
          o_id = oid;
          o_class = k;
          o_fields = Hashtbl.create 8;
          o_triggers = Hashtbl.create 4;
          o_deleted = false;
          o_lock = Lock.Free;
          o_history = [];
          o_history_len = 0;
        }
      in
      List.iter (fun (name, v) -> Hashtbl.replace obj.o_fields name v) fields;
      List.iter
        (fun (name, params, state, collected, active, epoch) ->
          match Hashtbl.find_opt k.k_triggers name with
          | None -> raise (Codec.Corrupt ("image references unknown trigger " ^ name))
          | Some def ->
            if Array.length state <> Detector.n_state_words def.t_detector then
              raise (Codec.Corrupt "trigger state size mismatch (schema changed?)");
            Hashtbl.add obj.o_triggers name
              {
                at_def = def;
                at_params = params;
                at_state = state;
                at_collected = collected;
                (* provenance instances are volatile: rebuilt empty after a
                   load (documented in save) *)
                at_provenance =
                  (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
                   else None);
                at_last_witnesses = [];
                at_active = active;
                at_epoch = epoch;
              })
        triggers;
      Hashtbl.add db.objects oid obj)
    objs;
  let timers =
    Codec.read_list r (fun r ->
        let due = Int64.of_int (Codec.read_int r) in
        let oid = Codec.read_int r in
        let tname = Codec.read_string r in
        let epoch = Codec.read_int r in
        let spec = read_time_spec r in
        let anchor = Int64.of_int (Codec.read_int r) in
        { tm_due = due; tm_oid = oid; tm_trigger = tname; tm_epoch = epoch;
          tm_spec = spec; tm_anchor = anchor })
  in
  List.iter (insert_timer db) timers

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
}

let stats db =
  let n_objects = ref 0 in
  let n_active = ref 0 in
  let state_bytes = ref 0 in
  Hashtbl.iter
    (fun _ obj ->
      if not obj.o_deleted then begin
        incr n_objects;
        Hashtbl.iter
          (fun _ at ->
            if at.at_active then incr n_active;
            state_bytes := !state_bytes + (8 * Array.length at.at_state))
          obj.o_triggers
      end)
    db.objects;
  {
    n_objects = !n_objects;
    n_classes = Hashtbl.length db.classes;
    n_active_triggers = !n_active;
    n_timers = List.length db.timers;
    state_bytes = !state_bytes;
  }

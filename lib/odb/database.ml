(* Thin facade over the layered subsystems. All behaviour lives below:

     Schema    — class builders, trigger definitions, detector
                 compilation, dispatch-index construction
     Store     — the object heap (STORE backend signature, oid
                 allocation, field access, histories, stats)
     Txn       — begin/commit/abort, undo log, locks, the §6
                 [before tcomplete] fixpoint
     Engine    — the §5 posting pipeline, candidate selection,
                 classification cache, firing, system transactions
     Timewheel — timers and simulated-time advancement
     Persist   — the ODE1 full-image codec and the image durability
                 backend
     Wal       — the write-ahead-log durability backend (redo batches,
                 group commit, snapshots, crash recovery)

   This module only re-exports (plus the composition-root choice of
   store and durability backends in [create_db]); keep it free of logic
   so the public API stays a stable surface over the layers. *)

module Value = Ode_base.Value

type t = Types.db
type txn = Types.txn
type oid = int
type method_kind = Types.method_kind = Read_only | Updating

exception Tabort = Types.Tabort
exception Lock_conflict = Types.Lock_conflict
exception Ode_error = Types.Ode_error

type fire_context = Types.fire_context = {
  fc_oid : oid;
  fc_params : Value.t list;
  fc_occurrence : Ode_event.Symbol.occurrence;
  fc_collected : (string * Value.t) list;
  fc_witnesses : (string * Value.t) list list option;
}

type firing = Types.firing = {
  f_trigger : string;
  f_class : string;
  f_oid : oid;
  f_at : int64;
  f_txn : int;
}

(* Schema definition *)

type class_builder = Schema.class_builder

let define_class = Schema.define_class
let field = Schema.field
let method_ = Schema.method_
let trigger = Schema.trigger
let trigger_str = Schema.trigger_str
let register_class = Engine.register_class
let register_fun = Schema.register_fun

(* Dispatch-index configuration *)

let set_dispatch_index = Engine.set_dispatch_index
let dispatch_index_enabled = Engine.dispatch_index_enabled
let set_posting_kernel = Engine.set_posting_kernel
let posting_kernel_enabled = Engine.posting_kernel_enabled

(* Observability *)

let observe (db : t) = db.Types.obs

let set_observability (db : t) flag =
  Ode_obs.Registry.set_enabled db.Types.obs flag

(* Lifecycle *)

type backend_spec = Store.spec
type durability_spec = [ `Image | `Wal of Wal.config ]

(* A fresh unique directory for an env-selected WAL — each database
   must own its log (a shared one would interleave generations). *)
let fresh_wal_dir () =
  let f = Filename.temp_file "ode-wal" "" in
  Sys.remove f;
  f

(* CI runs the whole suite against the WAL backend with
   ODE_DURABILITY=wal (optionally wal:<flush_ms>), mirroring the
   ODE_STORE_BACKEND escape hatch. *)
let default_durability () : durability_spec =
  match Sys.getenv_opt "ODE_DURABILITY" with
  | None | Some "" | Some "image" -> `Image
  | Some "wal" -> `Wal (Wal.config (fresh_wal_dir ()))
  | Some s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "wal" -> (
      match
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some ms when ms >= 0 -> `Wal (Wal.config ~flush_ms:ms (fresh_wal_dir ()))
      | Some _ | None ->
        Types.ode_error "ODE_DURABILITY: bad flush window in %S" s)
    | Some _ | None -> Types.ode_error "ODE_DURABILITY: unknown backend %S" s)

let create_db ?start_time ?max_tcomplete_rounds ?trace_capacity ?backend
    ?durability () =
  (* composition root: instantiate the store and durability backends
     here — [Types] holds both abstractly and cannot depend on [Store],
     [Persist] or [Wal] *)
  let spec =
    match backend with Some s -> s | None -> Store.default_spec ()
  in
  let dur =
    match
      (match durability with Some d -> d | None -> default_durability ())
    with
    | `Image -> Persist.image_backend ()
    | `Wal cfg -> Wal.backend cfg
  in
  let db =
    Types.make_db
      ~backend:(Store.backend_of spec)
      ?start_time ?max_tcomplete_rounds ?trace_capacity ~durability:dur ()
  in
  (match Sys.getenv_opt "ODE_POST_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 ->
          (* test/CI override: force the parallel machinery on even for
             small batches and past the core-count clamp *)
          Engine.set_post_domains db n;
          Engine.set_domain_clamp db false;
          Engine.set_parallel_threshold db 0
      | _ -> ())
  | None -> ());
  db.Types.durability.Types.dur_attach db;
  db

let backend_name = Store.backend_name

let durability_name (db : t) = db.Types.durability.Types.dur_name

let now = Timewheel.now
let advance_clock = Timewheel.advance_clock
let advance_to = Timewheel.advance_to
let image_bytes = Persist.image_bytes
let save (db : t) path = db.Types.durability.Types.dur_save db path
let load (db : t) path = db.Types.durability.Types.dur_load db path
let recover (db : t) = db.Types.durability.Types.dur_recover db
let sync_durability (db : t) = db.Types.durability.Types.dur_sync db
let close_durability (db : t) = db.Types.durability.Types.dur_close db

(* Transactions *)

let begin_txn = Txn.begin_txn
let switch_txn = Txn.switch_txn
let current_txn = Txn.current_txn
let txn_id = Txn.txn_id
let commit = Txn.commit
let abort = Txn.abort
let with_txn = Txn.with_txn

(* Objects *)

let create = Engine.create
let delete = Engine.delete
let exists = Store.exists
let class_of = Store.class_of
let objects = Store.objects
let objects_of_class = Store.objects_of_class
let call = Engine.call
let has_method = Engine.has_method
let apply_fun = Engine.apply_fun
let post_many = Engine.post_many
let set_post_domains = Engine.set_post_domains
let post_domains = Engine.post_domains
let set_parallel_threshold = Engine.set_parallel_threshold
let parallel_threshold = Engine.parallel_threshold
let set_domain_clamp = Engine.set_domain_clamp
let domain_clamp = Engine.domain_clamp
let shutdown_pool = Engine.shutdown_pool
let get_field = Store.get_field
let set_field = Engine.set_field

(* Triggers *)

let activate = Engine.activate
let deactivate = Engine.deactivate
let is_active = Engine.is_active
let trigger_state_words = Engine.trigger_state_words
let trigger_state = Engine.trigger_state

(* Firing notification *)

type subscription = Types.subscription

let subscribe_firings = Engine.subscribe_firings
let unsubscribe = Engine.unsubscribe

(* Database-scope triggers (§3) *)

let db_trigger = Schema.db_trigger
let db_trigger_str = Schema.db_trigger_str
let activate_db_trigger = Engine.activate_db_trigger
let deactivate_db_trigger = Engine.deactivate_db_trigger

(* Event histories (§9) *)

let enable_history = Store.enable_history
let object_history = Store.object_history

(* Statistics *)

type stats = Store.stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
}

let stats = Store.stats

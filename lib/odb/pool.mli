(** A fixed-size pool of OCaml 5 domains for the parallel classify/step
    phase of batch posting ({!Engine.post_many}).

    The pool runs one job at a time through a reusable barrier: a job
    is published by bumping a generation counter that idle workers spin
    on (parking on a condition variable once a short budget runs out),
    and completion is a lock-free countdown the caller awaits the same
    way. Publishing a batch therefore costs a couple of atomic
    transitions when the pool is hot, instead of a mutex broadcast and
    a condvar wake per worker per batch.

    Two distribution modes:
    - {!run} — dynamic: task indices are claimed from a shared atomic
      counter; good when task costs are unknown.
    - {!run_static} — static: participant [w] of [size] owns the
      strided subset [w, w + size, ...]. The task → participant map is
      a pure function of the pool size, so repeated jobs over the same
      index space pin each task to the same domain — the engine uses
      this to keep each store shard (and its scratch state) on one
      domain across batches.

    The pool is {e not} reentrant: tasks must not call {!run} on the
    pool executing them, and only one thread may orchestrate a pool at
    a time. The engine satisfies both by construction — the posting
    pipeline has a single sequential orchestrator and the parallel
    phase never posts. *)

type t

val create : size:int -> t
(** [create ~size] spawns [size - 1] worker domains (the caller is the
    [size]-th participant). [size] is clamped below at 1; a size-1 pool
    spawns nothing and {!run} degenerates to an inline loop, which is
    also the no-allocation path [post_many] takes on a 1-domain run.
    Raises [Invalid_argument] beyond 128 (the runtime's domain ceiling
    must be shared with the rest of the process). *)

val size : t -> int

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f 0 .. f (tasks-1)], each exactly once,
    distributed dynamically over the pool, and blocks until all have
    completed. If one or more tasks raise, every remaining task still
    runs (partial effects must stay mergeable) and then the
    first-recorded exception is re-raised in the caller. *)

val run_static : t -> tasks:int -> (int -> unit) -> unit
(** Like {!run}, but with the static strided distribution: participant
    [w] executes exactly the tasks [i] with [i mod size = w], the
    caller being participant [size - 1]. Same completion and failure
    contract as {!run}. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    {!run} afterwards. *)

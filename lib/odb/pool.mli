(** A fixed-size pool of OCaml 5 domains for the parallel classify/step
    phase of batch posting ({!Engine.post_many}).

    The pool runs one job at a time: {!run} publishes a task function
    over indices [0 .. tasks-1], the caller participates in draining the
    task queue alongside the worker domains, and {!run} returns only
    after every task has finished. Tasks are claimed with an atomic
    counter, so a pool of [size] n executes at most n tasks
    concurrently and every task exactly once.

    The pool is {e not} reentrant: tasks must not call {!run} on the
    pool executing them, and only one thread may orchestrate a pool at
    a time. The engine satisfies both by construction — the posting
    pipeline has a single sequential orchestrator and the parallel
    phase never posts. *)

type t

val create : size:int -> t
(** [create ~size] spawns [size - 1] worker domains (the caller is the
    [size]-th participant). [size] is clamped below at 1; a size-1 pool
    spawns nothing and {!run} degenerates to an inline loop, which is
    also the no-allocation path [post_many] takes on a 1-domain run.
    Raises [Invalid_argument] beyond 128 (the runtime's domain ceiling
    must be shared with the rest of the process). *)

val size : t -> int

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f 0 .. f (tasks-1)], each exactly once,
    distributed over the pool, and blocks until all have completed. If
    one or more tasks raise, every remaining task still runs (partial
    effects must stay mergeable) and then the first-recorded exception
    is re-raised in the caller. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    {!run} afterwards. *)

(** Schema layer: class builders, trigger definitions, detector
    compilation, and construction of the per-class / per-database
    dispatch indexes (paper §5).

    Bottom of the subsystem stack — depends only on {!Types}. Everything
    here runs at registration time; the posting hot path only {e reads}
    the structures built here. The public face of these operations is
    re-exported by {!Database}. *)

module Value = Ode_base.Value
open Types

type class_builder

val define_class :
  ?constructor:(db -> oid -> Value.t list -> unit) -> string -> class_builder

val field : class_builder -> string -> Value.t -> class_builder

val method_ :
  class_builder ->
  ?arity:int ->
  kind:method_kind ->
  string ->
  (db -> oid -> Value.t list -> Value.t) ->
  class_builder

val trigger :
  class_builder ->
  ?perpetual:bool ->
  ?mode:Ode_event.Detector.mode ->
  ?witnesses:bool ->
  string ->
  event:Ode_event.Expr.t ->
  action:(db -> fire_context -> unit) ->
  class_builder
(** Compiles the event specification to its automaton — once per class
    (§5). Detectors are made with [~share] so triggers declaring the
    same event reuse one compiled automaton and one classification-cache
    slot. *)

val trigger_str :
  class_builder ->
  ?perpetual:bool ->
  ?mode:Ode_event.Detector.mode ->
  ?witnesses:bool ->
  string ->
  event:string ->
  action:(db -> fire_context -> unit) ->
  class_builder

val register_class : db -> class_builder -> unit
(** Install the class and build its dispatch index. Purely structural:
    posting the [after defclass] database-scope event is the caller's
    job ({!Engine.register_class}), keeping this layer free of any
    dependency on the posting pipeline. *)

val builder_name : class_builder -> string

val register_fun : db -> string -> (db -> Value.t list -> Value.t) -> unit

val find_class : db -> string -> klass option
val n_classes : db -> int
val find_fun : db -> string -> (db -> Value.t list -> Value.t) option

val db_trigger :
  db ->
  ?perpetual:bool ->
  ?witnesses:bool ->
  string ->
  event:Ode_event.Expr.t ->
  action:(db -> fire_context -> unit) ->
  unit
(** Define a database-scope trigger (§3) and index it in the
    database-scope dispatch table. Activation is {!Engine}'s job.
    [witnesses] (default false) tracks full per-match provenance, as for
    object-scope triggers: the action's [fc_witnesses] is then
    [Some matches] instead of [None]. *)

val db_trigger_str :
  db ->
  ?perpetual:bool ->
  ?witnesses:bool ->
  string ->
  event:string ->
  action:(db -> fire_context -> unit) ->
  unit

val find_db_trigger : db -> string -> trigger_def option

val index_trigger_def :
  (Ode_event.Symbol.basic_key, trigger_def list) Hashtbl.t -> trigger_def -> unit
(** Append a definition to the dispatch bucket of every basic-event key
    its detector's alphabet guards on, keeping declaration order. *)

(* Engine group: N engine members slicing one logical database by oid.

   Member [k] owns every oid with [oid mod n = k]: its own heap slice
   (store backend + SoA blocks), its own timer wheel and its own
   durability log. Everything else — schema, transaction state, engine
   state (db-scope automata, scratch, knobs), observability — is the
   {e same} record, shared by construction: members are field-for-field
   copies of member 0 ([{ m0 with store = ...; wheel = ... }]), so the
   whole [Txn]/[Engine] fixpoint machinery runs unchanged on whichever
   member the facade routes to.

   Member 0 is the facade handed to callers; its [part] field (like
   every member's) points at the full member array, which is all the
   routing helpers in [Types]/[Store] need. Determinism: batches are
   bucketed by lane in batch-index order, timers merge by the
   group-wide [(tm_due, tm_seq)] stamp, and the group image writers in
   [Persist] merge slices back into single-engine byte order — so
   firings, counters and ODE1 bytes are identical at any partition
   count. *)

open Types

let make ~backend_of ~partitions ?start_time ?max_tcomplete_rounds
    ?trace_capacity () =
  if partitions < 1 then
    ode_error "partition count must be >= 1 (got %d)" partitions;
  let m0 =
    make_db ~backend:(backend_of 0) ?start_time ?max_tcomplete_rounds
      ?trace_capacity ()
  in
  if partitions = 1 then m0
  else begin
    let members =
      Array.init partitions (fun k ->
          if k = 0 then m0
          else
            let backend = backend_of k in
            {
              m0 with
              store =
                {
                  backend;
                  next_oid = m0.store.next_oid;
                  n_live = 0;
                  history_limit = 0;
                  soa = Array.init backend.sb_shards (fun _ -> Hashtbl.create 8);
                };
              wheel =
                {
                  clock_ms = m0.wheel.clock_ms;
                  tq = Tq_list [];
                  timers_dirty = false;
                  tm_next_seq = 0;
                };
              durability = noop_durability;
              part = None;
            })
    in
    Array.iteri (fun k m -> m.part <- Some { p_members = members; p_index = k })
      members;
    m0
  end

(* Full-image durability for a group: the plain image backend with the
   slice-merging writers swapped in. *)
let image_backend () =
  {
    dur_name = "image";
    dur_attach = (fun _ -> ());
    dur_commit = (fun _ _ -> ());
    dur_save = Persist.group_save;
    dur_load = Persist.group_load;
    dur_recover =
      (fun _ -> ode_error "image durability keeps no log to recover from");
    dur_sync = (fun _ -> ());
    dur_close = (fun _ -> ());
  }

(* WAL durability for a group: one independent log per member under
   [<dir>/p<k>], plus a [group-manifest] at the root pinning the
   partition count. Each commit's footprint is split by owner —
   member 0 always logs (its batch carries the shared counters and the
   clock even when its slice did not move), member [k > 0] logs only
   when its slice has dirty objects or its wheel moved. Cross-member
   atomicity of one commit is {e not} guaranteed by the log layout:
   each member replays its own clean prefix and the group recover then
   maxes the shared counters and clocks (see INTERNALS.md). *)
let wal_backend ~partitions (cfg : Wal.config) =
  let mbs =
    Array.init partitions (fun k ->
        Wal.member_backend { cfg with Wal.dir = Wal.member_dir cfg.Wal.dir k })
  in
  let checkpoints = Array.map (fun ((cp, _), _) -> cp) mbs in
  let rebaselines = Array.map (fun ((_, rb), _) -> rb) mbs in
  let backends = Array.map snd mbs in
  let each db f =
    let ms = Store.members db in
    Array.iteri (fun k m -> f backends.(k) m) ms
  in
  {
    dur_name = "wal:" ^ cfg.Wal.dir;
    dur_attach =
      (fun db ->
        Wal.check_manifest cfg.Wal.dir ~partitions;
        each db (fun b m -> b.dur_attach m));
    dur_commit =
      (fun db oids ->
        let ms = Store.members db in
        let n = Array.length ms in
        let subs = Array.make n [] in
        List.iter (fun oid -> subs.(oid mod n) <- oid :: subs.(oid mod n)) oids;
        for k = 0 to n - 1 do
          let sub = List.rev subs.(k) in
          if k = 0 || sub <> [] || ms.(k).wheel.timers_dirty then
            backends.(k).dur_commit ms.(k) sub
        done);
    dur_save =
      (fun db path ->
        Persist.group_save db path;
        let ms = Store.members db in
        Array.iteri (fun k m -> checkpoints.(k) m) ms);
    dur_load =
      (fun db path ->
        Persist.group_load db path;
        let ms = Store.members db in
        Array.iteri (fun k m -> rebaselines.(k) m) ms);
    dur_recover =
      (fun db ->
        (match Wal.read_manifest cfg.Wal.dir with
        | Some n when n = partitions -> ()
        | Some n ->
          ode_error
            "WAL directory %s was written with %d partitions, refusing to \
             recover with %d (ODE_PARTITIONS)"
            cfg.Wal.dir n partitions
        | None ->
          ode_error "no WAL group manifest in %s — not a partitioned log"
            cfg.Wal.dir);
        let ms = Store.members db in
        let n = Array.length ms in
        (* [txns] is shared, so each member's replay overwrites
           [next_txn_id] in place — capture per member, then keep the
           max. Same for the mirrored oid counter and the clocks: a
           member that hasn't logged since the last advance is stale,
           and the freshest member wins. *)
        let txn_ids = Array.make n 1 in
        Array.iteri
          (fun k m ->
            backends.(k).dur_recover m;
            txn_ids.(k) <- m.txns.next_txn_id)
          ms;
        db.txns.next_txn_id <- Array.fold_left max 1 txn_ids;
        let next_oid =
          Array.fold_left (fun acc m -> max acc m.store.next_oid) 1 ms
        in
        Array.iter (fun m -> m.store.next_oid <- next_oid) ms;
        let clock =
          Array.fold_left
            (fun acc m -> if m.wheel.clock_ms > acc then m.wheel.clock_ms else acc)
            Int64.min_int ms
        in
        Array.iter (fun m -> m.wheel.clock_ms <- clock) ms;
        (* wheel bucket placement is clock-relative: members whose clock
           just jumped to the group max must re-place their timers *)
        Timewheel.resync db);
    dur_sync = (fun db -> each db (fun b m -> b.dur_sync m));
    dur_close = (fun db -> each db (fun b m -> b.dur_close m));
  }

(** Timewheel layer: the pending-timer structure for time events —
    insertion, due-date computation, periodic rescheduling, eager
    cancellation, and clock advancement.

    Two representations live behind one API (see {!Types.timerq}): the
    reference sorted list and a hierarchical hashed timing wheel
    (Varghese–Lauck — 8 levels of 64 slots, cascade-on-advance, O(1)
    arm and cancel). Both deliver in identical (due, [tm_seq]) order
    and serialize to identical bytes; {!set_wheel} switches a database
    between them in place.

    Depends on {!Store} (liveness checks for timer garbage-collection)
    and {!Clock} (calendar-pattern matching). Delivering a due timer
    means posting a time-event occurrence, which lives a layer up in
    {!Engine}; that single upward call is inverted through
    {!set_deliver_hook}, filled by [Engine] at load time. *)

open Types

val now : db -> int64

val set_deliver_hook : (db -> oid -> Ode_event.Symbol.time_spec -> unit) -> unit
(** Install the time-event delivery function (set once, by [Engine] at
    load time): post one [Time spec] occurrence to one object inside a
    fresh system transaction. *)

val insert_timer : db -> timer -> unit
(** Insert into the wheel of the partition member owning the timer's
    object (the db itself when unpartitioned); delivery order is (due
    time, [tm_seq]) — equal due times keep insertion order, group-wide. *)

val fresh_seq : db -> int
(** Allocate the next group-wide insertion stamp (from the facade
    wheel) for a timer about to be inserted. *)

val first_due : Ode_event.Symbol.time_spec -> after:int64 -> int64 option
(** The first instant strictly after [after] at which the spec is due;
    [None] if it never fires (e.g. a non-positive period). *)

val reschedule : db -> timer -> fired_at:int64 -> timer option
(** The timer's next incarnation after firing: periodic [Every] and
    calendar [At] specs re-arm (with a fresh insertion stamp), one-shot
    [After_period] does not. *)

val schedule_trigger_timers : db -> obj -> active_trigger -> timer list
(** Insert one timer per time-event leaf of the trigger's event
    specification, anchored at the current clock (activation instant).
    Returns the armed timers so the caller can record them for undo. *)

val timer_alive : db -> timer -> bool
(** The timer's object is live and the watched trigger is still active
    in the same activation epoch. *)

val cancel_object : db -> oid -> timer list
(** Eagerly cancel every pending timer on one object (object deletion),
    returning the cancelled timers in (due, seq) order — re-inserting
    exactly that list (seqs preserved) restores the queue byte-for-byte,
    which is how [U_timers_cancelled] undoes an aborted cancellation. *)

val cancel_trigger : db -> oid -> string -> timer list
(** Eagerly cancel the pending timers of one trigger on one object
    (deactivation, or the epoch bump of a re-activation), returned in
    (due, seq) order as for {!cancel_object}. *)

val cancel_timer : db -> timer -> unit
(** Cancel one specific pending timer, matched by physical identity —
    the undo of [U_timers_armed]. Ignores timers no longer pending. *)

val pending : db -> timer list
(** The pending queue of {e this} member (no partition routing), in
    (due, seq) order — the serialization order, identical across
    representations. Used by the persist codec and the WAL. *)

val pending_count : db -> int
(** [List.length (pending db)], O(1) for the wheel. *)

val clear : db -> unit
(** Drop every pending timer of this member (image load reset),
    preserving the representation. *)

val replace : db -> timer list -> unit
(** Bulk-load this member's queue from a (due, seq)-sorted list (WAL
    replay): the wheel re-places each timer against the member's
    current clock — set the clock before calling. *)

val set_member_clock : db -> int64 -> unit
(** Move {e this} member's clock to an absolute instant without
    delivering anything, keeping the wheel's clock-relative placement
    invariant (forward hops cascade, backward hops rebuild). WAL replay
    uses this for batches that moved the clock but not the queue. *)

val use_wheel : db -> bool
(** Whether the database currently runs the wheel representation. *)

val set_wheel : db -> bool -> unit
(** Switch every partition member between the sorted-list ([false])
    and timing-wheel ([true]) representations in place; the pending
    set, delivery order and serialized bytes are unchanged. *)

val resync : db -> unit
(** Rebuild each member's wheel against its current clock — required
    after group recovery maxes member clocks (wheel placement is
    clock-relative). No-op for the list representation. *)

val advance_to : db -> int64 -> unit
(** Advance simulated time to an absolute instant, firing due timers in
    order; duplicate timers for one (object, spec, instant) deliver a
    single occurrence. Raises {!Types.Ode_error} on going backwards. *)

val advance_clock : db -> int64 -> unit
(** {!advance_to} by a relative span (ms). *)

(** Timewheel layer: the sorted timer queue for time events — insertion,
    due-date computation, periodic rescheduling, and clock advancement.

    Depends on {!Store} (liveness checks for timer garbage-collection)
    and {!Clock} (calendar-pattern matching). Delivering a due timer
    means posting a time-event occurrence, which lives a layer up in
    {!Engine}; that single upward call is inverted through
    {!set_deliver_hook}, filled by [Engine] at load time. *)

open Types

val now : db -> int64

val set_deliver_hook : (db -> oid -> Ode_event.Symbol.time_spec -> unit) -> unit
(** Install the time-event delivery function (set once, by [Engine] at
    load time): post one [Time spec] occurrence to one object inside a
    fresh system transaction. *)

val insert_timer : db -> timer -> unit
(** Insert into the wheel of the partition member owning the timer's
    object (the db itself when unpartitioned), keeping that queue
    sorted by (due time, [tm_seq]) — equal due times keep insertion
    order, group-wide. *)

val fresh_seq : db -> int
(** Allocate the next group-wide insertion stamp (from the facade
    wheel) for a timer about to be inserted. *)

val first_due : Ode_event.Symbol.time_spec -> after:int64 -> int64 option
(** The first instant strictly after [after] at which the spec is due;
    [None] if it never fires (e.g. a non-positive period). *)

val reschedule : db -> timer -> fired_at:int64 -> timer option
(** The timer's next incarnation after firing: periodic [Every] and
    calendar [At] specs re-arm (with a fresh insertion stamp), one-shot
    [After_period] does not. *)

val schedule_trigger_timers : db -> obj -> active_trigger -> unit
(** Insert one timer per time-event leaf of the trigger's event
    specification, anchored at the current clock (activation instant). *)

val timer_alive : db -> timer -> bool
(** The timer's object is live and the watched trigger is still active
    in the same activation epoch. *)

val advance_to : db -> int64 -> unit
(** Advance simulated time to an absolute instant, firing due timers in
    order; duplicate timers for one (object, spec, instant) deliver a
    single occurrence. Raises {!Types.Ode_error} on going backwards. *)

val advance_clock : db -> int64 -> unit
(** {!advance_to} by a relative span (ms). *)

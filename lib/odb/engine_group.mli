(** Engine group: the partition-aware composition root.

    [make] builds [partitions] engine members slicing one logical
    database by oid ([oid mod n = k] lives on member [k]); member 0 is
    the facade returned to the caller. Members share the schema,
    transaction, engine and observability records (they are record
    copies of member 0), and each owns a store slice, a timer wheel
    and a durability log. With [partitions = 1] this is exactly
    {!Types.make_db} — every routing helper collapses to the identity.

    The group durability backends below replace [Persist.image_backend]
    and [Wal.backend] for a partitioned database; [Database.create_db]
    picks them when [Config.partitions > 1]. *)

open Types

val make :
  backend_of:(int -> store_backend) ->
  partitions:int ->
  ?start_time:int64 ->
  ?max_tcomplete_rounds:int ->
  ?trace_capacity:int ->
  unit ->
  db
(** Build the member array and return the facade (member 0).
    [backend_of k] supplies member [k]'s store backend — a fresh
    backend per member, never shared. The facade is built with the
    no-op durability backend; callers install one of the backends
    below (or any other) and [dur_attach] it, exactly as
    [Database.create_db] does for a single engine. Raises
    {!Types.Ode_error} if [partitions < 1]. *)

val image_backend : unit -> durability_backend
(** The full-image codec over merged slices: [dur_save]/[dur_load] are
    {!Persist.group_save}/{!Persist.group_load} (bit-identical to a
    single engine's image), commit emission is a no-op, [dur_recover]
    raises. *)

val wal_backend : partitions:int -> Wal.config -> durability_backend
(** One WAL per member under [<dir>/p<k>] plus a [group-manifest]
    pinning the partition count ([dur_attach] writes it when absent
    and refuses a mismatched directory). Commits split their footprint
    by owner — member 0 always logs, others only when their slice
    moved. [dur_recover] replays every member log, then reconciles the
    shared counters and clocks by taking the max across members. *)

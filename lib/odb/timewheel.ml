module Symbol = Ode_event.Symbol
module Expr = Ode_event.Expr
open Types

let now db = db.wheel.clock_ms

(* ------------------------------------------------------------------ *)
(* Engine hook                                                         *)
(* ------------------------------------------------------------------ *)

(* Firing a due timer delivers a time-event occurrence to an object,
   inside a system transaction — an upward call into the posting
   pipeline. [Engine] fills this at load time. *)
let deliver_hook : (db -> oid -> Symbol.time_spec -> unit) ref =
  ref (fun _ _ _ -> ())

let set_deliver_hook f = deliver_hook := f

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

(* The delivery order, everywhere: due instant, then group-wide
   insertion stamp. Seqs are unique per group, so this is total. *)
let key_lt (a : timer) (b : timer) =
  a.tm_due < b.tm_due || (a.tm_due = b.tm_due && a.tm_seq < b.tm_seq)

let cmp_key (a : timer) (b : timer) =
  match Int64.compare a.tm_due b.tm_due with
  | 0 -> compare a.tm_seq b.tm_seq
  | c -> c

(* ------------------------------------------------------------------ *)
(* The hierarchical hashed wheel (Varghese–Lauck)                      *)
(*                                                                     *)
(* 8 levels of 64 slots; level l's slots are 64^l ms wide. A pending    *)
(* timer lives at the lowest level whose current rotation (the clock's *)
(* high bits above the level) covers its due instant — so a level-0    *)
(* slot holds exactly one instant, and advancing the clock cascades    *)
(* exactly one destination bucket per level whose cursor moved. Nodes  *)
(* drained from a level-l cursor bucket share the clock's level-l      *)
(* prefix and therefore re-place strictly below l: one pass, high to   *)
(* low, terminates. Buckets are intrusive doubly-linked lists — O(1)   *)
(* unlink — and [tw_index] maps oid to its live nodes, so eager        *)
(* cancellation is O(timers-on-that-object).                           *)
(* ------------------------------------------------------------------ *)

let bits = 6
let wslots = 64
let wmask = 63
let nlevels = 8

(* [tn_level] address codes outside 0..nlevels-1 *)
let lvl_ovf = -1 (* beyond the top level's rotation *)
let lvl_detached = -2
let lvl_past = -3 (* due <= clock: recovery clock-skew only *)

let make_wheel () =
  {
    tw_slots = Array.init nlevels (fun _ -> Array.make wslots None);
    tw_counts = Array.make nlevels 0;
    tw_ovf = None;
    tw_ovf_n = 0;
    tw_past = None;
    tw_past_n = 0;
    tw_n = 0;
    tw_peek = None;
    tw_index = Hashtbl.create 64;
  }

(* The lowest level whose current rotation covers [due]: the smallest l
   with [due >> bits*(l+1) = clock >> bits*(l+1)]; [lvl_ovf] when even
   the top rotation differs. The xor's high bits answer both at once. *)
let level_of ~clock due =
  let x = Int64.logxor due clock in
  if Int64.shift_right_logical x (bits * nlevels) <> 0L then lvl_ovf
  else
    let x = Int64.to_int x in
    let rec go l = if x lsr (bits * (l + 1)) = 0 then l else go (l + 1) in
    go 0

let slot_of l due =
  Int64.to_int (Int64.shift_right_logical due (bits * l)) land wmask

let get_head w level slot =
  if level >= 0 then w.tw_slots.(level).(slot)
  else if level = lvl_ovf then w.tw_ovf
  else w.tw_past

let set_head w level slot v =
  if level >= 0 then w.tw_slots.(level).(slot) <- v
  else if level = lvl_ovf then w.tw_ovf <- v
  else w.tw_past <- v

let link w n level slot =
  let h = get_head w level slot in
  n.tn_level <- level;
  n.tn_slot <- slot;
  n.tn_prev <- None;
  n.tn_next <- h;
  (match h with Some h2 -> h2.tn_prev <- Some n | None -> ());
  set_head w level slot (Some n);
  if level >= 0 then w.tw_counts.(level) <- w.tw_counts.(level) + 1
  else if level = lvl_ovf then w.tw_ovf_n <- w.tw_ovf_n + 1
  else w.tw_past_n <- w.tw_past_n + 1

(* Unlink from its bucket; invalidates the peek cache when it held this
   node. Does not touch [tw_n] or the index — callers own those. *)
let unlink_node w n =
  (match n.tn_prev with
  | Some p -> p.tn_next <- n.tn_next
  | None -> set_head w n.tn_level n.tn_slot n.tn_next);
  (match n.tn_next with Some s -> s.tn_prev <- n.tn_prev | None -> ());
  (if n.tn_level >= 0 then
     w.tw_counts.(n.tn_level) <- w.tw_counts.(n.tn_level) - 1
   else if n.tn_level = lvl_ovf then w.tw_ovf_n <- w.tw_ovf_n - 1
   else w.tw_past_n <- w.tw_past_n - 1);
  n.tn_prev <- None;
  n.tn_next <- None;
  n.tn_level <- lvl_detached;
  match w.tw_peek with Some m when m == n -> w.tw_peek <- None | _ -> ()

let place w ~clock n =
  let due = n.tn_timer.tm_due in
  if due <= clock then link w n lvl_past 0
  else
    let l = level_of ~clock due in
    if l < 0 then link w n lvl_ovf 0 else link w n l (slot_of l due)

(* Detach a whole bucket at once, returning its nodes. Used by the
   cascade: the nodes stay pending (they re-[place] immediately), so
   the peek cache is deliberately left alone — node identity survives
   the move. *)
let drain_bucket w level slot =
  let rec collect acc = function
    | None -> acc
    | Some n ->
      let nx = n.tn_next in
      n.tn_prev <- None;
      n.tn_next <- None;
      n.tn_level <- lvl_detached;
      collect (n :: acc) nx
  in
  let ns = collect [] (get_head w level slot) in
  set_head w level slot None;
  (if level >= 0 then w.tw_counts.(level) <- w.tw_counts.(level) - List.length ns
   else if level = lvl_ovf then w.tw_ovf_n <- 0
   else w.tw_past_n <- 0);
  ns

(* Move the wheel's notion of "now" from [from_] to [to_], cascading
   each moved cursor's destination bucket downward. Correctness leans
   on the advance-to-minimum discipline of [advance_to]: no pending due
   lies strictly below [to_], so buckets the cursors skip over are
   empty and only the destination slots need draining. Dues equal to
   [to_] descend all the way to level 0 (their slot is the new cursor
   at every level), which is where delivery reads them. *)
let wheel_advance w ~from_ ~to_ =
  if to_ > from_ then begin
    if
      Int64.shift_right_logical to_ (bits * nlevels)
      <> Int64.shift_right_logical from_ (bits * nlevels)
    then List.iter (place w ~clock:to_) (drain_bucket w lvl_ovf 0);
    for l = nlevels - 1 downto 1 do
      if
        Int64.shift_right_logical to_ (bits * l)
        <> Int64.shift_right_logical from_ (bits * l)
      then List.iter (place w ~clock:to_) (drain_bucket w l (slot_of l to_))
    done
  end

let bucket_min best h =
  let rec go best = function
    | None -> best
    | Some n ->
      let best =
        match best with
        | Some b when key_lt b.tn_timer n.tn_timer -> best
        | _ -> Some n
      in
      go best n.tn_next
  in
  go best h

(* The global minimum, recomputed: the past list beats everything, then
   the lowest non-empty level (levels are due-disjoint: everything at
   level l+1 is due after everything at level l), then overflow. Within
   a level the first non-empty slot at or after the cursor holds the
   minimum due (slot index is monotone in due within a rotation). *)
let recompute_peek w ~clock =
  if w.tw_past_n > 0 then bucket_min None w.tw_past
  else begin
    let best = ref None in
    let l = ref 0 in
    while Option.is_none !best && !l < nlevels do
      if w.tw_counts.(!l) > 0 then begin
        let cur = slot_of !l clock in
        let s = ref cur in
        while Option.is_none !best && !s < wslots do
          best := bucket_min None w.tw_slots.(!l).(!s);
          incr s
        done;
        (* defensive: a node below the cursor would mean a discipline
           violation upstream; scan the wrap rather than lose it *)
        let s = ref 0 in
        while Option.is_none !best && !s < cur do
          best := bucket_min None w.tw_slots.(!l).(!s);
          incr s
        done
      end;
      incr l
    done;
    match !best with Some _ as b -> b | None -> bucket_min None w.tw_ovf
  end

let wheel_peek w ~clock =
  match w.tw_peek with
  | Some _ as p -> p
  | None ->
    if w.tw_n = 0 then None
    else begin
      let b = recompute_peek w ~clock in
      w.tw_peek <- b;
      b
    end

let index_add w n =
  let oid = n.tn_timer.tm_oid in
  match Hashtbl.find_opt w.tw_index oid with
  | Some ns -> Hashtbl.replace w.tw_index oid (n :: ns)
  | None -> Hashtbl.add w.tw_index oid [ n ]

let index_remove w n =
  let oid = n.tn_timer.tm_oid in
  match Hashtbl.find_opt w.tw_index oid with
  | None -> ()
  | Some ns -> (
    match List.filter (fun m -> m != n) ns with
    | [] -> Hashtbl.remove w.tw_index oid
    | ns' -> Hashtbl.replace w.tw_index oid ns')

let wheel_insert w ~clock tm =
  let n =
    { tn_timer = tm; tn_prev = None; tn_next = None; tn_level = lvl_detached;
      tn_slot = 0 }
  in
  place w ~clock n;
  index_add w n;
  w.tw_n <- w.tw_n + 1;
  match w.tw_peek with
  | Some m when key_lt tm m.tn_timer -> w.tw_peek <- Some n
  | Some _ -> ()
  | None -> if w.tw_n = 1 then w.tw_peek <- Some n

(* Fully remove one node: bucket, count, index. *)
let remove_node w n =
  unlink_node w n;
  index_remove w n;
  w.tw_n <- w.tw_n - 1

(* Every pending timer, in (due, seq) order — the serialization order,
   identical to the sorted-list representation's queue. *)
let wheel_all w =
  let acc = ref [] in
  let rec chain = function
    | None -> ()
    | Some n ->
      acc := n.tn_timer :: !acc;
      chain n.tn_next
  in
  Array.iter (fun slots -> Array.iter chain slots) w.tw_slots;
  chain w.tw_ovf;
  chain w.tw_past;
  List.sort cmp_key !acc

(* ------------------------------------------------------------------ *)
(* The member queue: one dispatch layer over both representations      *)
(* ------------------------------------------------------------------ *)

(* Sorted-list insert, the reference representation's O(n) arm.
   Tail-recursive: the benchmark baseline runs it at 10^6 entries. *)
let list_ins tm tms =
  let rec go acc = function
    | t :: rest
      when key_lt t tm || (t.tm_due = tm.tm_due && t.tm_seq = tm.tm_seq) ->
      go (t :: acc) rest
    | rest -> List.rev_append acc (tm :: rest)
  in
  go [] tms

let member_insert m tm =
  (match m.wheel.tq with
  | Tq_list tms -> m.wheel.tq <- Tq_list (list_ins tm tms)
  | Tq_wheel w -> wheel_insert w ~clock:m.wheel.clock_ms tm);
  m.wheel.timers_dirty <- true

(* Fresh insertion-order stamp, allocated from the facade wheel so the
   stream is group-wide: equal-due timers scattered across partition
   member wheels replay in exactly the single-queue order when
   [advance_to] merges by (due, seq). *)
let fresh_seq db =
  let pr = Types.primary db in
  let s = pr.wheel.tm_next_seq in
  pr.wheel.tm_next_seq <- s + 1;
  s

(* Inserts into the wheel of the member owning [tm.tm_oid]. The caller
   provides the stamp: fresh for new arms and re-arms (insertion
   order), the persisted one when reloading an image. *)
let insert_timer db tm = member_insert (Types.owner_db db tm.tm_oid) tm

(* ------------------------------------------------------------------ *)
(* Persistence and representation plumbing                             *)
(* ------------------------------------------------------------------ *)

let pending db =
  match db.wheel.tq with Tq_list tms -> tms | Tq_wheel w -> wheel_all w

let pending_count db = Types.timerq_count db.wheel

let clear db =
  db.wheel.tq <-
    (match db.wheel.tq with
    | Tq_list _ -> Tq_list []
    | Tq_wheel _ -> Tq_wheel (make_wheel ()));
  db.wheel.timers_dirty <- true

(* Bulk-load a (due, seq)-sorted queue (WAL replay, image load): the
   list representation takes it verbatim, the wheel re-places every
   timer at the member's current clock — set the clock first. *)
let replace db tms =
  (match db.wheel.tq with
  | Tq_list _ -> db.wheel.tq <- Tq_list tms
  | Tq_wheel _ ->
    let w = make_wheel () in
    List.iter (wheel_insert w ~clock:db.wheel.clock_ms) tms;
    db.wheel.tq <- Tq_wheel w);
  db.wheel.timers_dirty <- true

let use_wheel db =
  match (Types.primary db).wheel.tq with Tq_wheel _ -> true | Tq_list _ -> false

(* Switch every member's representation in place. The pending set (and
   so the serialized bytes) is preserved exactly; only the shape moves. *)
let set_wheel db enabled =
  Array.iter
    (fun m ->
      match (m.wheel.tq, enabled) with
      | Tq_list tms, true ->
        let w = make_wheel () in
        List.iter (wheel_insert w ~clock:m.wheel.clock_ms) tms;
        m.wheel.tq <- Tq_wheel w
      | Tq_wheel w, false -> m.wheel.tq <- Tq_list (wheel_all w)
      | Tq_list _, false | Tq_wheel _, true -> ())
    (Store.members db)

(* Replay-time clock hop for one member: move the clock while keeping
   the wheel's placement invariant, delivering nothing. Forward hops
   cascade — safe because a logged clock-only batch implies the
   original execution had no pending due at or below that clock, the
   same advance-to-minimum discipline [advance_to] relies on. Backward
   hops (never emitted by a monotone log, kept for safety) rebuild. *)
let set_member_clock m c =
  let from_ = m.wheel.clock_ms in
  if c <> from_ then begin
    m.wheel.clock_ms <- c;
    match m.wheel.tq with
    | Tq_list _ -> ()
    | Tq_wheel w ->
      if c > from_ then wheel_advance w ~from_ ~to_:c
      else begin
        let w' = make_wheel () in
        List.iter (wheel_insert w' ~clock:c) (wheel_all w);
        m.wheel.tq <- Tq_wheel w'
      end
  end

(* Rebuild each member's wheel against its current clock. Needed after
   group recovery maxes member clocks to the group-wide latest: nodes
   were placed under a member-local (possibly earlier) clock, and the
   placement invariant is clock-relative. No-op for lists. *)
let resync db =
  Array.iter
    (fun m ->
      match m.wheel.tq with
      | Tq_list _ -> ()
      | Tq_wheel w ->
        let w' = make_wheel () in
        List.iter (wheel_insert w' ~clock:m.wheel.clock_ms) (wheel_all w);
        m.wheel.tq <- Tq_wheel w')
    (Store.members db)

(* ------------------------------------------------------------------ *)
(* Eager cancellation                                                  *)
(* ------------------------------------------------------------------ *)

(* Cancel every pending timer on [oid], returning them in (due, seq)
   order — [Engine] records them in a [U_timers_cancelled] undo entry
   so an abort restores the queue byte-for-byte (seqs preserved). *)
let cancel_object db oid =
  let m = Types.owner_db db oid in
  match m.wheel.tq with
  | Tq_list tms ->
    let cancelled, keep = List.partition (fun t -> t.tm_oid = oid) tms in
    if cancelled <> [] then begin
      m.wheel.tq <- Tq_list keep;
      m.wheel.timers_dirty <- true
    end;
    cancelled
  | Tq_wheel w -> (
    match Hashtbl.find_opt w.tw_index oid with
    | None -> []
    | Some ns ->
      Hashtbl.remove w.tw_index oid;
      List.iter
        (fun n ->
          unlink_node w n;
          w.tw_n <- w.tw_n - 1)
        ns;
      m.wheel.timers_dirty <- true;
      List.sort cmp_key (List.map (fun n -> n.tn_timer) ns))

(* Cancel the pending timers of one trigger on one object (deactivate,
   or the epoch bump of a re-activation), in (due, seq) order. *)
let cancel_trigger db oid tname =
  let m = Types.owner_db db oid in
  match m.wheel.tq with
  | Tq_list tms ->
    let cancelled, keep =
      List.partition (fun t -> t.tm_oid = oid && t.tm_trigger = tname) tms
    in
    if cancelled <> [] then begin
      m.wheel.tq <- Tq_list keep;
      m.wheel.timers_dirty <- true
    end;
    cancelled
  | Tq_wheel w -> (
    match Hashtbl.find_opt w.tw_index oid with
    | None -> []
    | Some ns ->
      let gone, kept =
        List.partition (fun n -> n.tn_timer.tm_trigger = tname) ns
      in
      if gone <> [] then begin
        (match kept with
        | [] -> Hashtbl.remove w.tw_index oid
        | _ -> Hashtbl.replace w.tw_index oid kept);
        List.iter
          (fun n ->
            unlink_node w n;
            w.tw_n <- w.tw_n - 1)
          gone;
        m.wheel.timers_dirty <- true
      end;
      List.sort cmp_key (List.map (fun n -> n.tn_timer) gone))

(* Cancel one specific pending timer, matched by physical identity —
   the undo of [U_timers_armed]. Absent timers (already delivered or
   cancelled) are ignored. *)
let cancel_timer db (tm : timer) =
  let m = Types.owner_db db tm.tm_oid in
  match m.wheel.tq with
  | Tq_list tms ->
    let keep = List.filter (fun t -> t != tm) tms in
    if List.compare_lengths keep tms <> 0 then begin
      m.wheel.tq <- Tq_list keep;
      m.wheel.timers_dirty <- true
    end
  | Tq_wheel w -> (
    match Hashtbl.find_opt w.tw_index tm.tm_oid with
    | None -> ()
    | Some ns -> (
      match List.find_opt (fun n -> n.tn_timer == tm) ns with
      | None -> ()
      | Some n ->
        remove_node w n;
        m.wheel.timers_dirty <- true))

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)
(* ------------------------------------------------------------------ *)

let first_due (spec : Symbol.time_spec) ~after =
  match spec with
  | Every p | After_period p -> if p <= 0L then None else Some (Int64.add after p)
  | At pattern -> Clock.next_match pattern ~after

(* The re-armed incarnation takes a {e fresh} seq: a single queue's
   stable insert puts it after every already-queued timer of the same
   due instant, i.e. in insertion order — which is exactly what the
   fresh stamp encodes, partitioned or not. *)
let reschedule db (tm : timer) ~fired_at =
  match tm.tm_spec with
  | Symbol.Every p ->
    Some { tm with tm_due = Int64.add fired_at p; tm_seq = fresh_seq db }
  | Symbol.After_period _ -> None
  | Symbol.At pattern ->
    Option.map
      (fun due -> { tm with tm_due = due; tm_seq = fresh_seq db })
      (Clock.next_match pattern ~after:fired_at)

(* Arm one timer per time-event leaf of the trigger's specification,
   returning the armed timers (newest first) so [Engine] can record
   them for undo. *)
let schedule_trigger_timers db obj (at : active_trigger) =
  let specs =
    List.filter_map
      (fun (l : Expr.leaf) ->
        match l.basic with Symbol.Time spec -> Some spec | _ -> None)
      (Expr.logical_events at.at_def.t_event)
  in
  let clock = (Types.primary db).wheel.clock_ms in
  List.fold_left
    (fun armed spec ->
      match first_due spec ~after:clock with
      | None -> armed
      | Some due ->
        let tm =
          {
            tm_due = due;
            tm_seq = fresh_seq db;
            tm_oid = obj.o_id;
            tm_trigger = at.at_def.t_name;
            tm_epoch = at.at_epoch;
            tm_spec = spec;
            tm_anchor = clock;
          }
        in
        insert_timer db tm;
        tm :: armed)
    [] specs

let timer_alive db (tm : timer) =
  match Store.live_obj_opt db tm.tm_oid with
  | Some obj -> (
    match Hashtbl.find_opt obj.o_triggers tm.tm_trigger with
    | Some at -> at.at_active && at.at_epoch = tm.tm_epoch
    | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Advancing the clock                                                 *)
(* ------------------------------------------------------------------ *)

(* One member's minimum pending timer, if due by [target]. O(1) for the
   list (sorted head) and amortized O(1) for the wheel (peek cache). *)
let member_peek m ~target =
  match m.wheel.tq with
  | Tq_list (tm :: _) when tm.tm_due <= target -> Some tm
  | Tq_list _ -> None
  | Tq_wheel w -> (
    match wheel_peek w ~clock:m.wheel.clock_ms with
    | Some n when n.tn_timer.tm_due <= target -> Some n.tn_timer
    | _ -> None)

(* Pull every pending timer for one (object, spec, instant) out of one
   member's queue, in seq order. O(same-instant group): the list reads
   only its due-== head run, the wheel only the level-0 head bucket
   (plus the recovery-skew past list) — never the whole queue. *)
let member_pull_group m ~due ~oid ~spec =
  match m.wheel.tq with
  | Tq_list tms ->
    let rec split prefix = function
      | t :: rest when t.tm_due = due -> split (t :: prefix) rest
      | rest -> (List.rev prefix, rest)
    in
    let prefix, rest = split [] tms in
    let dups, keep =
      List.partition (fun t -> t.tm_oid = oid && t.tm_spec = spec) prefix
    in
    m.wheel.tq <- Tq_list (keep @ rest);
    m.wheel.timers_dirty <- true;
    dups
  | Tq_wheel w ->
    let matches n =
      n.tn_timer.tm_due = due && n.tn_timer.tm_oid = oid
      && n.tn_timer.tm_spec = spec
    in
    let collect acc h =
      let rec go acc = function
        | None -> acc
        | Some n ->
          let nx = n.tn_next in
          go (if matches n then n :: acc else acc) nx
      in
      go acc h
    in
    (* after [wheel_advance ~to_:due] every due-== node sits in the
       level-0 cursor bucket; the past list only holds recovery skew *)
    let ns = collect (collect [] w.tw_slots.(0).(slot_of 0 due)) w.tw_past in
    List.iter (remove_node w) ns;
    m.wheel.timers_dirty <- true;
    List.sort (fun a b -> cmp_key a.tn_timer b.tn_timer) ns
    |> List.map (fun n -> n.tn_timer)

(* The partition-generic merge: the due timers of a group live spread
   over the member wheels, each member queue a (due, seq)-sorted
   subsequence of the single-engine queue — so repeatedly taking the
   member head with the globally smallest (due, seq) replays the exact
   single-queue delivery order. Unpartitioned, [members] is [[| db |]]
   and this is the plain head-of-queue loop. *)
let advance_to db target =
  if target < db.wheel.clock_ms then ode_error "clock cannot go backwards";
  let members = Store.members db in
  let next_head () =
    let best = ref None in
    Array.iter
      (fun m ->
        match member_peek m ~target with
        | Some tm -> (
          match !best with
          | Some (_, b) when key_lt b tm || (b.tm_due = tm.tm_due && b.tm_seq = tm.tm_seq)
            -> ()
          | _ -> best := Some (m, tm))
        | None -> ())
      members;
    !best
  in
  let advance_wheels d =
    Array.iter
      (fun m ->
        let c = m.wheel.clock_ms in
        if d > c then begin
          (match m.wheel.tq with
          | Tq_wheel w -> wheel_advance w ~from_:c ~to_:d
          | Tq_list _ -> ());
          m.wheel.clock_ms <- d
        end)
      members
  in
  let rec loop () =
    match next_head () with
    | None -> ()
    | Some (m, tm) ->
      advance_wheels tm.tm_due;
      (* Several triggers may watch the same time event on the same
         object; pull every timer for this (object, spec, instant) and
         deliver a single occurrence — logical events are points, and a
         doubled delivery would wrongly feed expressions like
         [!prior(dayBegin, ...)] twice. Duplicates share the timer's
         object, so they all live on [m]'s wheel. *)
      let group =
        member_pull_group m ~due:tm.tm_due ~oid:tm.tm_oid ~spec:tm.tm_spec
      in
      if List.exists (timer_alive db) group then begin
        let obs = db.obs in
        if Ode_obs.Registry.enabled obs then begin
          Ode_obs.Registry.incr obs Ode_obs.Registry.Timer_deliveries;
          Ode_obs.Registry.span obs
            (Ode_obs.Trace.Timer_delivered
               { oid = tm.tm_oid; at_ms = tm.tm_due })
        end;
        !deliver_hook db tm.tm_oid tm.tm_spec
      end;
      List.iter
        (fun t ->
          if timer_alive db t then
            match reschedule db t ~fired_at:t.tm_due with
            | Some t' -> insert_timer db t'
            | None -> ())
        group;
      loop ()
  in
  loop ();
  advance_wheels target;
  (* capture the final clock (and the timer queue, when deliveries or
     reschedules moved it) — each delivery's system transaction emitted
     its own batch mid-loop, but the clock kept advancing after the
     last due timer *)
  db.durability.dur_commit db []

let advance_clock db span =
  if span < 0L then ode_error "clock cannot go backwards";
  advance_to db (Int64.add db.wheel.clock_ms span)

module Symbol = Ode_event.Symbol
module Expr = Ode_event.Expr
open Types

let now db = db.wheel.clock_ms

(* ------------------------------------------------------------------ *)
(* Engine hook                                                         *)
(* ------------------------------------------------------------------ *)

(* Firing a due timer delivers a time-event occurrence to an object,
   inside a system transaction — an upward call into the posting
   pipeline. [Engine] fills this at load time. *)
let deliver_hook : (db -> oid -> Symbol.time_spec -> unit) ref =
  ref (fun _ _ _ -> ())

let set_deliver_hook f = deliver_hook := f

(* ------------------------------------------------------------------ *)
(* Timer queue                                                         *)
(* ------------------------------------------------------------------ *)

(* Fresh insertion-order stamp, allocated from the facade wheel so the
   stream is group-wide: equal-due timers scattered across partition
   member wheels replay in exactly the single-queue order when
   [advance_to] merges by (due, seq). *)
let fresh_seq db =
  let pr = Types.primary db in
  let s = pr.wheel.tm_next_seq in
  pr.wheel.tm_next_seq <- s + 1;
  s

(* Inserts into the wheel of the member owning [tm.tm_oid], keeping
   that queue sorted by (due, seq). The caller provides the stamp:
   fresh for new arms and re-arms (insertion order), the persisted one
   when reloading an image. *)
let insert_timer db tm =
  let db = Types.owner_db db tm.tm_oid in
  let rec ins = function
    | [] -> [ tm ]
    | t :: rest
      when t.tm_due < tm.tm_due
           || (t.tm_due = tm.tm_due && t.tm_seq <= tm.tm_seq) -> t :: ins rest
    | rest -> tm :: rest
  in
  db.wheel.timers <- ins db.wheel.timers;
  db.wheel.timers_dirty <- true

let first_due (spec : Symbol.time_spec) ~after =
  match spec with
  | Every p | After_period p -> if p <= 0L then None else Some (Int64.add after p)
  | At pattern -> Clock.next_match pattern ~after

(* The re-armed incarnation takes a {e fresh} seq: a single queue's
   stable insert puts it after every already-queued timer of the same
   due instant, i.e. in insertion order — which is exactly what the
   fresh stamp encodes, partitioned or not. *)
let reschedule db (tm : timer) ~fired_at =
  match tm.tm_spec with
  | Symbol.Every p ->
    Some { tm with tm_due = Int64.add fired_at p; tm_seq = fresh_seq db }
  | Symbol.After_period _ -> None
  | Symbol.At pattern ->
    Option.map
      (fun due -> { tm with tm_due = due; tm_seq = fresh_seq db })
      (Clock.next_match pattern ~after:fired_at)

let schedule_trigger_timers db obj (at : active_trigger) =
  let specs =
    List.filter_map
      (fun (l : Expr.leaf) ->
        match l.basic with Symbol.Time spec -> Some spec | _ -> None)
      (Expr.logical_events at.at_def.t_event)
  in
  let clock = (Types.primary db).wheel.clock_ms in
  List.iter
    (fun spec ->
      match first_due spec ~after:clock with
      | None -> ()
      | Some due ->
        insert_timer db
          {
            tm_due = due;
            tm_seq = fresh_seq db;
            tm_oid = obj.o_id;
            tm_trigger = at.at_def.t_name;
            tm_epoch = at.at_epoch;
            tm_spec = spec;
            tm_anchor = clock;
          })
    specs

let timer_alive db (tm : timer) =
  match Store.live_obj_opt db tm.tm_oid with
  | Some obj -> (
    match Hashtbl.find_opt obj.o_triggers tm.tm_trigger with
    | Some at -> at.at_active && at.at_epoch = tm.tm_epoch
    | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Advancing the clock                                                 *)
(* ------------------------------------------------------------------ *)

(* The partition-generic merge: the due timers of a group live spread
   over the member wheels, each member queue a (due, seq)-sorted
   subsequence of the single-engine queue — so repeatedly taking the
   member head with the globally smallest (due, seq) replays the exact
   single-queue delivery order. Unpartitioned, [members] is [[| db |]]
   and this is the plain head-of-queue loop. *)
let advance_to db target =
  if target < db.wheel.clock_ms then ode_error "clock cannot go backwards";
  let members = Store.members db in
  let next_head () =
    let best = ref None in
    Array.iter
      (fun m ->
        match m.wheel.timers with
        | tm :: _ when tm.tm_due <= target -> (
          match !best with
          | Some (_, b)
            when b.tm_due < tm.tm_due
                 || (b.tm_due = tm.tm_due && b.tm_seq < tm.tm_seq) -> ()
          | _ -> best := Some (m, tm))
        | _ -> ())
      members;
    !best
  in
  let rec loop () =
    match next_head () with
    | None -> ()
    | Some (m, tm) ->
      (* Several triggers may watch the same time event on the same
         object; pull every timer for this (object, spec, instant) and
         deliver a single occurrence — logical events are points, and a
         doubled delivery would wrongly feed expressions like
         [!prior(dayBegin, ...)] twice. Duplicates share the timer's
         object, so they all live on [m]'s wheel. *)
      let rest = List.tl m.wheel.timers in
      let same t =
        t.tm_due = tm.tm_due && t.tm_oid = tm.tm_oid && t.tm_spec = tm.tm_spec
      in
      let dups, rest = List.partition same rest in
      m.wheel.timers <- rest;
      m.wheel.timers_dirty <- true;
      let group = tm :: dups in
      Array.iter
        (fun m' -> m'.wheel.clock_ms <- max m'.wheel.clock_ms tm.tm_due)
        members;
      if List.exists (timer_alive db) group then begin
        let obs = db.obs in
        if Ode_obs.Registry.enabled obs then begin
          Ode_obs.Registry.incr obs Ode_obs.Registry.Timer_deliveries;
          Ode_obs.Registry.span obs
            (Ode_obs.Trace.Timer_delivered { oid = tm.tm_oid; at_ms = tm.tm_due })
        end;
        !deliver_hook db tm.tm_oid tm.tm_spec
      end;
      List.iter
        (fun t ->
          if timer_alive db t then
            match reschedule db t ~fired_at:t.tm_due with
            | Some t' -> insert_timer db t'
            | None -> ())
        group;
      loop ()
  in
  loop ();
  Array.iter (fun m -> m.wheel.clock_ms <- target) members;
  (* capture the final clock (and the timer queue, when deliveries or
     reschedules moved it) — each delivery's system transaction emitted
     its own batch mid-loop, but the clock kept advancing after the
     last due timer *)
  db.durability.dur_commit db []

let advance_clock db span =
  if span < 0L then ode_error "clock cannot go backwards";
  advance_to db (Int64.add db.wheel.clock_ms span)

module Symbol = Ode_event.Symbol
module Expr = Ode_event.Expr
open Types

let now db = db.wheel.clock_ms

(* ------------------------------------------------------------------ *)
(* Engine hook                                                         *)
(* ------------------------------------------------------------------ *)

(* Firing a due timer delivers a time-event occurrence to an object,
   inside a system transaction — an upward call into the posting
   pipeline. [Engine] fills this at load time. *)
let deliver_hook : (db -> oid -> Symbol.time_spec -> unit) ref =
  ref (fun _ _ _ -> ())

let set_deliver_hook f = deliver_hook := f

(* ------------------------------------------------------------------ *)
(* Timer queue                                                         *)
(* ------------------------------------------------------------------ *)

let insert_timer db tm =
  let rec ins = function
    | [] -> [ tm ]
    | t :: rest when t.tm_due <= tm.tm_due -> t :: ins rest
    | rest -> tm :: rest
  in
  db.wheel.timers <- ins db.wheel.timers;
  db.wheel.timers_dirty <- true

let first_due (spec : Symbol.time_spec) ~after =
  match spec with
  | Every p | After_period p -> if p <= 0L then None else Some (Int64.add after p)
  | At pattern -> Clock.next_match pattern ~after

let reschedule (tm : timer) ~fired_at =
  match tm.tm_spec with
  | Symbol.Every p -> Some { tm with tm_due = Int64.add fired_at p }
  | Symbol.After_period _ -> None
  | Symbol.At pattern ->
    Option.map
      (fun due -> { tm with tm_due = due })
      (Clock.next_match pattern ~after:fired_at)

let schedule_trigger_timers db obj (at : active_trigger) =
  let specs =
    List.filter_map
      (fun (l : Expr.leaf) ->
        match l.basic with Symbol.Time spec -> Some spec | _ -> None)
      (Expr.logical_events at.at_def.t_event)
  in
  List.iter
    (fun spec ->
      match first_due spec ~after:db.wheel.clock_ms with
      | None -> ()
      | Some due ->
        insert_timer db
          {
            tm_due = due;
            tm_oid = obj.o_id;
            tm_trigger = at.at_def.t_name;
            tm_epoch = at.at_epoch;
            tm_spec = spec;
            tm_anchor = db.wheel.clock_ms;
          })
    specs

let timer_alive db (tm : timer) =
  match Store.live_obj_opt db tm.tm_oid with
  | Some obj -> (
    match Hashtbl.find_opt obj.o_triggers tm.tm_trigger with
    | Some at -> at.at_active && at.at_epoch = tm.tm_epoch
    | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Advancing the clock                                                 *)
(* ------------------------------------------------------------------ *)

let advance_to db target =
  if target < db.wheel.clock_ms then ode_error "clock cannot go backwards";
  let rec loop () =
    match db.wheel.timers with
    | tm :: rest when tm.tm_due <= target ->
      (* Several triggers may watch the same time event on the same
         object; pull every timer for this (object, spec, instant) and
         deliver a single occurrence — logical events are points, and a
         doubled delivery would wrongly feed expressions like
         [!prior(dayBegin, ...)] twice. *)
      let same t =
        t.tm_due = tm.tm_due && t.tm_oid = tm.tm_oid && t.tm_spec = tm.tm_spec
      in
      let dups, rest = List.partition same rest in
      db.wheel.timers <- rest;
      db.wheel.timers_dirty <- true;
      let group = tm :: dups in
      db.wheel.clock_ms <- max db.wheel.clock_ms tm.tm_due;
      if List.exists (timer_alive db) group then begin
        let obs = db.obs in
        if Ode_obs.Registry.enabled obs then begin
          Ode_obs.Registry.incr obs Ode_obs.Registry.Timer_deliveries;
          Ode_obs.Registry.span obs
            (Ode_obs.Trace.Timer_delivered { oid = tm.tm_oid; at_ms = tm.tm_due })
        end;
        !deliver_hook db tm.tm_oid tm.tm_spec
      end;
      List.iter
        (fun t ->
          if timer_alive db t then
            match reschedule t ~fired_at:t.tm_due with
            | Some t' -> insert_timer db t'
            | None -> ())
        group;
      loop ()
    | _ -> ()
  in
  loop ();
  db.wheel.clock_ms <- target;
  (* capture the final clock (and the timer queue, when deliveries or
     reschedules moved it) — each delivery's system transaction emitted
     its own batch mid-loop, but the clock kept advancing after the
     last due timer *)
  db.durability.dur_commit db []

let advance_clock db span =
  if span < 0L then ode_error "clock cannot go backwards";
  advance_to db (Int64.add db.wheel.clock_ms span)

(* The cross-layer knot of the Ode database.

   The database state is mutually recursive by nature — an object knows
   its class, a class knows its trigger definitions, a trigger action
   closes over the database — so the type definitions live together in
   this one small module. Everything else is layered: the {e state} of
   each subsystem is grouped into its own sub-record of [db]
   ([schema_state], [store_state], [txn_state], [engine_state],
   [wheel_state]) and the {e code} owning each sub-record lives in its
   own compilation unit ([Schema], [Store], [Txn], [Engine],
   [Timewheel], [Persist]), with the public API re-exported by the
   [Database] facade. Allowed dependency direction:
   Schema -> Store -> Txn -> Engine; [Engine] may depend on everything
   below it, never the reverse (the two upward calls — event posting
   from [Txn]'s commit/abort and timer delivery from [Timewheel] — are
   inverted through hook refs that [Engine] fills at load time).

   Examples and tests should not use this module directly. *)

module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Detector = Ode_event.Detector

type oid = int
type method_kind = Read_only | Updating
type txn_status = Active | Committed | Aborted

type db = {
  schema : schema_state;
  store : store_state;
  txns : txn_state;
  engine : engine_state;
  wheel : wheel_state;
  mutable durability : durability_backend;
      (* the persistence strategy behind [Database.save]/[load] and the
         commit-time redo emission; mutable so [create_db] can install
         the resolved backend after the knot is tied *)
  obs : Ode_obs.Registry.t;
      (* observability registry (counters, latency histograms, trace
         ring). Created disabled; every probe in the layers guards on
         [Ode_obs.Registry.enabled] so the hot path stays untouched. *)
  mutable part : partition_state option;
      (* [Some _] when this db is a member of an oid-partitioned engine
         group ([Engine_group]). Members share the schema, txn, engine
         and obs records (built by record copy of member 0, the facade
         handed to callers); each member privately owns its store slice
         (oids with [oid mod n = p_index]), SoA blocks, timer wheel and
         durability directory. [None] — the common case — means a plain
         single-engine database; every routing helper below collapses
         to the identity then. *)
}

(* The partition group: members in owner order. Member 0 is the facade
   — the db callers hold and the home of shared counters (oid/txn
   allocation, timer sequence numbers, db-scope automata). *)
and partition_state = { p_members : db array; p_index : int }

(* [Schema]: compiled class and trigger definitions. Written at class
   registration, read-only on the posting hot path. *)
and schema_state = {
  classes : (string, klass) Hashtbl.t;
  functions : (string, db -> Value.t list -> Value.t) Hashtbl.t;
  db_trigger_defs : (string, trigger_def) Hashtbl.t;  (* database scope (§3) *)
  db_dispatch : (Symbol.basic_key, trigger_def list) Hashtbl.t;
      (* dispatch index for database-scope triggers: posted basic ->
         definitions whose alphabet can react, in declaration order *)
}

(* [Store]: the object heap, held abstractly as a record of backend
   operations so that the layers above never see the concrete
   representation. [Store] provides the two implementations behind its
   [STORE] signature — the single-hashtable [Heap] and the oid-hash
   partitioned [Sharded] — and packs either into this record at
   [create_db ?backend]. *)
and store_state = {
  backend : store_backend;
  mutable next_oid : int;
  mutable n_live : int;  (* stored objects with [o_deleted = false] *)
  mutable history_limit : int;  (* 0 = recording off *)
  soa : (int, soa_block) Hashtbl.t array;
      (* per shard: detector uid -> the structure-of-arrays block packing
         the fixed-width automaton state vectors of every activation of
         that detector on objects of the shard (paper §5: "one integer
         per active trigger per object", one per level for hierarchical
         automata). Only sequential pipeline phases allocate or free
         slots; the parallel step phase of [post_many] only touches
         blocks of its own shard. *)
}

(* One packed state block: slot [i] of an activation occupies the
   [blk_words] cells at [blk_state.(i * blk_words ..)] — one word per
   automaton level plus the top (1 for mask-free detectors). Slots are
   recycled through a free list when an activation is undone or its
   object removed. *)
and soa_block = {
  blk_words : int;  (* words per activation: the detector's n_state_words *)
  mutable blk_state : int array;
  mutable blk_n : int;  (* high-water slot count *)
  mutable blk_free : int list;
}

(* First-class backend operations. [sb_shards]/[sb_shard_of] expose the
   partitioning so the engine's batch pipeline can fan the classify/step
   phase out one-domain-per-shard (no two domains ever touch one
   object's detection state); the [Heap] backend reports one shard.
   Mutating operations ([sb_add]/[sb_remove]/[sb_reset]) may only be
   called from the sequential phases of the pipeline; lookups are safe
   from parallel phases because those phases never mutate the table
   itself. *)
and store_backend = {
  sb_name : string;  (* "heap" or "sharded:<n>" *)
  sb_shards : int;
  sb_shard_of : oid -> int;
  sb_add : obj -> unit;
  sb_find : oid -> obj option;
  sb_mem : oid -> bool;
  sb_remove : oid -> unit;
  sb_reset : unit -> unit;
  sb_cardinal : unit -> int;  (* stored objects, deleted included *)
  sb_iter : (obj -> unit) -> unit;
  sb_fold : 'a. (obj -> 'a -> 'a) -> 'a -> 'a;
}

(* [Txn]: transaction bookkeeping. *)
and txn_state = {
  mutable next_txn_id : int;
  mutable current : txn option;
  mutable open_txns : txn list;
  mutable in_abort : bool;  (* guards against tabort-during-abort loops *)
  mutable max_tcomplete_rounds : int;
      (* livelock bound on the §6 [before tcomplete] fixpoint *)
}

(* [Engine]: the posting pipeline's own state. *)
and engine_state = {
  db_triggers : (string, active_trigger) Hashtbl.t;
      (* activations of database-scope triggers *)
  mutable subscribers : subscription list;
      (* firing subscribers in subscription order *)
  mutable next_sub_id : int;
  mutable use_dispatch_index : bool;
      (* per-database switch between the indexed posting path and the
         brute-force reference path (default true) *)
  mutable post_domains : int;
      (* default parallelism of [post_many]'s classify/step phase *)
  mutable clamp_domains : bool;
      (* clamp the effective parallelism to
         [Domain.recommended_domain_count ()] (default true): requesting
         more domains than the box has cores buys only contention.
         [ODE_POST_DOMAINS] turns this off — an explicit test override
         must exercise the parallel machinery even on a 1-core box. *)
  mutable parallel_threshold : int;
      (* batches smaller than this run the step phase inline on the
         caller: below one shard's worth of events the pool barrier
         costs more than it buys *)
  mutable pool : Pool.t option;
      (* lazily created domain pool backing [post_many]; sized
         [post_domains] (or the call's [?domains]) and rebuilt when that
         changes. [Engine.shutdown_pool] releases the domains. *)
  mutable q_items : int array;
      (* reusable per-shard event queues, rebuilt each batch by a
         counting sort in phase 0: item indices grouped by shard, so a
         shard task walks only its own events — one int per event, no
         closures *)
  mutable q_off : int array;
      (* shard s owns [q_items.(q_off.(s) .. q_off.(s+1) - 1)] *)
  mutable q_cur : int array;  (* counting-sort fill cursors *)
  mutable use_posting_kernel : bool;
      (* per-database switch between the compiled posting kernel
         (candidate rows + packed classification codes + SoA state) and
         the legacy indexed path (default true); only meaningful when
         [use_dispatch_index] is also on *)
  mutable scratch : scratch array;
      (* per-shard reusable classify/step buffers, built lazily by
         [Engine]; the sequential [post] path uses the posted object's
         shard's scratch, [post_many]'s step tasks each own their
         shard's — never two users at once *)
  kind_names : (Symbol.basic, string) Hashtbl.t;
      (* memoized pretty-printed basic-event keys for the observability
         probes ([Format.asprintf] per post would dominate the enabled
         cost); written only from the sequential posting phases *)
}

(* Reusable per-shard posting buffers: a mask environment whose field
   reads resolve against whatever object [sc_obj] currently holds, and a
   grow-only classification-code buffer (one packed code per distinct
   detector of the candidate row). This is what makes the steady-state
   kernel path allocation-free. *)
and scratch = {
  sc_obj : obj option ref;
  sc_env : Ode_event.Mask.env;
  mutable sc_codes : int array;
  mutable sc_classified : int;
  mutable sc_skipped : int;
  mutable sc_transitions : int;
  mutable sc_slot_steps : int;
  mutable sc_word_steps : int;
      (* counter accumulators, flushed to the registry once per post
         phase (per shard task under [post_many]) instead of per
         candidate — the atomics stay exact, off the inner loop. The
         slot/word split is the kernel-coverage breakdown: transitions
         taken through the flat-table SoA path vs the boxed
         word-vector fallback. *)
}

(* [Timewheel]: simulated time. *)
and wheel_state = {
  mutable clock_ms : int64;
  mutable tq : timerq;  (* the pending-timer structure *)
  mutable timers_dirty : bool;
      (* set whenever the pending set changes (insert, pop, cancel,
         load), cleared when a durability batch captures the queue — so
         WAL batches only carry the timer queue when it moved *)
  mutable tm_next_seq : int;
      (* group-wide insertion counter stamping [tm_seq]; only the
         facade's copy is read, so equal-due timers scattered across
         member wheels merge back in exactly the single-engine order *)
}

(* The pending-timer structure, selectable per database
   ([Database.Config.timer_wheel] / ODE_TIMER_QUEUE). [Tq_list] is the
   reference representation: one flat list sorted by (due, seq) — O(n)
   arming, trivially correct, the oracle the wheel is pinned against.
   [Tq_wheel] is the hierarchical hashed timing wheel (Varghese–Lauck):
   O(1) arming and cancellation, cascade-on-advance. Both deliver in
   identical (due, seq) order and serialize to identical ODE1 bytes;
   [Timewheel] owns all the code. *)
and timerq = Tq_list of timer list | Tq_wheel of twheel

(* The wheel: [tw_levels] bucket levels of 64 slots each; level l's
   slots are 64^l ticks (ms) wide, and a timer lives at the lowest
   level whose current rotation covers its due instant — so a level-0
   slot holds exactly one instant. Buckets are intrusive doubly-linked
   node lists (O(1) unlink for eager cancellation via [tw_index]).
   [tw_ovf] holds timers beyond the top level's rotation; [tw_past]
   holds timers at or before the current clock (only reachable through
   crash-recovery clock skew), delivered first. *)
and twheel = {
  tw_slots : tnode option array array;  (* level -> slot -> bucket head *)
  tw_counts : int array;  (* pending nodes per level *)
  mutable tw_ovf : tnode option;  (* beyond the top rotation *)
  mutable tw_ovf_n : int;
  mutable tw_past : tnode option;  (* due <= clock (recovery skew) *)
  mutable tw_past_n : int;
  mutable tw_n : int;  (* total pending nodes *)
  mutable tw_peek : tnode option;
      (* cached minimum-(due, seq) pending node; [None] = unknown
         (recomputed lazily) — kept so the per-delivery head probe in
         [Timewheel.advance_to] is O(1) between mutations *)
  tw_index : (oid, tnode list) Hashtbl.t;
      (* live handles per object — the eager-cancellation index; holds
         only linked nodes (delivery and cancellation both unlink) *)
}

(* One pending timer's wheel handle. [tn_level] is the bucket address:
   0..L-1 a wheel level, -1 the overflow list, -3 the past list, -2
   detached (popped or cancelled). *)
and tnode = {
  tn_timer : timer;
  mutable tn_prev : tnode option;
  mutable tn_next : tnode option;
  mutable tn_level : int;
  mutable tn_slot : int;
}

(* [Durability]: the persistence strategy, held abstractly as a record
   of backend operations — the same inversion as [store_backend].
   [Persist] packs the full-image ODE1 codec, [Wal] the write-ahead-log
   backend; [Database.create_db ?durability] resolves the choice. The
   default installed by [make_db] is a no-op: raw-layer users (tests,
   benches) pay nothing, and batch emission from [Txn]/[Engine]/
   [Timewheel] goes through [dur_commit] without those layers depending
   on [Persist] or [Wal]. *)
and durability_backend = {
  dur_name : string;  (* "none", "image" or "wal:<dir>" *)
  dur_attach : db -> unit;
      (* called once by [create_db] right after construction — the WAL
         backend baselines its directory (initial snapshot + empty log)
         here so a crash before the first commit still recovers *)
  dur_commit : db -> oid list -> unit;
      (* emit one redo batch covering the listed objects (plus counters,
         clock and — when dirty — the timer queue). Called at the end of
         every transaction (user commit and abort, system transactions,
         timer deliveries) and after clock advancement. *)
  dur_save : db -> string -> unit;
  dur_load : db -> string -> unit;
  dur_recover : db -> unit;
      (* rebuild state from the backend's own storage (WAL: latest
         snapshot + log replay); classes must be registered first *)
  dur_sync : db -> unit;  (* force buffered group-commit batches to disk *)
  dur_close : db -> unit;
}

and klass = {
  k_name : string;
  k_fields : (string * Value.t) list;  (* declaration order, with defaults *)
  k_methods : (string, meth) Hashtbl.t;
  k_triggers : (string, trigger_def) Hashtbl.t;
  k_n_triggers : int;  (* sizes each object's [o_acts] slot array *)
  k_dispatch : (Symbol.basic_key, trigger_def list) Hashtbl.t;
      (* §5 hot-path index, built once at schema registration: posted
         basic -> trigger definitions whose alphabet can react to it, in
         declaration order. The legacy indexed [post] path consults this
         instead of scanning every activation on the object. *)
  k_rows : (Symbol.basic_key, krow) Hashtbl.t;
      (* the posting kernel's compiled candidate rows: same buckets as
         [k_dispatch], materialized as arrays with the distinct shared
         detectors factored out so one post classifies each detector
         exactly once and never allocates. Static per class — activation
         state is consulted through [o_acts], so trigger
         (de)activation needs no invalidation. *)
  k_constructor : (db -> oid -> Value.t list -> unit) option;
}

(* One compiled candidate row: the trigger definitions of one class that
   can react to one [basic_key], in declaration order, plus their
   distinct detectors (shared detectors classify once per post). *)
and krow = {
  kr_defs : trigger_def array;  (* declaration order *)
  kr_dets : Detector.t array;  (* distinct detectors, first-use order *)
  kr_det_of : int array;  (* kr_defs index -> kr_dets index *)
}

and meth = {
  m_name : string;
  m_kind : method_kind;
  m_arity : int option;  (* None = variadic *)
  m_impl : db -> oid -> Value.t list -> Value.t;
}

and trigger_def = {
  t_name : string;
  t_class : string;
  t_event : Ode_event.Expr.t;
  t_detector : Detector.t;  (* compiled once per class, as in §5 *)
  t_perpetual : bool;
  t_witnesses : bool;  (* track full per-match provenance (§9) *)
  t_action : db -> fire_context -> unit;
  mutable t_index : int;
      (* dense per-class slot, assigned at [Schema.register_class] in
         declaration order; indexes [o_acts] on every object of the
         class. [-1] for database-scope definitions. *)
}

and fire_context = {
  fc_oid : oid;  (* the object the event was posted to *)
  fc_params : Value.t list;  (* activation-time trigger arguments *)
  fc_occurrence : Symbol.occurrence;  (* the occurrence completing the event *)
  fc_collected : (string * Value.t) list;
      (* formal-name bindings collected across the constituent logical
         events (paper §9), latest occurrence winning *)
  fc_witnesses : (string * Value.t) list list option;
      (* full per-match provenance when the trigger was declared with
         [~witnesses:true]; one binding list per way the event matched *)
}

and active_trigger = {
  at_def : trigger_def;
  mutable at_params : Value.t list;  (* activation arguments, passed to the action *)
  mutable at_state : trig_state;
  mutable at_collected : (string * Value.t) list;  (* §9 parameter collection *)
  mutable at_provenance : Ode_event.Provenance.t option;  (* when t_witnesses *)
  mutable at_last_witnesses : (string * Value.t) list list;
  mutable at_active : bool;
  mutable at_epoch : int;  (* bumped on (re)activation; stale timers check it *)
}

(* Where an activation's automaton state lives. Detectors whose whole
   level stack carries flat transition tables ([Detector.has_flat] —
   all compilable expressions in practice) pack their fixed state
   vector into the per-shard SoA blocks; everything else — automata
   past the flat-cell budget, database-scope activations — keeps its
   own word vector. *)
and trig_state =
  | S_words of Detector.state
  | S_slot of soa_block * int

and obj = {
  o_id : oid;
  o_class : klass;
  o_fields : (string, Value.t) Hashtbl.t;
  o_triggers : (string, active_trigger) Hashtbl.t;
  o_acts : active_trigger option array;
      (* activations by [t_index] — the kernel's candidate rows resolve
         through this dense array instead of the name hashtable *)
  mutable o_n_active : int;  (* activations with [at_active = true] *)
  mutable o_deleted : bool;
  mutable o_lock : Lock.t;
  mutable o_history : History.record list;  (* newest first; see §9 *)
  mutable o_history_len : int;
}

and txn = {
  tx_id : int;
  tx_system : bool;  (* transaction events are not posted for system txns *)
  mutable tx_status : txn_status;
  mutable tx_accessed : oid list;  (* reverse order of first access *)
  tx_seen : (oid, unit) Hashtbl.t;  (* membership mirror of tx_accessed *)
  mutable tx_undo : undo_entry list;  (* newest first *)
  mutable tx_dirty : oid list;
      (* objects whose durable state this txn changed outside the
         access path (trigger (de)activation carries no object access
         semantics, so it must not enter [tx_accessed] and the event
         fan-outs) — unioned into the redo-batch footprint at emission *)
}

and undo_entry =
  | U_field of obj * string * Value.t
  | U_create of obj
  | U_delete of obj
  | U_trigger_state of active_trigger * int array
      (* snapshot of the state words, whatever the representation *)
  | U_trigger_collected of active_trigger * (string * Value.t) list
  | U_trigger_active of obj option * active_trigger * bool
      (* the owning object (None for database scope) so undo can keep
         [o_n_active] exact *)
  | U_trigger_added of obj * string
  | U_timers_cancelled of timer list
      (* timers eagerly cancelled inside the txn (deactivate / delete /
         re-activation epoch bump); undo re-inserts them with their
         original seqs, so an abort restores the exact queue bytes *)
  | U_timers_armed of timer list
      (* timers armed inside the txn; undo cancels them (matched by
         physical equality, so a re-armed equal timer is untouched) *)

and timer = {
  tm_due : int64;
  tm_seq : int;
      (* insertion order among equal due times, allocated group-wide
         from the facade wheel — the tiebreak that keeps the merged
         delivery order of partitioned wheels identical to the single
         queue (and survives a save/load round trip) *)
  tm_oid : oid;
  tm_trigger : string;
  tm_epoch : int;
  tm_spec : Symbol.time_spec;
  tm_anchor : int64;  (* activation time, for Every/After_period *)
}

and firing = {
  f_trigger : string;
  f_class : string;
  f_oid : oid;
  f_at : int64;
  f_txn : int;
}

and subscription = {
  s_id : int;
  s_fn : firing -> unit;
  mutable s_active : bool;
}

exception Tabort
exception Lock_conflict of oid
exception Ode_error of string

let ode_error fmt = Format.kasprintf (fun s -> raise (Ode_error s)) fmt

(* The composition root: every layer's state record, initialized empty.
   Lives here because only the knot module sees all the sub-records. The
   backend is passed in ready-made — [Store] owns the implementations and
   [Database.create_db] resolves the [?backend] argument through it, so
   the knot stays free of representation choices. *)
(* The durability backend installed when nobody chose one: emission is
   free, and save/load point the caller at [Database.create_db
   ?durability] (raw [make_db] users drive [Persist] directly). *)
let noop_durability =
  {
    dur_name = "none";
    dur_attach = (fun _ -> ());
    dur_commit = (fun _ _ -> ());
    dur_save = (fun _ _ -> ode_error "no durability backend attached");
    dur_load = (fun _ _ -> ode_error "no durability backend attached");
    dur_recover = (fun _ -> ode_error "no durability backend attached");
    dur_sync = (fun _ -> ());
    dur_close = (fun _ -> ());
  }

let make_db ~backend ?(start_time = 0L) ?(max_tcomplete_rounds = 1000)
    ?(trace_capacity = 1024) ?(durability = noop_durability) () =
  if max_tcomplete_rounds < 1 then
    ode_error "max_tcomplete_rounds must be >= 1";
  let db =
    {
      schema =
        {
          classes = Hashtbl.create 8;
          functions = Hashtbl.create 8;
          db_trigger_defs = Hashtbl.create 4;
          db_dispatch = Hashtbl.create 8;
        };
      store =
        {
          backend;
          next_oid = 1;
          n_live = 0;
          history_limit = 0;
          soa = Array.init backend.sb_shards (fun _ -> Hashtbl.create 8);
        };
      txns =
        {
          next_txn_id = 1;
          current = None;
          open_txns = [];
          in_abort = false;
          max_tcomplete_rounds;
        };
      engine =
        {
          db_triggers = Hashtbl.create 4;
          subscribers = [];
          next_sub_id = 1;
          use_dispatch_index = true;
          post_domains = 1;
          clamp_domains = true;
          parallel_threshold = 32;
          pool = None;
          q_items = [||];
          q_off = [||];
          q_cur = [||];
          use_posting_kernel = true;
          scratch = [||];
          kind_names = Hashtbl.create 16;
        };
      wheel =
        {
          clock_ms = start_time;
          tq = Tq_list [];
          timers_dirty = false;
          tm_next_seq = 0;
        };
      durability;
      obs = Ode_obs.Registry.create ~trace_capacity ();
      part = None;
    }
  in
  db

(* ------------------------------------------------------------------ *)
(* Partition routing                                                  *)
(*                                                                    *)
(* The only group-awareness the inner layers need: which member owns  *)
(* an oid's heap slice, and where the shared counters live. Both are  *)
(* the identity for an unpartitioned db, so every existing call path  *)
(* pays one [match] and nothing else.                                 *)
(* ------------------------------------------------------------------ *)

let n_partitions db =
  match db.part with Some p -> Array.length p.p_members | None -> 1

(* The facade: member 0, home of group-wide counters and the db-scope
   automata. Identity when unpartitioned. *)
let primary db = match db.part with Some p -> p.p_members.(0) | None -> db

(* The member whose store/wheel slice owns this oid. *)
let owner_db db oid =
  match db.part with
  | Some p -> p.p_members.(oid mod Array.length p.p_members)
  | None -> db

(* Pending timers in one member's queue, O(1) for the wheel. Lives here
   (not [Timewheel]) so [Store.stats] can count timers without a
   circular dependency. *)
let timerq_count w =
  match w.tq with Tq_list tms -> List.length tms | Tq_wheel tw -> tw.tw_n

(* ------------------------------------------------------------------ *)
(* Detection-state accessors                                          *)
(*                                                                    *)
(* All reads and writes of [at_state] outside the kernel's inner loop *)
(* go through these, so undo snapshots, persistence images and the    *)
(* public [trigger_state] API are byte-identical whichever            *)
(* representation the activation uses.                                *)
(* ------------------------------------------------------------------ *)

let at_state_copy at =
  match at.at_state with
  | S_words w -> Array.copy w
  | S_slot (b, i) -> Array.sub b.blk_state (i * b.blk_words) b.blk_words

let at_state_restore at w =
  match at.at_state with
  | S_words _ -> at.at_state <- S_words w
  | S_slot (b, i) -> Array.blit w 0 b.blk_state (i * b.blk_words) b.blk_words

let at_state_reset at =
  match at.at_state with
  | S_words _ -> at.at_state <- S_words (Detector.initial at.at_def.t_detector)
  | S_slot (b, i) ->
    Detector.write_initial at.at_def.t_detector b.blk_state (i * b.blk_words)

let at_top_state at =
  match at.at_state with
  | S_words w -> Detector.top_state w
  | S_slot (b, i) -> b.blk_state.(((i + 1) * b.blk_words) - 1)

let at_state_len at =
  match at.at_state with
  | S_words w -> Array.length w
  | S_slot (b, _) -> b.blk_words

(* Single point maintaining the per-object active count next to the
   flag; [obj_opt] is [None] for database-scope activations. *)
let set_trigger_active obj_opt at v =
  if at.at_active <> v then begin
    (match obj_opt with
    | Some o -> o.o_n_active <- o.o_n_active + (if v then 1 else -1)
    | None -> ());
    at.at_active <- v
  end

module Value = Ode_base.Value
module Codec = Ode_base.Codec
module Symbol = Ode_event.Symbol
module Detector = Ode_event.Detector
open Types

let magic = "ODE1"

let write_time_spec w (spec : Symbol.time_spec) =
  let write_pattern (p : Symbol.time_pattern) =
    let opt v = Codec.write_option w Codec.write_int v in
    opt p.year; opt p.mon; opt p.day; opt p.hr; opt p.min; opt p.sec; opt p.ms
  in
  match spec with
  | At p ->
    Codec.write_int w 0;
    write_pattern p
  | Every ms ->
    Codec.write_int w 1;
    Codec.write_int w (Int64.to_int ms)
  | After_period ms ->
    Codec.write_int w 2;
    Codec.write_int w (Int64.to_int ms)

let read_time_spec r : Symbol.time_spec =
  let read_pattern () : Symbol.time_pattern =
    let opt () = Codec.read_option r Codec.read_int in
    let year = opt () in
    let mon = opt () in
    let day = opt () in
    let hr = opt () in
    let min = opt () in
    let sec = opt () in
    let ms = opt () in
    { year; mon; day; hr; min; sec; ms }
  in
  match Codec.read_int r with
  | 0 -> At (read_pattern ())
  | 1 -> Every (Int64.of_int (Codec.read_int r))
  | 2 -> After_period (Int64.of_int (Codec.read_int r))
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad time spec tag %d" t))

(* ------------------------------------------------------------------ *)
(* Object and timer framing                                            *)
(*                                                                     *)
(* One writer/reader pair per entity, shared verbatim by the full      *)
(* image below and by [Wal]'s redo records — there is exactly one      *)
(* codec path, so a WAL snapshot and a [save] of the same state are    *)
(* bit-identical by construction.                                      *)
(* ------------------------------------------------------------------ *)

let write_obj w obj =
  Codec.write_int w obj.o_id;
  Codec.write_string w obj.o_class.k_name;
  Codec.write_list w
    (fun w (name, v) ->
      Codec.write_string w name;
      Codec.write_value w v)
    (Hashtbl.fold (fun name v acc -> (name, v) :: acc) obj.o_fields []
    |> List.sort compare);
  Codec.write_list w
    (fun w (name, (at : active_trigger)) ->
      Codec.write_string w name;
      Codec.write_list w Codec.write_value at.at_params;
      (* [at_state_copy] reads whichever representation the
         activation uses, so SoA-packed and word-vector states
         serialize to identical bytes *)
      Codec.write_array w Codec.write_int (at_state_copy at);
      Codec.write_list w
        (fun w (name, v) ->
          Codec.write_string w name;
          Codec.write_value w v)
        at.at_collected;
      Codec.write_bool w at.at_active;
      Codec.write_int w at.at_epoch)
    (Hashtbl.fold (fun name at acc -> (name, at) :: acc) obj.o_triggers []
    |> List.sort (fun (a, _) (b, _) -> compare a b))

(* Schema-free parse of one serialized object — also what [odec
   wal-dump] decodes without a database at hand. *)
let read_obj_raw r =
  let oid = Codec.read_int r in
  let cname = Codec.read_string r in
  let fields =
    Codec.read_list r (fun r ->
        let name = Codec.read_string r in
        let v = Codec.read_value r in
        (name, v))
  in
  let triggers =
    Codec.read_list r (fun r ->
        let name = Codec.read_string r in
        let params = Codec.read_list r Codec.read_value in
        let state = Codec.read_array r Codec.read_int in
        let collected =
          Codec.read_list r (fun r ->
              let name = Codec.read_string r in
              let v = Codec.read_value r in
              (name, v))
        in
        let active = Codec.read_bool r in
        let epoch = Codec.read_int r in
        (name, params, state, collected, active, epoch))
  in
  (oid, cname, fields, triggers)

(* Materialize a parsed object into the heap: class re-resolved by
   name, activations rebuilt with fresh detection-state representations
   (SoA slot or word vector) then overwritten with the saved words. *)
let install_obj db (oid, cname, fields, triggers) =
  let k =
    match Schema.find_class db cname with
    | Some k -> k
    | None -> raise (Codec.Corrupt ("image references unregistered class " ^ cname))
  in
  let obj = Store.new_obj k oid in
  (* saved field values override the class defaults installed by
     [Store.new_obj] *)
  List.iter (fun (name, v) -> Hashtbl.replace obj.o_fields name v) fields;
  List.iter
    (fun (name, params, state, collected, active, epoch) ->
      match Hashtbl.find_opt k.k_triggers name with
      | None -> raise (Codec.Corrupt ("image references unknown trigger " ^ name))
      | Some def ->
        if Array.length state <> Detector.n_state_words def.t_detector then
          raise (Codec.Corrupt "trigger state size mismatch (schema changed?)");
        let at =
          {
            at_def = def;
            at_params = params;
            (* fresh representation (SoA slot or word vector), then
               overwrite with the saved words *)
            at_state = Store.fresh_at_state db oid def.t_detector;
            at_collected = collected;
            (* provenance instances are volatile: rebuilt empty after a
               load (documented in save) *)
            at_provenance =
              (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
               else None);
            at_last_witnesses = [];
            at_active = active;
            at_epoch = epoch;
          }
        in
        at_state_restore at state;
        if active then obj.o_n_active <- obj.o_n_active + 1;
        Hashtbl.add obj.o_triggers name at;
        if def.t_index >= 0 then obj.o_acts.(def.t_index) <- Some at)
    triggers;
  Store.add_obj db obj

let write_timer w (tm : timer) =
  Codec.write_int w (Int64.to_int tm.tm_due);
  (* the insertion stamp is part of the image: every partition count
     assigns the same stamps (one group-wide counter), so images stay
     config-identical — and a reload restores the exact delivery order
     among equal-due timers scattered across partition members *)
  Codec.write_int w tm.tm_seq;
  Codec.write_int w tm.tm_oid;
  Codec.write_string w tm.tm_trigger;
  Codec.write_int w tm.tm_epoch;
  write_time_spec w tm.tm_spec;
  Codec.write_int w (Int64.to_int tm.tm_anchor)

let read_timer r =
  let due = Int64.of_int (Codec.read_int r) in
  let seq = Codec.read_int r in
  let oid = Codec.read_int r in
  let tname = Codec.read_string r in
  let epoch = Codec.read_int r in
  let spec = read_time_spec r in
  let anchor = Int64.of_int (Codec.read_int r) in
  { tm_due = due; tm_seq = seq; tm_oid = oid; tm_trigger = tname;
    tm_epoch = epoch; tm_spec = spec; tm_anchor = anchor }

(* ------------------------------------------------------------------ *)
(* Full images                                                         *)
(* ------------------------------------------------------------------ *)

let image_bytes db =
  let w = Codec.writer () in
  Codec.write_string w magic;
  Codec.write_int w db.store.next_oid;
  Codec.write_int w db.txns.next_txn_id;
  Codec.write_int w (Int64.to_int db.wheel.clock_ms);
  (* backend-neutral: [live_objects] sorts to ascending oid per the
     Store ordering contract, so Heap and Sharded images are identical *)
  Codec.write_list w write_obj (Store.live_objects db);
  (* [Timewheel.pending] emits (due, seq) order for either queue
     representation, so list and wheel images are byte-identical *)
  Codec.write_list w write_timer (Timewheel.pending db);
  Codec.contents w

let save db path =
  if db.txns.open_txns <> [] then ode_error "cannot save with open transactions";
  Codec.to_file path (image_bytes db)

(* Restored timers keep their saved insertion stamps; the group-wide
   counter must resume past them so later arms sort after. The counter
   lives on the facade wheel and only moves forward — member-by-member
   recovery of a partition group maxes it correctly. *)
let bump_seq_counter db timers =
  let pr = Types.primary db in
  List.iter
    (fun tm ->
      if tm.tm_seq >= pr.wheel.tm_next_seq then
        pr.wheel.tm_next_seq <- tm.tm_seq + 1)
    timers

(* Member-local on purpose (resets and refills only [db]'s own heap
   slice and wheel): a partition member's WAL recovery restores its
   slice from its own snapshot. Group images go through
   [group_load_image]. *)
let load_image db data =
  let r = Codec.reader data in
  if Codec.read_string r <> magic then raise (Codec.Corrupt "not an Ode image");
  let next_oid = Codec.read_int r in
  let next_txn_id = Codec.read_int r in
  let clock_ms = Int64.of_int (Codec.read_int r) in
  (* parse everything before touching the heap, so a corrupt image does
     not leave a half-installed database behind *)
  let objs = Codec.read_list r read_obj_raw in
  let timers = Codec.read_list r read_timer in
  Store.reset_heap db;
  Timewheel.clear db;
  db.store.next_oid <- next_oid;
  db.txns.next_txn_id <- next_txn_id;
  db.wheel.clock_ms <- clock_ms;
  List.iter (install_obj db) objs;
  List.iter (Timewheel.insert_timer db) timers;
  bump_seq_counter db timers

let load db path =
  if db.txns.open_txns <> [] then ode_error "cannot load with open transactions";
  load_image db (Codec.of_file path)

(* ------------------------------------------------------------------ *)
(* Group images                                                        *)
(* ------------------------------------------------------------------ *)

(* The merged image of a partition group: member slices interleaved
   back into ascending-oid / (due, seq) order. Because member slices
   partition exactly what a single engine would hold, the merge is
   byte-identical to the single-engine [image_bytes] — the property the
   partition-equivalence suite pins. *)
let group_image_bytes db =
  match db.part with
  | None -> image_bytes db
  | Some p ->
    let pr = p.p_members.(0) in
    let w = Codec.writer () in
    Codec.write_string w magic;
    Codec.write_int w pr.store.next_oid;
    Codec.write_int w pr.txns.next_txn_id;
    Codec.write_int w (Int64.to_int pr.wheel.clock_ms);
    let objs =
      Array.fold_left
        (fun acc m -> List.rev_append (Store.live_objects m) acc)
        [] p.p_members
      |> List.sort (fun a b -> compare a.o_id b.o_id)
    in
    Codec.write_list w write_obj objs;
    let timers =
      Array.fold_left
        (fun acc m -> List.rev_append (Timewheel.pending m) acc)
        [] p.p_members
      |> List.sort (fun a b ->
             compare (a.tm_due, a.tm_seq) (b.tm_due, b.tm_seq))
    in
    Codec.write_list w write_timer timers;
    Codec.contents w

(* [load_image] for a whole group: reset every member slice, then let
   owner routing scatter the merged image's objects and timers back to
   their members. *)
let group_load_image db data =
  match db.part with
  | None -> load_image db data
  | Some p ->
    let r = Codec.reader data in
    if Codec.read_string r <> magic then
      raise (Codec.Corrupt "not an Ode image");
    let next_oid = Codec.read_int r in
    let next_txn_id = Codec.read_int r in
    let clock_ms = Int64.of_int (Codec.read_int r) in
    let objs = Codec.read_list r read_obj_raw in
    let timers = Codec.read_list r read_timer in
    Array.iter
      (fun m ->
        Store.reset_heap m;
        Timewheel.clear m;
        m.wheel.tm_next_seq <- 0;
        m.store.next_oid <- next_oid;
        m.wheel.clock_ms <- clock_ms)
      p.p_members;
    db.txns.next_txn_id <- next_txn_id;
    (* [install_obj]/[insert_timer] route to the owning member *)
    List.iter (install_obj db) objs;
    List.iter (Timewheel.insert_timer db) timers;
    bump_seq_counter db timers

let group_save db path =
  if db.txns.open_txns <> [] then ode_error "cannot save with open transactions";
  Codec.to_file path (group_image_bytes db)

let group_load db path =
  if db.txns.open_txns <> [] then ode_error "cannot load with open transactions";
  group_load_image db (Codec.of_file path)

(* ------------------------------------------------------------------ *)
(* The full-image durability backend                                   *)
(* ------------------------------------------------------------------ *)

(* [save]/[load] as a [durability_backend]: no incremental log, commits
   emit nothing, recovery has nothing to replay from. This is the
   PR-6-and-earlier behaviour, packaged. *)
let image_backend () =
  {
    dur_name = "image";
    dur_attach = (fun _ -> ());
    dur_commit = (fun _ _ -> ());
    dur_save = save;
    dur_load = load;
    dur_recover =
      (fun _ -> ode_error "image durability keeps no log to recover from");
    dur_sync = (fun _ -> ());
    dur_close = (fun _ -> ());
  }

(** Engine layer: the §5 event-posting pipeline — candidate-trigger
    selection via the dispatch indexes, the per-occurrence
    classification cache, the firing pipeline, system-transaction
    posting — plus the object and trigger operations that compose the
    layers below (create/delete/call drive Store + Txn + the pipeline).

    Top of the subsystem stack: depends on {!Schema}, {!Store}, {!Txn}
    and {!Timewheel}, never the reverse. At load time it installs the
    posting hooks that [Txn] (commit/abort events) and [Timewheel]
    (time-event delivery) call upward through. *)

module Value = Ode_base.Value
open Types

(** {1 Dispatch-index configuration} *)

val set_dispatch_index : db -> bool -> unit
(** Per-database switch (default true): when enabled, posting consults
    the per-class / per-database dispatch index and touches only the
    triggers whose alphabet can contain the posted basic event; when
    disabled, every active trigger is snapshotted and classified. *)

val dispatch_index_enabled : db -> bool

(** {1 Posting-kernel configuration} *)

val set_posting_kernel : db -> bool -> unit
(** Per-database switch (default true) for the compiled posting kernel:
    per-class candidate rows, packed classification codes and flat-table
    stepping over the structure-of-arrays detection state. Only
    meaningful while the dispatch index is enabled — with the index off,
    posting always takes the brute-force reference path. Disabling falls
    back to the legacy indexed path, kept as the equivalence-test
    reference. *)

val posting_kernel_enabled : db -> bool

(** {1 The posting pipeline} *)

val post : db -> txn -> obj -> Ode_event.Symbol.basic -> Value.t list -> bool
(** Post one basic-event occurrence to one object: record history,
    select candidates, classify once per shared detector, collect §9
    bindings, advance automata, then run fired actions in declaration
    order inside the posting transaction. Returns whether anything
    fired. *)

val post_db : db -> Ode_event.Symbol.basic -> Value.t list -> unit
(** Post to the database scope (§3): [after defclass], [after create],
    [before delete]. *)

val system_post : db -> oid list -> Ode_event.Symbol.basic -> unit
(** Post a transaction event to the listed objects inside a fresh system
    transaction (§5: commit/abort events belong to no user
    transaction). *)

(** {1 Batch posting}

    [post_many] drives the same three-phase pipeline over a whole batch:
    phase 0 (touch/lock/history/probes) and phase 3 (firing) run
    sequentially in batch order; the classify + step phases run one task
    per heap shard, fanned out across up to {!post_domains} domains on a
    sharded backend. Safe because a shard task only mutates detection
    state of objects its shard owns (§5: one automaton per trigger per
    object); committed-mode undo snapshots accumulate in per-shard
    segments merged deterministically by {!Txn.merge_undo_segments}. *)

val post_many : db -> (oid * Ode_event.Symbol.basic * Value.t list) list -> int
(** Post a batch of basic events. Every event is classified and stepped
    against the detection state as of the start of the batch's step
    phase (events to the same object step in batch order); all fired
    actions run after the whole batch has stepped, in batch order then
    declaration order. The outcome — firing order included — is
    bit-identical whatever the domain count or backend. Dead or missing
    oids are skipped, like {!system_post}. Returns the number of
    firings. *)

val set_post_domains : db -> int -> unit
(** Target domain count for [post_many]'s step phase (default 1 —
    fully sequential). At use the count is clamped to the backend's
    shard count and — while {!domain_clamp} holds — to
    [Domain.recommended_domain_count ()]; the cached pool is rebuilt on
    the next batch after a change. Raises {!Types.Ode_error} if < 1. *)

val post_domains : db -> int

val set_parallel_threshold : db -> int -> unit
(** Minimum batch size (default 32) below which [post_many] steps
    sequentially even with [post_domains] > 1: a small batch loses more
    to the pool rendezvous than it gains from the fan-out. 0 means
    always use the configured domains. Raises {!Types.Ode_error} if
    negative. *)

val parallel_threshold : db -> int

val set_domain_clamp : db -> bool -> unit
(** Whether the effective domain count is clamped to
    [Domain.recommended_domain_count ()] (default [true]). Disabling it
    deliberately oversubscribes the machine — tests use this to drive
    the real multi-domain machinery on a 1-core box. *)

val domain_clamp : db -> bool

val shutdown_pool : db -> unit
(** Join and discard the cached domain pool, if any. Idempotent; the
    next parallel [post_many] respawns it. Call before discarding a
    database that ran multi-domain batches. *)

(** {1 Firing notification}

    The notification surface is subscription-based: register a callback
    with {!subscribe_firings} and every subsequent firing — object or
    database scope — is delivered to it synchronously, in subscription
    order, from inside the posting pipeline. *)

val subscribe_firings : db -> (firing -> unit) -> subscription
(** Register a callback invoked synchronously for every firing, in
    subscription order, after one-shot deactivation but interleaved with
    the fired actions of the same occurrence (each firing is notified
    immediately before its action runs). Callbacks must not raise;
    an exception propagates out of the posting operation. *)

val unsubscribe : db -> subscription -> unit
(** Remove a subscription. Safe to call twice; a subscription captured
    inside a callback list being walked is silenced immediately
    ([s_active] is cleared before removal). *)

val notify_firing : db -> firing -> unit
(** Deliver one firing to all subscribers (and the observability
    registry). Exposed for the façade and tests; the pipeline calls it
    internally. *)

val touch : db -> txn -> obj -> unit
(** Record first access and lazily post [after tbegin] (§3.1(4)). *)

(** {1 Schema registration} *)

val register_class : db -> Schema.class_builder -> unit
(** {!Schema.register_class}, then announce [after defclass] on the
    database scope. *)

(** {1 Objects} *)

val create : db -> string -> Value.t list -> oid
val delete : db -> oid -> unit
val set_field : db -> oid -> string -> Value.t -> unit
val call : db -> oid -> string -> Value.t list -> Value.t
val has_method : db -> oid -> string -> bool
val apply_fun : db -> string -> Value.t list -> Value.t

(** {1 Trigger activation} *)

val activate : db -> oid -> string -> Value.t list -> unit
val deactivate : db -> oid -> string -> unit
val is_active : db -> oid -> string -> bool
val trigger_state_words : db -> oid -> string -> int
val trigger_state : db -> oid -> string -> int array

val activate_db_trigger : db -> string -> Value.t list -> unit
val deactivate_db_trigger : db -> string -> unit

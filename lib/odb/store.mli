(** Store layer: the object heap — oid allocation, live-object lookup,
    field access, per-object activations and event histories.

    All heap traffic goes through the {!STORE} backend signature:
    {!Heap} is the single-hashtable backend, {!Sharded} partitions the
    heap into N hashtables by oid hash so the engine's batch pipeline
    can step automata one-domain-per-shard. Either is packed into the
    abstract {!Types.store_backend} operations record at
    [Database.create_db ?backend]; the layers above never see the
    concrete representation. Depends on {!Types} (and reads the schema
    tables for mask environments); knows nothing about transactions or
    event posting.

    {b Ordering contract.} Backends enumerate in {e unspecified} order
    (hash order, shard-by-shard for {!Sharded}). Every enumeration this
    layer exposes — {!objects}, {!objects_of_class}, {!live_objects} —
    therefore sorts to {e ascending oid} before returning, so commit and
    abort fan-out, persist snapshots and user-visible listings are
    bit-identical across backends. Code that folds the raw backend
    directly must either be order-insensitive or sort likewise. *)

module Value = Ode_base.Value
open Types

(** {1 Backend signature} *)

module type STORE = sig
  type t

  val add : t -> obj -> unit
  val find : t -> oid -> obj option

  val mem : t -> oid -> bool
  (** An object with this oid is stored (live or delete-marked). *)

  val remove : t -> oid -> unit
  val reset : t -> unit

  val cardinal : t -> int
  (** Number of stored objects, delete-marked included — O(1) (or
      O(shards)), never a scan. *)

  val iter : (obj -> unit) -> t -> unit
  val fold : (obj -> 'a -> 'a) -> t -> 'a -> 'a

  val shards : t -> int
  (** The partition width the engine may parallelise over (1 for
      unpartitioned backends). *)

  val shard_of : t -> oid -> int
  (** Which shard holds this oid; constant for an object's lifetime. *)
end

module Heap : sig
  include STORE with type t = (oid, obj) Hashtbl.t

  val create : unit -> t
end

module Sharded : sig
  include STORE

  val create : shards:int -> t
  (** [shards] hashtables partitioned by [oid mod shards], one mutex
      per shard guarding structural mutation. Lookups are lock-free:
      the engine only mutates the tables from sequential pipeline
      phases. *)
end

(** {1 Backend selection} *)

type spec = [ `Heap | `Sharded of int ]
(** What [Database.create_db ?backend] accepts; [`Sharded n] is the
    shard count. *)

val default_shards : int

val default_spec : unit -> spec
(** [`Heap], unless the [ODE_STORE_BACKEND] environment variable forces
    [sharded] / [sharded:<n>] / [heap] (how CI runs the whole suite on
    the sharded backend). Raises {!Types.Ode_error} on an unparsable
    value. *)

val backend_of : spec -> store_backend
(** Instantiate a backend and pack it into the abstract operations
    record the knot holds. *)

val backend_name : db -> string
(** ["heap"] or ["sharded:<n>"]. *)

val shards : db -> int
val shard_of : db -> oid -> int

(** {1 Partition lanes}

    An oid-partitioned engine group ([Engine_group]) gives the batch
    pipeline one {e lane} per (member, member-shard) pair; a lane task
    touches exactly one member's slice of one shard. Unpartitioned, a
    lane is a shard and all three collapse to the plain accessors. *)

val lanes : db -> int
(** [n_partitions * shards] parallelisable slices. *)

val lane_of : db -> oid -> int
(** Which lane steps this oid's automata; constant for an object's
    lifetime ([owner * shards + owner's shard]). *)

val member_of_lane : db -> int -> db
(** The partition member whose store slice backs a lane. *)

val members : db -> db array
(** The partition members in owner order, [[| db |]] when
    unpartitioned — what group-wide walks iterate. *)

(** {1 Heap operations} *)

val alloc_oid : db -> oid
(** One monotone counter: with [shard_of oid = oid mod n] the oid
    stream round-robins the shards, keeping the partition balanced
    without per-shard counters. Sequential-phase only. *)

val new_obj : klass -> oid -> obj
(** Fresh object record with the class's field defaults installed. Does
    not add it to the heap. *)

(** {1 Detection-state blocks}

    Activations of flat-table detectors pack their automaton state into
    a per-shard structure-of-arrays block keyed by detector uid, strided
    by the detector's state width (one word per automaton level) — the
    paper's "one integer per active trigger per object", generalised to
    a small fixed vector for composite-mask hierarchies. Allocation and
    release happen only in sequential pipeline phases. *)

val fresh_at_state : db -> oid -> Ode_event.Detector.t -> trig_state
(** Fresh initial detection state for an activation of this detector on
    this object: an SoA slot when the detector qualifies
    ({!Ode_event.Detector.has_flat}), a private word vector otherwise. *)

val free_at_state : active_trigger -> unit
(** Return the activation's SoA slot (if any) to its block's free list.
    Call only when the activation is being discarded. *)

val add_obj : db -> obj -> unit
val remove_obj : db -> oid -> unit

val mark_deleted : db -> obj -> unit
(** Flip [o_deleted] on (keeping the record stored for undo) and
    maintain the live-object count; idempotent. *)

val unmark_deleted : db -> obj -> unit

val reset_heap : db -> unit
(** Drop every stored object (used by [Persist.load]). *)

val find_obj : db -> oid -> obj option

val mem : db -> oid -> bool
(** A stored object has this oid, live or delete-marked — O(1), unlike
    {!exists} which also checks the delete mark. *)

val cardinal : ?live:bool -> db -> int
(** Stored-object count without scanning: with [~live:true] (maintained
    incrementally) only objects not delete-marked are counted; default
    counts every stored record. *)

val live_obj : db -> oid -> obj
(** Raises {!Types.Ode_error} on a missing or deleted object. *)

val live_obj_opt : db -> oid -> obj option
val exists : db -> oid -> bool
val class_of : db -> oid -> string

val objects : db -> oid list
(** Live oids, ascending — see the ordering contract above. *)

val objects_of_class : db -> string -> oid list
(** Live oids of one class, ascending. *)

val live_objects : db -> obj list
(** Live objects sorted by ascending oid — the backend-neutral
    enumeration persist snapshots are built from. *)

val fold_objects : (obj -> 'a -> 'a) -> db -> 'a -> 'a
(** Raw backend fold, {e unspecified order}; for order-insensitive
    accumulation only. *)

val iter_objects : (obj -> unit) -> db -> unit
(** Raw backend iteration, {e unspecified order}. *)

val get_field : db -> oid -> string -> Value.t

(** {1 Mask-evaluation environments} *)

val mask_env : db -> obj -> Ode_event.Mask.env
(** Field reads resolve against [obj]; dereferences and database
    functions against the heap and schema. *)

val db_mask_env : db -> Ode_event.Mask.env
(** No object in scope: only dereferences and database functions. *)

val make_scratch : db -> scratch
(** A reusable posting-kernel buffer: a {!mask_env}-equivalent
    environment reading fields through the scratch's [sc_obj] cell, plus
    a grow-only classification-code buffer. The engine keeps one per
    shard. *)

(** {1 Event histories (§9)} *)

val enable_history : db -> limit:int -> unit
val record_history : db -> txn -> obj -> Ode_event.Symbol.occurrence -> unit
val object_history : db -> oid -> History.t

(** {1 Statistics} *)

type stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
      (** Detection-state footprint, counted exactly as:
          8 bytes per automaton state word of every activation on a live
          object {e and} of every database-scope activation (active or
          not); plus [24 + length name] bytes per collected §9 binding
          held by an activation; plus the shadow copies pinned by open
          transactions' undo logs — 8 bytes per word of each
          [U_trigger_state] snapshot and the same per-binding charge for
          each [U_trigger_collected] snapshot. Bound values themselves
          are shared with the posting arguments and are not charged.

          Pending timers are charged too, at a flat 144 bytes each
          (record fields, headers and spec payload), summed across
          partition members — and the same per-timer charge applies to
          timers pinned by [U_timers_cancelled]/[U_timers_armed] undo
          entries. Since [Timewheel] cancels eagerly on deactivation,
          deletion and re-activation, a deactivate/activate storm holds
          [state_bytes] flat where the old lazy [timer_alive] sweep let
          dead timers accumulate until their due instant. *)
}

val stats : db -> stats
(** [n_objects] comes from the incrementally-maintained live count
    (O(1)); the per-activation accounting still walks live objects. *)

(** Store layer: the object heap — oid allocation, live-object lookup,
    field access, per-object activations and event histories.

    All heap traffic goes through the {!STORE} backend signature so a
    sharded or on-disk backend can be slotted in later without touching
    the layers above; {!Heap} is the in-memory hashtable backend the
    engine runs on today. Depends on {!Types} (and reads the schema
    tables for mask environments); knows nothing about transactions or
    event posting. *)

module Value = Ode_base.Value
open Types

(** {1 Backend signature} *)

module type STORE = sig
  type t

  val add : t -> obj -> unit
  val find : t -> oid -> obj option
  val remove : t -> oid -> unit
  val reset : t -> unit
  val iter : (obj -> unit) -> t -> unit
  val fold : (obj -> 'a -> 'a) -> t -> 'a -> 'a
end

module Heap : STORE with type t = (oid, obj) Hashtbl.t
(** The in-memory backend; [store_state.objects] is its concrete
    representation. *)

(** {1 Heap operations} *)

val alloc_oid : db -> oid
val new_obj : klass -> oid -> obj
(** Fresh object record with the class's field defaults installed. Does
    not add it to the heap. *)

val add_obj : db -> obj -> unit
val find_obj : db -> oid -> obj option

val live_obj : db -> oid -> obj
(** Raises {!Types.Ode_error} on a missing or deleted object. *)

val live_obj_opt : db -> oid -> obj option
val exists : db -> oid -> bool
val class_of : db -> oid -> string
val objects : db -> oid list
val objects_of_class : db -> string -> oid list
val get_field : db -> oid -> string -> Value.t

(** {1 Mask-evaluation environments} *)

val mask_env : db -> obj -> Ode_event.Mask.env
(** Field reads resolve against [obj]; dereferences and database
    functions against the heap and schema. *)

val db_mask_env : db -> Ode_event.Mask.env
(** No object in scope: only dereferences and database functions. *)

(** {1 Event histories (§9)} *)

val enable_history : db -> limit:int -> unit
val record_history : db -> txn -> obj -> Ode_event.Symbol.occurrence -> unit
val object_history : db -> oid -> History.t

(** {1 Statistics} *)

type stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
      (** Detection-state footprint, counted exactly as:
          8 bytes per automaton state word of every activation on a live
          object {e and} of every database-scope activation (active or
          not); plus [24 + length name] bytes per collected §9 binding
          held by an activation; plus the shadow copies pinned by open
          transactions' undo logs — 8 bytes per word of each
          [U_trigger_state] snapshot and the same per-binding charge for
          each [U_trigger_collected] snapshot. Bound values themselves
          are shared with the posting arguments and are not charged. *)
}

val stats : db -> stats

(* Write-ahead-log durability backend.

   Commit is the durability boundary: every finished transaction (user
   commit and abort, system transactions, timer deliveries) and every
   clock advancement emits one {e batch} — a logical redo record
   carrying the oid/txn counters, the clock, a full-object upsert or a
   delete for every object the transaction touched, and the timer queue
   when it moved. Batches are CRC-framed and appended to the current
   log under a group-commit window; a periodic checkpoint writes a full
   ODE1 snapshot (the exact [Persist.save] bytes — one codec path) and
   truncates the log. Recovery is snapshot + replay of every complete,
   CRC-valid frame, stopping at the first damaged one.

   Why full-object upserts rather than fine-grained deltas derived from
   the undo log: the undo log does {e not} enumerate every mutation —
   full-history automaton advances, §9 collection in full-history mode
   and rearm bookkeeping are deliberately never undo-logged (they
   survive aborts by design). The touched-oid set is the reliable
   enumeration; serializing each touched object whole through
   [Persist.write_obj] captures all of it, keeps replay trivial, and
   makes the recovered state byte-identical to a shadow run by
   construction (pinned by test/test_wal.ml's crash-injection
   harness).

   On-disk layout, per database directory:

     snap-<g>.ode1   full image, the exact [Persist.save] bytes
     wal-<g>.log     "ODEW1" header, then frames
                     [len:4 LE][crc32:4 LE][payload]

   exactly one generation <g> pair is current. The checkpoint protocol
   writes snap-<g+1> atomically, then an empty wal-<g+1>, then removes
   the old pair — recovery picks the largest g with {e both} files
   present, so a crash between any two steps falls back to the complete
   older pair. Recovery always ends by checkpointing the recovered
   state into a fresh generation, so a damaged log tail is never
   appended to. *)

module Codec = Ode_base.Codec
module Registry = Ode_obs.Registry
module Trace = Ode_obs.Trace
open Types

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected)                                      *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  dir : string;  (* the database's log directory; created on attach *)
  flush_ms : int;
      (* group-commit window: batches buffer in memory and reach disk
         when a batch arrives at least this many ms after the last
         flush. 0 = write + sync every batch. *)
  snapshot_every : int;
      (* checkpoint after this many batches in the current generation
         (skipped while transactions are open); <= 0 = never, the log
         grows until [dur_save] or recovery checkpoints *)
  sync_on_flush : bool;
      (* fsync after each physical write (default). Tests that only
         need same-process file contents turn it off. *)
  on_batch : (db -> unit) option;
      (* test hook, called after each batch is framed (and, under
         [flush_ms = 0], flushed): the crash harness captures its
         shadow snapshot here *)
}

let config ?(flush_ms = 50) ?(snapshot_every = 1000) ?(sync_on_flush = true)
    ?on_batch dir =
  { dir; flush_ms; snapshot_every; sync_on_flush; on_batch }

let header = "ODEW1"
let snap_path dir g = Filename.concat dir (Printf.sprintf "snap-%d.ode1" g)
let wal_path dir g = Filename.concat dir (Printf.sprintf "wal-%d.log" g)

let parse_gen ~prefix ~suffix name =
  if
    String.length name > String.length prefix + String.length suffix
    && String.sub name 0 (String.length prefix) = prefix
    && String.sub name
         (String.length name - String.length suffix)
         (String.length suffix)
       = suffix
  then
    int_of_string_opt
      (String.sub name (String.length prefix)
         (String.length name - String.length prefix - String.length suffix))
  else None

(* Largest generation with both its snapshot and its log present — the
   only pair the checkpoint protocol guarantees complete. *)
let latest_gen dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then None
  else begin
    let snaps = Hashtbl.create 8 and wals = Hashtbl.create 8 in
    Array.iter
      (fun name ->
        (match parse_gen ~prefix:"snap-" ~suffix:".ode1" name with
        | Some g -> Hashtbl.replace snaps g ()
        | None -> ());
        match parse_gen ~prefix:"wal-" ~suffix:".log" name with
        | Some g -> Hashtbl.replace wals g ()
        | None -> ())
      (Sys.readdir dir);
    Hashtbl.fold
      (fun g () best ->
        if Hashtbl.mem wals g then
          match best with Some b when b >= g -> best | _ -> Some g
        else best)
      snaps None
  end

(* ------------------------------------------------------------------ *)
(* Frames and batch payloads                                           *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

type damage =
  | Bad_header
  | Truncated of { offset : int }  (* incomplete frame starts here *)
  | Bad_crc of { index : int; offset : int }

type scan_result = {
  frames : string list;  (* complete, CRC-valid payloads, log order *)
  damage : damage option;  (* why the scan stopped early, if it did *)
}

(* Walk the framing without decoding payloads. Recovery, the crash
   harness and [odec wal-dump] all share this so "how many batches
   survive" has exactly one definition. *)
let scan_bytes data =
  let n = String.length data in
  if n < String.length header || String.sub data 0 (String.length header) <> header
  then { frames = []; damage = Some Bad_header }
  else begin
    let u32 off =
      Int32.to_int (String.get_int32_le data off) land 0xFFFFFFFF
    in
    let rec go acc index off =
      if off = n then { frames = List.rev acc; damage = None }
      else if off + 8 > n then
        { frames = List.rev acc; damage = Some (Truncated { offset = off }) }
      else begin
        let len = u32 off and crc = u32 (off + 4) in
        if off + 8 + len > n then
          { frames = List.rev acc; damage = Some (Truncated { offset = off }) }
        else begin
          let payload = String.sub data (off + 8) len in
          if crc32 payload <> crc then
            { frames = List.rev acc; damage = Some (Bad_crc { index; offset = off }) }
          else go (payload :: acc) (index + 1) (off + 8 + len)
        end
      end
    in
    go [] 0 (String.length header)
  end

let scan_file path = scan_bytes (Codec.of_file path)

(* One redo batch: counters and clock always; a tagged upsert/delete
   per touched object (deduplicated, first-touch order); the full timer
   queue when it changed since the last batch. *)
let serialize_batch db oids =
  let w = Codec.writer () in
  Codec.write_int w db.store.next_oid;
  Codec.write_int w db.txns.next_txn_id;
  Codec.write_int w (Int64.to_int db.wheel.clock_ms);
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun oid ->
        if Hashtbl.mem seen oid then false
        else begin
          Hashtbl.add seen oid ();
          true
        end)
      oids
  in
  Codec.write_int w (List.length uniq);
  List.iter
    (fun oid ->
      match Store.find_obj db oid with
      | Some o when not o.o_deleted ->
        Codec.write_int w 0;
        Persist.write_obj w o
      | Some _ | None ->
        (* deleted (tombstoned) or already removed: redo as a removal —
           replay then matches a fresh [Persist.load], which also drops
           tombstones *)
        Codec.write_int w 1;
        Codec.write_int w oid)
    uniq;
  Codec.write_option w
    (fun w ts -> Codec.write_list w Persist.write_timer ts)
    (if db.wheel.timers_dirty then Some (Timewheel.pending db) else None);
  db.wheel.timers_dirty <- false;
  Codec.contents w

let apply_batch db payload =
  let r = Codec.reader payload in
  db.store.next_oid <- Codec.read_int r;
  db.txns.next_txn_id <- Codec.read_int r;
  Timewheel.set_member_clock db (Int64.of_int (Codec.read_int r));
  let n = Codec.read_int r in
  for _ = 1 to n do
    match Codec.read_int r with
    | 0 ->
      let ((oid, _, _, _) as raw) = Persist.read_obj_raw r in
      if Store.mem db oid then Store.remove_obj db oid;
      Persist.install_obj db raw
    | 1 ->
      let oid = Codec.read_int r in
      if Store.mem db oid then Store.remove_obj db oid
    | t -> raise (Codec.Corrupt (Printf.sprintf "bad WAL entry tag %d" t))
  done;
  match Codec.read_option r (fun r -> Codec.read_list r Persist.read_timer) with
  | Some timers ->
    (* the clock was set above, so wheel placement is already right *)
    Timewheel.replace db timers;
    (* replayed timers keep their saved insertion stamps; the group-wide
       counter must resume past them *)
    let pr = Types.primary db in
    List.iter
      (fun tm ->
        if tm.tm_seq >= pr.wheel.tm_next_seq then
          pr.wheel.tm_next_seq <- tm.tm_seq + 1)
      timers
  | None -> ()

(* Decoded shape for [odec wal-dump] — framing plus a per-batch summary,
   no schema needed. *)
type entry_summary =
  | Upsert of { oid : int; class_name : string; n_triggers : int }
  | Delete of int

type batch_summary = {
  s_next_oid : int;
  s_next_txn : int;
  s_clock_ms : int64;
  s_entries : entry_summary list;
  s_timers : int option;  (* [Some n]: the batch carries n timers *)
}

let decode_summary payload =
  let r = Codec.reader payload in
  let s_next_oid = Codec.read_int r in
  let s_next_txn = Codec.read_int r in
  let s_clock_ms = Int64.of_int (Codec.read_int r) in
  let n = Codec.read_int r in
  let s_entries =
    List.init n (fun _ ->
        match Codec.read_int r with
        | 0 ->
          let oid, cname, _, triggers = Persist.read_obj_raw r in
          Upsert { oid; class_name = cname; n_triggers = List.length triggers }
        | 1 -> Delete (Codec.read_int r)
        | t -> raise (Codec.Corrupt (Printf.sprintf "bad WAL entry tag %d" t)))
  in
  let s_timers =
    Option.map List.length
      (Codec.read_option r (fun r -> Codec.read_list r Persist.read_timer))
  in
  { s_next_oid; s_next_txn; s_clock_ms; s_entries; s_timers }

(* ------------------------------------------------------------------ *)
(* The backend                                                         *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Partition groups on disk                                            *)
(* ------------------------------------------------------------------ *)

(* A partitioned database logs each member's slice into its own
   subdirectory [<dir>/p<k>] (its own generations, snapshots and log),
   with a one-line manifest at the group root naming the partition
   count — recovery refuses a directory written by a different layout
   instead of silently merging slices wrongly. *)

let member_dir dir k = Filename.concat dir (Printf.sprintf "p%d" k)
let manifest_path dir = Filename.concat dir "group-manifest"
let manifest_magic = "ODEGROUP1"

let write_manifest dir ~partitions =
  mkdir_p dir;
  Codec.to_file (manifest_path dir)
    (Printf.sprintf "%s partitions=%d\n" manifest_magic partitions)

let read_manifest dir =
  if not (Sys.file_exists (manifest_path dir)) then None
  else
    try
      Scanf.sscanf
        (Codec.of_file (manifest_path dir))
        "ODEGROUP1 partitions=%d"
        (fun n -> Some n)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      ode_error "WAL group manifest in %s is malformed" dir

let check_manifest dir ~partitions =
  match read_manifest dir with
  | None -> write_manifest dir ~partitions
  | Some n when n = partitions -> ()
  | Some n ->
    ode_error
      "WAL directory %s was written with %d partitions, refusing to attach \
       with %d (ODE_PARTITIONS)"
      dir n partitions

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let now_ms () = Unix.gettimeofday () *. 1000.

(* Per-instance mutable state lives in this record, closed over by the
   packed backend — each [create_db] gets its own. No file descriptor is
   held between flushes: a flush is open-append/write/[fsync]/close, so
   a test suite churning thousands of databases cannot exhaust fds. *)
type state = {
  cfg : config;
  mutable gen : int;
  mutable batches : int;  (* appended to the current generation's log *)
  pending : Buffer.t;  (* framed batches not yet on disk *)
  mutable pending_batches : int;
  mutable last_flush : float;  (* ms; start of the group-commit window *)
  mutable closed : bool;
}

let flush st db =
  if Buffer.length st.pending > 0 then begin
    let fd =
      Unix.openfile
        (wal_path st.cfg.dir st.gen)
        [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
        0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        write_all fd (Buffer.contents st.pending);
        if st.cfg.sync_on_flush then Unix.fsync fd);
    let obs = db.obs in
    if Registry.enabled obs then begin
      Registry.incr obs Registry.Wal_flushes;
      Registry.span obs
        (Trace.Wal_flushed
           { batches = st.pending_batches; bytes = Buffer.length st.pending })
    end;
    Buffer.clear st.pending;
    st.pending_batches <- 0
  end;
  st.last_flush <- now_ms ()

(* Checkpoint: flush the log so generation [gen] is complete on disk,
   write the next generation's snapshot — the {e exact} [Persist.save]
   bytes — and empty log, then retire the old pair. *)
let checkpoint st db =
  flush st db;
  let g' = st.gen + 1 in
  Codec.to_file (snap_path st.cfg.dir g') (Persist.image_bytes db);
  Codec.to_file (wal_path st.cfg.dir g') header;
  (try Sys.remove (snap_path st.cfg.dir st.gen) with Sys_error _ -> ());
  (try Sys.remove (wal_path st.cfg.dir st.gen) with Sys_error _ -> ());
  st.gen <- g';
  st.batches <- 0;
  if Registry.enabled db.obs then Registry.incr db.obs Registry.Wal_snapshots

let emit st db oids =
  if not st.closed then begin
    let payload = serialize_batch db oids in
    Buffer.add_string st.pending (frame payload);
    st.pending_batches <- st.pending_batches + 1;
    st.batches <- st.batches + 1;
    if Registry.enabled db.obs then Registry.incr db.obs Registry.Wal_batches;
    if st.cfg.flush_ms <= 0 || now_ms () -. st.last_flush >= float st.cfg.flush_ms
    then flush st db;
    if
      st.cfg.snapshot_every > 0
      && st.batches >= st.cfg.snapshot_every
      && db.txns.open_txns = []
    then checkpoint st db;
    match st.cfg.on_batch with Some f -> f db | None -> ()
  end

let attach st db =
  mkdir_p st.cfg.dir;
  match latest_gen st.cfg.dir with
  | Some g ->
    (* existing state: do not touch it — the caller registers classes
       and runs [recover]; committing without recovering first is a
       caller error (batches would extend a log whose prefix was never
       replayed) *)
    st.gen <- g
  | None ->
    (* fresh directory: baseline at generation 0 so a crash before the
       first commit still recovers (to the empty database) *)
    Codec.to_file (snap_path st.cfg.dir 0) (Persist.image_bytes db);
    Codec.to_file (wal_path st.cfg.dir 0) header;
    st.gen <- 0;
    st.batches <- 0

let recover st db =
  if db.txns.open_txns <> [] then
    ode_error "cannot recover with open transactions";
  match latest_gen st.cfg.dir with
  | None -> ode_error "no WAL state to recover in %s" st.cfg.dir
  | Some g ->
    Persist.load_image db (Codec.of_file (snap_path st.cfg.dir g));
    let { frames; damage } = scan_file (wal_path st.cfg.dir g) in
    List.iter (apply_batch db) frames;
    Buffer.clear st.pending;
    st.pending_batches <- 0;
    st.gen <- g;
    let obs = db.obs in
    if Registry.enabled obs then begin
      Registry.add obs Registry.Wal_replayed (List.length frames);
      Registry.span obs
        (Trace.Wal_recovered
           { gen = g; batches = List.length frames;
             damaged = damage <> None })
    end;
    (* re-baseline: the recovered state becomes the next generation's
       snapshot and any damaged log tail is retired with the old pair —
       nothing is ever appended after damage *)
    checkpoint st db

(* [backend], plus the explicit checkpoint entry point [Engine_group]'s
   group save/load needs: a group checkpoint writes the merged image
   for the caller but must re-baseline each member's own log on the
   member's {e slice} — which is [checkpoint], not [dur_save]. *)
let member_backend cfg =
  let st =
    {
      cfg;
      gen = 0;
      batches = 0;
      pending = Buffer.create 256;
      pending_batches = 0;
      last_flush = now_ms ();
      closed = false;
    }
  in
  ( (fun db -> checkpoint st db),
    fun db ->
      Buffer.clear st.pending;
      st.pending_batches <- 0;
      checkpoint st db ),
  {
    dur_name = "wal:" ^ cfg.dir;
    dur_attach = (fun db -> attach st db);
    dur_commit = (fun db oids -> emit st db oids);
    dur_save =
      (fun db path ->
        (* the image written for the caller and the checkpoint snapshot
           are the same [Persist] writer — satellite invariant: a WAL
           database's [save] stays byte-identical to an image one's *)
        Persist.save db path;
        checkpoint st db);
    dur_load =
      (fun db path ->
        Persist.load db path;
        (* buffered batches describe the pre-load state: drop them and
           re-baseline the log on what was just loaded *)
        Buffer.clear st.pending;
        st.pending_batches <- 0;
        checkpoint st db);
    dur_recover = (fun db -> recover st db);
    dur_sync = (fun db -> flush st db);
    dur_close =
      (fun db ->
        if not st.closed then begin
          flush st db;
          st.closed <- true
        end);
  }

let backend cfg = snd (member_backend cfg)

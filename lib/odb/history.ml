module Symbol = Ode_event.Symbol

type record = {
  h_occurrence : Symbol.occurrence;
  h_txn : int;
}

type t = record list

let truncate n l =
  let rec go n acc = function
    | x :: tl when n > 0 -> go (n - 1) (x :: acc) tl
    | _ -> List.rev acc
  in
  if n <= 0 then [] else go n [] l

let of_basic basic =
  List.filter (fun r -> Symbol.equal_basic r.h_occurrence.Symbol.basic basic)

let methods_named name =
  List.filter (fun r ->
      match r.h_occurrence.Symbol.basic with
      | Symbol.Method (_, n) -> n = name
      | _ -> false)

let transactional =
  List.filter (fun r -> Symbol.is_transactional r.h_occurrence.Symbol.basic)

let in_txn id = List.filter (fun r -> r.h_txn = id)

let between ~since ~until =
  List.filter (fun r ->
      let at = r.h_occurrence.Symbol.at in
      since <= at && at < until)

let count p h = List.length (List.filter p h)

let last p h =
  List.fold_left (fun acc r -> if p r then Some r else acc) None h

let fold f init h = List.fold_left f init h

let pp_record ppf r =
  Fmt.pf ppf "%a [txn %d]" Symbol.pp_occurrence r.h_occurrence r.h_txn

let pp ppf h = Fmt.(list ~sep:cut pp_record) ppf h

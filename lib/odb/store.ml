module Value = Ode_base.Value
module Mask = Ode_event.Mask
open Types

(* ------------------------------------------------------------------ *)
(* Backend signature                                                   *)
(* ------------------------------------------------------------------ *)

module type STORE = sig
  type t

  val add : t -> obj -> unit
  val find : t -> oid -> obj option
  val mem : t -> oid -> bool
  val remove : t -> oid -> unit
  val reset : t -> unit
  val cardinal : t -> int
  val iter : (obj -> unit) -> t -> unit
  val fold : (obj -> 'a -> 'a) -> t -> 'a -> 'a
  val shards : t -> int
  val shard_of : t -> oid -> int
end

module Heap : sig
  include STORE with type t = (oid, obj) Hashtbl.t

  val create : unit -> t
end = struct
  type t = (oid, obj) Hashtbl.t

  let create () = Hashtbl.create 64
  let add t o = Hashtbl.add t o.o_id o
  let find t oid = Hashtbl.find_opt t oid
  let mem t oid = Hashtbl.mem t oid
  let remove t oid = Hashtbl.remove t oid
  let reset t = Hashtbl.reset t
  let cardinal t = Hashtbl.length t
  let iter f t = Hashtbl.iter (fun _ o -> f o) t
  let fold f t init = Hashtbl.fold (fun _ o acc -> f o acc) t init
  let shards _ = 1
  let shard_of _ _ = 0
end

(* N hashtables partitioned by oid hash. The partition is what the
   engine's batch pipeline parallelises over: all activations of one
   object live in exactly one shard, so one domain per shard steps
   automata with no shared mutable state. The per-shard mutex guards the
   {e table} against concurrent structural mutation; the engine only
   mutates from sequential phases, so lookups (which parallel phases do
   perform) need no lock — a hashtable that nobody resizes is safe to
   read concurrently. *)
module Sharded : sig
  include STORE

  val create : shards:int -> t
end = struct
  type t = { tables : (oid, obj) Hashtbl.t array; locks : Mutex.t array }

  let create ~shards =
    if shards < 1 then invalid_arg "Store.Sharded.create: shards must be >= 1";
    {
      tables = Array.init shards (fun _ -> Hashtbl.create 64);
      locks = Array.init shards (fun _ -> Mutex.create ());
    }

  let shards t = Array.length t.tables
  let shard_of t oid = oid mod Array.length t.tables

  let locked t i f =
    Mutex.lock t.locks.(i);
    f t.tables.(i);
    Mutex.unlock t.locks.(i)

  let add t o = locked t (shard_of t o.o_id) (fun tbl -> Hashtbl.add tbl o.o_id o)
  let find t oid = Hashtbl.find_opt t.tables.(shard_of t oid) oid
  let mem t oid = Hashtbl.mem t.tables.(shard_of t oid) oid
  let remove t oid = locked t (shard_of t oid) (fun tbl -> Hashtbl.remove tbl oid)
  let reset t = Array.iteri (fun i _ -> locked t i Hashtbl.reset) t.tables

  let cardinal t =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.tables

  (* shard-index order, hash order within a shard: as unordered as the
     single hashtable — every enumeration the layers above expose sorts
     (see the ordering contract in store.mli) *)
  let iter f t = Array.iter (Hashtbl.iter (fun _ o -> f o)) t.tables

  let fold f t init =
    Array.fold_left
      (fun acc tbl -> Hashtbl.fold (fun _ o acc -> f o acc) tbl acc)
      init t.tables
end

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

type spec = [ `Heap | `Sharded of int ]

let default_shards = 8

(* CI forces the sharded backend across the whole suite with
   ODE_STORE_BACKEND=sharded (optionally sharded:<n>), so both backends
   stay green on every PR without duplicating the tests. *)
let default_spec () : spec =
  match Sys.getenv_opt "ODE_STORE_BACKEND" with
  | None | Some "" | Some "heap" -> `Heap
  | Some "sharded" -> `Sharded default_shards
  | Some s -> (
    match String.index_opt s ':' with
    | Some i
      when String.sub s 0 i = "sharded" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n >= 1 -> `Sharded n
      | Some _ | None ->
        ode_error "ODE_STORE_BACKEND: bad shard count in %S" s)
    | Some _ | None -> ode_error "ODE_STORE_BACKEND: unknown backend %S" s)

let pack (type a) (module S : STORE with type t = a) (t : a) ~name =
  {
    sb_name = name;
    sb_shards = S.shards t;
    sb_shard_of = (fun oid -> S.shard_of t oid);
    sb_add = (fun o -> S.add t o);
    sb_find = (fun oid -> S.find t oid);
    sb_mem = (fun oid -> S.mem t oid);
    sb_remove = (fun oid -> S.remove t oid);
    sb_reset = (fun () -> S.reset t);
    sb_cardinal = (fun () -> S.cardinal t);
    sb_iter = (fun f -> S.iter f t);
    sb_fold = (fun f init -> S.fold f t init);
  }

let backend_of (spec : spec) =
  match spec with
  | `Heap -> pack (module Heap) (Heap.create ()) ~name:"heap"
  | `Sharded n ->
    if n < 1 then ode_error "sharded backend needs >= 1 shard";
    pack (module Sharded) (Sharded.create ~shards:n)
      ~name:(Printf.sprintf "sharded:%d" n)

let backend_name db = db.store.backend.sb_name
let shards db = db.store.backend.sb_shards
let shard_of db oid = db.store.backend.sb_shard_of oid

(* ------------------------------------------------------------------ *)
(* Partition lanes                                                     *)
(* ------------------------------------------------------------------ *)

(* The engine's batch pipeline parallelises over {e lanes}: one lane
   per (partition member, member shard) pair, so a lane task touches
   exactly one member's slice of one shard — the same no-shared-state
   guarantee the single-engine pipeline gets from shards alone. For an
   unpartitioned db a lane {e is} a shard, so the single-engine queue
   layout (and with it every equivalence baseline) is unchanged. *)

let lanes db = Types.n_partitions db * shards db

let lane_of db oid =
  match db.part with
  | None -> shard_of db oid
  | Some p ->
    let k = oid mod Array.length p.p_members in
    let m = p.p_members.(k) in
    (k * m.store.backend.sb_shards) + m.store.backend.sb_shard_of oid

let member_of_lane db lane =
  match db.part with
  | None -> db
  | Some p -> p.p_members.(lane / db.store.backend.sb_shards)

(* ------------------------------------------------------------------ *)
(* Heap operations on the database                                     *)
(* ------------------------------------------------------------------ *)

(* Oid allocation is one counter: with [shard_of oid = oid mod n] a
   monotonically increasing oid stream round-robins the shards, so the
   partition stays balanced without per-shard counters. Allocation only
   happens in the sequential phases of the pipeline (object creation is
   never parallelised), so the counter needs no synchronisation. *)
let alloc_oid db =
  match db.part with
  | None ->
    let oid = db.store.next_oid in
    db.store.next_oid <- oid + 1;
    oid
  | Some p ->
    (* one group-wide counter, mirrored into every member so each
       member's WAL batches carry the same [next_oid] the single-engine
       run would log *)
    let oid = p.p_members.(0).store.next_oid in
    Array.iter (fun m -> m.store.next_oid <- oid + 1) p.p_members;
    oid

let new_obj k oid =
  let obj =
    {
      o_id = oid;
      o_class = k;
      o_fields = Hashtbl.create 8;
      o_triggers = Hashtbl.create 4;
      o_acts = Array.make k.k_n_triggers None;
      o_n_active = 0;
      o_deleted = false;
      o_lock = Lock.Free;
      o_history = [];
      o_history_len = 0;
    }
  in
  List.iter (fun (name, v) -> Hashtbl.replace obj.o_fields name v) k.k_fields;
  obj

(* ------------------------------------------------------------------ *)
(* Structure-of-arrays detection-state blocks                          *)
(* ------------------------------------------------------------------ *)

(* Activations of flat-table detectors on heap objects keep their
   automaton state vector — one word per level, one word total for
   mask-free expressions — in a per-shard block shared by all
   activations of the same detector — the paper's "one integer per
   active trigger per object", laid out so [post_many]'s step phase
   sweeps a contiguous int array. Slot allocation and release only
   happen in sequential pipeline phases (activation, undo, object
   removal). *)

let soa_slot db oid (det : Ode_event.Detector.t) =
  let db = Types.owner_db db oid in
  let tbl = db.store.soa.(shard_of db oid) in
  let w = Ode_event.Detector.n_state_words det in
  let blk =
    match Hashtbl.find_opt tbl det.uid with
    | Some b -> b
    | None ->
      let b =
        { blk_words = w; blk_state = Array.make (16 * w) 0; blk_n = 0;
          blk_free = [] }
      in
      Hashtbl.add tbl det.uid b;
      b
  in
  let slot =
    match blk.blk_free with
    | s :: rest ->
      blk.blk_free <- rest;
      s
    | [] ->
      let s = blk.blk_n in
      blk.blk_n <- s + 1;
      if (s + 1) * w > Array.length blk.blk_state then begin
        let grown = Array.make (2 * Array.length blk.blk_state) 0 in
        Array.blit blk.blk_state 0 grown 0 (Array.length blk.blk_state);
        blk.blk_state <- grown
      end;
      s
  in
  Ode_event.Detector.write_initial det blk.blk_state (slot * w);
  S_slot (blk, slot)

(* Fresh detection state for an activation of [det] on object [oid]:
   packed into the shard's SoA block when the detector qualifies, a
   private word vector otherwise. *)
let fresh_at_state db oid (det : Ode_event.Detector.t) =
  if Ode_event.Detector.has_flat det then soa_slot db oid det
  else S_words (Ode_event.Detector.initial det)

let free_at_state at =
  match at.at_state with
  | S_words _ -> ()
  | S_slot (blk, slot) -> blk.blk_free <- slot :: blk.blk_free

let free_obj_slots obj = Hashtbl.iter (fun _ at -> free_at_state at) obj.o_triggers

(* The live-object count is maintained at the four mutation points
   (add, remove, delete-mark, undelete-mark) so [stats] and [cardinal
   ~live:true] are O(1) instead of a heap scan. Each mutation routes to
   the oid's owning member first, so per-member counts stay exact. *)
let add_obj db obj =
  let db = Types.owner_db db obj.o_id in
  db.store.backend.sb_add obj;
  if not obj.o_deleted then db.store.n_live <- db.store.n_live + 1

let remove_obj db oid =
  let db = Types.owner_db db oid in
  match db.store.backend.sb_find oid with
  | None -> ()
  | Some o ->
    if not o.o_deleted then db.store.n_live <- db.store.n_live - 1;
    free_obj_slots o;
    db.store.backend.sb_remove oid

let mark_deleted db obj =
  if not obj.o_deleted then begin
    obj.o_deleted <- true;
    let db = Types.owner_db db obj.o_id in
    db.store.n_live <- db.store.n_live - 1
  end

let unmark_deleted db obj =
  if obj.o_deleted then begin
    obj.o_deleted <- false;
    let db = Types.owner_db db obj.o_id in
    db.store.n_live <- db.store.n_live + 1
  end

(* Member-local on purpose: [Persist.load_image] resets one member's
   slice before reinstalling it; group-wide resets walk the members. *)
let reset_heap db =
  db.store.backend.sb_reset ();
  Array.iter Hashtbl.reset db.store.soa;
  db.store.n_live <- 0

let find_obj db oid = (Types.owner_db db oid).store.backend.sb_find oid
let mem db oid = (Types.owner_db db oid).store.backend.sb_mem oid

let cardinal ?(live = false) db =
  match db.part with
  | None -> if live then db.store.n_live else db.store.backend.sb_cardinal ()
  | Some p ->
    Array.fold_left
      (fun acc m ->
        acc + if live then m.store.n_live else m.store.backend.sb_cardinal ())
      0 p.p_members

let live_obj db oid =
  match find_obj db oid with
  | Some o when not o.o_deleted -> o
  | Some _ -> ode_error "object @%d has been deleted" oid
  | None -> ode_error "no such object @%d" oid

let live_obj_opt db oid =
  match find_obj db oid with
  | Some o when not o.o_deleted -> Some o
  | Some _ | None -> None

let exists db oid =
  match find_obj db oid with Some o -> not o.o_deleted | None -> false

let class_of db oid = (live_obj db oid).o_class.k_name

(* Raw backend enumeration is deliberately {e member-local}: a
   partition member's WAL checkpoints snapshot only its own slice.
   Group-wide listings ([objects], [objects_of_class], [stats]) walk
   [members] explicitly; the merged-image writer in [Persist] does its
   own oid-order merge of the member slices. *)
let fold_objects f db init = db.store.backend.sb_fold f init
let iter_objects f db = db.store.backend.sb_iter f
let members db = match db.part with Some p -> p.p_members | None -> [| db |]

(* Enumeration contract: ascending oid, whatever the backend's internal
   order. Folding a hashtable (or a shard array of them) enumerates in
   hash order, which must never leak — commit/abort fan-out and persist
   snapshots would otherwise depend on the backend (or on the partition
   count). *)
let objects db =
  Array.fold_left
    (fun acc m ->
      fold_objects (fun o acc -> if o.o_deleted then acc else o.o_id :: acc) m
        acc)
    [] (members db)
  |> List.sort compare

let objects_of_class db cname =
  Array.fold_left
    (fun acc m ->
      fold_objects
        (fun o acc ->
          if (not o.o_deleted) && o.o_class.k_name = cname then o.o_id :: acc
          else acc)
        m acc)
    [] (members db)
  |> List.sort compare

let live_objects db =
  fold_objects (fun o acc -> if o.o_deleted then acc else o :: acc) db []
  |> List.sort (fun a b -> compare a.o_id b.o_id)

let get_field db oid name =
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_fields name with
  | Some v -> v
  | None -> ode_error "class %s has no field %s" obj.o_class.k_name name

(* ------------------------------------------------------------------ *)
(* Mask-evaluation environments                                        *)
(* ------------------------------------------------------------------ *)

let mask_env db obj : Mask.env =
  {
    var = (fun name -> Hashtbl.find_opt obj.o_fields name);
    deref =
      (fun oid fieldname ->
        match live_obj_opt db oid with
        | Some o -> Hashtbl.find_opt o.o_fields fieldname
        | None -> None);
    call =
      (fun name args ->
        match Hashtbl.find_opt db.schema.functions name with
        | Some f -> f db args
        | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
  }

(* A reusable posting-kernel scratch: same bindings as {!mask_env}, but
   the object is indirected through a ref cell so one environment (and
   its three closures) serves every post handled by a shard instead of
   being rebuilt — and reallocated — per event. *)
let make_scratch db =
  let sc_obj = ref None in
  let sc_env : Mask.env =
    {
      var =
        (fun name ->
          match !sc_obj with
          | Some o -> Hashtbl.find_opt o.o_fields name
          | None -> None);
      deref =
        (fun oid fieldname ->
          match live_obj_opt db oid with
          | Some o -> Hashtbl.find_opt o.o_fields fieldname
          | None -> None);
      call =
        (fun name args ->
          match Hashtbl.find_opt db.schema.functions name with
          | Some f -> f db args
          | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
    }
  in
  { sc_obj; sc_env; sc_codes = Array.make 16 (-1); sc_classified = 0;
    sc_skipped = 0; sc_transitions = 0; sc_slot_steps = 0; sc_word_steps = 0 }

let db_mask_env db : Mask.env =
  {
    var = (fun _ -> None);
    deref =
      (fun oid fieldname ->
        match live_obj_opt db oid with
        | Some o -> Hashtbl.find_opt o.o_fields fieldname
        | None -> None);
    call =
      (fun name args ->
        match Hashtbl.find_opt db.schema.functions name with
        | Some f -> f db args
        | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
  }

(* ------------------------------------------------------------------ *)
(* Event histories (§9)                                                *)
(* ------------------------------------------------------------------ *)

let enable_history db ~limit =
  if limit < 0 then ode_error "history limit must be >= 0";
  Array.iter (fun m -> m.store.history_limit <- limit) (members db)

let record_history db tx obj occurrence =
  if db.store.history_limit > 0 then begin
    obj.o_history <-
      { History.h_occurrence = occurrence; h_txn = tx.tx_id } :: obj.o_history;
    obj.o_history_len <- obj.o_history_len + 1;
    if obj.o_history_len > 2 * db.store.history_limit then begin
      obj.o_history <- History.truncate db.store.history_limit obj.o_history;
      obj.o_history_len <- db.store.history_limit
    end
  end

let object_history db oid =
  let obj = live_obj db oid in
  List.rev (History.truncate db.store.history_limit obj.o_history)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
}

(* Approximate heap cost of one collected §9 binding: a list cell plus a
   pair (3 words) and the formal's name; the bound value itself is shared
   with the posting arguments and not charged here. *)
let binding_bytes bindings =
  List.fold_left (fun acc (name, _) -> acc + 24 + String.length name) 0 bindings

let activation_bytes at =
  (8 * at_state_len at) + binding_bytes at.at_collected

(* Flat estimate of one pending timer's heap cost: the record's seven
   fields plus headers and the spec payload — close enough for the
   state-accounting purpose ([stats.state_bytes] counts pending timers
   so a leak shows up as monotone growth, see store.mli). *)
let timer_bytes = 144

(* Shadow copies a committed-mode trigger keeps alive through an open
   transaction's undo log (the §6 "state is part of the object"
   option doubles the state while a transaction is in flight). *)
let undo_state_bytes db =
  List.fold_left
    (fun acc tx ->
      List.fold_left
        (fun acc entry ->
          match entry with
          | U_trigger_state (_, copy) -> acc + (8 * Array.length copy)
          | U_trigger_collected (_, bindings) -> acc + binding_bytes bindings
          | U_timers_cancelled tms | U_timers_armed tms ->
            acc + (timer_bytes * List.length tms)
          | U_field _ | U_create _ | U_delete _ | U_trigger_active _
          | U_trigger_added _ -> acc)
        acc tx.tx_undo)
    0 db.txns.open_txns

let stats db =
  let n_active = ref 0 in
  let state_bytes = ref 0 in
  let n_timers = ref 0 in
  Array.iter
    (fun m ->
      iter_objects
        (fun obj ->
          if not obj.o_deleted then
            Hashtbl.iter
              (fun _ at ->
                if at.at_active then incr n_active;
                state_bytes := !state_bytes + activation_bytes at)
              obj.o_triggers)
        m;
      n_timers := !n_timers + Types.timerq_count m.wheel)
    (members db);
  Hashtbl.iter
    (fun _ at -> state_bytes := !state_bytes + activation_bytes at)
    db.engine.db_triggers;
  {
    n_objects = cardinal ~live:true db;
    n_classes = Hashtbl.length db.schema.classes;
    n_active_triggers = !n_active;
    n_timers = !n_timers;
    state_bytes =
      !state_bytes + (timer_bytes * !n_timers) + undo_state_bytes db;
  }

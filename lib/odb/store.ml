module Value = Ode_base.Value
module Mask = Ode_event.Mask
open Types

(* ------------------------------------------------------------------ *)
(* Backend signature                                                   *)
(* ------------------------------------------------------------------ *)

module type STORE = sig
  type t

  val add : t -> obj -> unit
  val find : t -> oid -> obj option
  val remove : t -> oid -> unit
  val reset : t -> unit
  val iter : (obj -> unit) -> t -> unit
  val fold : (obj -> 'a -> 'a) -> t -> 'a -> 'a
end

module Heap : STORE with type t = (oid, obj) Hashtbl.t = struct
  type t = (oid, obj) Hashtbl.t

  let add t o = Hashtbl.add t o.o_id o
  let find t oid = Hashtbl.find_opt t oid
  let remove t oid = Hashtbl.remove t oid
  let reset t = Hashtbl.reset t
  let iter f t = Hashtbl.iter (fun _ o -> f o) t
  let fold f t init = Hashtbl.fold (fun _ o acc -> f o acc) t init
end

(* ------------------------------------------------------------------ *)
(* Heap operations on the database                                     *)
(* ------------------------------------------------------------------ *)

let alloc_oid db =
  let oid = db.store.next_oid in
  db.store.next_oid <- oid + 1;
  oid

let new_obj k oid =
  let obj =
    {
      o_id = oid;
      o_class = k;
      o_fields = Hashtbl.create 8;
      o_triggers = Hashtbl.create 4;
      o_deleted = false;
      o_lock = Lock.Free;
      o_history = [];
      o_history_len = 0;
    }
  in
  List.iter (fun (name, v) -> Hashtbl.replace obj.o_fields name v) k.k_fields;
  obj

let add_obj db obj = Heap.add db.store.objects obj
let find_obj db oid = Heap.find db.store.objects oid

let live_obj db oid =
  match find_obj db oid with
  | Some o when not o.o_deleted -> o
  | Some _ -> ode_error "object @%d has been deleted" oid
  | None -> ode_error "no such object @%d" oid

let live_obj_opt db oid =
  match find_obj db oid with
  | Some o when not o.o_deleted -> Some o
  | Some _ | None -> None

let exists db oid =
  match find_obj db oid with Some o -> not o.o_deleted | None -> false

let class_of db oid = (live_obj db oid).o_class.k_name

let objects db =
  Heap.fold
    (fun o acc -> if o.o_deleted then acc else o.o_id :: acc)
    db.store.objects []
  |> List.sort compare

let objects_of_class db cname =
  Heap.fold
    (fun o acc ->
      if (not o.o_deleted) && o.o_class.k_name = cname then o.o_id :: acc
      else acc)
    db.store.objects []
  |> List.sort compare

let get_field db oid name =
  let obj = live_obj db oid in
  match Hashtbl.find_opt obj.o_fields name with
  | Some v -> v
  | None -> ode_error "class %s has no field %s" obj.o_class.k_name name

(* ------------------------------------------------------------------ *)
(* Mask-evaluation environments                                        *)
(* ------------------------------------------------------------------ *)

let mask_env db obj : Mask.env =
  {
    var = (fun name -> Hashtbl.find_opt obj.o_fields name);
    deref =
      (fun oid fieldname ->
        match live_obj_opt db oid with
        | Some o -> Hashtbl.find_opt o.o_fields fieldname
        | None -> None);
    call =
      (fun name args ->
        match Hashtbl.find_opt db.schema.functions name with
        | Some f -> f db args
        | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
  }

let db_mask_env db : Mask.env =
  {
    var = (fun _ -> None);
    deref =
      (fun oid fieldname ->
        match live_obj_opt db oid with
        | Some o -> Hashtbl.find_opt o.o_fields fieldname
        | None -> None);
    call =
      (fun name args ->
        match Hashtbl.find_opt db.schema.functions name with
        | Some f -> f db args
        | None -> raise (Mask.Eval_error ("unknown database function " ^ name)));
  }

(* ------------------------------------------------------------------ *)
(* Event histories (§9)                                                *)
(* ------------------------------------------------------------------ *)

let enable_history db ~limit =
  if limit < 0 then ode_error "history limit must be >= 0";
  db.store.history_limit <- limit

let record_history db tx obj occurrence =
  if db.store.history_limit > 0 then begin
    obj.o_history <-
      { History.h_occurrence = occurrence; h_txn = tx.tx_id } :: obj.o_history;
    obj.o_history_len <- obj.o_history_len + 1;
    if obj.o_history_len > 2 * db.store.history_limit then begin
      obj.o_history <- History.truncate db.store.history_limit obj.o_history;
      obj.o_history_len <- db.store.history_limit
    end
  end

let object_history db oid =
  let obj = live_obj db oid in
  List.rev (History.truncate db.store.history_limit obj.o_history)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
}

(* Approximate heap cost of one collected §9 binding: a list cell plus a
   pair (3 words) and the formal's name; the bound value itself is shared
   with the posting arguments and not charged here. *)
let binding_bytes bindings =
  List.fold_left (fun acc (name, _) -> acc + 24 + String.length name) 0 bindings

let activation_bytes at =
  (8 * Array.length at.at_state) + binding_bytes at.at_collected

(* Shadow copies a committed-mode trigger keeps alive through an open
   transaction's undo log (the §6 "state is part of the object"
   option doubles the state while a transaction is in flight). *)
let undo_state_bytes db =
  List.fold_left
    (fun acc tx ->
      List.fold_left
        (fun acc entry ->
          match entry with
          | U_trigger_state (_, copy) -> acc + (8 * Array.length copy)
          | U_trigger_collected (_, bindings) -> acc + binding_bytes bindings
          | U_field _ | U_create _ | U_delete _ | U_trigger_active _
          | U_trigger_added _ -> acc)
        acc tx.tx_undo)
    0 db.txns.open_txns

let stats db =
  let n_objects = ref 0 in
  let n_active = ref 0 in
  let state_bytes = ref 0 in
  Heap.iter
    (fun obj ->
      if not obj.o_deleted then begin
        incr n_objects;
        Hashtbl.iter
          (fun _ at ->
            if at.at_active then incr n_active;
            state_bytes := !state_bytes + activation_bytes at)
          obj.o_triggers
      end)
    db.store.objects;
  Hashtbl.iter
    (fun _ at -> state_bytes := !state_bytes + activation_bytes at)
    db.engine.db_triggers;
  {
    n_objects = !n_objects;
    n_classes = Hashtbl.length db.schema.classes;
    n_active_triggers = !n_active;
    n_timers = List.length db.wheel.timers;
    state_bytes = !state_bytes + undo_state_bytes db;
  }

(** An Ode-style active object database (paper §2, §5–§7).

    This is the substrate the paper's event machinery runs on: persistent
    objects with identity, classes with member functions and trigger
    declarations, flat transactions under object-level strict locking, a
    simulated clock for time events, and the event-posting pipeline of §5
    (basic events posted to objects, per-class automata advanced, fired
    triggers' actions executed inside the posting transaction; commit- and
    abort-events posted by a system transaction).

    {1 Conventions}

    - All object access happens inside a transaction; [after tbegin] is
      posted to an object lazily, immediately before the transaction's
      first access to it (§3.1).
    - A public member-function call on an object posts, in order:
      [before access], [before read]/[before update], [before f], the
      body, [after f], [after read]/[after update], [after access].
    - Trigger actions run immediately, as part of the transaction that
      posted the event. Actions of triggers fired by [after tcommit] /
      [after tabort] run in a {e system} transaction (§5). A trigger
      action may raise {!Tabort} to abort the surrounding transaction.
    - [before tcomplete] is posted repeatedly at commit until a round
      fires no triggers (§6); then the transaction commits.
    - Masks are evaluated against the database with {e no} events posted:
      conditions are required to be side-effect-free (§7).

    {1 Architecture}

    This module is a thin facade: the implementation is layered into
    [Schema] (compiled class/trigger definitions and dispatch indexes),
    [Store] (the object heap, behind a [STORE] backend signature),
    [Txn] (transactions, undo, locks), [Engine] (the posting pipeline),
    [Timewheel] (timers), and the pluggable durability layer — [Persist]
    (the ODE1 full-image codec and backend) and [Wal] (the
    write-ahead-log backend) — with the mutually-recursive state knot
    tied in [Types]. See docs/INTERNALS.md for the layer diagram and
    the allowed dependency direction. *)

module Value = Ode_base.Value

type t
type txn
type oid = int

exception Tabort
(** Raised by trigger actions (or user code) to abort the transaction —
    O++'s [tabort] statement. *)

exception Lock_conflict of oid
(** An incompatible lock request; the requesting transaction should
    abort. *)

exception Ode_error of string
(** Schema violations, use outside transactions, commit livelock, etc. *)

type method_kind = Read_only | Updating

(** {1 Schema definition} *)

type class_builder

val define_class :
  ?constructor:(t -> oid -> Value.t list -> unit) -> string -> class_builder
(** Start a class definition. The constructor body runs during
    {!create}, before [after create] is posted — the usual place to
    activate triggers. *)

val field : class_builder -> string -> Value.t -> class_builder
(** Declare a field with its default value. *)

val method_ :
  class_builder ->
  ?arity:int ->
  kind:method_kind ->
  string ->
  (t -> oid -> Value.t list -> Value.t) ->
  class_builder
(** Declare a public member function. [kind] drives the [read]/[update]
    basic events; [arity] (default: any) is checked at call time. *)

type fire_context = {
  fc_oid : oid;  (** the object the event was posted to *)
  fc_params : Value.t list;  (** activation-time trigger arguments *)
  fc_occurrence : Ode_event.Symbol.occurrence;
      (** the occurrence that completed the event — its [args] are the
          method parameters of the last basic event, usable by actions
          such as the paper's T2 [order(i)] *)
  fc_collected : (string * Value.t) list;
      (** the paper's §9 "incorporation of arguments into composite event
          specification": every formal declared by one of the trigger's
          logical events is bound to the argument of its most recent
          matching occurrence (rolled back on abort for [Committed]-mode
          triggers, reset on re-activation). *)
  fc_witnesses : (string * Value.t) list list option;
      (** [Some matches] for triggers declared with [~witnesses:true]:
          the full {!Ode_event.Provenance} of this firing — one binding
          environment per way the composite event matched. [None]
          otherwise. Witness tracking keeps growing partial-match state
          (it is not one word per object) and is not rolled back on
          abort nor persisted by {!save}. *)
}

val trigger :
  class_builder ->
  ?perpetual:bool ->
  ?mode:Ode_event.Detector.mode ->
  ?witnesses:bool ->
  string ->
  event:Ode_event.Expr.t ->
  action:(t -> fire_context -> unit) ->
  class_builder
(** Declare a trigger. The event specification is compiled to its
    automaton here — once per class (§5). [mode] selects whether the
    detection state observes the full history or only committed work
    (default [Full_history]); [perpetual] defaults to [false] (the
    trigger deactivates when it fires, §2). *)

val trigger_str :
  class_builder ->
  ?perpetual:bool ->
  ?mode:Ode_event.Detector.mode ->
  ?witnesses:bool ->
  string ->
  event:string ->
  action:(t -> fire_context -> unit) ->
  class_builder
(** Like {!trigger} but the event is parsed from O++ concrete syntax.
    Raises {!Ode_error} on a parse error. *)

val register_class : t -> class_builder -> unit
(** Install the class: methods, triggers (compiling their detectors) and
    the per-class dispatch index — a map from each basic-event kind to
    the trigger definitions whose alphabet can react to it, built once
    here so that posting an occurrence touches only those triggers
    instead of scanning every activation on the object (§5's O(1)
    per-trigger claim, made per-event). *)

val set_dispatch_index : t -> bool -> unit
(** Per-database switch (default true): when enabled, event posting
    consults the per-class / per-database dispatch index and touches
    only the triggers whose alphabet can contain the posted basic
    event; when disabled, the pre-index brute-force path is used —
    every active trigger on the object is snapshotted and classified
    per occurrence. Both paths are observably equivalent
    (property-tested in [test/test_dispatch.ml]). *)

val dispatch_index_enabled : t -> bool

val set_posting_kernel : t -> bool -> unit
(** Per-database switch (default true) for the compiled posting kernel:
    per-class candidate rows resolved through each object's dense
    activation slots, classification packed into one int code per
    distinct shared detector, and flat-transition-table stepping over
    the structure-of-arrays detection state. Only meaningful while the
    dispatch index is enabled; disabling falls back to the legacy
    indexed path, which is kept as the equivalence-test reference
    (property-tested in [test/test_dispatch.ml] and
    [test/test_shard.ml]). *)

val posting_kernel_enabled : t -> bool

val register_fun : t -> string -> (t -> Value.t list -> Value.t) -> unit
(** Register a database function callable from masks, e.g.
    [authorized(user())]. *)

(** {1 Database lifecycle} *)

type backend_spec = Store.spec
(** Which heap backend to instantiate: [`Heap] (one hashtable) or
    [`Sharded n] (n hashtables partitioned by oid, over which
    {!post_many} can parallelise its classify/step phase). Both are
    observably identical — same firings, same order, same {!save}
    bytes — per the {!Store} ordering contract. *)

type durability_spec = [ `Image | `Wal of Wal.config ]
(** Which durability backend to attach: [`Image] (the ODE1 full-image
    codec — {!save}/{!load} only, nothing written between saves) or
    [`Wal cfg] (a write-ahead log: every commit, abort, system
    transaction and clock advance appends a logical redo batch, group
    commits retire batches under [cfg]'s flush window, periodic
    snapshots truncate the log, and {!recover} rebuilds the database
    from snapshot + replay after a crash). Both present the same
    {!save}/{!load} surface and identical observable behaviour. *)

(** {2 The [Config] composition root}

    Every knob the database (and the [odes serve] network front door
    over it) accepts, gathered into one plain record. Historically the
    knobs accreted as five [create_db] optionals plus post-hoc setters
    ({!set_post_domains}, {!set_parallel_threshold},
    {!set_domain_clamp}, {!set_posting_kernel},
    [Ode_obs.Registry.set_timing]) plus three environment variables
    parsed in three different places; {!Config.t} is now the single
    source of truth. The old optionals and setters remain as thin,
    documented shims over it. *)
module Config : sig
  type backpressure = Block | Drop
  (** What a full per-subscriber firing outbox does to the server:
      [Block] stalls posting until the client drains (lossless),
      [Drop] discards the newest firing and counts it. *)

  type serve = {
    host : string;  (** bind address (default ["127.0.0.1"]) *)
    port : int;  (** TCP port; [0] binds an ephemeral port *)
    batch_window_ms : int;
        (** how long incoming [post]s may linger before the server
            flushes them as one [post_many] batch; [0] flushes at the
            end of every read burst *)
    max_batch : int;
        (** flush regardless of window once this many events are
            pending *)
    outbox_bound : int;
        (** per-subscriber cap on queued firing notifications *)
    backpressure : backpressure;
        (** default policy for [subscribe] requests that name none *)
    max_frame_bytes : int;  (** cap on one wire frame's payload *)
  }
  (** The network front door's settings — carried here so [odes serve]
      is configured by the same record that configures the engine it
      serves. Ignored by {!create_db} itself. *)

  type t = {
    start_time : int64;
    max_tcomplete_rounds : int;
    trace_capacity : int;
    backend : backend_spec;
    durability : durability_spec;
    partitions : int;
        (** engine members slicing the database by oid ([oid mod n]);
            1 = the classic single engine. See [Engine_group]. *)
    post_domains : int;
    domain_clamp : bool;
    parallel_threshold : int;
    dispatch_index : bool;
    posting_kernel : bool;
    timer_wheel : bool;
        (** pending-timer representation (default true): the
            hierarchical hashed timing wheel — O(1) arm and cancel at
            any queue depth. [false] selects the reference sorted list
            the wheel is pinned against (ODE_TIMER_QUEUE=list); both
            deliver in identical (due, seq) order and serialize to
            identical bytes. See [Timewheel]. *)
    timing : bool;  (** force latency histograms on — see
        [Ode_obs.Registry.set_timing] *)
    serve : serve;
  }

  val default_serve : serve
  (** [127.0.0.1:7912], 2 ms batch window, 8192-event max batch,
      1024-firing outboxes, [Block] backpressure, 16 MiB frames. *)

  val default : t
  (** The documented defaults, environment ignored: heap backend,
      image durability, 1 partition, 1 post domain (clamped,
      threshold 32), dispatch index and posting kernel on, timing
      off, {!default_serve}. *)

  val of_env : unit -> t
  (** {!default} with the four environment overrides applied — the
      one parser for all of them, raising {!Ode_error} with the
      offending variable named on any malformed value:

      - [ODE_STORE_BACKEND=heap|sharded|sharded:<n>] sets [backend];
      - [ODE_DURABILITY=image|wal|wal:<flush_ms>] sets [durability]
        ([wal] in a fresh temporary directory — how CI runs the whole
        suite under the log);
      - [ODE_PARTITIONS=<n>] sets [partitions] (how CI runs the whole
        suite partitioned);
      - [ODE_POST_DOMAINS=<n>] sets [post_domains = n], disables
        [domain_clamp] and zeroes [parallel_threshold] (the test/CI
        override that forces the parallel machinery on even on a
        small box). *)
end

val create_db :
  ?config:Config.t ->
  ?start_time:int64 -> ?max_tcomplete_rounds:int -> ?trace_capacity:int ->
  ?backend:backend_spec -> ?durability:durability_spec -> unit -> t
(** Build a database from [config] (default: {!Config.of_env} — so a
    bare [create_db ()] honours the environment exactly as before the
    [Config] facade existed). The remaining optionals are compatibility
    shims: each one, when given, overrides its [config] field.
    [max_tcomplete_rounds] (default 1000, must be >= 1) bounds the §6
    [before tcomplete] fixpoint at commit; when a commit's rounds
    exceed it, {!commit} raises {!Ode_error} naming the round count
    instead of livelocking. [trace_capacity] (default 1024, must be
    >= 1) sizes the observability trace ring — see {!observe}. The
    chosen durability backend is attached (its [dur_attach]) before
    this returns: a WAL database starts logging from its very first
    commit. *)

val config_summary : t -> string
(** One operator-readable line describing what this instance {e is}:
    backend, durability, partition count, domain/threshold settings,
    dispatch/kernel switches, observability state and the clock — e.g.
    ["backend=sharded:8 durability=wal:/var/ode partitions=2 \
     post_domains=4 domain_clamp=on parallel_threshold=32 \
     dispatch_index=on posting_kernel=on obs=off timing=off \
     clock=0ms"].
    Surfaced by [odec schema] and the server's [status] verb.
    {!backend_name} and {!durability_name} are its two components kept
    as standalone accessors. *)

val backend_name : t -> string
(** ["heap"] or ["sharded:<n>"] — the [backend=] component of
    {!config_summary}. *)

val durability_name : t -> string
(** ["image"] or ["wal:<dir>"] — the [durability=] component of
    {!config_summary}. *)

val partitions : t -> int
(** How many engine members slice this database (1 unless
    [Config.partitions] asked for a group) — the [partitions=]
    component of {!config_summary}. Partitioning is observably
    transparent: firings, their order, counters and {!image_bytes}
    are identical at any partition count. *)

(** {1 Observability}

    Every database carries an {!Ode_obs.Registry.t}: pipeline counters
    (events posted per basic kind, dispatch-index work skipped,
    automaton transitions, firings, tcomplete rounds, undo entries,
    timer deliveries, lock conflicts), nanosecond latency histograms for
    [post]/[call]/[commit]/trigger actions, and a bounded ring of
    structured trace spans with pluggable sinks
    ({!Ode_obs.Trace.add_sink}). The registry is created {e disabled}
    and every probe is guarded, so the posting hot path pays one boolean
    load per probe site when off (the E10-obs-overhead experiment keeps
    this within noise of the E9-dispatch baseline). *)

val observe : t -> Ode_obs.Registry.t
(** The database's registry — inspect counters and histograms, read or
    clear the trace ring, attach sinks. *)

val set_observability : t -> bool -> unit
(** Turn the probes on or off (off at {!create_db}). Equivalent to
    [Ode_obs.Registry.set_enabled (observe db)]. *)

val now : t -> int64

val advance_clock : t -> int64 -> unit
(** Advance simulated time by a span (ms), firing due time events in
    order. Each timer delivery runs in its own system transaction. *)

val advance_to : t -> int64 -> unit

val set_timer_wheel : t -> bool -> unit
(** Switch the pending-timer representation in place (all partition
    members): [true] the hierarchical timing wheel, [false] the
    reference sorted list. The pending set, delivery order and
    serialized bytes are unchanged — only arm/cancel/advance costs
    move. Normally set once via {!Config.t.timer_wheel} /
    ODE_TIMER_QUEUE. *)

val timer_wheel_enabled : t -> bool

val save : t -> string -> unit
(** Persist all objects (fields, trigger activations and their automaton
    states), pending timers, the object counter and the clock, as one
    ODE1 image — whatever the attached durability backend (a WAL
    checkpoint-and-truncates as a side effect, so the image and the log
    never disagree). Fails if a transaction is open. Not saved: the
    schema itself (closures are code), database-scope trigger
    activations (re-activate after {!load}), the history log,
    provenance partial matches, and the {!enable_history} setting. *)

val load : t -> string -> unit
(** Restore a {!save}d image into a database whose classes have been
    registered again. Existing objects are discarded. *)

val image_bytes : t -> string
(** The exact bytes {!save} would write, in memory — the canonical
    state fingerprint: two databases in the same logical state (same
    objects, activations, automaton states, timers, counters, clock)
    produce equal bytes, whatever their store or durability backends.
    Usable with transactions open (unlike {!save}). *)

val recover : t -> unit
(** WAL backend only: rebuild the database state from the newest
    snapshot plus every intact redo batch in its log — call it after
    {!create_db} pointed [`Wal] at a directory left behind by a crashed
    process, once the classes are registered again. A damaged tail
    (torn write, bad checksum) stops the replay at the last intact
    batch; recovery then re-baselines the directory with a fresh
    snapshot so the damage cannot resurface. Raises {!Ode_error} on the
    image backend, with a transaction open, or when the directory holds
    no state. *)

val sync_durability : t -> unit
(** Force any buffered redo batches to disk now, regardless of the
    group-commit window. No-op on the image backend. *)

val close_durability : t -> unit
(** Flush and detach the durability backend: later commits emit nothing.
    No-op on the image backend; idempotent. *)

(** {1 Transactions} *)

val begin_txn : t -> txn
(** Also makes the new transaction current. Multiple transactions may be
    open (interleaved) at once; see {!switch_txn}. *)

val switch_txn : t -> txn -> unit
val current_txn : t -> txn option
val txn_id : txn -> int

val commit : t -> txn -> (unit, [ `Aborted ]) result
(** Runs the [before tcomplete] rounds, then commits and posts
    [after tcommit] via a system transaction. If a trigger action raises
    {!Tabort} during the rounds, the transaction is aborted instead and
    [Error `Aborted] is returned. *)

val abort : t -> txn -> unit
(** Posts [before tabort], undoes all effects (fields, created/deleted
    objects, committed-mode trigger states), releases locks, then posts
    [after tabort] via a system transaction. *)

val with_txn : t -> (txn -> 'a) -> ('a, [ `Aborted ]) result
(** [begin_txn]; run; [commit]. {!Tabort} (from an action or the body)
    aborts and yields [Error `Aborted]; {!Lock_conflict} likewise aborts
    and re-raises; any other exception aborts and re-raises. *)

(** {1 Objects} *)

val create : t -> string -> Value.t list -> oid
(** Instantiate a class: allocate identity, set field defaults, run the
    constructor, post [after create]. *)

val delete : t -> oid -> unit
(** Post [before delete], then delete. *)

val exists : t -> oid -> bool
val class_of : t -> oid -> string

val objects : t -> oid list
(** Live objects, ascending oid. *)

val objects_of_class : t -> string -> oid list

val call : t -> oid -> string -> Value.t list -> Value.t
(** Invoke a public member function, posting the §3.1 basic events around
    the body. *)

val has_method : t -> oid -> string -> bool

val apply_fun : t -> string -> Value.t list -> Value.t
(** Call a function registered with {!register_fun}; raises {!Ode_error}
    if unknown. *)

(** {1 Batch event posting}

    {!post_many} drives the §5 pipeline over a whole batch of basic
    events in three phases: touch/lock/history sequentially in batch
    order, then classify + automaton step with one task per heap shard
    (parallel across up to {!post_domains} domains on a [`Sharded]
    backend — safe because detection state is per-object and the batch
    is partitioned by shard), then all firing strictly sequentially.
    The outcome, firing order included, is bit-identical whatever the
    domain count or backend. *)

val post_many :
  t -> (oid * Ode_event.Symbol.basic * Value.t list) list -> int
(** Post a batch of basic events inside the current transaction. Every
    event steps against the detection state as of the start of the
    batch (same-object events step in batch order); fired actions all
    run after the whole batch has stepped, in batch order then
    declaration order. Dead or missing oids are skipped. Returns the
    number of firings. Requires an active transaction. *)

val set_post_domains : t -> int -> unit
(** Domain count for {!post_many}'s step phase (default 1, i.e. fully
    sequential). At use the count is clamped to the backend's shard
    count and — while {!domain_clamp} holds — to
    [Domain.recommended_domain_count ()], so configuring more domains
    than the machine has cores cannot regress a run. Raises
    {!Ode_error} if < 1. *)

val post_domains : t -> int

val set_parallel_threshold : t -> int -> unit
(** Minimum batch size (default 32) below which {!post_many} steps
    sequentially even when {!post_domains} > 1 — smaller batches lose
    more to the pool rendezvous than they gain from parallelism. Set 0
    to always take the parallel machinery. Raises {!Ode_error} if
    negative. *)

val parallel_threshold : t -> int

val set_domain_clamp : t -> bool -> unit
(** Whether the effective domain count is clamped to
    [Domain.recommended_domain_count ()] (default [true]). Turn off
    only to force oversubscription, e.g. to exercise the multi-domain
    machinery deterministically on a small machine — the
    [ODE_POST_DOMAINS] environment variable does exactly that at
    {!create_db}: [ODE_POST_DOMAINS=n] sets {!set_post_domains} [n],
    disables the clamp and zeroes {!set_parallel_threshold}. *)

val domain_clamp : t -> bool

val shutdown_pool : t -> unit
(** Join and discard the cached domain pool, if any; idempotent. Call
    before discarding a database that ran multi-domain batches. *)

val get_field : t -> oid -> string -> Value.t
(** Raw field read for method bodies and examples; posts no events. *)

val set_field : t -> oid -> string -> Value.t -> unit
(** Raw field write (undo-logged); posts no events. Must run inside a
    transaction. *)

(** {1 Triggers} *)

val activate : t -> oid -> string -> Value.t list -> unit
(** Activate a trigger by name with parameters — the paper's
    "invoking its name just as an ordinary member function". Time events
    in its specification are scheduled from the activation instant. *)

val deactivate : t -> oid -> string -> unit
val is_active : t -> oid -> string -> bool

val trigger_state_words : t -> oid -> string -> int
(** Number of state integers this activation stores — 1 for any trigger
    whose event has no composite masks (the §5 claim). *)

val trigger_state : t -> oid -> string -> int array
(** A copy of the activation's automaton state, for diagnostics and
    tests. *)

(** {1 Firing notification}

    The notification surface is subscription-based: register a callback
    with {!subscribe_firings} and every subsequent firing — object or
    database scope — is delivered to it synchronously from inside the
    posting pipeline, in subscription order, immediately before the
    fired trigger's action runs. *)

type firing = {
  f_trigger : string;
  f_class : string;  (** ["<database>"] for database-scope triggers *)
  f_oid : oid;
  f_at : int64;
  f_txn : int;
}

type subscription

val subscribe_firings : t -> (firing -> unit) -> subscription
(** Register a firing callback. Callbacks run synchronously inside the
    posting operation (and therefore inside its transaction); they
    should not raise — an exception propagates out of the posting call.
    Subscriptions are not persisted by {!save} but do survive
    {!load}. *)

val unsubscribe : t -> subscription -> unit
(** Remove a subscription; idempotent. Unsubscribing from inside a
    callback takes effect immediately (no further deliveries, including
    later subscribers' deliveries of the same firing batch). *)

val subscriber_count : t -> int
(** Live subscriptions — what the server's [status] verb reports, and
    what the connection-leak tests pin (a disconnected network client
    must take its subscription with it). *)

(** {1 Database-scope triggers (§3 "events have a scope")}

    Some events are not local to one object: schema modification and
    object creation/deletion across the database. Database-scope triggers
    observe, with the same event algebra:

    - [after defclass] — a class was registered (argument: class name);
    - [after create] — any object was created (arguments: oid, class);
    - [before delete] — any object is being deleted (arguments: oid,
      class).

    They are always [Full_history] (no per-transaction rollback: schema
    events may happen outside transactions) and their actions run in
    whatever transaction — possibly none — posted the event. *)

val db_trigger :
  t ->
  ?perpetual:bool ->
  ?witnesses:bool ->
  string ->
  event:Ode_event.Expr.t ->
  action:(t -> fire_context -> unit) ->
  unit
(** [witnesses] (default false) tracks full per-match provenance exactly
    as for object-scope triggers: the action's [fc_witnesses] becomes
    [Some matches]. Reset when the trigger is re-activated. *)

val db_trigger_str :
  t ->
  ?perpetual:bool ->
  ?witnesses:bool ->
  string ->
  event:string ->
  action:(t -> fire_context -> unit) ->
  unit

val activate_db_trigger : t -> string -> Value.t list -> unit
val deactivate_db_trigger : t -> string -> unit

(** {1 Event histories (§9)} *)

val enable_history : t -> limit:int -> unit
(** Keep the last [limit] basic events posted to each object (the {e
    true} history of §6: aborted transactions' events included). Query
    with {!object_history} and {!History}. *)

val object_history : t -> oid -> History.t
(** Oldest first; empty when recording is disabled. *)

(** {1 Statistics} *)

type stats = {
  n_objects : int;
  n_classes : int;
  n_active_triggers : int;
  n_timers : int;
  state_bytes : int;
      (** Detection-state footprint: 8 bytes per automaton state word of
          every activation (object- and database-scope), plus
          [24 + length name] bytes per collected §9 binding, plus the
          committed-mode shadow copies pinned by open transactions' undo
          logs (state-word and binding charges alike). See
          {!Store.stats} for the precise accounting. *)
}

val stats : t -> stats

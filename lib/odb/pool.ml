(* A one-job-at-a-time domain pool built around a reusable barrier.

   Workers are spawned once and kept; a job is published by bumping the
   [generation] atomic, and workers notice it by spinning briefly on
   that atomic before falling back to parking on [work_ready] — so a
   batch-per-millisecond caller pays two atomic transitions per batch
   instead of a mutex broadcast and a condvar sleep/wake per worker.
   Completion is a countdown on [pending]: the caller spins briefly,
   then parks on [work_done], which only the last finishing worker
   signals (one mutex acquisition per batch, off the hot path).

   Work distribution is either {e dynamic} ([run]: task indices claimed
   through the [next] atomic, caller and workers draining one shared
   queue) or {e static} ([run_static]: participant [w] of [size] owns
   tasks [w, w + size, ...]). The engine's step phase uses the static
   form: with tasks = shards, the shard -> domain map is a pure
   function of the pool size, so every batch pins the same shards (and
   their scratch buffers) to the same domain — no work-stealing
   migrates a shard's state across domains mid-run. *)

type t = {
  size : int;  (* parallelism including the calling thread *)
  mutable workers : unit Domain.t list;  (* size - 1 spawned domains *)
  mu : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable n_tasks : int;
  mutable static : bool;  (* this job's distribution mode *)
  next : int Atomic.t;  (* dynamic-mode claim counter *)
  generation : int Atomic.t;  (* bumped once per run; spun on *)
  pending : int Atomic.t;  (* workers still inside the current job *)
  sleepers : int Atomic.t;  (* workers parked on [work_ready] *)
  stop : bool Atomic.t;
  mutable failure : exn option;  (* first exception raised by a task *)
}

let size t = t.size

(* How long a participant polls an atomic before parking on a condvar.
   Long enough to cover the fan-out/fan-in of a typical batch when
   every participant has a core; short enough that an oversubscribed
   box (more domains than cores) quickly yields the CPU to whoever
   holds the work. *)
let spin_budget = 512

let record_failure t e =
  Mutex.lock t.mu;
  if t.failure = None then t.failure <- Some e;
  Mutex.unlock t.mu

(* Claim and run tasks until the queue is empty. A raising task records
   the first failure and the drain continues: sibling tasks' effects
   (undo segments, counters) must still be produced so the caller can
   merge them before re-raising. *)
let drain t f =
  let rec go () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < t.n_tasks then begin
      (try f i with e -> record_failure t e);
      go ()
    end
  in
  go ()

(* Static mode: participant [w] runs its own strided subset, no shared
   claim counter. Same failure contract as [drain]. *)
let run_chunk t f w =
  let i = ref w in
  while !i < t.n_tasks do
    (try f !i with e -> record_failure t e);
    i := !i + t.size
  done

(* Spin until the generation moves past [seen] (or the pool stops);
   false = budget exhausted, caller should park. *)
let rec spin_for_job t seen budget =
  if Atomic.get t.generation <> seen || Atomic.get t.stop then true
  else if budget = 0 then false
  else begin
    Domain.cpu_relax ();
    spin_for_job t seen (budget - 1)
  end

let worker t w () =
  let rec loop seen =
    if not (spin_for_job t seen spin_budget) then begin
      Mutex.lock t.mu;
      Atomic.incr t.sleepers;
      while Atomic.get t.generation = seen && not (Atomic.get t.stop) do
        Condition.wait t.work_ready t.mu
      done;
      Atomic.decr t.sleepers;
      Mutex.unlock t.mu
    end;
    if not (Atomic.get t.stop) then begin
      let gen = Atomic.get t.generation in
      (* the job fields were written before the generation bump; the
         atomic read above orders these plain reads after them *)
      (match t.job with
      | Some f -> if t.static then run_chunk t f w else drain t f
      | None -> ());
      if Atomic.fetch_and_add t.pending (-1) = 1 then begin
        (* last finisher: the caller may already be parked on
           [work_done] — one mutex round-trip per batch, not per task *)
        Mutex.lock t.mu;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mu
      end;
      loop gen
    end
  in
  loop 0

let create ~size =
  let size = max 1 size in
  if size > 128 then invalid_arg "Pool.create: size beyond the domain ceiling";
  let t =
    {
      size;
      workers = [];
      mu = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      n_tasks = 0;
      static = false;
      next = Atomic.make 0;
      generation = Atomic.make 0;
      pending = Atomic.make 0;
      sleepers = Atomic.make 0;
      stop = Atomic.make false;
      failure = None;
    }
  in
  t.workers <- List.init (size - 1) (fun w -> Domain.spawn (worker t w));
  t

(* Wait for the workers' countdown: spin first, park only if they are
   slow (descheduled, or the box has fewer cores than domains). *)
let rec await_pending t budget =
  if Atomic.get t.pending > 0 then
    if budget > 0 then begin
      Domain.cpu_relax ();
      await_pending t (budget - 1)
    end
    else begin
      Mutex.lock t.mu;
      while Atomic.get t.pending > 0 do
        Condition.wait t.work_done t.mu
      done;
      Mutex.unlock t.mu
    end

let run_mode t ~tasks ~static f =
  if tasks > 0 then
    if t.size = 1 || tasks = 1 then begin
      (* inline fast path: same failure contract, no synchronisation *)
      t.failure <- None;
      t.n_tasks <- tasks;
      t.static <- static;
      if static then run_chunk t f 0
      else begin
        Atomic.set t.next 0;
        drain t f
      end;
      match t.failure with None -> () | Some e -> raise e
    end
    else begin
      if Atomic.get t.stop then invalid_arg "Pool.run: pool is shut down";
      t.job <- Some f;
      t.n_tasks <- tasks;
      t.static <- static;
      t.failure <- None;
      Atomic.set t.next 0;
      Atomic.set t.pending (t.size - 1);
      (* publish: the generation bump makes the plain writes above
         visible to any worker that observes it *)
      Atomic.incr t.generation;
      if Atomic.get t.sleepers > 0 then begin
        (* a worker racing into its park re-checks the generation under
           the condvar's guard, so a missed broadcast here is benign *)
        Mutex.lock t.mu;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mu
      end;
      (* the caller is participant [size - 1] *)
      if static then run_chunk t f (t.size - 1) else drain t f;
      await_pending t spin_budget;
      t.job <- None;
      match t.failure with None -> () | Some e -> raise e
    end

let run t ~tasks f = run_mode t ~tasks ~static:false f
let run_static t ~tasks f = run_mode t ~tasks ~static:true f

let shutdown t =
  Mutex.lock t.mu;
  let ws = t.workers in
  t.workers <- [];
  Atomic.set t.stop true;
  (* wake spinners (generation moved) and sleepers (broadcast) alike *)
  Atomic.incr t.generation;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mu;
  List.iter Domain.join ws

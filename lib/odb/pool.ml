(* A one-job-at-a-time domain pool. Workers park on [work_ready] between
   jobs; a job is published by bumping [generation], and completion is
   tracked with [active] + [work_done]. Task indices are claimed through
   the [next] atomic, so the caller and the workers drain one shared
   queue without further coordination. *)

type t = {
  size : int;  (* parallelism including the calling thread *)
  mutable workers : unit Domain.t list;  (* size - 1 spawned domains *)
  mu : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable n_tasks : int;
  next : int Atomic.t;
  mutable active : int;  (* workers still draining the current job *)
  mutable generation : int;  (* bumped once per run *)
  mutable stop : bool;
  mutable failure : exn option;  (* first exception raised by a task *)
}

let size t = t.size

let record_failure t e =
  Mutex.lock t.mu;
  if t.failure = None then t.failure <- Some e;
  Mutex.unlock t.mu

(* Claim and run tasks until the queue is empty. A raising task records
   the first failure and the drain continues: sibling tasks' effects
   (undo segments, counters) must still be produced so the caller can
   merge them before re-raising. *)
let drain t f =
  let rec go () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < t.n_tasks then begin
      (try f i with e -> record_failure t e);
      go ()
    end
  in
  go ()

let worker t () =
  let rec loop seen_gen =
    Mutex.lock t.mu;
    while (not t.stop) && t.generation = seen_gen do
      Condition.wait t.work_ready t.mu
    done;
    if t.stop then Mutex.unlock t.mu
    else begin
      let gen = t.generation in
      let job = t.job in
      Mutex.unlock t.mu;
      (match job with Some f -> drain t f | None -> ());
      Mutex.lock t.mu;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mu;
      loop gen
    end
  in
  loop 0

let create ~size =
  let size = max 1 size in
  if size > 128 then invalid_arg "Pool.create: size beyond the domain ceiling";
  let t =
    {
      size;
      workers = [];
      mu = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      n_tasks = 0;
      next = Atomic.make 0;
      active = 0;
      generation = 0;
      stop = false;
      failure = None;
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let run t ~tasks f =
  if tasks > 0 then
    if t.size = 1 || tasks = 1 then begin
      (* inline fast path: same failure contract, no synchronisation *)
      t.failure <- None;
      t.n_tasks <- tasks;
      Atomic.set t.next 0;
      drain t f;
      match t.failure with None -> () | Some e -> raise e
    end
    else begin
      Mutex.lock t.mu;
      if t.stop then begin
        Mutex.unlock t.mu;
        invalid_arg "Pool.run: pool is shut down"
      end;
      t.job <- Some f;
      t.n_tasks <- tasks;
      Atomic.set t.next 0;
      t.failure <- None;
      t.active <- t.size - 1;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mu;
      drain t f;
      Mutex.lock t.mu;
      while t.active > 0 do
        Condition.wait t.work_done t.mu
      done;
      t.job <- None;
      let fail = t.failure in
      Mutex.unlock t.mu;
      match fail with None -> () | Some e -> raise e
    end

let shutdown t =
  Mutex.lock t.mu;
  let ws = t.workers in
  t.workers <- [];
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mu;
  List.iter Domain.join ws

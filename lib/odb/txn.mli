(** Transaction layer: begin/commit/abort, the undo log, object-level
    strict locking, and the §6 [before tcomplete] fixpoint.

    Depends on {!Store} (heap lookups for lock release and event
    targets) and {!Types}. Commit and abort must {e post} events —
    [before tcomplete], [before tabort], [after tcommit]/[after tabort]
    — which live a layer up in {!Engine}; those two upward calls are
    inverted through the hook refs below, which [Engine] fills at load
    time, keeping the compile-time dependency strictly
    Engine -> Txn. *)

module Value = Ode_base.Value
open Types

(** {1 Engine hooks} *)

val set_post_hook :
  (db -> txn -> obj -> Ode_event.Symbol.basic -> Value.t list -> bool) -> unit
(** Install the event-posting pipeline (set once, by [Engine] at load
    time). The function posts one basic event to one object inside the
    given transaction and returns whether any trigger fired. *)

val set_system_post_hook : (db -> oid list -> Ode_event.Symbol.basic -> unit) -> unit
(** Install the system-transaction poster used for [after tcommit] /
    [after tabort] (§5). *)

(** {1 Lifecycle} *)

val require_txn : db -> txn
(** The current transaction; raises {!Types.Ode_error} if none is
    active. *)

val begin_txn : db -> txn
(** Open a user transaction and make it current. *)

val begin_system : db -> txn
(** Open a system transaction (transaction events are not posted for
    it). Does {e not} make it current — the caller saves and restores
    [current] around the system work. *)

val switch_txn : db -> txn -> unit
val current_txn : db -> txn option
val txn_id : txn -> int

(** {1 Locks and undo} *)

val acquire : db -> txn -> obj -> Lock.request -> unit
(** Raises {!Types.Lock_conflict} on an incompatible request. *)

val release_locks : db -> txn -> unit
val detach : db -> txn -> unit
val apply_undo : db -> undo_entry -> unit

val merge_undo_segments : txn -> undo_entry list list -> unit
(** Merge the per-shard undo segments accumulated by a parallel
    classify/step phase ([Engine.post_many]) into [tx_undo]. Each
    segment is newest-first; segments are concatenated in the order
    given (ascending shard index), which is semantically free — they
    touch disjoint objects — and fixed for determinism. Must be called
    from the sequential orchestrator, after the parallel phase joins and
    {e before} anything can abort the transaction, so a rollback always
    sees the complete log. *)

(** {1 Commit and abort} *)

val abort : db -> txn -> unit
(** Posts [before tabort], undoes all effects, releases locks, then
    posts [after tabort] via a system transaction. *)

val commit : db -> txn -> (unit, [ `Aborted ]) result
(** Runs the [before tcomplete] rounds (bounded by the database's
    [max_tcomplete_rounds]; {!Types.Ode_error} on livelock), then
    commits and posts [after tcommit] via a system transaction. *)

val with_txn : db -> (txn -> 'a) -> ('a, [ `Aborted ]) result

module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Mask = Ode_event.Mask
module Detector = Ode_event.Detector
module Registry = Ode_obs.Registry
module Trace = Ode_obs.Trace
open Types

(* ------------------------------------------------------------------ *)
(* Observability probes                                                 *)
(* ------------------------------------------------------------------ *)

(* Every probe below is guarded by the caller on
   [Registry.enabled db.obs]; with observability off the pipeline pays
   one boolean load per probe site (E10-obs-overhead in EXPERIMENTS.md
   keeps this honest against the E9-dispatch baseline). *)

(* Memoized per database: formatting the key with [Format.asprintf] on
   every enabled post would dominate the probe cost. Only the sequential
   posting phases call this, so the table needs no lock. *)
let kind_name db basic =
  match Hashtbl.find_opt db.engine.kind_names basic with
  | Some s -> s
  | None ->
    let s = Format.asprintf "%a" Symbol.pp_basic_key (Symbol.basic_key basic) in
    Hashtbl.add db.engine.kind_names basic s;
    s

(* Database-scope activations only — object scope reads the maintained
   [o_n_active] counter instead of folding the activation table. *)
let count_active triggers =
  Hashtbl.fold (fun _ at n -> if at.at_active then n + 1 else n) triggers 0

(* Counters for one dispatch decision: how many candidates reach the
   classifier, and how many active triggers the index pruned away. *)
let record_dispatch obs ~indexed ~n_active ~n_candidates =
  Registry.add obs Registry.Classified n_candidates;
  if indexed then
    Registry.add obs Registry.Index_skipped (max 0 (n_active - n_candidates))

(* ------------------------------------------------------------------ *)
(* Dispatch-index configuration                                        *)
(* ------------------------------------------------------------------ *)

(* Per-database switch in [engine_state.use_dispatch_index] (default
   true); the ablation bench and the equivalence property test flip it
   per database to force the brute-force reference path. *)
let set_dispatch_index db flag = db.engine.use_dispatch_index <- flag
let dispatch_index_enabled db = db.engine.use_dispatch_index

let use_index db = db.engine.use_dispatch_index

(* ------------------------------------------------------------------ *)
(* Posting-kernel configuration                                       *)
(* ------------------------------------------------------------------ *)

(* The compiled kernel (candidate rows, packed classification codes,
   flat-table stepping over the SoA state blocks) is the default path.
   Turning it off falls back to the legacy indexed path — kept both as
   the equivalence-test reference and as the only path when the
   dispatch index itself is disabled. *)
let set_posting_kernel db flag = db.engine.use_posting_kernel <- flag
let posting_kernel_enabled db = db.engine.use_posting_kernel
let use_kernel db = db.engine.use_posting_kernel && use_index db

(* Per-lane scratch buffers, built on first kernel post. A lane is a
   (partition member, shard) pair — just a shard when unpartitioned —
   and the lane count is fixed at database creation, so the array never
   resizes. Each scratch is built against its lane's member (lookups
   route group-wide either way; the siting keeps lane tasks touching
   only their member's slice). *)
let ensure_scratch db =
  if Array.length db.engine.scratch = 0 then
    db.engine.scratch <-
      Array.init (Store.lanes db) (fun l ->
          Store.make_scratch (Store.member_of_lane db l));
  db.engine.scratch

(* Retire a scratch's accumulated counter bumps to the registry: one
   atomic add per counter per post phase (per shard task under
   [post_many]) instead of one per candidate. *)
let flush_scratch_counters obs sc =
  if sc.sc_classified <> 0 then begin
    Registry.add obs Registry.Classified sc.sc_classified;
    sc.sc_classified <- 0
  end;
  if sc.sc_skipped <> 0 then begin
    Registry.add obs Registry.Index_skipped sc.sc_skipped;
    sc.sc_skipped <- 0
  end;
  if sc.sc_transitions <> 0 then begin
    Registry.add obs Registry.Transitions sc.sc_transitions;
    sc.sc_transitions <- 0
  end;
  if sc.sc_slot_steps <> 0 then begin
    Registry.add obs Registry.Slot_transitions sc.sc_slot_steps;
    sc.sc_slot_steps <- 0
  end;
  if sc.sc_word_steps <> 0 then begin
    Registry.add obs Registry.Word_transitions sc.sc_word_steps;
    sc.sc_word_steps <- 0
  end

(* ------------------------------------------------------------------ *)
(* Classification cache                                                *)
(* ------------------------------------------------------------------ *)

(* Classify the occurrence at most once per distinct compiled detector:
   triggers declaring the same event share a detector (Detector.make
   ~share) and reuse the cached result. The cache is per occurrence; a
   short assoc list on physical identity beats hashing for the handful of
   candidates a post touches. It is capped so that a post touching many
   {e distinct} detectors (only possible on the brute-force reference
   path) stays linear instead of walking an ever-longer list. *)
let classify_cache_cap = 16

let classify_cached cache detector ~env occurrence =
  let rec find n = function
    | [] -> Error n
    | (d, c) :: rest -> if d == detector then Ok c else find (n + 1) rest
  in
  match find 0 !cache with
  | Ok c -> c
  | Error n ->
    let c = Detector.classify detector ~env occurrence in
    if n < classify_cache_cap then cache := (detector, c) :: !cache;
    c

(* ------------------------------------------------------------------ *)
(* Candidate-trigger selection                                         *)
(* ------------------------------------------------------------------ *)

let candidate_triggers db obj (basic : Symbol.basic) =
  if use_index db then
    match Hashtbl.find_opt obj.o_class.k_dispatch (Symbol.basic_key basic) with
    | None -> []
    | Some defs ->
      List.filter_map
        (fun (d : trigger_def) ->
          match Hashtbl.find_opt obj.o_triggers d.t_name with
          | Some at when at.at_active -> Some at
          | Some _ | None -> None)
        defs
  else
    Hashtbl.fold
      (fun _ at acc -> if at.at_active then at :: acc else acc)
      obj.o_triggers []

let db_candidate_triggers db (basic : Symbol.basic) =
  if use_index db then
    match Hashtbl.find_opt db.schema.db_dispatch (Symbol.basic_key basic) with
    | None -> []
    | Some defs ->
      List.filter_map
        (fun (d : trigger_def) ->
          match Hashtbl.find_opt db.engine.db_triggers d.t_name with
          | Some at when at.at_active -> Some at
          | Some _ | None -> None)
        defs
  else
    Hashtbl.fold
      (fun _ at acc -> if at.at_active then at :: acc else acc)
      db.engine.db_triggers []

(* ------------------------------------------------------------------ *)
(* Firing notification: subscriptions                                  *)
(* ------------------------------------------------------------------ *)

(* The only notification surface. Every firing — object or database
   scope — flows through here to the subscribers in subscription
   order. *)
let notify_firing db (f : firing) =
  let obs = db.obs in
  if Registry.enabled obs then begin
    Registry.incr obs Registry.Firings;
    Registry.span obs
      (Trace.Fired
         {
           scope = (if f.f_class = "<database>" then Trace.Db else Trace.Obj f.f_oid);
           trigger = f.f_trigger;
           txn = f.f_txn;
           at_ms = f.f_at;
         })
  end;
  List.iter (fun s -> if s.s_active then s.s_fn f) db.engine.subscribers

let subscribe_firings db fn =
  let s = { s_id = db.engine.next_sub_id; s_fn = fn; s_active = true } in
  db.engine.next_sub_id <- s.s_id + 1;
  db.engine.subscribers <- db.engine.subscribers @ [ s ];
  s

let unsubscribe db s =
  s.s_active <- false;
  db.engine.subscribers <-
    List.filter (fun x -> not (x == s)) db.engine.subscribers

(* ------------------------------------------------------------------ *)
(* The three pipeline phases                                           *)
(* ------------------------------------------------------------------ *)

(* §5 observes that detection state is one integer per active trigger
   per object, so the pipeline factors into:

     1. {e classify} — map the occurrence to a symbol of each candidate's
        alphabet, once per distinct shared detector. Read-only (guard
        masks may be evaluated; detection state is never touched).
     2. {e step} — advance each candidate activation's automaton and
        collect §9 bindings. Independent per activation; this is the
        phase [post_many] fans out across domains, one shard per task.
     3. {e fire} — deactivate one-shots and run fired actions, strictly
        sequential, in batch then declaration order.

   [post] runs all three inline on one occurrence; [post_many] runs
   phase 1+2 per shard (possibly in parallel) and phase 3 once. *)

let mask_error at msg =
  if at.at_def.t_class = "<database>" then
    ode_error "database trigger %s: mask evaluation failed: %s"
      at.at_def.t_name msg
  else
    ode_error "trigger %s.%s: mask evaluation failed: %s" at.at_def.t_class
      at.at_def.t_name msg

(* Phase 1. Returns candidates paired with their classification, in
   candidate (declaration) order. Classification happens strictly before
   any stepping: masks are required to be side-effect-free (§7), so the
   hoisting is unobservable. *)
let classify_phase ~env occurrence candidates =
  let cache = ref [] in
  List.map
    (fun (at : active_trigger) ->
      let c =
        try classify_cached cache at.at_def.t_detector ~env occurrence
        with Mask.Eval_error msg -> mask_error at msg
      in
      (at, c))
    candidates

(* Phase 2, for one activation. Committed-mode snapshots go to [undo] —
   the caller's segment, merged into the transaction log afterwards (a
   per-shard segment under [post_many]). Mutates only this activation's
   state, so distinct activations step safely in parallel; the
   observability emissions are atomic (counters) or mutexed (spans). *)
let step_activation db ~undo ~scope (at : active_trigger) ~env c occurrence =
  let obs = db.obs in
  let on = Registry.enabled obs in
  let detector = at.at_def.t_detector in
  try
    let relevant = Detector.is_relevant c in
    if relevant && detector.Detector.mode = Detector.Committed then begin
      (* an irrelevant occurrence provably changes neither the automaton
         state nor the collected bindings, so the undo copies are only
         taken here *)
      undo := U_trigger_state (at, at_state_copy at) :: !undo;
      undo := U_trigger_collected (at, at.at_collected) :: !undo
    end;
    if relevant then
      List.iter
        (fun (name, v) ->
          at.at_collected <- (name, v) :: List.remove_assoc name at.at_collected)
        (Detector.collect_classified detector c occurrence);
    (match at.at_provenance with
    | Some prov ->
      at.at_last_witnesses <- Ode_event.Provenance.post prov ~env occurrence
    | None -> ());
    let old_top = if on then at_top_state at else 0 in
    let r =
      match at.at_state with
      | S_words w -> Detector.post_classified detector w ~env c
      | S_slot (blk, slot) ->
        Detector.post_classified_slot detector blk.blk_state
          (slot * blk.blk_words) ~env c
    in
    if on && relevant then begin
      Registry.incr obs Registry.Transitions;
      Registry.incr obs
        (match at.at_state with
        | S_slot _ -> Registry.Slot_transitions
        | S_words _ -> Registry.Word_transitions);
      Registry.span obs
        (Trace.Advanced
           { scope; trigger = at.at_def.t_name; old_state = old_top;
             new_state = at_top_state at })
    end;
    r
  with Mask.Eval_error msg -> mask_error at msg

(* ------------------------------------------------------------------ *)
(* The compiled posting kernel                                         *)
(* ------------------------------------------------------------------ *)

(* The per-event path with everything hoisted to registration or
   activation time: candidate resolution is one hashtable probe into the
   class's prebuilt [krow]; classification runs once per distinct shared
   detector, producing a packed int code in the shard scratch's buffer;
   stepping a mask-free detector is one flat-table load on its SoA
   block. The helpers are top-level and tail-recursive (not closures)
   and the counters accumulate in the scratch, so a steady-state post
   that fires nothing allocates nothing beyond the occurrence and the
   dispatch key.

   Semantics are bit-identical to the legacy indexed path: candidates in
   declaration order, classification errors raised before any automaton
   steps (matching [classify_phase]'s hoisting), identical undo
   snapshots, collection merges, provenance posts and span emissions. *)

let unclassified = min_int

let rec count_candidates (defs : trigger_def array)
    (o_acts : active_trigger option array) i acc =
  if i >= Array.length defs then acc
  else
    let acc =
      match o_acts.(defs.(i).t_index) with
      | Some at when at.at_active -> acc + 1
      | Some _ | None -> acc
    in
    count_candidates defs o_acts (i + 1) acc

(* Classification pass: walk candidates in declaration order, classify
   each distinct detector on first use. Mask failures are attributed to
   the first candidate using the detector, exactly as the legacy
   [classify_phase]. *)
let rec classify_pass sc (row : krow) (o_acts : active_trigger option array)
    occurrence i =
  if i < Array.length row.kr_defs then begin
    (match o_acts.(row.kr_defs.(i).t_index) with
    | Some at when at.at_active ->
      let j = row.kr_det_of.(i) in
      if sc.sc_codes.(j) = unclassified then
        sc.sc_codes.(j) <-
          (try Detector.classify_code row.kr_dets.(j) ~env:sc.sc_env occurrence
           with Mask.Eval_error msg -> mask_error at msg)
    | Some _ | None -> ());
    classify_pass sc row o_acts occurrence (i + 1)
  end

(* Step pass: advance each active candidate, accumulating the fired
   set in reverse (steady state: no cons). Mirrors [step_activation]. *)
let rec step_pass db ~undo ~on sc (row : krow) obj occurrence i acc =
  if i >= Array.length row.kr_defs then List.rev acc
  else
    match obj.o_acts.(row.kr_defs.(i).t_index) with
    | Some at when at.at_active ->
      let j = row.kr_det_of.(i) in
      let det = row.kr_dets.(j) in
      let code = sc.sc_codes.(j) in
      let relevant = Detector.code_relevant code in
      let old_top = if on then at_top_state at else 0 in
      let fired_now =
        try
          if relevant && det.Detector.mode = Detector.Committed then begin
            undo := U_trigger_state (at, at_state_copy at) :: !undo;
            undo := U_trigger_collected (at, at.at_collected) :: !undo
          end;
          if relevant then
            (match Detector.collect_code det code occurrence with
            | [] -> ()
            | bindings ->
              List.iter
                (fun (name, v) ->
                  at.at_collected <-
                    (name, v) :: List.remove_assoc name at.at_collected)
                bindings);
          (match at.at_provenance with
          | Some prov ->
            at.at_last_witnesses <-
              Ode_event.Provenance.post prov ~env:sc.sc_env occurrence
          | None -> ());
          match at.at_state with
          | S_slot (blk, slot) ->
            Detector.post_code_slot det blk.blk_state (slot * blk.blk_words)
              ~env:sc.sc_env code
          | S_words w -> Detector.post_code det w ~env:sc.sc_env code
        with Mask.Eval_error msg -> mask_error at msg
      in
      if on && relevant then begin
        sc.sc_transitions <- sc.sc_transitions + 1;
        (match at.at_state with
        | S_slot _ -> sc.sc_slot_steps <- sc.sc_slot_steps + 1
        | S_words _ -> sc.sc_word_steps <- sc.sc_word_steps + 1);
        Registry.span db.obs
          (Trace.Advanced
             { scope = Trace.Obj obj.o_id; trigger = at.at_def.t_name;
               old_state = old_top; new_state = at_top_state at })
      end;
      step_pass db ~undo ~on sc row obj occurrence (i + 1)
        (if fired_now then at :: acc else acc)
    | Some _ | None ->
      step_pass db ~undo ~on sc row obj occurrence (i + 1) acc

(* One occurrence through the kernel. Returns the fired activations in
   declaration order; committed-mode undo snapshots go to [undo];
   counter bumps accumulate in [sc] for the caller to flush once per
   phase. *)
let kernel_post_one db ~undo ~on sc obj (occurrence : Symbol.occurrence) =
  match
    Hashtbl.find_opt obj.o_class.k_rows (Symbol.basic_key occurrence.basic)
  with
  | None ->
    if on then sc.sc_skipped <- sc.sc_skipped + obj.o_n_active;
    []
  | Some row ->
    (* dispatch accounting first — complete before a mask can blow up
       mid-classification, matching the legacy [record_dispatch] site *)
    let n_cand = count_candidates row.kr_defs obj.o_acts 0 0 in
    if on then begin
      sc.sc_classified <- sc.sc_classified + n_cand;
      sc.sc_skipped <- sc.sc_skipped + (obj.o_n_active - n_cand)
    end;
    if n_cand = 0 then []
    else begin
      let n_dets = Array.length row.kr_dets in
      if Array.length sc.sc_codes < n_dets then
        sc.sc_codes <- Array.make (max 16 (2 * n_dets)) unclassified
      else Array.fill sc.sc_codes 0 n_dets unclassified;
      (* the ref retains the last posted object of the shard until the
         next post — deliberate: re-wrapping per call is the only
         allocation this assignment costs, and clearing it afterwards
         would need a protect closure *)
      sc.sc_obj := Some obj;
      classify_pass sc row obj.o_acts occurrence 0;
      step_pass db ~undo ~on sc row obj occurrence 0 []
    end

(* ------------------------------------------------------------------ *)
(* The firing pipeline                                                 *)
(* ------------------------------------------------------------------ *)

let log_firing db tx (at : active_trigger) obj =
  notify_firing db
    {
      f_trigger = at.at_def.t_name;
      f_class = at.at_def.t_class;
      f_oid = obj.o_id;
      f_at = db.wheel.clock_ms;
      f_txn = tx.tx_id;
    }

(* Run one fired action. The span is emitted whenever observability is
   on; the clock is only read — and the histogram only fed — when
   timing has a consumer ([Registry.timing]), so an enabled registry
   without a sink costs no clock reads here. *)
let run_action db (at : active_trigger) ~scope ctx =
  let obs = db.obs in
  if not (Registry.enabled obs) then at.at_def.t_action db ctx
  else if Registry.timing obs then begin
    let t0 = Registry.now_ns () in
    at.at_def.t_action db ctx;
    let ns = Registry.now_ns () - t0 in
    Registry.record_ns obs Registry.Action ns;
    Registry.span obs
      (Trace.Action_ran { scope; trigger = at.at_def.t_name; ns })
  end
  else begin
    at.at_def.t_action db ctx;
    Registry.span obs
      (Trace.Action_ran { scope; trigger = at.at_def.t_name; ns = 0 })
  end

(* Phase 2 of the pipeline: deactivate one-shot triggers, log and run the
   actions of the set that fired. *)
let post_fired db tx obj occurrence fired =
  List.iter
    (fun at ->
      if not at.at_def.t_perpetual then begin
        if at.at_def.t_detector.Detector.mode = Detector.Committed then
          tx.tx_undo <- U_trigger_active (Some obj, at, at.at_active) :: tx.tx_undo;
        set_trigger_active (Some obj) at false
      end;
      log_firing db tx at obj;
      run_action db at ~scope:(Trace.Obj obj.o_id)
        {
          fc_oid = obj.o_id;
          fc_params = at.at_params;
          fc_occurrence = occurrence;
          fc_collected = at.at_collected;
          fc_witnesses =
            (if at.at_def.t_witnesses then Some at.at_last_witnesses else None);
        })
    fired;
  fired <> []

(* The §5 monitoring pipeline: advance the automaton of every active
   trigger the occurrence can concern (per the dispatch index), collect
   the set that fired, then execute their actions (order unspecified in
   the paper; we use declaration order). Returns whether anything
   fired. *)
let post db tx obj (basic : Symbol.basic) args =
  let obs = db.obs in
  let on = Registry.enabled obs in
  let timed = Registry.timing obs in
  let t0 = if timed then Registry.now_ns () else 0 in
  let occurrence = { Symbol.basic; args; at = db.wheel.clock_ms } in
  Store.record_history db tx obj occurrence;
  if on then begin
    Registry.incr obs Registry.Posts;
    Registry.incr_kind obs (kind_name db basic);
    Registry.span obs
      (Trace.Posted
         { scope = Trace.Obj obj.o_id; basic = kind_name db basic; txn = tx.tx_id;
           at_ms = occurrence.Symbol.at })
  end;
  let result =
    if use_kernel db then begin
      let sc = (ensure_scratch db).(Store.lane_of db obj.o_id) in
      let undo = ref [] in
      let merge () =
        if !undo <> [] then begin
          tx.tx_undo <- !undo @ tx.tx_undo;
          undo := []
        end
      in
      let fired =
        match kernel_post_one db ~undo ~on sc obj occurrence with
        | fired ->
          merge ();
          if on then flush_scratch_counters obs sc;
          fired
        | exception e ->
          merge ();
          if on then flush_scratch_counters obs sc;
          raise e
      in
      post_fired db tx obj occurrence fired
    end
    else begin
      let candidates = candidate_triggers db obj basic in
      if on then
        record_dispatch obs ~indexed:(use_index db) ~n_active:obj.o_n_active
          ~n_candidates:(List.length candidates);
      match candidates with
      | [] -> false
      | candidates ->
        let env = Store.mask_env db obj in
        let classified = classify_phase ~env occurrence candidates in
        let undo = ref [] in
        let merge () =
          if !undo <> [] then begin
            tx.tx_undo <- !undo @ tx.tx_undo;
            undo := []
          end
        in
        (* step phase; the undo segment is merged even when a mask blows
           up mid-walk, so an abort still restores the already-stepped
           committed-mode candidates *)
        let fired =
          match
            List.filter
              (fun (at, c) ->
                step_activation db ~undo ~scope:(Trace.Obj obj.o_id) at ~env c
                  occurrence)
              classified
          with
          | stepped ->
            merge ();
            List.map fst stepped
          | exception e ->
            merge ();
            raise e
        in
        post_fired db tx obj occurrence fired
    end
  in
  if timed then Registry.record_ns obs Registry.Post (Registry.now_ns () - t0);
  result

(* Packed-code classification with the same once-per-distinct-detector
   sharing (and first-user mask-failure attribution) as
   [classify_cached], for the partition forwarding path below. *)
let classify_code_cached cache detector ~env occurrence =
  let rec find n = function
    | [] -> Error n
    | (d, c) :: rest -> if d == detector then Ok c else find (n + 1) rest
  in
  match find 0 !cache with
  | Ok c -> c
  | Error n ->
    let c = Detector.classify_code detector ~env occurrence in
    if n < classify_cache_cap then cache := (detector, c) :: !cache;
    c

(* Step one database-scope activation from a forwarded packed code —
   [step_activation] with the classification already collapsed to an
   int. Database triggers are always Full_history mode, so no undo
   snapshots are ever due; every probe mirrors [step_activation]
   exactly (the partition-equivalence suite pins the counters). *)
let step_db_code db (at : active_trigger) ~env code occurrence =
  let obs = db.obs in
  let on = Registry.enabled obs in
  let det = at.at_def.t_detector in
  try
    let relevant = Detector.code_relevant code in
    if relevant then
      (match Detector.collect_code det code occurrence with
      | [] -> ()
      | bindings ->
        List.iter
          (fun (name, v) ->
            at.at_collected <-
              (name, v) :: List.remove_assoc name at.at_collected)
          bindings);
    (match at.at_provenance with
    | Some prov ->
      at.at_last_witnesses <- Ode_event.Provenance.post prov ~env occurrence
    | None -> ());
    let old_top = if on then at_top_state at else 0 in
    let r =
      match at.at_state with
      | S_words w -> Detector.post_code det w ~env code
      | S_slot (blk, slot) ->
        Detector.post_code_slot det blk.blk_state (slot * blk.blk_words) ~env
          code
    in
    if on && relevant then begin
      Registry.incr obs Registry.Transitions;
      Registry.incr obs
        (match at.at_state with
        | S_slot _ -> Registry.Slot_transitions
        | S_words _ -> Registry.Word_transitions);
      Registry.span obs
        (Trace.Advanced
           { scope = Trace.Db; trigger = at.at_def.t_name;
             old_state = old_top; new_state = at_top_state at })
    end;
    r
  with Mask.Eval_error msg -> mask_error at msg

let post_db db (basic : Symbol.basic) args =
  let obs = db.obs in
  let on = Registry.enabled obs in
  let txn_id = match db.txns.current with Some tx -> tx.tx_id | None -> 0 in
  if on then begin
    Registry.incr obs Registry.Db_posts;
    Registry.incr_kind obs (kind_name db basic);
    Registry.span obs
      (Trace.Posted
         { scope = Trace.Db; basic = kind_name db basic; txn = txn_id;
           at_ms = db.wheel.clock_ms })
  end;
  let candidates = db_candidate_triggers db basic in
  if on then
    record_dispatch obs ~indexed:(use_index db)
      ~n_active:(count_active db.engine.db_triggers)
      ~n_candidates:(List.length candidates);
  match candidates with
  | [] -> ()
  | candidates ->
    let occurrence = { Symbol.basic; args; at = db.wheel.clock_ms } in
    let affected = match args with Value.Oid o :: _ -> o | _ -> 0 in
    let fired =
      match db.part with
      | None ->
        let env = Store.db_mask_env db in
        let classified = classify_phase ~env occurrence candidates in
        (* database triggers are always Full_history mode, so the step
           phase takes no undo snapshots; the throwaway segment keeps
           one code path *)
        List.filter_map
          (fun (at, c) ->
            if
              step_activation db ~undo:(ref []) ~scope:Trace.Db at ~env c
                occurrence
            then Some at
            else None)
          classified
      | Some _ ->
        (* Partitioned: the cross-partition composite path. The event
           is classified {e at its origin} — the member owning the
           affected oid, whose mask environment sees that member's
           slice directly (dereferences still route group-wide) — into
           one packed int code per distinct detector, and the codes are
           forwarded to the facade-owned automaton slots and stepped
           there. Same classify-all-then-step-all hoisting as
           [classify_phase]. *)
        let origin = Types.owner_db db affected in
        let env = Store.db_mask_env origin in
        let cache = ref [] in
        let coded =
          List.map
            (fun (at : active_trigger) ->
              let code =
                try
                  classify_code_cached cache at.at_def.t_detector ~env
                    occurrence
                with Mask.Eval_error msg -> mask_error at msg
              in
              (at, code))
            candidates
        in
        List.filter_map
          (fun (at, code) ->
            if step_db_code db at ~env code occurrence then Some at else None)
          coded
    in
    List.iter
      (fun at ->
        if not at.at_def.t_perpetual then set_trigger_active None at false;
        notify_firing db
          {
            f_trigger = at.at_def.t_name;
            f_class = "<database>";
            f_oid = affected;
            f_at = db.wheel.clock_ms;
            f_txn = txn_id;
          };
        run_action db at ~scope:Trace.Db
          {
            fc_oid = affected;
            fc_params = at.at_params;
            fc_occurrence = occurrence;
            fc_collected = at.at_collected;
            fc_witnesses =
              (if at.at_def.t_witnesses then Some at.at_last_witnesses else None);
          })
      fired

(* ------------------------------------------------------------------ *)
(* Database-scope trigger activation (§3)                              *)
(* ------------------------------------------------------------------ *)

let activate_db_trigger db name params =
  match Schema.find_db_trigger db name with
  | None -> ode_error "no database trigger %s" name
  | Some def -> (
    match Hashtbl.find_opt db.engine.db_triggers name with
    | Some at ->
      (* database-scope activations always own their word vector — the
         SoA blocks are per-shard, and the database scope has none *)
      at.at_state <- S_words (Detector.initial def.t_detector);
      at.at_collected <- [];
      at.at_provenance <-
        (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
         else None);
      at.at_last_witnesses <- [];
      at.at_active <- true;
      at.at_epoch <- at.at_epoch + 1;
      at.at_params <- params
    | None ->
      Hashtbl.add db.engine.db_triggers name
        {
          at_def = def;
          at_params = params;
          at_state = S_words (Detector.initial def.t_detector);
          at_collected = [];
          at_provenance =
            (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
             else None);
          at_last_witnesses = [];
          at_active = true;
          at_epoch = 0;
        })

let deactivate_db_trigger db name =
  match Hashtbl.find_opt db.engine.db_triggers name with
  | Some at -> at.at_active <- false
  | None -> ()

(* Class registration announces itself on the database scope. *)
let register_class db b =
  Schema.register_class db b;
  post_db db
    (Symbol.Method (After, "defclass"))
    [ Value.String (Schema.builder_name b) ]

(* ------------------------------------------------------------------ *)
(* System transactions                                                 *)
(* ------------------------------------------------------------------ *)

(* A system transaction's redo batch must cover its fan-out targets
   too: [post] delivers to them without [touch], so they never enter
   [tx_accessed], yet their automatons advanced. Order-preserving
   union: fan-out targets first, then the accessed set the actions
   grew. *)
let union_oids oids accessed =
  let seen = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.replace seen o ()) oids;
  oids
  @ List.filter
      (fun o ->
        if Hashtbl.mem seen o then false
        else begin
          Hashtbl.replace seen o ();
          true
        end)
      accessed

(* Post a transaction event to every object the finished transaction
   accessed, inside a fresh system transaction (§5: commit/abort events
   belong to no user transaction). A [Tabort] raised by an action there
   aborts only the system transaction. *)
let system_post db oids basic =
  let sys = Txn.begin_system db in
  let saved_current = db.txns.current in
  db.txns.current <- Some sys;
  let finish () =
    db.txns.current <- saved_current;
    (* [Txn.detach] would reset current; restore by hand afterwards *)
    db.txns.open_txns <- List.filter (fun t -> not (t == sys)) db.txns.open_txns
  in
  (try
     List.iter
       (fun oid ->
         match Store.live_obj_opt db oid with
         | Some obj -> ignore (post db sys obj basic [])
         | None -> ())
       oids;
     sys.tx_status <- Committed;
     Txn.release_locks db sys;
     finish ()
   with
  | Tabort ->
    (* [Txn.abort] emitted a batch for [sys.tx_accessed]; the union
       batch below additionally captures the fan-out targets whose
       full-history advances survived the undo *)
    Txn.abort db sys;
    finish ()
  | e ->
    Txn.abort db sys;
    finish ();
    db.durability.dur_commit db (union_oids oids (List.rev sys.tx_accessed @ List.rev sys.tx_dirty));
    raise e);
  db.durability.dur_commit db (union_oids oids (List.rev sys.tx_accessed @ List.rev sys.tx_dirty))

(* Deliver one time-event occurrence to an object, inside a system
   transaction so fired actions can mutate objects transactionally. *)
let deliver_time_event db oid spec =
  match Store.live_obj_opt db oid with
  | Some obj ->
    let sys = Txn.begin_system db in
    let saved = db.txns.current in
    db.txns.current <- Some sys;
    (try
       ignore (post db sys obj (Symbol.Time spec) []);
       sys.tx_status <- Committed;
       Txn.release_locks db sys
     with Tabort -> Txn.abort db sys);
    db.txns.open_txns <- List.filter (fun t -> not (t == sys)) db.txns.open_txns;
    db.txns.current <- saved;
    db.durability.dur_commit db (union_oids [ oid ] (List.rev sys.tx_accessed @ List.rev sys.tx_dirty))
  | None -> ()

(* Wire the upward calls: Txn's commit/abort and Timewheel's delivery
   post through the pipeline defined above. *)
let () =
  Txn.set_post_hook post;
  Txn.set_system_post_hook system_post;
  Timewheel.set_deliver_hook deliver_time_event

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

(* Lazy [after tbegin]: posted to an object immediately before the
   transaction's first access to it (§3.1(4)). *)
(* First-touch test via the [tx_seen] hash mirror: O(1) per access where
   the old [List.mem tx.tx_accessed] walk made a transaction touching n
   objects quadratic. [tx_accessed] itself is kept (and stays the only
   ordered record) for the commit fixpoint, lock release and the
   transaction-event fan-outs, which all need deterministic first-access
   order. *)
let touch db tx obj =
  if not (Hashtbl.mem tx.tx_seen obj.o_id) then begin
    Hashtbl.add tx.tx_seen obj.o_id ();
    tx.tx_accessed <- obj.o_id :: tx.tx_accessed;
    if not tx.tx_system then ignore (post db tx obj Symbol.Tbegin [])
  end

(* ------------------------------------------------------------------ *)
(* Batch posting: post_many and the domain pool                         *)
(* ------------------------------------------------------------------ *)

let set_post_domains db n =
  if n < 1 then ode_error "post_domains must be >= 1 (got %d)" n;
  db.engine.post_domains <- n

let post_domains db = db.engine.post_domains

let set_parallel_threshold db n =
  if n < 0 then ode_error "parallel_threshold must be >= 0 (got %d)" n;
  db.engine.parallel_threshold <- n

let parallel_threshold db = db.engine.parallel_threshold

let set_domain_clamp db flag = db.engine.clamp_domains <- flag
let domain_clamp db = db.engine.clamp_domains

let shutdown_pool db =
  match db.engine.pool with
  | Some p ->
    db.engine.pool <- None;
    Pool.shutdown p
  | None -> ()

(* The pool is lazily built and cached on the database; resized (torn
   down and respawned) only when [set_post_domains] changed the target
   size since the last batch. *)
let ensure_pool db ~size =
  match db.engine.pool with
  | Some p when Pool.size p = size -> p
  | Some _ | None ->
    shutdown_pool db;
    let p = Pool.create ~size in
    db.engine.pool <- Some p;
    p

(* Post a batch of basic events in one sweep of the three-phase
   pipeline. Phase 0 (here) and phase 3 (firing) are strictly
   sequential in {e batch order}; phases 1+2 (classify + step) run one
   task per shard — in parallel across up to [post_domains db] domains
   on a sharded backend — which is safe because a shard task only
   mutates detection state of objects it owns (§5: one automaton per
   trigger per object) and never touches the heap structurally.

   Batch semantics: every event in the batch is classified and stepped
   against the detection state {e as of the start of the batch's step
   phase}; fired actions all run after the whole batch has stepped.
   Events addressed to the same object step in batch order. The result
   is bit-identical — firing order included — whatever the domain count
   or backend, and equals the 1-domain sequential sweep by
   construction. Dead or missing oids are skipped, like [system_post].
   Returns the number of firings. *)
let post_many_nonempty db items =
  let tx = Txn.require_txn db in
  let obs = db.obs in
  let on = Registry.enabled obs in
  let timed = Registry.timing obs in
  let t0 = if timed then Registry.now_ns () else 0 in
  let kernel = use_kernel db in
  let scratch = if kernel then ensure_scratch db else [||] in
  (* Phase 0 — sequential, batch order: resolve targets, first-touch
     [after tbegin], write locks, §9 history, Posted probes. *)
  let resolved =
    List.filter_map
      (fun (oid, basic, args) ->
        match Store.live_obj_opt db oid with
        | None -> None
        | Some obj ->
          touch db tx obj;
          (* a transaction re-posting to an object it already holds
             exclusively skips the acquire round-trip *)
          (match obj.o_lock with
          | Lock.Exclusive holder when holder = tx.tx_id -> ()
          | Lock.Free | Lock.Shared _ | Lock.Exclusive _ ->
            Txn.acquire db tx obj Lock.Write);
          let occurrence = { Symbol.basic; args; at = db.wheel.clock_ms } in
          Store.record_history db tx obj occurrence;
          if on then begin
            Registry.incr obs Registry.Posts;
            Registry.incr_kind obs (kind_name db basic);
            Registry.span obs
              (Trace.Posted
                 { scope = Trace.Obj obj.o_id; basic = kind_name db basic;
                   txn = tx.tx_id; at_ms = occurrence.Symbol.at })
          end;
          Some (obj, occurrence))
      items
  in
  let resolved = Array.of_list resolved in
  let n = Array.length resolved in
  let nsh = Store.lanes db in
  (* Still phase 0: route each event to its lane's queue (owner member
     × member shard; just the shard when unpartitioned) — a counting
     sort of item indices into reusable engine buffers, one int per
     event and no closures — so a lane task walks only its own events
     instead of filtering the whole batch. *)
  let eng = db.engine in
  if Array.length eng.q_off < nsh + 1 then begin
    eng.q_off <- Array.make (nsh + 1) 0;
    eng.q_cur <- Array.make nsh 0
  end;
  if Array.length eng.q_items < n then
    eng.q_items <- Array.make (max 64 (2 * n)) 0;
  let q_off = eng.q_off
  and q_cur = eng.q_cur
  and q_items = eng.q_items in
  Array.fill q_off 0 (nsh + 1) 0;
  for i = 0 to n - 1 do
    let obj, _ = resolved.(i) in
    let s = Store.lane_of db obj.o_id in
    q_off.(s + 1) <- q_off.(s + 1) + 1
  done;
  for s = 0 to nsh - 1 do
    q_off.(s + 1) <- q_off.(s + 1) + q_off.(s);
    q_cur.(s) <- q_off.(s)
  done;
  for i = 0 to n - 1 do
    let obj, _ = resolved.(i) in
    let s = Store.lane_of db obj.o_id in
    q_items.(q_cur.(s)) <- i;
    q_cur.(s) <- q_cur.(s) + 1
  done;
  (* Phases 1+2 — one task per shard, each sweeping its queue in batch
     order; fired sets land in a per-item slot (disjoint writes),
     committed-mode undo snapshots in a per-shard segment.
     [Fun.protect] flushes the segment even when a mask blows up
     mid-shard, so the merge below always sees every snapshot that was
     taken. *)
  let fired = Array.make n [] in
  let segments = Array.make nsh [] in
  let step_shard s =
    let undo = ref [] in
    let lo = q_off.(s) and hi = q_off.(s + 1) in
    if kernel then
      (* kernel sweep: the shard task owns its scratch; counters batch
         there and flush once per task, so the inner loop's only shared
         writes are the disjoint [fired] slots *)
      let sc = scratch.(s) in
      Fun.protect
        ~finally:(fun () ->
          segments.(s) <- !undo;
          if on then flush_scratch_counters obs sc)
        (fun () ->
          for j = lo to hi - 1 do
            let i = q_items.(j) in
            let obj, occurrence = resolved.(i) in
            fired.(i) <- kernel_post_one db ~undo ~on sc obj occurrence
          done)
    else
      Fun.protect
        ~finally:(fun () -> segments.(s) <- !undo)
        (fun () ->
          for j = lo to hi - 1 do
            let i = q_items.(j) in
            let obj, occurrence = resolved.(i) in
            let basic = occurrence.Symbol.basic in
            let candidates = candidate_triggers db obj basic in
            if on then
              record_dispatch obs ~indexed:(use_index db)
                ~n_active:obj.o_n_active
                ~n_candidates:(List.length candidates);
            match candidates with
            | [] -> ()
            | candidates ->
              let env = Store.mask_env db obj in
              let classified = classify_phase ~env occurrence candidates in
              fired.(i) <-
                List.map fst
                  (List.filter
                     (fun (at, c) ->
                       step_activation db ~undo ~scope:(Trace.Obj obj.o_id) at
                         ~env c occurrence)
                     classified)
          done)
  in
  (* Effective parallelism: never more domains than shards; by default
     never more than the box has cores (oversubscription buys only
     contention — [set_domain_clamp] opts out for tests); and below the
     batch threshold the pool barrier costs more than it amortizes, so
     small batches step inline on the caller. *)
  let domains =
    let d = min db.engine.post_domains nsh in
    let d =
      if db.engine.clamp_domains then
        min d (Domain.recommended_domain_count ())
      else d
    in
    if n < db.engine.parallel_threshold then 1 else d
  in
  let merge () = Txn.merge_undo_segments tx (Array.to_list segments) in
  (match
     if domains <= 1 || n = 0 then
       for s = 0 to nsh - 1 do
         step_shard s
       done
     else Pool.run_static (ensure_pool db ~size:domains) ~tasks:nsh step_shard
   with
  | () -> merge ()
  | exception e ->
    merge ();
    raise e);
  (* Phase 3 — sequential firing: batch order, declaration order within
     one event (preserved by construction above). *)
  let count = ref 0 in
  for i = 0 to n - 1 do
    match fired.(i) with
    | [] -> ()
    | ats ->
      let obj, occurrence = resolved.(i) in
      count := !count + List.length ats;
      ignore (post_fired db tx obj occurrence ats)
  done;
  if timed then Registry.record_ns obs Registry.Post (Registry.now_ns () - t0);
  !count

(* An empty batch is a true no-op past the open-transaction check: no
   queue rebuild, no scratch, no pool wake — and, for callers batching
   at a durability boundary, nothing marks the transaction dirty, so a
   barrier-only wire flush emits no WAL record. *)
let post_many db items =
  if items = [] then begin
    ignore (Txn.require_txn db);
    0
  end
  else post_many_nonempty db items

let create db cname args =
  let tx = Txn.require_txn db in
  let k =
    match Schema.find_class db cname with
    | Some k -> k
    | None -> ode_error "no such class %s" cname
  in
  let oid = Store.alloc_oid db in
  let obj = Store.new_obj k oid in
  Store.add_obj db obj;
  tx.tx_undo <- U_create obj :: tx.tx_undo;
  touch db tx obj;
  Txn.acquire db tx obj Lock.Write;
  (match k.k_constructor with None -> () | Some body -> body db oid args);
  ignore (post db tx obj Symbol.Create args);
  post_db db Symbol.Create [ Value.Oid oid; Value.String cname ];
  oid

let delete db oid =
  let tx = Txn.require_txn db in
  let obj = Store.live_obj db oid in
  touch db tx obj;
  Txn.acquire db tx obj Lock.Write;
  ignore (post db tx obj Symbol.Delete []);
  post_db db Symbol.Delete [ Value.Oid oid; Value.String obj.o_class.k_name ];
  Store.mark_deleted db obj;
  tx.tx_undo <- U_delete obj :: tx.tx_undo;
  (* eager cancellation: a deleted object's timers leave the queue now,
     not at their due instant (the [timer_alive] check stays as the
     delivery-time backstop for e.g. firing-path auto-deactivation) *)
  (match Timewheel.cancel_object db oid with
  | [] -> ()
  | cancelled -> tx.tx_undo <- U_timers_cancelled cancelled :: tx.tx_undo)

let set_field db oid name v =
  let tx = Txn.require_txn db in
  let obj = Store.live_obj db oid in
  touch db tx obj;
  Txn.acquire db tx obj Lock.Write;
  match Hashtbl.find_opt obj.o_fields name with
  | None -> ode_error "class %s has no field %s" obj.o_class.k_name name
  | Some prev ->
    tx.tx_undo <- U_field (obj, name, prev) :: tx.tx_undo;
    Hashtbl.replace obj.o_fields name v

let call db oid mname args =
  let obs = db.obs in
  let timed = Registry.timing obs in
  let t0 = if timed then Registry.now_ns () else 0 in
  let tx = Txn.require_txn db in
  let obj = Store.live_obj db oid in
  let meth =
    match Hashtbl.find_opt obj.o_class.k_methods mname with
    | Some m -> m
    | None -> ode_error "class %s has no method %s" obj.o_class.k_name mname
  in
  (match meth.m_arity with
  | Some a when a <> List.length args ->
    ode_error "%s.%s expects %d arguments, got %d" obj.o_class.k_name mname a
      (List.length args)
  | Some _ | None -> ());
  touch db tx obj;
  let request, rw_event =
    match meth.m_kind with
    | Read_only -> (Lock.Read, fun q -> Symbol.Read q)
    | Updating -> (Lock.Write, fun q -> Symbol.Update q)
  in
  Txn.acquire db tx obj request;
  ignore (post db tx obj (Symbol.Access Before) []);
  ignore (post db tx obj (rw_event Symbol.Before) []);
  ignore (post db tx obj (Symbol.Method (Before, mname)) args);
  let result = meth.m_impl db oid args in
  ignore (post db tx obj (Symbol.Method (After, mname)) args);
  ignore (post db tx obj (rw_event Symbol.After) []);
  ignore (post db tx obj (Symbol.Access After) []);
  if timed then Registry.record_ns obs Registry.Call (Registry.now_ns () - t0);
  result

let has_method db oid mname =
  let obj = Store.live_obj db oid in
  Hashtbl.mem obj.o_class.k_methods mname

let apply_fun db name args =
  match Schema.find_fun db name with
  | Some f -> f db args
  | None -> ode_error "unknown database function %s" name

(* ------------------------------------------------------------------ *)
(* Trigger activation                                                  *)
(* ------------------------------------------------------------------ *)

let activate db oid tname params =
  let tx = Txn.require_txn db in
  let obj = Store.live_obj db oid in
  let def =
    match Hashtbl.find_opt obj.o_class.k_triggers tname with
    | Some d -> d
    | None -> ode_error "class %s has no trigger %s" obj.o_class.k_name tname
  in
  (* durable state changes below, but activation is not an object
     access (no [after tbegin], no event fan-out membership) — record
     the oid for the redo-batch footprint only *)
  tx.tx_dirty <- oid :: tx.tx_dirty;
  (match Hashtbl.find_opt obj.o_triggers tname with
  | Some at ->
    (* Re-activation re-arms the trigger: fresh automaton state, in
       place — an SoA slot keeps its slot, a word vector is replaced. *)
    tx.tx_undo <-
      U_trigger_state (at, at_state_copy at)
      :: U_trigger_active (Some obj, at, at.at_active)
      :: tx.tx_undo;
    at_state_reset at;
    at.at_collected <- [];
    at.at_provenance <-
      (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event) else None);
    at.at_last_witnesses <- [];
    set_trigger_active (Some obj) at true;
    at.at_epoch <- at.at_epoch + 1;
    (* the epoch bump orphans the previous incarnation's timers: cancel
       them now instead of letting them ride to their due instant *)
    (match Timewheel.cancel_trigger db oid tname with
    | [] -> ()
    | cancelled -> tx.tx_undo <- U_timers_cancelled cancelled :: tx.tx_undo);
    at.at_params <- params;
    (match Timewheel.schedule_trigger_timers db obj at with
    | [] -> ()
    | armed -> tx.tx_undo <- U_timers_armed armed :: tx.tx_undo)
  | None ->
    let at =
      {
        at_def = def;
        at_params = params;
        at_state = Store.fresh_at_state db oid def.t_detector;
        at_collected = [];
        at_provenance =
          (if def.t_witnesses then Some (Ode_event.Provenance.make def.t_event)
           else None);
        at_last_witnesses = [];
        at_active = true;
        at_epoch = 0;
      }
    in
    obj.o_n_active <- obj.o_n_active + 1;
    Hashtbl.add obj.o_triggers tname at;
    if def.t_index >= 0 then obj.o_acts.(def.t_index) <- Some at;
    tx.tx_undo <- U_trigger_added (obj, tname) :: tx.tx_undo;
    match Timewheel.schedule_trigger_timers db obj at with
    | [] -> ()
    | armed -> tx.tx_undo <- U_timers_armed armed :: tx.tx_undo);
  ()

let deactivate db oid tname =
  let tx = Txn.require_txn db in
  let obj = Store.live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | None -> ()
  | Some at ->
    tx.tx_dirty <- oid :: tx.tx_dirty;
    tx.tx_undo <- U_trigger_active (Some obj, at, at.at_active) :: tx.tx_undo;
    set_trigger_active (Some obj) at false;
    (* eager cancellation: the deactivated trigger's pending timers
       leave the queue now (undo re-inserts them, seqs intact) *)
    (match Timewheel.cancel_trigger db oid tname with
    | [] -> ()
    | cancelled -> tx.tx_undo <- U_timers_cancelled cancelled :: tx.tx_undo)

let is_active db oid tname =
  let obj = Store.live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | Some at -> at.at_active
  | None -> false

let trigger_state_words db oid tname =
  let obj = Store.live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | Some at -> at_state_len at
  | None -> ode_error "trigger %s not activated on @%d" tname oid

let trigger_state db oid tname =
  let obj = Store.live_obj db oid in
  match Hashtbl.find_opt obj.o_triggers tname with
  | Some at -> at_state_copy at
  | None -> ode_error "trigger %s not activated on @%d" tname oid

(** Write-ahead-log durability backend: logical redo batches appended at
    commit under a group-commit window, CRC-framed, with periodic ODE1
    snapshots + log truncation; recovery is snapshot + replay.

    Sits beside {!Persist} in the layer stack (depends on {!Persist},
    {!Store}, {!Schema} state via replay, and {!Ode_obs}; never on
    {!Engine} — replay moves state, it posts no events). The layers
    below reach it only through the [durability_backend] closures
    installed by [Database.create_db].

    On-disk layout per database directory — one current generation [g]:

    - [snap-<g>.ode1] — a full image, the {e exact} [Persist.save]
      bytes (one codec path, property-tested in [test/test_wal.ml]);
    - [wal-<g>.log] — the ["ODEW1"] header, then frames
      [[len:4 LE][crc32:4 LE][payload]], one frame per batch.

    The checkpoint protocol writes [snap-<g+1>] atomically, then an
    empty [wal-<g+1>], then removes the old pair; recovery picks the
    largest generation with {e both} files present and ends by
    checkpointing the recovered state into a fresh generation, so a
    damaged log tail is never appended to. *)

open Types

type config = {
  dir : string;  (** the database's log directory; created on attach *)
  flush_ms : int;
      (** group-commit window in ms: batches buffer in memory until a
          batch arrives at least this long after the last flush. [0] =
          write + sync every batch. *)
  snapshot_every : int;
      (** checkpoint after this many batches (skipped while transactions
          are open); [<= 0] = only on [save]/[load]/recovery *)
  sync_on_flush : bool;  (** [fsync] after each physical write *)
  on_batch : (db -> unit) option;
      (** test hook, called after each batch is framed (and, under
          [flush_ms = 0], flushed) — the crash harness captures shadow
          snapshots here *)
}

val config :
  ?flush_ms:int ->
  ?snapshot_every:int ->
  ?sync_on_flush:bool ->
  ?on_batch:(db -> unit) ->
  string ->
  config
(** [config dir] with defaults [flush_ms = 50], [snapshot_every =
    1000], [sync_on_flush = true]. *)

val backend : config -> durability_backend
(** Pack a fresh WAL instance (own buffer, generation counter and
    group-commit window; no file descriptor held between flushes).
    [dur_attach] baselines an empty directory at generation 0, or — when
    the directory already holds WAL state — arms on the latest
    generation and defers to an explicit [dur_recover] (register the
    classes first). [dur_save] writes the caller's image {e and}
    checkpoints; [dur_load] re-baselines the log on the loaded state. *)

val member_backend :
  config -> ((db -> unit) * (db -> unit)) * durability_backend
(** What {!backend} is built from, with the instance's checkpoint
    entry points exposed for [Engine_group]'s per-partition logs:
    [(checkpoint, rebaseline), backend]. [checkpoint db] flushes and
    rolls the generation (snapshotting [db]'s own slice);
    [rebaseline db] additionally drops buffered batches first — what a
    group [dur_load] needs after replacing the state under the log. *)

(** {1 Partition-group layout} *)

val member_dir : string -> int -> string
(** [member_dir dir k] — partition [k]'s own log directory,
    [<dir>/p<k>]. *)

val write_manifest : string -> partitions:int -> unit
val read_manifest : string -> int option
(** The one-line [group-manifest] at a partitioned database's log
    root, recording the partition count the directory was written
    with. [read_manifest] is [None] when absent and raises
    {!Types.Ode_error} when malformed. *)

val check_manifest : string -> partitions:int -> unit
(** Write the manifest if absent; raise {!Types.Ode_error} if present
    with a different partition count. *)

(** {1 Introspection — recovery, the crash harness, [odec wal-dump]} *)

val header : string
(** The log-file header, ["ODEW1"]. *)

val snap_path : string -> int -> string
val wal_path : string -> int -> string

val latest_gen : string -> int option
(** Largest generation in a directory with both its snapshot and its
    log present; [None] for a missing/empty directory. *)

type damage =
  | Bad_header
  | Truncated of { offset : int }
      (** an incomplete frame starts at [offset] *)
  | Bad_crc of { index : int; offset : int }

type scan_result = {
  frames : string list;  (** complete, CRC-valid payloads, log order *)
  damage : damage option;  (** why the scan stopped early, if it did *)
}

val scan_bytes : string -> scan_result
val scan_file : string -> scan_result
(** Walk the framing without decoding payloads — the single definition
    of "how many batches survive" shared by recovery, the harness and
    [wal-dump]. *)

val apply_batch : db -> string -> unit
(** Replay one scanned payload: set the counters and clock, upsert or
    remove each carried object, replace the timer queue if carried.
    Raises [Codec.Corrupt] on a malformed payload (a CRC-valid frame
    written by this module always decodes). *)

val crc32 : string -> int

type entry_summary =
  | Upsert of { oid : int; class_name : string; n_triggers : int }
  | Delete of int

type batch_summary = {
  s_next_oid : int;
  s_next_txn : int;
  s_clock_ms : int64;
  s_entries : entry_summary list;
  s_timers : int option;  (** [Some n]: the batch carries n timers *)
}

val decode_summary : string -> batch_summary
(** Schema-free decode of one payload for pretty-printing. Raises
    [Codec.Corrupt] on malformed bytes. *)

module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Detector = Ode_event.Detector
module Registry = Ode_obs.Registry
open Types

type class_builder = {
  b_name : string;
  b_constructor : (db -> oid -> Value.t list -> unit) option;
  b_fields : (string * Value.t) list;  (* reversed *)
  b_methods : meth list;
  b_triggers : trigger_def list;
}

let define_class ?constructor name =
  {
    b_name = name;
    b_constructor = constructor;
    b_fields = [];
    b_methods = [];
    b_triggers = [];
  }

let field b name default =
  if List.mem_assoc name b.b_fields then
    ode_error "class %s: duplicate field %s" b.b_name name;
  { b with b_fields = (name, default) :: b.b_fields }

let method_ b ?arity ~kind name impl =
  { b with b_methods = { m_name = name; m_kind = kind; m_arity = arity; m_impl = impl } :: b.b_methods }

let trigger b ?(perpetual = false) ?(mode = Detector.Full_history)
    ?(witnesses = false) name ~event ~action =
  let detector =
    (* ~share: triggers declaring the same event reuse one compiled
       detector, so the per-occurrence classification cache in
       [Engine.post] classifies once for all of them *)
    try Detector.make ~mode ~share:true event
    with Invalid_argument msg -> ode_error "trigger %s.%s: %s" b.b_name name msg
  in
  let def =
    {
      t_name = name;
      t_class = b.b_name;
      t_event = event;
      t_detector = detector;
      t_perpetual = perpetual;
      t_witnesses = witnesses;
      t_action = action;
      t_index = -1;  (* assigned at register_class *)
    }
  in
  { b with b_triggers = def :: b.b_triggers }

let trigger_str b ?perpetual ?mode ?witnesses name ~event ~action =
  match Ode_lang.Parser.event_of_string event with
  | Error msg -> ode_error "trigger %s.%s: %s" b.b_name name msg
  | Ok expr -> trigger b ?perpetual ?mode ?witnesses name ~event:expr ~action

(* Append [d] to the dispatch bucket of every basic-event key its
   detector's alphabet guards on. Buckets keep declaration order. *)
let index_trigger_def dispatch (d : trigger_def) =
  List.iter
    (fun key ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt dispatch key) in
      Hashtbl.replace dispatch key (prev @ [ d ]))
    (Detector.relevant_basics d.t_detector)

(* Compile one dispatch bucket into the posting kernel's candidate row:
   defs stay in declaration order; the distinct detectors behind them
   (triggers declaring the same event share one) are factored out so the
   per-event path classifies each exactly once. *)
let make_krow (defs : trigger_def list) =
  let kr_defs = Array.of_list defs in
  let dets = ref [] in
  let n_dets = ref 0 in
  let kr_det_of =
    Array.map
      (fun (d : trigger_def) ->
        let det = d.t_detector in
        let rec find i = function
          | [] ->
            dets := !dets @ [ det ];
            incr n_dets;
            !n_dets - 1
          | det' :: rest -> if det' == det then i else find (i + 1) rest
        in
        find 0 !dets)
      kr_defs
  in
  { kr_defs; kr_dets = Array.of_list !dets; kr_det_of }

let register_class db b =
  if Hashtbl.mem db.schema.classes b.b_name then
    ode_error "class %s already defined" b.b_name;
  let k =
    {
      k_name = b.b_name;
      k_fields = List.rev b.b_fields;
      k_methods = Hashtbl.create 8;
      k_triggers = Hashtbl.create 8;
      k_n_triggers = List.length b.b_triggers;
      k_dispatch = Hashtbl.create 16;
      k_rows = Hashtbl.create 16;
      k_constructor = b.b_constructor;
    }
  in
  List.iter
    (fun m ->
      if Hashtbl.mem k.k_methods m.m_name then
        ode_error "class %s: duplicate method %s" b.b_name m.m_name;
      Hashtbl.add k.k_methods m.m_name m)
    b.b_methods;
  List.iter
    (fun (d : trigger_def) ->
      if Hashtbl.mem k.k_triggers d.t_name then
        ode_error "class %s: duplicate trigger %s" b.b_name d.t_name;
      Hashtbl.add k.k_triggers d.t_name d)
    b.b_triggers;
  (* b_triggers is accumulated in reverse; index in declaration order so
     dispatch (and therefore action execution on a shared occurrence) is
     deterministic *)
  let in_order = List.rev b.b_triggers in
  List.iteri (fun i (d : trigger_def) -> d.t_index <- i) in_order;
  List.iter (index_trigger_def k.k_dispatch) in_order;
  Hashtbl.iter
    (fun key defs -> Hashtbl.replace k.k_rows key (make_krow defs))
    k.k_dispatch;
  Hashtbl.add db.schema.classes b.b_name k;
  if Registry.enabled db.obs then begin
    Registry.incr db.obs Registry.Classes_registered;
    Registry.add db.obs Registry.Triggers_indexed (List.length b.b_triggers)
  end

let builder_name b = b.b_name

let register_fun db name f = Hashtbl.replace db.schema.functions name f

let find_class db name = Hashtbl.find_opt db.schema.classes name
let n_classes db = Hashtbl.length db.schema.classes

let find_fun db name = Hashtbl.find_opt db.schema.functions name

let db_trigger db ?(perpetual = false) ?(witnesses = false) name ~event ~action =
  if Hashtbl.mem db.schema.db_trigger_defs name then
    ode_error "database trigger %s already defined" name;
  let detector =
    try Detector.make ~mode:Detector.Full_history ~share:true event
    with Invalid_argument msg -> ode_error "database trigger %s: %s" name msg
  in
  let def =
    {
      t_name = name;
      t_class = "<database>";
      t_event = event;
      t_detector = detector;
      t_perpetual = perpetual;
      t_witnesses = witnesses;
      t_action = action;
      t_index = -1;  (* database scope: no per-object slot *)
    }
  in
  Hashtbl.add db.schema.db_trigger_defs name def;
  index_trigger_def db.schema.db_dispatch def;
  if Registry.enabled db.obs then
    Registry.incr db.obs Registry.Triggers_indexed

let db_trigger_str db ?perpetual ?witnesses name ~event ~action =
  match Ode_lang.Parser.event_of_string event with
  | Error msg -> ode_error "database trigger %s: %s" name msg
  | Ok expr -> db_trigger db ?perpetual ?witnesses name ~event:expr ~action

let find_db_trigger db name = Hashtbl.find_opt db.schema.db_trigger_defs name

(** Recorded event histories and history queries.

    §9 of the paper lists "explicit manipulation of event histories … to
    define history expressions and to integrate them with event
    expressions" as future work. This module provides the first half:
    when recording is enabled ({!Database.enable_history}), every basic
    event posted to an object is kept (with its transaction), and these
    combinators query the log. Histories are the {e true} histories of §6
    — they include the operations of transactions that later aborted. *)

type record = {
  h_occurrence : Ode_event.Symbol.occurrence;
  h_txn : int;  (** posting transaction *)
}

type t = record list
(** Oldest first. *)

val truncate : int -> t -> t
(** Keep the first [n] records, dropping the rest. Unlike
    [List.filteri (fun i _ -> i < n)] — the database's previous pruning —
    this stops walking (and allocating) after [n] cells, so pruning a log
    capped at [2 * limit] costs O(limit), not O(2 * limit) plus a closure
    call per record. Tail-recursive. *)

val of_basic : Ode_event.Symbol.basic -> t -> t
val methods_named : string -> t -> t
(** Before- and after-method events with this name. *)

val transactional : t -> t
(** Only the five transaction events. *)

val in_txn : int -> t -> t

val between : since:int64 -> until:int64 -> t -> t
(** Records with [since <= at < until]. *)

val count : (record -> bool) -> t -> int
val last : (record -> bool) -> t -> record option
val fold : ('a -> record -> 'a) -> 'a -> t -> 'a

val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> t -> unit

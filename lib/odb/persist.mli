(** Persist layer: the ODE1 save/load codec.

    Depends on {!Schema} (classes are re-resolved by name at load),
    {!Store} (heap reconstruction) and {!Timewheel} (timer re-insertion)
    — never on {!Engine}: persistence moves state, it posts no
    events.

    The per-entity writers/readers ([write_obj]/[read_obj_raw]/
    [install_obj], [write_timer]/[read_timer]) are the {e only} codec
    path for object and timer state: the full image below and the
    {!Wal} backend's redo records both go through them, so a WAL
    snapshot of a state and a {!save} of the same state are
    bit-identical by construction. *)

open Types

val magic : string
(** The image header, ["ODE1"]. *)

val save : db -> string -> unit
(** Persist all live objects (fields, trigger activations and their
    automaton states), pending timers, the oid/txn counters and the
    clock. Raises {!Types.Ode_error} if a transaction is open. Not
    saved: the schema itself (closures are code), database-scope trigger
    activations, the history log, provenance partial matches, and the
    history-recording setting. *)

val load : db -> string -> unit
(** Restore a {!save}d image into a database whose classes have been
    registered again. Existing objects and timers are discarded. Raises
    [Codec.Corrupt] on a bad image or a schema mismatch. *)

val image_bytes : db -> string
(** The exact bytes {!save} would write, without touching the
    filesystem or checking for open transactions — the shared snapshot
    writer ({!Wal} checkpoints call this) and the state fingerprint the
    equivalence and crash-recovery suites compare. *)

val load_image : db -> string -> unit
(** [load] from in-memory bytes: parse fully, then reset the heap and
    install. A [Codec.Corrupt] raised during the parse leaves the
    database untouched. Member-local for a partition member (its WAL
    recovery restores only its own slice); see {!group_load_image}. *)

(** {1 Partition-group images}

    A partitioned database ([Engine_group]) holds its heap and timer
    queue spread over member slices. The group writers below merge the
    slices back into ascending-oid / (due, seq) order, so the merged
    image is byte-identical to what a single-engine run of the same
    history would save — and they collapse to the plain functions when
    the db is unpartitioned. *)

val group_image_bytes : db -> string
val group_load_image : db -> string -> unit
val group_save : db -> string -> unit
val group_load : db -> string -> unit

val write_obj : Ode_base.Codec.writer -> obj -> unit
(** Serialize one object: oid, class name, sorted fields, sorted
    trigger activations (params, state words via [at_state_copy],
    collected §9 bindings, active flag, epoch). *)

val read_obj_raw :
  Ode_base.Codec.reader ->
  int
  * string
  * (string * Ode_base.Value.t) list
  * (string
    * Ode_base.Value.t list
    * int array
    * (string * Ode_base.Value.t) list
    * bool
    * int)
    list
(** Parse what {!write_obj} wrote without resolving anything against a
    schema — [(oid, class, fields, triggers)]. [odec wal-dump] decodes
    records with this, no database required. *)

val install_obj :
  db ->
  int
  * string
  * (string * Ode_base.Value.t) list
  * (string
    * Ode_base.Value.t list
    * int array
    * (string * Ode_base.Value.t) list
    * bool
    * int)
    list ->
  unit
(** Materialize a {!read_obj_raw} result into the heap: re-resolve the
    class by name, rebuild activations with fresh detection-state
    representations, restore the saved state words, [Store.add_obj].
    Raises [Codec.Corrupt] on an unregistered class, unknown trigger or
    state-width mismatch. *)

val write_timer : Ode_base.Codec.writer -> timer -> unit
val read_timer : Ode_base.Codec.reader -> timer

val image_backend : unit -> durability_backend
(** The full-image codec as a durability backend: [dur_save]/[dur_load]
    are {!save}/{!load}, commit emission is a no-op, [dur_recover]
    raises (there is no log). The default of [Database.create_db]. *)

val write_time_spec : Ode_base.Codec.writer -> Ode_event.Symbol.time_spec -> unit
val read_time_spec : Ode_base.Codec.reader -> Ode_event.Symbol.time_spec

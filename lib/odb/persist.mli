(** Persist layer: the ODE1 save/load codec.

    Depends on {!Schema} (classes are re-resolved by name at load),
    {!Store} (heap reconstruction) and {!Timewheel} (timer re-insertion)
    — never on {!Engine}: persistence moves state, it posts no
    events. *)

open Types

val magic : string
(** The image header, ["ODE1"]. *)

val save : db -> string -> unit
(** Persist all live objects (fields, trigger activations and their
    automaton states), pending timers, the oid/txn counters and the
    clock. Raises {!Types.Ode_error} if a transaction is open. Not
    saved: the schema itself (closures are code), database-scope trigger
    activations, the history log, provenance partial matches, and the
    history-recording setting. *)

val load : db -> string -> unit
(** Restore a {!save}d image into a database whose classes have been
    registered again. Existing objects, timers and pending firings are
    discarded. Raises [Codec.Corrupt] on a bad image or a schema
    mismatch. *)

val write_time_spec : Ode_base.Codec.writer -> Ode_event.Symbol.time_spec -> unit
val read_time_spec : Ode_base.Codec.reader -> Ode_event.Symbol.time_spec

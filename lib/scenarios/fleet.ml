(* Fleet monitoring (ROADMAP item 2): a calendar-heavy workload where
   nearly every live object carries pending timers. Each vehicle runs
   one periodic heartbeat trigger (cadence assigned round-robin) plus
   an optional one-shot service check, so a fleet of n vehicles keeps
   ~2n timers armed at all times — the workload the timing wheel exists
   for, and the one that made the sorted-list queue quadratic. *)

module D = Ode_odb.Database
module Value = Ode_base.Value

type t = { db : D.t; vehicles : D.oid array }

let cadences = [| ("hb_fast", 50); ("hb_med", 250); ("hb_slow", 1000) |]
let service_after_ms = 30_000

let bump db oid field =
  D.set_field db oid field (Value.add (D.get_field db oid field) (Value.Int 1))

let vehicle_class =
  let b = D.define_class "vehicle" in
  let b = D.field b "beats" (Value.Int 0) in
  let b = D.field b "alerts" (Value.Int 0) in
  let b =
    D.method_ b ~kind:D.Updating "recordBeat" (fun db oid _ ->
        bump db oid "beats";
        Value.Unit)
  in
  let b =
    D.method_ b ~kind:D.Updating "serviceDue" (fun db oid _ ->
        bump db oid "alerts";
        Value.Unit)
  in
  let b =
    Array.fold_left
      (fun b (name, ms) ->
        D.trigger_str b ~perpetual:true name
          ~event:(Printf.sprintf "every time(MS=%d)" ms)
          ~action:(fun db ctx -> ignore (D.call db ctx.D.fc_oid "recordBeat" [])))
      b cadences
  in
  D.trigger_str b "service"
    ~event:(Printf.sprintf "after time(MS=%d)" service_after_ms)
    ~action:(fun db ctx -> ignore (D.call db ctx.D.fc_oid "serviceDue" []))

let cadence_of i = fst cadences.(i mod Array.length cadences)

(* Large fleets are built in bounded transactions: one undo log and one
   redo batch per [chunk] vehicles, not one per vehicle and not one
   million-entry transaction. *)
let chunk = 5_000

let batched n f =
  let i = ref 0 in
  while !i < n do
    let hi = min n (!i + chunk) in
    f !i hi;
    i := hi
  done

let expect_ok what = function
  | Ok v -> v
  | Error `Aborted -> raise (D.Ode_error ("fleet " ^ what ^ " aborted"))

let setup ?db ?(vehicles = 1_000) ?(service = true) () =
  let db = match db with Some db -> db | None -> D.create_db () in
  D.register_class db vehicle_class;
  let vs = Array.make (max vehicles 1) 0 in
  batched vehicles (fun lo hi ->
      expect_ok "setup"
        (D.with_txn db (fun _ ->
             for j = lo to hi - 1 do
               let oid = D.create db "vehicle" [] in
               D.activate db oid (cadence_of j) [];
               if service then D.activate db oid "service" [];
               vs.(j) <- oid
             done)));
  { db; vehicles = vs }

let size t = Array.length t.vehicles
let tick t span = D.advance_clock t.db span

let idle t ~stride =
  let n = size t in
  batched n (fun lo hi ->
      expect_ok "idle"
        (D.with_txn t.db (fun _ ->
             for j = lo to hi - 1 do
               if j mod stride = 0 then
                 D.deactivate t.db t.vehicles.(j) (cadence_of j)
             done)))

let resume t ~stride =
  let n = size t in
  batched n (fun lo hi ->
      expect_ok "resume"
        (D.with_txn t.db (fun _ ->
             for j = lo to hi - 1 do
               if j mod stride = 0 then
                 D.activate t.db t.vehicles.(j) (cadence_of j) []
             done)))

let retire t ~stride =
  let n = size t in
  batched n (fun lo hi ->
      expect_ok "retire"
        (D.with_txn t.db (fun _ ->
             for j = lo to hi - 1 do
               if j mod stride = 0 && D.exists t.db t.vehicles.(j) then
                 D.delete t.db t.vehicles.(j)
             done)))

let beats t i = Value.to_int (D.get_field t.db t.vehicles.(i) "beats")
let alerts t i = Value.to_int (D.get_field t.db t.vehicles.(i) "alerts")

let total field t =
  Array.fold_left
    (fun acc oid ->
      if D.exists t.db oid then acc + Value.to_int (D.get_field t.db oid field)
      else acc)
    0 t.vehicles

let total_beats = total "beats"
let total_alerts = total "alerts"

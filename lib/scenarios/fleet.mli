(** Fleet monitoring (ROADMAP item 2): a calendar-heavy workload where
    nearly every live object keeps timers armed.

    Each vehicle activates one perpetual heartbeat trigger — [every
    time(MS=50)], [MS=250] or [MS=1000], assigned round-robin — whose
    action bumps its [beats] field, plus (by default) a one-shot
    service check [after time(MS=30000)] bumping [alerts]. A fleet of
    n vehicles therefore holds ~2n pending timers, which is the
    workload the timing wheel representation exists for ([odes bench
    e17t] builds its million-timer rows on this module). *)

module D = Ode_odb.Database

type t = { db : D.t; vehicles : D.oid array }

val cadences : (string * int) array
(** Heartbeat trigger names and their periods in ms. *)

val service_after_ms : int
(** Due delay of the one-shot service check. *)

val cadence_of : int -> string
(** The heartbeat trigger assigned to the [i]-th vehicle. *)

val setup : ?db:D.t -> ?vehicles:int -> ?service:bool -> unit -> t
(** Register the vehicle class and create the fleet in bounded-size
    transactions. [db] defaults to a fresh [D.create_db ()] (so the
    usual ODE_* environment knobs apply); [vehicles] defaults to 1000;
    [service:false] skips the one-shot service timers. *)

val size : t -> int
val tick : t -> int64 -> unit
(** Advance the fleet's clock by a span (ms), delivering due timers. *)

val idle : t -> stride:int -> unit
(** Deactivate the heartbeat of every [stride]-th vehicle — with the
    wheel this cancels the pending timers eagerly. *)

val resume : t -> stride:int -> unit
(** Re-activate the heartbeats that {!idle} stopped (an epoch bump:
    stale timers are cancelled, fresh ones armed). *)

val retire : t -> stride:int -> unit
(** Delete every [stride]-th vehicle outright. *)

val beats : t -> int -> int
val alerts : t -> int -> int
(** Per-vehicle counters, by fleet index. *)

val total_beats : t -> int
val total_alerts : t -> int
(** Counter sums over the surviving fleet (O(n) field reads). *)

module Value = Ode_base.Value
module Symbol = Ode_event.Symbol

type item = { i_oid : int; i_event : Symbol.basic; i_args : Value.t list }
type policy = Block | Drop

type request =
  | Status
  | Schema of string
  | Create of string * Value.t list
  | Post of item
  | Post_many of item list
  | Call of int * string * Value.t list
  | Tbegin
  | Tcommit
  | Tabort
  | Advance_clock of int64
  | Save of string
  | Subscribe of policy
  | Unsubscribe
  | Shutdown

type firing = {
  fg_trigger : string;
  fg_class : string;
  fg_oid : int;
  fg_at : int64;
  fg_txn : int;
}

type response = R_ok of Json.t | R_error of string * string
type msg = Reply of int * response | Firing of firing | Lagged of int

let err_parse = "parse"
let err_bad_request = "bad_request"
let err_aborted = "aborted"
let err_state = "state"
let err_ode = "ode"

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let encode_value : Value.t -> Json.t = function
  | Value.Unit -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int n -> Json.Int n
  | Value.Float f when Float.is_finite f -> Json.Float f
  | Value.Float f ->
    let tag =
      if Float.is_nan f then "nan" else if f > 0.0 then "inf" else "-inf"
    in
    Json.Obj [ ("float", Json.String tag) ]
  | Value.String s -> Json.String s
  | Value.Oid n -> Json.Obj [ ("oid", Json.Int n) ]

let decode_value : Json.t -> (Value.t, string) result = function
  | Json.Null -> Ok Value.Unit
  | Json.Bool b -> Ok (Value.Bool b)
  | Json.Int n -> Ok (Value.Int n)
  | Json.Float f -> Ok (Value.Float f)
  | Json.String s -> Ok (Value.String s)
  | Json.Obj [ ("oid", Json.Int n) ] -> Ok (Value.Oid n)
  | Json.Obj [ ("float", Json.String "nan") ] -> Ok (Value.Float Float.nan)
  | Json.Obj [ ("float", Json.String "inf") ] ->
    Ok (Value.Float Float.infinity)
  | Json.Obj [ ("float", Json.String "-inf") ] ->
    Ok (Value.Float Float.neg_infinity)
  | j -> Error ("bad value: " ^ Json.to_string j)

let rec decode_values acc = function
  | [] -> Ok (List.rev acc)
  | j :: rest -> (
    match decode_value j with
    | Ok v -> decode_values (v :: acc) rest
    | Error _ as e -> e)

let encode_values vs = Json.List (List.map encode_value vs)

let decode_values_field ?(field = "args") obj =
  match Json.member field obj with
  | None | Some Json.Null -> Ok []
  | Some (Json.List js) -> decode_values [] js
  | Some _ -> Error (Printf.sprintf "bad %S field" field)

(* ------------------------------------------------------------------ *)
(* Basic events                                                        *)
(* ------------------------------------------------------------------ *)

let qualifier_str = function Symbol.Before -> "before" | Symbol.After -> "after"

let decode_qualifier = function
  | "before" -> Ok Symbol.Before
  | "after" -> Ok Symbol.After
  | q -> Error ("bad qualifier " ^ q)

let encode_pattern (p : Symbol.time_pattern) =
  let field name v acc =
    match v with None -> acc | Some n -> (name, Json.Int n) :: acc
  in
  Json.Obj
    (field "year" p.Symbol.year
    @@ field "mon" p.Symbol.mon
    @@ field "day" p.Symbol.day
    @@ field "hr" p.Symbol.hr
    @@ field "min" p.Symbol.min
    @@ field "sec" p.Symbol.sec
    @@ field "ms" p.Symbol.ms [])

let decode_pattern j =
  let get name =
    match Json.member name j with
    | Some (Json.Int n) -> Some n
    | Some _ | None -> None
  in
  {
    Symbol.year = get "year";
    mon = get "mon";
    day = get "day";
    hr = get "hr";
    min = get "min";
    sec = get "sec";
    ms = get "ms";
  }

let encode_time_spec = function
  | Symbol.Every ms -> Json.Obj [ ("every", Json.Int (Int64.to_int ms)) ]
  | Symbol.After_period ms ->
    Json.Obj [ ("after", Json.Int (Int64.to_int ms)) ]
  | Symbol.At p -> Json.Obj [ ("at", encode_pattern p) ]

let decode_time_spec j =
  match (Json.member "every" j, Json.member "after" j, Json.member "at" j) with
  | Some (Json.Int ms), None, None -> Ok (Symbol.Every (Int64.of_int ms))
  | None, Some (Json.Int ms), None ->
    Ok (Symbol.After_period (Int64.of_int ms))
  | None, None, Some p -> Ok (Symbol.At (decode_pattern p))
  | _ -> Error ("bad time spec: " ^ Json.to_string j)

let encode_basic : Symbol.basic -> Json.t =
  let k kind rest = Json.Obj (("k", Json.String kind) :: rest) in
  let q kind qual = k kind [ ("q", Json.String (qualifier_str qual)) ] in
  function
  | Symbol.Create -> k "create" []
  | Symbol.Delete -> k "delete" []
  | Symbol.Update qual -> q "update" qual
  | Symbol.Read qual -> q "read" qual
  | Symbol.Access qual -> q "access" qual
  | Symbol.Method (qual, name) ->
    k "method"
      [ ("q", Json.String (qualifier_str qual)); ("name", Json.String name) ]
  | Symbol.Tbegin -> k "tbegin" []
  | Symbol.Tcomplete -> k "tcomplete" []
  | Symbol.Tcommit -> k "tcommit" []
  | Symbol.Tabort qual -> q "tabort" qual
  | Symbol.Time spec -> k "time" [ ("spec", encode_time_spec spec) ]

let decode_basic j : (Symbol.basic, string) result =
  let ( let* ) = Result.bind in
  let qual () =
    match Json.member "q" j with
    | Some (Json.String q) -> decode_qualifier q
    | _ -> Error "missing qualifier"
  in
  match Json.member "k" j with
  | Some (Json.String "create") -> Ok Symbol.Create
  | Some (Json.String "delete") -> Ok Symbol.Delete
  | Some (Json.String "update") ->
    let* q = qual () in
    Ok (Symbol.Update q)
  | Some (Json.String "read") ->
    let* q = qual () in
    Ok (Symbol.Read q)
  | Some (Json.String "access") ->
    let* q = qual () in
    Ok (Symbol.Access q)
  | Some (Json.String "method") -> (
    let* q = qual () in
    match Json.member "name" j with
    | Some (Json.String name) -> Ok (Symbol.Method (q, name))
    | _ -> Error "method event without a name")
  | Some (Json.String "tbegin") -> Ok Symbol.Tbegin
  | Some (Json.String "tcomplete") -> Ok Symbol.Tcomplete
  | Some (Json.String "tcommit") -> Ok Symbol.Tcommit
  | Some (Json.String "tabort") ->
    let* q = qual () in
    Ok (Symbol.Tabort q)
  | Some (Json.String "time") -> (
    match Json.member "spec" j with
    | Some spec ->
      let* s = decode_time_spec spec in
      Ok (Symbol.Time s)
    | None -> Error "time event without a spec")
  | _ -> Error ("bad basic event: " ^ Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

let encode_item it =
  Json.Obj
    [
      ("oid", Json.Int it.i_oid);
      ("event", encode_basic it.i_event);
      ("args", encode_values it.i_args);
    ]

let decode_item j =
  let ( let* ) = Result.bind in
  match (Json.member "oid" j, Json.member "event" j) with
  | Some (Json.Int oid), Some ev ->
    let* event = decode_basic ev in
    let* args = decode_values_field j in
    Ok { i_oid = oid; i_event = event; i_args = args }
  | _ -> Error ("bad item: " ^ Json.to_string j)

let rec decode_items acc = function
  | [] -> Ok (List.rev acc)
  | j :: rest -> (
    match decode_item j with
    | Ok it -> decode_items (it :: acc) rest
    | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let verb_of_request = function
  | Status -> "status"
  | Schema _ -> "schema"
  | Create _ -> "create"
  | Post _ -> "post"
  | Post_many _ -> "post_many"
  | Call _ -> "call"
  | Tbegin -> "tbegin"
  | Tcommit -> "tcommit"
  | Tabort -> "tabort"
  | Advance_clock _ -> "advance_clock"
  | Save _ -> "save"
  | Subscribe _ -> "subscribe"
  | Unsubscribe -> "unsubscribe"
  | Shutdown -> "shutdown"

let policy_str = function Block -> "block" | Drop -> "drop"

let request_fields = function
  | Status | Tbegin | Tcommit | Tabort | Unsubscribe | Shutdown -> []
  | Schema src -> [ ("src", Json.String src) ]
  | Create (cls, args) ->
    [ ("class", Json.String cls); ("args", encode_values args) ]
  | Post it -> [ ("item", encode_item it) ]
  | Post_many items ->
    [ ("items", Json.List (List.map encode_item items)) ]
  | Call (oid, name, args) ->
    [
      ("oid", Json.Int oid);
      ("method", Json.String name);
      ("args", encode_values args);
    ]
  | Advance_clock ms -> [ ("ms", Json.Int (Int64.to_int ms)) ]
  | Save path -> [ ("path", Json.String path) ]
  | Subscribe p -> [ ("policy", Json.String (policy_str p)) ]

let encode_request ~id req =
  Json.to_string
    (Json.Obj
       (("id", Json.Int id)
       :: ("verb", Json.String (verb_of_request req))
       :: request_fields req))

let decode_request j =
  let ( let* ) = Result.bind in
  let* id =
    match Json.member "id" j with
    | Some (Json.Int id) -> Ok id
    | _ -> Error "request without an integer id"
  in
  let* verb =
    match Json.member "verb" j with
    | Some (Json.String v) -> Ok v
    | _ -> Error "request without a verb"
  in
  let* req =
    match verb with
    | "status" -> Ok Status
    | "tbegin" -> Ok Tbegin
    | "tcommit" -> Ok Tcommit
    | "tabort" -> Ok Tabort
    | "unsubscribe" -> Ok Unsubscribe
    | "shutdown" -> Ok Shutdown
    | "schema" -> (
      match Json.member "src" j with
      | Some (Json.String src) -> Ok (Schema src)
      | _ -> Error "schema without src")
    | "create" -> (
      match Json.member "class" j with
      | Some (Json.String cls) ->
        let* args = decode_values_field j in
        Ok (Create (cls, args))
      | _ -> Error "create without class")
    | "post" -> (
      match Json.member "item" j with
      | Some it ->
        let* it = decode_item it in
        Ok (Post it)
      | None -> Error "post without item")
    | "post_many" -> (
      match Json.member "items" j with
      | Some (Json.List js) ->
        let* items = decode_items [] js in
        Ok (Post_many items)
      | _ -> Error "post_many without items")
    | "call" -> (
      match (Json.member "oid" j, Json.member "method" j) with
      | Some (Json.Int oid), Some (Json.String name) ->
        let* args = decode_values_field j in
        Ok (Call (oid, name, args))
      | _ -> Error "call without oid/method")
    | "advance_clock" -> (
      match Json.member "ms" j with
      | Some (Json.Int ms) -> Ok (Advance_clock (Int64.of_int ms))
      | _ -> Error "advance_clock without ms")
    | "save" -> (
      match Json.member "path" j with
      | Some (Json.String path) -> Ok (Save path)
      | _ -> Error "save without path")
    | "subscribe" -> (
      match Json.member "policy" j with
      | Some (Json.String "block") -> Ok (Subscribe Block)
      | Some (Json.String "drop") -> Ok (Subscribe Drop)
      | None -> Ok (Subscribe Block)
      | Some _ -> Error "subscribe with a bad policy")
    | v -> Error ("unknown verb " ^ v)
  in
  Ok (id, req)

(* ------------------------------------------------------------------ *)
(* Replies and notifications                                           *)
(* ------------------------------------------------------------------ *)

let encode_reply ~id resp =
  Json.to_string
    (match resp with
    | R_ok payload -> Json.Obj [ ("id", Json.Int id); ("ok", payload) ]
    | R_error (code, msg) ->
      Json.Obj
        [
          ("id", Json.Int id);
          ( "error",
            Json.Obj
              [ ("code", Json.String code); ("msg", Json.String msg) ] );
        ])

let firing_json f =
  Json.Obj
    [
      ("trigger", Json.String f.fg_trigger);
      ("class", Json.String f.fg_class);
      ("oid", Json.Int f.fg_oid);
      ("at", Json.Int (Int64.to_int f.fg_at));
      ("txn", Json.Int f.fg_txn);
    ]

let encode_firing f = Json.to_string (Json.Obj [ ("firing", firing_json f) ])
let encode_lagged n = Json.to_string (Json.Obj [ ("lagged", Json.Int n) ])

let decode_firing j =
  match
    ( Json.member "trigger" j,
      Json.member "class" j,
      Json.member "oid" j,
      Json.member "at" j,
      Json.member "txn" j )
  with
  | ( Some (Json.String fg_trigger),
      Some (Json.String fg_class),
      Some (Json.Int fg_oid),
      Some (Json.Int at),
      Some (Json.Int fg_txn) ) ->
    Ok { fg_trigger; fg_class; fg_oid; fg_at = Int64.of_int at; fg_txn }
  | _ -> Error ("bad firing: " ^ Json.to_string j)

let decode_msg j =
  let ( let* ) = Result.bind in
  match Json.member "firing" j with
  | Some f ->
    let* f = decode_firing f in
    Ok (Firing f)
  | None -> (
    match Json.member "lagged" j with
    | Some (Json.Int n) -> Ok (Lagged n)
    | Some _ -> Error "bad lagged notification"
    | None -> (
      match Json.member "id" j with
      | Some (Json.Int id) -> (
        match (Json.member "ok" j, Json.member "error" j) with
        | Some payload, None -> Ok (Reply (id, R_ok payload))
        | None, Some err -> (
          match (Json.member "code" err, Json.member "msg" err) with
          | Some (Json.String code), Some (Json.String msg) ->
            Ok (Reply (id, R_error (code, msg)))
          | _ -> Error "bad error reply")
        | _ -> Error "reply with neither ok nor error")
      | _ -> Error ("unrecognised message: " ^ Json.to_string j)))

module D = Ode_odb.Database
module Value = Ode_base.Value
module Registry = Ode_obs.Registry
module Hist = Ode_obs.Hist
module P = Protocol

(* ------------------------------------------------------------------ *)
(* Connection state                                                    *)
(* ------------------------------------------------------------------ *)

(* The outbox is a queue of fully-encoded frames. Firing notifications
   are tagged so the bounded-outbox accounting (and the backpressure
   policies) apply to the stream, never to request replies — a reply is
   the answer to something the client just sent, so the client is
   reading. *)
type out_kind = K_firing | K_other

type conn = {
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  c_out : (out_kind * string) Queue.t;
  mutable c_head_off : int;  (* partial-write offset into the head frame *)
  mutable c_fir_queued : int;  (* K_firing frames currently queued *)
  mutable c_dropped : int;  (* drops since the last [lagged] notification *)
  mutable c_policy : P.policy;
  mutable c_sub : D.subscription option;
  mutable c_txn : D.txn option;
  mutable c_dead : bool;
}

type t = {
  db : D.t;
  scfg : D.Config.serve;
  listen_fd : Unix.file_descr;
  port : int;
  (* self-pipe: [stop] from another thread writes one byte to wake the
     select loop *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;
  mutable conns : conn list;
  (* the post coalescer: reversed items and reversed waiting
     (connection, request id, contributed count) triples, flushed as one
     [post_many] when the window closes, the cap is hit, or a barrier
     verb arrives *)
  mutable b_items : (int * Ode_event.Symbol.basic * Value.t list) list;
  mutable b_n : int;
  mutable b_waiters : (conn * int * int) list;
  mutable b_deadline : float;
  mutable n_batches : int;
  mutable n_requests : int;
  mutable n_accepted : int;
  mutable n_dropped : int;
  verb_hist : (string, Hist.t) Hashtbl.t;  (* per-verb handling latency *)
}

type stats = {
  s_connections : int;
  s_accepted : int;
  s_requests : int;
  s_batches : int;
  s_dropped : int;
}

let db t = t.db
let port t = t.port

let stats t =
  {
    s_connections = List.length t.conns;
    s_accepted = t.n_accepted;
    s_requests = t.n_requests;
    s_batches = t.n_batches;
    s_dropped = t.n_dropped;
  }

let create ?db ~(config : D.Config.t) () =
  (* a peer that vanishes mid-write must surface as EPIPE on the write,
     not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let db = match db with Some db -> db | None -> D.create_db ~config () in
  let scfg = config.D.Config.serve in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr =
    Unix.ADDR_INET (Client.resolve_host scfg.D.Config.host, scfg.D.Config.port)
  in
  (match Unix.bind listen_fd addr with
  | () -> ()
  | exception e ->
    Unix.close listen_fd;
    raise e);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> scfg.D.Config.port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  {
    db;
    scfg;
    listen_fd;
    port;
    wake_r;
    wake_w;
    stopping = Atomic.make false;
    thread = None;
    conns = [];
    b_items = [];
    b_n = 0;
    b_waiters = [];
    b_deadline = 0.0;
    n_batches = 0;
    n_requests = 0;
    n_accepted = 0;
    n_dropped = 0;
    verb_hist = Hashtbl.create 16;
  }

(* ------------------------------------------------------------------ *)
(* Output path                                                         *)
(* ------------------------------------------------------------------ *)

(* Write queued frames until the socket would block. A hard write error
   only marks the connection dead — teardown (unsubscribe, abort, close)
   happens in the main loop's sweep, never from inside the posting
   pipeline. *)
let write_some conn =
  (try
     let progress = ref true in
     while !progress && not (Queue.is_empty conn.c_out) do
       let kind, s = Queue.peek conn.c_out in
       let len = String.length s in
       let n =
         Unix.write conn.c_fd
           (Bytes.unsafe_of_string s)
           conn.c_head_off (len - conn.c_head_off)
       in
       if n <= 0 then progress := false
       else begin
         conn.c_head_off <- conn.c_head_off + n;
         if conn.c_head_off = len then begin
           ignore (Queue.pop conn.c_out);
           conn.c_head_off <- 0;
           if kind = K_firing then conn.c_fir_queued <- conn.c_fir_queued - 1
         end
         else progress := false
       end
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ | Sys_error _ -> conn.c_dead <- true);
  ()

let push_frame conn kind payload =
  if not conn.c_dead then begin
    Queue.add (kind, Frame.encode payload) conn.c_out;
    if kind = K_firing then conn.c_fir_queued <- conn.c_fir_queued + 1
  end

let reply conn ~id resp = push_frame conn K_other (P.encode_reply ~id resp)

(* The Block policy: stall right here — inside the posting pipeline —
   until this subscriber's outbox has room or the subscriber dies.
   This is the documented contract: block-policy subscribers are
   lossless, and one that stops reading stops the server. *)
let drain_until_room t conn =
  while (not conn.c_dead) && conn.c_fir_queued >= t.scfg.D.Config.outbox_bound do
    match Unix.select [] [ conn.c_fd ] [] 1.0 with
    | _, w, _ -> if w <> [] then write_some conn
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let push_firing t conn (f : D.firing) =
  if not conn.c_dead then begin
    let wire =
      {
        P.fg_trigger = f.D.f_trigger;
        fg_class = f.D.f_class;
        fg_oid = f.D.f_oid;
        fg_at = f.D.f_at;
        fg_txn = f.D.f_txn;
      }
    in
    let bound = t.scfg.D.Config.outbox_bound in
    match conn.c_policy with
    | P.Drop when conn.c_fir_queued >= bound ->
      conn.c_dropped <- conn.c_dropped + 1;
      t.n_dropped <- t.n_dropped + 1;
      let obs = D.observe t.db in
      if Registry.enabled obs then Registry.incr obs Registry.Net_outbox_dropped
    | P.Drop ->
      if conn.c_dropped > 0 then begin
        push_frame conn K_other (P.encode_lagged conn.c_dropped);
        conn.c_dropped <- 0
      end;
      push_frame conn K_firing (P.encode_firing wire)
    | P.Block ->
      if conn.c_fir_queued >= bound then drain_until_room t conn;
      push_frame conn K_firing (P.encode_firing wire)
  end

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let items_of ps = List.map (fun it -> (it.P.i_oid, it.P.i_event, it.P.i_args)) ps

(* Flush the coalesced batch as one [post_many] inside one server
   transaction, then answer every request that contributed. All the
   coalesced posts came from clients with no open transaction, so order
   within the batch is arrival order and the outcome is exactly what
   the same merged sequence produces through the in-process API (the
   equivalence property in test/test_net.ml). *)
let flush_batch t =
  if t.b_n > 0 then begin
    let items = List.rev t.b_items in
    let waiters = List.rev t.b_waiters in
    t.b_items <- [];
    t.b_n <- 0;
    t.b_waiters <- [];
    t.n_batches <- t.n_batches + 1;
    let serial = t.n_batches in
    let answer resp =
      List.iter
        (fun (conn, id, n) ->
          let resp =
            match resp with
            | `Fired total ->
              P.R_ok
                (Json.Obj
                   [
                     ("batch", Json.Int serial);
                     ("queued", Json.Int n);
                     ("firings", Json.Int total);
                   ])
            | `Err (code, msg) -> P.R_error (code, msg)
          in
          reply conn ~id resp)
        waiters
    in
    let fired = ref 0 in
    match D.with_txn t.db (fun _ -> fired := D.post_many t.db items) with
    | Ok () -> answer (`Fired !fired)
    | Error `Aborted -> answer (`Err (P.err_aborted, "batch aborted"))
    | exception D.Ode_error msg -> answer (`Err (P.err_ode, msg))
    | exception D.Lock_conflict oid ->
      answer (`Err (P.err_ode, Printf.sprintf "lock conflict on oid %d" oid))
    | exception Value.Type_error msg ->
      answer (`Err (P.err_ode, "type error: " ^ msg))
    (* last resort: flush_batch also runs from the select loop's window
       timer, so anything escaping here would both kill the server and
       leave every coalesced waiter without a reply *)
    | exception e ->
      answer (`Err (P.err_ode, "internal error: " ^ Printexc.to_string e))
  end

let due t now = t.b_n > 0 && now >= t.b_deadline
let window_s t = float_of_int t.scfg.D.Config.batch_window_ms /. 1000.0

(* Run [f] for a connection that holds no transaction: begin/commit
   around it, mapping the abort outcomes onto wire errors. *)
let in_auto_txn t f =
  match D.with_txn t.db (fun _ -> f ()) with
  | Ok j -> P.R_ok j
  | Error `Aborted -> P.R_error (P.err_aborted, "transaction aborted")
  | exception D.Ode_error msg -> P.R_error (P.err_ode, msg)
  | exception D.Lock_conflict oid ->
    P.R_error (P.err_ode, Printf.sprintf "lock conflict on oid %d" oid)
  | exception Value.Type_error msg -> P.R_error (P.err_ode, "type error: " ^ msg)

(* Run [f] inside the connection's open transaction. [Tabort] from a
   trigger action aborts that transaction — the wire client learns via
   [err_aborted] and the transaction is gone. *)
let in_conn_txn t conn tx f =
  D.switch_txn t.db tx;
  match f () with
  | j -> P.R_ok j
  | exception D.Tabort ->
    conn.c_txn <- None;
    (try D.abort t.db tx with _ -> ());
    P.R_error (P.err_aborted, "transaction aborted")
  | exception D.Lock_conflict oid ->
    conn.c_txn <- None;
    (try D.abort t.db tx with _ -> ());
    P.R_error (P.err_ode, Printf.sprintf "lock conflict on oid %d" oid)
  | exception D.Ode_error msg -> P.R_error (P.err_ode, msg)
  | exception Value.Type_error msg -> P.R_error (P.err_ode, "type error: " ^ msg)

let status_json t =
  let module J = Json in
  let d = D.stats t.db in
  let verb_rows =
    Hashtbl.fold
      (fun verb h acc ->
        ( verb,
          J.Obj
            [
              ("count", J.Int (Hist.count h));
              ("p50_us", J.Float (float_of_int (Hist.quantile_ns h 0.5) /. 1e3));
              ("p99_us", J.Float (float_of_int (Hist.quantile_ns h 0.99) /. 1e3));
              ("max_us", J.Float (float_of_int (Hist.max_ns h) /. 1e3));
            ] )
        :: acc)
      t.verb_hist []
  in
  J.Obj
    [
      ("config", J.String (D.config_summary t.db));
      ( "server",
        J.Obj
          [
            ("port", J.Int t.port);
            ("connections", J.Int (List.length t.conns));
            ("accepted", J.Int t.n_accepted);
            ("requests", J.Int t.n_requests);
            ("batches", J.Int t.n_batches);
            ("outbox_dropped", J.Int t.n_dropped);
            ("subscribers", J.Int (D.subscriber_count t.db));
            ("batch_window_ms", J.Int t.scfg.D.Config.batch_window_ms);
            ("outbox_bound", J.Int t.scfg.D.Config.outbox_bound);
          ] );
      ( "db",
        J.Obj
          [
            ("objects", J.Int d.D.n_objects);
            ("classes", J.Int d.D.n_classes);
            ("active_triggers", J.Int d.D.n_active_triggers);
            ("timers", J.Int d.D.n_timers);
            ("state_bytes", J.Int d.D.state_bytes);
            ("clock_ms", J.Int (Int64.to_int (D.now t.db)));
          ] );
      ("verbs", J.Obj (List.sort compare verb_rows));
    ]

let handle_request t conn ~id (req : P.request) =
  let barrier () = flush_batch t in
  match req with
  | P.Post it when conn.c_txn = None ->
    (* the coalescer path: no reply yet — it comes with the flush *)
    if t.b_n = 0 then t.b_deadline <- Unix.gettimeofday () +. window_s t;
    t.b_items <- (it.P.i_oid, it.P.i_event, it.P.i_args) :: t.b_items;
    t.b_n <- t.b_n + 1;
    t.b_waiters <- (conn, id, 1) :: t.b_waiters;
    if t.b_n >= t.scfg.D.Config.max_batch then flush_batch t
  | P.Post_many [] when conn.c_txn = None ->
    (* a true no-op: answered on the spot — enrolling a zero-item waiter
       would wait on a window that [due] never opens (it watches
       [b_n > 0]), and routing it through the flush would spend a
       server transaction (and a WAL batch record) on posting nothing.
       [batch = 0] marks "joined no batch". *)
    reply conn ~id
      (P.R_ok
         (Json.Obj
            [
              ("batch", Json.Int 0);
              ("queued", Json.Int 0);
              ("firings", Json.Int 0);
            ]))
  | P.Post_many its when conn.c_txn = None ->
    if t.b_n = 0 then t.b_deadline <- Unix.gettimeofday () +. window_s t;
    List.iter
      (fun it -> t.b_items <- (it.P.i_oid, it.P.i_event, it.P.i_args) :: t.b_items)
      its;
    t.b_n <- t.b_n + List.length its;
    t.b_waiters <- (conn, id, List.length its) :: t.b_waiters;
    if t.b_n >= t.scfg.D.Config.max_batch then flush_batch t
  | P.Post it ->
    barrier ();
    let tx = Option.get conn.c_txn in
    reply conn ~id
      (in_conn_txn t conn tx (fun () ->
           let n = D.post_many t.db (items_of [ it ]) in
           Json.Obj [ ("firings", Json.Int n) ]))
  | P.Post_many its ->
    barrier ();
    let tx = Option.get conn.c_txn in
    reply conn ~id
      (in_conn_txn t conn tx (fun () ->
           let n = D.post_many t.db (items_of its) in
           Json.Obj [ ("firings", Json.Int n) ]))
  | P.Status ->
    barrier ();
    reply conn ~id (P.R_ok (status_json t))
  | P.Schema src -> (
    barrier ();
    match Ode_odl.Odl.load_schema t.db src with
    | classes ->
      reply conn ~id
        (P.R_ok
           (Json.Obj
              [ ("classes", Json.List (List.map (fun c -> Json.String c) classes)) ]))
    | exception Ode_odl.Odl.Odl_error (msg, pos) ->
      reply conn ~id
        (P.R_error (P.err_ode, Printf.sprintf "ODL error at offset %d: %s" pos msg))
    | exception D.Ode_error msg -> reply conn ~id (P.R_error (P.err_ode, msg)))
  | P.Create (cls, args) ->
    barrier ();
    let mk () = Json.Obj [ ("oid", Json.Int (D.create t.db cls args)) ] in
    reply conn ~id
      (match conn.c_txn with
      | Some tx -> in_conn_txn t conn tx mk
      | None -> in_auto_txn t mk)
  | P.Call (oid, name, args) ->
    barrier ();
    let mk () =
      Json.Obj [ ("result", P.encode_value (D.call t.db oid name args)) ]
    in
    reply conn ~id
      (match conn.c_txn with
      | Some tx -> in_conn_txn t conn tx mk
      | None -> in_auto_txn t mk)
  | P.Tbegin ->
    barrier ();
    reply conn ~id
      (match conn.c_txn with
      | Some _ -> P.R_error (P.err_state, "transaction already open")
      | None -> (
        match D.begin_txn t.db with
        | tx ->
          conn.c_txn <- Some tx;
          P.R_ok (Json.Obj [ ("txn", Json.Int (D.txn_id tx)) ])
        | exception D.Ode_error msg -> P.R_error (P.err_ode, msg)))
  | P.Tcommit ->
    barrier ();
    reply conn ~id
      (match conn.c_txn with
      | None -> P.R_error (P.err_state, "no open transaction")
      | Some tx -> (
        conn.c_txn <- None;
        match D.commit t.db tx with
        | Ok () -> P.R_ok (Json.Obj [ ("committed", Json.Bool true) ])
        | Error `Aborted -> P.R_error (P.err_aborted, "transaction aborted")
        | exception D.Ode_error msg -> P.R_error (P.err_ode, msg)))
  | P.Tabort ->
    barrier ();
    reply conn ~id
      (match conn.c_txn with
      | None -> P.R_error (P.err_state, "no open transaction")
      | Some tx -> (
        conn.c_txn <- None;
        match D.abort t.db tx with
        | () -> P.R_ok (Json.Obj [ ("aborted", Json.Bool true) ])
        | exception D.Ode_error msg -> P.R_error (P.err_ode, msg)))
  | P.Advance_clock ms ->
    barrier ();
    reply conn ~id
      (match D.advance_clock t.db ms with
      | () -> P.R_ok (Json.Obj [ ("now", Json.Int (Int64.to_int (D.now t.db))) ])
      | exception D.Ode_error msg -> P.R_error (P.err_ode, msg))
  | P.Save path ->
    barrier ();
    reply conn ~id
      (match D.save t.db path with
      | () -> P.R_ok (Json.Obj [ ("saved", Json.String path) ])
      | exception D.Ode_error msg -> P.R_error (P.err_ode, msg)
      | exception Sys_error msg -> P.R_error (P.err_ode, msg))
  | P.Subscribe policy ->
    barrier ();
    reply conn ~id
      (match conn.c_sub with
      | Some _ -> P.R_error (P.err_state, "already subscribed")
      | None ->
        conn.c_policy <- policy;
        conn.c_sub <- Some (D.subscribe_firings t.db (fun f -> push_firing t conn f));
        P.R_ok
          (Json.Obj
             [
               ( "policy",
                 Json.String (match policy with P.Block -> "block" | P.Drop -> "drop")
               );
             ]))
  | P.Unsubscribe ->
    barrier ();
    reply conn ~id
      (match conn.c_sub with
      | None -> P.R_error (P.err_state, "not subscribed")
      | Some sub ->
        D.unsubscribe t.db sub;
        conn.c_sub <- None;
        P.R_ok (Json.Obj [ ("unsubscribed", Json.Bool true) ]))
  | P.Shutdown ->
    barrier ();
    reply conn ~id (P.R_ok (Json.Obj [ ("stopping", Json.Bool true) ]));
    Atomic.set t.stopping true

let verb_hist t verb =
  match Hashtbl.find_opt t.verb_hist verb with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add t.verb_hist verb h;
    h

let handle_payload t conn payload =
  t.n_requests <- t.n_requests + 1;
  let obs = D.observe t.db in
  if Registry.enabled obs then Registry.incr obs Registry.Net_requests;
  match Json.of_string payload with
  | Error msg -> reply conn ~id:(-1) (P.R_error (P.err_parse, msg))
  | Ok j -> (
    match P.decode_request j with
    | Error msg ->
      (* salvage the id when the envelope carried one, so the client can
         correlate the rejection *)
      let id =
        match Json.member "id" j with Some (Json.Int id) -> id | _ -> -1
      in
      reply conn ~id (P.R_error (P.err_bad_request, msg))
    | Ok (id, req) ->
      let t0 = Registry.now_ns () in
      (* exception barrier: one bad request must never take down the
         select loop — anything the verb handlers did not map to a wire
         error themselves becomes an error reply on this connection *)
      (try handle_request t conn ~id req
       with e ->
         reply conn ~id (P.R_error (P.err_ode, "internal error: " ^ Printexc.to_string e)));
      Hist.record (verb_hist t (P.verb_of_request req)) (Registry.now_ns () - t0))

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                *)
(* ------------------------------------------------------------------ *)

(* Full teardown — the "small fix" invariant: a dropped connection takes
   its subscription, its open transaction and its outbox with it, so a
   connect/subscribe/disconnect storm leaves the database exactly where
   it started (pinned by test_net's leak test). Only ever called from
   the main loop, never from inside the posting pipeline. *)
let teardown t conn =
  conn.c_dead <- true;
  (match conn.c_sub with
  | Some sub ->
    D.unsubscribe t.db sub;
    conn.c_sub <- None
  | None -> ());
  (match conn.c_txn with
  | Some tx ->
    conn.c_txn <- None;
    (try D.abort t.db tx with _ -> ())
  | None -> ());
  Queue.clear conn.c_out;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> not (c == conn)) t.conns

(* [Unix.select] is limited to fds below FD_SETSIZE (1024); past the cap
   we stop accepting (and stop polling the listen socket), so excess
   connection attempts wait in the kernel backlog instead of pushing an
   fd into select's undefined range and crashing the loop. *)
let max_conns = 960

let accept_loop t =
  let continue = ref true in
  while !continue && List.length t.conns < max_conns do
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let conn =
        {
          c_fd = fd;
          c_dec = Frame.decoder ~max:t.scfg.D.Config.max_frame_bytes ();
          c_out = Queue.create ();
          c_head_off = 0;
          c_fir_queued = 0;
          c_dropped = 0;
          c_policy =
            (match t.scfg.D.Config.backpressure with
            | D.Config.Block -> P.Block
            | D.Config.Drop -> P.Drop);
          c_sub = None;
          c_txn = None;
          c_dead = false;
        }
      in
      t.conns <- conn :: t.conns;
      t.n_accepted <- t.n_accepted + 1;
      let obs = D.observe t.db in
      if Registry.enabled obs then Registry.incr obs Registry.Net_connections
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_buf = Bytes.create 65536

let pump_reads t conn =
  let continue = ref true in
  while !continue && not conn.c_dead do
    match Unix.read conn.c_fd read_buf 0 (Bytes.length read_buf) with
    | 0 ->
      (* EOF: a peer that died mid-frame is torn down like any other *)
      conn.c_dead <- true;
      continue := false
    | n ->
      Frame.feed conn.c_dec read_buf n;
      let drain = ref true in
      while !drain && not conn.c_dead do
        match Frame.next conn.c_dec with
        | Ok (Some payload) -> handle_payload t conn payload
        | Ok None -> drain := false
        | Error (`Oversized len) ->
          (* unrecoverable for a length-prefixed stream: tell the peer,
             then drop it (best-effort — the write may fail) *)
          reply conn ~id:(-1)
            (P.R_error
               ( P.err_parse,
                 Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
                   t.scfg.D.Config.max_frame_bytes ));
          write_some conn;
          conn.c_dead <- true;
          drain := false
      done;
      if n < Bytes.length read_buf then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
      conn.c_dead <- true;
      continue := false
  done

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let run t =
  while not (Atomic.get t.stopping) do
    let now = Unix.gettimeofday () in
    let timeout =
      if t.b_n > 0 then Float.max 0.0 (t.b_deadline -. now) else 0.25
    in
    let readers =
      let conn_fds = t.wake_r :: List.map (fun c -> c.c_fd) t.conns in
      if List.length t.conns < max_conns then t.listen_fd :: conn_fds
      else conn_fds
    in
    let writers =
      List.filter_map
        (fun c -> if Queue.is_empty c.c_out then None else Some c.c_fd)
        t.conns
    in
    (match Unix.select readers writers [] timeout with
    | rs, ws, _ ->
      if List.memq t.wake_r rs then drain_wake t;
      if List.memq t.listen_fd rs then accept_loop t;
      List.iter (fun c -> if List.memq c.c_fd rs then pump_reads t c) t.conns;
      (* window close: [batch_window_ms = 0] flushes at the end of every
         read burst, a positive window when its deadline passes *)
      if t.b_n > 0 && (t.scfg.D.Config.batch_window_ms = 0 || due t (Unix.gettimeofday ()))
      then flush_batch t;
      List.iter (fun c -> if List.memq c.c_fd ws then write_some c) t.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* sweep: teardown everything that died this iteration *)
    List.iter (fun c -> if c.c_dead then teardown t c) t.conns
  done;
  (* orderly shutdown: answer the posts still in the window, then give
     each client a bounded chance to drain its outbox *)
  flush_batch t;
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec drain () =
    let pending =
      List.filter_map
        (fun c ->
          if c.c_dead || Queue.is_empty c.c_out then None else Some c.c_fd)
        t.conns
    in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] pending [] 0.1 with
      | _, ws, _ ->
        List.iter (fun c -> if List.memq c.c_fd ws then write_some c) t.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      drain ()
    end
  in
  drain ();
  List.iter (fun c -> teardown t c) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let start t = t.thread <- Some (Thread.create run t)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    match Unix.write t.wake_w (Bytes.of_string "x") 0 1 with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  end;
  match t.thread with
  | Some th ->
    t.thread <- None;
    Thread.join th
  | None -> ()

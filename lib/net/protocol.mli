(** The wire vocabulary of [odes serve] (docs/PROTOCOL.md §2–§4).

    Every frame payload is one JSON object. Client → server frames are
    {e requests} — [{"id": n, "verb": v, ...}] — and every request gets
    exactly one reply carrying the same [id]: [{"id": n, "ok": ...}] or
    [{"id": n, "error": {"code": c, "msg": m}}]. Server → client frames
    without an [id] are stream notifications: [{"firing": {...}}]
    delivers one trigger firing to a subscriber, [{"lagged": k}] tells a
    [drop]-policy subscriber that [k] firings were dropped since its
    last delivered one.

    Encoding of the database vocabulary:
    - a {!Ode_base.Value.t} is [null] (Unit), a JSON bool/int/float,
      a JSON string, or [{"oid": n}]; non-finite floats travel as
      [{"float": "nan" | "inf" | "-inf"}];
    - a basic event is a tagged object, e.g.
      [{"k": "method", "q": "after", "name": "deposit"}] — see
      {!encode_basic};
    - timestamps and clock spans are JSON ints (milliseconds). *)

module Value = Ode_base.Value
module Symbol = Ode_event.Symbol

type item = {
  i_oid : int;
  i_event : Symbol.basic;
  i_args : Value.t list;
}
(** One basic-event occurrence to post: the [post]/[post_many] payload
    and the unit the server's batch coalescer works in. *)

type policy = Block | Drop
(** Subscriber backpressure when its outbox is full: [Block] stalls the
    server until the client drains (no firing is ever lost), [Drop]
    discards the newest firing and counts it (the client learns via
    [{"lagged": k}]). *)

type request =
  | Status
  | Schema of string  (** ODL source to register, server-side *)
  | Create of string * Value.t list  (** class name, constructor args *)
  | Post of item
  | Post_many of item list
  | Call of int * string * Value.t list
  | Tbegin
  | Tcommit
  | Tabort
  | Advance_clock of int64  (** span, ms *)
  | Save of string  (** server-side path *)
  | Subscribe of policy
  | Unsubscribe
  | Shutdown

type firing = {
  fg_trigger : string;
  fg_class : string;
  fg_oid : int;
  fg_at : int64;
  fg_txn : int;
}

type response = R_ok of Json.t | R_error of string * string  (** code, msg *)

type msg =
  | Reply of int * response
  | Firing of firing
  | Lagged of int
(** Everything a client can pull off the stream. *)

(** {1 Values and events} *)

val encode_value : Value.t -> Json.t
val decode_value : Json.t -> (Value.t, string) result
val encode_basic : Symbol.basic -> Json.t
val decode_basic : Json.t -> (Symbol.basic, string) result

(** {1 Requests (client side encodes, server side decodes)} *)

val verb_of_request : request -> string
(** The wire verb, e.g. ["post_many"] — the key of the server's
    per-verb latency histograms. *)

val encode_request : id:int -> request -> string
val decode_request : Json.t -> (int * request, string) result

(** {1 Server → client messages} *)

val encode_reply : id:int -> response -> string
val encode_firing : firing -> string
val encode_lagged : int -> string
val decode_msg : Json.t -> (msg, string) result

(** {1 Error codes} (docs/PROTOCOL.md §4) *)

val err_parse : string
(** ["parse"] — unparseable frame payload *)

val err_bad_request : string
(** ["bad_request"] — well-formed JSON, malformed request *)

val err_aborted : string
(** ["aborted"] — the transaction aborted *)

val err_state : string
(** ["state"] — verb illegal in this state *)

val err_ode : string
(** ["ode"] — a database error, msg verbatim *)

(** A minimal JSON value type, printer and parser for the wire protocol.

    The repository deliberately avoids external JSON dependencies: the
    protocol needs only the six JSON forms, and the parser below is a
    few dozen lines of recursive descent. Numbers keep the int/float
    distinction the {!Ode_base.Value} universe needs: a token with a
    [.], [e] or [E] parses as [Float], everything else as [Int]
    (falling back to [Float] past 63-bit range). Non-finite floats
    (which JSON cannot carry) print as the strings ["nan"], ["inf"]
    and ["-inf"] tagged inside {!Protocol}'s value encoding, never
    here. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val to_string : t -> string
(** Compact (no whitespace) rendering. Strings are escaped per RFC
    8259; non-ASCII bytes pass through unescaped (the wire is UTF-8).
    Finite floats render with enough digits to round-trip; a float
    whose rendering has no [.]/[e] gains a trailing [".0"] so it
    re-parses as [Float]. Raises [Invalid_argument] on a non-finite
    float — the protocol layer never produces one. *)

val of_string : string -> (t, string) result
(** Parse one JSON value spanning the whole input (trailing whitespace
    allowed). The error string names the offset and what went wrong. *)

(** {1 Accessors} — shallow helpers the protocol decoder uses. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or when absent. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option

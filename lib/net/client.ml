module P = Protocol

exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  firings : P.firing Queue.t;
  mutable lagged : int;
  mutable closed : bool;
}

(* Numeric addresses stay on the cheap path; anything else ("localhost",
   a DNS name) goes through getaddrinfo rather than surfacing
   inet_addr_of_string's bare [Failure]. *)
let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    let hits =
      try
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with Not_found -> []
    in
    match
      List.find_map
        (function
          | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } -> Some addr
          | _ -> None)
        hits
    with
    | Some addr -> addr
    | None -> failwith (Printf.sprintf "cannot resolve host %S" host))

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_INET (resolve_host host, port)) with
  | () -> ()
  | exception e ->
    Unix.close fd;
    raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; next_id = 1; firings = Queue.create (); lagged = 0; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let read_msg t =
  match Frame.read_frame t.fd with
  | Error Frame.Eof -> raise End_of_file
  | Error (Frame.Truncated owed) ->
    raise (Protocol_error (Printf.sprintf "stream ended %d bytes short" owed))
  | Error (Frame.Oversized len) ->
    raise (Protocol_error (Printf.sprintf "oversized frame (%d bytes)" len))
  | Ok payload -> (
    match Json.of_string payload with
    | Error msg -> raise (Protocol_error ("bad JSON from server: " ^ msg))
    | Ok j -> (
      match P.decode_msg j with
      | Error msg -> raise (Protocol_error msg)
      | Ok m -> m))

(* Stream notifications can arrive at any point between a request and
   its reply; stash them so the caller sees a clean request/reply
   surface and an independent firing stream. *)
let stash t = function
  | P.Firing f -> Queue.add f t.firings
  | P.Lagged k -> t.lagged <- t.lagged + k
  | P.Reply (id, _) ->
    raise (Protocol_error (Printf.sprintf "unexpected reply for id %d" id))

let request t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  Frame.write_frame t.fd (P.encode_request ~id req);
  let rec await () =
    match read_msg t with
    | P.Reply (rid, resp) when rid = id -> (
      match resp with
      | P.R_ok j -> Ok j
      | P.R_error (code, msg) -> Error (code, msg))
    | P.Reply (rid, _) ->
      raise
        (Protocol_error (Printf.sprintf "reply id %d, expected %d" rid id))
    | m ->
      stash t m;
      await ()
  in
  await ()

let readable ?(timeout_s = 0.0) t =
  match Unix.select [ t.fd ] [] [] timeout_s with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let poll_firings t =
  while readable t do
    stash t (read_msg t)
  done;
  let out = List.of_seq (Queue.to_seq t.firings) in
  Queue.clear t.firings;
  out

let wait_firing ?(timeout_s = 5.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if not (Queue.is_empty t.firings) then Some (Queue.pop t.firings)
    else begin
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then None
      else if readable ~timeout_s:left t then begin
        stash t (read_msg t);
        go ()
      end
      else None
    end
  in
  go ()

let lagged_total t = t.lagged

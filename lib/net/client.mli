(** A blocking wire client for [odes serve] (docs/PROTOCOL.md).

    One TCP connection, one outstanding request at a time: {!request}
    writes a frame and reads until the matching reply arrives. Stream
    notifications that interleave with the reply — firings for a
    subscribed client, [lagged] counts — are buffered, never lost:
    pull them with {!poll_firings} (non-blocking) or {!wait_firing}
    (bounded wait). Used by [odec client], the soak bench and the wire
    test suite. *)

type t

val resolve_host : string -> Unix.inet_addr
(** Numeric dotted-quad directly, otherwise a getaddrinfo lookup (so
    "localhost" works). Raises [Failure] with the host name when nothing
    resolves. *)

val connect : ?host:string -> port:int -> unit -> t
(** Raises [Unix.Unix_error] when nothing listens there and [Failure]
    when [host] does not resolve. *)

val close : t -> unit
(** Close the socket (the server tears down the subscription and any
    open transaction). Idempotent. *)

val request : t -> Protocol.request -> (Json.t, string * string) result
(** Send one request, block until its reply; [Error (code, msg)] is the
    server's error reply. Raises [Protocol_error] if the stream is
    corrupt and [End_of_file] if the server closed it. *)

val poll_firings : t -> Protocol.firing list
(** Buffered firings plus whatever is readable right now, oldest
    first, without blocking. *)

val wait_firing : ?timeout_s:float -> t -> Protocol.firing option
(** Next firing, waiting up to [timeout_s] (default 5s) for one to
    arrive; [None] on timeout. *)

val lagged_total : t -> int
(** Sum of every [{"lagged": k}] notification received so far — the
    firings a [Drop]-policy subscription lost. *)

exception Protocol_error of string

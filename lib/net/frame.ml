let max_frame_default = 16 * 1024 * 1024

let header_of_len len =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.unsafe_to_string b

let len_of_header s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode payload = header_of_len (String.length payload) ^ payload

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let write_frame fd payload = write_all fd (encode payload)

type read_error = Eof | Truncated of int | Oversized of int

(* read exactly [n] bytes; [`Short k] when EOF arrived with k still owed *)
let read_exactly fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    let r = Unix.read fd b !got (n - !got) in
    if r = 0 then eof := true else got := !got + r
  done;
  if !got = n then Ok (Bytes.unsafe_to_string b) else Error (n - !got)

let read_frame ?(max = max_frame_default) fd =
  match read_exactly fd 4 with
  | Error 4 -> Error Eof
  | Error owed -> Error (Truncated owed)
  | Ok hdr ->
    let len = len_of_header hdr 0 in
    if len <= 0 || len > max then Error (Oversized len)
    else (
      match read_exactly fd len with
      | Ok payload -> Ok payload
      | Error owed -> Error (Truncated owed))

(* ------------------------------------------------------------------ *)
(* Incremental decoder                                                 *)
(* ------------------------------------------------------------------ *)

(* A grow-only buffer with a consume offset, compacted when the parsed
   prefix dominates — bounded memory under a long-lived connection. *)
type decoder = {
  max : int;
  buf : Buffer.t;
  mutable off : int;  (* bytes of [buf] already returned *)
  mutable bad : int option;  (* the oversized length, once seen *)
}

let decoder ?(max = max_frame_default) () =
  { max; buf = Buffer.create 4096; off = 0; bad = None }

let feed d b n = Buffer.add_subbytes d.buf b 0 n

let compact d =
  if d.off > 65536 && d.off * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let next d =
  match d.bad with
  | Some len -> Error (`Oversized len)
  | None ->
    let avail = Buffer.length d.buf - d.off in
    if avail < 4 then Ok None
    else begin
      let hdr = Buffer.sub d.buf d.off 4 in
      let len = len_of_header hdr 0 in
      if len <= 0 || len > d.max then begin
        d.bad <- Some len;
        Error (`Oversized len)
      end
      else if avail < 4 + len then Ok None
      else begin
        let payload = Buffer.sub d.buf (d.off + 4) len in
        d.off <- d.off + 4 + len;
        compact d;
        Ok (Some payload)
      end
    end

let pending d = Buffer.length d.buf - d.off

(** [odes serve] — the streaming RPC front door over one database
    (docs/PROTOCOL.md).

    One thread runs a [select] loop that owns the database outright:
    accepting connections, decoding frames, executing verbs and
    draining per-client outboxes all happen on that thread, so the
    engine below never sees concurrent callers — client concurrency is
    multiplexed into a single serialized request stream, and the
    parallelism {e inside} a [post_many] batch (the [Pool] domains
    configured by [Config.post_domains]) keeps working untouched
    underneath.

    The coalescer is what makes the wire path fast: [post] /
    [post_many] requests from clients with no open transaction
    accumulate into one pending batch, flushed as a single
    [Database.post_many] — through the compiled posting kernel — when
    the configured window closes, the batch cap is reached, or a
    non-post verb arrives (every other verb is a barrier, so the
    observable order equals arrival order). Each contributing request
    is answered after its batch commits.

    Firing delivery: a [subscribe]d connection gets every firing as a
    [{"firing": ...}] frame, queued on a bounded per-client outbox.
    When the outbox is full the client's chosen {!Protocol.policy}
    applies: [Block] makes the server drain that client synchronously
    from inside the posting pipeline (lossless — one stuck subscriber
    stalls the server, which is what "block" means), [Drop] discards
    the newest firing, counts it ([Net_outbox_dropped], and the
    per-connection count is reported to the client as a
    [{"lagged": k}] frame once space frees up).

    A client disconnect — detected on read {e or} mid-write — tears the
    connection down completely: its subscription is unsubscribed, its
    open transaction aborted, its outbox freed. The connection-leak
    test pins [Database.subscriber_count] and [stats.state_bytes] flat
    across a connect/subscribe/disconnect storm. *)

module D = Ode_odb.Database

type t

val create : ?db:D.t -> config:D.Config.t -> unit -> t
(** Bind and listen on [config.serve.host : config.serve.port] (port 0
    binds an ephemeral port — see {!port}). [db] defaults to
    [D.create_db ~config ()]; pass one to serve a database whose
    schema was registered natively. Raises [Unix.Unix_error] when the
    address is taken. *)

val port : t -> int
(** The actually-bound TCP port. *)

val db : t -> D.t

val run : t -> unit
(** The serve loop; blocks until {!stop} is called or a [shutdown]
    verb arrives, then closes every connection and the listener.
    Pending batches are flushed and outboxes drained (best-effort,
    bounded wait) before returning. *)

val start : t -> unit
(** Spawn {!run} on a background thread (for tests and the in-process
    soak bench). *)

val stop : t -> unit
(** Ask the loop to exit and — when {!start} was used — join it.
    Idempotent; safe from any thread. *)

type stats = {
  s_connections : int;  (** currently connected clients *)
  s_accepted : int;  (** connections accepted since start *)
  s_requests : int;  (** requests handled *)
  s_batches : int;  (** coalesced post_many flushes *)
  s_dropped : int;  (** firings discarded by Drop-policy outboxes *)
}

val stats : t -> stats
(** Read by tests after quiescing; the loop thread owns the counters. *)

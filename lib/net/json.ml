type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  (* shortest representation that round-trips, forced back to float
     syntax when it collapses to an integer literal *)
  let s =
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_json buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        add_json buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_json buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string                      *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* \uXXXX escapes decode to UTF-8, surrogate pairs included *)
  let utf8_add buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub src !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = src.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = src.[!pos] in
        advance ();
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
          let hi = hex4 () in
          let code =
            if hi >= 0xd800 && hi <= 0xdbff then begin
              (* surrogate pair *)
              if !pos + 2 > n || src.[!pos] <> '\\' || src.[!pos + 1] <> 'u'
              then fail "lone high surrogate";
              pos := !pos + 2;
              let lo = hex4 () in
              if lo < 0xdc00 || lo > 0xdfff then fail "bad low surrogate";
              0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00)
            end
            else hi
          in
          utf8_add buf code;
          go ()
        | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char src.[!pos] do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    (* a numeral that overflows to inf/nan is rejected rather than kept:
       the printer refuses non-finite floats, so admitting one here would
       break the parse/print round trip and turn a client-supplied
       [1e999] into a crash at the first re-encode *)
    let finite_float () =
      match float_of_string_opt s with
      | Some f when Float.is_finite f -> Float f
      | Some _ -> fail (Printf.sprintf "number %s out of range" s)
      | None -> fail (Printf.sprintf "bad number %S" s)
    in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
    if floaty then finite_float ()
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None ->
        (* out of int range: degrade to float like every JSON reader *)
        finite_float ()
  in
  (* recursion is bounded: a frame of nothing but '[' otherwise walks the
     stack to Stack_overflow, which no handler between here and the
     server's select loop catches *)
  let max_depth = 512 in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then fail "nesting too deep";
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

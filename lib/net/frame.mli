(** Length-prefixed framing (docs/PROTOCOL.md §1).

    One frame is [[len:4 bytes big-endian][payload: len bytes]]. The
    payload is one JSON document. [len = 0] and [len > max] are
    protocol violations: a peer that sends either is broken (or the
    stream is corrupt) and the connection must be dropped — there is no
    way to resynchronise a length-prefixed stream after a bad length.

    Two consumption styles: the blocking {!read_frame}/{!write_frame}
    pair for clients and tests, and the incremental {!decoder} the
    server's select loop feeds with whatever [read(2)] returned. *)

val max_frame_default : int
(** 16 MiB — the default cap on one payload. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking: the 4-byte header then the payload, looping over partial
    writes. Raises [Unix.Unix_error] on a dead peer. *)

val encode : string -> string
(** The frame bytes ([header ^ payload]) without writing them. *)

type read_error =
  | Eof  (** clean end of stream between frames *)
  | Truncated of int  (** EOF mid-frame, with the byte count still owed *)
  | Oversized of int  (** declared length exceeded [max] *)

val read_frame :
  ?max:int -> Unix.file_descr -> (string, read_error) result
(** Blocking read of exactly one frame. *)

(** {1 Incremental decoding} *)

type decoder

val decoder : ?max:int -> unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** Append the first [n] bytes of the buffer to the stream. *)

val next : decoder -> (string option, [ `Oversized of int ]) result
(** Pop the next complete payload, [Ok None] when more bytes are
    needed. After [`Oversized] the stream is unrecoverable; drop the
    connection. *)

val pending : decoder -> int
(** Bytes buffered but not yet returned — nonzero at EOF means the peer
    died mid-frame. *)

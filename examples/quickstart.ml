(* Quickstart: an account class with two composite-event triggers.

   Run with:  dune exec examples/quickstart.exe *)

module D = Ode_odb.Database
module Value = Ode_base.Value

let () =
  let db = D.create_db () in

  (* Subscribe to trigger firings: the callback runs synchronously,
     inside the transaction that posted the completing event. *)
  let firing_log = ref [] in
  let _sub = D.subscribe_firings db (fun f -> firing_log := f :: !firing_log) in

  (* A class is fields + member functions + triggers. Trigger events are
     written in the paper's O++ event sub-language. *)
  let account =
    D.define_class "account"
      ~constructor:(fun db oid _ ->
        (* arm the triggers when an account is created *)
        D.activate db oid "overdraft_guard" [];
        D.activate db oid "third_big_deposit" [])
    |> (fun b -> D.field b "balance" (Value.Int 0))
    |> (fun b ->
         D.method_ b ~arity:1 ~kind:D.Updating "deposit" (fun db oid args ->
             let q = List.hd args in
             D.set_field db oid "balance" (Value.add (D.get_field db oid "balance") q);
             Value.Unit))
    |> (fun b ->
         D.method_ b ~arity:1 ~kind:D.Updating "withdraw" (fun db oid args ->
             let q = List.hd args in
             D.set_field db oid "balance" (Value.sub (D.get_field db oid "balance") q);
             Value.Unit))
    (* An object-state event: fires when the balance falls below 0.
       The bare boolean expression abbreviates
       (after update | after create) && balance < 0 — and the action
       aborts the transaction, undoing the withdrawal. *)
    |> (fun b ->
         D.trigger_str b ~perpetual:true "overdraft_guard" ~event:"balance < 0"
           ~action:(fun _ _ ->
             print_endline "  !! overdraft attempt: aborting the transaction";
             raise D.Tabort))
    (* A composite event: the third large deposit, counted with the
       paper's choose operator, with a mask over the method parameter. *)
    |> fun b ->
    D.trigger_str b "third_big_deposit"
      ~event:"choose 3 (after deposit(q) && q >= 1000)"
      ~action:(fun db ctx ->
        Fmt.pr "  ** third big deposit on @%d (balance %a) — thanks!@."
          ctx.D.fc_oid Value.pp
          (D.get_field db ctx.D.fc_oid "balance"))
  in
  D.register_class db account;

  let ok = function Ok v -> v | Error `Aborted -> failwith "unexpected abort" in
  let acct = ok (D.with_txn db (fun _ -> D.create db "account" [])) in

  let deposit q =
    ignore (D.with_txn db (fun _ -> D.call db acct "deposit" [ Value.Int q ]))
  and withdraw q =
    match D.with_txn db (fun _ -> D.call db acct "withdraw" [ Value.Int q ]) with
    | Ok _ -> Fmt.pr "withdraw %d: ok@." q
    | Error `Aborted -> Fmt.pr "withdraw %d: rejected@." q
  in

  Fmt.pr "depositing 1200, 50, 3000, 9000...@.";
  deposit 1200;
  deposit 50;
  deposit 3000;
  deposit 9000 (* <- the third deposit >= 1000 fires here *);

  Fmt.pr "balance: %a@." Value.pp (D.get_field db acct "balance");
  withdraw 5000;
  withdraw 50_000 (* would overdraw: the trigger aborts it *);
  Fmt.pr "final balance: %a@." Value.pp (D.get_field db acct "balance");

  Fmt.pr "@.firing log:@.";
  List.iter
    (fun (f : D.firing) ->
      Fmt.pr "  %s.%s fired on @%d (txn %d)@." f.D.f_class f.D.f_trigger f.D.f_oid f.D.f_txn)
    (List.rev !firing_log)

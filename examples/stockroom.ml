(* The paper's §3.5 stockroom, narrated over two simulated days.

   Run with:  dune exec examples/stockroom.exe *)

module S = Ode_scenarios.Stockroom
module D = Ode_odb.Database
module Clock = Ode_odb.Clock

let hour = 3_600_000L

let show s label =
  Fmt.pr "%-42s orders=%d logs=%d reports=%d summaries=%d printlogs=%d avg=%d@." label
    (S.counter s "orders") (S.counter s "logs") (S.counter s "reports")
    (S.counter s "summaries") (S.counter s "printlogs") (S.counter s "avg_updates")

let must = function Ok () -> () | Error `Aborted -> Fmt.pr "  (transaction aborted)@."

let () =
  let s = S.setup () in
  let n_firings = ref 0 in
  let _sub = D.subscribe_firings s.S.db (fun _ -> incr n_firings) in
  Fmt.pr "Stockroom created at %a with triggers T1..T8 armed.@." Clock.pp_ms
    (D.now s.S.db);
  let widgets = S.new_item s ~name:"widgets" ~eoq:50 ~balance:1_000 in
  let gizmos = S.new_item s ~name:"gizmos" ~eoq:20 ~balance:100 in

  (* --- day one ------------------------------------------------------ *)
  D.advance_clock s.S.db (Int64.mul hour 9L);
  Fmt.pr "@.09:00 — the day begins.@.";

  Fmt.pr "Unauthorized user tries to withdraw (T1 aborts it):@.";
  s.S.current_user <- "mallory";
  must (S.withdraw s ~item:widgets ~qty:10);
  s.S.current_user <- "amy";

  Fmt.pr "Five large withdrawals (T6 logs each; T7 summarises the 5th):@.";
  for _ = 1 to 5 do
    must (S.withdraw s ~item:widgets ~qty:150)
  done;
  show s "after five large withdrawals";

  Fmt.pr "@.Deposit immediately followed by a withdrawal (T8):@.";
  must (S.deposit s ~item:gizmos ~qty:30);
  must (S.withdraw s ~item:gizmos ~qty:5);
  show s "after deposit;withdraw";

  Fmt.pr "@.Draining gizmos below their economic order quantity (T2 orders):@.";
  must (S.withdraw s ~item:gizmos ~qty:110);
  Fmt.pr "  gizmos balance: %d (eoq 20)@." (S.item_balance s gizmos);
  show s "after the drain";

  Fmt.pr "@.Two more transactions (the 10th+ commits of the day; T4 reports past the 5th):@.";
  must (S.deposit s ~item:widgets ~qty:1);
  must (S.deposit s ~item:widgets ~qty:1);
  show s "after more transactions";

  D.advance_clock s.S.db (Int64.mul hour 9L) (* 18:00 *);
  Fmt.pr "@.18:00 — past the end of the day (T3 summarised at 17:00).@.";
  show s "end of day one";

  (* --- day two ------------------------------------------------------ *)
  D.advance_clock s.S.db (Int64.mul hour 24L);
  Fmt.pr "@.Day two, 18:00 — T3 fired again; T4/T7 windows restarted.@.";
  show s "end of day two";

  Fmt.pr "@.%d trigger firings in total:@." !n_firings;
  let st = D.stats s.S.db in
  Fmt.pr
    "%d objects, %d active triggers, %d bytes of detection state (automaton \
     words plus collected §9 bindings).@."
    st.D.n_objects st.D.n_active_triggers st.D.state_bytes

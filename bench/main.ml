(* Benchmark harness regenerating the paper's evaluation claims.

   The paper (SIGMOD '92) has no numeric tables or figures; its evaluation
   is a set of efficiency claims about automaton-based composite-event
   detection. Each experiment E1–E8 below measures one claim; the mapping
   is recorded in DESIGN.md §6 and the results commentary in
   EXPERIMENTS.md. The harness prints shape tables first, then runs one
   Bechamel micro-benchmark per experiment. *)

open Ode_event
module P = Ode_lang.Parser
module Value = Ode_base.Value

let pf = Fmt.pr
let section title = pf "@.=== %s ===@." title

(* simple wall-clock measurement: ns per call, batched *)
let measure_ns ?(min_time = 0.05) f =
  (* warm up *)
  f ();
  let rec calibrate batch =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time then dt /. float_of_int batch *. 1e9
    else calibrate (batch * 4)
  in
  calibrate 1

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e9)

let seeded_history ~m ~len seed =
  Array.init len (fun i -> (seed + (i * 7919) + (i * i * 31)) mod m)

(* ------------------------------------------------------------------ *)
(* E1: per-event detection cost vs history length                      *)
(* ------------------------------------------------------------------ *)

let e1_expr =
  (* a T8-style adjacency plus an unbounded-window relative: exercises
     both the O(1) automaton and the growing instance tree *)
  "after deposit; before withdraw; after withdraw \
   | relative(after audit, after withdraw)"

let e1_alphabet_m = ref 0

let e1_lowered () =
  let expr = P.parse_event e1_expr in
  let alphabet, lowered, _ = Rewrite.build expr in
  e1_alphabet_m := Rewrite.n_symbols alphabet;
  lowered

let e1 () =
  section "E1: per-event detection cost vs history length (§5 claim: O(1) for automata)";
  let lowered = e1_lowered () in
  let m = !e1_alphabet_m in
  let compiled = Compile.compile ~m lowered in
  let mask _ = true in
  pf "expr: %s@." e1_expr;
  pf "(re-evaluation is O(history) per event and is skipped past 3000)@.";
  pf "%8s %14s %14s %14s %12s@." "history" "dfa ns/ev" "tree ns/ev" "reeval ns/ev"
    "tree insts";
  let rows =
    List.map
      (fun n ->
        let h = seeded_history ~m ~len:n 42 in
        let state = Compile.initial compiled in
        Array.iter (fun sym -> ignore (Compile.step compiled state sym ~mask)) h;
        let i = ref 0 in
        let dfa_ns =
          measure_ns (fun () ->
              ignore (Compile.step compiled state h.(!i mod n) ~mask);
              incr i)
        in
        (* stateful baselines grow with every post: time a fixed batch of
           200 further events at length n rather than letting a
           calibration loop inflate the history *)
        let batch = 200 in
        let tree = Ode_baseline.Incr.make lowered in
        Array.iter (fun sym -> ignore (Ode_baseline.Incr.post tree ~mask sym)) h;
        let insts = Ode_baseline.Incr.instance_count tree in
        let (), tree_total =
          time_once (fun () ->
              for j = 0 to batch - 1 do
                ignore (Ode_baseline.Incr.post tree ~mask h.(j mod n))
              done)
        in
        let tree_ns = tree_total /. float_of_int batch in
        let reeval_ns =
          if n > 3000 then None
          else begin
            let re = Ode_baseline.Reeval.make lowered in
            Array.iter (fun sym -> ignore (Ode_baseline.Reeval.post re ~mask sym)) h;
            let small_batch = 20 in
            let (), total =
              time_once (fun () ->
                  for k = 0 to small_batch - 1 do
                    ignore (Ode_baseline.Reeval.post re ~mask h.(k mod n))
                  done)
            in
            Some (total /. float_of_int small_batch)
          end
        in
        pf "%8d %14.0f %14.0f %14s %12d@." n dfa_ns tree_ns
          (match reeval_ns with Some ns -> Fmt.str "%.0f" ns | None -> "-")
          insts;
        (n, dfa_ns, tree_ns, reeval_ns))
      [ 100; 300; 1000; 3000; 10_000 ]
  in
  match rows, List.rev rows with
  | (_, d0, t0, _) :: _, (_, d1, t1, _) :: _ ->
    pf "shape: dfa cost %.1fx from n=100 to n=10000; tree cost %.1fx@." (d1 /. d0)
      (t1 /. t0)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* E2: compiled automaton size and compile time vs expression size     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2: automaton size / compile time vs expression size (§4-5)";
  let families =
    [
      ("sequence chain", fun d ->
        "sequence(" ^ String.concat ", " (List.init d (fun i -> Printf.sprintf "after m%d" i)) ^ ")");
      ("relative chain", fun d ->
        "relative(" ^ String.concat ", " (List.init d (fun i -> Printf.sprintf "after m%d" i)) ^ ")");
      ("prior chain", fun d ->
        "prior(" ^ String.concat ", " (List.init d (fun i -> Printf.sprintf "after m%d" i)) ^ ")");
      ("alternation", fun d ->
        String.concat " | " (List.init d (fun i -> Printf.sprintf "after m%d; after n%d" i i)));
      ("negation tower", fun d ->
        let rec build i = if i = 0 then "after base" else "!(" ^ build (i - 1) ^ " & after m" ^ string_of_int i ^ ")" in
        build d);
    ]
  in
  pf "%-16s %6s %10s %12s %14s@." "family" "depth" "leaves" "dfa states" "compile ns";
  List.iter
    (fun (name, make) ->
      List.iter
        (fun d ->
          let src = make d in
          let expr = P.parse_event src in
          let states = ref 0 in
          let leaves = List.length (Expr.logical_events expr) in
          let ns =
            measure_ns ~min_time:0.02 (fun () ->
                let alphabet, lowered, _ = Rewrite.build expr in
                let c = Compile.compile ~m:(Rewrite.n_symbols alphabet) lowered in
                states := Compile.total_dfa_states c)
          in
          let states, leaves = ((!states, leaves)) in
          let states, leaves = (states, leaves) in
          pf "%-16s %6d %10d %12d %14.0f@." name d leaves states ns)
        [ 1; 2; 4; 6; 8 ])
    families

(* ------------------------------------------------------------------ *)
(* E3: detection-state memory per object                               *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3: detection state per object (§5 claim: one word per active trigger)";
  let lowered = e1_lowered () in
  let m = !e1_alphabet_m in
  let compiled = Compile.compile ~m lowered in
  let n_objects = 1000 in
  pf "%d objects, one active trigger each, after n events per object:@." n_objects;
  pf "%8s %18s %18s %18s@." "n" "dfa bytes/obj" "tree bytes/obj" "reeval bytes/obj";
  List.iter
    (fun n ->
      let h = seeded_history ~m ~len:n 7 in
      let mask _ = true in
      (* automaton state: one int array per object *)
      let dfa_bytes = 8 * Compile.n_state_words compiled in
      let tree = Ode_baseline.Incr.make lowered in
      Array.iter (fun sym -> ignore (Ode_baseline.Incr.post tree ~mask sym)) h;
      let re = Ode_baseline.Reeval.make lowered in
      Array.iter (fun sym -> ignore (Ode_baseline.Reeval.post re ~mask sym)) h;
      pf "%8d %18d %18d %18d@." n dfa_bytes
        (Ode_baseline.Incr.state_bytes tree)
        (Ode_baseline.Reeval.state_bytes re))
    [ 10; 100; 1000 ]

(* ------------------------------------------------------------------ *)
(* E4: the committed-history lift (§6)                                 *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: committed-history lift A -> A' (§6 claim: <= |A|^2 states, same speed class)";
  (* alphabet: 0 tbegin, 1 tcommit, 2 tabort, 3.. ordinary *)
  let m = 6 in
  let tb s = s = 0 and tc s = s = 1 and ta s = s = 2 in
  let exprs =
    [
      ("choose 3 (update)", Lowered.Choose (3, Atom [| false; false; false; true; false; false |]));
      ("seq(u,v)", Lowered.Sequence (Atom [| false; false; false; true; false; false |],
                                     Atom [| false; false; false; false; true; false |]));
      ("rel(u, prior(v,w))",
       Lowered.Relative
         ( Atom [| false; false; false; true; false; false |],
           Lowered.Prior
             ( Atom [| false; false; false; false; true; false |],
               Atom [| false; false; false; false; false; true |] ) ));
    ]
  in
  (* well-formed history: txn blocks with 30% aborts *)
  let gen_h len =
    let out = ref [] in
    let i = ref 0 in
    while List.length !out < len do
      let body = 1 + (!i mod 3) in
      out := !out @ [ 0 ];
      for k = 1 to body do
        out := !out @ [ 3 + ((!i + k) mod 3) ]
      done;
      out := !out @ [ (if !i mod 10 < 3 then 2 else 1) ];
      incr i
    done;
    Array.of_list !out
  in
  let h = gen_h 3000 in
  pf "%-22s %8s %8s %10s %14s %14s@." "expr" "|A|" "|A'|" "bound" "A ns/ev" "A' ns/ev";
  List.iter
    (fun (name, e) ->
      let a = Compile.compile_pure ~m e in
      let a' = Committed.lift a ~tbegin:tb ~tcommit:tc ~tabort:ta in
      let bench d =
        let s = ref d.Dfa.start in
        let i = ref 0 in
        measure_ns (fun () ->
            s := Dfa.step d !s h.(!i mod Array.length h);
            incr i)
      in
      pf "%-22s %8d %8d %10d %14.0f %14.0f@." name (Dfa.n_states a) (Dfa.n_states a')
        (Dfa.n_states a * Dfa.n_states a)
        (bench a) (bench a'))
    exprs

(* ------------------------------------------------------------------ *)
(* E5: mask-disjointness rewriting blowup (§5)                         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: overlapping-mask rewriting (§5 claim: 2^k atoms, acceptable in practice)";
  pf "%4s %8s %12s %14s %16s@." "k" "atoms" "dfa states" "build ns" "classify ns/ev";
  List.iter
    (fun k ->
      let leaves =
        List.init k (fun i -> Printf.sprintf "before log && x%d > 0" i)
      in
      let src = String.concat " | " leaves in
      let expr = P.parse_event src in
      let (alphabet, det), build_ns =
        time_once (fun () ->
            let alphabet, _, _ = Rewrite.build expr in
            (alphabet, Detector.make expr))
      in
      let env =
        {
          Mask.empty_env with
          var =
            (fun name ->
              let i = int_of_string (String.sub name 1 (String.length name - 1)) in
              Some (Value.Int (if i mod 2 = 0 then 1 else 0)));
        }
      in
      let occ = { Symbol.basic = Symbol.Method (Before, "log"); args = []; at = 0L } in
      let state = Detector.initial det in
      let classify_ns = measure_ns (fun () -> ignore (Detector.post det state ~env occ)) in
      pf "%4d %8d %12d %14.0f %16.0f@." k
        (Array.length alphabet.Rewrite.atoms)
        (Compile.total_dfa_states det.Detector.compiled)
        build_ns classify_ns)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* E6: coupling modes (§7)                                             *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6: the nine coupling modes as event expressions (§7)";
  let cond = Mask.Call ("cond", []) in
  let event = Expr.after "edit" in
  (* a plausible transaction stream at the automaton level *)
  pf "%-24s %10s %12s %14s@." "mode" "states" "state words" "detect ns/ev";
  List.iter
    (fun mode ->
      let expr = Coupling.expression mode ~event ~cond in
      let det = Detector.make expr in
      let env =
        { Mask.empty_env with var = (fun _ -> None) }
      in
      let env = { env with Mask.call = (fun _ _ -> Value.Bool true) } in
      let stream =
        [
          Symbol.Tbegin; Symbol.Access Before; Symbol.Method (Before, "edit");
          Symbol.Method (After, "edit"); Symbol.Access After; Symbol.Tcomplete;
          Symbol.Tcommit;
        ]
      in
      let occs = List.map (fun b -> { Symbol.basic = b; args = []; at = 0L }) stream in
      let state = Detector.initial det in
      let i = ref 0 in
      let occs = Array.of_list occs in
      let ns =
        measure_ns (fun () ->
            ignore (Detector.post det state ~env occs.(!i mod Array.length occs));
            incr i)
      in
      pf "%-24s %10d %12d %14.0f@." (Coupling.name mode)
        (Compile.total_dfa_states det.Detector.compiled)
        (Detector.n_state_words det) ns)
    Coupling.all

(* ------------------------------------------------------------------ *)
(* E7: end-to-end stockroom throughput                                 *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7: stockroom transaction throughput vs active triggers (§3.5/§5)";
  let module S = Ode_scenarios.Stockroom in
  let module D = Ode_odb.Database in
  let run k_triggers =
    let s = S.setup ~activate:false () in
    let names = [ "T1"; "T2"; "T3"; "T4"; "T5"; "T6"; "T7"; "T8" ] in
    let to_activate = List.filteri (fun i _ -> i < k_triggers) names in
    (match
       D.with_txn s.S.db (fun _ ->
           List.iter (fun n -> D.activate s.S.db s.S.stockroom n []) to_activate)
     with
    | Ok () -> ()
    | Error `Aborted -> failwith "activation aborted");
    let item = S.new_item s ~name:"w" ~eoq:1 ~balance:max_int in
    let n_txns = 300 in
    let _, total_ns =
      time_once (fun () ->
          for i = 1 to n_txns do
            ignore (S.withdraw s ~item ~qty:(if i mod 3 = 0 then 150 else 10))
          done)
    in
    (k_triggers, total_ns /. float_of_int n_txns)
  in
  pf "%10s %16s %14s@." "triggers" "us/txn" "txn/s";
  let baseline = ref 0.0 in
  List.iter
    (fun k ->
      let _, ns = run k in
      if k = 0 then baseline := ns;
      pf "%10d %16.1f %14.0f@." k (ns /. 1e3) (1e9 /. ns))
    [ 0; 1; 2; 4; 8 ];
  let _, ns8 = run 8 in
  pf "shape: all 8 paper triggers cost %.1fx over no triggers@." (ns8 /. !baseline)

(* ------------------------------------------------------------------ *)
(* E8: counting operators (§3.4): states linear in n                   *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8: counting-operator automaton size (choose/every/prior n)";
  pf "%6s %12s %12s %12s@." "n" "choose" "every" "prior";
  List.iter
    (fun n ->
      let states op =
        let expr = P.parse_event (Printf.sprintf "%s %d (after f)" op n) in
        let alphabet, lowered, _ = Rewrite.build expr in
        Dfa.n_states (Compile.compile_pure ~m:(Rewrite.n_symbols alphabet) lowered)
      in
      pf "%6d %12d %12d %12d@." n (states "choose") (states "every") (states "prior"))
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

(* ------------------------------------------------------------------ *)
(* E9 (ablation): one automaton per class (§5 footnote 5)              *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9 (ablation): per-trigger automata vs one combined automaton per class";
  let trigger_sets =
    [
      ("stockroom T5+T8",
       [ "every 5 (after access)";
         "after deposit; before withdraw; after withdraw" ]);
      ("stockroom T4+T5+T7+T8",
       [ "every 5 (after access)";
         "after deposit; before withdraw; after withdraw";
         "relative(at time(HR=9), prior(choose 5 (after tcommit), after tcommit) & \
          !prior(at time(HR=9), after tcommit))";
         "fa(at time(HR=9), choose 5 (after withdraw(i, q) && q > 100), at time(HR=9))" ]);
      ("six counters",
       List.init 6 (fun i -> Printf.sprintf "choose %d (after m%d)" (i + 2) (i mod 3)));
    ]
  in
  let env = Mask.empty_env in
  let stream =
    [|
      Symbol.Method (After, "access"); Symbol.Method (After, "deposit");
      Symbol.Method (Before, "withdraw"); Symbol.Method (After, "withdraw");
      Symbol.Tcommit; Symbol.Method (After, "m0"); Symbol.Method (After, "m1");
      Symbol.Method (After, "m2");
    |]
  in
  let occs =
    Array.map (fun b -> { Symbol.basic = b; args = []; at = 0L }) stream
  in
  pf "%-24s %4s %10s %10s %14s %14s %12s@." "trigger set" "k" "sum |A|" "combined"
    "separate ns/ev" "combined ns/ev" "state words";
  List.iter
    (fun (name, srcs) ->
      let exprs = List.map P.parse_event srcs in
      let detectors = List.map Detector.make exprs in
      let states = List.map Detector.initial detectors in
      let i = ref 0 in
      let sep_ns =
        measure_ns (fun () ->
            let occ = occs.(!i mod Array.length occs) in
            List.iter2
              (fun det st -> ignore (Detector.post det st ~env occ))
              detectors states;
            incr i)
      in
      let combined = Combine.make exprs in
      let cstate = ref (Combine.initial combined) in
      let j = ref 0 in
      let comb_ns =
        measure_ns (fun () ->
            let occ = occs.(!j mod Array.length occs) in
            let s, _ = Combine.post combined !cstate ~env occ in
            cstate := s;
            incr j)
      in
      pf "%-24s %4d %10d %10d %14.0f %14.0f %6d vs 1@." name (List.length exprs)
        (Combine.sum_of_parts combined)
        (Combine.n_states combined) sep_ns comb_ns (List.length exprs))
    trigger_sets

(* ------------------------------------------------------------------ *)
(* E10 (ablation): minimization during compilation                     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 (ablation): minimizing intermediate automata during compilation";
  let exprs =
    [
      ("stockroom T4",
       "relative(at time(HR=9), prior(choose 5 (after tcommit), after tcommit) & \
        !prior(at time(HR=9), after tcommit))");
      ("stockroom T7",
       "fa(at time(HR=9), choose 5 (after withdraw(i, q) && q > 100), at time(HR=9))");
      ("coupling DDep",
       "fa(fa(after edit, before tcomplete, after tbegin) && cond(), after tcommit, \
        after tbegin)");
      ("nested fa", "fa(after a, fa(after b, after c, after d), after e)");
      ("negated sequence", "!(after a; after b) & relative(after c, !(after d | after e))");
    ]
  in
  pf "%-20s %14s %14s %14s %14s@." "expr" "min states" "raw states" "min compile"
    "raw compile";
  List.iter
    (fun (name, src) ->
      let expr = P.parse_event src in
      let build () =
        let alphabet, lowered, _ = Rewrite.build expr in
        Compile.compile ~m:(Rewrite.n_symbols alphabet) lowered
      in
      Compile.minimization := true;
      let states_min = ref 0 in
      let t_min =
        measure_ns ~min_time:0.02 (fun () -> states_min := Compile.total_dfa_states (build ()))
      in
      Compile.minimization := false;
      let states_raw = ref 0 in
      let t_raw =
        measure_ns ~min_time:0.02 (fun () -> states_raw := Compile.total_dfa_states (build ()))
      in
      Compile.minimization := true;
      pf "%-20s %14d %14d %12.0fus %12.0fus@." name !states_min !states_raw
        (t_min /. 1e3) (t_raw /. 1e3))
    exprs

(* ------------------------------------------------------------------ *)
(* E11 (ablation): native closures vs the interpreted ODL surface       *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11 (ablation): native OCaml bodies vs interpreted ODL bodies";
  let module D = Ode_odb.Database in
  let run_txns db oid n =
    let _, total =
      time_once (fun () ->
          for _ = 1 to n do
            match D.with_txn db (fun _ -> ignore (D.call db oid "incr" [])) with
            | Ok () | Error `Aborted -> ()
          done)
    in
    total /. float_of_int n
  in
  (* native *)
  let native_db = D.create_db () in
  D.register_class native_db
    (D.define_class "cell" ~constructor:(fun db oid _ -> D.activate db oid "watch" [])
    |> (fun b -> D.field b "n" (Value.Int 0))
    |> (fun b -> D.field b "alerts" (Value.Int 0))
    |> (fun b ->
         D.method_ b ~kind:D.Updating "incr" (fun db oid _ ->
             D.set_field db oid "n" (Value.add (D.get_field db oid "n") (Value.Int 1));
             Value.Unit))
    |> (fun b ->
         D.method_ b ~kind:D.Updating "alert" (fun db oid _ ->
             D.set_field db oid "alerts"
               (Value.add (D.get_field db oid "alerts") (Value.Int 1));
             Value.Unit))
    |> fun b ->
    D.trigger_str b ~perpetual:true "watch" ~event:"every 10 (after incr)"
      ~action:(fun db ctx -> ignore (D.call db ctx.D.fc_oid "alert" [])));
  let native_oid =
    match D.with_txn native_db (fun _ -> D.create native_db "cell" []) with
    | Ok oid -> oid
    | Error `Aborted -> failwith "abort"
  in
  (* interpreted *)
  let odl_db = D.create_db () in
  ignore
    (Ode_odl.Odl.load_schema odl_db
       {|
       class cell {
         int n = 0;
         int alerts = 0;
       public:
         cell() { activate watch(); }
         update void incr()  { n = n + 1; }
         update void alert() { alerts = alerts + 1; }
       trigger:
         watch() : perpetual every 10 (after incr) ==> alert();
       };
       |});
  let odl_oid =
    match D.with_txn odl_db (fun _ -> D.create odl_db "cell" []) with
    | Ok oid -> oid
    | Error `Aborted -> failwith "abort"
  in
  let n = 2000 in
  let native_ns = run_txns native_db native_oid n in
  let odl_ns = run_txns odl_db odl_oid n in
  pf "%-12s %14s %14s@." "surface" "us/txn" "txn/s";
  pf "%-12s %14.2f %14.0f@." "native" (native_ns /. 1e3) (1e9 /. native_ns);
  pf "%-12s %14.2f %14.0f@." "ODL" (odl_ns /. 1e3) (1e9 /. odl_ns);
  pf "shape: interpretation costs %.2fx@." (odl_ns /. native_ns)

(* ------------------------------------------------------------------ *)
(* E12 (extension): full provenance vs one-word detection (§9)          *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12 (extension): full provenance tracking vs the one-word automaton (§9)";
  let expr = P.parse_event "relative(after credit(dst, q), after debit(src, p))" in
  let env = Mask.empty_env in
  let mk_occ i =
    if i mod 3 = 2 then
      { Symbol.basic = Symbol.Method (After, "debit");
        args = [ Value.Oid 1; Value.Int i ]; at = 0L }
    else
      { Symbol.basic = Symbol.Method (After, "credit");
        args = [ Value.Oid i; Value.Int i ]; at = 0L }
  in
  pf "%8s %16s %18s %14s %12s@." "history" "detector ns/ev" "provenance ns/ev"
    "witnesses/ev" "instances";
  List.iter
    (fun n ->
      let det = Detector.make expr in
      let state = Detector.initial det in
      for i = 0 to n - 1 do
        ignore (Detector.post det state ~env (mk_occ i))
      done;
      let i = ref n in
      let det_ns =
        measure_ns (fun () ->
            ignore (Detector.post det state ~env (mk_occ !i));
            incr i)
      in
      let prov = Provenance.make ~max_matches:100_000 expr in
      for i = 0 to n - 1 do
        ignore (Provenance.post prov ~env (mk_occ i))
      done;
      let batch = 60 in
      let witnesses = ref 0 in
      let (), total =
        time_once (fun () ->
            for j = 0 to batch - 1 do
              witnesses := !witnesses + List.length (Provenance.post prov ~env (mk_occ (n + j)))
            done)
      in
      pf "%8d %16.0f %18.0f %14.1f %12d@." n det_ns (total /. float_of_int batch)
        (float_of_int !witnesses /. float_of_int batch)
        (Provenance.instance_count prov))
    [ 30; 100; 300; 1000 ];
  pf "shape: the automaton stays O(1); provenance pays per live witness — §5's budget\n\
      is what the one-word design buys.@."

(* ------------------------------------------------------------------ *)
(* E9-dispatch: the per-class dispatch index on the posting hot path    *)
(* ------------------------------------------------------------------ *)

(* A method call on an object carrying N active triggers whose alphabets
   never contain the posted events. Pre-index, every one of the 6 basic
   events around the call snapshotted and classified all N activations;
   with the index (Database.set_dispatch_index, the default) none of them
   is touched. Emits BENCH_dispatch.json for EXPERIMENTS.md. *)
(* an object of class [hot] carrying [n] armed triggers that can never
   react to the posted events — shared by E9-dispatch and E10-obs *)
let inert_trigger_db n =
  let module D = Ode_odb.Database in
  let db = D.create_db () in
  let b = D.define_class "hot" in
  let b = D.field b "n" (Value.Int 0) in
  let b =
    D.method_ b ~kind:D.Updating "work" (fun db oid _ ->
        D.set_field db oid "n" (Value.add (D.get_field db oid "n") (Value.Int 1));
        Value.Unit)
  in
  let rec add b i =
    if i >= n then b
    else
      add
        (D.trigger_str b ~perpetual:true
           (Printf.sprintf "t%d" i)
           ~event:(Printf.sprintf "after m%d" i)
           ~action:(fun _ _ -> ()))
        (i + 1)
  in
  let b = add b 0 in
  D.register_class db b;
  match
    D.with_txn db (fun _ ->
        let oid = D.create db "hot" [] in
        for i = 0 to n - 1 do
          D.activate db oid (Printf.sprintf "t%d" i) []
        done;
        oid)
  with
  | Ok oid -> (db, oid)
  | Error `Aborted -> failwith "abort"

let e9_dispatch () =
  section "E9-dispatch: post throughput vs inert active triggers (index on/off)";
  let module D = Ode_odb.Database in
  let measure ~indexed n =
    let db, oid = inert_trigger_db n in
    D.set_dispatch_index db indexed;
    let tx = D.begin_txn db in
    let ns = measure_ns (fun () -> ignore (D.call db oid "work" [])) in
    (match D.commit db tx with Ok () | Error `Aborted -> ());
    ns
  in
  let rows =
    List.map
      (fun n ->
        let scan = measure ~indexed:false n in
        let indexed = measure ~indexed:true n in
        (n, scan, indexed))
      [ 1; 10; 100; 1000 ]
  in
  pf "%-10s %16s %18s %10s@." "triggers" "scan ns/call" "indexed ns/call" "speedup";
  List.iter
    (fun (n, scan, indexed) ->
      pf "%-10d %16.0f %18.0f %9.1fx@." n scan indexed (scan /. indexed))
    rows;
  pf "shape: a call posts 6 basic events; the scan path is O(N) per post,\n\
      the indexed path touches only triggers whose alphabet can react.@.";
  let oc = open_out "BENCH_dispatch.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E9-dispatch\",\n";
  p "  \"unit\": \"ns per method call (6 basic events posted per call)\",\n";
  p "  \"description\": \"object with N inert active triggers: brute-force scan \
     (pre-index posting path) vs per-class dispatch index\",\n";
  p "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (n, scan, indexed) ->
      p
        "    {\"inert_triggers\": %d, \"scan_ns_per_call\": %.0f, \
         \"indexed_ns_per_call\": %.0f, \"speedup\": %.1f}%s\n"
        n scan indexed (scan /. indexed)
        (if i = last then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_dispatch.json@."

(* ------------------------------------------------------------------ *)
(* E10-obs: observability overhead on the posting hot path             *)
(* ------------------------------------------------------------------ *)

(* The E9-dispatch workload on the (default) indexed path, with the
   Ode_obs registry disabled — one boolean load per probe site — vs.
   enabled (counters, per-kind table, latency histograms, trace ring).
   Emits BENCH_obs.json for EXPERIMENTS.md. *)
let e10_obs () =
  section "E10-obs: method-call cost with observability off vs on";
  let module D = Ode_odb.Database in
  let measure ~obs n =
    let db, oid = inert_trigger_db n in
    D.set_observability db obs;
    let tx = D.begin_txn db in
    let ns = measure_ns (fun () -> ignore (D.call db oid "work" [])) in
    (match D.commit db tx with Ok () | Error `Aborted -> ());
    ns
  in
  let rows =
    List.map
      (fun n ->
        let off = measure ~obs:false n in
        let on = measure ~obs:true n in
        (n, off, on))
      [ 1; 10; 100; 1000 ]
  in
  pf "%-10s %16s %16s %10s@." "triggers" "obs-off ns/call" "obs-on ns/call"
    "overhead";
  List.iter
    (fun (n, off, on) ->
      pf "%-10d %16.0f %16.0f %9.2fx@." n off on (on /. off))
    rows;
  pf "shape: disabled probes cost one boolean load; enabled ones pay counter,\n\
      kind-table and span-ring updates per post — clock reads and latency\n\
      histograms only start once a trace sink (or set_timing) asks for them.@.";
  let oc = open_out "BENCH_obs.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E10-obs\",\n";
  p "  \"unit\": \"ns per method call (6 basic events posted per call)\",\n";
  p "  \"description\": \"indexed dispatch, N inert active triggers: Ode_obs \
     registry disabled vs enabled (no trace sink, so timestamping stays \
     gated off)\",\n";
  p "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (n, off, on) ->
      p
        "    {\"inert_triggers\": %d, \"obs_off_ns_per_call\": %.0f, \
         \"obs_on_ns_per_call\": %.0f, \"overhead\": %.2f}%s\n"
        n off on (on /. off)
        (if i = last then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_obs.json@."

(* ------------------------------------------------------------------ *)
(* E11-shard: batch posting throughput vs domain count                  *)
(* ------------------------------------------------------------------ *)

(* [post_many] on the sharded backend: N objects, each carrying
   perpetual never-completing triggers (half of them masked), one ping
   per object per batch. Zero firings, so the batch is almost pure
   classify/step — the phase the domain pool parallelises — and the
   rows isolate its scaling. The 1-domain row {e is} the sequential
   baseline: at [post_domains = 1] the pipeline takes the inline
   no-pool path. Emits BENCH_shard.json for EXPERIMENTS.md.

   Honest-measurement note: the speedup column can only reach the
   available cores; [cores] is recorded in the JSON so a 1-core CI run
   showing ~1.0x is read as a hardware limit, not a regression. *)
(* shared by E11-shard and E12-kernel: N objects on a sharded heap, each
   carrying perpetual never-completing triggers (half of them masked) *)
let shard_n_objects = 256
let shard_triggers_per_obj = 4
let shard_count = 8

let shard_workload () =
  let module T = Ode_odb.Types in
  let module St = Ode_odb.Store in
  let module Sc = Ode_odb.Schema in
  let module E = Ode_odb.Engine in
  let module Tx = Ode_odb.Txn in
  let db = T.make_db ~backend:(St.backend_of (`Sharded shard_count)) () in
  let b = Sc.define_class "c" in
  let b = Sc.field b "x" (Value.Int 1) in
  let rec add b i =
    if i >= shard_triggers_per_obj then b
    else
      add
        (Sc.trigger_str b ~perpetual:true
           (Printf.sprintf "t%d" i)
           ~event:
             (if i mod 2 = 0 then "after ping ; after never"
              else "after ping && x > 0 ; after never")
           ~action:(fun _ _ -> ()))
        (i + 1)
  in
  Sc.register_class db (add b 0);
  match
    Tx.with_txn db (fun _ ->
        List.init shard_n_objects (fun _ ->
            let oid = E.create db "c" [] in
            for i = 0 to shard_triggers_per_obj - 1 do
              E.activate db oid (Printf.sprintf "t%d" i) []
            done;
            oid))
  with
  | Ok oids -> (db, oids)
  | Error `Aborted -> failwith "abort"

let e11_shard () =
  section "E11-shard: post_many classify/step throughput vs domain count";
  let module E = Ode_odb.Engine in
  let module Tx = Ode_odb.Txn in
  let module Sym = Ode_event.Symbol in
  let n_objects = shard_n_objects in
  let triggers_per_obj = shard_triggers_per_obj in
  let shards = shard_count in
  let measure domains =
    let db, oids = shard_workload () in
    E.set_post_domains db domains;
    let items =
      List.map (fun oid -> (oid, Sym.Method (Sym.After, "ping"), [])) oids
    in
    let tx = Tx.begin_txn db in
    ignore (E.post_many db items) (* warm-up batch pays the tbegin posts *);
    let ns = measure_ns (fun () -> ignore (E.post_many db items)) in
    (match Tx.commit db tx with Ok () | Error `Aborted -> ());
    E.shutdown_pool db;
    ns /. float_of_int n_objects
  in
  let rows = List.map (fun d -> (d, measure d)) [ 1; 2; 4 ] in
  let base = snd (List.hd rows) in
  let cores = Domain.recommended_domain_count () in
  pf "objects=%d triggers/object=%d shards=%d cores=%d@." n_objects
    triggers_per_obj shards cores;
  pf "%-10s %16s %18s %12s@." "domains" "ns/event" "events/sec" "speedup";
  List.iter
    (fun (d, ns) ->
      pf "%-10d %16.0f %18.0f %11.2fx@." d ns (1e9 /. ns) (base /. ns))
    rows;
  pf "shape: the step phase is embarrassingly parallel (§5: one integer per\n\
      trigger per object); scaling is bounded by min(domains, shards, cores).@.";
  let oc = open_out "BENCH_shard.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E11-shard\",\n";
  p "  \"unit\": \"ns per posted event (classify+step dominated, zero firings)\",\n";
  p
    "  \"description\": \"post_many on a sharded heap (%d shards): %d objects x \
     %d perpetual never-completing triggers, one ping per object per batch; \
     1-domain row is the sequential baseline\",\n"
    shards n_objects triggers_per_obj;
  p "  \"cores\": %d,\n" cores;
  p "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (d, ns) ->
      p
        "    {\"domains\": %d, \"ns_per_event\": %.0f, \"events_per_sec\": %.0f, \
         \"speedup_vs_1\": %.2f}%s\n"
        d ns (1e9 /. ns) (base /. ns)
        (if i = last then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_shard.json@."

(* ------------------------------------------------------------------ *)
(* E12-kernel: the compiled posting kernel vs the legacy indexed path   *)
(* ------------------------------------------------------------------ *)

(* The E11-shard schema (256 objects x 4 perpetual never-completing
   triggers, zero firings) through both posting paths: the legacy
   indexed path — per-post candidate resolution, closure-driven
   classification, word-vector stepping — vs the compiled kernel
   (Database.set_posting_kernel, the default) — per-class candidate
   rows, packed classification codes, flat-table stepping over the SoA
   state, per-shard queues and scratch.

   Batches are 4 events/object (wide enough that one pool rendezvous
   amortises over ~1k events), under two skews: [uniform] spreads the
   batch round-robin over every object, [contended] sends 80% of the
   events to the objects of 20% of the shards — the hot-key skew that
   makes static shard ownership degenerate into a straggler domain.
   The 1-domain rows are the sequential comparison; 2/4/recommended
   rows show the parallel step phase composing with it. Each row also
   reports minor-heap words allocated per posted event (main domain
   only, so the column is exact for the sequential rows and a lower
   bound for the parallel ones) and its {e effective} domain count:
   post_domains clamped to min(shards, recommended cores) — on a small
   box the extra-domain rows honestly collapse onto the sequential one
   instead of reporting oversubscription noise as scaling. Emits
   BENCH_kernel.json. *)
let e12_kernel () =
  section "E12-kernel: compiled posting kernel vs legacy indexed path";
  let module St = Ode_odb.Store in
  let module E = Ode_odb.Engine in
  let module Tx = Ode_odb.Txn in
  let module Sym = Ode_event.Symbol in
  let n_objects = shard_n_objects in
  let events_per_obj = 4 in
  let n_events = n_objects * events_per_obj in
  let cores = Domain.recommended_domain_count () in
  let hot_shards = max 1 (shard_count / 5) in
  let build_items ~contended db oids =
    let ping oid = (oid, Sym.Method (Sym.After, "ping"), []) in
    if not contended then
      List.concat_map
        (fun oid -> List.init events_per_obj (fun _ -> ping oid))
        oids
    else begin
      (* 80% of the batch on the objects of the first 20% of shards *)
      let hot, cold =
        List.partition (fun oid -> St.shard_of db oid < hot_shards) oids
      in
      let hot = Array.of_list hot and cold = Array.of_list cold in
      List.init n_events (fun k ->
          if k mod 5 < 4 then ping hot.(k mod Array.length hot)
          else ping cold.(k mod Array.length cold))
    end
  in
  let measure ~kernel ~domains ~contended =
    let db, oids = shard_workload () in
    E.set_posting_kernel db kernel;
    E.set_post_domains db domains;
    let items = build_items ~contended db oids in
    let tx = Tx.begin_txn db in
    ignore (E.post_many db items) (* warm-up batch pays the tbegin posts *);
    (* best of three: the rows differing only in configured (not
       effective) domains run identical code, and should read as such *)
    let ns =
      List.fold_left min infinity
        (List.init 3 (fun _ ->
             measure_ns (fun () -> ignore (E.post_many db items))))
    in
    let batches = 50 in
    let w0 = Gc.minor_words () in
    for _ = 1 to batches do
      ignore (E.post_many db items)
    done;
    let words =
      (Gc.minor_words () -. w0) /. float_of_int (batches * n_events)
    in
    (match Tx.commit db tx with Ok () | Error `Aborted -> ());
    E.shutdown_pool db;
    (* mirror the engine's clamping so the JSON reports what actually ran *)
    let effective = min domains (min shard_count cores) in
    (ns /. float_of_int n_events, words, effective)
  in
  let row path domains contended =
    let ns, w, eff = measure ~kernel:(path = "kernel") ~domains ~contended in
    (path, (if contended then "contended" else "uniform"), domains, eff, ns, w)
  in
  let rows =
    [
      row "legacy" 1 false;
      row "kernel" 1 false;
      row "kernel" 2 false;
      row "kernel" 4 false;
      row "kernel" cores false;
      row "kernel" 1 true;
      row "kernel" 4 true;
    ]
  in
  let base =
    match rows with (_, _, _, _, ns, _) :: _ -> ns | [] -> assert false
  in
  pf "objects=%d triggers/object=%d shards=%d cores=%d batch=%d events@."
    n_objects shard_triggers_per_obj shard_count cores n_events;
  pf "%-8s %-10s %8s %5s %12s %14s %16s %9s@." "path" "workload" "domains"
    "eff" "ns/event" "events/sec" "minor words/ev" "speedup";
  List.iter
    (fun (path, wl, d, eff, ns, w) ->
      pf "%-8s %-10s %8d %5d %12.0f %14.0f %16.1f %8.2fx@." path wl d eff ns
        (1e9 /. ns) w (base /. ns))
    rows;
  pf "shape: the kernel removes per-post candidate list building, closure\n\
      allocation and per-detector cache lookups — the classify/step sweep\n\
      is a linear pass over int arrays with a constant allocation envelope.\n\
      Under the contended skew the hot shards' queues serialise on their\n\
      owning domains; the uniform rows bound the achievable scaling.@.";
  let oc = open_out "BENCH_kernel.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E12-kernel\",\n";
  p "  \"unit\": \"ns per posted event (classify+step dominated, zero firings)\",\n";
  p
    "  \"description\": \"E11-shard schema (%d shards, %d objects x %d \
     perpetual never-completing triggers), batches of %d events (%d per \
     object) through the legacy indexed posting path vs the compiled \
     kernel; contended rows send 80%% of the batch to the objects of %d of \
     the shards; effective_domains = post_domains clamped to min(shards, \
     cores); minor_words_per_event counts main-domain minor-heap \
     allocation, exact for 1-domain rows\",\n"
    shard_count n_objects shard_triggers_per_obj n_events events_per_obj
    hot_shards;
  p "  \"cores\": %d,\n" cores;
  p "  \"domain_clamp\": true,\n";
  p "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (path, wl, d, eff, ns, w) ->
      p
        "    {\"path\": \"%s\", \"workload\": \"%s\", \"domains\": %d, \
         \"effective_domains\": %d, \"ns_per_event\": %.0f, \
         \"events_per_sec\": %.0f, \"minor_words_per_event\": %.1f, \
         \"speedup_vs_legacy_seq\": %.2f}%s\n"
        path wl d eff ns (1e9 /. ns) w (base /. ns)
        (if i = last then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_kernel.json@."

(* ------------------------------------------------------------------ *)
(* smoke: a one-iteration CI pass over the instrumented pipeline       *)
(* ------------------------------------------------------------------ *)

(* Runs a single transaction with observability enabled and dumps the
   registry — a fast end-to-end check that the probes are wired, meant
   for the CI bench-smoke step, not for timing. *)
let smoke () =
  section "smoke: one instrumented transaction";
  let module D = Ode_odb.Database in
  let module Obs = Ode_obs.Registry in
  let db, oid = inert_trigger_db 10 in
  D.set_observability db true;
  (match D.with_txn db (fun _ -> ignore (D.call db oid "work" [])) with
  | Ok () -> ()
  | Error `Aborted -> failwith "smoke transaction aborted");
  let r = D.observe db in
  pf "%a@." Obs.pp r;
  if Obs.get r Obs.Posts = 0 then failwith "smoke: no posts counted";
  (* sharded backend + parallel post_many: a 2-domain batch must fire
     exactly like a 1-domain rerun of the same workload, on a uniform
     batch and on an 80/20 hot-key-skewed one. Clamp and threshold are
     lifted so the pool machinery really runs even on a 1-core box. *)
  let batch_firings ?(partitions = 1) ~contended domains =
    let db =
      D.create_db
        ~config:
          { D.Config.default with D.Config.backend = `Sharded 4; partitions }
        ()
    in
    D.set_post_domains db domains;
    D.set_domain_clamp db false;
    D.set_parallel_threshold db 0;
    let b = D.define_class "s" in
    let b = D.method_ b ~kind:D.Updating "ping" (fun _ _ _ -> Value.Unit) in
    let b =
      D.trigger_str b ~perpetual:true "hit" ~event:"after ping"
        ~action:(fun _ _ -> ())
    in
    D.register_class db b;
    let fired = ref 0 in
    (match
       D.with_txn db (fun _ ->
           let oids =
             List.init 8 (fun _ ->
                 let oid = D.create db "s" [] in
                 D.activate db oid "hit" [];
                 oid)
           in
           let ping oid = (oid, Symbol.Method (Symbol.After, "ping"), []) in
           let items =
             if contended then
               (* 32 of 40 events on two objects, rest spread out *)
               List.init 40 (fun k ->
                   if k mod 5 < 4 then ping (List.nth oids (k mod 2))
                   else ping (List.nth oids (2 + (k mod 6))))
             else List.map ping oids
           in
           fired := D.post_many db items)
     with
    | Ok () -> ()
    | Error `Aborted -> failwith "smoke: shard transaction aborted");
    D.shutdown_pool db;
    !fired
  in
  let f1 = batch_firings ~contended:false 1
  and f2 = batch_firings ~contended:false 2 in
  if f1 <> 8 || f2 <> 8 then
    failwith
      (Printf.sprintf "smoke: sharded post_many fired %d/%d (want 8/8)" f1 f2);
  let c1 = batch_firings ~contended:true 1
  and c2 = batch_firings ~contended:true 2 in
  if c1 <> 40 || c2 <> 40 then
    failwith
      (Printf.sprintf "smoke: contended post_many fired %d/%d (want 40/40)" c1
         c2);
  pf
    "smoke ok (sharded post_many: %d/%d firings at 1/2 domains uniform, \
     %d/%d contended).@."
    f1 f2 c1 c2;
  (* partitioned post_many: an oid-sliced engine group must fire exactly
     like the single engine on the same batches *)
  let p2 = batch_firings ~partitions:2 ~contended:true 2
  and p4 = batch_firings ~partitions:4 ~contended:true 1 in
  if p2 <> 40 || p4 <> 40 then
    failwith
      (Printf.sprintf "smoke: partitioned post_many fired %d/%d (want 40/40)"
         p2 p4);
  pf "partition smoke ok (40/40 firings at 2/4 partitions).@.";
  (* WAL crash-injection smoke: 50 randomized kill points over a logged
     workload must each recover to the exact shadow image captured when
     the last surviving batch was emitted (the full 500-point harness
     with behavioural probes lives in test/test_wal.ml). *)
  let module Wal = Ode_odb.Wal in
  let module Persist = Ode_odb.Persist in
  let module Codec = Ode_base.Codec in
  let fresh_dir () =
    let d = Filename.temp_file "ode_bench_wal" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let wal_schema () =
    let b = D.define_class "w" in
    let b = D.field b "q" (Value.Int 0) in
    let b =
      D.method_ b ~kind:D.Updating "bump" (fun db oid _ ->
          D.set_field db oid "q"
            (Value.add (D.get_field db oid "q") (Value.Int 1));
          Value.Unit)
    in
    D.trigger_str b ~perpetual:true "seq" ~event:"after bump; after bump"
      ~action:(fun _ _ -> ())
  in
  let dir = fresh_dir () in
  let shadows = ref [] in
  let cfg =
    Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0
      ~on_batch:(fun tdb -> shadows := Persist.image_bytes tdb :: !shadows)
      dir
  in
  let wdb = D.create_db ~durability:(`Wal cfg) () in
  D.register_class wdb (wal_schema ());
  let base = D.image_bytes wdb in
  let rng = Random.State.make [| 4242 |] in
  for i = 1 to 10 do
    if i mod 3 = 0 then D.advance_clock wdb 25L;
    let tx = D.begin_txn wdb in
    let oid =
      match D.objects wdb with
      | o :: _ when Random.State.bool rng -> o
      | _ ->
        let o = D.create wdb "w" [] in
        D.activate wdb o "seq" [];
        o
    in
    ignore (D.call wdb oid "bump" []);
    if i mod 4 = 0 then D.abort wdb tx
    else
      match D.commit wdb tx with Ok () | Error `Aborted -> ()
  done;
  D.close_durability wdb;
  let shadows = Array.of_list (List.rev !shadows) in
  let log = Codec.of_file (Wal.wal_path dir 0) in
  let snap = Codec.of_file (Wal.snap_path dir 0) in
  let hdr = String.length Wal.header in
  for point = 1 to 50 do
    let cut = hdr + Random.State.int rng (String.length log - hdr + 1) in
    let damaged = String.sub log 0 cut in
    let n = List.length (Wal.scan_bytes damaged).Wal.frames in
    let dir2 = fresh_dir () in
    Codec.to_file (Wal.snap_path dir2 0) snap;
    Codec.to_file (Wal.wal_path dir2 0) damaged;
    let rdb = D.create_db ~durability:(`Wal (Wal.config dir2)) () in
    D.register_class rdb (wal_schema ());
    D.recover rdb;
    let expected = if n = 0 then base else shadows.(n - 1) in
    if not (String.equal (D.image_bytes rdb) expected) then
      failwith
        (Printf.sprintf
           "crash smoke: kill point %d (cut at %d, %d batches) recovered a \
            diverging state"
           point cut n)
  done;
  pf "crash smoke ok (50/50 kill points recovered byte-identical, %d batches \
      logged).@."
    (Array.length shadows);
  (* wire smoke: an in-process server, two clients over loopback, a
     subscriber that must see firings, a clean stop *)
  let module Server = Ode_net.Server in
  let module Client = Ode_net.Client in
  let module NP = Ode_net.Protocol in
  let module NJ = Ode_net.Json in
  let sdb = D.create_db ~config:D.Config.default () in
  let config =
    {
      D.Config.default with
      D.Config.serve = { D.Config.default_serve with D.Config.port = 0 };
    }
  in
  let srv = Server.create ~db:sdb ~config () in
  Server.start srv;
  let port = Server.port srv in
  let sub = Client.connect ~port () in
  let wire_ok = function
    | Ok j -> j
    | Error (code, msg) -> failwith (Printf.sprintf "smoke: wire [%s] %s" code msg)
  in
  ignore
    (wire_ok
       (Client.request sub
          (NP.Schema
             "class cell { int n = 0; public: cell() { activate T(); } update \
              void hit(int q) { n = n + q; } update void seen() { } trigger: \
              T() : perpetual after hit(q) && q > 0 ==> seen(); };")));
  let oid =
    match NJ.member "oid" (wire_ok (Client.request sub (NP.Create ("cell", [])))) with
    | Some (NJ.Int oid) -> oid
    | _ -> failwith "smoke: wire create returned no oid"
  in
  ignore (wire_ok (Client.request sub (NP.Subscribe NP.Block)));
  let poster = Client.connect ~port () in
  let item =
    { NP.i_oid = oid; i_event = Symbol.Method (After, "hit"); i_args = [ Value.Int 3 ] }
  in
  ignore (wire_ok (Client.request poster (NP.Post_many (List.init 8 (fun _ -> item)))));
  Client.close poster;
  let rec wire_drain n =
    match Client.wait_firing ~timeout_s:1.0 sub with
    | Some _ -> wire_drain (n + 1)
    | None -> n
  in
  let wired = wire_drain 0 in
  Client.close sub;
  Server.stop srv;
  D.shutdown_pool sdb;
  if wired <> 8 then
    failwith (Printf.sprintf "smoke: wire subscriber saw %d/8 firings" wired);
  pf "wire smoke ok (8/8 firings streamed over loopback, clean stop).@.";
  (* million-timer smoke: arm 10^6 raw timers on the wheel, then drain
     them all in one clock hop. The timers belong to no live object
     (timer_alive rejects them at delivery), so this exercises pure
     queue mechanics — insert, cascade, group pull — at fleet scale. *)
  let module T = Ode_odb.Types in
  let module St = Ode_odb.Store in
  let module Tw = Ode_odb.Timewheel in
  let tdb = T.make_db ~backend:(St.backend_of `Heap) () in
  Tw.set_wheel tdb true;
  let trng = Random.State.make [| 9191 |] in
  let (), arm_s =
    time_once (fun () ->
        for i = 0 to 999_999 do
          Tw.insert_timer tdb
            {
              T.tm_due = Int64.of_int (1 + Random.State.int trng 5_000_000);
              tm_seq = i;
              tm_oid = 1 + i;
              tm_trigger = "m";
              tm_epoch = 0;
              tm_spec = Symbol.After_period 1L;
              tm_anchor = 0L;
            }
        done)
  in
  let armed = Tw.pending_count tdb in
  if armed <> 1_000_000 then
    failwith (Printf.sprintf "timer smoke: armed %d/1000000" armed);
  let (), drain_s = time_once (fun () -> Tw.advance_clock tdb 5_000_001L) in
  let left = Tw.pending_count tdb in
  if left <> 0 then
    failwith (Printf.sprintf "timer smoke: %d timers survived the drain" left);
  pf
    "timer smoke ok (1M timers armed in %.0f ms, drained to empty in %.0f \
     ms).@."
    (arm_s /. 1e6) (drain_s /. 1e6)

(* ------------------------------------------------------------------ *)
(* E14-wal: commit durability cost — WAL vs full-image saves            *)
(* ------------------------------------------------------------------ *)

(* One deposit-commit per measurement against a resident population of
   1k/10k/100k objects, under three durability disciplines: a full
   [save] after every commit (the only option before the WAL), the WAL
   with an fsync per commit (flush window 0), and the WAL under a 50 ms
   group-commit window. Reports commits/sec and p50/p99 latency, and
   writes BENCH_wal.json. *)
let e14_wal () =
  section "E14-wal: commit throughput and p99 latency vs full-image saves";
  let module D = Ode_odb.Database in
  let module Wal = Ode_odb.Wal in
  let fresh_dir () =
    let d = Filename.temp_file "ode_e14" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let schema () =
    let b = D.define_class "acct" in
    let b = D.field b "q" (Value.Int 0) in
    let b =
      D.method_ b ~kind:D.Updating "deposit" (fun db oid _ ->
          D.set_field db oid "q" (Value.add (D.get_field db oid "q") (Value.Int 1));
          Value.Unit)
    in
    (* a perpetual never-completing trigger so each commit pays a
       realistic posting pipeline, not just the field write *)
    D.trigger_str b ~perpetual:true "watch" ~event:"after deposit; before delete"
      ~action:(fun _ _ -> ())
  in
  let populate db n =
    let oids = Array.make n 0 in
    (match
       D.with_txn db (fun _ ->
           for i = 0 to n - 1 do
             let oid = D.create db "acct" [] in
             D.activate db oid "watch" [];
             oids.(i) <- oid
           done)
     with
    | Ok () -> ()
    | Error `Aborted -> failwith "e14: population aborted");
    oids
  in
  let percentile samples p =
    let a = Array.copy samples in
    Array.sort compare a;
    a.(min (Array.length a - 1) (int_of_float (ceil (p *. float_of_int (Array.length a))) - 1))
  in
  let run ~n ~commits ~durability ~save_every_commit =
    let db = D.create_db ?durability () in
    D.register_class db (schema ());
    let oids = populate db n in
    let tmp = Filename.temp_file "ode_e14_img" ".img" in
    let samples = Array.make commits 0.0 in
    let commit_one i =
      (match
         D.with_txn db (fun _ ->
             ignore (D.call db oids.(i mod n) "deposit" []))
       with
      | Ok () -> ()
      | Error `Aborted -> failwith "e14: commit aborted");
      if save_every_commit then D.save db tmp
    in
    commit_one 0 (* warm-up: first touch pays population cache misses *);
    let t0 = Unix.gettimeofday () in
    for i = 1 to commits do
      let c0 = Unix.gettimeofday () in
      commit_one i;
      samples.(i - 1) <- (Unix.gettimeofday () -. c0) *. 1e6
    done;
    D.sync_durability db;
    let total = Unix.gettimeofday () -. t0 in
    D.close_durability db;
    Sys.remove tmp;
    ( float_of_int commits /. total,
      percentile samples 0.50,
      percentile samples 0.99 )
  in
  let configs ~n =
    [
      ( "image-save",
        (fun () -> run ~n ~commits:(max 20 (200_000 / n)) ~durability:(Some `Image)
             ~save_every_commit:true) );
      ( "wal-fsync",
        (fun () -> run ~n ~commits:2_000
             ~durability:(Some (`Wal (Wal.config ~flush_ms:0 ~snapshot_every:0
                                        (fresh_dir ()))))
             ~save_every_commit:false) );
      ( "wal-group-50ms",
        (fun () -> run ~n ~commits:2_000
             ~durability:(Some (`Wal (Wal.config ~flush_ms:50 ~snapshot_every:0
                                        (fresh_dir ()))))
             ~save_every_commit:false) );
    ]
  in
  let all_rows =
    List.concat_map
      (fun n ->
        pf "@.objects=%d@." n;
        pf "%-16s %14s %12s %12s %10s@." "durability" "commits/sec" "p50 (us)"
          "p99 (us)" "speedup";
        let rows =
          List.map (fun (name, f) -> let r = f () in (name, r)) (configs ~n)
        in
        let base, _, _ = List.assoc "image-save" rows in
        List.iter
          (fun (name, (cps, p50, p99)) ->
            pf "%-16s %14.0f %12.1f %12.1f %9.1fx@." name cps p50 p99 (cps /. base))
          rows;
        List.map (fun (name, r) -> (n, name, r)) rows)
      [ 1_000; 10_000; 100_000 ]
  in
  pf "shape: a redo batch is O(touched objects); a full image is O(database).\n\
      The group-commit window amortises the fsync across the batches that\n\
      arrive inside it, at the cost of that window of durability.@.";
  let oc = open_out "BENCH_wal.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E14-wal\",\n";
  p "  \"unit\": \"commits per second; per-commit latency percentiles in \
     microseconds\",\n";
  p
    "  \"description\": \"one-object deposit commits against a resident \
     population, under: a full ODE1 image save per commit, the WAL with an \
     fsync per commit (flush_ms=0), and the WAL under a 50ms group-commit \
     window\",\n";
  p "  \"rows\": [\n";
  let last = List.length all_rows - 1 in
  List.iteri
    (fun i (n, name, (cps, p50, p99)) ->
      let base, _, _ =
        let _, _, r =
          List.find (fun (n', name', _) -> n' = n && name' = "image-save") all_rows
        in
        r
      in
      p
        "    {\"objects\": %d, \"durability\": \"%s\", \"commits_per_sec\": \
         %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"speedup_vs_image\": %.1f}%s\n"
        n name cps p50 p99 (cps /. base)
        (if i = last then "" else ","))
    all_rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_wal.json@."

(* ------------------------------------------------------------------ *)
(* E15: the wire front door — multi-client soak over loopback          *)
(* ------------------------------------------------------------------ *)

(* An in-process server (its select loop on one thread) and N client
   threads posting batches over real loopback sockets: end-to-end wire
   throughput and per-request latency for 1, 4 and 16 clients, with one
   drop-policy subscriber watching the firing stream the whole time.
   Emits BENCH_serve.json. *)
let e15_serve () =
  section "E15: odes serve over loopback (events/sec and request p99 by client count)";
  let module DB = Ode_odb.Database in
  let module Server = Ode_net.Server in
  let module Client = Ode_net.Client in
  let module NP = Ode_net.Protocol in
  let module NJ = Ode_net.Json in
  let schema =
    {|
    class meter {
      int total = 0;
      int spikes = 0;
    public:
      meter() { activate Spike(); }
      update void bump(int q) { total = total + q; }
      update void mark() { spikes = spikes + 1; }
    trigger:
      Spike() : perpetual after bump(q) && q > 5 ==> mark();
    };
    |}
  in
  let jint key j =
    match NJ.member key j with
    | Some (NJ.Int n) -> n
    | _ -> failwith ("e15: reply carried no " ^ key)
  in
  let rpc c req =
    match Client.request c req with
    | Ok j -> j
    | Error (code, msg) -> failwith (Printf.sprintf "e15: [%s] %s" code msg)
  in
  let run ~clients ~events_per_client ~batch =
    let db = DB.create_db ~config:DB.Config.default () in
    ignore (Ode_odl.Odl.load_schema db schema);
    let config =
      {
        DB.Config.default with
        DB.Config.serve =
          { DB.Config.default_serve with DB.Config.port = 0; batch_window_ms = 1 };
      }
    in
    let srv = Server.create ~db ~config () in
    Server.start srv;
    let port = Server.port srv in
    let sub = Client.connect ~port () in
    (* one object per client so the soak exercises candidate selection,
       not one hot history *)
    let oids =
      Array.init clients (fun _ -> jint "oid" (rpc sub (NP.Create ("meter", []))))
    in
    ignore (rpc sub (NP.Subscribe NP.Drop));
    let requests = events_per_client / batch in
    let lat = Array.make (clients * requests) 0.0 in
    (* a reply reports its whole batch's firing total, and coalescing
       puts many requests in one batch — dedup by batch serial or the
       sum multiplies *)
    let mu = Mutex.create () in
    let by_batch = Hashtbl.create 1024 in
    let t0 = Unix.gettimeofday () in
    let worker k =
      Thread.create
        (fun () ->
          let c = Client.connect ~port () in
          let items =
            List.init batch (fun i ->
                {
                  NP.i_oid = oids.(k);
                  i_event = Symbol.Method (After, "bump");
                  i_args = [ Value.Int (i mod 10) ];
                })
          in
          for r = 0 to requests - 1 do
            let q0 = Unix.gettimeofday () in
            let j = rpc c (NP.Post_many items) in
            lat.((k * requests) + r) <- Unix.gettimeofday () -. q0;
            Mutex.lock mu;
            Hashtbl.replace by_batch (jint "batch" j) (jint "firings" j);
            Mutex.unlock mu
          done;
          Client.close c)
        ()
    in
    let threads = List.init clients worker in
    List.iter Thread.join threads;
    let dt = Unix.gettimeofday () -. t0 in
    let seen = List.length (Client.poll_firings sub) + Client.lagged_total sub in
    Client.close sub;
    Server.stop srv;
    DB.shutdown_pool db;
    Array.sort compare lat;
    let pct p =
      lat.(min (Array.length lat - 1) (int_of_float (p *. float_of_int (Array.length lat))))
      *. 1e6
    in
    let fired = Hashtbl.fold (fun _ n acc -> acc + n) by_batch 0 in
    let total = float_of_int (clients * requests * batch) in
    (total /. dt, pct 0.5, pct 0.99, fired, seen)
  in
  pf "%8s %14s %12s %12s %12s %12s@." "clients" "events/sec" "p50 (us)" "p99 (us)"
    "firings" "observed";
  let rows =
    List.map
      (fun clients ->
        let events_per_client = 20_000 in
        let ev_s, p50, p99, fired, seen =
          run ~clients ~events_per_client ~batch:100
        in
        if fired = 0 then failwith "e15: soak produced no firings";
        pf "%8d %14.0f %12.1f %12.1f %12d %12d@." clients ev_s p50 p99 fired seen;
        (clients, events_per_client, ev_s, p50, p99, fired))
      [ 1; 4; 16 ]
  in
  pf "shape: one select loop owns the engine; throughput climbs with client\n\
      count while batches coalesce, and p99 absorbs the coalescing window.@.";
  let oc = open_out "BENCH_serve.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E15-serve\",\n";
  p "  \"unit\": \"end-to-end wire events per second; per-request latency \
     percentiles in microseconds\",\n";
  p
    "  \"description\": \"N concurrent clients posting 100-event post_many \
     batches over loopback to odes serve (1ms coalescing window), one \
     drop-policy subscriber streaming firings throughout\",\n";
  p "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (clients, events, ev_s, p50, p99, fired) ->
      p
        "    {\"clients\": %d, \"events_per_client\": %d, \"events_per_sec\": \
         %.0f, \"req_p50_us\": %.1f, \"req_p99_us\": %.1f, \"firings\": %d}%s\n"
        clients events ev_s p50 p99 fired
        (if i = last then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_serve.json@."

(* ------------------------------------------------------------------ *)
(* E16-partition: post_many throughput vs partition count               *)
(* ------------------------------------------------------------------ *)

(* The E11-shard workload through an oid-sliced engine group: 256
   objects x 4 perpetual never-completing triggers, one ping per object
   per batch, zero firings — measured at 1/2/4 partitions on two batch
   shapes. [uniform] spreads the batch round-robin over the members
   (oids are allocated round-robin); [hot] routes every event to
   objects of one member, the worst-case skew, so the row pair bounds
   what routing costs and what slicing buys. Partitioning is observably
   transparent (test/test_partition.ml proves bit-identical images);
   this experiment prices it. Emits BENCH_partition.json. *)
let e16_partition () =
  section "E16-partition: post_many throughput vs partition count";
  let module D = Ode_odb.Database in
  let module Sym = Ode_event.Symbol in
  let n_objects = shard_n_objects in
  let triggers_per_obj = shard_triggers_per_obj in
  let mk partitions =
    let config =
      { D.Config.default with D.Config.backend = `Sharded shard_count; partitions }
    in
    let db = D.create_db ~config () in
    let b = D.define_class "c" in
    let b = D.field b "x" (Value.Int 1) in
    let rec add b i =
      if i >= triggers_per_obj then b
      else
        add
          (D.trigger_str b ~perpetual:true
             (Printf.sprintf "t%d" i)
             ~event:
               (if i mod 2 = 0 then "after ping ; after never"
                else "after ping && x > 0 ; after never")
             ~action:(fun _ _ -> ()))
          (i + 1)
    in
    D.register_class db (add b 0);
    match
      D.with_txn db (fun _ ->
          List.init n_objects (fun _ ->
              let oid = D.create db "c" [] in
              for i = 0 to triggers_per_obj - 1 do
                D.activate db oid (Printf.sprintf "t%d" i) []
              done;
              oid))
    with
    | Ok oids -> (db, oids)
    | Error `Aborted -> failwith "abort"
  in
  let measure ~hot partitions =
    let db, oids = mk partitions in
    let targets =
      if not hot then oids
      else
        (* every event on one member's slice *)
        match List.filter (fun o -> o mod partitions = 0) oids with
        | [] -> oids
        | hots ->
          let n = List.length hots in
          List.init n_objects (fun i -> List.nth hots (i mod n))
    in
    let items =
      List.map (fun oid -> (oid, Sym.Method (Sym.After, "ping"), [])) targets
    in
    let tx = D.begin_txn db in
    ignore (D.post_many db items) (* warm-up batch pays the tbegin posts *);
    let ns = measure_ns (fun () -> ignore (D.post_many db items)) in
    (match D.commit db tx with Ok () | Error `Aborted -> ());
    D.shutdown_pool db;
    ns /. float_of_int n_objects
  in
  let counts = [ 1; 2; 4 ] in
  let rows =
    List.concat_map
      (fun p -> [ (p, "uniform", measure ~hot:false p); (p, "hot", measure ~hot:true p) ])
      counts
  in
  pf "objects=%d triggers/object=%d shards/member=%d@." n_objects
    triggers_per_obj shard_count;
  pf "%-12s %-10s %16s %18s@." "partitions" "batch" "ns/event" "events/sec";
  List.iter
    (fun (p, shape, ns) ->
      pf "%-12d %-10s %16.0f %18.0f@." p shape ns (1e9 /. ns))
    rows;
  pf "shape: routing adds one owner lookup per event; a hot-key batch lands\n\
      every event on one member and forfeits the slicing.@.";
  let oc = open_out "BENCH_partition.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E16-partition\",\n";
  p "  \"unit\": \"ns per posted event (classify+step dominated, zero firings)\",\n";
  p
    "  \"description\": \"post_many through an oid-sliced engine group (%d \
     shards per member): %d objects x %d perpetual never-completing triggers, \
     one ping per object per batch; uniform spreads the batch over the \
     members, hot routes it all to one member\",\n"
    shard_count n_objects triggers_per_obj;
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (parts, shape, ns) ->
      p
        "    {\"partitions\": %d, \"batch\": \"%s\", \"ns_per_event\": %.0f, \
         \"events_per_sec\": %.0f}%s\n"
        parts shape ns (1e9 /. ns)
        (if i = last then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_partition.json@."

(* ------------------------------------------------------------------ *)
(* E17-timer: the timing wheel vs the sorted-list queue                 *)
(* ------------------------------------------------------------------ *)

(* Two costs, on both timer-queue representations. [arm]: marginal
   insert into a queue already holding n timers (raw [Timewheel]
   inserts, no engine around them) — O(n) for the sorted list, O(1)
   amortized for the wheel, so the list's arm count shrinks as n grows
   to keep the rows affordable. [sweep]: [advance_to] over a fleet of
   objects with staggered periodic triggers, every delivery re-arming
   its timer — the re-arm pays the list's O(n) insert again, making a
   sweep O(k·n) for the list and O(k) for the wheel. The 1M-pending
   sweep row is wheel-only (the list row would take minutes) and fills
   the structure with parked timers due beyond the window, so cascade
   and occupancy costs are real. Emits BENCH_timer.json. *)
let e17_timer () =
  section "E17-timer: timing wheel vs sorted-list queue (arm / advance sweep)";
  let module T = Ode_odb.Types in
  let module St = Ode_odb.Store in
  let module Tw = Ode_odb.Timewheel in
  let module Sc = Ode_odb.Schema in
  let module E = Ode_odb.Engine in
  let module Tx = Ode_odb.Txn in
  let module Obs = Ode_obs.Registry in
  let horizon = 10_000_000 in
  let mk_timer i due =
    {
      T.tm_due = due;
      tm_seq = i;
      tm_oid = 1 + (i mod 9973);
      tm_trigger = "t";
      tm_epoch = 0;
      tm_spec = Symbol.Every (Int64.of_int horizon);
      tm_anchor = 0L;
    }
  in
  let rand_due rng = Int64.of_int (1 + Random.State.int rng horizon) in
  let cmp a b =
    match Int64.compare a.T.tm_due b.T.tm_due with
    | 0 -> compare a.T.tm_seq b.T.tm_seq
    | c -> c
  in
  (* marginal arm cost at occupancy n, measured over k fresh inserts *)
  let arm ~wheel ~n ~k =
    let db = T.make_db ~backend:(St.backend_of `Heap) () in
    Tw.set_wheel db wheel;
    let rng = Random.State.make [| 1717; n |] in
    Tw.replace db
      (List.sort cmp (List.init n (fun i -> mk_timer i (rand_due rng))));
    let dues = Array.init k (fun _ -> rand_due rng) in
    let (), total =
      time_once (fun () ->
          Array.iteri (fun i due -> Tw.insert_timer db (mk_timer (n + i) due)) dues)
    in
    total /. float_of_int k
  in
  (* a fleet sweep: [objects] nodes with an every-[period]-ms heartbeat,
     activation staggered over one period so due instants spread out;
     then advance [advance_ms], every delivery re-arming its timer.
     [pad] extra timers are parked beyond the window (no live object),
     occupying the structure without ever coming due. *)
  let sweep ~wheel ~objects ~period ~advance_ms ~pad =
    let db = T.make_db ~backend:(St.backend_of (`Sharded 8)) () in
    Tw.set_wheel db wheel;
    let b = Sc.define_class "node" in
    let b =
      Sc.trigger_str b ~perpetual:true "hb"
        ~event:(Printf.sprintf "every time(MS=%d)" period)
        ~action:(fun _ _ -> ())
    in
    Sc.register_class db b;
    let per_ms = max 1 (objects / period) in
    let made = ref 0 in
    while !made < objects do
      let n = min per_ms (objects - !made) in
      (match
         Tx.with_txn db (fun _ ->
             for _ = 1 to n do
               let oid = E.create db "node" [] in
               E.activate db oid "hb" []
             done)
       with
      | Ok () -> ()
      | Error `Aborted -> failwith "sweep setup aborted");
      made := !made + n;
      if !made < objects then Tw.advance_clock db 1L
    done;
    let rng = Random.State.make [| 4242; objects |] in
    let parked_from = Int64.add (Tw.now db) (Int64.of_int (advance_ms + period)) in
    for i = 0 to pad - 1 do
      Tw.insert_timer db
        {
          T.tm_due = Int64.add parked_from (rand_due rng);
          tm_seq = Tw.fresh_seq db;
          tm_oid = 1_000_000_000 + i;
          tm_trigger = "parked";
          tm_epoch = 0;
          tm_spec = Symbol.After_period 1L;
          tm_anchor = 0L;
        }
    done;
    let pending = Tw.pending_count db in
    Obs.set_enabled db.T.obs true;
    let (), total =
      time_once (fun () -> Tw.advance_clock db (Int64.of_int advance_ms))
    in
    let delivered = Obs.get db.T.obs Obs.Timer_deliveries in
    if delivered = 0 then failwith "sweep delivered nothing";
    (pending, delivered, total /. float_of_int delivered)
  in
  pf "%10s %8s %16s %16s %10s@." "occupancy" "arms" "list ns/arm"
    "wheel ns/arm" "speedup";
  let arm_rows =
    List.map
      (fun (n, k_list) ->
        let list_ns = arm ~wheel:false ~n ~k:k_list in
        let wheel_ns = arm ~wheel:true ~n ~k:10_000 in
        pf "%10d %8d %16.0f %16.1f %9.0fx@." n k_list list_ns wheel_ns
          (list_ns /. wheel_ns);
        (n, k_list, list_ns, wheel_ns))
      [ (10_000, 4_000); (100_000, 1_000); (1_000_000, 300) ]
  in
  pf "%10s %12s %18s %18s %10s@." "pending" "deliveries" "list ns/delivery"
    "wheel ns/delivery" "speedup";
  let sweep_rows =
    List.map
      (fun (objects, period, advance_ms) ->
        let p_l, d_l, list_ns =
          sweep ~wheel:false ~objects ~period ~advance_ms ~pad:0
        in
        let p_w, d_w, wheel_ns =
          sweep ~wheel:true ~objects ~period ~advance_ms ~pad:0
        in
        if p_l <> p_w || d_l <> d_w then
          failwith "sweep: representations disagree on the workload";
        pf "%10d %12d %18.0f %18.0f %9.1fx@." p_w d_w list_ns wheel_ns
          (list_ns /. wheel_ns);
        (p_w, d_w, Some list_ns, wheel_ns))
      [ (10_000, 1_000, 10_000); (100_000, 10_000, 1_000) ]
  in
  let p_m, d_m, big_ns =
    sweep ~wheel:true ~objects:10_000 ~period:1_000 ~advance_ms:10_000
      ~pad:990_000
  in
  pf "%10d %12d %18s %18.0f %10s@." p_m d_m "-" big_ns "(wheel only)";
  let sweep_rows = sweep_rows @ [ (p_m, d_m, None, big_ns) ] in
  let arm_speedup_1m =
    match List.rev arm_rows with
    | (_, _, l, w) :: _ -> l /. w
    | [] -> assert false
  in
  let sweep_speedup_100k =
    match sweep_rows with
    | (_, _, Some l, w) :: _ -> l /. w
    | _ -> assert false
  in
  pf "shape: arming is O(n) vs O(1); a sweep's re-arms make it O(k*n) vs O(k).@.";
  let oc = open_out "BENCH_timer.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"E17-timer\",\n";
  p
    "  \"unit\": \"ns per armed timer / ns per delivered timer (delivery = \
     system txn + time-event post + periodic re-arm)\",\n";
  p
    "  \"description\": \"sorted-list queue vs hierarchical timing wheel: \
     marginal arm cost at fixed occupancy (raw queue inserts, dues uniform \
     over %d ms) and a fleet advance sweep (staggered every-period \
     heartbeats, each delivery re-arming; 1M-pending row pads the wheel \
     with parked timers and has no list baseline)\",\n"
    horizon;
  p "  \"arm_speedup_at_1m\": %.1f,\n" arm_speedup_1m;
  p "  \"sweep_speedup_100k_deliveries\": %.1f,\n" sweep_speedup_100k;
  p "  \"arm_rows\": [\n";
  let last = List.length arm_rows - 1 in
  List.iteri
    (fun i (n, k, l, w) ->
      p
        "    {\"occupancy\": %d, \"list_arms_measured\": %d, \
         \"list_ns_per_arm\": %.0f, \"wheel_ns_per_arm\": %.1f, \
         \"speedup\": %.1f}%s\n"
        n k l w (l /. w)
        (if i = last then "" else ","))
    arm_rows;
  p "  ],\n";
  p "  \"sweep_rows\": [\n";
  let last = List.length sweep_rows - 1 in
  List.iteri
    (fun i (pend, deliv, l, w) ->
      (match l with
      | Some l ->
        p
          "    {\"pending\": %d, \"deliveries\": %d, \
           \"list_ns_per_delivery\": %.0f, \"wheel_ns_per_delivery\": %.0f, \
           \"speedup\": %.1f}%s\n"
          pend deliv l w (l /. w)
          (if i = last then "" else ",")
      | None ->
        p
          "    {\"pending\": %d, \"deliveries\": %d, \
           \"list_ns_per_delivery\": null, \"wheel_ns_per_delivery\": %.0f}%s\n"
          pend deliv w
          (if i = last then "" else ",")))
    sweep_rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  pf "wrote BENCH_timer.json@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment              *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let lowered = e1_lowered () in
  let m = !e1_alphabet_m in
  let compiled = Compile.compile ~m lowered in
  let mask _ = true in
  let h = seeded_history ~m ~len:1000 42 in
  (* E1 *)
  let dfa_state = Compile.initial compiled in
  Array.iter (fun sym -> ignore (Compile.step compiled dfa_state sym ~mask)) h;
  let i1 = ref 0 in
  let e1_dfa =
    Test.make ~name:"e1-dfa-step"
      (Staged.stage (fun () ->
           ignore (Compile.step compiled dfa_state h.(!i1 mod 1000) ~mask);
           incr i1))
  in
  let tree = Ode_baseline.Incr.make lowered in
  Array.iter (fun sym -> ignore (Ode_baseline.Incr.post tree ~mask sym)) h;
  let i2 = ref 0 in
  let e1_tree =
    Test.make ~name:"e1-tree-step@1000"
      (Staged.stage (fun () ->
           ignore (Ode_baseline.Incr.post tree ~mask h.(!i2 mod 1000));
           incr i2))
  in
  (* E2 *)
  let t8 = P.parse_event "after deposit; before withdraw; after withdraw" in
  let e2_compile =
    Test.make ~name:"e2-compile-T8"
      (Staged.stage (fun () -> ignore (Detector.make t8)))
  in
  (* E4 *)
  let a =
    Compile.compile_pure ~m:6
      (Lowered.Choose (3, Atom [| false; false; false; true; false; false |]))
  in
  let a' =
    Committed.lift a ~tbegin:(fun s -> s = 0) ~tcommit:(fun s -> s = 1)
      ~tabort:(fun s -> s = 2)
  in
  let s4 = ref a'.Dfa.start in
  let i4 = ref 0 in
  let h4 = seeded_history ~m:6 ~len:1000 5 in
  let e4_lift =
    Test.make ~name:"e4-lifted-step"
      (Staged.stage (fun () ->
           s4 := Dfa.step a' !s4 h4.(!i4 mod 1000);
           incr i4))
  in
  (* E5 *)
  let det5 = Detector.make (P.parse_event "before log && a > 0 | before log && b > 0") in
  let st5 = Detector.initial det5 in
  let env5 =
    {
      Mask.empty_env with
      var = (fun name -> Some (Value.Int (if name = "a" then 1 else 0)));
    }
  in
  let occ5 = { Symbol.basic = Symbol.Method (Before, "log"); args = []; at = 0L } in
  let e5_classify =
    Test.make ~name:"e5-classify+step"
      (Staged.stage (fun () -> ignore (Detector.post det5 st5 ~env:env5 occ5)))
  in
  (* E6 *)
  let det6 =
    Detector.make
      (Coupling.expression Coupling.Immediate_dependent ~event:(Expr.after "edit")
         ~cond:(Mask.Call ("cond", [])))
  in
  let st6 = Detector.initial det6 in
  let env6 = { Mask.empty_env with call = (fun _ _ -> Value.Bool true) } in
  let occs6 =
    Array.of_list
      (List.map
         (fun b -> { Symbol.basic = b; args = []; at = 0L })
         [
           Symbol.Tbegin; Symbol.Method (After, "edit"); Symbol.Tcomplete; Symbol.Tcommit;
         ])
  in
  let i6 = ref 0 in
  let e6_mode =
    Test.make ~name:"e6-immediate-dependent"
      (Staged.stage (fun () ->
           ignore (Detector.post det6 st6 ~env:env6 occs6.(!i6 mod 4));
           incr i6))
  in
  (* E7 *)
  let module S = Ode_scenarios.Stockroom in
  let s7 = S.setup () in
  let item7 = S.new_item s7 ~name:"w" ~eoq:1 ~balance:max_int in
  let e7_txn =
    Test.make ~name:"e7-stockroom-withdraw-txn"
      (Staged.stage (fun () -> ignore (S.withdraw s7 ~item:item7 ~qty:10)))
  in
  (* E8 *)
  let e8_compile =
    Test.make ~name:"e8-compile-choose-64"
      (Staged.stage (fun () -> ignore (Detector.make (P.parse_event "choose 64 (after f)"))))
  in
  let tests =
    [ e1_dfa; e1_tree; e2_compile; e4_lift; e5_classify; e6_mode; e7_txn; e8_compile ]
  in
  section "Bechamel micro-benchmarks (ns/run, OLS on monotonic clock)";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"ode" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> pf "%-32s %12.1f ns/run@." name ns
      | Some [] | None -> pf "%-32s (no estimate)@." name)
    (List.sort compare rows)

let () =
  let all =
    [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
      ("e7", e7); ("e8", e8); ("e9", e9); ("e9d", e9_dispatch); ("e10", e10);
      ("e10o", e10_obs); ("e11", e11); ("e11s", e11_shard); ("e12", e12);
      ("e12k", e12_kernel); ("e14w", e14_wal); ("e15s", e15_serve);
      ("e16p", e16_partition); ("e17t", e17_timer); ("micro", bechamel_suite);
      ("smoke", smoke) ]
  in
  let selected =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> all
    | names ->
      List.iter
        (fun n ->
          if not (List.mem_assoc n all) then begin
            Fmt.epr "unknown experiment %S; available: %s@." n
              (String.concat " " (List.map fst all));
            exit 2
          end)
        names;
      List.filter (fun (n, _) -> List.mem n names) all
  in
  pf "Reproduction benchmarks: Gehani, Jagadish & Shmueli, SIGMOD 1992.@.";
  List.iter (fun (_, run) -> run ()) selected;
  pf "@.done.@."

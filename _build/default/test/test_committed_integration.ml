(* §6, theory meets implementation: for a Committed-mode trigger, the
   database restores detection state from its undo log on abort. The
   resulting state must equal what a fresh detector computes over the
   committed projection of the object's recorded (true, §6) history —
   exactly the equivalence the paper's A/A' argument rests on. *)

module D = Ode_odb.Database
module Value = Ode_base.Value
module History = Ode_odb.History
open Ode_event

type txn_op = T_call of string | T_commit | T_abort

let gen_workload : txn_op list list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 1 12)
    (let* body = list_size (int_range 1 4) (oneofl [ T_call "m"; T_call "x" ]) in
     let* commits = frequencyl [ (7, T_commit); (3, T_abort) ] in
     return (body @ [ commits ]))

(* trigger events exercising counting, adjacency and windows *)
let trigger_events =
  [
    "choose 3 (after m)";
    "every 2 (after m)";
    "after m; after m";
    "relative(after x, choose 2 (after m))";
    "prior(after x, after m)";
  ]

let schema event =
  D.define_class "c"
  |> (fun b -> D.method_ b ~kind:D.Updating "m" (fun _ _ _ -> Value.Unit))
  |> (fun b -> D.method_ b ~kind:D.Updating "x" (fun _ _ _ -> Value.Unit))
  |> fun b ->
  D.trigger b ~perpetual:true ~mode:Detector.Committed "t"
    ~event:(Ode_lang.Parser.parse_event event)
    ~action:(fun _ _ -> ())

(* Committed projection of a recorded history: drop every record of a
   transaction that aborted (it has a Tabort record). System transactions
   (the tcommit/tabort posters) are kept. *)
let committed_projection (h : History.t) =
  let aborted =
    List.filter_map
      (fun (r : History.record) ->
        match r.h_occurrence.Symbol.basic with
        | Symbol.Tabort _ -> Some r.h_txn
        | _ -> None)
      h
  in
  List.filter
    (fun (r : History.record) ->
      (not (List.mem r.h_txn aborted))
      &&
      match r.h_occurrence.Symbol.basic with
      | Symbol.Tabort _ -> false
      | _ -> true)
    h

let integration =
  QCheck.Test.make ~count:200
    ~name:"committed-mode state = fresh run over the committed projection (§6)"
    (QCheck.make
       ~print:(fun (event, txns) ->
         Fmt.str "%s over %d txns" event (List.length txns))
       QCheck.Gen.(
         let* event = oneofl trigger_events in
         let* txns = gen_workload in
         return (event, txns)))
    (fun (event, txns) ->
      let db = D.create_db () in
      D.enable_history db ~limit:10_000;
      D.register_class db (schema event);
      let oid =
        match
          D.with_txn db (fun _ ->
              let oid = D.create db "c" [] in
              D.activate db oid "t" [];
              oid)
        with
        | Ok oid -> oid
        | Error `Aborted -> Alcotest.fail "setup aborted"
      in
      (* the history the reference must replay starts after activation:
         drop everything recorded so far *)
      let skip = List.length (D.object_history db oid) in
      List.iter
        (fun ops ->
          let tx = D.begin_txn db in
          List.iter
            (function
              | T_call name -> ignore (D.call db oid name [])
              | T_commit | T_abort -> ())
            ops;
          match List.rev ops with
          | T_abort :: _ -> D.abort db tx
          | _ -> ignore (D.commit db tx))
        txns;
      let final_state = D.trigger_state db oid "t" in
      (* reference: fresh detector over the committed projection *)
      let det = Detector.make (Ode_lang.Parser.parse_event event) in
      let state = Detector.initial det in
      let history = D.object_history db oid in
      let relevant = List.filteri (fun i _ -> i >= skip) history in
      List.iter
        (fun (r : History.record) ->
          ignore (Detector.post det state ~env:Mask.empty_env r.History.h_occurrence))
        (committed_projection relevant);
      if final_state <> state then
        QCheck.Test.fail_reportf "state %a, reference %a"
          Fmt.(Dump.array int)
          final_state
          Fmt.(Dump.array int)
          state
      else true)

let suite = List.map QCheck_alcotest.to_alcotest [ integration ]

(* The paper's §3.5 stockroom with triggers T1–T8, driven end to end. *)

open Ode_scenarios
module S = Stockroom
module D = Ode_odb.Database
module Clock = Ode_odb.Clock

let hour = 3_600_000L
let to_9am = Int64.mul hour 9L

let expect_ok name = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.failf "%s: unexpectedly aborted" name

let test_t1_authorization () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:1000 in
  expect_ok "authorized withdraw" (S.withdraw s ~item ~qty:5);
  Alcotest.(check int) "balance moved" 995 (S.item_balance s item);
  s.S.current_user <- "mallory";
  Alcotest.(check bool)
    "unauthorized withdraw aborts" true
    (S.withdraw s ~item ~qty:5 = Error `Aborted);
  Alcotest.(check int) "balance unchanged" 995 (S.item_balance s item);
  s.S.current_user <- "amy";
  expect_ok "authorized again" (S.withdraw s ~item ~qty:5);
  Alcotest.(check int) "balance moved again" 990 (S.item_balance s item)

let test_t2_reorder () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:12 in
  expect_ok "above eoq" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "no order yet" 0 (S.counter s "orders");
  expect_ok "drops below eoq" (S.withdraw s ~item ~qty:5);
  Alcotest.(check int) "order placed" 1 (S.counter s "orders");
  (* T2 is an ordinary trigger: it does not fire again until reactivated *)
  expect_ok "still below" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "no duplicate order" 1 (S.counter s "orders");
  expect_ok "reactivate"
    (D.with_txn s.S.db (fun _ -> D.activate s.S.db s.S.stockroom "T2" []));
  expect_ok "below again" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "reordered after reactivation" 2 (S.counter s "orders")

let test_t3_day_end_summary () =
  let s = S.setup () in
  D.advance_clock s.S.db (Int64.mul hour 16L) (* 00:00 -> 16:00 *);
  Alcotest.(check int) "not yet 17:00" 0 (S.counter s "summaries");
  D.advance_clock s.S.db (Int64.mul hour 2L) (* 18:00 *);
  Alcotest.(check int) "summary at day end" 1 (S.counter s "summaries");
  D.advance_clock s.S.db (Int64.mul hour 24L) (* next day 18:00 *);
  Alcotest.(check int) "daily" 2 (S.counter s "summaries")

let test_t4_report_after_fifth_txn () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:100000 in
  (* transactions before 9am do not count *)
  for _ = 1 to 6 do
    expect_ok "pre-9am txn" (S.deposit s ~item ~qty:1)
  done;
  Alcotest.(check int) "no reports before day begin" 0 (S.counter s "reports");
  D.advance_clock s.S.db to_9am;
  for _ = 1 to 5 do
    expect_ok "txn" (S.deposit s ~item ~qty:1)
  done;
  Alcotest.(check int) "first five unreported" 0 (S.counter s "reports");
  expect_ok "sixth txn" (S.deposit s ~item ~qty:1);
  Alcotest.(check int) "sixth reported" 1 (S.counter s "reports");
  expect_ok "seventh txn" (S.deposit s ~item ~qty:1);
  Alcotest.(check int) "seventh reported" 2 (S.counter s "reports");
  (* the next day the count starts over *)
  D.advance_clock s.S.db (Int64.mul hour 24L);
  for _ = 1 to 5 do
    expect_ok "next-day txn" (S.deposit s ~item ~qty:1)
  done;
  Alcotest.(check int) "new day, first five unreported" 2 (S.counter s "reports");
  expect_ok "next-day sixth" (S.deposit s ~item ~qty:1);
  Alcotest.(check int) "new day sixth reported" 3 (S.counter s "reports")

let test_t5_averages_every_fifth_access () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:100000 in
  for _ = 1 to 4 do
    expect_ok "op" (S.deposit s ~item ~qty:1)
  done;
  Alcotest.(check int) "four accesses" 0 (S.counter s "avg_updates");
  expect_ok "fifth op" (S.deposit s ~item ~qty:1);
  Alcotest.(check int) "five accesses" 1 (S.counter s "avg_updates")

let test_t6_large_withdrawals_logged () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:100000 in
  expect_ok "small" (S.withdraw s ~item ~qty:100);
  Alcotest.(check int) "q=100 is not large" 0 (S.counter s "logs");
  expect_ok "large" (S.withdraw s ~item ~qty:101);
  Alcotest.(check int) "q=101 logged" 1 (S.counter s "logs");
  expect_ok "large again" (S.withdraw s ~item ~qty:500);
  Alcotest.(check int) "every large one" 2 (S.counter s "logs")

let test_t7_fifth_large_in_same_day () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:1_000_000 in
  D.advance_clock s.S.db to_9am;
  let summaries_before = S.counter s "summaries" in
  for _ = 1 to 4 do
    expect_ok "large withdrawal" (S.withdraw s ~item ~qty:200)
  done;
  Alcotest.(check int) "four large: nothing" summaries_before (S.counter s "summaries");
  expect_ok "fifth large" (S.withdraw s ~item ~qty:200);
  Alcotest.(check int) "fifth large summarised" (summaries_before + 1)
    (S.counter s "summaries");
  expect_ok "sixth large" (S.withdraw s ~item ~qty:200);
  Alcotest.(check int) "only the fifth" (summaries_before + 1) (S.counter s "summaries");
  (* next day: window restarts (T3 will add one summary at 17:00) *)
  D.advance_clock s.S.db (Int64.mul hour 24L);
  let base = S.counter s "summaries" in
  for _ = 1 to 5 do
    expect_ok "next-day large" (S.withdraw s ~item ~qty:200)
  done;
  Alcotest.(check int) "fires again next day" (base + 1) (S.counter s "summaries")

let test_t8_deposit_then_withdrawal () =
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:100000 in
  expect_ok "withdraw alone" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "no print" 0 (S.counter s "printlogs");
  expect_ok "deposit" (S.deposit s ~item ~qty:1);
  expect_ok "withdraw right after" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "deposit then withdrawal prints" 1 (S.counter s "printlogs");
  expect_ok "another withdraw" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "withdrawal after withdrawal does not" 1 (S.counter s "printlogs");
  expect_ok "deposit" (S.deposit s ~item ~qty:1);
  expect_ok "deposit" (S.deposit s ~item ~qty:1);
  expect_ok "withdraw" (S.withdraw s ~item ~qty:1);
  Alcotest.(check int) "latest deposit counts" 2 (S.counter s "printlogs")

let test_aborted_withdrawal_leaves_t6_history () =
  (* T1 aborts an unauthorized large withdrawal after `before withdraw`;
     the `after withdraw` event is never posted, so T6 must not log it. *)
  let s = S.setup () in
  let item = S.new_item s ~name:"widget" ~eoq:10 ~balance:100000 in
  s.S.current_user <- "mallory";
  Alcotest.(check bool) "aborted" true (S.withdraw s ~item ~qty:500 = Error `Aborted);
  Alcotest.(check int) "nothing logged" 0 (S.counter s "logs")

let suite =
  [
    Alcotest.test_case "T1: authorization guard" `Quick test_t1_authorization;
    Alcotest.test_case "T2: economic order quantity" `Quick test_t2_reorder;
    Alcotest.test_case "T3: day-end summary" `Quick test_t3_day_end_summary;
    Alcotest.test_case "T4: report after 5th transaction" `Quick test_t4_report_after_fifth_txn;
    Alcotest.test_case "T5: averages every 5 accesses" `Quick test_t5_averages_every_fifth_access;
    Alcotest.test_case "T6: large withdrawals logged" `Quick test_t6_large_withdrawals_logged;
    Alcotest.test_case "T7: 5th large withdrawal of the day" `Quick test_t7_fifth_large_in_same_day;
    Alcotest.test_case "T8: deposit immediately before withdrawal" `Quick
      test_t8_deposit_then_withdrawal;
    Alcotest.test_case "abort interacts with T1/T6" `Quick
      test_aborted_withdrawal_leaves_t6_history;
  ]

(* Full-provenance detection (§9): the boolean shadow must agree with the
   automaton detector, and each match must carry its own bindings. *)

open Ode_event
module Value = Ode_base.Value

let env = Mask.empty_env

let occ name args : Symbol.occurrence =
  { Symbol.basic = Symbol.Method (After, name); args; at = 0L }

let boolean_shadow =
  QCheck.Test.make ~count:300 ~name:"provenance non-empty iff the detector fires"
    (QCheck.make
       ~print:(fun (e, occs) ->
         Fmt.str "%a on %d occurrences" Expr.pp e (List.length occs))
       QCheck.Gen.(
         let* e = Gen.gen_surface_expr ~max_size:7 () in
         let* occs = list_size (int_bound 20) Gen.gen_occurrence in
         return (e, occs)))
    (fun (e, occs) ->
      QCheck.assume (Gen.growth_depth (let _, l, _ = Rewrite.build e in l) <= 3);
      match Detector.make e with
      | exception Invalid_argument _ -> true
      | det ->
        let state = Detector.initial det in
        let prov = Provenance.make ~max_matches:4096 e in
        List.for_all
          (fun o ->
            let fired = Detector.post det state ~env o in
            let matches = Provenance.post prov ~env o in
            fired = (matches <> []))
          occs)

let formals names =
  List.map (fun n -> { Expr.f_ty = None; f_name = n }) names

let test_multiple_witnesses () =
  (* two credits before a debit: relative(credit, debit) has two
     witnesses, each carrying its own dst — beyond latest-wins *)
  let e =
    Expr.relative
      [ Expr.after ~formals:(formals [ "dst"; "q" ]) "credit";
        Expr.after ~formals:(formals [ "src"; "p" ]) "debit" ]
  in
  let prov = Provenance.make e in
  let post o = Provenance.post prov ~env o in
  Alcotest.(check int) "credit 1" 0 (List.length (post (occ "credit" [ Value.Oid 7; Value.Int 10 ])));
  Alcotest.(check int) "credit 2" 0 (List.length (post (occ "credit" [ Value.Oid 9; Value.Int 20 ])));
  let matches = post (occ "debit" [ Value.Oid 3; Value.Int 5 ]) in
  Alcotest.(check int) "two witnesses" 2 (List.length matches);
  let dsts = List.sort compare (List.map (fun b -> List.assoc "dst" b) matches) in
  Alcotest.(check bool) "distinct dst bindings" true
    (dsts = [ Value.Oid 7; Value.Oid 9 ]);
  List.iter
    (fun b ->
      Alcotest.(check bool) "src in every witness" true
        (List.assoc "src" b = Value.Oid 3))
    matches

let test_chain_accumulates () =
  (* relative+ accumulates bindings along the chain; the latest link
     shadows earlier ones for the repeated name *)
  let e = Expr.relative_plus (Expr.after ~formals:(formals [ "x" ]) "step") in
  let prov = Provenance.make e in
  let post v = Provenance.post prov ~env (occ "step" [ Value.Int v ]) in
  (match post 1 with
  | [ b ] -> Alcotest.(check bool) "first link" true (List.assoc "x" b = Value.Int 1)
  | ms -> Alcotest.failf "expected 1 match, got %d" (List.length ms));
  (* the second step matches as the 2nd link of the chain from step 1 AND
     as a fresh 1-link chain: two witnesses, both with x = 2 (shadowed) *)
  let matches = post 2 in
  Alcotest.(check int) "two chain witnesses" 2 (List.length matches);
  List.iter
    (fun b ->
      Alcotest.(check bool) "latest x shadows" true (List.assoc "x" b = Value.Int 2))
    matches

let test_fa_window_bindings () =
  let e =
    Expr.fa
      (Expr.after ~formals:(formals [ "session" ]) "open_")
      (Expr.after ~formals:(formals [ "amount" ]) "trade")
      (Expr.after "review")
  in
  let prov = Provenance.make e in
  let post o = Provenance.post prov ~env o in
  ignore (post (occ "open_" [ Value.Int 42 ]));
  (match post (occ "trade" [ Value.Int 900 ]) with
  | [ b ] ->
    Alcotest.(check bool) "window binding" true (List.assoc "session" b = Value.Int 42);
    Alcotest.(check bool) "completing binding" true (List.assoc "amount" b = Value.Int 900)
  | ms -> Alcotest.failf "expected 1 match, got %d" (List.length ms));
  (* the window is dead after its first match *)
  Alcotest.(check int) "first only" 0 (List.length (post (occ "trade" [ Value.Int 1 ])))

let test_cap_bounds_state () =
  let e =
    Expr.relative
      [ Expr.after ~formals:(formals [ "a" ]) "f"; Expr.after "g" ]
  in
  let prov = Provenance.make ~max_matches:8 e in
  for i = 1 to 100 do
    ignore (Provenance.post prov ~env (occ "f" [ Value.Int i ]))
  done;
  Alcotest.(check bool) "instances capped" true (Provenance.instance_count prov <= 32)

let test_consumption_contexts () =
  let e =
    Expr.relative
      [ Expr.after ~formals:(formals [ "dst" ]) "credit";
        Expr.after ~formals:(formals [ "src" ]) "debit" ]
  in
  let run context =
    let prov = Provenance.make ~context e in
    ignore (Provenance.post prov ~env (occ "credit" [ Value.Oid 7 ]));
    ignore (Provenance.post prov ~env (occ "credit" [ Value.Oid 9 ]));
    let first = Provenance.post prov ~env (occ "debit" [ Value.Oid 1 ]) in
    let second = Provenance.post prov ~env (occ "debit" [ Value.Oid 2 ]) in
    (List.map (fun b -> List.assoc "dst" b) first,
     List.map (fun b -> List.assoc "dst" b) second)
  in
  (* unrestricted (the paper's set semantics): both credits witness both
     debits *)
  let f, s = run Provenance.Unrestricted in
  Alcotest.(check int) "unrestricted: both witness 1st debit" 2 (List.length f);
  Alcotest.(check int) "unrestricted: both witness 2nd debit" 2 (List.length s);
  (* recent (Snoop): only the newest credit initiates, and it stays *)
  let f, s = run Provenance.Recent in
  Alcotest.(check bool) "recent: newest credit only" true (f = [ Value.Oid 9 ]);
  Alcotest.(check bool) "recent: stays for the next debit" true (s = [ Value.Oid 9 ]);
  (* chronicle (Snoop): FIFO pairing, each credit consumed once *)
  let f, s = run Provenance.Chronicle in
  Alcotest.(check bool) "chronicle: oldest credit pairs first" true (f = [ Value.Oid 7 ]);
  Alcotest.(check bool) "chronicle: then the next oldest" true (s = [ Value.Oid 9 ])

let test_chronicle_fa () =
  let e =
    Expr.fa
      (Expr.after ~formals:(formals [ "w" ]) "open_")
      (Expr.after "hit")
      (Expr.after "close")
  in
  let prov = Provenance.make ~context:Provenance.Chronicle e in
  ignore (Provenance.post prov ~env (occ "open_" [ Value.Int 1 ]));
  ignore (Provenance.post prov ~env (occ "open_" [ Value.Int 2 ]));
  (match Provenance.post prov ~env (occ "hit" []) with
  | [ b ] ->
    Alcotest.(check bool) "oldest window reported" true (List.assoc "w" b = Value.Int 1)
  | ms -> Alcotest.failf "expected 1 chronicle match, got %d" (List.length ms));
  (* fa windows are first-match: both died at the hit *)
  Alcotest.(check int) "windows dead" 0 (List.length (Provenance.post prov ~env (occ "hit" [])))

let suite =
  List.map QCheck_alcotest.to_alcotest [ boolean_shadow ]
  @ [
      Alcotest.test_case "multiple witnesses" `Quick test_multiple_witnesses;
      Alcotest.test_case "chains accumulate bindings" `Quick test_chain_accumulates;
      Alcotest.test_case "fa window bindings" `Quick test_fa_window_bindings;
      Alcotest.test_case "cap bounds state" `Quick test_cap_bounds_state;
      Alcotest.test_case "consumption contexts (Snoop)" `Quick test_consumption_contexts;
      Alcotest.test_case "chronicle fa pairing" `Quick test_chronicle_fa;
    ]

(* Model-based soak test of the database: random sequences of operations
   (create / call / set / delete / begin / commit / abort / clock / save /
   load) are applied both to the database and to a pure model of the
   committed state; after every commit or abort the two must agree, and
   structural invariants (lock table empty outside transactions, stats
   consistent) must hold. *)

module D = Ode_odb.Database
module Value = Ode_base.Value

type model = {
  mutable committed : (int * int) list;  (* oid -> n, committed state *)
  mutable pending : (int * int) list;  (* oid -> n inside the open txn *)
  mutable created_pending : int list;  (* oids created in the open txn *)
  mutable deleted_pending : int list;
}

type op =
  | Op_create
  | Op_incr of int  (* pick among live oids by index *)
  | Op_delete of int
  | Op_commit
  | Op_abort
  | Op_reload  (* save + load, only outside transactions *)
  | Op_advance of int

let gen_ops : op list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 10 60)
    (frequency
       [
         (3, return Op_create);
         (8, map (fun i -> Op_incr i) (int_bound 20));
         (1, map (fun i -> Op_delete i) (int_bound 20));
         (4, return Op_commit);
         (2, return Op_abort);
         (1, return Op_reload);
         (1, map (fun ms -> Op_advance (ms * 100)) (int_bound 50));
       ])

let schema () =
  D.define_class "cell"
  |> (fun b -> D.field b "n" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "incr" (fun db oid _ ->
           D.set_field db oid "n" (Value.add (D.get_field db oid "n") (Value.Int 1));
           Value.Unit))
  |> fun b ->
  (* a trigger exercising detection during the soak *)
  D.trigger b ~perpetual:true "every3"
    ~event:(Ode_lang.Parser.parse_event "every 3 (after incr)")
    ~action:(fun _ _ -> ())

let soak =
  QCheck.Test.make ~count:120 ~name:"database agrees with a pure model"
    (QCheck.make gen_ops)
    (fun ops ->
      let db = D.create_db () in
      D.register_class db (schema ());
      let model =
        { committed = []; pending = []; created_pending = []; deleted_pending = [] }
      in
      let txn = ref None in
      let tmp = Filename.temp_file "ode_soak" ".img" in
      let in_txn f =
        match !txn with
        | Some _ -> f ()
        | None ->
          let tx = D.begin_txn db in
          txn := Some tx;
          model.pending <- model.committed;
          f ()
      in
      let commit () =
        match !txn with
        | None -> ()
        | Some tx ->
          txn := None;
          (match D.commit db tx with
          | Ok () ->
            model.committed <-
              List.filter
                (fun (oid, _) -> not (List.mem oid model.deleted_pending))
                model.pending
          | Error `Aborted -> () (* no trigger aborts in this schema *));
          model.pending <- [];
          model.created_pending <- [];
          model.deleted_pending <- []
      in
      let abort () =
        match !txn with
        | None -> ()
        | Some tx ->
          txn := None;
          D.abort db tx;
          model.pending <- [];
          model.created_pending <- [];
          model.deleted_pending <- []
      in
      let live_model () =
        List.filter (fun (oid, _) -> not (List.mem oid model.deleted_pending))
          (match !txn with Some _ -> model.pending | None -> model.committed)
      in
      let check_agreement () =
        List.for_all
          (fun (oid, n) ->
            D.exists db oid && Value.equal (D.get_field db oid "n") (Value.Int n))
          model.committed
        && (not (List.exists (fun (oid, _) -> not (D.exists db oid)) model.committed))
      in
      let ok = ref true in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | Op_create ->
              in_txn (fun () ->
                  let oid = D.create db "cell" [] in
                  D.activate db oid "every3" [];
                  model.pending <- (oid, 0) :: model.pending;
                  model.created_pending <- oid :: model.created_pending)
            | Op_incr i ->
              in_txn (fun () ->
                  match live_model () with
                  | [] -> ()
                  | live ->
                    let oid, n = List.nth live (i mod List.length live) in
                    ignore (D.call db oid "incr" []);
                    model.pending <-
                      (oid, n + 1) :: List.remove_assoc oid model.pending)
            | Op_delete i ->
              in_txn (fun () ->
                  match live_model () with
                  | [] -> ()
                  | live ->
                    let oid, _ = List.nth live (i mod List.length live) in
                    D.delete db oid;
                    model.deleted_pending <- oid :: model.deleted_pending)
            | Op_commit ->
              commit ();
              if not (check_agreement ()) then ok := false
            | Op_abort ->
              abort ();
              if not (check_agreement ()) then ok := false
            | Op_reload ->
              if !txn = None then begin
                D.save db tmp;
                D.load db tmp;
                if not (check_agreement ()) then ok := false
              end
            | Op_advance ms -> if !txn = None then D.advance_clock db (Int64.of_int ms))
        ops;
      commit ();
      Sys.remove tmp;
      !ok && check_agreement ())

let suite = List.map QCheck_alcotest.to_alcotest [ soak ]

(* The ODL schema language: the paper's class-declaration syntax with
   interpreted method bodies and trigger actions. *)

module D = Ode_odb.Database
module Value = Ode_base.Value
module Odl = Ode_odl.Odl

let schema =
  {|
  class item {
    string name = "";
    int balance = 0;
    int eoq = 0;
  public:
    item(string n, int b, int e) { name = n; balance = b; eoq = e; }
  };

  class stockRoom {
    int orders = 0;
    int logs = 0;
    int printlogs = 0;
  public:
    stockRoom() { activate T1(); activate T2(); activate T6(); activate T8(); }
    update void deposit(item i, int q)  { i.balance = i.balance + q; }
    update void withdraw(item i, int q) { i.balance = i.balance - q; }
    update void order(item i) { orders = orders + 1; }
    update void log()      { logs = logs + 1; }
    update void printLog() { printlogs = printlogs + 1; }
    read int totalOrders() { return orders; }
  trigger:
    T1() : perpetual before withdraw && !authorized(user()) ==> tabort;
    T2() : after withdraw(i, q) && i.balance < reorder(i) ==> order(i);
    T6() : perpetual after withdraw(i, q) && q > 100 ==> log();
    T8() : perpetual after deposit; before withdraw; after withdraw ==> printLog();
  };
  |}

let setup () =
  let db = D.create_db () in
  let user = ref "amy" in
  D.register_fun db "user" (fun _ _ -> Value.String !user);
  D.register_fun db "authorized" (fun _ args ->
      match args with [ Value.String u ] -> Value.Bool (u = "amy") | _ -> Value.Bool false);
  D.register_fun db "reorder" (fun db args ->
      match args with [ Value.Oid i ] -> D.get_field db i "eoq" | _ -> Value.Int 0);
  let names = Odl.load_schema db schema in
  Alcotest.(check (list string)) "classes" [ "item"; "stockRoom" ] names;
  (db, user)

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "unexpected abort"

let test_constructor_and_methods () =
  let db, _ = setup () in
  let item, room =
    expect_ok
      (D.with_txn db (fun _ ->
           let item =
             D.create db "item" [ Value.String "w"; Value.Int 500; Value.Int 10 ]
           in
           let room = D.create db "stockRoom" [] in
           (item, room)))
  in
  Alcotest.(check bool)
    "constructor ran" true
    (Value.equal (D.get_field db item "balance") (Value.Int 500));
  expect_ok
    (D.with_txn db (fun _ ->
         ignore (D.call db room "deposit" [ Value.Oid item; Value.Int 7 ])));
  Alcotest.(check bool)
    "interpreted method body" true
    (Value.equal (D.get_field db item "balance") (Value.Int 507));
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool)
           "return statement" true
           (Value.equal (D.call db room "totalOrders" []) (Value.Int 0))))

let test_triggers_from_odl () =
  let db, user = setup () in
  let item, room =
    expect_ok
      (D.with_txn db (fun _ ->
           let item =
             D.create db "item" [ Value.String "w"; Value.Int 500; Value.Int 10 ]
           in
           let room = D.create db "stockRoom" [] in
           (item, room)))
  in
  let withdraw q =
    D.with_txn db (fun _ ->
        ignore (D.call db room "withdraw" [ Value.Oid item; Value.Int q ]))
  in
  (* T1: authorization via tabort *)
  user := "mallory";
  Alcotest.(check bool) "T1 aborts" true (withdraw 10 = Error `Aborted);
  user := "amy";
  (* T6: large withdrawals logged *)
  expect_ok (withdraw 150);
  Alcotest.(check bool)
    "T6 logged" true
    (Value.equal (D.get_field db room "logs") (Value.Int 1));
  (* T2: dropping below the economic order quantity orders, using the §9
     collected parameter i inside the interpreted action *)
  expect_ok (withdraw 345);
  Alcotest.(check bool)
    "balance drained" true
    (Value.equal (D.get_field db item "balance") (Value.Int 5));
  Alcotest.(check bool)
    "T2 ordered via collected i" true
    (Value.equal (D.get_field db room "orders") (Value.Int 1));
  (* T8: deposit immediately followed by withdrawal *)
  expect_ok
    (D.with_txn db (fun _ ->
         ignore (D.call db room "deposit" [ Value.Oid item; Value.Int 50 ])));
  expect_ok (withdraw 1);
  Alcotest.(check bool)
    "T8 printed" true
    (Value.equal (D.get_field db room "printlogs") (Value.Int 1))

let test_script () =
  let db, _ = setup () in
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  Odl.run_script ~out db
    {|
    new widget = item("widgets", 500, 10);
    new room = stockRoom();
    begin;
    call room.deposit(widget, 25);
    call room.withdraw(widget, 200);
    commit;
    show widget.balance;
    show room.logs;
    firings;
    |};
  Format.pp_print_flush out ();
  let output = Buffer.contents buf in
  let contains needle =
    let rec find i =
      i + String.length needle <= String.length output
      && (String.sub output i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  Alcotest.(check bool) "balance shown" true (contains "widget.balance = 325");
  Alcotest.(check bool) "large withdrawal logged" true (contains "room.logs = 1");
  Alcotest.(check bool) "firing reported" true (contains "fired stockRoom.T6")

let test_parse_errors () =
  let db = D.create_db () in
  let check_err name src =
    Alcotest.(check bool) name true
      (match Odl.load_schema db src with
      | _ -> false
      | exception Odl.Odl_error _ -> true)
  in
  check_err "missing brace" "class c { int x = 0;";
  check_err "bad member" "class c { 42; };";
  check_err "bad trigger" "class c { trigger: T() : ==> tabort; };";
  Alcotest.(check bool) "script error" true
    (match Odl.run_script db "call nothing.f();" with
    | _ -> false
    | exception Odl.Odl_error _ -> true)

let test_if_else_and_committed () =
  let db = D.create_db () in
  ignore
    (Odl.load_schema db
       {|
       class gauge {
         int level = 0;
         int highs = 0;
         int lows = 0;
         int spikes = 0;
       public:
         gauge() { activate spike_watch(3); }
         update void report(int v) {
           level = v;
           if (v > 100) { highs = highs + 1; } else { lows = lows + 1; }
         }
         update void note_spike() { spikes = spikes + 1; }
       trigger:
         // committed mode + an activation parameter used in the action
         spike_watch(threshold) : perpetual committed
           choose 3 (after report(v) && v > 100) ==>
           { if (spikes < threshold) { note_spike(); } }
       };
       |});
  let oid =
    match D.with_txn db (fun _ -> D.create db "gauge" []) with
    | Ok oid -> oid
    | Error `Aborted -> Alcotest.fail "setup aborted"
  in
  let report v =
    D.with_txn db (fun _ -> ignore (D.call db oid "report" [ Value.Int v ]))
  in
  expect_ok (report 50);
  expect_ok (report 150);
  expect_ok (report 200);
  Alcotest.(check bool) "if branch" true
    (Value.equal (D.get_field db oid "highs") (Value.Int 2));
  Alcotest.(check bool) "else branch" true
    (Value.equal (D.get_field db oid "lows") (Value.Int 1));
  Alcotest.(check bool) "not yet the 3rd spike" true
    (Value.equal (D.get_field db oid "spikes") (Value.Int 0));
  (* an aborted high report must not count in committed mode *)
  let tx = D.begin_txn db in
  ignore (D.call db oid "report" [ Value.Int 300 ]);
  D.abort db tx;
  expect_ok (report 40);
  Alcotest.(check bool) "aborted high not counted" true
    (Value.equal (D.get_field db oid "spikes") (Value.Int 0));
  expect_ok (report 250);
  Alcotest.(check bool) "third committed high spikes" true
    (Value.equal (D.get_field db oid "spikes") (Value.Int 1))

let suite =
  [
    Alcotest.test_case "constructor and methods" `Quick test_constructor_and_methods;
    Alcotest.test_case "triggers (T1/T2/T6/T8 in ODL)" `Quick test_triggers_from_odl;
    Alcotest.test_case "transaction script" `Quick test_script;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "if/else, committed mode, activation params" `Quick
      test_if_else_and_committed;
  ]

(* Civil calendar and time-pattern matching. *)

open Ode_odb
module Symbol = Ode_event.Symbol

let ms = Clock.ms_of_civil

let test_roundtrip () =
  List.iter
    (fun c ->
      let back = Clock.civil_of_ms (Clock.ms_of_civil c) in
      Alcotest.(check bool) "civil round-trip" true (back = c))
    [
      Clock.civil 1970 1 1;
      Clock.civil ~hr:9 1992 6 2;
      Clock.civil ~hr:23 ~min:59 ~sec:59 ~ms:999 1999 12 31;
      Clock.civil 2000 2 29;
      Clock.civil 1900 3 1;
      Clock.civil ~hr:12 1969 7 20 (* pre-epoch *);
    ]

let test_epoch () =
  Alcotest.(check int64) "epoch is zero" 0L (ms (Clock.civil 1970 1 1));
  Alcotest.(check int64) "one day" 86_400_000L (ms (Clock.civil 1970 1 2))

let test_leap () =
  Alcotest.(check bool) "2000 leap" true (Clock.is_leap 2000);
  Alcotest.(check bool) "1900 not leap" false (Clock.is_leap 1900);
  Alcotest.(check bool) "1992 leap" true (Clock.is_leap 1992);
  Alcotest.(check int) "feb 1992" 29 (Clock.days_in_month 1992 2)

let pat = Symbol.pattern

let test_next_match_daily () =
  (* at time(HR=9): daily at 09:00:00.000 *)
  let p = pat ~hr:9 () in
  let from = ms (Clock.civil ~hr:10 1992 6 2) in
  Alcotest.(check (option int64))
    "next 9am is tomorrow"
    (Some (ms (Clock.civil ~hr:9 1992 6 3)))
    (Clock.next_match p ~after:from);
  let before9 = ms (Clock.civil ~hr:8 1992 6 2) in
  Alcotest.(check (option int64))
    "next 9am is today"
    (Some (ms (Clock.civil ~hr:9 1992 6 2)))
    (Clock.next_match p ~after:before9);
  (* strictly greater: at exactly 9am, next is tomorrow *)
  let at9 = ms (Clock.civil ~hr:9 1992 6 2) in
  Alcotest.(check (option int64))
    "strictly after"
    (Some (ms (Clock.civil ~hr:9 1992 6 3)))
    (Clock.next_match p ~after:at9)

let test_next_match_specific () =
  let p = pat ~year:1992 ~mon:6 ~day:2 ~hr:9 () in
  let from = ms (Clock.civil 1992 1 1) in
  Alcotest.(check (option int64))
    "specific instant"
    (Some (ms (Clock.civil ~hr:9 1992 6 2)))
    (Clock.next_match p ~after:from);
  Alcotest.(check (option int64))
    "already past"
    None
    (Clock.next_match p ~after:(ms (Clock.civil 1993 1 1)))

let test_next_match_monthly () =
  (* at time(DAY=31): only months with a 31st *)
  let p = pat ~day:31 () in
  let from = ms (Clock.civil 1992 4 1) in
  Alcotest.(check (option int64))
    "skips April to May 31"
    (Some (ms (Clock.civil 1992 5 31)))
    (Clock.next_match p ~after:from)

let test_no_field () =
  Alcotest.(check (option int64)) "empty pattern" None
    (Clock.next_match Symbol.wildcard_pattern ~after:0L)

let test_matches () =
  let p = pat ~hr:9 () in
  Alcotest.(check bool) "9am matches" true (Clock.matches p (ms (Clock.civil ~hr:9 1992 6 2)));
  Alcotest.(check bool) "9:30 does not" false
    (Clock.matches p (ms (Clock.civil ~hr:9 ~min:30 1992 6 2)))

let test_yearly_and_monthly () =
  (* at time(MON=1, DAY=1): yearly on January 1st *)
  let p = pat ~mon:1 ~day:1 () in
  Alcotest.(check (option int64))
    "new year's"
    (Some (ms (Clock.civil 1993 1 1)))
    (Clock.next_match p ~after:(ms (Clock.civil 1992 6 2)));
  Alcotest.(check (option int64))
    "and the year after"
    (Some (ms (Clock.civil 1994 1 1)))
    (Clock.next_match p ~after:(ms (Clock.civil 1993 1 1)));
  (* leap-day pattern: only in leap years *)
  let p29 = pat ~mon:2 ~day:29 () in
  Alcotest.(check (option int64))
    "Feb 29 skips non-leap years"
    (Some (ms (Clock.civil 1996 2 29)))
    (Clock.next_match p29 ~after:(ms (Clock.civil 1993 1 1)))

let test_minute_pattern () =
  (* at time(M=30): every hour on the half hour, seconds pinned to 0 *)
  let p = pat ~min:30 () in
  Alcotest.(check (option int64))
    "next half hour"
    (Some (ms (Clock.civil ~hr:9 ~min:30 1992 6 2)))
    (Clock.next_match p ~after:(ms (Clock.civil ~hr:9 ~min:15 1992 6 2)));
  Alcotest.(check (option int64))
    "then the next hour's"
    (Some (ms (Clock.civil ~hr:10 ~min:30 1992 6 2)))
    (Clock.next_match p ~after:(ms (Clock.civil ~hr:9 ~min:30 1992 6 2)))

let next_match_is_match =
  QCheck.Test.make ~count:200 ~name:"next_match yields a matching instant"
    (QCheck.make
       QCheck.Gen.(
         let opt g = option g in
         let* hr = opt (int_bound 23) in
         let* min = opt (int_bound 59) in
         let* day = opt (int_range 1 28) in
         let* after = map Int64.of_int (int_bound 1_000_000_000) in
         return (hr, min, day, after)))
    (fun (hr, min, day, after) ->
      let p = { Symbol.wildcard_pattern with hr; min; day } in
      match Clock.next_match p ~after with
      | None -> hr = None && min = None && day = None
      | Some t -> t > after && Clock.matches p t)

let suite =
  [
    Alcotest.test_case "civil round-trip" `Quick test_roundtrip;
    Alcotest.test_case "epoch" `Quick test_epoch;
    Alcotest.test_case "leap years" `Quick test_leap;
    Alcotest.test_case "daily pattern" `Quick test_next_match_daily;
    Alcotest.test_case "fully specified pattern" `Quick test_next_match_specific;
    Alcotest.test_case "day-of-month pattern" `Quick test_next_match_monthly;
    Alcotest.test_case "empty pattern" `Quick test_no_field;
    Alcotest.test_case "matches" `Quick test_matches;
    Alcotest.test_case "yearly and leap-day patterns" `Quick test_yearly_and_monthly;
    Alcotest.test_case "minute pattern" `Quick test_minute_pattern;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ next_match_is_match ]

(* The automaton substrate (DESIGN.md P1): determinization, minimization,
   products, complement and the specialised constructions behave. *)

open Ode_event

let m = 3

(* Direct NFA simulation, as ground truth for determinize. *)
let nfa_accepts (t : Nfa.t) word =
  let n = Nfa.n_states t in
  let closure set =
    let changed = ref true in
    while !changed do
      changed := false;
      for s = 0 to n - 1 do
        if set.(s) then
          List.iter
            (fun q ->
              if not set.(q) then begin
                set.(q) <- true;
                changed := true
              end)
            t.eps.(s)
      done
    done
  in
  let cur = Array.make n false in
  List.iter (fun s -> cur.(s) <- true) t.start;
  closure cur;
  let step sym =
    let next = Array.make n false in
    Array.iteri
      (fun s on -> if on then List.iter (fun q -> next.(q) <- true) t.delta.(s).(sym))
      cur;
    closure next;
    Array.blit next 0 cur 0 n
  in
  Array.iter step word;
  Array.exists2 (fun on acc -> on && acc) cur t.accept

let gen_nfa : Nfa.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let state = int_bound (n - 1) in
  let* start = list_size (int_range 1 2) state in
  let* accept = array_size (return n) bool in
  let* delta =
    array_size (return n) (array_size (return m) (list_size (int_bound 2) state))
  in
  let* eps = array_size (return n) (list_size (int_bound 1) state) in
  return { Nfa.m; start; accept; delta; eps }

let gen_word = QCheck.Gen.(list_size (int_bound 10) (int_bound (m - 1)))

let determinize_correct =
  QCheck.Test.make ~count:500 ~name:"determinize preserves the language"
    (QCheck.make QCheck.Gen.(pair gen_nfa gen_word))
    (fun (nfa, word) ->
      let word = Array.of_list word in
      let dfa = Nfa.determinize nfa in
      Dfa.run dfa word = nfa_accepts nfa word)

let minimize_correct =
  QCheck.Test.make ~count:500 ~name:"minimize preserves the language and shrinks"
    (QCheck.make gen_nfa)
    (fun nfa ->
      let dfa = Nfa.determinize nfa in
      let md = Dfa.minimize dfa in
      Dfa.n_states md <= Dfa.n_states dfa
      && Dfa.equal_lang md dfa
      && Dfa.n_states (Dfa.minimize md) = Dfa.n_states md)

let complement_correct =
  QCheck.Test.make ~count:500 ~name:"complement = Sigma+ minus L"
    (QCheck.make QCheck.Gen.(pair gen_nfa gen_word))
    (fun (nfa, word) ->
      let word = Array.of_list word in
      let dfa = Nfa.determinize nfa in
      let cd = Dfa.complement dfa in
      if Array.length word = 0 then not (Dfa.run cd word)
      else Dfa.run cd word = not (Dfa.run dfa word))

let products_correct =
  QCheck.Test.make ~count:500 ~name:"union/inter/diff products"
    (QCheck.make QCheck.Gen.(triple gen_nfa gen_nfa gen_word))
    (fun (n1, n2, word) ->
      let word = Array.of_list word in
      let d1 = Nfa.determinize n1 and d2 = Nfa.determinize n2 in
      let r1 = Dfa.run d1 word and r2 = Dfa.run d2 word in
      Dfa.run (Dfa.union d1 d2) word = (r1 || r2)
      && Dfa.run (Dfa.inter d1 d2) word = (r1 && r2)
      && Dfa.run (Dfa.diff d1 d2) word = (r1 && not r2))

let concat_correct =
  QCheck.Test.make ~count:300 ~name:"concat via split points"
    (QCheck.make QCheck.Gen.(triple gen_nfa gen_nfa gen_word))
    (fun (n1, n2, word) ->
      let word = Array.of_list word in
      let got = Dfa.run (Nfa.determinize (Nfa.concat n1 n2)) word in
      let len = Array.length word in
      let expected = ref false in
      for k = 0 to len do
        if
          nfa_accepts n1 (Array.sub word 0 k)
          && nfa_accepts n2 (Array.sub word k (len - k))
        then expected := true
      done;
      got = !expected)

let test_leaf () =
  let d = Dfa.leaf ~m (fun c -> c = 1) in
  Alcotest.(check bool) "ends in 1" true (Dfa.run d [| 0; 2; 1 |]);
  Alcotest.(check bool) "ends in 0" false (Dfa.run d [| 1; 0 |]);
  Alcotest.(check bool) "empty word" false (Dfa.run d [||])

let test_counting () =
  let d = Dfa.leaf ~m (fun c -> c = 0) in
  let word = [| 0; 1; 0; 0; 2; 0 |] in
  (* occurrences of symbol 0 at positions 0,2,3,5 *)
  let run cond = Dfa.run_prefixes (Compile.counting d cond) word in
  Alcotest.(check (list bool))
    "exact 2"
    [ false; false; true; false; false; false ]
    (Array.to_list (run (`Exact 2)));
  Alcotest.(check (list bool))
    "at least 3"
    [ false; false; false; true; false; true ]
    (Array.to_list (run (`At_least 3)));
  Alcotest.(check (list bool))
    "every 2"
    [ false; false; true; false; false; true ]
    (Array.to_list (run (`Mod 2)))

let test_first_match () =
  let f = Dfa.leaf ~m (fun c -> c = 1) in
  let g = Dfa.leaf ~m (fun c -> c = 2) in
  let d = Compile.first_match f g in
  Alcotest.(check bool) "first f, clean" true (Dfa.run d [| 0; 0; 1 |]);
  Alcotest.(check bool) "g intervenes" false (Dfa.run d [| 0; 2; 1 |]);
  Alcotest.(check bool) "second f rejected" false (Dfa.run d [| 1; 0; 1 |]);
  (* an accepting-g state at the match point itself does not block *)
  let g' = Dfa.leaf ~m (fun c -> c = 1 || c = 2) in
  let d' = Compile.first_match f g' in
  Alcotest.(check bool) "g at the match point ok" true (Dfa.run d' [| 0; 1 |]);
  Alcotest.(check bool) "g strictly before blocks" false (Dfa.run d' [| 2; 1 |])

let test_any_word () =
  let d2 = Nfa.determinize (Nfa.any_word ~m 2) in
  Alcotest.(check bool) "len 2" true (Dfa.run d2 [| 0; 1 |]);
  Alcotest.(check bool) "len 1" false (Dfa.run d2 [| 0 |]);
  Alcotest.(check bool) "len 3" false (Dfa.run d2 [| 0; 1; 2 |])

let test_check_validates () =
  Alcotest.check_raises "bad start"
    (Invalid_argument "Dfa: bad start") (fun () ->
      Dfa.check { Dfa.m = 2; start = 5; accept = [| false |]; delta = [| [| 0; 0 |] |] })

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      determinize_correct; minimize_correct; complement_correct; products_correct;
      concat_correct;
    ]
  @ [
      Alcotest.test_case "leaf automaton" `Quick test_leaf;
      Alcotest.test_case "counting constructions" `Quick test_counting;
      Alcotest.test_case "first-match construction" `Quick test_first_match;
      Alcotest.test_case "any-word automaton" `Quick test_any_word;
      Alcotest.test_case "structural validation" `Quick test_check_validates;
    ]

(* The base substrate: dynamic values, the binary codec, bit sets and the
   lock table. *)

module Value = Ode_base.Value
module Codec = Ode_base.Codec
open Ode_event

let test_value_arith () =
  let open Value in
  Alcotest.(check bool) "int add" true (equal (add (Int 2) (Int 3)) (Int 5));
  Alcotest.(check bool) "promotion" true (equal (add (Int 2) (Float 0.5)) (Float 2.5));
  Alcotest.(check bool) "string concat" true
    (equal (add (String "a") (String "b")) (String "ab"));
  Alcotest.(check bool) "neg" true (equal (neg (Int 5)) (Int (-5)));
  Alcotest.check_raises "bool arithmetic rejected"
    (Type_error "add: unexpected bool, bool") (fun () ->
      ignore (add (Bool true) (Bool false)));
  Alcotest.(check bool) "div" true (equal (div (Int 7) (Int 2)) (Int 3));
  Alcotest.(check bool) "float div" true (equal (div (Int 7) (Float 2.0)) (Float 3.5))

let test_value_compare () =
  let open Value in
  Alcotest.(check bool) "int < int" true (compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "int vs float" true (compare (Int 2) (Float 1.5) > 0);
  Alcotest.(check bool) "cross-type total" true (compare (Bool true) (Int 0) <> 0);
  Alcotest.(check bool) "oids" true (compare (Oid 3) (Oid 3) = 0);
  Alcotest.(check bool) "equal via compare" true (equal (Float 2.0) (Int 2))

let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (1, return Value.Unit);
      (2, map (fun b -> Value.Bool b) bool);
      (4, map (fun i -> Value.Int i) int);
      (3, map (fun f -> Value.Float f) (float_bound_inclusive 1e12));
      (3, map (fun s -> Value.String s) string_printable);
      (2, map (fun o -> Value.Oid (abs o)) small_int);
    ]

let codec_value_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec round-trips values"
    (QCheck.make ~print:Value.to_string value_gen)
    (fun v ->
      let w = Codec.writer () in
      Codec.write_value w v;
      let r = Codec.reader (Codec.contents w) in
      let v' = Codec.read_value r in
      Codec.at_end r && Value.compare v v' = 0)

let codec_int_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec round-trips ints (zig-zag)"
    (QCheck.make QCheck.Gen.int)
    (fun i ->
      let w = Codec.writer () in
      Codec.write_int w i;
      Codec.read_int (Codec.reader (Codec.contents w)) = i)

let test_codec_structures () =
  let w = Codec.writer () in
  Codec.write_list w Codec.write_string [ "a"; "bc"; "" ];
  Codec.write_option w Codec.write_float (Some 1.5);
  Codec.write_option w Codec.write_float None;
  Codec.write_array w Codec.write_bool [| true; false |];
  Codec.write_pair w Codec.write_int Codec.write_string (7, "x");
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check (list string)) "list" [ "a"; "bc"; "" ] (Codec.read_list r Codec.read_string);
  Alcotest.(check (option (float 0.0))) "some" (Some 1.5) (Codec.read_option r Codec.read_float);
  Alcotest.(check (option (float 0.0))) "none" None (Codec.read_option r Codec.read_float);
  Alcotest.(check (array bool)) "array" [| true; false |] (Codec.read_array r Codec.read_bool);
  let a, b = Codec.read_pair r Codec.read_int Codec.read_string in
  Alcotest.(check int) "pair fst" 7 a;
  Alcotest.(check string) "pair snd" "x" b;
  Alcotest.(check bool) "consumed" true (Codec.at_end r)

let test_codec_corrupt () =
  let check_corrupt name f =
    Alcotest.(check bool) name true (match f () with _ -> false | exception Codec.Corrupt _ -> true)
  in
  check_corrupt "truncated varint" (fun () -> Codec.read_int (Codec.reader "\x80"));
  check_corrupt "bad bool" (fun () -> Codec.read_bool (Codec.reader "\x07"));
  check_corrupt "truncated string" (fun () ->
      let w = Codec.writer () in
      Codec.write_int w 100;
      Codec.read_string (Codec.reader (Codec.contents w)));
  check_corrupt "bad value tag" (fun () ->
      let w = Codec.writer () in
      Codec.write_int w 99;
      Codec.read_value (Codec.reader (Codec.contents w)))

let bitset_ops =
  QCheck.Test.make ~count:300 ~name:"bitset behaves like a set of ints"
    (QCheck.make
       QCheck.Gen.(
         let* cap = int_range 1 200 in
         let* xs = list_size (int_bound 50) (int_bound (cap - 1)) in
         let* ys = list_size (int_bound 50) (int_bound (cap - 1)) in
         return (cap, xs, ys)))
    (fun (cap, xs, ys) ->
      let s1 = Bitset.of_list cap xs and s2 = Bitset.of_list cap ys in
      let u = Bitset.copy s1 in
      Bitset.union_into u s2;
      let model = List.sort_uniq compare (xs @ ys) in
      Bitset.elements u = model
      && List.for_all (fun x -> Bitset.mem u x) model
      && Bitset.equal s1 (Bitset.of_list cap xs)
      && (Bitset.is_empty s1 = (xs = []))
      && Bitset.key u = Bitset.key (Bitset.of_list cap model))

let test_lock_table () =
  let open Ode_odb.Lock in
  Alcotest.(check bool) "free grants read" true (compatible Free ~holder:1 Read);
  Alcotest.(check bool) "free grants write" true (compatible Free ~holder:1 Write);
  let s = Option.get (acquire Free ~holder:1 Read) in
  let s = Option.get (acquire s ~holder:2 Read) in
  Alcotest.(check (list int)) "two readers" [ 2; 1 ] (holders s);
  Alcotest.(check bool) "no writer past readers" true (acquire s ~holder:3 Write = None);
  Alcotest.(check bool) "reader cannot upgrade past another" true
    (acquire s ~holder:1 Write = None);
  let s = release s ~holder:2 in
  let s = Option.get (acquire s ~holder:1 Write) in
  Alcotest.(check bool) "sole reader upgraded" true (s = Exclusive 1);
  Alcotest.(check bool) "reentrant write" true (acquire s ~holder:1 Write = Some s);
  Alcotest.(check bool) "reentrant read under write" true (acquire s ~holder:1 Read = Some s);
  Alcotest.(check bool) "other blocked" true (acquire s ~holder:2 Read = None);
  Alcotest.(check bool) "release frees" true (release s ~holder:1 = Free);
  Alcotest.(check bool) "stranger release is no-op" true (release s ~holder:9 = s)

let suite =
  [
    Alcotest.test_case "value arithmetic" `Quick test_value_arith;
    Alcotest.test_case "value comparison" `Quick test_value_compare;
    Alcotest.test_case "codec structures" `Quick test_codec_structures;
    Alcotest.test_case "codec corruption" `Quick test_codec_corrupt;
    Alcotest.test_case "lock table" `Quick test_lock_table;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ codec_value_roundtrip; codec_int_roundtrip; bitset_ops ]

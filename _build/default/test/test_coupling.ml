(* §7: every E-C-A coupling mode is a plain event expression. Each mode's
   trigger must fire at its documented point in the transaction lifecycle,
   with the condition evaluated at the documented time. *)

open Ode_odb
open Ode_event
module D = Database
module Value = Ode_base.Value

(* When a firing happens relative to the transaction: while the body runs,
   at commit processing in the same transaction (before tcomplete), or in
   the post-transaction system transaction (after tcommit/tabort). *)
type when_ = During_body | At_complete | Post_txn

type record = { r_mode : Coupling.mode; r_when : when_ }

let scenario ~cond_at_body ~cond_later ~commits =
  let db = D.create_db () in
  let fired = ref [] in
  let stage = ref During_body in
  let observed_txn = ref (-1) in
  let cond = ref cond_at_body in
  D.register_fun db "cond" (fun _ _ -> Value.Bool !cond);
  let event = Expr.after "edit" in
  let condition = Mask.Call ("cond", []) in
  let builder =
    List.fold_left
      (fun b mode ->
        D.trigger b ~perpetual:true (Coupling.name mode)
          ~event:(Coupling.expression mode ~event ~cond:condition)
          ~action:(fun db _ ->
            let in_observed =
              match D.current_txn db with
              | Some tx -> D.txn_id tx = !observed_txn
              | None -> false
            in
            let r_when =
              match !stage with
              | During_body -> During_body
              | _ -> if in_observed then At_complete else Post_txn
            in
            fired := { r_mode = mode; r_when } :: !fired))
      (D.define_class "doc"
      |> fun b ->
      D.method_ b ~kind:D.Updating "edit" (fun _ _ _ -> Value.Unit))
      Coupling.all
  in
  D.register_class db builder;
  let oid =
    match
      D.with_txn db (fun _ ->
          let oid = D.create db "doc" [] in
          List.iter (fun mode -> D.activate db oid (Coupling.name mode) []) Coupling.all;
          oid)
    with
    | Ok oid -> oid
    | Error `Aborted -> Alcotest.fail "setup aborted"
  in
  fired := [];
  let tx = D.begin_txn db in
  observed_txn := D.txn_id tx;
  stage := During_body;
  cond := cond_at_body;
  ignore (D.call db oid "edit" []);
  cond := cond_later;
  stage := At_complete;
  if commits then ignore (D.commit db tx) else D.abort db tx;
  List.rev !fired

let check_fired records mode expected_when =
  match List.filter (fun r -> r.r_mode = mode) records with
  | [ r ] ->
    if r.r_when <> expected_when then
      Alcotest.failf "%s fired at the wrong point" (Coupling.name mode)
  | [] -> Alcotest.failf "%s did not fire" (Coupling.name mode)
  | _ -> Alcotest.failf "%s fired more than once" (Coupling.name mode)

let check_silent records mode =
  if List.exists (fun r -> r.r_mode = mode) records then
    Alcotest.failf "%s fired but should not have" (Coupling.name mode)

let test_commit_cond_true () =
  let r = scenario ~cond_at_body:true ~cond_later:true ~commits:true in
  check_fired r Immediate_immediate During_body;
  check_fired r Immediate_deferred At_complete;
  check_fired r Immediate_dependent Post_txn;
  check_fired r Immediate_independent Post_txn;
  check_fired r Deferred_immediate At_complete;
  check_fired r Deferred_dependent Post_txn;
  check_fired r Deferred_independent Post_txn;
  check_fired r Dependent_immediate Post_txn;
  check_fired r Independent_immediate Post_txn

let test_commit_cond_flips_false () =
  (* condition true when E occurs, false by commit processing: the
     immediate-condition modes fire, the deferred/late-condition modes do
     not. *)
  let r = scenario ~cond_at_body:true ~cond_later:false ~commits:true in
  check_fired r Immediate_immediate During_body;
  check_fired r Immediate_deferred At_complete;
  check_fired r Immediate_dependent Post_txn;
  check_fired r Immediate_independent Post_txn;
  check_silent r Deferred_immediate;
  check_silent r Deferred_dependent;
  check_silent r Deferred_independent;
  check_silent r Dependent_immediate;
  check_silent r Independent_immediate

let test_commit_cond_flips_true () =
  (* condition false at E, true by commit: the opposite split. *)
  let r = scenario ~cond_at_body:false ~cond_later:true ~commits:true in
  check_silent r Immediate_immediate;
  check_silent r Immediate_deferred;
  check_silent r Immediate_dependent;
  check_silent r Immediate_independent;
  check_fired r Deferred_immediate At_complete;
  check_fired r Deferred_dependent Post_txn;
  check_fired r Deferred_independent Post_txn;
  check_fired r Dependent_immediate Post_txn;
  check_fired r Independent_immediate Post_txn

let test_abort () =
  (* on abort: immediate-immediate already ran; the independent modes fire
     at [after tabort] (that is what "independent" means); dependent modes
     require a commit; deferred modes never reach their before-tcomplete
     evaluation point. *)
  let r = scenario ~cond_at_body:true ~cond_later:true ~commits:false in
  check_fired r Immediate_immediate During_body;
  check_silent r Immediate_deferred;
  check_silent r Immediate_dependent;
  check_fired r Immediate_independent Post_txn;
  check_silent r Deferred_immediate;
  check_silent r Deferred_dependent;
  check_silent r Deferred_independent;
  check_silent r Dependent_immediate;
  check_fired r Independent_immediate Post_txn

let test_next_transaction_resets () =
  (* the fa(..., after tbegin) guard: an event in one transaction must not
     make a later transaction's commit fire the dependent modes. *)
  let db = D.create_db () in
  let fired = ref 0 in
  D.register_fun db "cond" (fun _ _ -> Value.Bool true);
  let builder =
    D.define_class "doc"
    |> (fun b -> D.method_ b ~kind:D.Updating "edit" (fun _ _ _ -> Value.Unit))
    |> fun b ->
    D.trigger b ~perpetual:true "dep"
      ~event:
        (Coupling.expression Coupling.Immediate_dependent ~event:(Expr.after "edit")
           ~cond:(Mask.Call ("cond", [])))
      ~action:(fun _ _ -> incr fired)
  in
  D.register_class db builder;
  let oid =
    match
      D.with_txn db (fun _ ->
          let oid = D.create db "doc" [] in
          D.activate db oid "dep" [];
          oid)
    with
    | Ok oid -> oid
    | Error `Aborted -> Alcotest.fail "setup aborted"
  in
  (* txn with edit -> fires at its commit *)
  (match D.with_txn db (fun _ -> ignore (D.call db oid "edit" [])) with
  | Ok () -> ()
  | Error `Aborted -> Alcotest.fail "aborted");
  Alcotest.(check int) "fires at own commit" 1 !fired;
  (* a later txn without edit: its commit must not fire *)
  (match D.with_txn db (fun _ -> ignore (D.call db oid "edit" [])) with
  | Ok () -> ()
  | Error `Aborted -> Alcotest.fail "aborted");
  Alcotest.(check int) "each edit-txn fires once" 2 !fired

let suite =
  [
    Alcotest.test_case "commit, condition true" `Quick test_commit_cond_true;
    Alcotest.test_case "condition flips false before commit" `Quick test_commit_cond_flips_false;
    Alcotest.test_case "condition flips true before commit" `Quick test_commit_cond_flips_true;
    Alcotest.test_case "abort" `Quick test_abort;
    Alcotest.test_case "tbegin guard resets across transactions" `Quick
      test_next_transaction_resets;
  ]

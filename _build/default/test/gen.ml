(* QCheck generators shared by the property-test suites. *)

open Ode_event

let selector m syms =
  let sel = Array.make m false in
  List.iter (fun c -> sel.(c) <- true) syms;
  sel

(* Random non-empty atom selector over symbols 0..m-2 (the last symbol
   plays "other" and is matched by no logical event, as in Rewrite). *)
let gen_atom ~m : Lowered.t QCheck.Gen.t =
  let open QCheck.Gen in
  let+ bits = int_range 1 ((1 lsl (m - 1)) - 1) in
  Lowered.Atom (Array.init m (fun c -> c < m - 1 && bits land (1 lsl c) <> 0))

(* Sized generator of mask-free lowered expressions. Counts are kept small
   so counting automata stay small. [max_size] bounds the AST size —
   instance-tree baselines blow up exponentially in nesting depth, so
   their tests pass a smaller bound. *)
let gen_lowered_pure ?(max_size = 12) ~m () : Lowered.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_range 1 max_size) @@ fix (fun self size ->
      if size <= 1 then gen_atom ~m
      else
        let sub = self (size / 2) in
        let sub3 = self (size / 3) in
        let count = int_range 1 4 in
        frequency
          [
            (2, gen_atom ~m);
            (2, map2 (fun a b -> Lowered.Or (a, b)) sub sub);
            (2, map2 (fun a b -> Lowered.And (a, b)) sub sub);
            (1, map (fun a -> Lowered.Not a) (self (size - 1)));
            (3, map2 (fun a b -> Lowered.Relative (a, b)) sub sub);
            (1, map (fun a -> Lowered.Relative_plus a) (self (size - 1)));
            (1, map2 (fun n a -> Lowered.Relative_n (n, a)) count (self (size - 1)));
            (2, map2 (fun a b -> Lowered.Prior (a, b)) sub sub);
            (1, map2 (fun n a -> Lowered.Prior_n (n, a)) count (self (size - 1)));
            (2, map2 (fun a b -> Lowered.Sequence (a, b)) sub sub);
            (1, map2 (fun n a -> Lowered.Sequence_n (n, a)) count (self (size - 1)));
            (1, map2 (fun n a -> Lowered.Choose (n, a)) count (self (size - 1)));
            (1, map2 (fun n a -> Lowered.Every (n, a)) count (self (size - 1)));
            (2, map3 (fun a b g -> Lowered.Fa (a, b, g)) sub3 sub3 sub3);
            (2, map3 (fun a b g -> Lowered.Fa_abs (a, b, g)) sub3 sub3 sub3);
          ])

(* Like [gen_lowered_pure] but sprinkles composite-mask nodes; mask ids
   are assigned 0.. in post-order by a renumbering pass. *)
let gen_lowered_masked ?max_size ~m () : (Lowered.t * int) QCheck.Gen.t =
  let open QCheck.Gen in
  let* base = gen_lowered_pure ?max_size ~m () in
  let* salt = int_bound 1000 in
  (* Wrap some subterms in Masked; deterministic walk driven by salt. *)
  let counter = ref 0 in
  let wrap_p i = (i * 7919 + salt) mod 3 = 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  let pos = ref 0 in
  let rec walk (e : Lowered.t) : Lowered.t =
    let e' : Lowered.t =
      match e with
      | False | Atom _ -> e
      | Or (a, b) -> Or (walk a, walk b)
      | And (a, b) -> And (walk a, walk b)
      | Not a -> Not (walk a)
      | Relative (a, b) -> Relative (walk a, walk b)
      | Relative_plus a -> Relative_plus (walk a)
      | Relative_n (n, a) -> Relative_n (n, walk a)
      | Prior (a, b) -> Prior (walk a, walk b)
      | Prior_n (n, a) -> Prior_n (n, walk a)
      | Sequence (a, b) -> Sequence (walk a, walk b)
      | Sequence_n (n, a) -> Sequence_n (n, walk a)
      | Choose (n, a) -> Choose (n, walk a)
      | Every (n, a) -> Every (n, walk a)
      | Fa (a, b, g) -> Fa (walk a, walk b, walk g)
      | Fa_abs (a, b, g) -> Fa_abs (walk a, walk b, walk g)
      | Masked (a, id) -> Masked (walk a, id)
    in
    incr pos;
    if wrap_p !pos && !counter < 4 then Lowered.Masked (e', fresh ()) else e'
  in
  let wrapped = walk base in
  return (wrapped, !counter)

let gen_history ~m ~len : int array QCheck.Gen.t =
  QCheck.Gen.(array_size (return len) (int_bound (m - 1)))

(* A deterministic pseudo-random oracle: mask [id] at position [p]. *)
let oracle_of_seed seed : Semantics.oracle =
 fun id p -> (seed + (id * 101) + (p * 7919)) land 7 < 5

let gen_regex ~m : Regex.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_range 1 15) @@ fix (fun self size ->
      if size <= 1 then
        frequency
          [
            (1, return Regex.Empty);
            (1, return Regex.Eps);
            (1, return Regex.Any);
            (4, map (fun c -> Regex.Sym c) (int_bound (m - 1)));
          ]
      else
        let sub = self (size / 2) in
        frequency
          [
            (3, map2 (fun a b -> Regex.Alt (a, b)) sub sub);
            (3, map2 (fun a b -> Regex.Seq (a, b)) sub sub);
            (2, map (fun a -> Regex.Star a) (self (size - 1)));
          ])

let lowered_print e = Fmt.str "%a" Lowered.pp e
let history_print h = Fmt.str "[%a]" Fmt.(array ~sep:(any ";") int) h

(* Nesting depth of instance-spawning operators: per level, instance-tree
   baselines multiply live instances by O(history), so tests bound this. *)
let rec growth_depth (e : Lowered.t) =
  match e with
  | False | Atom _ -> 0
  | Or (a, b) | And (a, b) | Prior (a, b) | Sequence (a, b) ->
    max (growth_depth a) (growth_depth b)
  | Not a | Prior_n (_, a) | Sequence_n (_, a) | Choose (_, a) | Every (_, a)
  | Masked (a, _) ->
    growth_depth a
  | Relative (a, b) -> max (growth_depth a) (1 + growth_depth b)
  | Relative_plus a | Relative_n (_, a) -> 1 + growth_depth a
  | Fa (a, b, g) | Fa_abs (a, b, g) ->
    max (growth_depth a) (1 + max (growth_depth b) (growth_depth g))

(* Surface-expression generator over a small pool of method events (some
   overloaded / masked), for Detector- and Combine-level tests. *)
let leaf_pool : Expr.t list =
  [
    Expr.after "f";
    Expr.before "f";
    Expr.after "g";
    Expr.after ~formals:[ { Expr.f_ty = None; f_name = "x" } ]
      ~mask:Mask.(var "x" >% v_int 0)
      "g";
    Expr.after ~formals:[ { Expr.f_ty = None; f_name = "x" } ]
      ~mask:Mask.(var "x" >% v_int 5)
      "g";
    Expr.leaf Symbol.Tcommit;
  ]

let gen_surface_expr ?(max_size = 8) () : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf = map (List.nth leaf_pool) (int_bound (List.length leaf_pool - 1)) in
  sized_size (int_range 1 max_size) @@ fix (fun self size ->
      if size <= 1 then leaf
      else
        let sub = self (size / 2) in
        let count = int_range 1 3 in
        frequency
          [
            (3, leaf);
            (2, map2 (fun a b -> Expr.Or (a, b)) sub sub);
            (1, map2 (fun a b -> Expr.And (a, b)) sub sub);
            (1, map (fun a -> Expr.Not a) (self (size - 1)));
            (3, map2 (fun a b -> Expr.relative [ a; b ]) sub sub);
            (2, map2 (fun a b -> Expr.prior [ a; b ]) sub sub);
            (2, map2 (fun a b -> Expr.sequence [ a; b ]) sub sub);
            (1, map2 Expr.choose count (self (size - 1)));
            (1, map2 Expr.every count (self (size - 1)));
            (1, map2 Expr.relative_n count (self (size - 1)));
            (1, map2 Expr.prior_n count (self (size - 1)));
            (1, map2 Expr.sequence_n count (self (size - 1)));
            (1, map (fun e -> Expr.relative_plus e) (self (size - 1)));
            (1, map3 Expr.fa sub sub sub);
            (1, map3 Expr.fa_abs sub sub sub);
          ])

(* Occurrences matching the pool: f/g method events with an int argument
   for g's overloads, and transaction commits. *)
let gen_occurrence : Ode_event.Symbol.occurrence QCheck.Gen.t =
  let open QCheck.Gen in
  let* pick = int_bound 5 in
  let+ x = int_range (-2) 10 in
  let basic, args =
    match pick with
    | 0 -> (Symbol.Method (After, "f"), [])
    | 1 -> (Symbol.Method (Before, "f"), [])
    | 2 -> (Symbol.Method (After, "g"), [])
    | 3 | 4 -> (Symbol.Method (After, "g"), [ Ode_base.Value.Int x ])
    | _ -> (Symbol.Tcommit, [])
  in
  { Symbol.basic; args; at = 0L }

(* Wrap random subexpressions of a surface expression in composite masks
   [&& cm<i>], for end-to-end detector tests. *)
let gen_surface_masked ?max_size () : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* base = gen_surface_expr ?max_size () in
  let* salt = int_bound 1000 in
  let counter = ref 0 in
  let pos = ref 0 in
  let rec walk (e : Expr.t) : Expr.t =
    let e' : Expr.t =
      match e with
      | Leaf _ -> e
      | Or (a, b) -> Or (walk a, walk b)
      | And (a, b) -> And (walk a, walk b)
      | Not a -> Not (walk a)
      | Relative es -> Relative (List.map walk es)
      | Relative_plus a -> Relative_plus (walk a)
      | Relative_n (n, a) -> Relative_n (n, walk a)
      | Prior es -> Prior (List.map walk es)
      | Prior_n (n, a) -> Prior_n (n, walk a)
      | Sequence es -> Sequence (List.map walk es)
      | Sequence_n (n, a) -> Sequence_n (n, walk a)
      | Choose (n, a) -> Choose (n, walk a)
      | Every (n, a) -> Every (n, walk a)
      | Fa (a, b, g) -> Fa (walk a, walk b, walk g)
      | Fa_abs (a, b, g) -> Fa_abs (walk a, walk b, walk g)
      | Masked (a, m) -> Masked (walk a, m)
    in
    incr pos;
    if (!pos * 31 + salt) mod 4 = 0 && !counter < 3 then begin
      let name = Printf.sprintf "cm%d" !counter in
      incr counter;
      Expr.Masked (e', Mask.Cmp (Mask.Eq, Mask.Var name, Mask.Const (Ode_base.Value.Bool true)))
    end
    else e'
  in
  return (walk base)

(* End-to-end pipeline properties:
   - the runtime detector (classification + per-trigger history filtering
     + automata) agrees with the denotational semantics computed over the
     classified, filtered symbol sequence;
   - printing and re-parsing random surface expressions is the identity. *)

open Ode_event
module P = Ode_lang.Parser

let env = Mask.empty_env

let detector_matches_semantics =
  QCheck.Test.make ~count:400 ~name:"detector = semantics over classified history"
    (QCheck.make
       ~print:(fun (e, occs) ->
         Fmt.str "%a on %d occurrences" Expr.pp e (List.length occs))
       QCheck.Gen.(
         let* e = Gen.gen_surface_expr ~max_size:8 () in
         let* occs = list_size (int_bound 30) Gen.gen_occurrence in
         return (e, occs)))
    (fun (e, occs) ->
      match Detector.make e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | det ->
        let state = Detector.initial det in
        let fired = List.map (fun occ -> Detector.post det state ~env occ) occs in
        (* reference: classify, drop non-events, evaluate denotationally *)
        let alphabet, lowered, _ = Rewrite.build e in
        let classified =
          List.map (fun occ -> Rewrite.classify alphabet ~env occ) occs
        in
        let kept =
          List.filter (fun s -> s <> Rewrite.other alphabet) classified
        in
        let labels = Semantics.eval lowered (Array.of_list kept) in
        let expected = ref [] in
        let j = ref 0 in
        List.iter
          (fun s ->
            if s = Rewrite.other alphabet then expected := false :: !expected
            else begin
              expected := labels.(!j) :: !expected;
              incr j
            end)
          classified;
        fired = List.rev !expected)

let print_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"print then parse is the identity"
    (QCheck.make
       ~print:(fun e -> Expr.to_string e)
       (Gen.gen_surface_expr ~max_size:10 ()))
    (fun e ->
      match P.event_of_string (Expr.to_string e) with
      | Ok e' -> Expr.equal e e'
      | Error msg ->
        QCheck.Test.fail_reportf "re-parse failed: %s on %s" msg (Expr.to_string e))

(* The parser must never escape with anything but its own error type. *)
let parser_total =
  QCheck.Test.make ~count:1000 ~name:"parser is total on arbitrary input"
    (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_bound 60)))
    (fun src ->
      match P.event_of_string src with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "escaped with %s on %S" (Printexc.to_string e) src)

(* §4: the translation back from regexes must land in the paper's core
   operator set (union, intersection, complement, relative, relative+,
   prior — no counting or fa needed). *)
let translate_uses_core_only =
  let m = 3 in
  let rec core_only (e : Lowered.t) =
    match e with
    | False | Atom _ -> true
    | Or (a, b) | And (a, b) | Relative (a, b) | Prior (a, b) ->
      core_only a && core_only b
    | Not a | Relative_plus a -> core_only a
    | Relative_n _ | Prior_n _ | Sequence _ | Sequence_n _ | Choose _ | Every _
    | Fa _ | Fa_abs _ | Masked _ ->
      false
  in
  QCheck.Test.make ~count:300 ~name:"Translate.of_regex stays in the core language"
    (QCheck.make ~print:(fun r -> Fmt.str "%a" Regex.pp r) (Gen.gen_regex ~m))
    (fun r ->
      match Translate.of_regex ~m (Regex.strip_eps r) with
      | None -> false (* strip_eps output is eps-free *)
      | Some lowered -> core_only lowered)

(* As above, but with composite masks wrapped around random
   subexpressions; the runtime env answers cm<i> from a seeded stream and
   the reference oracle must agree. *)
let masked_detector_matches_semantics =
  QCheck.Test.make ~count:300
    ~name:"detector = semantics with composite masks end-to-end"
    (QCheck.make
       ~print:(fun (e, occs, seed) ->
         Fmt.str "%a on %d occurrences (seed %d)" Expr.pp e (List.length occs) seed)
       QCheck.Gen.(
         let* e = Gen.gen_surface_masked ~max_size:7 () in
         let* occs = list_size (int_bound 25) Gen.gen_occurrence in
         let* seed = int_bound 10_000 in
         return (e, occs, seed)))
    (fun (e, occs, seed) ->
      let stream k p = (seed + (k * 131) + (p * 7919)) land 3 < 2 in
      match Detector.make e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | det ->
        let state = Detector.initial det in
        let fired =
          List.mapi
            (fun p occ ->
              let env =
                {
                  Mask.empty_env with
                  var =
                    (fun name ->
                      if String.length name > 2 && String.sub name 0 2 = "cm" then
                        match int_of_string_opt (String.sub name 2 (String.length name - 2)) with
                        | Some k -> Some (Ode_base.Value.Bool (stream k p))
                        | None -> None
                      else None);
                }
              in
              Detector.post det state ~env occ)
            occs
        in
        (* reference over the classified, filtered history *)
        let alphabet, lowered, masks = Rewrite.build e in
        let mask_key id =
          match masks.(id) with
          | Mask.Cmp (_, Mask.Var name, _) ->
            int_of_string (String.sub name 2 (String.length name - 2))
          | _ -> assert false
        in
        let classified =
          List.map (fun occ -> Rewrite.classify alphabet ~env:Mask.empty_env occ) occs
        in
        (* positions in the filtered history map back to original indices *)
        let kept, positions =
          List.fold_left
            (fun (kept, positions) (i, s) ->
              if s = Rewrite.other alphabet then (kept, positions)
              else (s :: kept, i :: positions))
            ([], [])
            (List.mapi (fun i s -> (i, s)) classified)
        in
        let kept = Array.of_list (List.rev kept) in
        let positions = Array.of_list (List.rev positions) in
        let oracle id j = stream (mask_key id) positions.(j) in
        let labels = Semantics.eval ~oracle lowered kept in
        let expected = ref [] in
        let j = ref 0 in
        List.iter
          (fun s ->
            if s = Rewrite.other alphabet then expected := false :: !expected
            else begin
              expected := labels.(!j) :: !expected;
              incr j
            end)
          classified;
        fired = List.rev !expected)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ detector_matches_semantics; masked_detector_matches_semantics;
      print_parse_roundtrip; parser_total; translate_uses_core_only ]

(* The central correctness property (DESIGN.md P2): for any event
   expression and any history, the compiled automaton marks exactly the
   points the denotational semantics marks. *)

open Ode_event

let count = 300

let pure_equivalence =
  let m = 4 in
  QCheck.Test.make ~count ~name:"compiled DFA = denotational semantics (pure)"
    (QCheck.make
       ~print:(fun (e, h) -> Gen.lowered_print e ^ " on " ^ Gen.history_print h)
       QCheck.Gen.(
         let* e = Gen.gen_lowered_pure ~m () in
         let* len = int_range 0 24 in
         let* h = Gen.gen_history ~m ~len in
         return (e, h)))
    (fun (e, h) ->
      match Compile.compile_pure ~m e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | dfa ->
        let reference = Semantics.eval e h in
        let got = Dfa.run_prefixes dfa h in
        reference = got)

let masked_equivalence =
  let m = 4 in
  QCheck.Test.make ~count ~name:"hierarchical automata = semantics (masked)"
    (QCheck.make
       ~print:(fun ((e, _), h, seed) ->
         Fmt.str "%s on %s (seed %d)" (Gen.lowered_print e) (Gen.history_print h) seed)
       QCheck.Gen.(
         let* em = Gen.gen_lowered_masked ~m () in
         let* len = int_range 0 20 in
         let* h = Gen.gen_history ~m ~len in
         let* seed = int_bound 10_000 in
         return (em, h, seed)))
    (fun ((e, _n_masks), h, seed) ->
      match Compile.compile ~m e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | compiled ->
        let oracle = Gen.oracle_of_seed seed in
        let reference = Semantics.eval ~oracle e h in
        let got = Compile.run compiled ~mask:(fun id p -> oracle id p) h in
        reference = got)

let regex_translation =
  let m = 3 in
  QCheck.Test.make ~count ~name:"of_regex: L(translate r) = L(r) \\ eps"
    (QCheck.make
       ~print:(fun r -> Fmt.str "%a" Regex.pp r)
       (Gen.gen_regex ~m))
    (fun r ->
      let eps_free = Regex.strip_eps r in
      match Translate.of_regex ~m eps_free with
      | None -> false (* strip_eps output never contains ε *)
      | Some lowered ->
        let via_expr = Compile.compile_pure ~m lowered in
        let direct = Regex.to_dfa ~m eps_free in
        Dfa.equal_lang via_expr direct)

let strip_eps_correct =
  let m = 3 in
  QCheck.Test.make ~count ~name:"strip_eps = L \\ {eps}"
    (QCheck.make ~print:(fun r -> Fmt.str "%a" Regex.pp r) (Gen.gen_regex ~m))
    (fun r ->
      let stripped = Regex.strip_eps r in
      if Regex.nullable stripped then false
      else begin
        let d1 = Regex.to_dfa ~m stripped in
        let d2 = Regex.to_dfa ~m r in
        (* d1 must equal d2 on all nonempty words *)
        match Dfa.counterexample d1 d2 with
        | None -> true
        | Some w -> Array.length w = 0 && Regex.nullable r
      end)

(* The full Kleene loop of §4, constructively:
   expression → DFA → regex (state elimination) → expression → DFA. *)
let kleene_loop =
  let m = 3 in
  QCheck.Test.make ~count:100 ~name:"expr -> dfa -> regex -> expr round trip"
    (QCheck.make ~print:Gen.lowered_print (Gen.gen_lowered_pure ~max_size:5 ~m ()))
    (fun e ->
      match Compile.compile_pure ~m e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | d1 when Dfa.n_states d1 > 12 -> true (* elimination blowup: skip *)
      | d1 ->
        let r = Regex.of_dfa d1 in
        if Regex.size r > 3000 then true (* translation would blow up: skip *)
        else begin
        let d2 = Regex.to_dfa ~m r in
        if not (Dfa.equal_lang d1 d2) then
          QCheck.Test.fail_reportf "of_dfa changed the language (regex %a)" Regex.pp r
        else begin
          (* ... and translates back into an event expression *)
          match Translate.of_regex ~m r with
          | None ->
            (* event languages are eps-free, so translation must succeed *)
            QCheck.Test.fail_reportf "translation lost eps-freeness"
          | Some e' -> (
            match Compile.compile_pure ~m e' with
            | exception Invalid_argument _ -> true (* state-limit: skip *)
            | d3 -> Dfa.equal_lang d1 d3)
        end
        end)

let regex_simplify_sound =
  let m = 3 in
  QCheck.Test.make ~count:300 ~name:"Regex.simplify preserves the language"
    (QCheck.make ~print:(fun r -> Fmt.str "%a" Regex.pp r) (Gen.gen_regex ~m))
    (fun r -> Dfa.equal_lang (Regex.to_dfa ~m r) (Regex.to_dfa ~m (Regex.simplify r)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ pure_equivalence; masked_equivalence; regex_translation; strip_eps_correct;
      kleene_loop; regex_simplify_sound ]

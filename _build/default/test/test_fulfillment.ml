(* The order-fulfillment workflow scenario: couplings, state/sequence
   enforcement, timer escalation and database-scope auditing together. *)

open Ode_scenarios
module F = Fulfillment
module D = Ode_odb.Database

let ok name = function
  | Ok () -> ()
  | Error `Aborted -> Alcotest.failf "%s: unexpectedly aborted" name

let aborted name = function
  | Ok () -> Alcotest.failf "%s: should have aborted" name
  | Error `Aborted -> ()

let test_happy_path () =
  let t = F.setup () in
  let o = F.place t in
  Alcotest.(check string) "placed" "placed" (F.status t o);
  ok "pick" (F.pick t o);
  ok "ship" (F.ship t o);
  Alcotest.(check (list int)) "billed after ship commits" [ o ] t.F.billed;
  ok "deliver" (F.deliver t o);
  Alcotest.(check string) "delivered" "delivered" (F.status t o)

let test_sequence_enforcement () =
  let t = F.setup () in
  let o = F.place t in
  (* shipping before picking is rejected by the prior-based guard *)
  aborted "ship too early" (F.ship t o);
  Alcotest.(check string) "still placed" "placed" (F.status t o);
  (* delivering before shipping is rejected by the state mask *)
  ok "pick" (F.pick t o);
  aborted "deliver too early" (F.deliver t o);
  ok "ship" (F.ship t o);
  ok "deliver" (F.deliver t o);
  (* picking twice is rejected *)
  aborted "re-pick" (F.pick t o)

let test_billing_only_on_commit () =
  let t = F.setup () in
  let o = F.place t in
  ok "pick" (F.pick t o);
  (* an aborted shipping transaction must not bill *)
  let tx = D.begin_txn t.F.db in
  ignore (D.call t.F.db o "ship" []);
  D.abort t.F.db tx;
  Alcotest.(check (list int)) "no billing on abort" [] t.F.billed;
  Alcotest.(check string) "rolled back to picked" "picked" (F.status t o);
  ok "ship" (F.ship t o);
  Alcotest.(check (list int)) "billed once on commit" [ o ] t.F.billed

let test_escalation () =
  let t = F.setup () in
  let stuck = F.place t in
  let moving = F.place t in
  ok "pick" (F.pick t moving);
  ok "ship" (F.ship t moving);
  F.hours t 47;
  Alcotest.(check (list int)) "not yet" [] t.F.escalated;
  F.hours t 2;
  Alcotest.(check (list int)) "stuck order escalated" [ stuck ] t.F.escalated;
  Alcotest.(check bool) "flag set" true
    (D.get_field t.F.db stuck "escalated" = Ode_base.Value.Bool true);
  (* escalation happens once *)
  F.hours t 24;
  Alcotest.(check (list int)) "no repeat" [ stuck ] t.F.escalated

let test_volume_audit () =
  let t = F.setup () in
  for _ = 1 to 25 do
    ignore (F.place t)
  done;
  Alcotest.(check int) "every 10th order reported" 2 t.F.volume_reports

let suite =
  [
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "sequence enforcement" `Quick test_sequence_enforcement;
    Alcotest.test_case "billing only on commit" `Quick test_billing_only_on_commit;
    Alcotest.test_case "timeout escalation" `Quick test_escalation;
    Alcotest.test_case "database-scope volume audit" `Quick test_volume_audit;
  ]

(* §5 mask-disjointness rewriting and the runtime detector. *)

open Ode_event
module Value = Ode_base.Value

let env_of fields : Mask.env =
  {
    Mask.empty_env with
    var = (fun name -> List.assoc_opt name fields);
  }

let occ ?(args = []) basic : Symbol.occurrence = { Symbol.basic; args; at = 0L }

(* The paper's §5 example: two before-log events with possibly-overlapping
   masks a>0, b>0 expand into disjoint atoms. *)
let paper_expr =
  Expr.sequence
    [
      Expr.before ~mask:Mask.(var "a" >% v_int 0) "log";
      Expr.before ~mask:Mask.(var "b" >% v_int 0) "log";
    ]

let test_atom_counts () =
  let alphabet, _, _ = Rewrite.build paper_expr in
  (* one key (before log), two guards -> 3 atoms: {a}, {b}, {a,b} *)
  Alcotest.(check int) "keys" 1 (Array.length alphabet.Rewrite.keys);
  Alcotest.(check int) "atoms" 3 (Array.length alphabet.Rewrite.atoms);
  Alcotest.(check int) "alphabet size" 4 (Rewrite.n_symbols alphabet)

let test_blowup_is_exponential () =
  (* k guards on one basic event -> 2^k - 1 atoms (§5's "combinatorial
     explosion"). *)
  List.iter
    (fun k ->
      let leaves =
        List.init k (fun i ->
            Expr.before ~mask:Mask.(var (Printf.sprintf "x%d" i) >% v_int 0) "log")
      in
      let expr = List.fold_left (fun acc l -> Expr.(acc |: l)) (List.hd leaves) (List.tl leaves) in
      let alphabet, _, _ = Rewrite.build expr in
      Alcotest.(check int)
        (Printf.sprintf "2^%d - 1 atoms" k)
        ((1 lsl k) - 1)
        (Array.length alphabet.Rewrite.atoms))
    [ 1; 2; 3; 4; 5; 6 ]

let test_classification_disjoint () =
  let alphabet, _, _ = Rewrite.build paper_expr in
  (* every (a, b) valuation yields exactly one symbol *)
  let syms =
    List.map
      (fun (a, b) ->
        Rewrite.classify alphabet
          ~env:(env_of [ ("a", Value.Int a); ("b", Value.Int b) ])
          (occ (Symbol.Method (Before, "log"))))
      [ (1, 1); (1, 0); (0, 1); (0, 0) ]
  in
  match syms with
  | [ s_ab; s_a; s_b; s_none ] ->
    Alcotest.(check bool)
      "all distinct" true
      (List.length (List.sort_uniq compare syms) = 4);
    Alcotest.(check int) "no guard -> other" (Rewrite.other alphabet) s_none;
    List.iter
      (fun s -> Alcotest.(check bool) "atom symbols" true (s < Rewrite.other alphabet))
      [ s_ab; s_a; s_b ]
  | _ -> assert false

let test_arity_disambiguation () =
  (* Overloaded methods: withdraw/2 and withdraw/1 are distinct logical
     events; an occurrence's arity picks the guard (§3.1). *)
  let e2 =
    Expr.after
      ~formals:[ { Expr.f_ty = None; f_name = "i" }; { Expr.f_ty = None; f_name = "q" } ]
      "withdraw"
  in
  let e1 = Expr.after ~formals:[ { Expr.f_ty = None; f_name = "i" } ] "withdraw" in
  let alphabet, lowered, _ = Rewrite.build Expr.(e2 |: e1) in
  (* impossible both-true assignment pruned: 2 atoms, not 3 *)
  Alcotest.(check int) "impossible assignment pruned" 2 (Array.length alphabet.Rewrite.atoms);
  let env = env_of [] in
  let s2 =
    Rewrite.classify alphabet ~env
      (occ ~args:[ Value.Oid 1; Value.Int 5 ] (Symbol.Method (After, "withdraw")))
  in
  let s1 =
    Rewrite.classify alphabet ~env
      (occ ~args:[ Value.Oid 1 ] (Symbol.Method (After, "withdraw")))
  in
  let s0 = Rewrite.classify alphabet ~env (occ (Symbol.Method (After, "withdraw"))) in
  Alcotest.(check bool) "arity 2 vs 1 distinct" true (s1 <> s2);
  Alcotest.(check int) "arity 0 matches neither" (Rewrite.other alphabet) s0;
  ignore lowered

let test_formals_bind_args () =
  (* after withdraw(i, q) && q > 100 must see q bound positionally. *)
  let e =
    Expr.after
      ~formals:[ { Expr.f_ty = None; f_name = "i" }; { Expr.f_ty = None; f_name = "q" } ]
      ~mask:Mask.(var "q" >% v_int 100)
      "withdraw"
  in
  let alphabet, _, _ = Rewrite.build e in
  let env = env_of [] in
  let big =
    Rewrite.classify alphabet ~env
      (occ ~args:[ Value.Oid 1; Value.Int 500 ] (Symbol.Method (After, "withdraw")))
  in
  let small =
    Rewrite.classify alphabet ~env
      (occ ~args:[ Value.Oid 1; Value.Int 5 ] (Symbol.Method (After, "withdraw")))
  in
  Alcotest.(check bool) "big withdrawal matches" true (big <> Rewrite.other alphabet);
  Alcotest.(check int) "small withdrawal is other" (Rewrite.other alphabet) small

(* End-to-end detector run of the paper's sequence example. *)
let test_detector_sequence () =
  let det = Detector.make paper_expr in
  let state = Detector.initial det in
  Alcotest.(check int) "one word of state" 1 (Detector.n_state_words det);
  let post a b =
    Detector.post det state
      ~env:(env_of [ ("a", Value.Int a); ("b", Value.Int b) ])
      (occ (Symbol.Method (Before, "log")))
  in
  Alcotest.(check bool) "first log (a>0)" false (post 1 0);
  Alcotest.(check bool) "second log (b>0) adjacent" true (post 0 1);
  (* events outside the trigger's alphabet are not part of its history
     (§5) and do not break adjacency *)
  let state2 = Detector.initial det in
  let post2 a b basic =
    Detector.post det state2 ~env:(env_of [ ("a", Value.Int a); ("b", Value.Int b) ]) (occ basic)
  in
  Alcotest.(check bool) "first log" false (post2 1 0 (Symbol.Method (Before, "log")));
  Alcotest.(check bool) "noise is invisible" false (post2 0 0 (Symbol.Method (After, "noise")));
  Alcotest.(check bool) "still adjacent for this trigger" true
    (post2 0 1 (Symbol.Method (Before, "log")));
  (* ... but the trigger's own logical events do break adjacency *)
  let state3 = Detector.initial det in
  let post3 a b =
    Detector.post det state3 ~env:(env_of [ ("a", Value.Int a); ("b", Value.Int b) ])
      (occ (Symbol.Method (Before, "log")))
  in
  Alcotest.(check bool) "b-log alone: no prior a-log" false (post3 0 1);
  Alcotest.(check bool) "a-log" false (post3 1 0);
  Alcotest.(check bool) "a-log again" false (post3 1 0);
  Alcotest.(check bool) "b-log right after a-log" true (post3 0 1)

let test_detector_composite_mask () =
  (* (after f ; after g) && ok — composite mask consulted at occurrence *)
  let e =
    Expr.masked
      (Expr.sequence [ Expr.after "f"; Expr.after "g" ])
      Mask.(var "ok" =% v_bool true)
  in
  let det = Detector.make e in
  Alcotest.(check int) "two words of state" 2 (Detector.n_state_words det);
  let run oks =
    let state = Detector.initial det in
    List.map
      (fun (name, ok) ->
        Detector.post det state
          ~env:(env_of [ ("ok", Value.Bool ok) ])
          (occ (Symbol.Method (After, name))))
      oks
  in
  Alcotest.(check (list bool)) "mask true at g" [ false; true ]
    (run [ ("f", false); ("g", true) ]);
  Alcotest.(check (list bool)) "mask false at g" [ false; false ]
    (run [ ("f", true); ("g", false) ])

let test_state_roundtrip () =
  let det = Detector.make paper_expr in
  let state = Detector.initial det in
  ignore
    (Detector.post det state
       ~env:(env_of [ ("a", Value.Int 1); ("b", Value.Int 0) ])
       (occ (Symbol.Method (Before, "log"))));
  let encoded = Detector.encode_state det state in
  let decoded = Detector.decode_state det encoded in
  Alcotest.(check (array int)) "state round-trips" state decoded

let test_negation_scope () =
  (* !E is the complement over the trigger's own logical events (§5): a
     trigger whose alphabet is only deposit events can never observe a
     "not deposit" point... *)
  let det = Detector.make (Ode_lang.Parser.parse_event "!deposit") in
  let state = Detector.initial det in
  let env = Mask.empty_env in
  Alcotest.(check bool) "deposit is not !deposit" false
    (Detector.post det state ~env (occ (Symbol.Method (After, "deposit"))));
  Alcotest.(check bool) "other events are invisible" false
    (Detector.post det state ~env (occ (Symbol.Method (After, "noise"))));
  (* ...whereas paired with another logical event, ! works as expected *)
  let det2 =
    Detector.make (Ode_lang.Parser.parse_event "after audit & !deposit")
  in
  let state2 = Detector.initial det2 in
  Alcotest.(check bool) "audit is a non-deposit point" true
    (Detector.post det2 state2 ~env (occ (Symbol.Method (After, "audit"))));
  Alcotest.(check bool) "deposit is not" false
    (Detector.post det2 state2 ~env (occ (Symbol.Method (After, "deposit"))))

let test_max_atoms_guard () =
  let saved = !Rewrite.max_atoms in
  Rewrite.max_atoms := 7;
  let leaves =
    List.init 4 (fun i ->
        Expr.before ~mask:Mask.(var (Printf.sprintf "x%d" i) >% v_int 0) "log")
  in
  let expr = List.fold_left (fun acc l -> Expr.(acc |: l)) (List.hd leaves) (List.tl leaves) in
  let raised =
    match Rewrite.build expr with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Rewrite.max_atoms := saved;
  Alcotest.(check bool) "blowup capped" true raised

let suite =
  [
    Alcotest.test_case "§5 example atom counts" `Quick test_atom_counts;
    Alcotest.test_case "2^k blowup" `Quick test_blowup_is_exponential;
    Alcotest.test_case "classification is disjoint" `Quick test_classification_disjoint;
    Alcotest.test_case "overload arity disambiguation" `Quick test_arity_disambiguation;
    Alcotest.test_case "formals bind occurrence args" `Quick test_formals_bind_args;
    Alcotest.test_case "detector: §5 sequence" `Quick test_detector_sequence;
    Alcotest.test_case "detector: composite mask" `Quick test_detector_composite_mask;
    Alcotest.test_case "detector state round-trip" `Quick test_state_roundtrip;
    Alcotest.test_case "negation scope (§5)" `Quick test_negation_scope;
    Alcotest.test_case "max_atoms guard" `Quick test_max_atoms_guard;
  ]

(* The two baseline detectors (full re-evaluation; Snoop-style instance
   trees) must agree with the denotational semantics and hence with the
   compiled automata — otherwise benchmark E1 would compare engines
   computing different things. *)

open Ode_event

let count = 250

let agree ~name make_engine =
  let m = 4 in
  QCheck.Test.make ~count ~name
    (QCheck.make
       ~print:(fun ((e, _), h, seed) ->
         Fmt.str "%s on %s (seed %d)" (Gen.lowered_print e) (Gen.history_print h) seed)
       QCheck.Gen.(
         let* em = Gen.gen_lowered_masked ~max_size:8 ~m () in
         let* len = int_range 0 14 in
         let* h = Gen.gen_history ~m ~len in
         let* seed = int_bound 10_000 in
         return (em, h, seed)))
    (fun ((e, _), h, seed) ->
      QCheck.assume (Gen.growth_depth e <= 3);
      let oracle = Gen.oracle_of_seed seed in
      let reference = Semantics.eval ~oracle e h in
      let engine = make_engine e in
      let got = Array.mapi (fun p sym -> engine ~mask:(fun id -> oracle id p) sym) h in
      reference = got)

let reeval_agrees =
  agree ~name:"re-evaluation baseline = semantics" (fun e ->
      let t = Ode_baseline.Reeval.make e in
      fun ~mask sym -> Ode_baseline.Reeval.post t ~mask sym)

let incr_agrees =
  agree ~name:"instance-tree baseline = semantics" (fun e ->
      let t = Ode_baseline.Incr.make e in
      fun ~mask sym -> Ode_baseline.Incr.post t ~mask sym)

let instance_growth () =
  (* relative(a, b) keeps one instance per a-occurrence: the growth that
     motivates automaton-based detection. *)
  let a = Lowered.Atom [| true; false; false |] in
  let b = Lowered.Atom [| false; true; false |] in
  let t = Ode_baseline.Incr.make (Lowered.Relative (a, b)) in
  for _ = 1 to 100 do
    ignore (Ode_baseline.Incr.post t ~mask:(fun _ -> true) 0)
  done;
  Alcotest.(check bool)
    "instances grow with history" true
    (Ode_baseline.Incr.instance_count t > 100)

let suite =
  List.map QCheck_alcotest.to_alcotest [ reeval_agrees; incr_agrees ]
  @ [ Alcotest.test_case "instance growth" `Quick instance_growth ]

(* §6: the lifted automaton A' over full histories must agree with A over
   committed projections, with at most |A|² states. *)

open Ode_event

(* Alphabet convention for these tests: 0 = after tbegin, 1 = after
   tcommit, 2 = tabort, 3..5 ordinary events. *)
let m = 6
let is_tbegin s = s = 0
let is_tcommit s = s = 1
let is_tabort s = s = 2

let atom syms = Lowered.Atom (Gen.selector m syms)

(* Histories are sequences of segments: either a bare ordinary event or a
   transaction block [tbegin; body...; tcommit|tabort]. *)
let gen_history : int array QCheck.Gen.t =
  let open QCheck.Gen in
  let ordinary = int_range 3 5 in
  let segment =
    frequency
      [
        (2, map (fun s -> [ s ]) ordinary);
        (3,
         let* body = list_size (int_bound 4) ordinary in
         let* commits = bool in
         return ((0 :: body) @ [ (if commits then 1 else 2) ]));
      ]
  in
  let* segs = list_size (int_bound 6) segment in
  return (Array.of_list (List.concat segs))

let gen_expr : Lowered.t QCheck.Gen.t = Gen.gen_lowered_pure ~max_size:8 ~m ()

let project h =
  Committed.project h ~tbegin:is_tbegin ~tcommit:is_tcommit ~tabort:is_tabort

let lift a = Committed.lift a ~tbegin:is_tbegin ~tcommit:is_tcommit ~tabort:is_tabort

let lift_agrees =
  QCheck.Test.make ~count:300 ~name:"lift A agrees with A on committed projection"
    (QCheck.make
       ~print:(fun (e, h) -> Gen.lowered_print e ^ " on " ^ Gen.history_print h)
       QCheck.Gen.(
         let* e = gen_expr in
         let* h = gen_history in
         return (e, h)))
    (fun (e, h) ->
      match Compile.compile_pure ~m e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | a ->
      let a' = lift a in
      (* check at every prefix of the full history *)
      let ok = ref true in
      for p = 0 to Array.length h - 1 do
        let prefix = Array.sub h 0 (p + 1) in
        let full = Dfa.run a' prefix in
        let committed = Dfa.run a (project prefix) in
        if full <> committed then ok := false
      done;
      !ok)

let state_bound =
  QCheck.Test.make ~count:200 ~name:"lift stays within |A|^2 states"
    (QCheck.make ~print:Gen.lowered_print gen_expr)
    (fun e ->
      match Compile.compile_pure ~m e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | a ->
        let n = Dfa.n_states a in
        Dfa.n_states (lift a) <= n * n)

let test_projection () =
  (* [t x t] aborted then [t y c] committed: only the committed block and
     loose events survive. *)
  let h = [| 3; 0; 4; 2; 0; 5; 1; 4 |] in
  Alcotest.(check (list int))
    "aborted segment erased" [ 3; 0; 5; 1; 4 ]
    (Array.to_list (project h));
  (* open transaction at the end is kept *)
  let h2 = [| 0; 3; 4 |] in
  Alcotest.(check (list int)) "open txn kept" [ 0; 3; 4 ] (Array.to_list (project h2))

(* The §6 motivating example: a trigger counting updates should not count
   updates of aborted transactions in committed mode. *)
let test_counting_example () =
  let update = atom [ 3 ] in
  let third_update = Lowered.Choose (3, update) in
  let a = Compile.compile_pure ~m third_update in
  let a' = lift a in
  (* two committed updates, one aborted update, then another committed *)
  let h = [| 0; 3; 1; 0; 3; 1; 0; 3; 2; 0; 3; 1 |] in
  let marks = Dfa.run_prefixes a' h in
  (* The update at position 7 is optimistically the third — it fires, but
     its transaction aborts at 8 and the count rolls back; so the update
     at position 10 is (again) the third committed one and fires too. *)
  Alcotest.(check bool) "in-flight third update fires" true marks.(7);
  Alcotest.(check bool) "third committed update fires after rollback" true marks.(10);
  (* Without the lift, the full-history automaton counts the aborted
     update, so position 10 is a fourth update and does not fire. *)
  let full = Dfa.run_prefixes a h in
  Alcotest.(check bool) "full-history automaton differs" false full.(10)

let test_disjointness_check () =
  let a = Compile.compile_pure ~m (atom [ 3 ]) in
  Alcotest.check_raises "overlapping classification rejected"
    (Invalid_argument "Committed.lift: overlapping classifications") (fun () ->
      ignore (Committed.lift a ~tbegin:is_tbegin ~tcommit:is_tbegin ~tabort:is_tabort))

let suite =
  List.map QCheck_alcotest.to_alcotest [ lift_agrees; state_bound ]
  @ [
      Alcotest.test_case "projection" `Quick test_projection;
      Alcotest.test_case "§6 counting example" `Quick test_counting_example;
      Alcotest.test_case "classification disjointness" `Quick test_disjointness_check;
    ]

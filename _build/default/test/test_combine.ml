(* §5 footnote 5: the combined per-class automaton must agree with the
   per-trigger detectors, trigger by trigger, occurrence by occurrence. *)

open Ode_event

let env = Mask.empty_env

let combined_agrees =
  QCheck.Test.make ~count:300 ~name:"combined class automaton = per-trigger detectors"
    (QCheck.make
       ~print:(fun (es, occs) ->
         Fmt.str "%a on %d occurrences"
           Fmt.(list ~sep:(any " ;; ") Expr.pp)
           es (List.length occs))
       QCheck.Gen.(
         let* k = int_range 1 3 in
         let* es = list_repeat k (Gen.gen_surface_expr ~max_size:6 ()) in
         let* occs = list_size (int_bound 25) Gen.gen_occurrence in
         return (es, occs)))
    (fun (es, occs) ->
      match Combine.make es with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | combined ->
        let detectors = List.map Detector.make es in
        let states = List.map Detector.initial detectors in
        let cstate = ref (Combine.initial combined) in
        List.for_all
          (fun occ ->
            let individual =
              List.map2 (fun det st -> Detector.post det st ~env occ) detectors states
            in
            let cstate', fired = Combine.post combined !cstate ~env occ in
            cstate := cstate';
            individual = Array.to_list fired)
          occs)

let test_rejects_composite_masks () =
  let masked =
    Expr.masked (Expr.sequence [ Expr.after "f"; Expr.after "g" ]) Mask.(v_bool true)
  in
  Alcotest.(check bool)
    "composite masks rejected" true
    (match Combine.make [ Expr.after "f"; masked ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_stockroom_triggers_combine () =
  (* the paper's own trigger section (masks reference db functions that a
     pure-detector test cannot evaluate; use the mask-free subset) *)
  let module P = Ode_lang.Parser in
  let events =
    List.map P.parse_event
      [
        "every 5 (after access)";
        "after deposit; before withdraw; after withdraw";
        "relative(at time(HR=9), prior(choose 5 (after tcommit), after tcommit) & \
         !prior(at time(HR=9), after tcommit))";
        "fa(at time(HR=9), choose 5 (after withdraw(i, q) && q > 100), at time(HR=9))";
      ]
  in
  let combined = Combine.make events in
  Alcotest.(check int) "4 triggers" 4 (Combine.n_triggers combined);
  Alcotest.(check bool)
    "combined automaton is a real product" true
    (Combine.n_states combined >= 1 && Combine.n_states combined <= 10_000);
  (* one word of state for the whole trigger section *)
  Alcotest.(check bool)
    "single word of state" true
    (Combine.initial combined >= 0)

let suite =
  List.map QCheck_alcotest.to_alcotest [ combined_agrees ]
  @ [
      Alcotest.test_case "composite masks rejected" `Quick test_rejects_composite_masks;
      Alcotest.test_case "paper trigger section combines" `Quick
        test_stockroom_triggers_combine;
    ]

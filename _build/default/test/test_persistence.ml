(* Save/load: objects, fields, trigger activations and their automaton
   state survive a round trip — mid-detection. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value
module P = Ode_lang.Parser

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let schema fired =
  D.define_class "item"
  |> (fun b -> D.field b "qty" (Value.Int 0))
  |> (fun b -> D.field b "name" (Value.String ""))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "deposit" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty"
               (Value.add (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "withdraw" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty" (Value.sub (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> fun b ->
  D.trigger b ~perpetual:true "third"
    ~event:(P.parse_event "choose 3 (after deposit)")
    ~action:(fun _ ctx -> fired := ctx.D.fc_oid :: !fired)

let tmp = Filename.temp_file "ode" ".img"

let test_roundtrip () =
  let fired = ref [] in
  let db = D.create_db ~start_time:123_456L () in
  D.register_class db (schema fired);
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "item" [] in
           D.set_field db oid "name" (Value.String "widget");
           D.activate db oid "third" [];
           (* two of the three deposits, then save mid-count *)
           ignore (D.call db oid "deposit" [ Value.Int 2 ]);
           ignore (D.call db oid "deposit" [ Value.Int 3 ]);
           oid))
  in
  D.save db tmp;
  (* reload into a fresh database with the same schema *)
  let fired2 = ref [] in
  let db2 = D.create_db () in
  D.register_class db2 (schema fired2);
  D.load db2 tmp;
  Alcotest.(check bool) "object survives" true (D.exists db2 oid);
  Alcotest.(check bool)
    "fields survive" true
    (Value.equal (D.get_field db2 oid "qty") (Value.Int 5)
    && Value.equal (D.get_field db2 oid "name") (Value.String "widget"));
  Alcotest.(check int64) "clock survives" 123_456L (D.now db2);
  Alcotest.(check bool) "activation survives" true (D.is_active db2 oid "third");
  Alcotest.(check bool) "no firing yet" true (!fired2 = []);
  (* the count of 2 deposits must survive: one more completes choose 3 *)
  expect_ok
    (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check bool) "detection state survived the round trip" true
    (List.mem oid !fired2);
  (* and a fourth deposit does not re-fire choose 3 *)
  expect_ok
    (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check int) "choose picks exactly the third" 1 (List.length !fired2)

let test_save_open_txn_rejected () =
  let db = D.create_db () in
  D.register_class db (schema (ref []));
  let tx = D.begin_txn db in
  Alcotest.check_raises "open txn" (D.Ode_error "cannot save with open transactions")
    (fun () -> D.save db tmp);
  D.abort db tx

let test_new_objects_after_load () =
  let fired = ref [] in
  let db = D.create_db () in
  D.register_class db (schema fired);
  let oid1 =
    expect_ok (D.with_txn db (fun _ -> D.create db "item" []))
  in
  D.save db tmp;
  let db2 = D.create_db () in
  D.register_class db2 (schema fired);
  D.load db2 tmp;
  let oid2 = expect_ok (D.with_txn db2 (fun _ -> D.create db2 "item" [])) in
  Alcotest.(check bool) "oid counter restored, no collision" true (oid2 <> oid1)

let test_corrupt_image () =
  let db = D.create_db () in
  D.register_class db (schema (ref []));
  Ode_base.Codec.to_file tmp "garbage";
  Alcotest.(check bool) "corrupt image rejected" true
    (match D.load db tmp with
    | () -> false
    | exception Ode_base.Codec.Corrupt _ -> true)

let suite =
  [
    Alcotest.test_case "image round-trip" `Quick test_roundtrip;
    Alcotest.test_case "save with open txn rejected" `Quick test_save_open_txn_rejected;
    Alcotest.test_case "oid counter survives" `Quick test_new_objects_after_load;
    Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image;
  ]

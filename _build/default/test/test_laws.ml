(* Algebraic laws the paper states (§3.4, footnote 4) plus general
   automaton-level identities, all checked by DFA language equivalence. *)

open Ode_event

let m = 4

let compile e = Compile.compile_pure ~m e

let atom syms = Lowered.Atom (Gen.selector m syms)
let a = atom [ 0 ]
let b = atom [ 1 ]
let c = atom [ 2 ]
let any = Lowered.Atom (Array.make m true)

let check_equal name e1 e2 =
  let d1 = compile e1 and d2 = compile e2 in
  match Dfa.counterexample d1 d2 with
  | None -> ()
  | Some w ->
    Alcotest.failf "%s: languages differ on %s" name (Gen.history_print w)

let check_included name e1 e2 =
  if not (Dfa.included (compile e1) (compile e2)) then
    Alcotest.failf "%s: inclusion fails" name

(* "The events prior+(E) and sequence+(E) are both equivalent to the event
   E": their one-step versions must already be included in E. *)
let test_prior_plus_identity () =
  let exprs = [ a; Lowered.Relative (a, b); Lowered.Fa (a, b, c) ] in
  List.iter
    (fun e ->
      check_included "prior(E,E) <= E" (Lowered.Prior (e, e)) e;
      check_included "sequence(E,E) <= E" (Lowered.Sequence (e, e)) e)
    exprs

(* prior+(E) = E | prior(E,E) | ... collapses to E. *)
let test_prior_plus_union () =
  let e = Lowered.Relative (a, b) in
  let union = Lowered.Or (e, Lowered.Or (Lowered.Prior (e, e), Lowered.Prior (Lowered.Prior (e, e), e))) in
  check_equal "prior+ collapses" union e

(* Currying: relative(E,F,G) = relative(relative(E,F),G), and same for
   prior and sequence (§3.4). *)
let test_currying () =
  check_equal "relative currying"
    (Lowered.Relative (Lowered.Relative (a, b), c))
    (Lowered.Relative (a, Lowered.Relative (b, c)));
  (* NB associativity holds for relative because concatenation is
     associative; prior/sequence are defined by left fold. *)
  ()

(* On logical events, prior n and relative n coincide (§3.4's example
   reads the same either way); on composites they differ. *)
let test_counted_on_atoms () =
  List.iter
    (fun n ->
      check_equal
        (Printf.sprintf "prior %d = relative %d on an atom" n n)
        (Lowered.Prior_n (n, a))
        (Lowered.Relative_n (n, a)))
    [ 1; 2; 3; 5 ]

let test_counted_on_composites_differ () =
  (* relative 2 (E) chains through truncated suffixes; prior 2 (E) counts
     occurrences in the whole history. For E = relative(a,b) history
     [a b b]: occurrences of E at positions 1 and 2; prior 2 holds at 2;
     relative 2 needs an E-chain a..b then b-suffix containing a full E:
     impossible here. *)
  let e = Lowered.Relative (a, b) in
  let h = [| 0; 1; 1 |] in
  let prior2 = Semantics.eval (Lowered.Prior_n (2, e)) h in
  let rel2 = Semantics.eval (Lowered.Relative_n (2, e)) h in
  Alcotest.(check bool) "prior 2 occurs at point 2" true prior2.(2);
  Alcotest.(check bool) "relative 2 does not" false rel2.(2)

(* choose n (E) and every n (E) pick occurrences of E, so they are subsets
   of prior n / of E. *)
let test_choose_every_subsets () =
  let e = Lowered.Or (a, Lowered.Relative (b, c)) in
  List.iter
    (fun n ->
      check_included "choose n <= prior n" (Lowered.Choose (n, e)) (Lowered.Prior_n (n, e));
      check_included "choose n <= E" (Lowered.Choose (n, e)) e;
      check_included "every n <= E" (Lowered.Every (n, e)) e;
      check_included "every n <= prior n" (Lowered.Every (n, e)) (Lowered.Prior_n (n, e)))
    [ 1; 2; 3 ]

(* relative+(E) = relative 1 (E); relative n+1 (E) = relative(E, relative n (E)). *)
let test_relative_n_unrolling () =
  check_equal "relative 1 = relative+" (Lowered.Relative_n (1, a)) (Lowered.Relative_plus a);
  let e = Lowered.Or (a, b) in
  check_equal "relative 3 unrolls"
    (Lowered.Relative_n (3, e))
    (Lowered.Relative (e, Lowered.Relative (e, Lowered.Relative_plus e)))

(* prior(E,F) = relative(E, relative+(any)) & F — "E happened strictly
   earlier". *)
let test_prior_characterization () =
  let e = Lowered.Relative (a, b) and f = Lowered.Or (b, c) in
  check_equal "prior via relative-any"
    (Lowered.Prior (e, f))
    (Lowered.And (Lowered.Relative (e, Lowered.Relative_plus any), f))

(* sequence(E,F) = relative(E, first-point) & F: adjacency. *)
let test_sequence_characterization () =
  let first_point = Lowered.And (any, Lowered.Not (Lowered.Prior (any, any))) in
  let e = Lowered.Or (a, c) and f = b in
  check_equal "sequence via adjacency"
    (Lowered.Sequence (e, f))
    (Lowered.And (Lowered.Relative (e, first_point), f))

(* Footnote 4: with E = F && !prior(F, F), given history [F; F], E occurs
   at the first F only, while relative(E, E) occurs at the second only. *)
let test_footnote4 () =
  let f = a in
  let e = Lowered.And (f, Lowered.Not (Lowered.Prior (f, f))) in
  let h = [| 0; 0 |] in
  let occ_e = Semantics.eval e h in
  let occ_rel = Semantics.eval (Lowered.Relative (e, e)) h in
  Alcotest.(check (list bool)) "E marks first F" [ true; false ] (Array.to_list occ_e);
  Alcotest.(check (list bool))
    "relative(E,E) marks second F" [ false; true ]
    (Array.to_list occ_rel);
  (* and the automaton agrees *)
  let d = compile (Lowered.Relative (e, e)) in
  Alcotest.(check (list bool))
    "compiled agrees" [ false; true ]
    (Array.to_list (Dfa.run_prefixes d h))

(* Boolean structure. *)
let test_boolean_laws () =
  let e = Lowered.Relative (a, b) and f = Lowered.Prior (b, c) in
  check_equal "De Morgan" (Lowered.Not (Lowered.Or (e, f)))
    (Lowered.And (Lowered.Not e, Lowered.Not f));
  check_equal "double negation" (Lowered.Not (Lowered.Not e)) e;
  check_equal "absorption" (Lowered.And (e, Lowered.Or (e, f))) e

(* fa(E,F,G) with G = empty event reduces to "first F after E". *)
let test_fa_no_guard () =
  let first_f_after_e =
    (* relative(E, F & !prior(F, F)): in the truncated history, an F with
       no earlier F. *)
    Lowered.Relative (a, Lowered.And (b, Lowered.Not (Lowered.Prior (b, b))))
  in
  check_equal "fa with empty guard" (Lowered.Fa (a, b, Lowered.False)) first_f_after_e

(* faAbs = fa when the guard's detection cannot straddle the split point:
   for single atoms they coincide. *)
let test_fa_abs_on_atoms () =
  check_equal "fa = faAbs on atoms" (Lowered.Fa (a, b, c)) (Lowered.Fa_abs (a, b, c))

(* ... but differ on composite guards: G = relative(x,y) may start before
   the E point, blocking faAbs but not fa. *)
let test_fa_abs_differs () =
  let g = Lowered.Relative (b, c) in
  let fa = compile (Lowered.Fa (a, b, g)) in
  let fa_abs = compile (Lowered.Fa_abs (a, b, g)) in
  (* history: b a c b — G occurs at position 2 w.r.t. the whole history
     (b...c) but not relative to the suffix after a. The first b after a
     is at position 3. *)
  let h = [| 1; 0; 2; 1 |] in
  Alcotest.(check bool) "fa fires" true (Dfa.run fa h);
  Alcotest.(check bool) "faAbs blocked" false (Dfa.run fa_abs h)

let simplify_preserves_language =
  QCheck.Test.make ~count:400 ~name:"simplify preserves the language"
    (QCheck.make ~print:Expr.to_string (Gen.gen_surface_expr ~max_size:10 ()))
    (fun e ->
      let s = Expr.simplify e in
      if Expr.size s > Expr.size e then
        QCheck.Test.fail_reportf "simplify grew %d -> %d" (Expr.size e) (Expr.size s)
      else begin
        let a1, l1, _ = Rewrite.build e in
        let a2, l2, _ = Rewrite.build s in
        if Rewrite.n_symbols a1 <> Rewrite.n_symbols a2 then
          QCheck.Test.fail_reportf "simplify changed the alphabet"
        else
          match
            ( Compile.compile_pure ~m:(Rewrite.n_symbols a1) l1,
              Compile.compile_pure ~m:(Rewrite.n_symbols a2) l2 )
          with
          | exception Invalid_argument _ -> true (* state-limit: skip *)
          | d1, d2 -> Dfa.equal_lang d1 d2
      end)

let test_simplify_cases () =
  let ae name = Expr.after name in
  let cases =
    [
      (Expr.Or (ae "f", ae "f"), ae "f");
      (Expr.Not (Expr.Not (ae "f")), ae "f");
      (Expr.Relative [ Expr.Relative [ ae "a"; ae "b" ]; ae "c" ],
       Expr.Relative [ ae "a"; ae "b"; ae "c" ]);
      (Expr.Relative [ ae "a"; Expr.Relative [ ae "b"; ae "c" ] ],
       Expr.Relative [ ae "a"; ae "b"; ae "c" ]);
      (Expr.Prior [ Expr.Prior [ ae "a"; ae "b" ]; ae "c" ],
       Expr.Prior [ ae "a"; ae "b"; ae "c" ]);
      (Expr.Relative_plus (Expr.Relative_plus (ae "f")), Expr.Relative_plus (ae "f"));
      (Expr.Relative_n (1, ae "f"), Expr.Relative_plus (ae "f"));
      (Expr.Sequence_n (1, ae "f"), ae "f");
      (Expr.Masked (Expr.Masked (Expr.Sequence [ ae "a"; ae "b" ], Mask.v_bool true),
                    Mask.var "ok"),
       Expr.Masked (Expr.Sequence [ ae "a"; ae "b" ],
                    Mask.And (Mask.v_bool true, Mask.var "ok")));
    ]
  in
  List.iteri
    (fun i (input, expected) ->
      if not (Expr.equal (Expr.simplify input) expected) then
        Alcotest.failf "case %d: simplify %s = %s, expected %s" i
          (Expr.to_string input)
          (Expr.to_string (Expr.simplify input))
          (Expr.to_string expected))
    cases

let suite =
  [
    Alcotest.test_case "prior+/sequence+ are identities" `Quick test_prior_plus_identity;
    Alcotest.test_case "prior+ union collapses" `Quick test_prior_plus_union;
    Alcotest.test_case "currying" `Quick test_currying;
    Alcotest.test_case "prior n = relative n on atoms" `Quick test_counted_on_atoms;
    Alcotest.test_case "prior n / relative n differ on composites" `Quick
      test_counted_on_composites_differ;
    Alcotest.test_case "choose/every subset laws" `Quick test_choose_every_subsets;
    Alcotest.test_case "relative n unrolling" `Quick test_relative_n_unrolling;
    Alcotest.test_case "prior characterization" `Quick test_prior_characterization;
    Alcotest.test_case "sequence characterization" `Quick test_sequence_characterization;
    Alcotest.test_case "footnote 4 example" `Quick test_footnote4;
    Alcotest.test_case "boolean laws" `Quick test_boolean_laws;
    Alcotest.test_case "fa with empty guard" `Quick test_fa_no_guard;
    Alcotest.test_case "fa = faAbs on atoms" `Quick test_fa_abs_on_atoms;
    Alcotest.test_case "fa / faAbs differ on composite guards" `Quick test_fa_abs_differs;
    Alcotest.test_case "simplify cases" `Quick test_simplify_cases;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ simplify_preserves_language ]

(* Time events (§3.1): at / every / after, delivered from the simulated
   clock, including composition with other events (trigger T7's shape). *)

open Ode_odb
module D = Database
module Value = Ode_base.Value
module P = Ode_lang.Parser

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let make_db triggers =
  let db = D.create_db ~start_time:(Clock.ms_of_civil (Clock.civil ~hr:8 1992 6 2)) () in
  D.register_class db
    (D.define_class "vessel"
    |> (fun b -> D.field b "pressure" (Value.Float 0.0))
    |> (fun b ->
         D.method_ b ~kind:D.Updating "set_pressure" (fun db oid args ->
             match args with
             | [ p ] ->
               D.set_field db oid "pressure" p;
               Value.Unit
             | _ -> Value.Unit))
    |> triggers);
  db

let test_every_period () =
  let fired = ref 0 in
  let db =
    make_db (fun b ->
        D.trigger b ~perpetual:true "tick" ~event:(P.parse_event "every time(MS=100)")
          ~action:(fun _ _ -> incr fired))
  in
  let _oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "vessel" [] in
           D.activate db oid "tick" [];
           oid))
  in
  D.advance_clock db 1_000L;
  Alcotest.(check int) "10 periods" 10 !fired;
  D.advance_clock db 50L;
  Alcotest.(check int) "no partial period" 10 !fired;
  D.advance_clock db 50L;
  Alcotest.(check int) "next period" 11 !fired

let test_after_period_once () =
  let fired = ref 0 in
  let db =
    make_db (fun b ->
        D.trigger b ~perpetual:true "delayed"
          ~event:(P.parse_event "after time(HR=2, M=30)")
          ~action:(fun _ _ -> incr fired))
  in
  ignore
    (expect_ok
       (D.with_txn db (fun _ ->
            let oid = D.create db "vessel" [] in
            D.activate db oid "delayed" [];
            oid)));
  D.advance_clock db (Int64.mul 3_600_000L 2L);
  Alcotest.(check int) "not yet" 0 !fired;
  D.advance_clock db 1_800_000L;
  Alcotest.(check int) "fires at +2h30" 1 !fired;
  D.advance_clock db 86_400_000L;
  Alcotest.(check int) "does not recur" 1 !fired

let test_at_daily () =
  let fired = ref [] in
  let db =
    make_db (fun b ->
        D.trigger b ~perpetual:true "dayEnd" ~event:(P.parse_event "at time(HR=17)")
          ~action:(fun db _ -> fired := D.now db :: !fired))
  in
  ignore
    (expect_ok
       (D.with_txn db (fun _ ->
            let oid = D.create db "vessel" [] in
            D.activate db oid "dayEnd" [];
            oid)));
  (* clock starts 1992-06-02 08:00; advance three days *)
  D.advance_clock db (Int64.mul 86_400_000L 3L);
  let expected =
    [
      Clock.ms_of_civil (Clock.civil ~hr:17 1992 6 2);
      Clock.ms_of_civil (Clock.civil ~hr:17 1992 6 3);
      Clock.ms_of_civil (Clock.civil ~hr:17 1992 6 4);
    ]
  in
  Alcotest.(check (list int64)) "daily at 17:00" expected (List.rev !fired)

let test_deactivation_cancels () =
  let fired = ref 0 in
  let db =
    make_db (fun b ->
        D.trigger b ~perpetual:true "tick" ~event:(P.parse_event "every time(MS=100)")
          ~action:(fun _ _ -> incr fired))
  in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "vessel" [] in
           D.activate db oid "tick" [];
           oid))
  in
  D.advance_clock db 250L;
  Alcotest.(check int) "two ticks" 2 !fired;
  expect_ok (D.with_txn db (fun _ -> D.deactivate db oid "tick"));
  D.advance_clock db 1_000L;
  Alcotest.(check int) "no ticks after deactivation" 2 !fired

let test_time_in_composition () =
  (* relative(dayBegin, choose 2 (after set_pressure)): the second update
     after 9am. *)
  let fired = ref 0 in
  let db =
    make_db (fun b ->
        D.trigger b ~perpetual:true "second_after_9"
          ~event:
            (P.parse_event "relative(at time(HR=9), choose 2 (after set_pressure))")
          ~action:(fun _ _ -> incr fired))
  in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "vessel" [] in
           D.activate db oid "second_after_9" [];
           oid))
  in
  let set p = expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "set_pressure" [ Value.Float p ]))) in
  (* one update before 9am: does not count *)
  set 1.0;
  D.advance_clock db 7_200_000L (* 08:00 -> 10:00, 9am tick delivered *);
  set 2.0;
  Alcotest.(check int) "first update after 9 is not enough" 0 !fired;
  set 3.0;
  Alcotest.(check int) "second update after 9 fires" 1 !fired

let test_timer_persistence () =
  (* pending timers survive save/load *)
  let fired = ref 0 in
  let mk () =
    make_db (fun b ->
        D.trigger b ~perpetual:true "tick" ~event:(P.parse_event "every time(MS=500)")
          ~action:(fun _ _ -> incr fired))
  in
  let db = mk () in
  ignore
    (expect_ok
       (D.with_txn db (fun _ ->
            let oid = D.create db "vessel" [] in
            D.activate db oid "tick" [];
            oid)));
  D.advance_clock db 600L;
  Alcotest.(check int) "one tick before save" 1 !fired;
  let path = Filename.temp_file "ode_timer" ".img" in
  D.save db path;
  let db2 = mk () in
  D.load db2 path;
  D.advance_clock db2 500L (* clock is at 600; next due at 1000 *);
  Alcotest.(check int) "tick after reload" 2 !fired;
  Sys.remove path

let test_timeout_pattern () =
  (* Footnote 1: "timed triggers can be simulated using composite
     events." A timeout — no reply within ~1s of a request — is
     fa(after request, tick, after reply) with a periodic tick. *)
  let alerts = ref 0 in
  let db =
    D.create_db ()
    |> fun db ->
    D.register_class db
      (D.define_class "server"
      |> (fun b -> D.method_ b ~kind:D.Updating "request" (fun _ _ _ -> Value.Unit))
      |> (fun b -> D.method_ b ~kind:D.Updating "reply" (fun _ _ _ -> Value.Unit))
      |> fun b ->
      D.trigger b ~perpetual:true "timeout"
        ~event:(P.parse_event "fa(after request, every time(MS=1000), after reply)")
        ~action:(fun _ _ -> incr alerts));
    db
  in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "server" [] in
           D.activate db oid "timeout" [];
           oid))
  in
  let call name = expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid name []))) in
  (* request answered in time: the tick finds a reply in between *)
  call "request";
  D.advance_clock db 300L;
  call "reply";
  D.advance_clock db 1_000L;
  Alcotest.(check int) "no alert when answered" 0 !alerts;
  (* unanswered request: the next tick raises the alert, once *)
  call "request";
  D.advance_clock db 2_500L;
  Alcotest.(check int) "timeout alert" 1 !alerts

let suite =
  [
    Alcotest.test_case "every period" `Quick test_every_period;
    Alcotest.test_case "after period" `Quick test_after_period_once;
    Alcotest.test_case "at daily" `Quick test_at_daily;
    Alcotest.test_case "deactivation cancels timers" `Quick test_deactivation_cancels;
    Alcotest.test_case "time composed with method events" `Quick test_time_in_composition;
    Alcotest.test_case "timers survive save/load" `Quick test_timer_persistence;
    Alcotest.test_case "timeout via composite events (fn. 1)" `Quick test_timeout_pattern;
  ]

(* The O++ event sub-language: the paper's own example specifications
   must parse, printing must round-trip, and the paper's restrictions must
   be rejected. *)

open Ode_event
module P = Ode_lang.Parser

let check_parses src =
  Alcotest.(check bool)
    (Printf.sprintf "parses: %s" src)
    true
    (match P.event_of_string src with
    | Ok _ -> true
    | Error msg ->
      Printf.printf "parse error for %S: %s\n" src msg;
      false)

let check_rejects src =
  Alcotest.(check bool)
    (Printf.sprintf "rejects: %s" src)
    true
    (match P.event_of_string src with Ok _ -> false | Error _ -> true)

let roundtrip src =
  match P.event_of_string src with
  | Error msg -> Alcotest.failf "cannot parse %S: %s" src msg
  | Ok e1 -> (
    let printed = Expr.to_string e1 in
    match P.event_of_string printed with
    | Error msg -> Alcotest.failf "cannot re-parse %S (printed from %S): %s" printed src msg
    | Ok e2 ->
      if not (Expr.equal e1 e2) then
        Alcotest.failf "round-trip changed %S -> %S" src printed)

(* The eight stockroom triggers of §3.5, with the paper's #defines expanded. *)
let day_begin = "at time(HR=9)"
let day_end = "at time(HR=17)"
let fifth_large = "choose 5 (after withdraw(i, q) && q > 100)"

let paper_trigger_events =
  [
    (* T1 *) "before withdraw && !authorized(user())";
    (* T2 *) "after withdraw(i, q) && i.balance < reorder(i)";
    (* T3 *) day_end;
    (* T4 *)
    Printf.sprintf
      "relative(%s, prior(choose 5 (after tcommit), after tcommit) & !prior(%s, after tcommit))"
      day_begin day_begin;
    (* T5 *) "every 5 (after access)";
    (* T6 *) "after withdraw(i, q) && q > 100";
    (* T7 *) Printf.sprintf "fa(%s, %s, %s)" day_begin fifth_large day_begin;
    (* T8 *) "after deposit; before withdraw; after withdraw";
  ]

let test_paper_triggers () = List.iter check_parses paper_trigger_events

let test_paper_examples () =
  (* §3.3–3.4 examples *)
  List.iter check_parses
    [
      "after read";
      "before tcomplete";
      "after time(HR=2, M=30)";
      "after withdraw (Item i, int q)";
      "after withdraw";
      "after withdraw (Item, int q) && q > 1000";
      "balance < 500.00";
      "sequence(after tbegin, before access, after access, before tcomplete)";
      "after tbegin; before access; after access; before tcomplete";
      "relative 5 (after deposit)";
      "choose 5 (after tcommit)";
      "every 5 (after tcommit)";
      "fa(after tbegin, prior(after update, after tcommit), \
       (after tcommit | after tabort))";
      "!deposit";
      "relative(pressure < low_limit, relative(after motorStart, after motorStop))";
      (* §5 disjointness example *)
      "sequence(before log && a > 0, before log && b > 0)";
    ]

let test_rejections () =
  List.iter check_rejects
    [
      "before tcommit";
      "before create";
      "after delete";
      "after tcomplete";
      "before tbegin";
      "prior+(after f)";
      "sequence+(after f)";
      "choose 0 (after f)";
      "fa(after f, after g)";
      "relative()";
      "after";
      "";
      "after f |";
    ]

let test_shorthands () =
  (match P.parse_event "!deposit" with
  | Expr.Not (Expr.Or (Expr.Leaf l1, Expr.Leaf l2)) ->
    Alcotest.(check bool)
      "expands to before|after" true
      (l1.basic = Symbol.Method (Before, "deposit")
      && l2.basic = Symbol.Method (After, "deposit"))
  | e -> Alcotest.failf "unexpected expansion: %s" (Expr.to_string e));
  match P.parse_event "balance < 500.00" with
  | Expr.Masked (Expr.Or (Expr.Leaf u, Expr.Leaf c), Mask.Cmp (Mask.Lt, _, _)) ->
    Alcotest.(check bool)
      "state event = (after update | after create) && mask" true
      (u.basic = Symbol.Update After && c.basic = Symbol.Create)
  | e -> Alcotest.failf "unexpected state event: %s" (Expr.to_string e)

let test_mask_merging () =
  (* A second && on a leaf merges into its mask (the §5 rewriting demands
     conjunctive leaf masks, not nested Masked). *)
  match P.parse_event "before log && a > 0 && b > 0" with
  | Expr.Leaf { mask = Some (Mask.And (_, _)); _ } -> ()
  | e -> Alcotest.failf "expected merged leaf mask, got %s" (Expr.to_string e)

let test_roundtrip_examples () =
  List.iter roundtrip (paper_trigger_events @ [
    "after f(i, q) && q > 100 | before g & !after h";
    "(after f | before g) && x + 1 >= 2 * y";
    "faAbs(after f, after g, after h)";
    "sequence 3 (after f)";
    "relative+(after f)";
    "every time(MS=500)";
    "at time(YR=1992, MON=6, DAY=2, HR=9, M=0, SEC=0, MS=0)";
  ])

let test_precedence () =
  (* ';' binds loosest, then '|', then '&', then '!'. *)
  let e = P.parse_event "after a; after b | after c & !after d" in
  match e with
  | Expr.Sequence [ _; Expr.Or (_, Expr.And (_, Expr.Not _)) ] -> ()
  | _ -> Alcotest.failf "unexpected precedence: %s" (Expr.to_string e)

let test_formal_types () =
  match P.parse_event "after withdraw (Item i, int q)" with
  | Expr.Leaf { formals = [ f1; f2 ]; _ } ->
    Alcotest.(check (option string)) "type 1" (Some "Item") f1.Expr.f_ty;
    Alcotest.(check string) "name 1" "i" f1.Expr.f_name;
    Alcotest.(check (option string)) "type 2" (Some "int") f2.Expr.f_ty;
    Alcotest.(check string) "name 2" "q" f2.Expr.f_name
  | e -> Alcotest.failf "unexpected formals: %s" (Expr.to_string e)

let test_masks () =
  let m = P.parse_mask "i.balance < reorder(i) && !done || count == 3" in
  Alcotest.(check string)
    "mask precedence"
    "i.balance < reorder(i) && !done || count == 3"
    (Fmt.str "%a" Mask.pp m)

let suite =
  [
    Alcotest.test_case "paper §3.5 triggers parse" `Quick test_paper_triggers;
    Alcotest.test_case "paper examples parse" `Quick test_paper_examples;
    Alcotest.test_case "forbidden forms rejected" `Quick test_rejections;
    Alcotest.test_case "shorthand expansions" `Quick test_shorthands;
    Alcotest.test_case "leaf mask merging" `Quick test_mask_merging;
    Alcotest.test_case "print/parse round trip" `Quick test_roundtrip_examples;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "formal parameter types" `Quick test_formal_types;
    Alcotest.test_case "mask parsing and printing" `Quick test_masks;
  ]

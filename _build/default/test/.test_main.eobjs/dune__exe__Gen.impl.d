test/gen.ml: Array Expr Fmt List Lowered Mask Ode_base Ode_event Printf QCheck Regex Semantics Symbol

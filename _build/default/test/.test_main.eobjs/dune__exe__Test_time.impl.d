test/test_time.ml: Alcotest Clock Database Filename Int64 List Ode_base Ode_lang Ode_odb Sys

test/test_odb.ml: Alcotest Database List Ode_base Ode_event Ode_lang Ode_odb

test/test_odl.ml: Alcotest Buffer Format Ode_base Ode_odb Ode_odl String

test/test_base.ml: Alcotest Bitset List Ode_base Ode_event Ode_odb Option QCheck QCheck_alcotest

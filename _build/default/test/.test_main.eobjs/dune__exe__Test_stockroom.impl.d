test/test_stockroom.ml: Alcotest Int64 Ode_odb Ode_scenarios Stockroom

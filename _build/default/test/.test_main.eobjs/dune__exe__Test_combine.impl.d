test/test_combine.ml: Alcotest Array Combine Detector Expr Fmt Gen List Mask Ode_event Ode_lang QCheck QCheck_alcotest

test/test_committed.ml: Alcotest Array Committed Compile Dfa Gen List Lowered Ode_event QCheck QCheck_alcotest

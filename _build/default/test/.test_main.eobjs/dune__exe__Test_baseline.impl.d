test/test_baseline.ml: Alcotest Array Fmt Gen List Lowered Ode_baseline Ode_event QCheck QCheck_alcotest Semantics

test/test_laws.ml: Alcotest Array Compile Dfa Expr Gen List Lowered Mask Ode_event Printf QCheck QCheck_alcotest Rewrite Semantics

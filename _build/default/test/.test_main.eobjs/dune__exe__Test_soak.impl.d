test/test_soak.ml: Filename Int64 List Ode_base Ode_lang Ode_odb QCheck QCheck_alcotest Sys

test/test_provenance.ml: Alcotest Detector Expr Fmt Gen List Mask Ode_base Ode_event Provenance QCheck QCheck_alcotest Rewrite Symbol

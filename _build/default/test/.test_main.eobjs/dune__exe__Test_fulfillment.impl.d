test/test_fulfillment.ml: Alcotest Fulfillment Ode_base Ode_odb Ode_scenarios

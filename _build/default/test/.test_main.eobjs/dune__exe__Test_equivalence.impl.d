test/test_equivalence.ml: Array Compile Dfa Fmt Gen List Ode_event QCheck QCheck_alcotest Regex Semantics Translate

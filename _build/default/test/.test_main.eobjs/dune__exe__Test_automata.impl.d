test/test_automata.ml: Alcotest Array Compile Dfa List Nfa Ode_event QCheck QCheck_alcotest

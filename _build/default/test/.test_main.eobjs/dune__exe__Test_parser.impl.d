test/test_parser.ml: Alcotest Expr Fmt List Mask Ode_event Ode_lang Printf Symbol

test/test_scope.ml: Alcotest Database History List Ode_base Ode_event Ode_lang Ode_odb

test/test_committed_integration.ml: Alcotest Detector Dump Fmt List Mask Ode_base Ode_event Ode_lang Ode_odb QCheck QCheck_alcotest Symbol

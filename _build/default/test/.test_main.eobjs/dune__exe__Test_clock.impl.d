test/test_clock.ml: Alcotest Clock Int64 List Ode_event Ode_odb QCheck QCheck_alcotest

test/test_persistence.ml: Alcotest Database Filename List Ode_base Ode_lang Ode_odb

test/test_coupling.ml: Alcotest Coupling Database Expr List Mask Ode_base Ode_event Ode_odb

test/test_rewrite.ml: Alcotest Array Detector Expr List Mask Ode_base Ode_event Ode_lang Printf Rewrite Symbol

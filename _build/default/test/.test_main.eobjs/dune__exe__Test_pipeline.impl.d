test/test_pipeline.ml: Array Detector Expr Fmt Gen List Lowered Mask Ode_base Ode_event Ode_lang Printexc QCheck QCheck_alcotest Regex Rewrite Semantics String Translate

(* Auditing a database with the paper's extension features:
   - database-scope events (§3 "events have a scope"): schema changes and
     a census of object creation;
   - recorded event histories with queries (§9 future work);
   - persistence of objects and in-flight detection state.

   Run with:  dune exec examples/audit.exe *)

open Ode_odb
module D = Database
module Value = Ode_base.Value

let widget name =
  D.define_class name
  |> (fun b -> D.field b "v" (Value.Int 0))
  |> fun b ->
  D.method_ b ~kind:D.Updating "poke" (fun db oid _ ->
      D.set_field db oid "v" (Value.add (D.get_field db oid "v") (Value.Int 1));
      Value.Unit)

let () =
  let db = D.create_db () in
  D.enable_history db ~limit:64;

  (* database-scope triggers *)
  D.db_trigger_str db ~perpetual:true "schema_audit" ~event:"after defclass"
    ~action:(fun _ ctx ->
      match ctx.D.fc_occurrence.args with
      | [ Value.String name ] -> Fmt.pr "  [schema] class %s defined@." name
      | _ -> ());
  D.db_trigger_str db ~perpetual:true "census" ~event:"every 3 (after create)"
    ~action:(fun _ _ -> Fmt.pr "  [census] another 3 objects created@.");
  D.db_trigger_str db ~perpetual:true "sensor_watch"
    ~event:"after create(o, cls) && cls == \"sensor\""
    ~action:(fun _ ctx -> Fmt.pr "  [watch] sensor @%d created@." ctx.D.fc_oid);
  List.iter (fun t -> D.activate_db_trigger db t []) [ "schema_audit"; "census"; "sensor_watch" ];

  Fmt.pr "registering classes:@.";
  D.register_class db (widget "sensor");
  D.register_class db (widget "actuator");

  Fmt.pr "@.creating objects:@.";
  let oids =
    match
      D.with_txn db (fun _ ->
          let s1 = D.create db "sensor" [] in
          let a1 = D.create db "actuator" [] in
          let s2 = D.create db "sensor" [] in
          let a2 = D.create db "actuator" [] in
          [ s1; a1; s2; a2 ])
    with
    | Ok oids -> oids
    | Error `Aborted -> failwith "abort"
  in
  let first = List.hd oids in

  Fmt.pr "@.poking the first sensor twice (one aborted):@.";
  (match D.with_txn db (fun _ -> ignore (D.call db first "poke" [])) with
  | Ok () -> ()
  | Error `Aborted -> ());
  let tx = D.begin_txn db in
  ignore (D.call db first "poke" []);
  D.abort db tx (* the aborted poke still reaches the true history (§6) *);

  let h = D.object_history db first in
  Fmt.pr "history of @%d: %d events, %d pokes (%d in aborted work), last: %s@." first
    (List.length h)
    (List.length (History.methods_named "poke" h) / 2)
    ((History.count
        (fun r ->
          match r.History.h_occurrence.Ode_event.Symbol.basic with
          | Ode_event.Symbol.Tabort _ -> true
          | _ -> false)
        h)
    / 2)
    (match History.last (fun _ -> true) h with
    | Some r -> Fmt.str "%a" History.pp_record r
    | None -> "-");

  (* persistence round trip *)
  let path = Filename.temp_file "ode_audit" ".img" in
  D.save db path;
  let db2 = D.create_db () in
  D.register_class db2 (widget "sensor");
  D.register_class db2 (widget "actuator");
  D.load db2 path;
  Fmt.pr "@.saved and reloaded: %d objects, sensor value %a@."
    (D.stats db2).D.n_objects Value.pp (D.get_field db2 first "v");
  Sys.remove path

(* Trade surveillance — a modern complex-event-processing workload
   expressed with the paper's 1992 operators.

   A trading account is monitored for:
   - wash-like churn: a buy immediately followed by a sell of the same
     size class (sequence);
   - unreviewed bursts: the 3rd large sell after the session opens with
     no intervening compliance review (fa + choose);
   - layering: five orders placed within one session (fa + choose).

   Run with:  dune exec examples/trade_surveillance.exe *)

module D = Ode_odb.Database
module Value = Ode_base.Value

let alerts : string list ref = ref []
let alert fmt = Format.kasprintf (fun s -> alerts := s :: !alerts) fmt

let account_class =
  D.define_class "trading_account"
    ~constructor:(fun db oid _ ->
      List.iter (fun t -> D.activate db oid t []) [ "churn"; "burst"; "layering" ])
  |> (fun b -> D.field b "owner" (Value.String ""))
  |> (fun b -> D.field b "position" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~arity:1 ~kind:D.Updating "buy" (fun db oid args ->
           D.set_field db oid "position"
             (Value.add (D.get_field db oid "position") (List.hd args));
           Value.Unit))
  |> (fun b ->
       D.method_ b ~arity:1 ~kind:D.Updating "sell" (fun db oid args ->
           D.set_field db oid "position"
             (Value.sub (D.get_field db oid "position") (List.hd args));
           Value.Unit))
  |> (fun b -> D.method_ b ~kind:D.Updating "open_session" (fun _ _ _ -> Value.Unit))
  |> (fun b -> D.method_ b ~kind:D.Updating "review" (fun _ _ _ -> Value.Unit))
  (* a buy immediately followed by a sell of >= the same size *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "churn"
         ~event:"after buy(q) && q >= 100; after sell(q) && q >= 100"
         ~action:(fun db ctx ->
           alert "churn on %s: large buy immediately followed by large sell"
             (Value.to_string (D.get_field db ctx.D.fc_oid "owner"))))
  (* third large sell since the session opened, unless compliance
     reviewed the account in between *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "burst"
         ~event:
           "fa(after open_session, choose 3 (after sell(q) && q > 500), \
            after review)"
         ~action:(fun db ctx ->
           alert "burst on %s: 3 large sells with no compliance review"
             (Value.to_string (D.get_field db ctx.D.fc_oid "owner"))))
  (* five orders of any kind within one session: fa closes the window at
     the next open_session, unlike relative whose window never closes *)
  |> fun b ->
  D.trigger_str b ~perpetual:true "layering"
    ~event:"fa(after open_session, choose 5 (after buy | after sell), after open_session)"
    ~action:(fun db ctx ->
      alert "layering on %s: 5 orders this session"
        (Value.to_string (D.get_field db ctx.D.fc_oid "owner")))

let () =
  let db = D.create_db () in
  D.register_class db account_class;
  let ok = function Ok v -> v | Error `Aborted -> failwith "abort" in
  let acct =
    ok
      (D.with_txn db (fun _ ->
           let a = D.create db "trading_account" [] in
           D.set_field db a "owner" (Value.String "desk-7");
           a))
  in
  let call name args = ignore (ok (D.with_txn db (fun _ -> D.call db acct name args))) in
  let order name q = call name [ Value.Int q ] in

  Fmt.pr "session one: quiet trading with a review@.";
  call "open_session" [];
  order "buy" 50;
  order "sell" 600;
  order "sell" 700;
  call "review" [] (* resets the burst window *);
  order "sell" 800 (* only the first large sell after review *);
  Fmt.pr "  alerts so far: %d@." (List.length !alerts);

  Fmt.pr "session two: churn and a burst@.";
  call "open_session" [];
  order "buy" 200;
  order "sell" 300 (* churn: large buy immediately followed by large sell *);
  order "sell" 600;
  order "sell" 900 (* layering: 5th order this session *)
  (* burst: sells of 300? no — only >500 count: 600 and 900 are 2nd and
     3rd large this session... the 300 is not large *);
  order "sell" 501 (* 3rd large sell, no review since open: burst *);

  Fmt.pr "@.%d alerts:@." (List.length !alerts);
  List.iter (Fmt.pr "  %s@.") (List.rev !alerts)

(* §7: the nine E-C-A coupling modes as plain event expressions.

   For each mode this prints the generated O++ event expression and when
   it fires across a commit and an abort scenario.

   Run with:  dune exec examples/couplings.exe *)

open Ode_event
module D = Ode_odb.Database
module Value = Ode_base.Value

type phase = Body | Commit_processing | Post of string

let run_scenario ~commits =
  let db = D.create_db () in
  let fired : (Coupling.mode * phase) list ref = ref [] in
  let stage = ref Body in
  let observed = ref (-1) in
  D.register_fun db "cond" (fun _ _ -> Value.Bool true);
  let builder =
    List.fold_left
      (fun b mode ->
        D.trigger b ~perpetual:true (Coupling.name mode)
          ~event:
            (Coupling.expression mode ~event:(Expr.after "edit")
               ~cond:(Mask.Call ("cond", [])))
          ~action:(fun db _ ->
            let phase =
              match !stage with
              | Body -> Body
              | other -> (
                match D.current_txn db with
                | Some tx when D.txn_id tx = !observed -> Commit_processing
                | _ -> other)
            in
            fired := (mode, phase) :: !fired))
      (D.define_class "doc" |> fun b ->
       D.method_ b ~kind:D.Updating "edit" (fun _ _ _ -> Value.Unit))
      Coupling.all
  in
  D.register_class db builder;
  let oid =
    match
      D.with_txn db (fun _ ->
          let oid = D.create db "doc" [] in
          List.iter (fun m -> D.activate db oid (Coupling.name m) []) Coupling.all;
          oid)
    with
    | Ok oid -> oid
    | Error `Aborted -> failwith "setup aborted"
  in
  fired := [];
  let tx = D.begin_txn db in
  observed := D.txn_id tx;
  stage := Body;
  ignore (D.call db oid "edit" []);
  stage := Post (if commits then "after tcommit" else "after tabort");
  if commits then ignore (D.commit db tx) else D.abort db tx;
  List.rev !fired

let () =
  Fmt.pr "The nine coupling modes as E-A event expressions (E = after edit, C = cond()):@.@.";
  List.iter
    (fun mode ->
      Fmt.pr "  %-22s %s@." (Coupling.name mode)
        (Expr.to_string
           (Coupling.expression mode ~event:(Expr.after "edit")
              ~cond:(Mask.Call ("cond", [])))))
    Coupling.all;

  let describe = function
    | Body -> "while the body runs"
    | Commit_processing -> "at before tcomplete"
    | Post s -> Printf.sprintf "in a system txn (%s)" s
  in
  let show title records =
    Fmt.pr "@.%s@." title;
    List.iter
      (fun mode ->
        match List.assoc_opt mode records with
        | Some phase -> Fmt.pr "  %-22s fires %s@." (Coupling.name mode) (describe phase)
        | None -> Fmt.pr "  %-22s (silent)@." (Coupling.name mode))
      Coupling.all
  in
  show "Transaction that COMMITS:" (run_scenario ~commits:true);
  show "Transaction that ABORTS:" (run_scenario ~commits:false)

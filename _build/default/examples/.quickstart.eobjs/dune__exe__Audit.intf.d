examples/audit.mli:

examples/fulfillment.ml: Dump Fmt Fulfillment Ode_odb Ode_scenarios

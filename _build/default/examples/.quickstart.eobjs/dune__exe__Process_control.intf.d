examples/process_control.mli:

examples/quickstart.ml: Fmt List Ode_base Ode_odb

examples/audit.ml: Database Filename Fmt History List Ode_base Ode_event Ode_odb Sys

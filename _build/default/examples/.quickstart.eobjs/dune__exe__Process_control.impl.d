examples/process_control.ml: Fmt Ode_scenarios

examples/fulfillment.mli:

examples/trade_surveillance.mli:

examples/trade_surveillance.ml: Fmt Format List Ode_base Ode_odb

examples/couplings.mli:

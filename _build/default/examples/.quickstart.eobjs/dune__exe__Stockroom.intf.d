examples/stockroom.mli:

examples/couplings.ml: Coupling Expr Fmt List Mask Ode_base Ode_event Ode_odb Printf

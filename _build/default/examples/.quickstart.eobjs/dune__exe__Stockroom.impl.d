examples/stockroom.ml: Fmt Int64 List Ode_odb Ode_scenarios

examples/quickstart.mli:

(* The paper's §3.5 process-control vessel: a pressure drop followed by a
   valve opening (motorStart then motorStop) calls for a pressure check.

   Run with:  dune exec examples/process_control.exe *)

module P = Ode_scenarios.Process_control

let show p label = Fmt.pr "%-34s checks=%d@." label (P.checks p)

let () =
  let p = P.setup ~low_limit:2.0 () in
  Fmt.pr "vessel created: low_limit=2.0, pressure=10.0@.";
  Fmt.pr "trigger T: relative(pressure < low_limit, relative(after motorStart, after motorStop))@.@.";

  (* valve cycles before any pressure drop: nothing should happen *)
  P.motor_start p;
  P.motor_stop p;
  show p "valve cycle, pressure normal";

  (* the pressure drops... *)
  P.set_pressure p 1.5;
  show p "pressure drops to 1.5";

  (* ... and then the valve opens: motorStart followed by motorStop *)
  P.motor_start p;
  show p "motor started";
  P.motor_stop p;
  show p "motor stopped (valve open)";

  (* T is an ordinary trigger: deactivated once fired; re-arm it *)
  P.rearm p;
  P.set_pressure p 0.5;
  P.motor_start p;
  P.motor_stop p;
  show p "second drop + valve cycle"

(* Order fulfillment as a long-running activity (§1, §7):
   state/sequence enforcement, commit-coupled billing, timer escalation
   and database-scope auditing — all as composite-event triggers.

   Run with:  dune exec examples/fulfillment.exe *)

open Ode_scenarios
module F = Fulfillment
module D = Ode_odb.Database

let describe t o = Fmt.pr "  order @%d: %s@." o (F.status t o)

let () =
  let t = F.setup () in
  Fmt.pr "placing two orders...@.";
  let a = F.place t in
  let b = F.place t in
  describe t a;
  describe t b;

  Fmt.pr "@.trying to ship @%d before it was picked:@." a;
  (match F.ship t a with
  | Ok () -> ()
  | Error `Aborted -> Fmt.pr "  rejected — ship_check: !prior(after pick, before ship)@.");

  Fmt.pr "@.picking and shipping @%d (billing fires at commit):@." a;
  ignore (F.pick t a);
  ignore (F.ship t a);
  describe t a;
  Fmt.pr "  billed so far: %a@." Fmt.(Dump.list int) t.F.billed;

  Fmt.pr "@.an aborted shipment of @%d must not bill:@." b;
  ignore (F.pick t b);
  let tx = D.begin_txn t.F.db in
  ignore (D.call t.F.db b "ship" []);
  D.abort t.F.db tx;
  describe t b;
  Fmt.pr "  billed so far: %a@." Fmt.(Dump.list int) t.F.billed;

  Fmt.pr "@.a third order sits unpicked for 49 hours:@.";
  let stuck = F.place t in
  F.hours t 49;
  Fmt.pr "  escalated: %a@." Fmt.(Dump.list int) t.F.escalated;
  ignore stuck;

  Fmt.pr "@.placing 20 more orders (database-scope census every 10):@.";
  for _ = 1 to 20 do
    ignore (F.place t)
  done;
  Fmt.pr "  volume reports: %d@." t.F.volume_reports

(** Lexer for the O++ event-specification sub-language (paper §3.3). *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COLON
  | COMMA
  | SEMI
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BANG
  | AMP  (** [&] — event intersection *)
  | AMPAMP  (** [&&] — mask attachment / mask conjunction *)
  | BAR  (** [|] — event union *)
  | BARBAR  (** [||] — mask disjunction *)
  | EQ  (** [=] — inside time patterns *)
  | ARROW  (** [==>] — trigger bodies in ODL *)
  | EQEQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : token; pos : int }
(** [pos] is a byte offset into the source, for error reporting. *)

exception Lex_error of string * int

val tokenize : string -> spanned array
(** Supports [//] line comments and [/* */] block comments. Raises
    {!Lex_error} on unknown characters or malformed literals. *)

val describe : token -> string
val position : string -> int -> int * int
(** [position src offset] is the 1-based (line, column). *)

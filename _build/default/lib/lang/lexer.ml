type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COLON
  | COMMA
  | SEMI
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BANG
  | AMP
  | AMPAMP
  | BAR
  | BARBAR
  | EQ
  | ARROW
  | EQEQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : token; pos : int }

exception Lex_error of string * int

let error msg pos = raise (Lex_error (msg, pos))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit tok pos = out := { tok; pos } :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let pos = !i in
    let c = src.[pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then error "unterminated comment" pos
    end
    else if is_ident_start c then begin
      let j = ref pos in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      emit (IDENT (String.sub src pos (!j - pos))) pos;
      i := !j
    end
    else if is_digit c then begin
      let j = ref pos in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      (* A fractional part requires a digit after the dot, so that
         [5(e)]-style counts followed by [.] elsewhere stay ints. *)
      if !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1] then begin
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        emit (FLOAT (float_of_string (String.sub src pos (!j - pos)))) pos
      end
      else emit (INT (int_of_string (String.sub src pos (!j - pos)))) pos;
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (pos + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        if src.[!j] = '"' then closed := true
        else if src.[!j] = '\\' && !j + 1 < n then begin
          Buffer.add_char buf src.[!j + 1];
          j := !j + 2
        end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      if not !closed then error "unterminated string" pos;
      emit (STRING (Buffer.contents buf)) pos;
      i := !j + 1
    end
    else begin
      let two tok = emit tok pos; i := !i + 2 in
      let one tok = emit tok pos; incr i in
      let three tok = emit tok pos; i := !i + 3 in
      match c, peek 1 with
      | '&', Some '&' -> two AMPAMP
      | '|', Some '|' -> two BARBAR
      | '=', Some '=' -> if peek 2 = Some '>' then three ARROW else two EQEQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', _ -> one AMP
      | '|', _ -> one BAR
      | '=', _ -> one EQ
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ':', _ -> one COLON
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | '.', _ -> one DOT
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | _ -> error (Printf.sprintf "unexpected character %C" c) pos
    end
  done;
  emit EOF n;
  Array.of_list (List.rev !out)

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT k -> Printf.sprintf "integer %d" k
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COLON -> "':'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | DOT -> "'.'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | BANG -> "'!'"
  | AMP -> "'&'"
  | AMPAMP -> "'&&'"
  | BAR -> "'|'"
  | BARBAR -> "'||'"
  | EQ -> "'='"
  | ARROW -> "'==>'"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"

let position src offset =
  let line = ref 1 in
  let col = ref 1 in
  let stop = min offset (String.length src) in
  for k = 0 to stop - 1 do
    if src.[k] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

lib/lang/parser.mli: Lexer Ode_event

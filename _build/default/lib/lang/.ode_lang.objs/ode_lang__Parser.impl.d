lib/lang/parser.ml: Array Expr Format Int64 Lexer List Mask Ode_base Ode_event Printf String Symbol

lib/lang/lexer.ml: Array Buffer List Printf String

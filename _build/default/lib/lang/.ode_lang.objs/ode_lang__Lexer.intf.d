lib/lang/lexer.mli:

(** Recursive-descent parser for the O++ event-specification sub-language
    (the BNF of paper §3.3).

    Grammar, loosest to tightest binding:
    {v
    event   := union (';' union)*                      sequence
    union   := inter ('|' inter)*
    inter   := unary ('&' unary)*
    unary   := '!' unary | postfix
    postfix := atom ['&&' mask]
    atom    := '(' event ')'
             | relative|prior|sequence ['+' | INT] '(' event-list ')'
             | choose|every INT '(' event ')'
             | fa|faAbs '(' event ',' event ',' event ')'
             | before|after basic-or-method [formals]
             | after time '(' pattern ')'              delay event
             | at time '(' pattern ')'
             | every time '(' pattern ')'              periodic event
             | IDENT                                   method shorthand
             | object-state mask                       (after update |
                                                        after create) && mask
    v}

    The paper's restrictions are enforced: [before tcommit] is rejected,
    [create]/[tbegin]/[tcommit] only take [after], [delete]/[tcomplete]
    only [before], and the [+] modifier is refused on [prior] and
    [sequence] (where it would be the identity). *)

exception Parse_error of string * int
(** Message and byte offset. *)

val parse_event : string -> Ode_event.Expr.t
val parse_mask : string -> Ode_event.Mask.t

val event_of_string : string -> (Ode_event.Expr.t, string) result
(** Like {!parse_event} but formatting errors as ["line:col: message"]. *)

val mask_of_string : string -> (Ode_event.Mask.t, string) result

(** {1 Streaming interface}

    For embedding the event sub-language inside larger grammars (the ODL
    schema language): a mutable cursor over a token array, from which an
    event expression or a mask can be parsed as a prefix. *)

type stream

val stream_of_tokens : Lexer.spanned array -> stream
val stream_index : stream -> int
val stream_seek : stream -> int -> unit
val stream_peek : stream -> Lexer.token
val stream_peek2 : stream -> Lexer.token
val stream_next : stream -> Lexer.token
val stream_expect : stream -> Lexer.token -> unit
val stream_ident : stream -> string
val stream_int : stream -> int
val stream_fail : stream -> string -> 'a
(** Raise {!Parse_error} at the cursor's position. *)

val event_prefix : stream -> Ode_event.Expr.t
(** Parse an event expression starting at the cursor, consuming exactly
    its tokens (stops at the first token that cannot extend it). *)

val mask_prefix : stream -> Ode_event.Mask.t

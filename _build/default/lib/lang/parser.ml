open Ode_event
module L = Lexer

exception Parse_error of string * int

type state = { toks : L.spanned array; mutable pos : int }

let error st fmt =
  let pos = st.toks.(min st.pos (Array.length st.toks - 1)).pos in
  Format.kasprintf (fun msg -> raise (Parse_error (msg, pos))) fmt

let peek st = st.toks.(st.pos).tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else L.EOF

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got = next st in
  if got <> tok then
    error { st with pos = st.pos - 1 } "expected %s, found %s" (L.describe tok)
      (L.describe got)

let expect_ident st =
  match next st with
  | L.IDENT name -> name
  | got -> error { st with pos = st.pos - 1 } "expected identifier, found %s" (L.describe got)

let expect_int st =
  match next st with
  | L.INT k -> k
  | got -> error { st with pos = st.pos - 1 } "expected integer, found %s" (L.describe got)

(* ------------------------------------------------------------------ *)
(* Masks                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_mask_expr st : Mask.t = mask_or st

and mask_or st =
  let left = ref (mask_and st) in
  while peek st = L.BARBAR do
    advance st;
    left := Mask.Or (!left, mask_and st)
  done;
  !left

and mask_and st =
  let left = ref (mask_cmp st) in
  while peek st = L.AMPAMP do
    advance st;
    left := Mask.And (!left, mask_cmp st)
  done;
  !left

and mask_cmp st =
  let left = mask_add st in
  let op =
    match peek st with
    | L.EQEQ -> Some Mask.Eq
    | L.NE -> Some Mask.Ne
    | L.LT -> Some Mask.Lt
    | L.LE -> Some Mask.Le
    | L.GT -> Some Mask.Gt
    | L.GE -> Some Mask.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    Mask.Cmp (op, left, mask_add st)

and mask_add st =
  let left = ref (mask_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.PLUS ->
      advance st;
      left := Mask.Arith (Mask.Add, !left, mask_mul st)
    | L.MINUS ->
      advance st;
      left := Mask.Arith (Mask.Sub, !left, mask_mul st)
    | _ -> continue := false
  done;
  !left

and mask_mul st =
  let left = ref (mask_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.STAR ->
      advance st;
      left := Mask.Arith (Mask.Mul, !left, mask_unary st)
    | L.SLASH ->
      advance st;
      left := Mask.Arith (Mask.Div, !left, mask_unary st)
    | _ -> continue := false
  done;
  !left

and mask_unary st =
  match peek st with
  | L.BANG ->
    advance st;
    Mask.Not (mask_unary st)
  | L.MINUS ->
    advance st;
    Mask.Neg (mask_unary st)
  | _ -> mask_postfix st

and mask_postfix st =
  let base = ref (mask_atom st) in
  while peek st = L.DOT do
    advance st;
    base := Mask.Get (!base, expect_ident st)
  done;
  !base

and mask_atom st =
  match next st with
  | L.INT k -> Mask.Const (Ode_base.Value.Int k)
  | L.FLOAT f -> Mask.Const (Ode_base.Value.Float f)
  | L.STRING s -> Mask.Const (Ode_base.Value.String s)
  | L.IDENT "true" -> Mask.Const (Ode_base.Value.Bool true)
  | L.IDENT "false" -> Mask.Const (Ode_base.Value.Bool false)
  | L.IDENT name ->
    if peek st = L.LPAREN then begin
      advance st;
      let args = ref [] in
      if peek st <> L.RPAREN then begin
        args := [ parse_mask_expr st ];
        while peek st = L.COMMA do
          advance st;
          args := parse_mask_expr st :: !args
        done
      end;
      expect st L.RPAREN;
      Mask.Call (name, List.rev !args)
    end
    else Mask.Var name
  | L.LPAREN ->
    let inner = parse_mask_expr st in
    expect st L.RPAREN;
    inner
  | got -> error { st with pos = st.pos - 1 } "expected a mask term, found %s" (L.describe got)

(* ------------------------------------------------------------------ *)
(* Time patterns                                                       *)
(* ------------------------------------------------------------------ *)

let parse_time_pattern st : Symbol.time_pattern =
  expect st (L.IDENT "time");
  expect st L.LPAREN;
  let pat = ref Symbol.wildcard_pattern in
  let set key value =
    let p = !pat in
    pat :=
      (match String.uppercase_ascii key with
      | "YR" -> { p with year = Some value }
      | "MON" -> { p with mon = Some value }
      | "DAY" -> { p with day = Some value }
      | "HR" -> { p with hr = Some value }
      | "M" | "MIN" -> { p with min = Some value }
      | "SEC" -> { p with sec = Some value }
      | "MS" -> { p with ms = Some value }
      | _ -> error st "unknown time field %s" key)
  in
  if peek st <> L.RPAREN then begin
    let field () =
      let key = expect_ident st in
      expect st L.EQ;
      set key (expect_int st)
    in
    field ();
    while peek st = L.COMMA do
      advance st;
      field ()
    done
  end;
  expect st L.RPAREN;
  !pat

let period_ms (p : Symbol.time_pattern) : int64 =
  let get = function None -> 0L | Some v -> Int64.of_int v in
  let ( * ) = Int64.mul and ( + ) = Int64.add in
  (get p.year * 31_536_000_000L)
  + (get p.mon * 2_592_000_000L)
  + (get p.day * 86_400_000L)
  + (get p.hr * 3_600_000L)
  + (get p.min * 60_000L)
  + (get p.sec * 1_000L)
  + get p.ms

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let basic_keywords =
  [ "create"; "delete"; "update"; "read"; "access"; "tbegin"; "tcomplete";
    "tcommit"; "tabort" ]

let reserved =
  [ "relative"; "prior"; "sequence"; "choose"; "every"; "fa"; "faAbs";
    "before"; "after"; "at"; "time" ]
  @ basic_keywords

let parse_formals st : Expr.formal list =
  expect st L.LPAREN;
  let formals = ref [] in
  if peek st <> L.RPAREN then begin
    let formal () =
      let first = expect_ident st in
      match peek st with
      | L.IDENT second ->
        advance st;
        { Expr.f_ty = Some first; f_name = second }
      | _ -> { Expr.f_ty = None; f_name = first }
    in
    formals := [ formal () ];
    while peek st = L.COMMA do
      advance st;
      formals := formal () :: !formals
    done
  end;
  expect st L.RPAREN;
  List.rev !formals

let qualified_basic st (q : Symbol.qualifier) name : Expr.t =
  let bad () =
    error st "'%s %s' is not a valid basic event"
      (match q with Before -> "before" | After -> "after")
      name
  in
  match name, q with
  | "create", After -> Expr.leaf Symbol.Create
  | "create", Before -> bad ()
  | "delete", Before -> Expr.leaf Symbol.Delete
  | "delete", After -> bad ()
  | "update", _ -> Expr.leaf (Symbol.Update q)
  | "read", _ -> Expr.leaf (Symbol.Read q)
  | "access", _ -> Expr.leaf (Symbol.Access q)
  | "tbegin", After -> Expr.leaf Symbol.Tbegin
  | "tbegin", Before -> bad ()
  | "tcomplete", Before -> Expr.leaf Symbol.Tcomplete
  | "tcomplete", After -> bad ()
  | "tcommit", After -> Expr.leaf Symbol.Tcommit
  | "tcommit", Before ->
    error st "'before tcommit' is not allowed: a transaction's commit cannot be foreseen"
  | "tabort", _ -> Expr.leaf (Symbol.Tabort q)
  | _ -> assert false

(* Tokens that may legally follow a complete event atom. Anything else
   after a would-be '(event)' means the parenthesis actually opened a
   mask (an object-state event like [(a + b) > 0]). *)
let event_follow = function
  | L.AMP | L.AMPAMP | L.BAR | L.SEMI | L.COMMA | L.RPAREN | L.EOF -> true
  | _ -> false

let rec parse_event_expr st : Expr.t =
  let first = parse_union st in
  if peek st <> L.SEMI then first
  else begin
    let parts = ref [ first ] in
    while peek st = L.SEMI do
      advance st;
      parts := parse_union st :: !parts
    done;
    Expr.sequence (List.rev !parts)
  end

and parse_union st =
  let left = ref (parse_inter st) in
  while peek st = L.BAR do
    advance st;
    left := Expr.Or (!left, parse_inter st)
  done;
  !left

and parse_inter st =
  let left = ref (parse_unary st) in
  while peek st = L.AMP do
    advance st;
    left := Expr.And (!left, parse_unary st)
  done;
  !left

and parse_unary st =
  if peek st = L.BANG then begin
    advance st;
    Expr.Not (parse_unary st)
  end
  else parse_postfix st

and parse_postfix st =
  let atom = parse_atom st in
  if peek st <> L.AMPAMP then atom
  else begin
    advance st;
    let mask = parse_mask_expr st in
    match atom with
    | Expr.Leaf l ->
      (* attach to the logical event, merging with any existing mask *)
      let mask =
        match l.mask with None -> mask | Some m -> Mask.And (m, mask)
      in
      Expr.Leaf { l with mask = Some mask }
    | composite -> Expr.Masked (composite, mask)
  end

and parse_event_list st =
  let events = ref [ parse_event_expr st ] in
  while peek st = L.COMMA do
    advance st;
    events := parse_event_expr st :: !events
  done;
  List.rev !events

and parse_curried st name build counted =
  advance st;
  match peek st with
  | L.PLUS ->
    advance st;
    if name <> "relative" then
      error st "the + modifier applies only to relative (it is the identity on %s)" name;
    expect st L.LPAREN;
    let body = parse_event_expr st in
    expect st L.RPAREN;
    Expr.relative_plus body
  | L.INT n ->
    advance st;
    if n < 1 then error st "%s count must be >= 1" name;
    expect st L.LPAREN;
    let body = parse_event_expr st in
    expect st L.RPAREN;
    counted n body
  | L.LPAREN ->
    advance st;
    let events = parse_event_list st in
    expect st L.RPAREN;
    build events
  | got -> error st "expected '+', a count, or '(' after %s, found %s" name (L.describe got)

and parse_counted_only st name counted =
  advance st;
  let n = expect_int st in
  if n < 1 then error st "%s count must be >= 1" name;
  expect st L.LPAREN;
  let body = parse_event_expr st in
  expect st L.RPAREN;
  counted n body

and parse_triple st name build =
  advance st;
  expect st L.LPAREN;
  match parse_event_list st with
  | [ e; f; g ] ->
    expect st L.RPAREN;
    build e f g
  | events -> error st "%s takes exactly 3 arguments, got %d" name (List.length events)

and parse_method_leaf st q =
  let name = expect_ident st in
  if List.mem name reserved && name <> "time" then
    error st "%S cannot be used as a method name" name
  else begin
    let formals = if peek st = L.LPAREN then parse_formals st else [] in
    Expr.leaf ~formals (Symbol.Method (q, name))
  end

and parse_qualified st q =
  advance st;
  match peek st with
  | L.IDENT name when List.mem name basic_keywords ->
    advance st;
    let leaf = qualified_basic st q name in
    (* creation/deletion events may declare formals for their database-
       scope arguments (oid, class) *)
    (match leaf, peek st with
    | Expr.Leaf ({ basic = Symbol.Create | Symbol.Delete; _ } as l), L.LPAREN ->
      let formals = parse_formals st in
      Expr.Leaf { l with formals }
    | _ -> leaf)
  | L.IDENT "time" ->
    if q = Symbol.Before then error st "'before time' is not a basic event"
    else begin
      let pat = parse_time_pattern st in
      Expr.leaf (Symbol.Time (After_period (period_ms pat)))
    end
  | L.IDENT _ -> parse_method_leaf st q
  | got -> error st "expected an event name after the qualifier, found %s" (L.describe got)

and parse_state_event st =
  let mask = parse_mask_expr st in
  Expr.state_event mask

and parse_atom st =
  match peek st with
  | L.IDENT "relative" ->
    parse_curried st "relative" Expr.relative Expr.relative_n
  | L.IDENT "prior" -> parse_curried st "prior" Expr.prior Expr.prior_n
  | L.IDENT "sequence" ->
    parse_curried st "sequence" Expr.sequence Expr.sequence_n
  | L.IDENT "choose" -> parse_counted_only st "choose" Expr.choose
  | L.IDENT "every" -> (
    match peek2 st with
    | L.INT _ -> parse_counted_only st "every" Expr.every
    | L.IDENT "time" ->
      advance st;
      let pat = parse_time_pattern st in
      Expr.leaf (Symbol.Time (Every (period_ms pat)))
    | got ->
      error st "expected a count or time(...) after 'every', found %s" (L.describe got))
  | L.IDENT "fa" -> parse_triple st "fa" Expr.fa
  | L.IDENT "faAbs" -> parse_triple st "faAbs" Expr.fa_abs
  | L.IDENT "before" -> parse_qualified st Symbol.Before
  | L.IDENT "after" -> parse_qualified st Symbol.After
  | L.IDENT "at" ->
    advance st;
    let pat = parse_time_pattern st in
    Expr.leaf (Symbol.Time (At pat))
  | L.IDENT _ -> (
    (* Method shorthand [f = (before f | after f)] versus an object-state
       event such as [balance < 500]: decide by what follows the
       identifier. *)
    match peek2 st with
    | L.DOT | L.LPAREN | L.PLUS | L.MINUS | L.STAR | L.SLASH | L.EQEQ | L.NE
    | L.LT | L.LE | L.GT | L.GE | L.BARBAR ->
      parse_state_event st
    | _ ->
      let name = expect_ident st in
      Expr.method_any name)
  | L.INT _ | L.FLOAT _ | L.STRING _ | L.MINUS -> parse_state_event st
  | L.LPAREN -> (
    (* Try a parenthesized event; if the parse fails, or succeeds but is
       followed by mask-only operators, it was a parenthesized mask. *)
    let saved = st.pos in
    let backtrack () =
      st.pos <- saved;
      parse_state_event st
    in
    match
      advance st;
      let inner = parse_event_expr st in
      expect st L.RPAREN;
      inner
    with
    | exception Parse_error _ -> backtrack ()
    | inner -> if event_follow (peek st) then inner else backtrack ())
  | got -> error st "expected an event, found %s" (L.describe got)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run src parse =
  let toks =
    try L.tokenize src with L.Lex_error (msg, pos) -> raise (Parse_error (msg, pos))
  in
  let st = { toks; pos = 0 } in
  let result = parse st in
  (match peek st with
  | L.EOF -> ()
  | got -> error st "trailing input: %s" (L.describe got));
  result

let parse_event src = run src parse_event_expr
let parse_mask src = run src parse_mask_expr

type stream = state

let stream_of_tokens toks = { toks; pos = 0 }
let stream_index st = st.pos
let stream_seek st pos = st.pos <- pos
let stream_peek = peek
let stream_peek2 = peek2
let stream_next = next
let stream_expect = expect
let stream_ident = expect_ident
let stream_int = expect_int
let stream_fail st msg = error st "%s" msg
let event_prefix = parse_event_expr
let mask_prefix = parse_mask_expr

let with_nice_errors src f =
  match f src with
  | v -> Ok v
  | exception Parse_error (msg, pos) ->
    let line, col = L.position src pos in
    Error (Printf.sprintf "%d:%d: %s" line col msg)

let event_of_string src = with_nice_errors src parse_event
let mask_of_string src = with_nice_errors src parse_mask

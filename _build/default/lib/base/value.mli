(** Dynamic values.

    Ode objects store typed fields and method parameters; masks are
    evaluated over them. O++ piggybacks on C++'s static types; in this
    embedded setting we use a small dynamic universe instead, checked at
    mask-evaluation time. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Oid of int  (** reference to a persistent object by identity *)

type ty = Tunit | Tbool | Tint | Tfloat | Tstring | Toid

exception Type_error of string
(** Raised by coercions and by arithmetic/comparison helpers when the
    operand types do not fit. *)

val type_of : t -> ty
val ty_name : ty -> string

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: values of distinct types are ordered by type; numeric
    comparisons across [Int]/[Float] coerce to float. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Checked projections; raise [Type_error]. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
(** [to_float] accepts both [Int] and [Float]. *)

val to_oid : t -> int

(** Arithmetic over [Int]/[Float] with numeric promotion; raise
    [Type_error] on other types. [add] also concatenates strings. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div] raises [Division_by_zero] on integer division by zero. *)

val neg : t -> t

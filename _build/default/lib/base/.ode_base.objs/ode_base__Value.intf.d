lib/base/value.mli: Format

lib/base/codec.ml: Array Buffer Char Int64 List Printf String Sys Value

lib/base/codec.mli: Value

lib/base/value.ml: Bool Float Fmt Int Printf String

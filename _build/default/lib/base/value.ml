type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Oid of int

type ty = Tunit | Tbool | Tint | Tfloat | Tstring | Toid

exception Type_error of string

let type_of = function
  | Unit -> Tunit
  | Bool _ -> Tbool
  | Int _ -> Tint
  | Float _ -> Tfloat
  | String _ -> Tstring
  | Oid _ -> Toid

let ty_name = function
  | Tunit -> "unit"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Toid -> "oid"

let type_error op v =
  raise (Type_error (Printf.sprintf "%s: unexpected %s" op (ty_name (type_of v))))

let type_error2 op v1 v2 =
  raise
    (Type_error
       (Printf.sprintf "%s: unexpected %s, %s" op
          (ty_name (type_of v1))
          (ty_name (type_of v2))))

let ty_rank = function
  | Tunit -> 0
  | Tbool -> 1
  | Tint -> 2
  | Tfloat -> 3
  | Tstring -> 4
  | Toid -> 5

let compare v1 v2 =
  match v1, v2 with
  | Unit, Unit -> 0
  | Bool b1, Bool b2 -> Bool.compare b1 b2
  | Int i1, Int i2 -> Int.compare i1 i2
  | Float f1, Float f2 -> Float.compare f1 f2
  | Int i, Float f -> Float.compare (float_of_int i) f
  | Float f, Int i -> Float.compare f (float_of_int i)
  | String s1, String s2 -> String.compare s1 s2
  | Oid o1, Oid o2 -> Int.compare o1 o2
  | (Unit | Bool _ | Int _ | Float _ | String _ | Oid _), _ ->
    Int.compare (ty_rank (type_of v1)) (ty_rank (type_of v2))

let equal v1 v2 = compare v1 v2 = 0

let pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Oid o -> Fmt.pf ppf "@%d" o

let to_string v = Fmt.str "%a" pp v

let to_bool = function Bool b -> b | v -> type_error "to_bool" v
let to_int = function Int i -> i | v -> type_error "to_int" v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "to_float" v

let to_oid = function Oid o -> o | v -> type_error "to_oid" v

let add v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> Int (i1 + i2)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float v1 +. to_float v2)
  | String s1, String s2 -> String (s1 ^ s2)
  | _ -> type_error2 "add" v1 v2

let sub v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> Int (i1 - i2)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float v1 -. to_float v2)
  | _ -> type_error2 "sub" v1 v2

let mul v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> Int (i1 * i2)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float v1 *. to_float v2)
  | _ -> type_error2 "mul" v1 v2

let div v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> Int (i1 / i2)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float v1 /. to_float v2)
  | _ -> type_error2 "div" v1 v2

let neg = function
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> type_error "neg" v

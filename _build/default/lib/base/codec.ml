type writer = Buffer.t
type reader = { src : string; mutable pos : int }

exception Corrupt of string

let corrupt msg = raise (Corrupt msg)

let writer () = Buffer.create 256
let contents = Buffer.contents
let reader src = { src; pos = 0 }
let at_end r = r.pos >= String.length r.src

let read_byte r =
  if r.pos >= String.length r.src then corrupt "unexpected end of input";
  let b = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  b

(* Zig-zag varint: maps small negative ints to small unsigned codes. *)
let write_int w n =
  let u = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
  let rec loop u =
    if u land lnot 0x7f = 0 then Buffer.add_char w (Char.chr u)
    else begin
      Buffer.add_char w (Char.chr (0x80 lor (u land 0x7f)));
      loop (u lsr 7)
    end
  in
  loop u

let read_int r =
  let rec loop shift acc =
    if shift > Sys.int_size then corrupt "varint too long";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  let u = loop 0 0 in
  (u lsr 1) lxor (-(u land 1))

let write_bool w b = Buffer.add_char w (if b then '\001' else '\000')

let read_bool r =
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> corrupt (Printf.sprintf "bad bool byte %d" b)

let write_float w f = Buffer.add_int64_le w (Int64.bits_of_float f)

let read_float r =
  if r.pos + 8 > String.length r.src then corrupt "truncated float";
  let bits = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits bits

let write_string w s =
  write_int w (String.length s);
  Buffer.add_string w s

let read_string r =
  let n = read_int r in
  if n < 0 || r.pos + n > String.length r.src then corrupt "bad string length";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let write_list w f xs =
  write_int w (List.length xs);
  List.iter (f w) xs

let read_list r f =
  let n = read_int r in
  if n < 0 then corrupt "negative list length";
  List.init n (fun _ -> f r)

let write_array w f xs =
  write_int w (Array.length xs);
  Array.iter (f w) xs

let read_array r f =
  let n = read_int r in
  if n < 0 then corrupt "negative array length";
  Array.init n (fun _ -> f r)

let write_option w f = function
  | None -> write_bool w false
  | Some x ->
    write_bool w true;
    f w x

let read_option r f = if read_bool r then Some (f r) else None

let write_value w (v : Value.t) =
  match v with
  | Unit -> write_int w 0
  | Bool b ->
    write_int w 1;
    write_bool w b
  | Int i ->
    write_int w 2;
    write_int w i
  | Float f ->
    write_int w 3;
    write_float w f
  | String s ->
    write_int w 4;
    write_string w s
  | Oid o ->
    write_int w 5;
    write_int w o

let read_value r : Value.t =
  match read_int r with
  | 0 -> Unit
  | 1 -> Bool (read_bool r)
  | 2 -> Int (read_int r)
  | 3 -> Float (read_float r)
  | 4 -> String (read_string r)
  | 5 -> Oid (read_int r)
  | t -> corrupt (Printf.sprintf "bad value tag %d" t)

let write_pair w fa fb (a, b) =
  fa w a;
  fb w b

let read_pair r fa fb =
  let a = fa r in
  let b = fb r in
  (a, b)

let to_file path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc data
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

(** Minimal self-describing binary codec.

    Used by the persistent store to save and reload databases without
    depending on [Marshal] (whose format is not stable across compiler
    versions). Integers use zig-zag varints; floats are IEEE-754 bits;
    strings and sequences are length-prefixed. *)

type writer
type reader

exception Corrupt of string
(** Raised by all [read_*] functions on malformed or truncated input. *)

val writer : unit -> writer
val contents : writer -> string

val reader : string -> reader
val at_end : reader -> bool

val write_int : writer -> int -> unit
val read_int : reader -> int

val write_bool : writer -> bool -> unit
val read_bool : reader -> bool

val write_float : writer -> float -> unit
val read_float : reader -> float

val write_string : writer -> string -> unit
val read_string : reader -> string

val write_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val read_list : reader -> (reader -> 'a) -> 'a list

val write_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val read_array : reader -> (reader -> 'a) -> 'a array

val write_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val read_option : reader -> (reader -> 'a) -> 'a option

val write_value : writer -> Value.t -> unit
val read_value : reader -> Value.t

val write_pair :
  writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> 'a * 'b -> unit

val read_pair : reader -> (reader -> 'a) -> (reader -> 'b) -> 'a * 'b

val to_file : string -> string -> unit
(** [to_file path data] writes [data] to [path] atomically (via a
    temporary file and rename). *)

val of_file : string -> string

lib/baseline/reeval.mli: Ode_event

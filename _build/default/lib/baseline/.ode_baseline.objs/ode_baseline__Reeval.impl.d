lib/baseline/reeval.ml: Array Hashtbl List Lowered Ode_event Semantics

lib/baseline/incr.mli: Ode_event

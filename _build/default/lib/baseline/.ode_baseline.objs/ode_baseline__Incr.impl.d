lib/baseline/incr.ml: Array Fun List Lowered Ode_event

open Ode_event

(* A live evaluator for one subtree, fed one symbol at a time. Composite
   nodes own child instances; sequencing nodes spawn new right-operand
   instances as their left operand occurs.

   Masked composites are anchored to the full history (see DESIGN.md): a
   global evaluator per masked node computes a derived flag each step, and
   occurrences of [Masked] leaves inside spawned instances read that flag,
   exactly as the hierarchical automata do. *)

type inst = {
  step : flags:bool array -> mask:(int -> bool) -> int -> bool;
  count : unit -> int;
}

type fa_inst = { fi_b : inst; fi_g : inst option; mutable fi_alive : bool }

(* After [strip] (below), [Masked (False, idx)] is a marker leaf reading
   derived flag [idx]; no other [Masked] nodes remain. *)
let rec instantiate (e : Lowered.t) : inst =
  match e with
  | False -> { step = (fun ~flags:_ ~mask:_ _ -> false); count = (fun () -> 1) }
  | Atom sel ->
    { step = (fun ~flags:_ ~mask:_ sym -> sel.(sym)); count = (fun () -> 1) }
  | Masked (False, idx) ->
    { step = (fun ~flags ~mask:_ _ -> flags.(idx)); count = (fun () -> 1) }
  | Masked (_, _) -> assert false
  | Or (a, b) ->
    let ia = instantiate a and ib = instantiate b in
    {
      step =
        (fun ~flags ~mask sym ->
          let ra = ia.step ~flags ~mask sym in
          let rb = ib.step ~flags ~mask sym in
          ra || rb);
      count = (fun () -> ia.count () + ib.count ());
    }
  | And (a, b) ->
    let ia = instantiate a and ib = instantiate b in
    {
      step =
        (fun ~flags ~mask sym ->
          let ra = ia.step ~flags ~mask sym in
          let rb = ib.step ~flags ~mask sym in
          ra && rb);
      count = (fun () -> ia.count () + ib.count ());
    }
  | Not a ->
    let ia = instantiate a in
    {
      step = (fun ~flags ~mask sym -> not (ia.step ~flags ~mask sym));
      count = ia.count;
    }
  | Relative (a, b) ->
    let ia = instantiate a in
    let rights = ref [] in
    {
      step =
        (fun ~flags ~mask sym ->
          let occurred =
            List.fold_left
              (fun acc ib -> ib.step ~flags ~mask sym || acc)
              false !rights
          in
          if ia.step ~flags ~mask sym then rights := instantiate b :: !rights;
          occurred);
      count =
        (fun () ->
          ia.count () + List.fold_left (fun acc i -> acc + i.count ()) 0 !rights);
    }
  | Relative_plus a ->
    let links = ref [ instantiate a ] in
    {
      step =
        (fun ~flags ~mask sym ->
          let occurred =
            List.fold_left (fun acc i -> i.step ~flags ~mask sym || acc) false !links
          in
          if occurred then links := instantiate a :: !links;
          occurred);
      count = (fun () -> List.fold_left (fun acc i -> acc + i.count ()) 0 !links);
    }
  | Relative_n (n, a) ->
    let links = ref [ (1, instantiate a) ] in
    {
      step =
        (fun ~flags ~mask sym ->
          let hits =
            List.filter_map
              (fun (level, i) -> if i.step ~flags ~mask sym then Some level else None)
              !links
          in
          let occurred = List.exists (fun level -> level >= n) hits in
          (* levels at or above n behave identically; cap to bound state *)
          let spawn_levels =
            List.sort_uniq compare (List.map (fun l -> min (l + 1) n) hits)
          in
          List.iter (fun level -> links := (level, instantiate a) :: !links) spawn_levels;
          occurred);
      count = (fun () -> List.fold_left (fun acc (_, i) -> acc + i.count ()) 0 !links);
    }
  | Prior (a, b) ->
    let ia = instantiate a and ib = instantiate b in
    let seen_a = ref false in
    {
      step =
        (fun ~flags ~mask sym ->
          let rb = ib.step ~flags ~mask sym in
          let ra = ia.step ~flags ~mask sym in
          let occurred = rb && !seen_a in
          if ra then seen_a := true;
          occurred);
      count = (fun () -> ia.count () + ib.count ());
    }
  | Prior_n (n, a) ->
    let ia = instantiate a in
    let hits = ref 0 in
    {
      step =
        (fun ~flags ~mask sym ->
          if ia.step ~flags ~mask sym then begin
            incr hits;
            !hits >= n
          end
          else false);
      count = ia.count;
    }
  | Sequence (a, b) ->
    let ia = instantiate a and ib = instantiate b in
    let prev_a = ref false in
    {
      step =
        (fun ~flags ~mask sym ->
          let rb = ib.step ~flags ~mask sym in
          let ra = ia.step ~flags ~mask sym in
          let occurred = rb && !prev_a in
          prev_a := ra;
          occurred);
      count = (fun () -> ia.count () + ib.count ());
    }
  | Sequence_n (n, a) ->
    let ia = instantiate a in
    let window = ref [] (* most recent first, at most n-1 entries *) in
    {
      step =
        (fun ~flags ~mask sym ->
          let ra = ia.step ~flags ~mask sym in
          let occurred =
            ra && List.length !window >= n - 1 && List.for_all Fun.id !window
          in
          window :=
            (if n <= 1 then []
             else ra :: List.filteri (fun i _ -> i < n - 2) !window);
          occurred);
      count = ia.count;
    }
  | Choose (n, a) ->
    let ia = instantiate a in
    let hits = ref 0 in
    {
      step =
        (fun ~flags ~mask sym ->
          if ia.step ~flags ~mask sym then begin
            incr hits;
            !hits = n
          end
          else false);
      count = ia.count;
    }
  | Every (n, a) ->
    let ia = instantiate a in
    let hits = ref 0 in
    {
      step =
        (fun ~flags ~mask sym ->
          if ia.step ~flags ~mask sym then begin
            incr hits;
            !hits mod n = 0
          end
          else false);
      count = ia.count;
    }
  | Fa (a, b, g) ->
    let ia = instantiate a in
    let live = ref [] in
    {
      step =
        (fun ~flags ~mask sym ->
          let occurred = ref false in
          List.iter
            (fun fi ->
              if fi.fi_alive then begin
                let b_occ = fi.fi_b.step ~flags ~mask sym in
                let g_occ =
                  match fi.fi_g with
                  | Some g -> g.step ~flags ~mask sym
                  | None -> false
                in
                if b_occ then begin
                  (* first F of this window; G at the same point does not
                     block (§3.4) *)
                  occurred := true;
                  fi.fi_alive <- false
                end
                else if g_occ then fi.fi_alive <- false
              end)
            !live;
          live := List.filter (fun fi -> fi.fi_alive) !live;
          if ia.step ~flags ~mask sym then
            live :=
              { fi_b = instantiate b; fi_g = Some (instantiate g); fi_alive = true }
              :: !live;
          !occurred);
      count =
        (fun () ->
          ia.count ()
          + List.fold_left
              (fun acc fi ->
                acc + fi.fi_b.count ()
                + match fi.fi_g with Some g -> g.count () | None -> 0)
              0 !live);
    }
  | Fa_abs (a, b, g) ->
    let ia = instantiate a in
    let ig = instantiate g in
    let live = ref [] in
    {
      step =
        (fun ~flags ~mask sym ->
          let g_occ = ig.step ~flags ~mask sym in
          let occurred = ref false in
          List.iter
            (fun fi ->
              if fi.fi_alive then begin
                let b_occ = fi.fi_b.step ~flags ~mask sym in
                if b_occ then begin
                  occurred := true;
                  fi.fi_alive <- false
                end
                else if g_occ then fi.fi_alive <- false
              end)
            !live;
          live := List.filter (fun fi -> fi.fi_alive) !live;
          if ia.step ~flags ~mask sym then
            live := { fi_b = instantiate b; fi_g = None; fi_alive = true } :: !live;
          !occurred);
      count =
        (fun () ->
          ia.count () + ig.count ()
          + List.fold_left (fun acc fi -> acc + fi.fi_b.count ()) 0 !live);
    }

(* Replace Masked nodes by marker leaves, collecting (mask id, body)
   levels innermost-first — the same flattening as Compile. *)
let strip expr =
  let levels = ref [] in
  let n = ref 0 in
  let rec go (e : Lowered.t) : Lowered.t =
    match e with
    | False | Atom _ -> e
    | Or (a, b) -> Or (go a, go b)
    | And (a, b) -> And (go a, go b)
    | Not a -> Not (go a)
    | Relative (a, b) -> Relative (go a, go b)
    | Relative_plus a -> Relative_plus (go a)
    | Relative_n (k, a) -> Relative_n (k, go a)
    | Prior (a, b) -> Prior (go a, go b)
    | Prior_n (k, a) -> Prior_n (k, go a)
    | Sequence (a, b) -> Sequence (go a, go b)
    | Sequence_n (k, a) -> Sequence_n (k, go a)
    | Choose (k, a) -> Choose (k, go a)
    | Every (k, a) -> Every (k, go a)
    | Fa (a, b, g) -> Fa (go a, go b, go g)
    | Fa_abs (a, b, g) -> Fa_abs (go a, go b, go g)
    | Masked (a, mask_id) ->
      let body = go a in
      let idx = !n in
      incr n;
      levels := (mask_id, body) :: !levels;
      Masked (False, idx)
  in
  let top = go expr in
  (List.rev !levels, top)

type t = {
  levels : (int * inst) array;  (* (mask id, global evaluator), innermost first *)
  top : inst;
  flags : bool array;
}

let make expr =
  let levels, top = strip expr in
  {
    levels = Array.of_list (List.map (fun (id, body) -> (id, instantiate body)) levels);
    top = instantiate top;
    flags = Array.make (List.length levels) false;
  }

let post t ~mask sym =
  Array.iteri
    (fun i (mask_id, inst) ->
      let occ = inst.step ~flags:t.flags ~mask sym in
      t.flags.(i) <- occ && mask mask_id)
    t.levels;
  t.top.step ~flags:t.flags ~mask sym

let instance_count t =
  Array.fold_left (fun acc (_, i) -> acc + i.count ()) (t.top.count ()) t.levels

let state_bytes t = 48 * instance_count t

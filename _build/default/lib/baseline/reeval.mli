(** Naive detection baseline: keep the whole event history and re-run the
    denotational evaluator after every posting.

    This is what an active database without compiled automata would do;
    per-event cost grows (at least) linearly with the history, versus the
    O(1) automaton step of {!Ode_event.Compile}. Used by benchmark E1. *)

type t

val make : Ode_event.Lowered.t -> t

val post : t -> mask:(int -> bool) -> int -> bool
(** Append a symbol, re-evaluate, and report occurrence at the new point.
    [mask] gives the current truth of each composite mask; earlier values
    are remembered, since the §3.2 semantics evaluates each mask as of its
    event's occurrence time. *)

val history_length : t -> int
val state_bytes : t -> int
(** Approximate resident size of the detector state (the stored history
    plus remembered mask values). *)

(** Operator-tree detection baseline, in the style of Snoop
    (Chakravarthy & Mishra 1991, the paper's §8 comparator).

    Each operator node keeps {e partial-match instances}: a [relative]
    node, for example, spawns a fresh evaluator of its right operand every
    time its left operand occurs. Per-event cost and memory are
    proportional to the number of live instances, which grows with the
    history for sequencing operators — the contrast with the paper's
    single-automaton, single-integer detection (benchmarks E1/E3). *)

type t

val make : Ode_event.Lowered.t -> t

val post : t -> mask:(int -> bool) -> int -> bool
(** Feed the next symbol; report whether the event occurs at this point.
    [mask] gives the current truth of each composite mask. *)

val instance_count : t -> int
(** Live partial-match instances across the whole tree. *)

val state_bytes : t -> int
(** Rough resident size: instances × a small per-instance cost. *)

open Ode_event

type t = {
  expr : Lowered.t;
  mutable history : int array;  (* capacity-doubling buffer *)
  mutable len : int;
  mask_ids : int list;
  mask_log : (int * int, bool) Hashtbl.t;  (* (mask id, position) -> value *)
}

let make expr =
  {
    expr;
    history = Array.make 16 0;
    len = 0;
    mask_ids = Lowered.mask_ids expr;
    mask_log = Hashtbl.create 16;
  }

let append t sym =
  if t.len = Array.length t.history then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.history 0 bigger 0 t.len;
    t.history <- bigger
  end;
  t.history.(t.len) <- sym;
  t.len <- t.len + 1

let post t ~mask sym =
  let pos = t.len in
  append t sym;
  List.iter (fun id -> Hashtbl.replace t.mask_log (id, pos) (mask id)) t.mask_ids;
  let oracle id p = try Hashtbl.find t.mask_log (id, p) with Not_found -> false in
  let labels =
    Semantics.eval ~oracle t.expr (Array.sub t.history 0 t.len)
  in
  labels.(pos)

let history_length t = t.len

let state_bytes t =
  (8 * Array.length t.history) + (24 * Hashtbl.length t.mask_log)

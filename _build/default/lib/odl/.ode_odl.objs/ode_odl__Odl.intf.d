lib/odl/odl.mli: Format Ode_odb

lib/odl/odl.ml: Fmt Format Hashtbl Int64 List Ode_base Ode_event Ode_lang Ode_odb Option Printf

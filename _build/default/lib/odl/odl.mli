(** ODL — an O++-style schema definition language (paper §2).

    The paper declares classes with fields, public member functions and a
    trigger section:

    {v
    class stockRoom {
      int n = 0;
    public:
      stockRoom(int start) { n = start; }
      update void deposit(item i, int q) { i.balance = i.balance + q; }
      read int size() { return n; }
    trigger:
      T1() : perpetual before withdraw && !authorized(user()) ==> tabort;
      T2() : after withdraw(i, q) && i.balance < reorder(i) ==> order(i);
    };
    v}

    [load_schema] parses such declarations and registers the classes with
    a database. Method bodies and trigger actions are written in a small
    statement language, interpreted at run time:

    - [lvalue = expr;] — assign a field of [self] or of an object held in
      a variable ([i.balance = …]);
    - [name(args);] — invoke a member function of [self] (or a registered
      database function);
    - [x.name(args);] — invoke a member function of the object in [x];
    - [tabort;] — abort the surrounding transaction;
    - [activate T(args);] / [deactivate T;] — arm or disarm a trigger of
      [self];
    - [if (expr) { … } else { … }];
    - [return expr;].

    Expressions are the mask language of {!Ode_lang.Parser}. Inside a
    trigger action, the variables in scope are the §9 {e collected}
    parameters of the trigger's event (so T2's [order(i)] sees the [i] of
    the completing [after withdraw(i, q)]), then the activation
    parameters, then [self]'s fields.

    [run_script] executes a transaction script against the database:

    {v
    new room = stockRoom(0);
    new widget = item("widgets", 100);
    begin;
    call room.deposit(widget, 5);
    commit;
    advance 3600000;
    show widget.balance;
    firings;
    v}

    Each [new]/[call]/[set] outside an explicit [begin]…[commit] runs in
    its own transaction. *)

module D = Ode_odb.Database

exception Odl_error of string * int
(** Message and byte offset into the source. *)

val load_schema : D.t -> string -> string list
(** Parse and register every class in the source; returns the class names
    in declaration order. Raises {!Odl_error} on syntax errors and
    [D.Ode_error] on semantic ones (duplicate class, bad event, …). *)

val load_schema_file : D.t -> string -> string list

val run_script : ?out:Format.formatter -> D.t -> string -> unit
(** Execute a script. [show]/[firings] print to [out] (default stdout).
    Raises {!Odl_error} on syntax errors; a [tabort] outside an explicit
    transaction aborts only the implicit statement transaction. *)

val run_script_file : ?out:Format.formatter -> D.t -> string -> unit

val error_position : string -> int -> int * int
(** Map an {!Odl_error} offset to (line, column) in the source. *)

module D = Ode_odb.Database
module Clock = Ode_odb.Clock
module Value = Ode_base.Value
module Coupling = Ode_event.Coupling
module Expr = Ode_event.Expr
module Mask = Ode_event.Mask
module P = Ode_lang.Parser

type t = {
  db : D.t;
  mutable billed : int list;
  mutable escalated : int list;
  mutable volume_reports : int;
}

let hour_ms = 3_600_000L

let set_status status db oid _args =
  D.set_field db oid "status" (Value.String status);
  if status = "placed" then
    D.set_field db oid "placed_at" (Value.Int (Int64.to_int (D.now db)));
  Value.Unit

let order_class t =
  D.define_class "order"
    ~constructor:(fun db oid _ ->
      List.iter
        (fun name -> D.activate db oid name [])
        [ "pick_check"; "ship_check"; "deliver_check"; "bill_on_ship"; "escalate" ])
  |> (fun b -> D.field b "status" (Value.String "new"))
  |> (fun b -> D.field b "placed_at" (Value.Int 0))
  |> (fun b -> D.field b "escalated" (Value.Bool false))
  |> (fun b -> D.method_ b ~kind:D.Updating "place" (set_status "placed"))
  |> (fun b -> D.method_ b ~kind:D.Updating "pick" (set_status "picked"))
  |> (fun b -> D.method_ b ~kind:D.Updating "ship" (set_status "shipped"))
  |> (fun b -> D.method_ b ~kind:D.Updating "deliver" (set_status "delivered"))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "escalate" (fun db oid _ ->
           D.set_field db oid "escalated" (Value.Bool true);
           Value.Unit))
  (* picking requires the order to be in "placed" state: a state mask *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "pick_check"
         ~event:{|before pick && status != "placed"|}
         ~action:(fun _ _ -> raise D.Tabort))
  (* shipping requires a pick to have happened: sequence enforcement with
     prior, the composite style *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "ship_check"
         ~event:"before ship & !prior(after pick, before ship)"
         ~action:(fun _ _ -> raise D.Tabort))
  |> (fun b ->
       D.trigger_str b ~perpetual:true "deliver_check"
         ~event:{|before deliver && status != "shipped"|}
         ~action:(fun _ _ -> raise D.Tabort))
  (* §7 immediate-dependent: bill only once the shipping transaction has
     committed, in the system transaction *)
  |> (fun b ->
       D.trigger b ~perpetual:true "bill_on_ship"
         ~event:
           (Coupling.expression Coupling.Immediate_dependent
              ~event:(Expr.after "ship")
              ~cond:(Mask.v_bool true))
         ~action:(fun _ ctx -> t.billed <- t.billed @ [ ctx.D.fc_oid ]))
  (* hourly sweep: escalate orders still "placed" 48 simulated hours after
     placement — the whole condition lives in the time event's mask *)
  |> fun b ->
  D.trigger_str b ~perpetual:true "escalate"
    ~event:
      {|every time(HR=1) && status == "placed" && !escalated && now() - placed_at > 172800000|}
    ~action:(fun db ctx ->
      ignore (D.call db ctx.D.fc_oid "escalate" []);
      t.escalated <- t.escalated @ [ ctx.D.fc_oid ])

let setup () =
  let db = D.create_db ~start_time:(Clock.ms_of_civil (Clock.civil 1992 6 2)) () in
  let t = { db; billed = []; escalated = []; volume_reports = 0 } in
  D.register_fun db "now" (fun db _ -> Value.Int (Int64.to_int (D.now db)));
  D.register_class db (order_class t);
  D.db_trigger_str db ~perpetual:true "audit_volume"
    ~event:{|every 10 (after create(o, cls) && cls == "order")|}
    ~action:(fun _ _ -> t.volume_reports <- t.volume_reports + 1);
  D.activate_db_trigger db "audit_volume" [];
  t

let place t =
  match
    D.with_txn t.db (fun _ ->
        let oid = D.create t.db "order" [] in
        ignore (D.call t.db oid "place" []);
        oid)
  with
  | Ok oid -> oid
  | Error `Aborted -> raise (D.Ode_error "placing an order aborted")

let step t name oid =
  D.with_txn t.db (fun _ -> ignore (D.call t.db oid name []))

let pick t oid = step t "pick" oid
let ship t oid = step t "ship" oid
let deliver t oid = step t "deliver" oid

let status t oid =
  match D.get_field t.db oid "status" with
  | Value.String s -> s
  | v -> Value.to_string v

let hours t n = D.advance_clock t.db (Int64.mul hour_ms (Int64.of_int n))

module D = Ode_odb.Database
module Clock = Ode_odb.Clock
module Value = Ode_base.Value

type t = {
  db : D.t;
  mutable stockroom : D.oid;
  mutable current_user : string;
  authorized_users : (string, unit) Hashtbl.t;
}

let day_start = Clock.ms_of_civil (Clock.civil 1992 6 2)

(* the paper's #defines *)
let day_begin = "at time(HR=9)"
let day_end = "at time(HR=17)"
let fifth_large_withdrawal = "choose 5 (after withdraw(i, q) && q > 100)"

let bump db oid field =
  D.set_field db oid field (Value.add (D.get_field db oid field) (Value.Int 1))

let item_class =
  D.define_class "item"
  |> (fun b -> D.field b "name" (Value.String ""))
  |> (fun b -> D.field b "balance" (Value.Int 0))
  |> fun b -> D.field b "eoq" (Value.Int 0)

let counter_fields =
  [ "orders"; "logs"; "reports"; "summaries"; "printlogs"; "avg_updates" ]

let stockroom_class ~activate =
  let counter_method b name field =
    D.method_ b ~kind:D.Updating name (fun db oid _ ->
        bump db oid field;
        Value.Unit)
  in
  let move sign db oid args =
    ignore oid;
    match args with
    | [ Value.Oid item; Value.Int q ] ->
      D.set_field db item "balance"
        (Value.add (D.get_field db item "balance") (Value.Int (sign * q)));
      Value.Unit
    | _ -> raise (D.Ode_error "deposit/withdraw expect (item, quantity)")
  in
  let base =
    D.define_class "stockRoom"
      ~constructor:(fun db oid _ ->
        if activate then
          List.iter
            (fun name -> D.activate db oid name [])
            [ "T1"; "T2"; "T3"; "T4"; "T5"; "T6"; "T7"; "T8" ])
    |> fun b ->
    List.fold_left (fun b f -> D.field b f (Value.Int 0)) b counter_fields
  in
  let base =
    base
    |> (fun b -> D.method_ b ~arity:2 ~kind:D.Updating "deposit" (move 1))
    |> (fun b -> D.method_ b ~arity:2 ~kind:D.Updating "withdraw" (move (-1)))
    |> (fun b -> counter_method b "order" "orders")
    |> (fun b -> counter_method b "log" "logs")
    |> (fun b -> counter_method b "report" "reports")
    |> (fun b -> counter_method b "summary" "summaries")
    |> (fun b -> counter_method b "printLog" "printlogs")
    |> fun b -> counter_method b "updateAverages" "avg_updates"
  in
  let call_self name =
   fun db (ctx : D.fire_context) -> ignore (D.call db ctx.D.fc_oid name [])
  in
  base
  (* T1: only authorized users can withdraw; otherwise abort. *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "T1"
         ~event:"before withdraw && !authorized(user())"
         ~action:(fun _ _ -> raise D.Tabort))
  (* T2: if the item quantity falls below the economic order quantity,
     place an order. Must be explicitly reactivated after it fires. *)
  |> (fun b ->
       D.trigger_str b "T2"
         ~event:"after withdraw(i, q) && i.balance < reorder(i)"
         ~action:(fun db ctx ->
           match ctx.D.fc_occurrence.args with
           | item :: _ -> ignore (D.call db ctx.D.fc_oid "order" [ item ])
           | [] -> ()))
  (* T3: at the end of the day, print a summary. *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "T3" ~event:day_end
         ~action:(call_self "summary"))
  (* T4: every transaction after the 5th within the same day is reported. *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "T4"
         ~event:
           (Printf.sprintf
              "relative(%s, prior(choose 5 (after tcommit), after tcommit) & \
               !prior(%s, after tcommit))"
              day_begin day_begin)
         ~action:(call_self "report"))
  (* T5: after every 5 operations, update the averages. *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "T5" ~event:"every 5 (after access)"
         ~action:(call_self "updateAverages"))
  (* T6: all large withdrawals are recorded. *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "T6"
         ~event:"after withdraw(i, q) && q > 100" ~action:(call_self "log"))
  (* T7: after the 5th large withdrawal in the same day, print a summary. *)
  |> (fun b ->
       D.trigger_str b ~perpetual:true "T7"
         ~event:(Printf.sprintf "fa(%s, %s, %s)" day_begin fifth_large_withdrawal day_begin)
         ~action:(call_self "summary"))
  (* T8: print the log when a deposit is immediately followed by a
     withdrawal. *)
  |> fun b ->
  D.trigger_str b ~perpetual:true "T8"
    ~event:"after deposit; before withdraw; after withdraw"
    ~action:(call_self "printLog")

let setup ?(activate = true) () =
  let db = D.create_db ~start_time:day_start () in
  let t =
    {
      db;
      stockroom = 0;
      current_user = "amy";
      authorized_users = Hashtbl.create 4;
    }
  in
  Hashtbl.replace t.authorized_users "amy" ();
  D.register_fun db "user" (fun _ _ -> Value.String t.current_user);
  D.register_fun db "authorized" (fun _ args ->
      match args with
      | [ Value.String u ] -> Value.Bool (Hashtbl.mem t.authorized_users u)
      | _ -> Value.Bool false);
  D.register_fun db "reorder" (fun db args ->
      match args with
      | [ Value.Oid item ] -> D.get_field db item "eoq"
      | _ -> raise (Ode_event.Mask.Eval_error "reorder expects an item"));
  D.register_class db item_class;
  D.register_class db (stockroom_class ~activate);
  match D.with_txn db (fun _ -> D.create db "stockRoom" []) with
  | Ok oid ->
    t.stockroom <- oid;
    t
  | Error `Aborted -> raise (D.Ode_error "stockroom setup aborted")

let new_item t ~name ~eoq ~balance =
  match
    D.with_txn t.db (fun _ ->
        let item = D.create t.db "item" [] in
        D.set_field t.db item "name" (Value.String name);
        D.set_field t.db item "eoq" (Value.Int eoq);
        D.set_field t.db item "balance" (Value.Int balance);
        item)
  with
  | Ok item -> item
  | Error `Aborted -> raise (D.Ode_error "item creation aborted")

let move t meth ~item ~qty =
  D.with_txn t.db (fun _ ->
      ignore (D.call t.db t.stockroom meth [ Value.Oid item; Value.Int qty ]))

let deposit t ~item ~qty = move t "deposit" ~item ~qty
let withdraw t ~item ~qty = move t "withdraw" ~item ~qty

let counter t name =
  if not (List.mem name counter_fields) then
    raise (D.Ode_error ("unknown stockroom counter " ^ name));
  Value.to_int (D.get_field t.db t.stockroom name)

let item_balance t item = Value.to_int (D.get_field t.db item "balance")

module D = Ode_odb.Database
module Value = Ode_base.Value

type t = { db : D.t; vessel : D.oid }

let p_drop = "pressure < low_limit"
let valve_open = "relative(after motorStart, after motorStop)"

let vessel_class =
  D.define_class "vessel" ~constructor:(fun db oid _ -> D.activate db oid "T" [])
  |> (fun b -> D.field b "low_limit" (Value.Float 1.0))
  |> (fun b -> D.field b "pressure" (Value.Float 10.0))
  |> (fun b -> D.field b "checks" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~arity:1 ~kind:D.Updating "set_pressure" (fun db oid args ->
           match args with
           | [ p ] ->
             D.set_field db oid "pressure" p;
             Value.Unit
           | _ -> assert false))
  |> (fun b -> D.method_ b ~kind:D.Updating "motorStart" (fun _ _ _ -> Value.Unit))
  |> (fun b -> D.method_ b ~kind:D.Updating "motorStop" (fun _ _ _ -> Value.Unit))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "checkPressure" (fun db oid _ ->
           D.set_field db oid "checks"
             (Value.add (D.get_field db oid "checks") (Value.Int 1));
           Value.Unit))
  |> fun b ->
  D.trigger_str b "T"
    ~event:(Printf.sprintf "relative(%s, %s)" p_drop valve_open)
    ~action:(fun db ctx -> ignore (D.call db ctx.D.fc_oid "checkPressure" []))

let setup ?(low_limit = 1.0) () =
  let db = D.create_db () in
  D.register_class db vessel_class;
  match
    D.with_txn db (fun _ ->
        let vessel = D.create db "vessel" [] in
        D.set_field db vessel "low_limit" (Value.Float low_limit);
        vessel)
  with
  | Ok vessel -> { db; vessel }
  | Error `Aborted -> raise (D.Ode_error "vessel setup aborted")

let in_txn t f =
  match D.with_txn t.db (fun _ -> f ()) with
  | Ok v -> v
  | Error `Aborted -> raise (D.Ode_error "vessel transaction aborted")

let set_pressure t p =
  in_txn t (fun () -> ignore (D.call t.db t.vessel "set_pressure" [ Value.Float p ]))

let motor_start t = in_txn t (fun () -> ignore (D.call t.db t.vessel "motorStart" []))
let motor_stop t = in_txn t (fun () -> ignore (D.call t.db t.vessel "motorStop" []))
let checks t = Value.to_int (D.get_field t.db t.vessel "checks")
let rearm t = in_txn t (fun () -> D.activate t.db t.vessel "T" [])

(** Order fulfillment — a long-running-activity workflow (the paper's §1
    cites Dayal–Hsu–Ladin's long-running activities as a motivating
    setting for triggers).

    Each [order] object moves through
    [placed → picked → shipped → delivered]; triggers enforce and react
    to the process:

    - {b pick_check}: picking an order that was never placed aborts the
      transaction (sequence enforcement with [prior]);
    - {b bill_on_ship}: when shipping commits, billing runs in a system
      transaction — the §7 immediate-dependent coupling;
    - {b escalate}: an order not shipped within 48 simulated hours of
      placement escalates (footnote-1 timeout via a periodic sweep);
    - {b audit_volume}: a database-scope trigger reports every 10th order
      placed anywhere. *)

module D = Ode_odb.Database

type t = {
  db : D.t;
  mutable billed : int list;  (** orders billed at commit (oldest first) *)
  mutable escalated : int list;
  mutable volume_reports : int;
}

val setup : unit -> t
(** Time starts at 1992-06-02 00:00; the sweep timer runs hourly. *)

val place : t -> D.oid
(** Create an order and mark it placed (own transaction). *)

val pick : t -> D.oid -> (unit, [ `Aborted ]) result
val ship : t -> D.oid -> (unit, [ `Aborted ]) result
val deliver : t -> D.oid -> (unit, [ `Aborted ]) result

val status : t -> D.oid -> string
val hours : t -> int -> unit
(** Advance the simulated clock by whole hours. *)

(** The paper's §3.5 process-control example.

    A [vessel] whose trigger watches for a {e pressure drop} (the state
    event [pressure < low_limit]) followed by a {e valve open} (the
    composite [relative(after motorStart, after motorStop)]):

    {v
    T(): relative(pDrop, valveOpen) ==> check pressure
    v} *)

module D = Ode_odb.Database

type t = { db : D.t; vessel : D.oid }

val setup : ?low_limit:float -> unit -> t
(** Creates the vessel and activates [T]. *)

val set_pressure : t -> float -> unit
val motor_start : t -> unit
val motor_stop : t -> unit
(** Each in its own transaction. *)

val checks : t -> int
(** How many times the trigger action ([check pressure]) has run. *)

val rearm : t -> unit
(** [T] is an ordinary (one-shot) trigger, as in the paper; re-arm it
    after it has fired. *)

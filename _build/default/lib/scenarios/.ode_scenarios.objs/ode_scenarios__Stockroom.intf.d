lib/scenarios/stockroom.mli: Hashtbl Ode_odb

lib/scenarios/process_control.mli: Ode_odb

lib/scenarios/fulfillment.mli: Ode_odb

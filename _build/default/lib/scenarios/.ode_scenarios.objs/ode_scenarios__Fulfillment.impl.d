lib/scenarios/fulfillment.ml: Int64 List Ode_base Ode_event Ode_lang Ode_odb

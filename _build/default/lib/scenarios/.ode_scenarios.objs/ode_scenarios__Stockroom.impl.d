lib/scenarios/stockroom.ml: Hashtbl List Ode_base Ode_event Ode_odb Printf

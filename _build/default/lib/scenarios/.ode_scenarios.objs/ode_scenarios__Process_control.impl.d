lib/scenarios/process_control.ml: Ode_base Ode_odb Printf

(** The paper's §3.5 stockroom, with all eight triggers T1–T8.

    Two classes: [item] (name, balance, economic-order-quantity) and
    [stockRoom] (deposit/withdraw plus the bookkeeping member functions
    the triggers call). The trigger events are written in O++ concrete
    syntax exactly as in the paper (with the [#define]s expanded):

    - T1: only authorized users may withdraw, else the transaction aborts
    - T2: ordering when an item falls below its economic order quantity
    - T3: a summary at the end of the day (17:00)
    - T4: every transaction after the 5th in the same day is reported
    - T5: averages updated every 5 accesses
    - T6: all large withdrawals (quantity > 100) are logged
    - T7: a summary after the 5th large withdrawal in the same day
    - T8: print the log when a deposit is immediately followed by a
      withdrawal *)

module D = Ode_odb.Database

type t = {
  db : D.t;
  mutable stockroom : D.oid;
  mutable current_user : string;
  authorized_users : (string, unit) Hashtbl.t;
}

val day_start : int64
(** 1992-06-02 00:00, the simulated first day. *)

val setup : ?activate:bool -> unit -> t
(** Build the database, register classes and functions, create the
    stockroom object. The constructor activates all eight triggers (the
    paper's [T1(); T2(); …]) unless [activate:false]. *)

val new_item : t -> name:string -> eoq:int -> balance:int -> D.oid
(** Register an item with the stockroom (own transaction). *)

val deposit : t -> item:D.oid -> qty:int -> (unit, [ `Aborted ]) result
val withdraw : t -> item:D.oid -> qty:int -> (unit, [ `Aborted ]) result
(** Each runs in its own transaction, as the paper's client code would. *)

val counter : t -> string -> int
(** Observable action counters on the stockroom object: ["orders"],
    ["logs"], ["reports"], ["summaries"], ["printlogs"], ["avg_updates"].
    Raises [Ode_error] for other names. *)

val item_balance : t -> D.oid -> int

lib/odb/history.mli: Format Ode_event

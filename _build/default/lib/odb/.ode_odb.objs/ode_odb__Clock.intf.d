lib/odb/clock.mli: Format Ode_event

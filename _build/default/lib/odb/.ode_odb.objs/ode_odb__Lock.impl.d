lib/odb/lock.ml: Fmt List

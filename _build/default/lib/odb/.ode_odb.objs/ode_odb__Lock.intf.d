lib/odb/lock.mli: Format

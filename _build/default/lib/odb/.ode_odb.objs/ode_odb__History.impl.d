lib/odb/history.ml: Fmt List Ode_event

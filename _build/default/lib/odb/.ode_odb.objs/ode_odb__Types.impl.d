lib/odb/types.ml: Format Hashtbl History Lock Ode_base Ode_event

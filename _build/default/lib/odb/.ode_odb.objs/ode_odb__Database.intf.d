lib/odb/database.mli: History Ode_base Ode_event

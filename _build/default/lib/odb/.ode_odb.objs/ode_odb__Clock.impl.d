lib/odb/clock.ml: Fmt Int64 List Ode_event Option

lib/odb/database.ml: Array Clock Hashtbl History Int64 List Lock Ode_base Ode_event Ode_lang Option Printf Types

type t = Free | Shared of int list | Exclusive of int

type request = Read | Write

let compatible lock ~holder request =
  match lock, request with
  | Free, _ -> true
  | Shared _, Read -> true
  | Shared [ h ], Write -> h = holder (* upgrade by sole holder *)
  | Shared _, Write -> false
  | Exclusive h, _ -> h = holder

let acquire lock ~holder request =
  if not (compatible lock ~holder request) then None
  else
    Some
      (match lock, request with
      | Free, Read -> Shared [ holder ]
      | Free, Write -> Exclusive holder
      | Shared hs, Read -> if List.mem holder hs then lock else Shared (holder :: hs)
      | Shared _, Write -> Exclusive holder
      | Exclusive _, _ -> lock)

let release lock ~holder =
  match lock with
  | Free -> Free
  | Exclusive h -> if h = holder then Free else lock
  | Shared hs -> (
    match List.filter (fun h -> h <> holder) hs with
    | [] -> Free
    | hs -> Shared hs)

let holders = function Free -> [] | Shared hs -> hs | Exclusive h -> [ h ]

let pp ppf = function
  | Free -> Fmt.string ppf "free"
  | Shared hs -> Fmt.pf ppf "shared(%a)" Fmt.(list ~sep:(any ",") int) hs
  | Exclusive h -> Fmt.pf ppf "exclusive(%d)" h

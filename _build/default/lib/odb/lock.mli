(** Object-level locks (paper §6 assumes object-level locking).

    Strict two-phase: locks are taken as objects are accessed and released
    only at commit/abort. There is no blocking in this single-threaded
    simulation — an incompatible request fails immediately and the caller
    is expected to abort (a simple deadlock-free policy). *)

type t = Free | Shared of int list  (** holder transaction ids *) | Exclusive of int

type request = Read | Write

val compatible : t -> holder:int -> request -> bool
(** Would [holder] be granted [request]? Re-entrant requests and
    shared-to-exclusive upgrades by a sole holder are granted. *)

val acquire : t -> holder:int -> request -> t option
(** The new lock state, or [None] when incompatible. *)

val release : t -> holder:int -> t
val holders : t -> int list
val pp : Format.formatter -> t -> unit

(** Simulated civil time for O++ time events.

    Instants are milliseconds since 1970-01-01 00:00:00.000 in the
    proleptic Gregorian calendar (no leap seconds, no time zones) — the
    paper's [time(YR=…, MON=…, DAY=…, HR=…, M=…, SEC=…, MS=…)] format
    maps directly onto this.

    [at] patterns follow the convention: fields {e below} the
    least-significant specified field are taken as 0 (so
    [at time(HR=9)] is 09:00:00.000), while unspecified fields {e above}
    it are wildcards, giving recurrence ([at time(HR=9)] fires daily). *)

type civil = {
  c_year : int;
  c_mon : int;  (** 1..12 *)
  c_day : int;  (** 1..31 *)
  c_hr : int;
  c_min : int;
  c_sec : int;
  c_ms : int;
}

val civil_of_ms : int64 -> civil
val ms_of_civil : civil -> int64
val civil : ?hr:int -> ?min:int -> ?sec:int -> ?ms:int -> int -> int -> int -> civil
(** [civil ?hr ?min ?sec ?ms year mon day]; time components default 0. *)

val is_leap : int -> bool
val days_in_month : int -> int -> int

val next_match : Ode_event.Symbol.time_pattern -> after:int64 -> int64 option
(** Smallest instant strictly greater than [after] matching the pattern,
    or [None] if there is none within the search horizon (10 years) or the
    pattern specifies no field at all. *)

val matches : Ode_event.Symbol.time_pattern -> int64 -> bool
(** Does this instant match the pattern (with the below-LSF = 0
    convention)? *)

val pp_ms : Format.formatter -> int64 -> unit
(** Render as ["1992-06-02 09:00:00.000"]. *)

module Symbol = Ode_event.Symbol

type civil = {
  c_year : int;
  c_mon : int;
  c_day : int;
  c_hr : int;
  c_min : int;
  c_sec : int;
  c_ms : int;
}

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month year mon =
  match mon with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap year then 29 else 28
  | _ -> invalid_arg "Clock.days_in_month"

(* Howard Hinnant's days-from-civil algorithm (public domain). *)
let days_from_civil ~year ~mon ~day =
  let y = if mon <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (mon + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let ms_per_day = 86_400_000L

(* Euclidean division for Int64 (round toward negative infinity). *)
let ediv a b =
  let q = Int64.div a b in
  if Int64.rem a b < 0L then Int64.pred q else q

let emod a b = Int64.sub a (Int64.mul (ediv a b) b)

let civil_of_ms ms =
  let days = Int64.to_int (ediv ms ms_per_day) in
  let rem = Int64.to_int (emod ms ms_per_day) in
  let year, mon, day = civil_from_days days in
  {
    c_year = year;
    c_mon = mon;
    c_day = day;
    c_hr = rem / 3_600_000;
    c_min = rem / 60_000 mod 60;
    c_sec = rem / 1_000 mod 60;
    c_ms = rem mod 1_000;
  }

let ms_of_civil c =
  let days = days_from_civil ~year:c.c_year ~mon:c.c_mon ~day:c.c_day in
  let rem =
    (c.c_hr * 3_600_000) + (c.c_min * 60_000) + (c.c_sec * 1_000) + c.c_ms
  in
  Int64.add (Int64.mul (Int64.of_int days) ms_per_day) (Int64.of_int rem)

let civil ?(hr = 0) ?(min = 0) ?(sec = 0) ?(ms = 0) year mon day =
  { c_year = year; c_mon = mon; c_day = day; c_hr = hr; c_min = min; c_sec = sec; c_ms = ms }

(* Normalize a pattern: fields below the least-significant specified field
   become 0. Field order: year > mon > day > hr > min > sec > ms. *)
let normalize (p : Symbol.time_pattern) : Symbol.time_pattern option =
  let fields = [ p.year; p.mon; p.day; p.hr; p.min; p.sec; p.ms ] in
  match
    List.fold_left
      (fun (idx, last) f -> (idx + 1, match f with Some _ -> idx | None -> last))
      (0, -1) fields
  with
  | _, -1 -> None (* no field specified *)
  | _, last ->
    let fill idx f = if idx > last then Some (Option.value f ~default:0) else f in
    Some
      {
        year = p.year;
        mon = fill 1 p.mon;
        day = fill 2 p.day;
        hr = fill 3 p.hr;
        min = fill 4 p.min;
        sec = fill 5 p.sec;
        ms = fill 6 p.ms;
      }

let matches p ms =
  match normalize p with
  | None -> false
  | Some p ->
    let c = civil_of_ms ms in
    let ok field value = match field with None -> true | Some v -> v = value in
    ok p.year c.c_year && ok p.mon c.c_mon && ok p.day c.c_day && ok p.hr c.c_hr
    && ok p.min c.c_min && ok p.sec c.c_sec && ok p.ms c.c_ms

(* Candidate values of a field: the fixed value, or the whole range. *)
let candidates field lo hi =
  match field with Some v -> [ v ] | None -> List.init (hi - lo + 1) (fun i -> lo + i)

let next_match p ~after =
  match normalize p with
  | None -> None
  | Some p ->
    let start = civil_of_ms (Int64.succ after) in
    let start_day = days_from_civil ~year:start.c_year ~mon:start.c_mon ~day:start.c_day in
    let horizon = start_day + 3660 (* ~10 years *) in
    let day_matches year mon day =
      (match p.year with None -> true | Some v -> v = year)
      && (match p.mon with None -> true | Some v -> v = mon)
      && (match p.day with None -> true | Some v -> v = day)
      && day <= days_in_month year mon
    in
    (* Smallest time-of-day (in ms) matching the hr/min/sec/ms pattern and
       >= bound; None if no such time today. *)
    let first_time_of_day ~bound =
      let best = ref None in
      List.iter
        (fun hr ->
          List.iter
            (fun min ->
              List.iter
                (fun sec ->
                  (* after [normalize], ms is always pinned *)
                  List.iter
                    (fun msf ->
                      let t = (hr * 3_600_000) + (min * 60_000) + (sec * 1_000) + msf in
                      if t >= bound then
                        match !best with
                        | Some b when b <= t -> ()
                        | _ -> best := Some t)
                    (candidates p.ms 0 999))
                (candidates p.sec 0 59))
            (candidates p.min 0 59))
        (candidates p.hr 0 23);
      !best
    in
    let rec scan day =
      if day > horizon then None
      else begin
        let year, mon, dom = civil_from_days day in
        let bound =
          if day = start_day then
            (start.c_hr * 3_600_000) + (start.c_min * 60_000) + (start.c_sec * 1_000)
            + start.c_ms
          else 0
        in
        if day_matches year mon dom then
          match first_time_of_day ~bound with
          | Some t ->
            Some (Int64.add (Int64.mul (Int64.of_int day) ms_per_day) (Int64.of_int t))
          | None -> scan (day + 1)
        else scan (day + 1)
      end
    in
    scan start_day

let pp_ms ppf ms =
  let c = civil_of_ms ms in
  Fmt.pf ppf "%04d-%02d-%02d %02d:%02d:%02d.%03d" c.c_year c.c_mon c.c_day c.c_hr
    c.c_min c.c_sec c.c_ms

(** Per-match parameter provenance — the deep version of the paper's §9
    future-work item.

    {!Detector.collect} records each formal's {e latest} binding: one
    word per name, in keeping with §5's state budget. This module keeps
    the {e full} provenance instead: every way the composite event can be
    matched at a point yields its own binding environment, gathered from
    the constituent logical events of that particular match (the design
    later adopted by SASE/Cayuga-style CEP engines).

    The price is exactly what §5 warns about: live partial matches grow
    with the history, so state is unbounded. [max_matches] caps the
    partial-match sets (oldest kept); beyond it provenance is best-effort
    and the boolean answer may differ from {!Detector.post}. Use this
    when actions genuinely need all witness bindings; use the automaton
    everywhere else. *)

type binding = (string * Ode_base.Value.t) list
(** One match's environment; later constituents shadow earlier ones when
    a name repeats. *)

type t

type context =
  | Unrestricted
      (** keep every partial match — the paper's set semantics, where all
          witnesses of an occurrence coexist *)
  | Recent
      (** a new initiator replaces older pending windows of the same
          operator (Snoop's "recent" parameter context) *)
  | Chronicle
      (** initiators are consumed oldest-first: when a window completes,
          it and every older pending window are discarded (Snoop's
          "chronicle" pairing) *)

val make : ?max_matches:int -> ?context:context -> Expr.t -> t
(** [max_matches] (default 64) caps every per-operator match set and
    partial-match instance pool. [context] (default [Unrestricted])
    selects the consumption policy for window-opening operators
    ([relative], [fa], [faAbs]). Raises [Invalid_argument] on invalid
    expressions.

    Consumption contexts are {e not} in the 1992 paper — its set
    semantics is [Unrestricted] — but they are how its §8 comparator
    (Snoop) and later CEP engines bound partial-match growth, so they are
    offered here for the provenance engine only. The automaton detector
    is untouched: its semantics stays the paper's. *)

val post : t -> env:Mask.env -> Symbol.occurrence -> binding list
(** Feed an occurrence: the returned list has one entry per way the
    composite event occurs at this point ([] = it does not occur).
    Occurrences matching none of the expression's logical events are
    skipped, as in {!Detector.post}. Composite masks are evaluated
    against [env] at the point of occurrence. *)

val instance_count : t -> int
(** Live partial matches, for memory accounting. *)

(** Disjoint-alphabet construction (paper §5).

    Finite-automaton detection needs the logical events of a trigger to be
    pairwise disjoint. When several logical events share a basic event but
    carry different (possibly overlapping) masks, the paper rewrites them
    into Boolean combinations that {e are} disjoint. This module performs
    that rewriting: for each basic-event kind with guards [g1..gk] it
    creates one {e atom} per satisfiable truth assignment with at least
    one true guard (up to [2^k - 1] atoms — the combinatorial explosion
    the paper accepts), and each original logical event becomes the union
    of the atoms in which its guard is true. *)

type guard = {
  g_formals : Expr.formal list;
  g_mask : Mask.t option;
}
(** What distinguishes logical events over the same basic event. A guard
    with formals also constrains the occurrence's arity (overload
    disambiguation). *)

type t = {
  keys : Symbol.basic array;  (** distinct basic-event kinds *)
  guards : guard array array;  (** guards, per key *)
  atoms : (int * int) array;
      (** symbol -> (key index, guard truth-assignment bits) *)
  atom_of : (int, int) Hashtbl.t;  (** (key, bits) encoded -> symbol *)
}

val n_symbols : t -> int
(** Atoms plus one trailing "other" symbol; this is the DFA alphabet size. *)

val other : t -> int
(** The symbol fed to automata when an occurrence matches no logical event
    of this trigger. *)

val build : Expr.t -> t * Lowered.t * Mask.t array
(** [build expr] computes the disjoint alphabet of [expr], the lowered
    expression over it, and the table of composite masks referenced by
    [Lowered.Masked] indices. Raises [Invalid_argument] if [expr] fails
    {!Expr.validate} or would need more than {!max_atoms} atoms. *)

val max_atoms : int ref
(** Safety cap on the §5 blowup (default 4096). *)

val classify :
  t -> env:Mask.env -> Symbol.occurrence -> int
(** Map an occurrence to its alphabet symbol by evaluating each guard of
    the occurrence's basic-event kind. [env] supplies object-field,
    dereference and function bindings; event parameters are bound from the
    occurrence's arguments by position using each guard's own formals.
    Mask evaluation errors propagate as {!Mask.Eval_error}. *)

val guard_matches : env:Mask.env -> Symbol.occurrence -> guard -> bool
(** Does the occurrence satisfy this guard (arity and mask, with the
    guard's formals bound to the occurrence's arguments)? *)

val atom_lookup : t -> key:int -> bits:int -> int option
(** The symbol for a (key, guard-truth-assignment) pair, if that
    assignment is possible. *)

val guard_selector : t -> key:int -> guard_bit:int -> bool array
(** The atom-set selector (length {!n_symbols}) of one logical event:
    true at every atom of [key] whose assignment has bit [guard_bit]
    set. *)

val pp : Format.formatter -> t -> unit

(** Regular expressions over the dense symbol alphabet.

    Section 4 of the paper states that the event-specification language is
    exactly as expressive as regular expressions over logical events. This
    module provides the regex side of that equivalence: construction,
    compilation to NFAs, and the ε-analysis used when translating a regex
    back into an event expression (see {!Translate}). *)

type t =
  | Empty  (** ∅ *)
  | Eps  (** {ε} *)
  | Sym of int
  | Any  (** any single symbol *)
  | Alt of t * t
  | Seq of t * t
  | Star of t

val nullable : t -> bool
(** Does the language contain the empty word? *)

val strip_eps : t -> t
(** [strip_eps r] denotes [L(r) \ {ε}]. The result never uses [Eps] or
    [Star] at a position that would contribute ε (stars are rewritten with
    [Seq]/[Alt] of their ε-free bodies). *)

val to_nfa : m:int -> t -> Nfa.t
(** Thompson construction. Symbols must be [< m]. *)

val to_dfa : m:int -> t -> Dfa.t
(** [determinize ∘ to_nfa], minimized. *)

val of_dfa : Dfa.t -> t
(** State elimination (Kleene's construction): a regular expression for
    the DFA's language. Together with {!Translate.of_regex} and
    {!Compile}, this closes the §4 equivalence loop
    expression → automaton → regex → expression constructively. *)

val simplify : t -> t
(** Light algebraic cleanup ([r|∅ = r], [r·ε = r], [∅* = ε], …); applied
    internally by {!of_dfa}. *)

val pp : Format.formatter -> t -> unit

val size : t -> int
(** Number of AST nodes, for benchmarks. *)

type t =
  | False
  | Atom of bool array
  | Or of t * t
  | And of t * t
  | Not of t
  | Relative of t * t
  | Relative_plus of t
  | Relative_n of int * t
  | Prior of t * t
  | Prior_n of int * t
  | Sequence of t * t
  | Sequence_n of int * t
  | Choose of int * t
  | Every of int * t
  | Fa of t * t * t
  | Fa_abs of t * t * t
  | Masked of t * int

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | False | Atom _ -> acc
  | Not e1 | Relative_plus e1 | Relative_n (_, e1) | Prior_n (_, e1)
  | Sequence_n (_, e1) | Choose (_, e1) | Every (_, e1) | Masked (e1, _) ->
    fold f acc e1
  | Or (e1, e2) | And (e1, e2) | Relative (e1, e2) | Prior (e1, e2)
  | Sequence (e1, e2) ->
    fold f (fold f acc e1) e2
  | Fa (e1, e2, e3) | Fa_abs (e1, e2, e3) ->
    fold f (fold f (fold f acc e1) e2) e3

let alphabet_size e =
  fold
    (fun acc n -> match n with Atom sel -> Some (Array.length sel) | _ -> acc)
    None e

let mask_ids e =
  let ids =
    fold (fun acc n -> match n with Masked (_, id) -> id :: acc | _ -> acc) [] e
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun id ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    (List.rev ids)

let size e = fold (fun acc _ -> acc + 1) 0 e

let rec pp ppf = function
  | False -> Fmt.string ppf "false"
  | Atom sel ->
    let syms = ref [] in
    Array.iteri (fun c b -> if b then syms := c :: !syms) sel;
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (List.rev !syms)
  | Or (e1, e2) -> Fmt.pf ppf "(%a | %a)" pp e1 pp e2
  | And (e1, e2) -> Fmt.pf ppf "(%a & %a)" pp e1 pp e2
  | Not e -> Fmt.pf ppf "!%a" pp e
  | Relative (e1, e2) -> Fmt.pf ppf "relative(%a, %a)" pp e1 pp e2
  | Relative_plus e -> Fmt.pf ppf "relative+(%a)" pp e
  | Relative_n (n, e) -> Fmt.pf ppf "relative %d (%a)" n pp e
  | Prior (e1, e2) -> Fmt.pf ppf "prior(%a, %a)" pp e1 pp e2
  | Prior_n (n, e) -> Fmt.pf ppf "prior %d (%a)" n pp e
  | Sequence (e1, e2) -> Fmt.pf ppf "sequence(%a, %a)" pp e1 pp e2
  | Sequence_n (n, e) -> Fmt.pf ppf "sequence %d (%a)" n pp e
  | Choose (n, e) -> Fmt.pf ppf "choose %d (%a)" n pp e
  | Every (n, e) -> Fmt.pf ppf "every %d (%a)" n pp e
  | Fa (e, f, g) -> Fmt.pf ppf "fa(%a, %a, %a)" pp e pp f pp g
  | Fa_abs (e, f, g) -> Fmt.pf ppf "faAbs(%a, %a, %a)" pp e pp f pp g
  | Masked (e, id) -> Fmt.pf ppf "(%a && m%d)" pp e id

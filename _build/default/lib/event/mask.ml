module Value = Ode_base.Value

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Const of Value.t
  | Var of string
  | Get of t * string
  | Call of string * t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | Neg of t

type env = {
  var : string -> Value.t option;
  deref : int -> string -> Value.t option;
  call : string -> Value.t list -> Value.t;
}

exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let empty_env =
  {
    var = (fun _ -> None);
    deref = (fun _ _ -> None);
    call = (fun name _ -> error "unknown function %s" name);
  }

let apply_cmp op v1 v2 =
  let c = Value.compare v1 v2 in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let apply_arith op v1 v2 =
  match op with
  | Add -> Value.add v1 v2
  | Sub -> Value.sub v1 v2
  | Mul -> Value.mul v1 v2
  | Div -> Value.div v1 v2

let rec eval env = function
  | Const v -> v
  | Var name -> (
    match env.var name with
    | Some v -> v
    | None -> error "unbound variable %s" name)
  | Get (e, field) -> (
    match eval env e with
    | Value.Oid oid -> (
      match env.deref oid field with
      | Some v -> v
      | None -> error "object @%d has no field %s" oid field)
    | v -> error "field access .%s on non-object %s" field (Value.to_string v))
  | Call (name, args) -> env.call name (List.map (eval env) args)
  | Not e -> Value.Bool (not (eval_bool_exn env e))
  | And (e1, e2) -> Value.Bool (eval_bool_exn env e1 && eval_bool_exn env e2)
  | Or (e1, e2) -> Value.Bool (eval_bool_exn env e1 || eval_bool_exn env e2)
  | Cmp (op, e1, e2) -> Value.Bool (apply_cmp op (eval env e1) (eval env e2))
  | Arith (op, e1, e2) -> (
    try apply_arith op (eval env e1) (eval env e2)
    with Value.Type_error msg -> error "%s" msg)
  | Neg e -> (
    try Value.neg (eval env e) with Value.Type_error msg -> error "%s" msg)

and eval_bool_exn env e =
  match eval env e with
  | Value.Bool b -> b
  | v -> error "expected bool, got %s" (Value.to_string v)

let eval_bool = eval_bool_exn
let equal (m1 : t) (m2 : t) = m1 = m2
let compare (m1 : t) (m2 : t) = Stdlib.compare m1 m2

let vars mask =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        out := name :: !out
      end
    | Get (e, _) | Not e | Neg e -> go e
    | Call (_, args) -> List.iter go args
    | And (e1, e2) | Or (e1, e2) | Cmp (_, e1, e2) | Arith (_, e1, e2) ->
      go e1;
      go e2
  in
  go mask;
  List.rev !out

let cmp_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

(* Precedence climbing: || < && < comparison < additive < multiplicative
   < unary < atoms. *)
let rec pp_prec prec ppf mask =
  let level = function
    | Or _ -> 1
    | And _ -> 2
    | Cmp _ -> 3
    | Arith ((Add | Sub), _, _) -> 4
    | Arith ((Mul | Div), _, _) -> 5
    | Not _ | Neg _ -> 6
    | Const _ | Var _ | Get _ | Call _ -> 7
  in
  let this = level mask in
  let atom ppf = function
    | Const v -> Value.pp ppf v
    | Var name -> Fmt.string ppf name
    | Get (e, field) -> Fmt.pf ppf "%a.%s" (pp_prec 7) e field
    | Call (name, args) ->
      Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") (pp_prec 0)) args
    | Not e -> Fmt.pf ppf "!%a" (pp_prec 6) e
    | Neg e -> Fmt.pf ppf "-%a" (pp_prec 6) e
    | Or (e1, e2) -> Fmt.pf ppf "%a || %a" (pp_prec 1) e1 (pp_prec 2) e2
    | And (e1, e2) -> Fmt.pf ppf "%a && %a" (pp_prec 2) e1 (pp_prec 3) e2
    | Cmp (op, e1, e2) ->
      Fmt.pf ppf "%a %s %a" (pp_prec 4) e1 (cmp_name op) (pp_prec 4) e2
    | Arith (((Add | Sub) as op), e1, e2) ->
      Fmt.pf ppf "%a %s %a" (pp_prec 4) e1 (arith_name op) (pp_prec 5) e2
    | Arith (op, e1, e2) ->
      Fmt.pf ppf "%a %s %a" (pp_prec 5) e1 (arith_name op) (pp_prec 6) e2
  in
  if this < prec then Fmt.pf ppf "(%a)" atom mask else atom ppf mask

let pp = pp_prec 0

let v_int i = Const (Value.Int i)
let v_float f = Const (Value.Float f)
let v_bool b = Const (Value.Bool b)
let v_str s = Const (Value.String s)
let var name = Var name
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ( =% ) a b = Cmp (Eq, a, b)
let ( <>% ) a b = Cmp (Ne, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)
let not_ a = Not a

let lift (a : Dfa.t) ~tbegin ~tcommit ~tabort =
  let m = a.Dfa.m in
  for s = 0 to m - 1 do
    let count =
      (if tbegin s then 1 else 0)
      + (if tcommit s then 1 else 0)
      + if tabort s then 1 else 0
    in
    if count > 1 then invalid_arg "Committed.lift: overlapping classifications"
  done;
  let index : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let rows = ref [] in
  let count = ref 0 in
  let rec visit (q, p) =
    match Hashtbl.find_opt index (q, p) with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.add index (q, p) i;
      let row = Array.make m 0 in
      rows := (i, (q, p), row) :: !rows;
      for s = 0 to m - 1 do
        let target =
          if tcommit s then
            let r = a.delta.(q).(s) in
            (r, r)
          else if tabort s then (p, p)
          else if tbegin s then (a.delta.(q).(s), q)
          else (a.delta.(q).(s), p)
        in
        row.(s) <- visit target
      done;
      i
  in
  let start = visit (a.start, a.start) in
  let n = !count in
  let accept = Array.make n false in
  let delta = Array.make n [||] in
  List.iter
    (fun (i, (q, _), row) ->
      accept.(i) <- a.accept.(q);
      delta.(i) <- row)
    !rows;
  { Dfa.m; start; accept; delta }

let project history ~tbegin ~tcommit ~tabort =
  let out = ref [] in
  (* [pending] buffers the current open transaction (reversed); on commit
     it is flushed, on abort it is dropped. Symbols outside a transaction
     go straight out. *)
  let pending = ref None in
  Array.iter
    (fun s ->
      match !pending with
      | None ->
        if tbegin s then pending := Some [ s ]
        else if tabort s then () (* stray abort: nothing to erase *)
        else out := s :: !out
      | Some buf ->
        if tabort s then pending := None
        else if tcommit s then begin
          out := s :: List.rev_append (List.rev buf) !out;
          pending := None
        end
        else if tbegin s then begin
          (* nested begins are not produced by the database layer; treat
             the previous transaction as implicitly closed-committed *)
          out := List.rev_append (List.rev buf) !out;
          pending := Some [ s ]
        end
        else pending := Some (s :: buf))
    history;
  let tail = match !pending with None -> [] | Some buf -> buf in
  Array.of_list (List.rev (List.rev_append (List.rev tail) !out))

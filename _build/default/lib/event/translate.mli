(** Regular expressions → event expressions (paper §4).

    Section 4 claims the event language is exactly as expressive as
    regular expressions over logical events. One direction is witnessed by
    {!Compile} (every event expression becomes a DFA); this module is the
    other: any regular language not containing the empty word is the
    language of an event expression. *)

val of_regex : m:int -> Regex.t -> Lowered.t option
(** [of_regex ~m r] is an event expression [e] with [L(e) = L(r)], or
    [None] when [L(r)] contains ε (event languages are ε-free: an event
    needs an occurrence point). The result uses only union, intersection,
    complement, [relative], [relative+] and [prior] — the paper's core. *)

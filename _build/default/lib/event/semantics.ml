type oracle = int -> int -> bool

let const_oracle b : oracle = fun _ _ -> b

(* The evaluator works on suffixes H[from..]: [relative] and friends
   truncate the history, so sub-expressions are evaluated against
   suffixes. Results are memoized per (node, from) — nodes are numbered by
   a pre-pass so the memo key is a pair of ints. *)

type node = {
  id : int;
  shape : shape;
}

and shape =
  | S_false
  | S_atom of bool array
  | S_or of node * node
  | S_and of node * node
  | S_not of node
  | S_relative of node * node
  | S_relative_plus of node
  | S_relative_n of int * node
  | S_prior of node * node
  | S_prior_n of int * node
  | S_sequence of node * node
  | S_sequence_n of int * node
  | S_choose of int * node
  | S_every of int * node
  | S_fa of node * node * node
  | S_fa_abs of node * node * node
  | S_masked of node * int

let number expr =
  let count = ref 0 in
  let fresh shape =
    let id = !count in
    incr count;
    { id; shape }
  in
  let rec go (e : Lowered.t) =
    match e with
    | False -> fresh S_false
    | Atom sel -> fresh (S_atom sel)
    | Or (a, b) ->
      let a = go a in
      let b = go b in
      fresh (S_or (a, b))
    | And (a, b) ->
      let a = go a in
      let b = go b in
      fresh (S_and (a, b))
    | Not a -> fresh (S_not (go a))
    | Relative (a, b) ->
      let a = go a in
      let b = go b in
      fresh (S_relative (a, b))
    | Relative_plus a -> fresh (S_relative_plus (go a))
    | Relative_n (n, a) -> fresh (S_relative_n (n, go a))
    | Prior (a, b) ->
      let a = go a in
      let b = go b in
      fresh (S_prior (a, b))
    | Prior_n (n, a) -> fresh (S_prior_n (n, go a))
    | Sequence (a, b) ->
      let a = go a in
      let b = go b in
      fresh (S_sequence (a, b))
    | Sequence_n (n, a) -> fresh (S_sequence_n (n, go a))
    | Choose (n, a) -> fresh (S_choose (n, go a))
    | Every (n, a) -> fresh (S_every (n, go a))
    | Fa (a, b, g) ->
      let a = go a in
      let b = go b in
      let g = go g in
      fresh (S_fa (a, b, g))
    | Fa_abs (a, b, g) ->
      let a = go a in
      let b = go b in
      let g = go g in
      fresh (S_fa_abs (a, b, g))
    | Masked (a, id) -> fresh (S_masked (go a, id))
  in
  go expr

let eval ?(oracle = const_oracle true) expr history =
  let n = Array.length history in
  let root = number expr in
  let memo : (int * int, bool array) Hashtbl.t = Hashtbl.create 64 in
  let rec eval_at node from : bool array =
    match Hashtbl.find_opt memo (node.id, from) with
    | Some res -> res
    | None ->
      let len = n - from in
      let res = Array.make (max len 0) false in
      (match node.shape with
      | S_false -> ()
      | S_atom sel ->
        for i = 0 to len - 1 do
          res.(i) <- sel.(history.(from + i))
        done
      | S_or (a, b) ->
        let ra = eval_at a from and rb = eval_at b from in
        for i = 0 to len - 1 do
          res.(i) <- ra.(i) || rb.(i)
        done
      | S_and (a, b) ->
        let ra = eval_at a from and rb = eval_at b from in
        for i = 0 to len - 1 do
          res.(i) <- ra.(i) && rb.(i)
        done
      | S_not a ->
        let ra = eval_at a from in
        for i = 0 to len - 1 do
          res.(i) <- not ra.(i)
        done
      | S_relative (a, b) ->
        let ra = eval_at a from in
        for i = 0 to len - 1 do
          if ra.(i) then begin
            let rb = eval_at b (from + i + 1) in
            Array.iteri (fun j occ -> if occ then res.(i + 1 + j) <- true) rb
          end
        done
      | S_relative_plus a ->
        let seed = eval_at a from in
        Array.blit seed 0 res 0 len;
        for i = 0 to len - 1 do
          if res.(i) then begin
            let occ = eval_at a (from + i + 1) in
            Array.iteri (fun j b -> if b then res.(i + 1 + j) <- true) occ
          end
        done
      | S_relative_n (count, a) ->
        (* Chains of length >= count: [count-1] exact links, then closure. *)
        let cur = ref (Array.copy (eval_at a from)) in
        for _level = 2 to count do
          let next = Array.make len false in
          Array.iteri
            (fun i reached ->
              if reached then begin
                let occ = eval_at a (from + i + 1) in
                Array.iteri (fun j b -> if b then next.(i + 1 + j) <- true) occ
              end)
            !cur;
          cur := next
        done;
        Array.blit !cur 0 res 0 len;
        for i = 0 to len - 1 do
          if res.(i) then begin
            let occ = eval_at a (from + i + 1) in
            Array.iteri (fun j b -> if b then res.(i + 1 + j) <- true) occ
          end
        done
      | S_prior (a, b) ->
        let ra = eval_at a from and rb = eval_at b from in
        let seen_a = ref false in
        for i = 0 to len - 1 do
          res.(i) <- rb.(i) && !seen_a;
          if ra.(i) then seen_a := true
        done
      | S_prior_n (count, a) ->
        let ra = eval_at a from in
        let occurrences_so_far = ref 0 in
        for i = 0 to len - 1 do
          if ra.(i) then begin
            incr occurrences_so_far;
            res.(i) <- !occurrences_so_far >= count
          end
        done
      | S_sequence (a, b) ->
        let ra = eval_at a from and rb = eval_at b from in
        for i = 1 to len - 1 do
          res.(i) <- rb.(i) && ra.(i - 1)
        done
      | S_sequence_n (count, a) ->
        let ra = eval_at a from in
        for i = count - 1 to len - 1 do
          let ok = ref true in
          for k = 0 to count - 1 do
            if not ra.(i - k) then ok := false
          done;
          res.(i) <- !ok
        done
      | S_choose (count, a) ->
        let ra = eval_at a from in
        let occurrences_so_far = ref 0 in
        for i = 0 to len - 1 do
          if ra.(i) then begin
            incr occurrences_so_far;
            res.(i) <- !occurrences_so_far = count
          end
        done
      | S_every (count, a) ->
        let ra = eval_at a from in
        let occurrences_so_far = ref 0 in
        for i = 0 to len - 1 do
          if ra.(i) then begin
            incr occurrences_so_far;
            res.(i) <- !occurrences_so_far mod count = 0
          end
        done
      | S_fa (a, b, g) ->
        let ra = eval_at a from in
        for i = 0 to len - 1 do
          if ra.(i) then begin
            let rb = eval_at b (from + i + 1) in
            let rg = eval_at g (from + i + 1) in
            let sub_len = len - i - 1 in
            let j = ref 0 in
            let first_f = ref (-1) in
            while !first_f < 0 && !j < sub_len do
              if rb.(!j) then first_f := !j;
              incr j
            done;
            if !first_f >= 0 then begin
              let blocked = ref false in
              for k = 0 to !first_f - 1 do
                if rg.(k) then blocked := true
              done;
              if not !blocked then res.(i + 1 + !first_f) <- true
            end
          end
        done
      | S_fa_abs (a, b, g) ->
        let ra = eval_at a from in
        let rg = eval_at g from in
        for i = 0 to len - 1 do
          if ra.(i) then begin
            let rb = eval_at b (from + i + 1) in
            let sub_len = len - i - 1 in
            let j = ref 0 in
            let first_f = ref (-1) in
            while !first_f < 0 && !j < sub_len do
              if rb.(!j) then first_f := !j;
              incr j
            done;
            if !first_f >= 0 then begin
              (* points strictly between i and p = i+1+first_f *)
              let blocked = ref false in
              for k = i + 1 to i + !first_f do
                if rg.(k) then blocked := true
              done;
              if not !blocked then res.(i + 1 + !first_f) <- true
            end
          end
        done
      | S_masked (a, id) ->
        (* A masked composite is a standalone derived event: it is
           detected against the object's full history (that is what lets
           §5 share one automaton per class), then filtered by the mask at
           the point of occurrence. Truncating operators around it shift
           which points are considered, not how it is detected. *)
        let ra = eval_at a 0 in
        for i = 0 to len - 1 do
          res.(i) <- ra.(from + i) && oracle id (from + i)
        done);
      Hashtbl.add memo (node.id, from) res;
      res
  in
  Array.copy (eval_at root 0)

let occurs_at ?oracle expr history p = (eval ?oracle expr history).(p)

let occurrences ?oracle expr history =
  let res = eval ?oracle expr history in
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := i :: !out) res;
  List.rev !out

(** The E-A reading of E-C-A coupling modes (paper §7).

    The E-C-A model needs 4×4 coupling modes between event, condition and
    action. The paper's point is that with rich enough event expressions
    no coupling vocabulary is needed: each mode is just an event
    expression over transaction events. [expression] builds the paper's
    nine listed encodings verbatim. *)

type mode =
  | Immediate_immediate
      (** condition checked when E occurs, action runs immediately in the
          same transaction *)
  | Immediate_deferred
  | Immediate_dependent
  | Immediate_independent
  | Deferred_immediate
      (** identical to deferred-deferred, as the paper notes *)
  | Deferred_dependent
  | Deferred_independent
  | Dependent_immediate
  | Independent_immediate

val all : mode list
val name : mode -> string

val tbegin : Expr.t
val tcomplete : Expr.t
val tcommit : Expr.t
val tabort : Expr.t  (** [after tabort] *)

val expression : mode -> event:Expr.t -> cond:Mask.t -> Expr.t
(** The §7 trigger event for [mode], e.g. [Immediate_deferred] is
    [fa (E && C, before tcomplete, after tbegin)]. *)

(** Reference (denotational) semantics of event expressions — paper §4.

    An expression evaluated against a history [H] (an array of alphabet
    symbols) denotes the set of points of [H] at which the event occurs.
    This evaluator follows the set definitions directly, with no automata
    involved; it is the ground truth the compiled automata are
    property-tested against, and doubles as the "re-evaluate on every
    event" baseline in the benchmarks.

    Composite masks ([Lowered.Masked]) are resolved through an {e oracle}
    mapping (mask id, absolute point) to a boolean — in the real system
    that is "evaluate the mask against the database now"; in tests it is a
    scripted stream. *)

type oracle = int -> int -> bool
(** [oracle mask_id position]. *)

val const_oracle : bool -> oracle

val eval : ?oracle:oracle -> Lowered.t -> int array -> bool array
(** [eval expr history] labels each point of [history] with whether the
    event occurs there. The default oracle is [const_oracle true]. *)

val occurs_at : ?oracle:oracle -> Lowered.t -> int array -> int -> bool

val occurrences : ?oracle:oracle -> Lowered.t -> int array -> int list
(** Positions labeled true, ascending. *)

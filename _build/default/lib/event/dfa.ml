type t = {
  m : int;
  start : int;
  accept : bool array;
  delta : int array array;
}

let n_states t = Array.length t.accept

let state_limit = ref 1_000_000

let check_limit n =
  if n > !state_limit then
    invalid_arg
      (Printf.sprintf "Dfa: automaton exceeds the state limit (%d > %d)" n !state_limit)

let check t =
  let n = n_states t in
  if t.m <= 0 then invalid_arg "Dfa: empty alphabet";
  if n = 0 then invalid_arg "Dfa: no states";
  if t.start < 0 || t.start >= n then invalid_arg "Dfa: bad start";
  if Array.length t.delta <> n then invalid_arg "Dfa: delta size";
  Array.iter
    (fun row ->
      if Array.length row <> t.m then invalid_arg "Dfa: delta row size";
      Array.iter (fun q -> if q < 0 || q >= n then invalid_arg "Dfa: bad target") row)
    t.delta

let step t s c = t.delta.(s).(c)
let accepts_state t s = t.accept.(s)

let run t word =
  let s = Array.fold_left (fun s c -> step t s c) t.start word in
  t.accept.(s)

let run_prefixes t word =
  let s = ref t.start in
  Array.map
    (fun c ->
      s := step t !s c;
      t.accept.(!s))
    word

let empty ~m =
  { m; start = 0; accept = [| false |]; delta = [| Array.make m 0 |] }

let leaf ~m sel =
  let row = Array.init m (fun c -> if sel c then 1 else 0) in
  { m; start = 0; accept = [| false; true |]; delta = [| row; Array.copy row |] }

let reachable t =
  let n = n_states t in
  let index = Array.make n (-1) in
  let order = ref [] in
  let count = ref 0 in
  let rec visit s =
    if index.(s) < 0 then begin
      index.(s) <- !count;
      incr count;
      order := s :: !order;
      Array.iter visit t.delta.(s)
    end
  in
  visit t.start;
  if !count = n then t
  else begin
    let old_of_new = Array.make !count 0 in
    List.iter (fun s -> old_of_new.(index.(s)) <- s) !order;
    {
      m = t.m;
      start = index.(t.start);
      accept = Array.map (fun s -> t.accept.(s)) old_of_new;
      delta = Array.map (fun s -> Array.map (fun q -> index.(q)) t.delta.(s)) old_of_new;
    }
  end

(* Moore's algorithm: refine the accept/reject partition by transition
   signatures until stable. *)
let minimize t =
  let t = reachable t in
  let n = n_states t in
  let cls = Array.map (fun a -> if a then 1 else 0) t.accept in
  let n_cls = ref 2 in
  let changed = ref true in
  while !changed do
    changed := false;
    let table : (int list, int) Hashtbl.t = Hashtbl.create (2 * n) in
    let next = Array.make n 0 in
    let fresh = ref 0 in
    for s = 0 to n - 1 do
      let signature = cls.(s) :: Array.to_list (Array.map (fun q -> cls.(q)) t.delta.(s)) in
      let c =
        match Hashtbl.find_opt table signature with
        | Some c -> c
        | None ->
          let c = !fresh in
          incr fresh;
          Hashtbl.add table signature c;
          c
      in
      next.(s) <- c
    done;
    if !fresh <> !n_cls then begin
      changed := true;
      n_cls := !fresh
    end;
    Array.blit next 0 cls 0 n
  done;
  let k = !n_cls in
  let rep = Array.make k (-1) in
  for s = n - 1 downto 0 do
    rep.(cls.(s)) <- s
  done;
  {
    m = t.m;
    start = cls.(t.start);
    accept = Array.init k (fun c -> t.accept.(rep.(c)));
    delta = Array.init k (fun c -> Array.map (fun q -> cls.(q)) t.delta.(rep.(c)));
  }

let complement t =
  let accept = Array.map not t.accept in
  if not accept.(t.start) then { t with accept }
  else begin
    (* Clone the start state so the empty word stays rejected while every
       nonempty word behaves as in the flipped automaton. *)
    let n = Array.length accept in
    let accept = Array.append accept [| false |] in
    let delta = Array.append t.delta [| Array.copy t.delta.(t.start) |] in
    { m = t.m; start = n; accept; delta }
  end

let product comb t1 t2 =
  if t1.m <> t2.m then invalid_arg "Dfa.product: alphabet mismatch";
  let m = t1.m in
  let index : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let rec visit p =
    match Hashtbl.find_opt index p with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      check_limit !count;
      Hashtbl.add index p i;
      let s1, s2 = p in
      let row = Array.make m 0 in
      states := (i, p, row) :: !states;
      Array.iteri (fun c _ -> row.(c) <- visit (t1.delta.(s1).(c), t2.delta.(s2).(c))) row;
      i
  in
  let start = visit (t1.start, t2.start) in
  let n = !count in
  let accept = Array.make n false in
  let delta = Array.make n [||] in
  List.iter
    (fun (i, (s1, s2), row) ->
      accept.(i) <- comb t1.accept.(s1) t2.accept.(s2);
      delta.(i) <- row)
    !states;
  { m; start; accept; delta }

let inter = product ( && )
let union = product ( || )
let diff = product (fun a b -> a && not b)

let is_empty_lang t =
  let t = reachable t in
  not (Array.exists Fun.id t.accept)

let counterexample t1 t2 =
  if t1.m <> t2.m then invalid_arg "Dfa.counterexample: alphabet mismatch";
  let m = t1.m in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  Queue.add ((t1.start, t2.start), []) q;
  Hashtbl.add seen (t1.start, t2.start) ();
  let rec bfs () =
    if Queue.is_empty q then None
    else begin
      let (s1, s2), path = Queue.pop q in
      if t1.accept.(s1) <> t2.accept.(s2) then
        Some (Array.of_list (List.rev path))
      else begin
        for c = 0 to m - 1 do
          let p = (t1.delta.(s1).(c), t2.delta.(s2).(c)) in
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.add seen p ();
            Queue.add (p, c :: path) q
          end
        done;
        bfs ()
      end
    end
  in
  bfs ()

let equal_lang t1 t2 = counterexample t1 t2 = None
let included t1 t2 = is_empty_lang (diff t1 t2)

let pp ppf t =
  Fmt.pf ppf "@[<v>dfa: %d states, alphabet %d, start %d@," (n_states t) t.m t.start;
  Array.iteri
    (fun s row ->
      Fmt.pf ppf "  %c%d:" (if t.accept.(s) then '*' else ' ') s;
      Array.iteri (fun c q -> Fmt.pf ppf " %d->%d" c q) row;
      Fmt.cut ppf ())
    t.delta;
  Fmt.pf ppf "@]"

lib/event/compile.ml: Array Dfa Hashtbl List Lowered Nfa

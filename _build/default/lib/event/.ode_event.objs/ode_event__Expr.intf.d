lib/event/expr.mli: Format Mask Symbol

lib/event/committed.mli: Dfa

lib/event/dfa.ml: Array Fmt Fun Hashtbl List Printf Queue

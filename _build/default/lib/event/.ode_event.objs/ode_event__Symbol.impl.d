lib/event/symbol.ml: Fmt List Ode_base Option Stdlib

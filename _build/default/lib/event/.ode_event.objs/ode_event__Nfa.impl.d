lib/event/nfa.ml: Array Bitset Dfa Hashtbl List

lib/event/nfa.mli: Dfa

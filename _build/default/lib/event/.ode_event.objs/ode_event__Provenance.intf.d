lib/event/provenance.mli: Expr Mask Ode_base Symbol

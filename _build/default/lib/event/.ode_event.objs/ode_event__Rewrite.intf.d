lib/event/rewrite.mli: Expr Format Hashtbl Lowered Mask Symbol

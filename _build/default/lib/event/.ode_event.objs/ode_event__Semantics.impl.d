lib/event/semantics.ml: Array Hashtbl List Lowered

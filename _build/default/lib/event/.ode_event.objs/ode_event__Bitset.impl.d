lib/event/bitset.ml: Bytes Char List

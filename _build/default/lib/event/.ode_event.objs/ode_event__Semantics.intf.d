lib/event/semantics.mli: Lowered

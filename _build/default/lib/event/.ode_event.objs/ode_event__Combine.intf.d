lib/event/combine.mli: Expr Mask Rewrite Symbol

lib/event/dfa.mli: Format

lib/event/regex.mli: Dfa Format Nfa

lib/event/compile.mli: Dfa Lowered

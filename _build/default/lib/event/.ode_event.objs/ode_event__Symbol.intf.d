lib/event/symbol.mli: Format Ode_base

lib/event/translate.mli: Lowered Regex

lib/event/translate.ml: Array Lowered Option Regex

lib/event/combine.ml: Array Compile Dfa Expr Fun Hashtbl List Rewrite String Symbol

lib/event/lowered.mli: Format

lib/event/expr.ml: Fmt Format Hashtbl List Mask Symbol

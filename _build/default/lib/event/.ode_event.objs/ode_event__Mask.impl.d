lib/event/mask.ml: Fmt Format Hashtbl List Ode_base Stdlib

lib/event/detector.ml: Array Compile Expr List Mask Ode_base Rewrite Symbol

lib/event/committed.ml: Array Dfa Hashtbl List

lib/event/lowered.ml: Array Fmt Hashtbl List

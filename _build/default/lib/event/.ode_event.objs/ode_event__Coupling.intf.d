lib/event/coupling.mli: Expr Mask

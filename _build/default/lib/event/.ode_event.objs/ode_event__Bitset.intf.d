lib/event/bitset.mli:

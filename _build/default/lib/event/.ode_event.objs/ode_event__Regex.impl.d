lib/event/regex.ml: Array Dfa Fmt Hashtbl Int List Nfa Option

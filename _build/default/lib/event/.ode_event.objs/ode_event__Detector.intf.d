lib/event/detector.mli: Compile Expr Mask Ode_base Rewrite Symbol

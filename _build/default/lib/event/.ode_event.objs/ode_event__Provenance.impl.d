lib/event/provenance.ml: Array Expr List Mask Ode_base Rewrite Symbol

lib/event/mask.mli: Format Ode_base

lib/event/rewrite.ml: Array Expr Fmt Hashtbl List Lowered Mask Ode_base Symbol

lib/event/coupling.ml: Expr Symbol

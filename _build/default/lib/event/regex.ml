type t =
  | Empty
  | Eps
  | Sym of int
  | Any
  | Alt of t * t
  | Seq of t * t
  | Star of t

let rec nullable = function
  | Empty | Sym _ | Any -> false
  | Eps | Star _ -> true
  | Alt (a, b) -> nullable a || nullable b
  | Seq (a, b) -> nullable a && nullable b

let alt a b =
  match a, b with
  | Empty, r | r, Empty -> r
  | _ -> Alt (a, b)

let seq a b =
  match a, b with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | _ -> Seq (a, b)

let rec strip_eps = function
  | Empty | Eps -> Empty
  | (Sym _ | Any) as r -> r
  | Alt (a, b) -> alt (strip_eps a) (strip_eps b)
  | Seq (a, b) ->
    let fa = strip_eps a and fb = strip_eps b in
    let r = seq fa fb in
    let r = if nullable a then alt r fb else r in
    if nullable b then alt r fa else r
  | Star a ->
    let fa = strip_eps a in
    seq fa (Star fa)

let one_accepting_state m =
  {
    Nfa.m;
    start = [ 0 ];
    accept = [| true |];
    delta = [| Array.make m [] |];
    eps = [| [] |];
  }

let sym_nfa m sel =
  {
    Nfa.m;
    start = [ 0 ];
    accept = [| false; true |];
    delta = [| Array.init m (fun c -> if sel c then [ 1 ] else []); Array.make m [] |];
    eps = [| []; [] |];
  }

let star_nfa (a : Nfa.t) =
  let p = Nfa.plus a in
  let n = Nfa.n_states p in
  (* Fresh accepting start with ε into the body, so ε is accepted without
     making the body's start accepting. *)
  {
    Nfa.m = p.m;
    start = [ n ];
    accept = Array.append p.accept [| true |];
    delta = Array.append p.delta [| Array.make p.m [] |];
    eps = Array.append p.eps [| p.start |];
  }

let rec to_nfa ~m = function
  | Empty ->
    {
      Nfa.m;
      start = [ 0 ];
      accept = [| false |];
      delta = [| Array.make m [] |];
      eps = [| [] |];
    }
  | Eps -> one_accepting_state m
  | Sym c ->
    if c < 0 || c >= m then invalid_arg "Regex.to_nfa: symbol out of range";
    sym_nfa m (Int.equal c)
  | Any -> sym_nfa m (fun _ -> true)
  | Alt (a, b) -> Nfa.union (to_nfa ~m a) (to_nfa ~m b)
  | Seq (a, b) -> Nfa.concat (to_nfa ~m a) (to_nfa ~m b)
  | Star a -> star_nfa (to_nfa ~m a)

let to_dfa ~m r = Dfa.minimize (Nfa.determinize (to_nfa ~m r))

let rec simplify r =
  match r with
  | Empty | Eps | Sym _ | Any -> r
  | Alt (a, b) -> (
    match simplify a, simplify b with
    | Empty, r | r, Empty -> r
    | a, b when a = b -> a
    | a, b -> Alt (a, b))
  | Seq (a, b) -> (
    match simplify a, simplify b with
    | Empty, _ | _, Empty -> Empty
    | Eps, r | r, Eps -> r
    | a, b -> Seq (a, b))
  | Star a -> (
    match simplify a with
    | Empty | Eps -> Eps
    | Star _ as inner -> inner
    | a -> Star a)

(* Kleene's state-elimination construction over a generalized NFA whose
   edges carry regexes. *)
let of_dfa (d : Dfa.t) =
  let n = Dfa.n_states d in
  (* states 0..n-1, plus fresh initial [n] and final [n+1] *)
  let edges : (int * int, t) Hashtbl.t = Hashtbl.create 64 in
  let get i j = Option.value (Hashtbl.find_opt edges (i, j)) ~default:Empty in
  let add i j r =
    match simplify r with
    | Empty -> ()
    | r -> Hashtbl.replace edges (i, j) (simplify (alt (get i j) r))
  in
  Array.iteri
    (fun s row -> Array.iteri (fun c q -> add s q (Sym c)) row)
    d.Dfa.delta;
  let init = n and final = n + 1 in
  add init d.Dfa.start Eps;
  Array.iteri (fun s acc -> if acc then add s final Eps) d.Dfa.accept;
  (* eliminate original states one by one *)
  for k = 0 to n - 1 do
    let loop = get k k in
    let through = match simplify loop with Empty -> Eps | l -> Star l in
    let ins =
      Hashtbl.fold (fun (i, j) r acc -> if j = k && i <> k then (i, r) :: acc else acc) edges []
    in
    let outs =
      Hashtbl.fold (fun (i, j) r acc -> if i = k && j <> k then (j, r) :: acc else acc) edges []
    in
    List.iter
      (fun (i, rin) ->
        List.iter (fun (j, rout) -> add i j (seq rin (seq through rout))) outs)
      ins;
    Hashtbl.filter_map_inplace (fun (i, j) r -> if i = k || j = k then None else Some r) edges
  done;
  simplify (get init final)

let rec pp ppf r = pp_alt ppf r

and pp_alt ppf = function
  | Alt (a, b) -> Fmt.pf ppf "%a|%a" pp_alt a pp_seq b
  | r -> pp_seq ppf r

and pp_seq ppf = function
  | Seq (a, b) -> Fmt.pf ppf "%a%a" pp_seq a pp_atom b
  | r -> pp_atom ppf r

and pp_atom ppf = function
  | Empty -> Fmt.string ppf "{}"
  | Eps -> Fmt.string ppf "eps"
  | Sym c -> Fmt.pf ppf "s%d" c
  | Any -> Fmt.string ppf "."
  | Star a -> Fmt.pf ppf "%a*" pp_atom a
  | (Alt _ | Seq _) as r -> Fmt.pf ppf "(%a)" pp r

let rec size = function
  | Empty | Eps | Sym _ | Any -> 1
  | Star a -> 1 + size a
  | Alt (a, b) | Seq (a, b) -> 1 + size a + size b

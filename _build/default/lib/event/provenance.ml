module Value = Ode_base.Value

type binding = (string * Value.t) list

type context = Unrestricted | Recent | Chronicle

let merge (outer : binding) (inner : binding) : binding =
  (* inner (later) bindings shadow outer ones *)
  inner @ List.filter (fun (n, _) -> not (List.mem_assoc n inner)) outer

let cap n xs = if List.length xs <= n then xs else List.filteri (fun i _ -> i < n) xs

(* A live evaluator for one subtree. [step] consumes the leaf-match
   results for the current occurrence (precomputed per distinct leaf) and
   returns the environments of the matches completing at this point. *)
type inst = {
  step : leaf_matches:binding option array -> mask:(Mask.t -> bool) -> binding list;
  count : unit -> int;
}

type fa_inst = {
  fi_env : binding;  (* environment of the opening E-match *)
  fi_b : inst;
  fi_g : inst option;
  mutable fi_alive : bool;
}

(* Expressions are first translated to an indexed form where each leaf
   knows its slot in the per-occurrence match table. *)
type indexed =
  | I_leaf of int
  | I_or of indexed * indexed
  | I_and of indexed * indexed
  | I_not of indexed
  | I_relative of indexed * indexed
  | I_relative_plus of indexed
  | I_relative_n of int * indexed
  | I_prior of indexed * indexed
  | I_prior_n of int * indexed
  | I_sequence of indexed * indexed
  | I_sequence_n of int * indexed
  | I_choose of int * indexed
  | I_every of int * indexed
  | I_fa of indexed * indexed * indexed
  | I_fa_abs of indexed * indexed * indexed
  | I_masked of indexed * Mask.t

let rec index_expr (leaves : Expr.leaf list ref) (e : Expr.t) : indexed =
  let slot_of (l : Expr.leaf) =
    let rec find i = function
      | [] ->
        leaves := !leaves @ [ l ];
        i
      | l' :: rest -> if l' = l then i else find (i + 1) rest
    in
    find 0 !leaves
  in
  let bin op a b = op (index_expr leaves a) (index_expr leaves b) in
  let fold_list op = function
    | [] -> invalid_arg "Provenance: empty curried operator"
    | e :: rest ->
      List.fold_left (fun acc e -> op acc (index_expr leaves e)) (index_expr leaves e) rest
  in
  match e with
  | Leaf l -> I_leaf (slot_of l)
  | Or (a, b) -> bin (fun a b -> I_or (a, b)) a b
  | And (a, b) -> bin (fun a b -> I_and (a, b)) a b
  | Not a -> I_not (index_expr leaves a)
  | Relative es -> fold_list (fun a b -> I_relative (a, b)) es
  | Relative_plus a -> I_relative_plus (index_expr leaves a)
  | Relative_n (n, a) -> I_relative_n (n, index_expr leaves a)
  | Prior es -> fold_list (fun a b -> I_prior (a, b)) es
  | Prior_n (n, a) -> I_prior_n (n, index_expr leaves a)
  | Sequence es -> fold_list (fun a b -> I_sequence (a, b)) es
  | Sequence_n (n, a) -> I_sequence_n (n, index_expr leaves a)
  | Choose (n, a) -> I_choose (n, index_expr leaves a)
  | Every (n, a) -> I_every (n, index_expr leaves a)
  | Fa (a, b, g) ->
    I_fa (index_expr leaves a, index_expr leaves b, index_expr leaves g)
  | Fa_abs (a, b, g) ->
    I_fa_abs (index_expr leaves a, index_expr leaves b, index_expr leaves g)
  | Masked (a, m) -> I_masked (index_expr leaves a, m)

let rec instantiate ~max_matches ~context (e : indexed) : inst =
  let mk = instantiate ~max_matches ~context in
  let capm = cap max_matches in
  (* window-pool policy: how new initiators and completions affect the
     pending windows of one operator *)
  let admit ~fresh ~existing =
    match context with
    | Unrestricted | Chronicle -> cap max_matches (fresh @ existing)
    | Recent -> if fresh <> [] then fresh else existing
  in
  match e with
  | I_leaf slot ->
    {
      step =
        (fun ~leaf_matches ~mask:_ ->
          match leaf_matches.(slot) with Some b -> [ b ] | None -> []);
      count = (fun () -> 1);
    }
  | I_or (a, b) ->
    let ia = mk a and ib = mk b in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let ra = ia.step ~leaf_matches ~mask in
          let rb = ib.step ~leaf_matches ~mask in
          capm (ra @ rb));
      count = (fun () -> ia.count () + ib.count ());
    }
  | I_and (a, b) ->
    let ia = mk a and ib = mk b in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let ra = ia.step ~leaf_matches ~mask in
          let rb = ib.step ~leaf_matches ~mask in
          capm (List.concat_map (fun ea -> List.map (fun eb -> merge ea eb) rb) ra));
      count = (fun () -> ia.count () + ib.count ());
    }
  | I_not a ->
    let ia = mk a in
    {
      step =
        (fun ~leaf_matches ~mask ->
          match ia.step ~leaf_matches ~mask with [] -> [ [] ] | _ -> []);
      count = ia.count;
    }
  | I_relative (a, b) ->
    let ia = mk a in
    (* pending windows, newest first; the oldest is the list's tail *)
    let rights : (binding * inst) list ref = ref [] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          (* step every window; remember each window's completions *)
          let results =
            List.map
              (fun (env_a, ib) ->
                ((env_a, ib), ib.step ~leaf_matches ~mask))
              !rights
          in
          let out =
            match context with
            | Unrestricted | Recent ->
              List.concat_map
                (fun ((env_a, _), ebs) -> List.map (fun eb -> merge env_a eb) ebs)
                results
            | Chronicle -> (
              (* pair the terminator with the OLDEST completing window and
                 consume that window only *)
              match
                List.rev results |> List.find_opt (fun (_, ebs) -> ebs <> [])
              with
              | None -> []
              | Some (((env_a, ib) as oldest), ebs) ->
                ignore oldest;
                rights :=
                  List.filter (fun (e, i) -> not (e == env_a && i == ib)) !rights;
                List.map (fun eb -> merge env_a eb) ebs)
          in
          let ra = ia.step ~leaf_matches ~mask in
          rights := admit ~fresh:(List.map (fun env_a -> (env_a, mk b)) ra) ~existing:!rights;
          capm out);
      count =
        (fun () ->
          ia.count () + List.fold_left (fun acc (_, i) -> acc + i.count ()) 0 !rights);
    }
  | I_relative_plus a ->
    let links : (binding * inst) list ref = ref [ ([], mk a) ] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let out =
            List.concat_map
              (fun (env0, i) ->
                List.map (fun e -> merge env0 e) (i.step ~leaf_matches ~mask))
              !links
          in
          let out = capm out in
          links := cap max_matches (List.map (fun env -> (env, mk a)) out @ !links);
          out);
      count = (fun () -> List.fold_left (fun acc (_, i) -> acc + i.count ()) 0 !links);
    }
  | I_relative_n (n, a) ->
    let links : (int * binding * inst) list ref = ref [ (1, [], mk a) ] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let hits =
            List.concat_map
              (fun (level, env0, i) ->
                List.map (fun e -> (level, merge env0 e)) (i.step ~leaf_matches ~mask))
              !links
          in
          let out = capm (List.filter_map (fun (l, e) -> if l >= n then Some e else None) hits) in
          links :=
            cap max_matches
              (List.map (fun (l, e) -> (min (l + 1) n, e, mk a)) hits @ !links);
          out);
      count = (fun () -> List.fold_left (fun acc (_, _, i) -> acc + i.count ()) 0 !links);
    }
  | I_prior (a, b) ->
    let ia = mk a and ib = mk b in
    let seen_a : binding list ref = ref [] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let rb = ib.step ~leaf_matches ~mask in
          let out =
            capm
              (List.concat_map
                 (fun ea -> List.map (fun eb -> merge ea eb) rb)
                 !seen_a)
          in
          let ra = ia.step ~leaf_matches ~mask in
          seen_a := cap max_matches (ra @ !seen_a);
          out);
      count = (fun () -> ia.count () + ib.count ());
    }
  | I_prior_n (n, a) ->
    let ia = mk a in
    let hits = ref 0 in
    {
      step =
        (fun ~leaf_matches ~mask ->
          match ia.step ~leaf_matches ~mask with
          | [] -> []
          | envs ->
            incr hits;
            if !hits >= n then capm envs else []);
      count = ia.count;
    }
  | I_sequence (a, b) ->
    let ia = mk a and ib = mk b in
    let prev_a : binding list ref = ref [] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let rb = ib.step ~leaf_matches ~mask in
          let out =
            capm
              (List.concat_map
                 (fun ea -> List.map (fun eb -> merge ea eb) rb)
                 !prev_a)
          in
          prev_a := capm (ia.step ~leaf_matches ~mask);
          out);
      count = (fun () -> ia.count () + ib.count ());
    }
  | I_sequence_n (n, a) ->
    let ia = mk a in
    let window : binding list list ref = ref [] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let ra = capm (ia.step ~leaf_matches ~mask) in
          let out =
            if ra = [] || List.length !window < n - 1
               || List.exists (fun w -> w = []) !window
            then []
            else
              capm
                (List.fold_left
                   (fun acc w ->
                     List.concat_map (fun e -> List.map (fun ew -> merge ew e) w) acc)
                   ra !window)
          in
          window := (if n <= 1 then [] else ra :: cap (n - 2) !window);
          out);
      count = ia.count;
    }
  | I_choose (n, a) ->
    let ia = mk a in
    let hits = ref 0 in
    {
      step =
        (fun ~leaf_matches ~mask ->
          match ia.step ~leaf_matches ~mask with
          | [] -> []
          | envs ->
            incr hits;
            if !hits = n then capm envs else []);
      count = ia.count;
    }
  | I_every (n, a) ->
    let ia = mk a in
    let hits = ref 0 in
    {
      step =
        (fun ~leaf_matches ~mask ->
          match ia.step ~leaf_matches ~mask with
          | [] -> []
          | envs ->
            incr hits;
            if !hits mod n = 0 then capm envs else []);
      count = ia.count;
    }
  | I_fa (a, b, g) ->
    let ia = mk a in
    let live : fa_inst list ref = ref [] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          (* [live] is newest-first; gather per-window completions, oldest
             last *)
          let outs = ref [] in
          List.iter
            (fun fi ->
              if fi.fi_alive then begin
                let rb = fi.fi_b.step ~leaf_matches ~mask in
                let rg =
                  match fi.fi_g with
                  | Some g -> g.step ~leaf_matches ~mask
                  | None -> []
                in
                if rb <> [] then begin
                  outs := List.map (fun eb -> merge fi.fi_env eb) rb :: !outs;
                  fi.fi_alive <- false
                end
                else if rg <> [] then fi.fi_alive <- false
              end)
            !live;
          live := List.filter (fun fi -> fi.fi_alive) !live;
          let out =
            match context, !outs with
            | Chronicle, oldest :: _ -> oldest (* outs is oldest-first here *)
            | Chronicle, [] -> []
            | (Unrestricted | Recent), outs -> List.concat outs
          in
          let ra = ia.step ~leaf_matches ~mask in
          live :=
            admit
              ~fresh:
                (List.map
                   (fun env ->
                     { fi_env = env; fi_b = mk b; fi_g = Some (mk g); fi_alive = true })
                   ra)
              ~existing:!live;
          capm out);
      count =
        (fun () ->
          ia.count ()
          + List.fold_left
              (fun acc fi ->
                acc + fi.fi_b.count ()
                + match fi.fi_g with Some g -> g.count () | None -> 0)
              0 !live);
    }
  | I_fa_abs (a, b, g) ->
    let ia = mk a in
    let ig = mk g in
    let live : fa_inst list ref = ref [] in
    {
      step =
        (fun ~leaf_matches ~mask ->
          let rg = ig.step ~leaf_matches ~mask in
          let outs = ref [] in
          List.iter
            (fun fi ->
              if fi.fi_alive then begin
                let rb = fi.fi_b.step ~leaf_matches ~mask in
                if rb <> [] then begin
                  outs := List.map (fun eb -> merge fi.fi_env eb) rb :: !outs;
                  fi.fi_alive <- false
                end
                else if rg <> [] then fi.fi_alive <- false
              end)
            !live;
          live := List.filter (fun fi -> fi.fi_alive) !live;
          let out =
            match context, !outs with
            | Chronicle, oldest :: _ -> oldest
            | Chronicle, [] -> []
            | (Unrestricted | Recent), outs -> List.concat outs
          in
          let ra = ia.step ~leaf_matches ~mask in
          live :=
            admit
              ~fresh:
                (List.map
                   (fun env -> { fi_env = env; fi_b = mk b; fi_g = None; fi_alive = true })
                   ra)
              ~existing:!live;
          capm out);
      count =
        (fun () ->
          ia.count () + ig.count ()
          + List.fold_left (fun acc fi -> acc + fi.fi_b.count ()) 0 !live);
    }
  | I_masked (a, m) ->
    let ia = mk a in
    {
      step =
        (fun ~leaf_matches ~mask ->
          match ia.step ~leaf_matches ~mask with
          | [] -> []
          | envs -> if mask m then envs else []);
      count = ia.count;
    }

type t = {
  leaves : Expr.leaf array;
  guards : Rewrite.guard array;
  root : inst;
}

let make ?(max_matches = 64) ?(context = Unrestricted) expr =
  (match Expr.validate expr with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Provenance.make: " ^ msg));
  let leaves = ref [] in
  let indexed = index_expr leaves expr in
  let leaves = Array.of_list !leaves in
  let guards =
    Array.map
      (fun (l : Expr.leaf) ->
        { Rewrite.g_formals = l.formals; g_mask = l.mask })
      leaves
  in
  { leaves; guards; root = instantiate ~max_matches ~context indexed }

let leaf_bindings (l : Expr.leaf) (o : Symbol.occurrence) : binding =
  List.filteri (fun i _ -> i < List.length o.args) l.formals
  |> List.mapi (fun i (f : Expr.formal) -> (f.f_name, List.nth o.args i))

let post t ~env (occurrence : Symbol.occurrence) =
  let leaf_matches =
    Array.mapi
      (fun i (l : Expr.leaf) ->
        if
          Symbol.equal_basic l.basic occurrence.basic
          && Rewrite.guard_matches ~env occurrence t.guards.(i)
        then Some (leaf_bindings l occurrence)
        else None)
      t.leaves
  in
  (* per-trigger history: skip occurrences matching none of our events *)
  if Array.for_all (fun m -> m = None) leaf_matches then []
  else
    let mask m = Mask.eval_bool env m in
    t.root.step ~leaf_matches ~mask

let instance_count t = t.root.count ()

(** The committed-history construction of paper §6.

    An event expression may be read against the {e committed} history
    (operations of aborted transactions excised) or the {e full} history.
    The paper proves that any automaton [A] for the committed reading can
    be converted into an automaton [A'] over the full history whose states
    are pairs [(a, b)]: [a] is the state [A] is "really" in, [b] the state
    [A] was in just before the most recent [after tbegin]. On
    [after tcommit] the pair solidifies to [(r, r)]; on a [tabort] event
    it rolls back to [(b, b)].

    The symbol classification is given by predicates because, at the
    automaton level, several alphabet symbols may represent the same
    transaction event (mask variants, extended alphabets). *)

val lift :
  Dfa.t ->
  tbegin:(int -> bool) ->
  tcommit:(int -> bool) ->
  tabort:(int -> bool) ->
  Dfa.t
(** [lift a ~tbegin ~tcommit ~tabort] is [A'] as above, restricted to
    reachable pairs (so its state count is at most [n² ]). The three
    predicates must be pairwise disjoint on symbols. Acceptance of a
    prefix of the full history equals [a]'s acceptance of that prefix's
    committed projection, where an open transaction's operations are
    included until it aborts. *)

val project :
  int array ->
  tbegin:(int -> bool) ->
  tcommit:(int -> bool) ->
  tabort:(int -> bool) ->
  int array
(** The committed projection of a full history: drop every segment from a
    [tbegin] symbol through its closing [tabort] symbol, inclusive
    (operations of an open transaction are kept). Used by tests to state
    the §6 equivalence. *)

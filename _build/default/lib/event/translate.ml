(* The encoding obstacle: an event-language atom denotes [Σ*·a] ("the last
   point is an [a]"), not the single-word language [{a}]. We recover exact
   single-symbol languages with the paper's own operators:

     len1     = any & !prior(any, any)          — words of length exactly 1
     single a = a & len1                        — the word "a"

   and then concatenation is exactly [relative], [L+] is [relative+]. The
   translation tracks nullability so [Star] can be decomposed as
   [ε ∪ L+]. *)

let any_selector m = Array.make m true

let selector m c =
  let sel = Array.make m false in
  sel.(c) <- true;
  sel

let len1 m : Lowered.t =
  let any : Lowered.t = Atom (any_selector m) in
  And (any, Not (Prior (any, any)))

let single m c : Lowered.t = And (Atom (selector m c), len1 m)

let or_opt a b =
  match a, b with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Lowered.Or (a, b))

(* Returns (nullable, expression for L \ {ε} or None when that set is
   empty). *)
let rec go ~m (r : Regex.t) : bool * Lowered.t option =
  match r with
  | Empty -> (false, None)
  | Eps -> (true, None)
  | Sym c ->
    if c < 0 || c >= m then invalid_arg "Translate.of_regex: symbol out of range";
    (false, Some (single m c))
  | Any -> (false, Some (len1 m))
  | Alt (a, b) ->
    let na, ea = go ~m a in
    let nb, eb = go ~m b in
    (na || nb, or_opt ea eb)
  | Seq (a, b) ->
    let na, ea = go ~m a in
    let nb, eb = go ~m b in
    let both =
      match ea, eb with
      | Some ea, Some eb -> Some (Lowered.Relative (ea, eb))
      | _ -> None
    in
    let left = if nb then ea else None in
    let right = if na then eb else None in
    (na && nb, or_opt both (or_opt left right))
  | Star a ->
    let _, ea = go ~m a in
    (true, Option.map (fun e -> Lowered.Relative_plus e) ea)

let of_regex ~m r =
  match go ~m r with
  | true, _ -> None
  | false, None -> Some Lowered.False
  | false, Some e -> Some e

(** Nondeterministic finite automata with ε-transitions, over the same
    dense alphabet [0 .. m-1] as {!Dfa}.

    The record is exposed so that specialised constructions (first-match
    automata for [fa]/[faAbs], the committed-history lift) can build NFAs
    directly. *)

type t = {
  m : int;
  start : int list;
  accept : bool array;
  delta : int list array array;  (** [delta.(state).(symbol)] = successors *)
  eps : int list array;  (** ε-successors *)
}

val n_states : t -> int
val check : t -> unit

val of_dfa : Dfa.t -> t

val concat : t -> t -> t
(** [concat a b] recognizes [L(a)·L(b)]. *)

val union : t -> t -> t

val plus : t -> t
(** [plus a] recognizes [L(a)+] — one or more concatenations. Event
    languages are ε-free, so [+] rather than [*] is the primitive. *)

val power : t -> int -> t
(** [power a n] recognizes [L(a)^n]; [power a 0] raises (ε is not an event
    language). *)

val any_word : m:int -> int -> t
(** [any_word ~m k] recognizes [Σ^k] for [k >= 1]. *)

val any_plus : m:int -> t
(** [Σ+]. *)

val determinize : t -> Dfa.t
(** Subset construction. The result is complete; an explicit dead state is
    added if some subset has no successor. *)

module Codec = Ode_base.Codec

type mode = Full_history | Committed

type t = {
  expr : Expr.t;
  alphabet : Rewrite.t;
  masks : Mask.t array;
  compiled : Compile.t;
  mode : mode;
}

type state = int array

let make ?(mode = Full_history) expr =
  let alphabet, lowered, masks = Rewrite.build expr in
  let compiled = Compile.compile ~m:(Rewrite.n_symbols alphabet) lowered in
  { expr; alphabet; masks; compiled; mode }

let initial t = Compile.initial t.compiled
let n_state_words t = Compile.n_state_words t.compiled

let post t state ~env occurrence =
  let sym = Rewrite.classify t.alphabet ~env occurrence in
  (* §5: the automaton is advanced only "for each active trigger for which
     a logical event has occurred". An occurrence matching none of this
     trigger's logical events is not part of its history at all — it must
     not break adjacency (sequence) or feed negations. *)
  if sym = Rewrite.other t.alphabet then false
  else
    let mask id = Mask.eval_bool env t.masks.(id) in
    Compile.step t.compiled state sym ~mask

let copy_state = Array.copy

let collect t ~env (occurrence : Symbol.occurrence) =
  let alphabet = t.alphabet in
  let bindings = ref [] in
  Array.iteri
    (fun k basic ->
      if Symbol.equal_basic basic occurrence.basic then
        Array.iter
          (fun (g : Rewrite.guard) ->
            if g.g_formals <> [] && Rewrite.guard_matches ~env occurrence g then
              List.iteri
                (fun i (f : Expr.formal) ->
                  match List.nth_opt occurrence.args i with
                  | Some v -> bindings := (f.f_name, v) :: !bindings
                  | None -> ())
                g.g_formals)
          alphabet.Rewrite.guards.(k))
    alphabet.Rewrite.keys;
  List.rev !bindings

let encode_state t state =
  if Array.length state <> n_state_words t then
    invalid_arg "Detector.encode_state: size mismatch";
  let w = Codec.writer () in
  Codec.write_array w Codec.write_int state;
  Codec.contents w

let decode_state t s =
  let r = Codec.reader s in
  let state = Codec.read_array r Codec.read_int in
  if Array.length state <> n_state_words t then
    raise (Codec.Corrupt "Detector.decode_state: size mismatch");
  state

(** One automaton per class (§5, footnote 5).

    The paper's baseline implementation keeps one automaton per trigger
    definition. Its footnote observes that "in many cases such automata
    may be combined into one, resulting in a more efficient monitoring".
    This module performs that optimization: the trigger events of a class
    are compiled over a {e shared} disjoint alphabet, each trigger's DFA
    is lifted so that symbols outside its own logical events leave its
    state unchanged (per-trigger histories, see {!Detector.post}), and
    the lifted automata are combined into a single product whose states
    carry one acceptance bit per trigger.

    The object then stores a {e single} integer for the whole trigger
    section, and each posting costs one classification plus one table
    lookup, instead of one per trigger. The price is the product state
    space, measured in benchmark E9.

    Restriction: composite masks ([&& mask] on a composite event) are
    per-trigger runtime state and are not combined; [make] raises
    [Invalid_argument] for such expressions. *)

type t

val make : Expr.t list -> t
(** Compile the trigger events of one class into a combined automaton.
    Raises [Invalid_argument] on invalid expressions, composite masks, or
    atom/state blowup (see {!Rewrite.max_atoms}, {!Dfa.state_limit}). *)

val n_triggers : t -> int
val n_states : t -> int

val sum_of_parts : t -> int
(** Total states of the individual (lifted) automata, for comparison. *)

val initial : t -> int

val post : t -> int -> env:Mask.env -> Symbol.occurrence -> int * bool array
(** [post t state ~env occurrence] classifies the occurrence once against
    the shared alphabet and advances the combined automaton. Returns the
    new state and, per trigger, whether that trigger's event occurred at
    this point. The returned array is fresh. *)

val union_alphabet : t -> Rewrite.t

type mode =
  | Immediate_immediate
  | Immediate_deferred
  | Immediate_dependent
  | Immediate_independent
  | Deferred_immediate
  | Deferred_dependent
  | Deferred_independent
  | Dependent_immediate
  | Independent_immediate

let all =
  [
    Immediate_immediate; Immediate_deferred; Immediate_dependent;
    Immediate_independent; Deferred_immediate; Deferred_dependent;
    Deferred_independent; Dependent_immediate; Independent_immediate;
  ]

let name = function
  | Immediate_immediate -> "immediate-immediate"
  | Immediate_deferred -> "immediate-deferred"
  | Immediate_dependent -> "immediate-dependent"
  | Immediate_independent -> "immediate-independent"
  | Deferred_immediate -> "deferred-immediate"
  | Deferred_dependent -> "deferred-dependent"
  | Deferred_independent -> "deferred-independent"
  | Dependent_immediate -> "dependent-immediate"
  | Independent_immediate -> "independent-immediate"

let tbegin = Expr.leaf Symbol.Tbegin
let tcomplete = Expr.leaf Symbol.Tcomplete
let tcommit = Expr.leaf Symbol.Tcommit
let tabort = Expr.leaf (Symbol.Tabort After)
let ended = Expr.(tcommit |: tabort)

(* fa(E, before tcomplete, after tbegin): E's transaction reaches its
   commit attempt with no new transaction having begun in between. *)
let deferred event = Expr.fa event tcomplete tbegin

let expression mode ~event ~cond =
  match mode with
  | Immediate_immediate -> Expr.masked event cond
  | Immediate_deferred -> Expr.fa (Expr.masked event cond) tcomplete tbegin
  | Immediate_dependent -> Expr.fa (Expr.masked event cond) tcommit tbegin
  | Immediate_independent -> Expr.fa (Expr.masked event cond) ended tbegin
  | Deferred_immediate -> Expr.masked (deferred event) cond
  | Deferred_dependent ->
    Expr.fa (Expr.masked (deferred event) cond) tcommit tbegin
  | Deferred_independent ->
    Expr.fa (Expr.masked (deferred event) cond) ended tbegin
  | Dependent_immediate -> Expr.masked (Expr.fa event tcommit tbegin) cond
  | Independent_immediate -> Expr.masked (Expr.fa event ended tbegin) cond

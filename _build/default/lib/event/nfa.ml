type t = {
  m : int;
  start : int list;
  accept : bool array;
  delta : int list array array;
  eps : int list array;
}

let n_states t = Array.length t.accept

let check t =
  let n = n_states t in
  if t.m <= 0 then invalid_arg "Nfa: empty alphabet";
  let check_state q = if q < 0 || q >= n then invalid_arg "Nfa: bad state" in
  List.iter check_state t.start;
  if Array.length t.delta <> n || Array.length t.eps <> n then
    invalid_arg "Nfa: table sizes";
  Array.iter
    (fun row ->
      if Array.length row <> t.m then invalid_arg "Nfa: delta row size";
      Array.iter (List.iter check_state) row)
    t.delta;
  Array.iter (List.iter check_state) t.eps

let of_dfa (d : Dfa.t) =
  let n = Array.length d.accept in
  {
    m = d.m;
    start = [ d.start ];
    accept = Array.copy d.accept;
    delta = Array.init n (fun s -> Array.map (fun q -> [ q ]) d.delta.(s));
    eps = Array.make n [];
  }

(* Disjoint union of state spaces; [b]'s states are shifted by |a|. *)
let juxtapose a b =
  if a.m <> b.m then invalid_arg "Nfa: alphabet mismatch";
  let na = n_states a in
  let shift = List.map (fun q -> q + na) in
  let accept = Array.append a.accept b.accept in
  let delta =
    Array.append a.delta (Array.map (fun row -> Array.map shift row) b.delta)
  in
  let eps = Array.append a.eps (Array.map shift b.eps) in
  (na, { m = a.m; start = a.start; accept; delta; eps })

let concat a b =
  let na, t = juxtapose a b in
  let b_start = List.map (fun q -> q + na) b.start in
  let eps =
    Array.mapi
      (fun s e -> if s < na && a.accept.(s) then b_start @ e else e)
      t.eps
  in
  let accept = Array.mapi (fun s acc -> s >= na && acc) t.accept in
  { t with accept; eps }

let union a b =
  let na, t = juxtapose a b in
  { t with start = a.start @ List.map (fun q -> q + na) b.start }

let plus a =
  let eps =
    Array.mapi (fun s e -> if a.accept.(s) then a.start @ e else e) a.eps
  in
  { a with eps }

let rec power a n =
  if n <= 0 then invalid_arg "Nfa.power: n must be >= 1"
  else if n = 1 then a
  else concat a (power a (n - 1))

let any_word ~m k =
  if k < 1 then invalid_arg "Nfa.any_word: k must be >= 1";
  let n = k + 1 in
  let all = Array.make m [] in
  {
    m;
    start = [ 0 ];
    accept = Array.init n (fun s -> s = k);
    delta = Array.init n (fun s -> if s < k then Array.make m [ s + 1 ] else Array.copy all);
    eps = Array.make n [];
  }

let any_plus ~m =
  {
    m;
    start = [ 0 ];
    accept = [| false; true |];
    delta = [| Array.make m [ 1 ]; Array.make m [ 1 ] |];
    eps = [| []; [] |];
  }

let eps_closure t (set : Bitset.t) =
  let stack = ref (Bitset.elements set) in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      List.iter
        (fun q ->
          if not (Bitset.mem set q) then begin
            Bitset.add set q;
            stack := q :: !stack
          end)
        t.eps.(s)
  done

let determinize t =
  let n = n_states t in
  let m = t.m in
  let start_set = Bitset.of_list n t.start in
  eps_closure t start_set;
  let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rows = ref [] in
  let count = ref 0 in
  let rec visit set =
    let k = Bitset.key set in
    match Hashtbl.find_opt index k with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Dfa.check_limit !count;
      Hashtbl.add index k i;
      let acc = Bitset.fold (fun s acc -> acc || t.accept.(s)) set false in
      let row = Array.make m 0 in
      rows := (i, acc, row) :: !rows;
      for c = 0 to m - 1 do
        let succ = Bitset.create n in
        Bitset.iter (fun s -> List.iter (Bitset.add succ) t.delta.(s).(c)) set;
        eps_closure t succ;
        row.(c) <- visit succ
      done;
      i
  in
  let start = visit start_set in
  let nn = !count in
  let accept = Array.make nn false in
  let delta = Array.make nn [||] in
  List.iter
    (fun (i, acc, row) ->
      accept.(i) <- acc;
      delta.(i) <- row)
    !rows;
  { Dfa.m; start; accept; delta }

(** Deterministic finite automata over a dense alphabet [0 .. m-1].

    Every automaton in this library is complete: [delta.(s).(c)] is defined
    for all states [s] and symbols [c]. Event languages never contain the
    empty word (an event needs an occurrence point), and all constructors
    here preserve that invariant; [complement] is taken within [Σ+]. *)

type t = {
  m : int;  (** alphabet size *)
  start : int;
  accept : bool array;  (** indexed by state; length = number of states *)
  delta : int array array;  (** [delta.(state).(symbol)] *)
}

val n_states : t -> int

val state_limit : int ref
(** Safety cap on constructed automata (default [1_000_000] states).
    {!Nfa.determinize} and the product constructions raise
    [Invalid_argument] beyond it — complements of concatenations can
    otherwise explode exponentially. *)

val check_limit : int -> unit
(** Raise [Invalid_argument] if the count exceeds {!state_limit}. *)

val check : t -> unit
(** Validate structural invariants; raises [Invalid_argument]. *)

val step : t -> int -> int -> int
(** [step dfa state symbol] is the successor state. *)

val accepts_state : t -> int -> bool

val run : t -> int array -> bool
(** [run dfa word] is acceptance of the whole word from [start]. *)

val run_prefixes : t -> int array -> bool array
(** [run_prefixes dfa word] gives, for each position [p], acceptance of
    [word.(0..p)] — i.e. whether the event "occurs at point p". *)

val empty : m:int -> t
(** The empty language. *)

val leaf : m:int -> (int -> bool) -> t
(** [leaf ~m sel] recognizes [Σ* · S] where [S = { c | sel c }]: the
    language of a logical event, "the last point is an occurrence of a
    symbol in S". *)

val reachable : t -> t
(** Drop unreachable states. *)

val minimize : t -> t
(** Moore partition refinement over reachable states. *)

val complement : t -> t
(** Complement within [Σ+]: the result never accepts the empty word even
    if the input's start state was accepting. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
(** Reachable product constructions; operands must share [m]. *)

val is_empty_lang : t -> bool

val counterexample : t -> t -> int array option
(** A shortest word accepted by exactly one of the two automata, if any. *)

val equal_lang : t -> t -> bool
val included : t -> t -> bool

val pp : Format.formatter -> t -> unit

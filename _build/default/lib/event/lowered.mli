(** Lowered event expressions.

    {!Rewrite} turns a surface {!Expr.t} into this form: logical events
    are resolved to sets of {e disjoint atoms} (symbols of the automaton
    alphabet, paper §5), curried operators are folded to binary form, and
    composite masks are replaced by indices into a mask table. Both the
    reference evaluator ({!Semantics}) and the compiler ({!Compile})
    consume this form, which is what makes them comparable point-for-point. *)

type t =
  | False
  | Atom of bool array
      (** [Atom sel] occurs at points whose symbol [c] has [sel.(c)];
          length is the full alphabet size (the "other" symbol is always
          false). *)
  | Or of t * t
  | And of t * t
  | Not of t
  | Relative of t * t
  | Relative_plus of t
  | Relative_n of int * t
  | Prior of t * t
  | Prior_n of int * t
  | Sequence of t * t
  | Sequence_n of int * t
  | Choose of int * t
  | Every of int * t
  | Fa of t * t * t
  | Fa_abs of t * t * t
  | Masked of t * int  (** composite mask, by index into the mask table *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every subterm, including the root. *)

val alphabet_size : t -> int option
(** Size of the [Atom] selectors, if any leaf exists; [None] for
    atom-free expressions. *)

val mask_ids : t -> int list
(** Distinct mask indices, in order of first appearance. *)

val size : t -> int
val pp : Format.formatter -> t -> unit

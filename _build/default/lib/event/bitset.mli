(** Fixed-capacity bit sets over [0 .. capacity-1].

    Used as state sets during subset construction. The string key makes a
    set usable directly as a hash-table key. *)

type t

val create : int -> t
(** [create capacity] is the empty set able to hold [0..capacity-1]. *)

val capacity : t -> int
val copy : t -> t
val add : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val equal : t -> t -> bool
val union_into : t -> t -> unit
(** [union_into dst src] adds every element of [src] to [dst]. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val key : t -> string
(** Canonical key: two sets of equal capacity have equal keys iff they are
    equal. *)

val of_list : int -> int list -> t

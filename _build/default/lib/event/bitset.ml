type t = { cap : int; bits : Bytes.t }

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { cap; bits = Bytes.make ((cap + 7) / 8) '\000' }

let capacity t = t.cap
let copy t = { t with bits = Bytes.copy t.bits }

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let is_empty t = Bytes.for_all (fun c -> c = '\000') t.bits
let equal t1 t2 = t1.cap = t2.cap && Bytes.equal t1.bits t2.bits

let union_into dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset.union_into";
  for i = 0 to Bytes.length dst.bits - 1 do
    let b = Char.code (Bytes.get dst.bits i) lor Char.code (Bytes.get src.bits i) in
    Bytes.set dst.bits i (Char.chr b)
  done

let iter f t =
  for i = 0 to t.cap - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
let key t = Bytes.to_string t.bits

let of_list cap xs =
  let t = create cap in
  List.iter (add t) xs;
  t

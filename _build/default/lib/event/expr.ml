type formal = { f_ty : string option; f_name : string }

type leaf = {
  basic : Symbol.basic;
  formals : formal list;
  mask : Mask.t option;
}

type t =
  | Leaf of leaf
  | Or of t * t
  | And of t * t
  | Not of t
  | Relative of t list
  | Relative_plus of t
  | Relative_n of int * t
  | Prior of t list
  | Prior_n of int * t
  | Sequence of t list
  | Sequence_n of int * t
  | Choose of int * t
  | Every of int * t
  | Fa of t * t * t
  | Fa_abs of t * t * t
  | Masked of t * Mask.t

let leaf ?(formals = []) ?mask basic = Leaf { basic; formals; mask }
let before ?formals ?mask name = leaf ?formals ?mask (Symbol.Method (Before, name))
let after ?formals ?mask name = leaf ?formals ?mask (Symbol.Method (After, name))
let method_any name = Or (before name, after name)
let state_event mask = Masked (Or (leaf (Update After), leaf Create), mask)

let curried op = function
  | [] -> invalid_arg "event operator needs at least one argument"
  | [ e ] -> e
  | es -> op es

let relative es = curried (fun es -> Relative es) es
let prior es = curried (fun es -> Prior es) es
let sequence es = curried (fun es -> Sequence es) es
let fa e f g = Fa (e, f, g)
let fa_abs e f g = Fa_abs (e, f, g)

let counted op n e =
  if n < 1 then invalid_arg "event operator count must be >= 1" else op n e

let choose n e = counted (fun n e -> Choose (n, e)) n e
let every n e = counted (fun n e -> Every (n, e)) n e
let relative_n n e = counted (fun n e -> Relative_n (n, e)) n e
let prior_n n e = counted (fun n e -> Prior_n (n, e)) n e
let sequence_n n e = counted (fun n e -> Sequence_n (n, e)) n e
let relative_plus e = Relative_plus e
let ( |: ) e1 e2 = Or (e1, e2)
let ( &: ) e1 e2 = And (e1, e2)
let not_ e = Not e
let masked e m = Masked (e, m)

let equal (e1 : t) (e2 : t) = e1 = e2

(* Flatten an associative/curried operator and drop nothing: used by
   [simplify]. *)
let rec simplify (e : t) : t =
  match e with
  | Leaf _ -> e
  | Or (a, b) -> (
    let a = simplify a and b = simplify b in
    match a = b with true -> a | false -> Or (a, b))
  | And (a, b) -> (
    let a = simplify a and b = simplify b in
    match a = b with true -> a | false -> And (a, b))
  | Not a -> (
    match simplify a with Not inner -> inner | a -> Not a)
  | Relative es -> (
    (* relative is fully associative: flatten nested chains *)
    let rec flat e =
      match simplify e with Relative inner -> List.concat_map flat inner | e -> [ e ]
    in
    match List.concat_map flat es with [ e ] -> e | es -> Relative es)
  | Prior es -> (
    (* currying is a left fold: only the head may be flattened *)
    let es = List.map simplify es in
    let es = match es with Prior inner :: rest -> inner @ rest | es -> es in
    match es with [ e ] -> e | es -> Prior es)
  | Sequence es -> (
    let es = List.map simplify es in
    let es = match es with Sequence inner :: rest -> inner @ rest | es -> es in
    match es with [ e ] -> e | es -> Sequence es)
  | Relative_plus a -> (
    match simplify a with
    | Relative_plus _ as inner -> inner (* (L+)+ = L+ *)
    | a -> Relative_plus a)
  | Relative_n (1, a) -> simplify (Relative_plus a)
  | Relative_n (n, a) -> Relative_n (n, simplify a)
  | Prior_n (n, a) -> Prior_n (n, simplify a)
  | Sequence_n (1, a) -> simplify a (* E at p..p: just E *)
  | Sequence_n (n, a) -> Sequence_n (n, simplify a)
  | Choose (n, a) -> Choose (n, simplify a)
  | Every (n, a) -> Every (n, simplify a)
  | Fa (a, b, g) -> Fa (simplify a, simplify b, simplify g)
  | Fa_abs (a, b, g) -> Fa_abs (simplify a, simplify b, simplify g)
  | Masked (a, m) -> (
    match simplify a with
    | Masked (inner, m') -> Masked (inner, Mask.And (m', m))
    | a -> Masked (a, m))

let rec size = function
  | Leaf _ -> 1
  | Not e | Relative_plus e | Relative_n (_, e) | Prior_n (_, e)
  | Sequence_n (_, e) | Choose (_, e) | Every (_, e) | Masked (e, _) ->
    1 + size e
  | Or (e1, e2) | And (e1, e2) -> 1 + size e1 + size e2
  | Relative es | Prior es | Sequence es ->
    1 + List.fold_left (fun acc e -> acc + size e) 0 es
  | Fa (e, f, g) | Fa_abs (e, f, g) -> 1 + size e + size f + size g

let rec depth = function
  | Leaf _ -> 1
  | Not e | Relative_plus e | Relative_n (_, e) | Prior_n (_, e)
  | Sequence_n (_, e) | Choose (_, e) | Every (_, e) | Masked (e, _) ->
    1 + depth e
  | Or (e1, e2) | And (e1, e2) -> 1 + max (depth e1) (depth e2)
  | Relative es | Prior es | Sequence es ->
    1 + List.fold_left (fun acc e -> max acc (depth e)) 0 es
  | Fa (e, f, g) | Fa_abs (e, f, g) -> 1 + max (depth e) (max (depth f) (depth g))

let leaves expr =
  let rec go acc = function
    | Leaf l -> l :: acc
    | Not e | Relative_plus e | Relative_n (_, e) | Prior_n (_, e)
    | Sequence_n (_, e) | Choose (_, e) | Every (_, e) | Masked (e, _) ->
      go acc e
    | Or (e1, e2) | And (e1, e2) -> go (go acc e1) e2
    | Relative es | Prior es | Sequence es -> List.fold_left go acc es
    | Fa (e, f, g) | Fa_abs (e, f, g) -> go (go (go acc e) f) g
  in
  List.rev (go [] expr)

let logical_events expr =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun l ->
      if Hashtbl.mem seen l then false
      else begin
        Hashtbl.add seen l ();
        true
      end)
    (leaves expr)

let pp_formal ppf { f_ty; f_name } =
  match f_ty with
  | None -> Fmt.string ppf f_name
  | Some ty -> Fmt.pf ppf "%s %s" ty f_name

let pp_leaf ppf { basic; formals; mask } =
  (match basic, formals with
  | Symbol.Method (q, name), _ :: _ ->
    Fmt.pf ppf "%a %s(%a)" Symbol.pp_qualifier q name
      Fmt.(list ~sep:(any ", ") pp_formal)
      formals
  | (Symbol.Create | Symbol.Delete), _ :: _ ->
    Fmt.pf ppf "%a(%a)" Symbol.pp_basic basic
      Fmt.(list ~sep:(any ", ") pp_formal)
      formals
  | _, _ -> Symbol.pp_basic ppf basic);
  match mask with
  | None -> ()
  | Some m -> Fmt.pf ppf " && %a" Mask.pp m

(* Operator-call forms are printed with their keyword; the infix levels
   are [;] < [|] < [&] < [!] < [&& mask]; children needing a lower level
   are parenthesized. *)
let rec pp ppf e = pp_union ppf e

and pp_union ppf = function
  | Or (e1, e2) -> Fmt.pf ppf "%a | %a" pp_union e1 pp_inter e2
  | e -> pp_inter ppf e

and pp_inter ppf = function
  | And (e1, e2) -> Fmt.pf ppf "%a & %a" pp_inter e1 pp_unary e2
  | e -> pp_unary ppf e

and pp_unary ppf = function
  | Not e -> Fmt.pf ppf "!%a" pp_unary e
  | e -> pp_postfix ppf e

and pp_postfix ppf = function
  | Masked (e, m) -> Fmt.pf ppf "%a && %a" pp_atom e Mask.pp m
  | e -> pp_atom ppf e

and pp_atom ppf = function
  | Leaf l -> pp_leaf ppf l
  | Relative es -> pp_call ppf "relative" es
  | Prior es -> pp_call ppf "prior" es
  | Sequence es -> pp_call ppf "sequence" es
  | Relative_plus e -> Fmt.pf ppf "relative+(%a)" pp e
  | Relative_n (n, e) -> Fmt.pf ppf "relative %d (%a)" n pp e
  | Prior_n (n, e) -> Fmt.pf ppf "prior %d (%a)" n pp e
  | Sequence_n (n, e) -> Fmt.pf ppf "sequence %d (%a)" n pp e
  | Choose (n, e) -> Fmt.pf ppf "choose %d (%a)" n pp e
  | Every (n, e) -> Fmt.pf ppf "every %d (%a)" n pp e
  | Fa (e, f, g) -> pp_call ppf "fa" [ e; f; g ]
  | Fa_abs (e, f, g) -> pp_call ppf "faAbs" [ e; f; g ]
  | (Or _ | And _ | Not _ | Masked _) as e -> Fmt.pf ppf "(%a)" pp e

and pp_call ppf name es =
  Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp) es

let to_string e = Fmt.str "%a" pp e

let validate expr =
  let exception Bad of string in
  let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  let check_leaf { basic; formals; _ } =
    match basic with
    | Symbol.Method _ | Symbol.Create | Symbol.Delete ->
      (* creation/deletion events carry (oid, class) arguments at database
         scope, so formals are legal on them too *)
      ()
    | _ when formals <> [] -> bad "formals on non-method event %a" Symbol.pp_basic basic
    | _ -> ()
  in
  let rec go = function
    | Leaf l -> check_leaf l
    | Not e | Relative_plus e | Masked (e, _) -> go e
    | Relative_n (n, e) | Prior_n (n, e) | Sequence_n (n, e)
    | Choose (n, e) | Every (n, e) ->
      if n < 1 then bad "operator count %d must be >= 1" n;
      go e
    | Or (e1, e2) | And (e1, e2) ->
      go e1;
      go e2
    | Relative es | Prior es | Sequence es ->
      if es = [] then bad "curried operator with no arguments";
      List.iter go es
    | Fa (e, f, g) | Fa_abs (e, f, g) ->
      go e;
      go f;
      go g
  in
  match go expr with () -> Ok () | exception Bad msg -> Error msg

type t = {
  union : Rewrite.t;
  dfa : Dfa.t;
  accepts : bool array array;  (* state -> trigger -> accept *)
  relevant : bool array array;  (* union symbol -> trigger -> relevant *)
  parts_states : int;
}

let rec has_composite_mask (e : Expr.t) =
  match e with
  | Leaf _ -> false
  | Masked (_, _) -> true
  | Not e | Relative_plus e | Relative_n (_, e) | Prior_n (_, e)
  | Sequence_n (_, e) | Choose (_, e) | Every (_, e) ->
    has_composite_mask e
  | Or (e1, e2) | And (e1, e2) -> has_composite_mask e1 || has_composite_mask e2
  | Relative es | Prior es | Sequence es -> List.exists has_composite_mask es
  | Fa (e, f, g) | Fa_abs (e, f, g) ->
    has_composite_mask e || has_composite_mask f || has_composite_mask g

(* For one trigger: map each union symbol to the trigger's own symbol, or
   None when the occurrence is not one of this trigger's logical events. *)
let symbol_map (union : Rewrite.t) (own : Rewrite.t) =
  let find_own_key basic =
    let found = ref None in
    Array.iteri
      (fun k b -> if Symbol.equal_basic b basic then found := Some k)
      own.Rewrite.keys;
    !found
  in
  Array.map
    (fun (k_u, bits_u) ->
      let basic = union.Rewrite.keys.(k_u) in
      match find_own_key basic with
      | None -> None
      | Some k_o ->
        let union_guards = union.Rewrite.guards.(k_u) in
        let own_guards = own.Rewrite.guards.(k_o) in
        let bits_o = ref 0 in
        Array.iteri
          (fun j g ->
            Array.iteri
              (fun ju gu -> if gu = g && bits_u land (1 lsl ju) <> 0 then bits_o := !bits_o lor (1 lsl j))
              union_guards)
          own_guards;
        if !bits_o = 0 then None
        else Rewrite.atom_lookup own ~key:k_o ~bits:!bits_o)
    union.Rewrite.atoms

(* Lift a DFA over the trigger's own alphabet to the union alphabet:
   irrelevant symbols leave the state unchanged (per-trigger history). *)
let skip_lift ~m_union ~map (d : Dfa.t) : Dfa.t =
  let n = Dfa.n_states d in
  let delta =
    Array.init n (fun q ->
        Array.init m_union (fun s ->
            if s >= Array.length map then q (* union "other" *)
            else match map.(s) with Some o -> d.Dfa.delta.(q).(o) | None -> q))
  in
  { Dfa.m = m_union; start = d.Dfa.start; accept = Array.copy d.Dfa.accept; delta }

let make exprs =
  if exprs = [] then invalid_arg "Combine.make: no triggers";
  List.iter
    (fun e ->
      if has_composite_mask e then
        invalid_arg "Combine.make: composite masks cannot be combined")
    exprs;
  let union_expr =
    match exprs with e :: rest -> List.fold_left (fun a b -> Expr.Or (a, b)) e rest | [] -> assert false
  in
  let union, _, _ = Rewrite.build union_expr in
  let m_union = Rewrite.n_symbols union in
  let parts =
    List.map
      (fun e ->
        let own, lowered, _ = Rewrite.build e in
        let d = Compile.compile_pure ~m:(Rewrite.n_symbols own) lowered in
        let map = symbol_map union own in
        (skip_lift ~m_union ~map d, map))
      exprs
  in
  let k = List.length parts in
  let lifted = Array.of_list (List.map fst parts) in
  let maps = Array.of_list (List.map snd parts) in
  let parts_states = Array.fold_left (fun acc d -> acc + Dfa.n_states d) 0 lifted in
  (* product over reachable tuples *)
  let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rows = ref [] in
  let count = ref 0 in
  let key_of tuple = String.concat "," (Array.to_list (Array.map string_of_int tuple)) in
  let rec visit tuple =
    let key = key_of tuple in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Dfa.check_limit !count;
      Hashtbl.add index key i;
      let row = Array.make m_union 0 in
      rows := (i, tuple, row) :: !rows;
      for s = 0 to m_union - 1 do
        let next = Array.mapi (fun t q -> lifted.(t).Dfa.delta.(q).(s)) tuple in
        row.(s) <- visit next
      done;
      i
  in
  let start = visit (Array.map (fun d -> d.Dfa.start) lifted) in
  let n = !count in
  let accept = Array.make n false in
  let delta = Array.make n [||] in
  let accepts = Array.make n [||] in
  List.iter
    (fun (i, tuple, row) ->
      delta.(i) <- row;
      accepts.(i) <- Array.mapi (fun t q -> lifted.(t).Dfa.accept.(q)) tuple;
      accept.(i) <- Array.exists Fun.id accepts.(i))
    !rows;
  let dfa = { Dfa.m = m_union; start; accept; delta } in
  let relevant =
    Array.init m_union (fun s ->
        Array.init k (fun t ->
            s < Array.length union.Rewrite.atoms && maps.(t).(s) <> None))
  in
  { union; dfa; accepts; relevant; parts_states }

let n_triggers t = if Array.length t.accepts = 0 then 0 else Array.length t.accepts.(0)
let n_states t = Dfa.n_states t.dfa
let sum_of_parts t = t.parts_states
let initial t = t.dfa.Dfa.start
let union_alphabet t = t.union

let post t state ~env occurrence =
  let s = Rewrite.classify t.union ~env occurrence in
  if s = Rewrite.other t.union then (state, Array.make (n_triggers t) false)
  else begin
    let state' = Dfa.step t.dfa state s in
    let fired =
      Array.mapi (fun i acc -> acc && t.relevant.(s).(i)) t.accepts.(state')
    in
    (state', fired)
  end

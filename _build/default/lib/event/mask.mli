(** Masks — predicates attached to basic or composite events (paper §3.2).

    A mask on a logical event may read the parameters of the basic event
    and any database state, evaluated as of the instant the basic event
    occurred. A mask on a composite event can only see the current
    database state. Both cases evaluate a [t] against an {!env}. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Const of Ode_base.Value.t
  | Var of string
      (** resolved as an event parameter first, then as a field of the
          object the event was posted to *)
  | Get of t * string  (** field of an object denoted by an [Oid] value *)
  | Call of string * t list  (** registered database function *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | Neg of t

type env = {
  var : string -> Ode_base.Value.t option;
  deref : int -> string -> Ode_base.Value.t option;
  call : string -> Ode_base.Value.t list -> Ode_base.Value.t;
}

exception Eval_error of string

val empty_env : env
(** An environment with no bindings; any lookup raises [Eval_error]. *)

val eval : env -> t -> Ode_base.Value.t
val eval_bool : env -> t -> bool
(** [eval_bool] raises [Eval_error] if the mask does not evaluate to a
    boolean. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val vars : t -> string list
(** Free [Var] names, without duplicates, in first-use order. *)

val pp : Format.formatter -> t -> unit

(** Convenience constructors for embedded use. *)

val v_int : int -> t
val v_float : float -> t
val v_bool : bool -> t
val v_str : string -> t
val var : string -> t
val ( <% ) : t -> t -> t
val ( <=% ) : t -> t -> t
val ( >% ) : t -> t -> t
val ( >=% ) : t -> t -> t
val ( =% ) : t -> t -> t
val ( <>% ) : t -> t -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t
val not_ : t -> t

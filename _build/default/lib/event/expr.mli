(** Event expressions — the full O++ composition algebra (paper §3.3–3.4).

    The alphabet of an expression is its set of {e logical events}: basic
    events optionally guarded by a mask over the event's parameters and
    the database state at occurrence time. Composite events combine
    logical events with the operators below; a composite may itself carry
    a mask, evaluated against the current database state. *)

type formal = { f_ty : string option; f_name : string }
(** A formal parameter declaration in a method event, e.g.
    [after withdraw (Item i, int q)] declares [{Item,i}; {int,q}].
    Formals both disambiguate overloaded methods (by arity) and name the
    actual arguments for use in masks. *)

type leaf = {
  basic : Symbol.basic;
  formals : formal list;
  mask : Mask.t option;
}

type t =
  | Leaf of leaf
  | Or of t * t  (** [E | F] — union *)
  | And of t * t  (** [E & F] — intersection *)
  | Not of t  (** [!E] — complement over the history's points *)
  | Relative of t list  (** curried; [Relative [e]] means [e] *)
  | Relative_plus of t
  | Relative_n of int * t
  | Prior of t list
  | Prior_n of int * t
  | Sequence of t list  (** also written with [;] *)
  | Sequence_n of int * t
  | Choose of int * t
  | Every of int * t
  | Fa of t * t * t
  | Fa_abs of t * t * t
  | Masked of t * Mask.t  (** composite [&& mask] *)

val leaf : ?formals:formal list -> ?mask:Mask.t -> Symbol.basic -> t

val before : ?formals:formal list -> ?mask:Mask.t -> string -> t
(** [before name] — method-execution event. *)

val after : ?formals:formal list -> ?mask:Mask.t -> string -> t

val method_any : string -> t
(** The shorthand "[f] used as an event" = [(before f | after f)]. *)

val state_event : Mask.t -> t
(** The paper's special form: a boolean expression over the object state
    stands for [(after update | after create) && mask]. *)

val relative : t list -> t
val prior : t list -> t
val sequence : t list -> t
(** Smart constructors: require a non-empty list; a singleton collapses to
    its element ("[relative (E)] means simply [E]"). *)

val fa : t -> t -> t -> t
val fa_abs : t -> t -> t -> t
val choose : int -> t -> t
val every : int -> t -> t
(** [choose]/[every]/[Relative_n]/[Prior_n]/[Sequence_n] require a count
    [>= 1]; the constructors raise [Invalid_argument] otherwise. *)

val relative_n : int -> t -> t
val prior_n : int -> t -> t
val sequence_n : int -> t -> t
val relative_plus : t -> t
val ( |: ) : t -> t -> t
val ( &: ) : t -> t -> t
val not_ : t -> t
val masked : t -> Mask.t -> t

val equal : t -> t -> bool

val simplify : t -> t
(** Language-preserving normalization: idempotent boolean laws
    ([E|E = E], [!!E = E], duplicate branches), flattening of associative
    [relative] chains and of the curried head of [prior]/[sequence],
    collapsing of nested [relative+], [relative 1 (E) = relative+(E)],
    and merging of stacked composite masks. The result never has more AST
    nodes than the input. *)

val size : t -> int
(** AST node count. *)

val depth : t -> int

val leaves : t -> leaf list
(** All leaves, left to right, duplicates preserved. *)

val logical_events : t -> leaf list
(** Distinct leaves in first-occurrence order — the expression's alphabet
    of logical events. *)

val pp : Format.formatter -> t -> unit
(** Concrete O++ syntax, re-parsable by [Ode_lang.Parser]. *)

val to_string : t -> string

val validate : t -> (unit, string) result
(** Reject specifications the paper forbids or that are ill-formed:
    [before tcommit] cannot be specified (only [After] commit exists —
    enforced by construction here), counts must be positive, and curried
    operators need at least one argument. *)

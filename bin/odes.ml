(* odes — serve one active database over TCP (docs/PROTOCOL.md).

     odes serve --port 7912 --schema examples/odl/stockroom.odl

   The database is configured exactly like an embedded one: the
   Database.Config env vars (ODE_STORE_BACKEND, ODE_DURABILITY,
   ODE_PARTITIONS, ODE_POST_DOMAINS) apply, and the serve-specific
   knobs (port, batch window, outbox bound, backpressure) ride on the
   same Config record. A partitioned engine is wire-transparent:
   coalesced batches route by oid inside post_many, and batch serials
   and firing totals in replies are identical at any partition count. *)

module D = Ode_odb.Database
module Server = Ode_net.Server

let cmd_serve host port window max_batch outbox bp schema_file obs partitions =
  match
    let base = D.Config.of_env () in
    let base =
      match partitions with
      | None -> base
      | Some n -> { base with D.Config.partitions = n }
    in
    let config =
      {
        base with
        D.Config.serve =
          {
            base.D.Config.serve with
            D.Config.host;
            port;
            batch_window_ms = window;
            max_batch;
            outbox_bound = outbox;
            backpressure = bp;
          };
      }
    in
    let srv = Server.create ~config () in
    let db = Server.db srv in
    if obs then D.set_observability db true;
    (match schema_file with
    | None -> ()
    | Some path ->
      let classes = Ode_odl.Odl.load_schema_file db path in
      Fmt.pr "odes: loaded %d class(es): %s@." (List.length classes)
        (String.concat ", " classes));
    Fmt.pr "odes: listening on %s:%d@." host (Server.port srv);
    Fmt.pr "odes: %s@." (D.config_summary db);
    (* ctrl-C exits the loop the same way the shutdown verb does *)
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Server.stop srv));
    Server.run srv;
    Fmt.pr "odes: stopped@."
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, fn, _) ->
    Error (`Msg (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
  | exception Ode_odl.Odl.Odl_error (msg, pos) ->
    Error (`Msg (Printf.sprintf "schema error at offset %d: %s" pos msg))
  | exception D.Ode_error msg -> Error (`Msg msg)

open Cmdliner

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 7912
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"TCP port to listen on (0 binds an ephemeral port).")

let window_arg =
  Arg.(
    value & opt int 2
    & info [ "batch-window-ms" ] ~docv:"MS"
        ~doc:
          "Coalescing window: posts from clients with no open transaction \
           accumulate for up to $(docv) milliseconds and flush as one \
           post_many batch (0 flushes after every read burst).")

let max_batch_arg =
  Arg.(
    value & opt int 8192
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Flush the coalesced batch when it reaches $(docv) events.")

let outbox_arg =
  Arg.(
    value & opt int 1024
    & info [ "outbox-bound" ] ~docv:"N"
        ~doc:"Queued firing notifications allowed per subscriber.")

let bp_arg =
  Arg.(
    value
    & opt (enum [ ("block", D.Config.Block); ("drop", D.Config.Drop) ]) D.Config.Block
    & info [ "backpressure" ] ~docv:"POLICY"
        ~doc:
          "Default policy when a subscriber's outbox fills: $(b,block) \
           stalls the server until the client drains (lossless), $(b,drop) \
           discards the newest firing and reports a lagged count. A \
           subscribe request may override per connection.")

let schema_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "schema" ] ~docv:"SCHEMA.odl"
        ~doc:"Load this ODL schema before accepting connections.")

let obs_arg =
  Arg.(
    value & flag
    & info [ "obs" ] ~doc:"Enable the Ode_obs observability registry.")

let partitions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "partitions" ] ~docv:"N"
        ~doc:
          "Slice the engine into $(docv) oid-partitioned members, each with \
           its own heap slice, timer wheel and durability log (overrides \
           ODE_PARTITIONS). Observably transparent: same firings, same \
           batch serials, same image bytes as a single engine.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve the database over TCP (docs/PROTOCOL.md)")
    Term.(
      term_result
        (const cmd_serve $ host_arg $ port_arg $ window_arg $ max_batch_arg
       $ outbox_arg $ bp_arg $ schema_arg $ obs_arg $ partitions_arg))

let () =
  let doc = "the active-database server (SIGMOD '92 event triggers over TCP)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "odes" ~doc) [ serve_cmd ]))

(* odec — inspect O++ event specifications from the command line.

     odec parse   'after withdraw(i, q) && q > 100'
     odec compile 'after deposit; before withdraw; after withdraw'
     odec dot     'fa(after a, after b, after c)' > fa.dot
     odec run     'after deposit; after withdraw' \
                  -e 'after deposit' -e 'after withdraw'

   Events for [run] are given with repeated [-e]; variables referenced by
   masks with [-v name=value]. *)

open Ode_event
module P = Ode_lang.Parser
module Value = Ode_base.Value

let parse_expr src =
  match P.event_of_string src with
  | Ok e -> Ok e
  | Error msg -> Error (`Msg ("parse error at " ^ msg))

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let cmd_parse expr =
  Fmt.pr "%s@." (Expr.to_string expr);
  let leaves = Expr.logical_events expr in
  Fmt.pr "@.%d logical events:@." (List.length leaves);
  List.iter (fun l -> Fmt.pr "  %a@." Expr.pp (Expr.Leaf l)) leaves;
  Ok ()

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compiled_of expr =
  let alphabet, lowered, masks = Rewrite.build expr in
  let compiled = Compile.compile ~m:(Rewrite.n_symbols alphabet) lowered in
  (alphabet, lowered, masks, compiled)

let cmd_compile expr =
  match compiled_of expr with
  | exception Invalid_argument msg -> Error (`Msg msg)
  | alphabet, lowered, masks, compiled ->
    Fmt.pr "%a@." Rewrite.pp alphabet;
    Fmt.pr "lowered: %a@." Lowered.pp lowered;
    if Array.length masks > 0 then begin
      Fmt.pr "composite masks:@.";
      Array.iteri (fun i m -> Fmt.pr "  m%d: %a@." i Mask.pp m) masks
    end;
    Array.iteri
      (fun i level ->
        Fmt.pr "level %d automaton (mask m%d): %d states@." i level.Compile.l_mask
          (Dfa.n_states level.Compile.l_dfa))
      compiled.Compile.levels;
    Fmt.pr "top automaton: %d states over %d symbols@."
      (Dfa.n_states compiled.Compile.top_dfa)
      compiled.Compile.top_dfa.Dfa.m;
    Fmt.pr "detection state: %d word(s) per active trigger per object@."
      (Compile.n_state_words compiled);
    Ok ()

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let cmd_dot expr =
  match compiled_of expr with
  | exception Invalid_argument msg -> Error (`Msg msg)
  | alphabet, _, _, compiled ->
    let dfa = compiled.Compile.top_dfa in
    let sym_label s =
      let base = s / (1 lsl Array.length compiled.Compile.top_deps) in
      if base = Rewrite.other alphabet then "other"
      else begin
        let key, bits = alphabet.Rewrite.atoms.(base) in
        Fmt.str "%a/%d" Symbol.pp_basic alphabet.Rewrite.keys.(key) bits
      end
    in
    Fmt.pr "digraph event {@.  rankdir=LR;@.  node [shape=circle];@.";
    Fmt.pr "  start [shape=point];@.  start -> %d;@." dfa.Dfa.start;
    Array.iteri
      (fun s acc -> if acc then Fmt.pr "  %d [shape=doublecircle];@." s)
      dfa.Dfa.accept;
    (* merge parallel edges *)
    Array.iteri
      (fun s row ->
        let targets = Hashtbl.create 8 in
        Array.iteri
          (fun c q ->
            let labels = Option.value (Hashtbl.find_opt targets q) ~default:[] in
            Hashtbl.replace targets q (sym_label c :: labels))
          row;
        Hashtbl.iter
          (fun q labels ->
            Fmt.pr "  %d -> %d [label=\"%s\"];@." s q
              (String.concat "\\n" (List.rev labels)))
          targets)
      dfa.Dfa.delta;
    Fmt.pr "}@.";
    Ok ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

(* An occurrence is written like a basic event with literal arguments:
   "after withdraw(1, 200)". *)
let parse_occurrence src : (Symbol.occurrence, [ `Msg of string ]) result =
  let module L = Ode_lang.Lexer in
  let err fmt = Format.kasprintf (fun m -> Error (`Msg m)) fmt in
  match L.tokenize src with
  | exception L.Lex_error (msg, _) -> err "bad occurrence %S: %s" src msg
  | toks -> (
    let tok i = if i < Array.length toks then toks.(i).L.tok else L.EOF in
    let qualifier q name =
      match q, name with
      | "after", "create" -> Ok Symbol.Create
      | "before", "delete" -> Ok Symbol.Delete
      | q, "update" -> Ok (Symbol.Update (if q = "before" then Before else After))
      | q, "read" -> Ok (Symbol.Read (if q = "before" then Before else After))
      | q, "access" -> Ok (Symbol.Access (if q = "before" then Before else After))
      | "after", "tbegin" -> Ok Symbol.Tbegin
      | "before", "tcomplete" -> Ok Symbol.Tcomplete
      | "after", "tcommit" -> Ok Symbol.Tcommit
      | q, "tabort" -> Ok (Symbol.Tabort (if q = "before" then Before else After))
      | q, name ->
        Ok (Symbol.Method ((if q = "before" then Before else After), name))
    in
    match tok 0, tok 1 with
    | L.IDENT (("before" | "after") as q), L.IDENT name -> (
      match qualifier q name with
      | Error _ as e -> e
      | Ok basic -> (
        let rec args i acc =
          match tok i with
          | L.RPAREN when tok (i + 1) = L.EOF -> Ok (List.rev acc)
          | L.INT n -> next (i + 1) (Value.Int n :: acc)
          | L.FLOAT f -> next (i + 1) (Value.Float f :: acc)
          | L.STRING str -> next (i + 1) (Value.String str :: acc)
          | L.MINUS -> (
            match tok (i + 1) with
            | L.INT n -> next (i + 2) (Value.Int (-n) :: acc)
            | L.FLOAT f -> next (i + 2) (Value.Float (-.f) :: acc)
            | _ -> err "bad argument in %S" src)
          | _ -> err "bad argument list in %S" src
        and next i acc =
          match tok i with
          | L.COMMA -> args (i + 1) acc
          | L.RPAREN when tok (i + 1) = L.EOF -> Ok (List.rev acc)
          | _ -> err "bad argument list in %S" src
        in
        match tok 2 with
        | L.EOF -> Ok { Symbol.basic; args = []; at = 0L }
        | L.LPAREN -> (
          match args 3 [] with
          | Ok args -> Ok { Symbol.basic; args; at = 0L }
          | Error _ as e -> e)
        | _ -> err "trailing tokens in %S" src))
    | _ -> err "%S is not a basic event occurrence (expected 'before NAME' or 'after NAME')" src)

let parse_binding src =
  match String.index_opt src '=' with
  | None -> Error (`Msg (Printf.sprintf "bad binding %S (expected name=value)" src))
  | Some i ->
    let name = String.sub src 0 i in
    let v = String.sub src (i + 1) (String.length src - i - 1) in
    let value =
      match int_of_string_opt v, float_of_string_opt v, bool_of_string_opt v with
      | Some n, _, _ -> Value.Int n
      | None, Some f, _ -> Value.Float f
      | None, None, Some b -> Value.Bool b
      | None, None, None -> Value.String v
    in
    Ok (name, value)

let cmd_run expr events bindings =
  let ( let* ) = Result.bind in
  let rec collect f acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* v = f x in
      collect f (v :: acc) rest
  in
  let* occurrences = collect parse_occurrence [] events in
  let* bound = collect parse_binding [] bindings in
  match Detector.make expr with
  | exception Invalid_argument msg -> Error (`Msg msg)
  | det ->
    let env =
      {
        Mask.empty_env with
        var = (fun name -> List.assoc_opt name bound);
      }
    in
    let state = Detector.initial det in
    List.iteri
      (fun i occ ->
        let fired = Detector.post det state ~env occ in
        Fmt.pr "%3d  %-40s %s@." (i + 1)
          (Fmt.str "%a" Symbol.pp_occurrence occ)
          (if fired then "<-- event occurs" else ""))
      occurrences;
    Ok ()

(* ------------------------------------------------------------------ *)
(* normalize: simplify, minimal automaton, equivalent regex             *)
(* ------------------------------------------------------------------ *)

let cmd_normalize expr =
  let simplified = Expr.simplify expr in
  Fmt.pr "input:      %s@." (Expr.to_string expr);
  Fmt.pr "simplified: %s@." (Expr.to_string simplified);
  match compiled_of simplified with
  | exception Invalid_argument msg -> Error (`Msg msg)
  | _, _, masks, compiled when Array.length masks > 0 || Array.length compiled.Compile.levels > 0 ->
    Fmt.pr "(composite masks present: no single-automaton regex view)@.";
    Ok ()
  | alphabet, _, _, compiled ->
    let dfa = Dfa.minimize compiled.Compile.top_dfa in
    Fmt.pr "minimal automaton: %d states over %d atoms + other@." (Dfa.n_states dfa)
      (Array.length alphabet.Rewrite.atoms);
    let regex = Regex.of_dfa dfa in
    Fmt.pr "equivalent regex (s<i> = atom i, by Kleene state elimination):@.  %a@."
      Regex.pp regex;
    Ok ()

(* ------------------------------------------------------------------ *)
(* schema: load an ODL file, optionally drive it with a script          *)
(* ------------------------------------------------------------------ *)

let cmd_schema schema_file script_file obs =
  let module D = Ode_odb.Database in
  let module Obs = Ode_obs.Registry in
  let module Trace = Ode_obs.Trace in
  let db = D.create_db () in
  if obs then begin
    D.set_observability db true;
    (* narrate firings as they happen; everything else is summarised at
       the end from the registry *)
    ignore
      (Trace.add_sink
         (Obs.trace (D.observe db))
         (function
           | Trace.Fired { scope; trigger; txn; _ } ->
             Fmt.epr "[obs] fired %a.%s (txn %d)@." Trace.pp_scope scope trigger
               txn
           | _ -> ()))
  end;
  (* a few built-in database functions scripts tend to want *)
  D.register_fun db "now" (fun db _ ->
      Value.Int (Int64.to_int (D.now db)));
  let summarise () =
    if obs then Fmt.pr "-- observability --@.%a@." Obs.pp (D.observe db)
  in
  match
    let classes = Ode_odl.Odl.load_schema_file db schema_file in
    Fmt.pr "loaded %d class(es): %s@." (List.length classes)
      (String.concat ", " classes);
    (match script_file with
    | Some path ->
      Fmt.pr "-- running %s --@." path;
      Ode_odl.Odl.run_script_file db path
    | None -> ());
    let st = Ode_odb.Database.stats db in
    Fmt.pr "-- %d object(s), %d active trigger(s), %d bytes of detection state --@."
      st.Ode_odb.Database.n_objects st.Ode_odb.Database.n_active_triggers
      st.Ode_odb.Database.state_bytes;
    Fmt.pr "-- config: %s --@." (D.config_summary db);
    summarise ()
  with
  | () -> Ok ()
  | exception Ode_odl.Odl.Odl_error (msg, pos) ->
    Error (`Msg (Printf.sprintf "syntax error at offset %d: %s" pos msg))
  | exception Ode_odb.Database.Ode_error msg -> Error (`Msg msg)

(* ------------------------------------------------------------------ *)
(* wal-dump: pretty-print a write-ahead log                            *)
(* ------------------------------------------------------------------ *)

let cmd_wal_dump path =
  let module Wal = Ode_odb.Wal in
  match Ode_base.Codec.of_file path with
  | exception Sys_error msg -> Error (`Msg msg)
  | bytes ->
    let { Wal.frames; damage } = Wal.scan_bytes bytes in
    Fmt.pr "%s: %d bytes, %d complete frame(s)@." path (String.length bytes)
      (List.length frames);
    let offset = ref (String.length Wal.header) in
    List.iteri
      (fun i payload ->
        (match Wal.decode_summary payload with
        | s ->
          Fmt.pr "frame %3d @@ %-8d %4d bytes  crc ok   next_oid=%d next_txn=%d \
                  clock=%Ldms%s@."
            i !offset (String.length payload) s.Wal.s_next_oid s.Wal.s_next_txn
            s.Wal.s_clock_ms
            (match s.Wal.s_timers with
            | None -> ""
            | Some n -> Fmt.str " timers=%d" n);
          List.iter
            (function
              | Wal.Upsert { oid; class_name; n_triggers } ->
                Fmt.pr "          upsert oid %d (%s, %d activation(s))@." oid
                  class_name n_triggers
              | Wal.Delete oid -> Fmt.pr "          delete oid %d@." oid)
            s.Wal.s_entries
        | exception Ode_base.Codec.Corrupt msg ->
          (* a CRC-valid frame this module wrote always decodes; flag it
             rather than die so the rest of the log still prints *)
          Fmt.pr "frame %3d @@ %-8d %4d bytes  crc ok   UNDECODABLE: %s@." i
            !offset (String.length payload) msg);
        offset := !offset + 8 + String.length payload)
      frames;
    (match damage with
    | None -> Fmt.pr "log is clean@."
    | Some Wal.Bad_header ->
      Fmt.pr "DAMAGE: bad log header (expected %S)@." Wal.header
    | Some (Wal.Truncated { offset }) ->
      Fmt.pr "DAMAGE: incomplete frame at offset %d (torn tail; %d byte(s) \
              dangle)@."
        offset
        (String.length bytes - offset)
    | Some (Wal.Bad_crc { index; offset }) ->
      Fmt.pr "DAMAGE: CRC mismatch on frame %d at offset %d@." index offset);
    if damage = None then Ok ()
    else Error (`Msg "log damaged (recovery would replay the clean prefix)")

(* ------------------------------------------------------------------ *)
(* client: drive a running odes server over the wire                   *)
(* ------------------------------------------------------------------ *)

module Net = Ode_net

let with_client host port f =
  match Net.Client.connect ~host ~port () with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (`Msg
        (Printf.sprintf "cannot reach %s:%d: %s" host port
           (Unix.error_message err)))
  | c ->
    Fun.protect
      ~finally:(fun () -> Net.Client.close c)
      (fun () ->
        match f c with
        | r -> r
        | exception Net.Client.Protocol_error msg -> Error (`Msg msg)
        | exception End_of_file -> Error (`Msg "server closed the connection"))

let rpc c req =
  match Net.Client.request c req with
  | Ok j -> Ok j
  | Error (code, msg) -> Error (`Msg (Printf.sprintf "server error [%s]: %s" code msg))

let cmd_client_status host port =
  with_client host port (fun c ->
      let ( let* ) = Result.bind in
      let* j = rpc c Net.Protocol.Status in
      Fmt.pr "%s@." (Net.Json.to_string j);
      Ok ())

let cmd_client_schema host port file =
  with_client host port (fun c ->
      let ( let* ) = Result.bind in
      let src = In_channel.with_open_bin file In_channel.input_all in
      let* j = rpc c (Net.Protocol.Schema src) in
      Fmt.pr "%s@." (Net.Json.to_string j);
      Ok ())

let cmd_client_post host port oid occs =
  with_client host port (fun c ->
      let ( let* ) = Result.bind in
      let rec items acc = function
        | [] -> Ok (List.rev acc)
        | src :: rest ->
          let* o = parse_occurrence src in
          items
            ({
               Net.Protocol.i_oid = oid;
               i_event = o.Symbol.basic;
               i_args = o.Symbol.args;
             }
            :: acc)
            rest
      in
      let* items = items [] occs in
      let* j = rpc c (Net.Protocol.Post_many items) in
      Fmt.pr "%s@." (Net.Json.to_string j);
      Ok ())

let cmd_client_shutdown host port =
  with_client host port (fun c ->
      let ( let* ) = Result.bind in
      let* _ = rpc c Net.Protocol.Shutdown in
      Fmt.pr "server stopping@.";
      Ok ())

(* The soak: one subscriber connection watching firings, N poster
   connections hammering a shared schema. Used by the CI server-smoke
   step; exits nonzero unless every post is acknowledged and at least
   one firing arrives at the subscriber. *)
let soak_schema =
  {|
  class meter {
    int total = 0;
    int spikes = 0;
  public:
    meter() { activate Spike(); activate Surge(); }
    update void bump(int q)  { total = total + q; }
    update void mark() { spikes = spikes + 1; }
  trigger:
    Spike() : perpetual after bump(q) && q > 5 ==> mark();
    Surge() : perpetual after bump; after bump; after bump ==> mark();
  };
  |}

let cmd_client_soak host port clients events =
  with_client host port (fun sub ->
      let ( let* ) = Result.bind in
      let* _ = rpc sub (Net.Protocol.Schema soak_schema) in
      let* created = rpc sub (Net.Protocol.Create ("meter", [])) in
      let* oid =
        match Net.Json.member "oid" created with
        | Some (Net.Json.Int oid) -> Ok oid
        | _ -> Error (`Msg "create reply carried no oid")
      in
      let* _ = rpc sub (Net.Protocol.Subscribe Net.Protocol.Block) in
      let failures = Atomic.make 0 in
      let posted = Atomic.make 0 in
      let t0 = Unix.gettimeofday () in
      let poster _i =
        Thread.create
          (fun () ->
            match Net.Client.connect ~host ~port () with
            | exception Unix.Unix_error _ -> Atomic.incr failures
            | c ->
              for k = 1 to events do
                match
                  Net.Client.request c
                    (Net.Protocol.Post
                       {
                         Net.Protocol.i_oid = oid;
                         i_event = Symbol.Method (After, "bump");
                         i_args = [ Value.Int (k mod 10) ];
                       })
                with
                | Ok _ -> Atomic.incr posted
                | Error _ -> Atomic.incr failures
              done;
              Net.Client.close c)
          ()
      in
      let threads = List.init clients poster in
      List.iter Thread.join threads;
      let dt = Unix.gettimeofday () -. t0 in
      (* drain the firing stream until it goes quiet *)
      let fired = ref (List.length (Net.Client.poll_firings sub)) in
      let quiet = ref 0 in
      while !quiet < 2 do
        match Net.Client.wait_firing ~timeout_s:0.25 sub with
        | Some _ -> incr fired
        | None -> incr quiet
      done;
      Fmt.pr
        "soak: %d client(s) x %d event(s): %d posted, %d failed, %d firing(s) \
         observed, %.0f events/s@."
        clients events (Atomic.get posted) (Atomic.get failures) !fired
        (float_of_int (Atomic.get posted) /. Float.max 1e-9 dt);
      if Atomic.get failures > 0 then Error (`Msg "soak saw request failures")
      else if Atomic.get posted <> clients * events then
        Error (`Msg "soak lost posts")
      else if !fired = 0 then Error (`Msg "soak observed no firings")
      else Ok ())

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let expr_arg =
  let parse src = parse_expr src in
  let print ppf e = Expr.pp ppf e in
  Arg.(
    required
    & pos 0 (some (conv (parse, print))) None
    & info [] ~docv:"EVENT" ~doc:"An O++ event specification.")

let events_arg =
  Arg.(
    value & opt_all string []
    & info [ "e"; "event" ] ~docv:"OCCURRENCE"
        ~doc:"A basic-event occurrence to post, e.g. 'after withdraw(1, 200)'.")

let bindings_arg =
  Arg.(
    value & opt_all string []
    & info [ "v"; "var" ] ~docv:"NAME=VALUE" ~doc:"Bind a mask variable.")

let wrap f = Term.(term_result (const f $ expr_arg))

let parse_cmd =
  Cmd.v (Cmd.info "parse" ~doc:"Parse and pretty-print an event specification")
    (wrap cmd_parse)

let compile_cmd =
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile to finite automata and report alphabet and state counts")
    (wrap cmd_compile)

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit the compiled automaton as Graphviz dot")
    (wrap cmd_dot)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Post a sequence of occurrences and show detections")
    Term.(term_result (const cmd_run $ expr_arg $ events_arg $ bindings_arg))

let schema_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCHEMA.odl" ~doc:"An ODL class-declaration file.")

let script_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "script" ] ~docv:"FILE" ~doc:"A transaction script to run against the schema.")

let obs_arg =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Enable the Ode_obs observability layer: trace trigger firings to \
           stderr as they happen and print pipeline counters and latency \
           histograms after the script.")

let schema_cmd =
  Cmd.v
    (Cmd.info "schema" ~doc:"Load an ODL schema and optionally run a transaction script")
    Term.(term_result (const cmd_schema $ schema_file_arg $ script_arg $ obs_arg))

let normalize_cmd =
  Cmd.v
    (Cmd.info "normalize"
       ~doc:"Simplify an event specification and show its minimal automaton and regex")
    (wrap cmd_normalize)

let wal_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WAL.log"
        ~doc:"A write-ahead log file (wal-<gen>.log in a database's \
              durability directory).")

let wal_dump_cmd =
  Cmd.v
    (Cmd.info "wal-dump"
       ~doc:
         "Pretty-print the frames of a write-ahead log, flagging CRC \
          mismatches and torn tails")
    Term.(term_result (const cmd_wal_dump $ wal_file_arg))

let chost_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let cport_arg =
  Arg.(
    value & opt int 7912
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let client_status_cmd =
  Cmd.v (Cmd.info "status" ~doc:"Print the server's status JSON")
    Term.(term_result (const cmd_client_status $ chost_arg $ cport_arg))

let client_schema_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCHEMA.odl" ~doc:"ODL source to register on the server.")

let client_schema_cmd =
  Cmd.v (Cmd.info "schema" ~doc:"Register an ODL schema on the server")
    Term.(
      term_result
        (const cmd_client_schema $ chost_arg $ cport_arg $ client_schema_file_arg))

let client_oid_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "oid" ] ~docv:"OID" ~doc:"Object to post the occurrences at.")

let client_occs_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"OCCURRENCE"
        ~doc:"Basic-event occurrences, e.g. 'after withdraw(1, 200)'.")

let client_post_cmd =
  Cmd.v
    (Cmd.info "post" ~doc:"Post basic-event occurrences at an object")
    Term.(
      term_result
        (const cmd_client_post $ chost_arg $ cport_arg $ client_oid_arg
       $ client_occs_arg))

let client_shutdown_cmd =
  Cmd.v (Cmd.info "shutdown" ~doc:"Ask the server to stop")
    Term.(term_result (const cmd_client_shutdown $ chost_arg $ cport_arg))

let soak_clients_arg =
  Arg.(
    value & opt int 4
    & info [ "clients" ] ~docv:"N" ~doc:"Concurrent poster connections.")

let soak_events_arg =
  Arg.(
    value & opt int 500
    & info [ "events" ] ~docv:"M" ~doc:"Events posted per client.")

let client_soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Register a built-in schema, hammer it from N concurrent \
          connections and verify firings stream back (exits nonzero on any \
          lost post or a silent trigger)")
    Term.(
      term_result
        (const cmd_client_soak $ chost_arg $ cport_arg $ soak_clients_arg
       $ soak_events_arg))

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running odes server (docs/PROTOCOL.md)")
    [
      client_status_cmd;
      client_schema_cmd;
      client_post_cmd;
      client_soak_cmd;
      client_shutdown_cmd;
    ]

let () =
  let doc = "composite trigger events, compiled to finite automata (SIGMOD '92)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "odec" ~doc)
          [
            parse_cmd;
            compile_cmd;
            dot_cmd;
            run_cmd;
            schema_cmd;
            normalize_cmd;
            wal_dump_cmd;
            client_cmd;
          ]))

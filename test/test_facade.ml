(* Facade compatibility: one end-to-end scenario exercised purely
   through the public [Database] API, pinning the facade's behaviour
   across the Schema/Store/Txn/Engine/Timewheel/Persist layering —
   create class -> activate trigger -> transaction with method calls ->
   commit -> firing subscription -> save/load round-trip. Also covers
   the two configuration knobs the refactor introduced: the
   per-database dispatch-index switch and [?max_tcomplete_rounds]. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Buffer firings through the subscription surface; [drain] returns the
   firings since the last drain, oldest first. *)
let collect_firings db =
  let buf = ref [] in
  ignore (D.subscribe_firings db (fun f -> buf := f :: !buf));
  fun () ->
    let fs = List.rev !buf in
    buf := [];
    fs

(* An account whose audit trigger wants two deposits, collecting the
   amount of the most recent one (§9). *)
let schema () =
  D.define_class "account"
  |> (fun b -> D.field b "balance" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "deposit" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "balance"
               (Value.add (D.get_field db oid "balance") q);
             Value.Unit
           | _ -> Value.Unit))
  |> fun b ->
  D.trigger_str b "audit" ~event:"after deposit(int x); after deposit"
    ~action:(fun _ _ -> ())

let tmp = Filename.temp_file "ode_facade" ".img"

let test_end_to_end () =
  let db = D.create_db () in
  let drain = collect_firings db in
  D.register_class db (schema ());
  Alcotest.(check bool)
    "dispatch index on by default" true
    (D.dispatch_index_enabled db);
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "account" [] in
           D.activate db oid "audit" [];
           ignore (D.call db oid "deposit" [ Value.Int 30 ]);
           ignore (D.call db oid "deposit" [ Value.Int 12 ]);
           oid))
  in
  Alcotest.(check bool) "balance updated" true
    (D.get_field db oid "balance" = Value.Int 42);
  (match drain () with
  | [ f ] ->
    Alcotest.(check string) "trigger" "audit" f.D.f_trigger;
    Alcotest.(check string) "class" "account" f.D.f_class;
    Alcotest.(check int) "oid" oid f.D.f_oid
  | fs -> Alcotest.failf "expected one firing, got %d" (List.length fs));
  Alcotest.(check bool) "one-shot deactivated" false (D.is_active db oid "audit");

  (* Re-arm, make one deposit so the automaton sits mid-sequence, and
     round-trip that state through save/load. *)
  expect_ok
    (D.with_txn db (fun _ ->
         D.activate db oid "audit" [];
         ignore (D.call db oid "deposit" [ Value.Int 5 ])));
  ignore (drain ());
  D.save db tmp;

  let db2 = D.create_db () in
  let drain2 = collect_firings db2 in
  D.register_class db2 (schema ());
  D.load db2 tmp;
  Alcotest.(check (list int)) "objects survive" [ oid ] (D.objects db2);
  Alcotest.(check bool) "field survives" true
    (D.get_field db2 oid "balance" = Value.Int 47);
  Alcotest.(check bool) "activation survives" true (D.is_active db2 oid "audit");
  Alcotest.(check bool) "automaton state survives" true
    (D.trigger_state db oid "audit" = D.trigger_state db2 oid "audit");
  (* one more deposit completes the sequence in the restored database *)
  expect_ok
    (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check (list string))
    "mid-sequence state fires after reload" [ "audit" ]
    (List.map (fun (f : D.firing) -> f.D.f_trigger) (drain2 ()))

(* The per-database switch must force the brute-force reference path —
   observably identical firings. *)
let test_per_db_dispatch_switch () =
  let run ~indexed =
    let db = D.create_db () in
    let drain = collect_firings db in
    D.register_class db (schema ());
    D.set_dispatch_index db indexed;
    Alcotest.(check bool) "flag readable" indexed (D.dispatch_index_enabled db);
    let oid =
      expect_ok
        (D.with_txn db (fun _ ->
             let oid = D.create db "account" [] in
             D.activate db oid "audit" [];
             ignore (D.call db oid "deposit" [ Value.Int 1 ]);
             ignore (D.call db oid "deposit" [ Value.Int 2 ]);
             oid))
    in
    (List.map (fun (f : D.firing) -> (f.D.f_trigger, f.D.f_oid)) (drain ()), oid)
  in
  let fired_on, oid_on = run ~indexed:true in
  let fired_off, oid_off = run ~indexed:false in
  Alcotest.(check bool) "same oid" true (oid_on = oid_off);
  Alcotest.(check bool) "same firings either path" true (fired_on = fired_off);
  Alcotest.(check (list string))
    "audit fired" [ "audit" ]
    (List.map fst fired_on)

let test_tcomplete_livelock_bound () =
  let db = D.create_db ~max_tcomplete_rounds:3 () in
  let b = D.define_class "spin" in
  let b =
    D.trigger_str b ~perpetual:true "forever" ~event:"before tcomplete"
      ~action:(fun _ _ -> ())
  in
  D.register_class db b;
  let tx = D.begin_txn db in
  let oid = D.create db "spin" [] in
  D.activate db oid "forever" [];
  (match D.commit db tx with
  | exception D.Ode_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message names the bound: %s" msg)
      true
      (contains msg "3" && contains msg "livelock")
  | Ok () | Error `Aborted -> Alcotest.fail "commit should hit the round bound");
  Alcotest.(check bool) "bound must be positive" true
    (match D.create_db ~max_tcomplete_rounds:0 () with
    | exception D.Ode_error _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "end-to-end through the public facade" `Quick
      test_end_to_end;
    Alcotest.test_case "per-database dispatch switch" `Quick
      test_per_db_dispatch_switch;
    Alcotest.test_case "tcomplete livelock bound" `Quick
      test_tcomplete_livelock_bound;
  ]

(* Allocation-regression guard for the posting kernel.

   On the steady-state kernel path — dispatch index and posting kernel
   enabled, observability off, mask-free triggers that step but never
   fire — one [Engine.post] allocates only the fixed per-entry
   envelope: the [Symbol.occurrence] record and its boxed [int64]
   timestamp, the [Symbol.Key] dispatch-key wrapper, the committed-mode
   undo [ref], and the [Some obj] stored into the scratch slot —
   measured at ~24 minor-heap words per event on OCaml 5.1/native. The
   classify/step sweep itself — candidate counting, packed-code
   classification, flat-table stepping over the SoA state — allocates
   nothing: it is a constant envelope, independent of the number of
   candidate triggers. The threshold below is double the measured
   budget to absorb compiler-version noise, and tight enough that any
   per-candidate or per-code allocation sneaking back into the kernel
   (a closure, a boxed ref, a tuple — typically 3+ words times four
   candidates here) blows straight through it.

   Skipped on bytecode (different allocation profile) — the guard is
   meaningful only for the native-code compiler the benchmarks use. *)

open Ode_odb
module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Expr = Ode_event.Expr
module Mask = Ode_event.Mask

let words_per_event_threshold = 48.0

(* Multi-level automata pay the same fixed envelope plus, per accepted
   inner level, one composite-mask evaluation — an [env.var] lookup
   returning [Some v] and the comparison's boxed intermediates —
   measured at ~40 words per event on the two-level automaton below.
   Still a constant per event, but a larger one; hence a separate
   budget, again double the measurement. *)
let multi_level_words_per_event_threshold = 80.0

let test_kernel_allocations () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> () (* native-only guard *)
  | Sys.Native ->
    (* raw-layer db: [Engine.post] needs the concrete [obj] *)
    let db = Types.make_db ~backend:(Store.backend_of (Store.default_spec ())) () in
    assert (Engine.posting_kernel_enabled db);
    let b = Schema.define_class "c" in
    let b = Schema.field b "x" (Value.Int 0) in
    let b = Schema.method_ b ~kind:Types.Read_only "ping" (fun _ _ _ -> Value.Unit) in
    let b = Schema.method_ b ~kind:Types.Read_only "never" (fun _ _ _ -> Value.Unit) in
    (* four triggers per object, stepping on every ping but never
       completing: pure classify/step work, no firing pipeline *)
    let b =
      List.fold_left
        (fun b i ->
          Schema.trigger_str b ~perpetual:true
            (Printf.sprintf "t%d" i)
            ~event:"after ping ; after never"
            ~action:(fun _ _ -> ()))
        b [ 0; 1; 2; 3 ]
    in
    Engine.register_class db b;
    let oid =
      match
        Txn.with_txn db (fun _ ->
            let oid = Engine.create db "c" [] in
            for i = 0 to 3 do
              Engine.activate db oid (Printf.sprintf "t%d" i) []
            done;
            oid)
      with
      | Ok oid -> oid
      | Error `Aborted -> Alcotest.fail "setup transaction aborted"
    in
    let obj =
      match Store.find_obj db oid with
      | Some obj -> obj
      | None -> Alcotest.fail "object vanished"
    in
    let basic = Symbol.Method (Symbol.After, "ping") in
    let tx = Txn.begin_txn db in
    (* warm up: first post pays touch/tbegin and scratch setup *)
    for _ = 1 to 64 do
      ignore (Engine.post db tx obj basic [])
    done;
    let n = 10_000 in
    let w0 = Gc.minor_words () in
    for _ = 1 to n do
      ignore (Engine.post db tx obj basic [])
    done;
    let per_event = (Gc.minor_words () -. w0) /. float_of_int n in
    Txn.abort db tx;
    if per_event > words_per_event_threshold then
      Alcotest.failf
        "steady-state kernel post allocates %.1f minor words/event (budget %.1f)"
        per_event words_per_event_threshold

(* The same steady-state guard through a multi-level automaton: the
   trigger event wraps its first step in a composite mask, so every ping
   advances a two-word SoA slot through the per-level flat tables and
   evaluates the mask against the object environment. Pins the
   multi-level kernel path to a constant (if larger) envelope — a
   per-level or per-dependency allocation in [Compile.step_flat_masks]
   would scale it and blow the budget. *)
let test_multi_level_allocations () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> () (* native-only guard *)
  | Sys.Native ->
    let db = Types.make_db ~backend:(Store.backend_of (Store.default_spec ())) () in
    assert (Engine.posting_kernel_enabled db);
    let b = Schema.define_class "c" in
    let b = Schema.field b "cm0" (Value.Bool true) in
    let b = Schema.method_ b ~kind:Types.Read_only "ping" (fun _ _ _ -> Value.Unit) in
    let b = Schema.method_ b ~kind:Types.Read_only "never" (fun _ _ _ -> Value.Unit) in
    let event =
      Expr.sequence
        [
          Expr.Masked
            ( Expr.after "ping",
              Mask.Cmp (Mask.Eq, Mask.Var "cm0", Mask.Const (Value.Bool true)) );
          Expr.after "never";
        ]
    in
    let b =
      List.fold_left
        (fun b i ->
          Schema.trigger b ~perpetual:true
            (Printf.sprintf "m%d" i)
            ~event ~action:(fun _ _ -> ()))
        b [ 0; 1; 2; 3 ]
    in
    Engine.register_class db b;
    let oid =
      match
        Txn.with_txn db (fun _ ->
            let oid = Engine.create db "c" [] in
            for i = 0 to 3 do
              Engine.activate db oid (Printf.sprintf "m%d" i) []
            done;
            oid)
      with
      | Ok oid -> oid
      | Error `Aborted -> Alcotest.fail "setup transaction aborted"
    in
    (* the guard is about the multi-level path: fail loudly if the
       masked sequence ever stops compiling to a >1-word flat slot *)
    Alcotest.(check bool)
      "multi-level state" true
      (Engine.trigger_state_words db oid "m0" > 1);
    let obj =
      match Store.find_obj db oid with
      | Some obj -> obj
      | None -> Alcotest.fail "object vanished"
    in
    let basic = Symbol.Method (Symbol.After, "ping") in
    let tx = Txn.begin_txn db in
    for _ = 1 to 64 do
      ignore (Engine.post db tx obj basic [])
    done;
    let n = 10_000 in
    let w0 = Gc.minor_words () in
    for _ = 1 to n do
      ignore (Engine.post db tx obj basic [])
    done;
    let per_event = (Gc.minor_words () -. w0) /. float_of_int n in
    Txn.abort db tx;
    if per_event > multi_level_words_per_event_threshold then
      Alcotest.failf
        "multi-level kernel post allocates %.1f minor words/event (budget %.1f)"
        per_event multi_level_words_per_event_threshold

let suite =
  [
    Alcotest.test_case "kernel posts stay allocation-free" `Quick
      test_kernel_allocations;
    Alcotest.test_case "multi-level kernel posts stay allocation-free" `Quick
      test_multi_level_allocations;
  ]

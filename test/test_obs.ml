(* The Ode_obs observability layer: pinned pipeline counters for a
   scripted scenario, latency-histogram bookkeeping, the trace ring's
   ordering/truncation/sink behaviour, and the firing-subscription
   surface. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Obs = Ode_obs.Registry
module Trace = Ode_obs.Trace
module Hist = Ode_obs.Hist

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

(* the per-kind key exactly as the engine prints it *)
let kind basic = Format.asprintf "%a" Symbol.pp_basic_key (Symbol.basic_key basic)

(* One object of class [c] with two armed perpetual triggers: [hit] on
   [after ping] (fires on every call) and [inert] on an event never
   posted (pruned by the dispatch index, classified by the scan path).
   Setup runs with observability OFF so the counters reflect only the
   scripted transactions. *)
let scripted_db ?trace_capacity () =
  (* image durability pinned: these tests assert exact span sequences
     and counts of the posting pipeline, which the WAL's own
     [Wal_flushed] spans would interleave with under the
     ODE_DURABILITY=wal CI leg (WAL observability is pinned in
     test_wal.ml instead) *)
  let db = D.create_db ?trace_capacity ~durability:`Image () in
  let b = D.define_class "c" in
  let b = D.field b "n" (Value.Int 0) in
  let b = D.method_ b ~kind:D.Updating "ping" (fun _ _ _ -> Value.Unit) in
  let b =
    D.trigger_str b ~perpetual:true "hit" ~event:"after ping"
      ~action:(fun _ _ -> ())
  in
  let b =
    D.trigger_str b ~perpetual:true "inert" ~event:"after never_posted"
      ~action:(fun _ _ -> ())
  in
  D.register_class db b;
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "c" [] in
           D.activate db oid "hit" [];
           D.activate db oid "inert" [];
           oid))
  in
  (db, oid)

let ping db oid =
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "ping" [])))

(* ------------------------------------------------------------------ *)
(* Pinned counters                                                     *)
(* ------------------------------------------------------------------ *)

(* Each transaction posts exactly 9 occurrences to the object:
   [after tbegin], the 6 events around the call ([before access],
   [before update], [before ping], [after ping], [after update],
   [after access]), one [before tcomplete] (the §6 fixpoint converges in
   one round: nothing fires on tcomplete), and [after tcommit] from the
   system transaction. Of 2 active triggers, the index hands the
   classifier one candidate on the [after ping] post and prunes the
   rest: 1 + 2*8 = 17 skips per transaction. *)
let n_txns = 5

let test_pinned_counters () =
  let db, oid = scripted_db () in
  D.set_observability db true;
  (* latency histograms are sink-gated; force timing so the probe-count
     pins below stay meaningful without attaching a sink *)
  Obs.set_timing (D.observe db) true;
  for _ = 1 to n_txns do
    ping db oid
  done;
  let r = D.observe db in
  Alcotest.(check int) "posts" (9 * n_txns) (Obs.get r Obs.Posts);
  Alcotest.(check int) "db posts" 0 (Obs.get r Obs.Db_posts);
  Alcotest.(check int) "classified" n_txns (Obs.get r Obs.Classified);
  Alcotest.(check int) "index skipped" (17 * n_txns) (Obs.get r Obs.Index_skipped);
  Alcotest.(check int) "transitions" n_txns (Obs.get r Obs.Transitions);
  Alcotest.(check int) "firings" n_txns (Obs.get r Obs.Firings);
  Alcotest.(check int) "tcomplete rounds" n_txns (Obs.get r Obs.Tcomplete_rounds);
  Alcotest.(check int) "undo entries" 0 (Obs.get r Obs.Undo_entries);
  Alcotest.(check int) "timer deliveries" 0 (Obs.get r Obs.Timer_deliveries);
  Alcotest.(check int) "lock conflicts" 0 (Obs.get r Obs.Lock_conflicts);
  let by_kind = Obs.posts_by_kind r in
  let count k = Option.value ~default:0 (List.assoc_opt k by_kind) in
  Alcotest.(check int) "after ping" n_txns
    (count (kind (Symbol.Method (Symbol.After, "ping"))));
  Alcotest.(check int) "before ping" n_txns
    (count (kind (Symbol.Method (Symbol.Before, "ping"))));
  Alcotest.(check int) "after tbegin" n_txns (count (kind Symbol.Tbegin));
  Alcotest.(check int) "before tcomplete" n_txns (count (kind Symbol.Tcomplete));
  Alcotest.(check int) "after tcommit" n_txns (count (kind Symbol.Tcommit));
  Alcotest.(check int) "post latencies" (9 * n_txns)
    (Hist.count (Obs.hist r Obs.Post));
  Alcotest.(check int) "call latencies" n_txns (Hist.count (Obs.hist r Obs.Call));
  Alcotest.(check int) "commit latencies" n_txns
    (Hist.count (Obs.hist r Obs.Commit));
  Alcotest.(check int) "action latencies" n_txns
    (Hist.count (Obs.hist r Obs.Action))

(* Latency histograms are only fed when timing data has a consumer: a
   trace sink is attached, or [set_timing] forced it on. Counters, the
   kind table and the span ring stay exact regardless. *)
let test_timing_gate () =
  let db, oid = scripted_db () in
  D.set_observability db true;
  let r = D.observe db in
  ping db oid;
  Alcotest.(check int) "counters exact without a sink" 9 (Obs.get r Obs.Posts);
  List.iter
    (fun p ->
      Alcotest.(check int)
        ("no " ^ Obs.probe_name p ^ " latencies without a consumer")
        0
        (Hist.count (Obs.hist r p)))
    Obs.all_probes;
  Alcotest.(check int) "spans still emitted" 15
    (List.length (Trace.spans (Obs.trace r)));
  (* attaching a sink turns the clock reads back on *)
  let sink = Trace.add_sink (Obs.trace r) (fun _ -> ()) in
  ping db oid;
  Alcotest.(check int) "post latencies with a sink" 9
    (Hist.count (Obs.hist r Obs.Post));
  Alcotest.(check int) "call latencies with a sink" 1
    (Hist.count (Obs.hist r Obs.Call));
  Trace.remove_sink (Obs.trace r) sink;
  ping db oid;
  Alcotest.(check int) "gated again after detach" 9
    (Hist.count (Obs.hist r Obs.Post));
  (* and the explicit override works without any sink *)
  Obs.set_timing r true;
  ping db oid;
  Alcotest.(check int) "forced timing feeds histograms" 18
    (Hist.count (Obs.hist r Obs.Post))

let test_scan_path_counters () =
  (* brute-force reference path: every active trigger is classified on
     every post (2 * 9), and nothing is "skipped by the index" *)
  let db, oid = scripted_db () in
  D.set_dispatch_index db false;
  D.set_observability db true;
  ping db oid;
  let r = D.observe db in
  Alcotest.(check int) "every activation classified" 18 (Obs.get r Obs.Classified);
  Alcotest.(check int) "no skips without the index" 0 (Obs.get r Obs.Index_skipped);
  Alcotest.(check int) "same firings" 1 (Obs.get r Obs.Firings)

let test_disabled_counts_nothing () =
  let db, oid = scripted_db () in
  ping db oid;
  let r = D.observe db in
  List.iter
    (fun c -> Alcotest.(check int) (Obs.counter_name c) 0 (Obs.get r c))
    Obs.all_counters;
  List.iter
    (fun p ->
      Alcotest.(check int) (Obs.probe_name p) 0 (Hist.count (Obs.hist r p)))
    Obs.all_probes;
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans (Obs.trace r)));
  Alcotest.(check (list (pair string int))) "no kinds" [] (Obs.posts_by_kind r)

let test_abort_and_undo () =
  let db, oid = scripted_db () in
  D.set_observability db true;
  let tx = D.begin_txn db in
  D.set_field db oid "n" (Value.Int 1);
  D.abort db tx;
  let r = D.observe db in
  Alcotest.(check int) "one undo entry retired" 1 (Obs.get r Obs.Undo_entries);
  Alcotest.(check bool) "abort span emitted" true
    (List.exists
       (function Trace.Txn_abort _ -> true | _ -> false)
       (Trace.spans (Obs.trace r)))

let test_lock_conflict_counter () =
  let db, oid = scripted_db () in
  D.set_observability db true;
  let t1 = D.begin_txn db in
  ignore (D.call db oid "ping" []);
  let t2 = D.begin_txn db in
  (match D.call db oid "ping" [] with
  | exception D.Lock_conflict o -> Alcotest.(check int) "conflicting oid" oid o
  | _ -> Alcotest.fail "expected a lock conflict");
  Alcotest.(check int) "lock conflicts" 1
    (Obs.get (D.observe db) Obs.Lock_conflicts);
  D.abort db t2;
  D.switch_txn db t1;
  D.abort db t1

let test_timer_deliveries () =
  let db = D.create_db () in
  let b = D.define_class "w" in
  let b =
    D.trigger_str b ~perpetual:true "tick" ~event:"every time(MS=100)"
      ~action:(fun _ _ -> ())
  in
  D.register_class db b;
  let _oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "w" [] in
           D.activate db oid "tick" [];
           oid))
  in
  D.set_observability db true;
  D.advance_clock db 250L;
  let r = D.observe db in
  Alcotest.(check int) "two due timers delivered" 2
    (Obs.get r Obs.Timer_deliveries);
  Alcotest.(check int) "two delivery spans" 2
    (List.length
       (List.filter
          (function Trace.Timer_delivered _ -> true | _ -> false)
          (Trace.spans (Obs.trace r))))

let test_reset_keeps_enabled () =
  let db, oid = scripted_db () in
  D.set_observability db true;
  ping db oid;
  let r = D.observe db in
  Obs.reset r;
  Alcotest.(check bool) "still enabled" true (Obs.enabled r);
  Alcotest.(check int) "counters zeroed" 0 (Obs.get r Obs.Posts);
  Alcotest.(check int) "trace cleared" 0 (List.length (Trace.spans (Obs.trace r)));
  ping db oid;
  Alcotest.(check int) "counting resumes" 9 (Obs.get r Obs.Posts)

(* ------------------------------------------------------------------ *)
(* Trace ring                                                          *)
(* ------------------------------------------------------------------ *)

let tag = function
  | Trace.Txn_begin { system = false; _ } -> "B"
  | Trace.Txn_begin { system = true; _ } -> "b"
  | Trace.Txn_commit _ -> "C"
  | Trace.Txn_abort _ -> "A"
  | Trace.Posted _ -> "p"
  | Trace.Advanced _ -> "a"
  | Trace.Fired _ -> "f"
  | Trace.Action_ran _ -> "r"
  | Trace.Timer_delivered _ -> "t"
  | Trace.Wal_flushed _ -> "w"
  | Trace.Wal_recovered _ -> "R"

let test_span_order () =
  let db, oid = scripted_db () in
  D.set_observability db true;
  ping db oid;
  let spans = Trace.spans (Obs.trace (D.observe db)) in
  (* user txn begins; tbegin + the 4 pre-body posts; the [after ping]
     post advances [hit], which fires and runs its action; the 2
     post-body posts; tcomplete; commit; then the system txn posting
     [after tcommit] *)
  Alcotest.(check string) "pipeline span sequence" "BpppppafrpppCbp"
    (String.concat "" (List.map tag spans));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped (Obs.trace (D.observe db)))

let test_ring_truncation () =
  let db, oid = scripted_db ~trace_capacity:4 () in
  D.set_observability db true;
  ping db oid;
  let tr = Obs.trace (D.observe db) in
  Alcotest.(check int) "capacity" 4 (Trace.capacity tr);
  Alcotest.(check int) "ring keeps capacity spans" 4 (List.length (Trace.spans tr));
  Alcotest.(check int) "older spans counted as dropped" 11 (Trace.dropped tr);
  (* the retained spans are the MOST RECENT ones, oldest first *)
  Alcotest.(check string) "tail of the sequence" "pCbp"
    (String.concat "" (List.map tag (Trace.spans tr)));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.spans tr));
  Alcotest.(check int) "dropped reset" 0 (Trace.dropped tr)

let test_sinks_see_everything () =
  let db, oid = scripted_db ~trace_capacity:4 () in
  D.set_observability db true;
  let tr = Obs.trace (D.observe db) in
  let n = ref 0 in
  let sink = Trace.add_sink tr (fun _ -> incr n) in
  ping db oid;
  Alcotest.(check int) "sink saw every span, ring kept 4" 15 !n;
  Trace.remove_sink tr sink;
  ping db oid;
  Alcotest.(check int) "detached sink sees nothing" 15 !n

let test_trace_validation () =
  match Trace.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_hist () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check int) "empty quantile" 0 (Hist.quantile_ns h 0.99);
  List.iter (Hist.record h) [ 100; 200; 400; 800; 100_000 ];
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check int) "sum" 101_500 (Hist.sum_ns h);
  Alcotest.(check int) "max" 100_000 (Hist.max_ns h);
  Alcotest.(check (float 0.01)) "mean" 20_300.0 (Hist.mean_ns h);
  let q50 = Hist.quantile_ns h 0.5 in
  Alcotest.(check bool) "median within its 2x bucket" true
    (q50 >= 200 && q50 <= 512);
  Alcotest.(check bool) "p99 covers the outlier" true
    (Hist.quantile_ns h 0.99 >= 100_000);
  Hist.reset h;
  Alcotest.(check int) "reset" 0 (Hist.count h)

(* ------------------------------------------------------------------ *)
(* Subscriptions                                                       *)
(* ------------------------------------------------------------------ *)

let test_subscription_order () =
  (* two subscribers see every firing, in subscription order, once *)
  let db, oid = scripted_db () in
  let seen = ref [] in
  let _s1 = D.subscribe_firings db (fun f -> seen := (1, f) :: !seen) in
  let _s2 = D.subscribe_firings db (fun f -> seen := (2, f) :: !seen) in
  for _ = 1 to 3 do
    ping db oid
  done;
  let deliveries = List.rev !seen in
  Alcotest.(check int) "both saw all three firings" 6 (List.length deliveries);
  Alcotest.(check (list int)) "subscription order per firing"
    [ 1; 2; 1; 2; 1; 2 ]
    (List.map fst deliveries)

let test_unsubscribe_during_delivery () =
  (* a subscriber that unsubscribes itself mid-batch must not break the
     walk, and later subscribers still see the firing *)
  let db, oid = scripted_db () in
  let first = ref 0 and second = ref 0 in
  let sub = ref None in
  sub :=
    Some
      (D.subscribe_firings db (fun _ ->
           incr first;
           match !sub with Some s -> D.unsubscribe db s | None -> ()));
  let _s2 = D.subscribe_firings db (fun _ -> incr second) in
  ping db oid;
  ping db oid;
  Alcotest.(check int) "self-unsubscribed after one delivery" 1 !first;
  Alcotest.(check int) "later subscriber saw both" 2 !second

(* Counters must stay {e exact} — not approximate — when [post_many]'s
   classify/step phase runs on 4 domains (the step-phase emissions are
   atomic, the kind table mutexed). 16 objects × 25 pings on a sharded
   backend: every counter is pinned to its computed truth and must also
   equal a 1-domain run of the identical batch bit for bit. *)
let test_exact_counters_under_domains () =
  let run domains =
    let db = D.create_db ~backend:(`Sharded 8) () in
    D.set_post_domains db domains;
    let b = D.define_class "c" in
    let b = D.method_ b ~kind:D.Updating "ping" (fun _ _ _ -> Value.Unit) in
    let b =
      D.trigger_str b ~perpetual:true "hit" ~event:"after ping"
        ~action:(fun _ _ -> ())
    in
    D.register_class db b;
    let oids =
      expect_ok
        (D.with_txn db (fun _ ->
             List.init 16 (fun _ ->
                 let oid = D.create db "c" [] in
                 D.activate db oid "hit" [];
                 oid)))
    in
    D.set_observability db true;
    let batch =
      List.concat_map
        (fun oid ->
          List.init 25 (fun _ -> (oid, Symbol.Method (Symbol.After, "ping"), [])))
        oids
    in
    let fired = ref 0 in
    expect_ok (D.with_txn db (fun _ -> fired := D.post_many db batch));
    D.shutdown_pool db;
    let obs = D.observe db in
    ( !fired,
      List.map (fun c -> (Obs.counter_name c, Obs.get obs c)) Obs.all_counters,
      Obs.posts_by_kind obs )
  in
  let f1, c1, k1 = run 1 in
  let f4, c4, k4 = run 4 in
  Alcotest.(check int) "1-domain firings" 400 f1;
  Alcotest.(check int) "4-domain firings" 400 f4;
  let get name l = List.assoc name l in
  (* 400 pings + 16 each of tbegin / tcomplete / tcommit *)
  Alcotest.(check int) "posts" 448 (get "posts" c4);
  Alcotest.(check int) "classified" 400 (get "classified" c4);
  Alcotest.(check int) "transitions" 400 (get "transitions" c4);
  Alcotest.(check int) "firings counter" 400 (get "firings" c4);
  Alcotest.(check int) "tcomplete rounds" 1 (get "tcomplete_rounds" c4);
  Alcotest.(check (list (pair string int)))
    "counters identical across domain counts" c1 c4;
  Alcotest.(check (list (pair string int))) "kind table identical" k1 k4

let suite =
  [
    Alcotest.test_case "pinned pipeline counters" `Quick test_pinned_counters;
    Alcotest.test_case "exact counters under 4 domains" `Quick
      test_exact_counters_under_domains;
    Alcotest.test_case "timing gate" `Quick test_timing_gate;
    Alcotest.test_case "scan-path counters" `Quick test_scan_path_counters;
    Alcotest.test_case "disabled = all zeros" `Quick test_disabled_counts_nothing;
    Alcotest.test_case "abort + undo accounting" `Quick test_abort_and_undo;
    Alcotest.test_case "lock-conflict counter" `Quick test_lock_conflict_counter;
    Alcotest.test_case "timer deliveries" `Quick test_timer_deliveries;
    Alcotest.test_case "reset keeps enabled" `Quick test_reset_keeps_enabled;
    Alcotest.test_case "span ordering" `Quick test_span_order;
    Alcotest.test_case "ring truncation" `Quick test_ring_truncation;
    Alcotest.test_case "sinks see every span" `Quick test_sinks_see_everything;
    Alcotest.test_case "trace validation" `Quick test_trace_validation;
    Alcotest.test_case "histogram bookkeeping" `Quick test_hist;
    Alcotest.test_case "subscription order" `Quick test_subscription_order;
    Alcotest.test_case "unsubscribe during delivery" `Quick
      test_unsubscribe_during_delivery;
  ]
